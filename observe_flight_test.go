package shufflejoin

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const obsQ = "SELECT A.v, B.w FROM A, B WHERE A.i = B.i"

func TestWithFlightRecorderFacade(t *testing.T) {
	db := obsDB(t)
	fr := NewFlightRecorder(512)
	res, err := db.Query(obsQ, WithFlightRecorder(fr), WithProfile())
	if err != nil {
		t.Fatal(err)
	}
	st := fr.Stats()
	if st.Recorded == 0 {
		t.Fatal("query recorded no flight events into the pinned recorder")
	}
	if st.Capacity != 512 {
		t.Errorf("capacity = %d, want 512", st.Capacity)
	}

	// Recording is telemetry only: the same query without a recorder
	// produces an identical result and profile fingerprint.
	db2 := obsDB(t)
	off, err := db2.Query(obsQ, WithoutFlightRecorder(), WithProfile())
	if err != nil {
		t.Fatal(err)
	}
	if off.Matches != res.Matches {
		t.Errorf("recorded run diverges: matches %d vs %d", res.Matches, off.Matches)
	}
	if got, want := res.Profile.Fingerprint(), off.Profile.Fingerprint(); got != want {
		t.Errorf("recorded profile fingerprint diverges:\n--- recorded ---\n%s\n--- off ---\n%s", got, want)
	}

	if err := func() error {
		_, err := db.Query(obsQ, WithFlightRecorder(nil))
		return err
	}(); err == nil {
		t.Error("WithFlightRecorder(nil) accepted")
	}
}

func TestWithPostmortemFacade(t *testing.T) {
	db := obsDB(t)
	dir := t.TempDir()
	pm := &Postmortem{Dir: dir, Flight: NewFlightRecorder(256)}
	_, err := db.Query(obsQ,
		WithFlightRecorder(pm.Flight),
		WithPostmortem(pm),
		WithMemoryBudget(256), WithStrictMemory())
	if err == nil {
		t.Fatal("strict 256-byte budget did not fail the query")
	}
	bundles, globErr := filepath.Glob(filepath.Join(dir, "pm-*"))
	if globErr != nil || len(bundles) != 1 {
		t.Fatalf("bundles = %v (err %v), want exactly 1", bundles, globErr)
	}
	if !strings.HasSuffix(bundles[0], "-strict-budget") {
		t.Errorf("bundle %q does not carry the strict-budget reason", bundles[0])
	}
	for _, f := range []string{"meta.json", "flight.json", "failure.json", "goroutines.txt"} {
		if _, err := os.Stat(filepath.Join(bundles[0], f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}

	if err := func() error {
		_, err := db.Query(obsQ, WithPostmortem(&Postmortem{}))
		return err
	}(); err == nil {
		t.Error("WithPostmortem without a directory accepted")
	}
}

func TestDBPostmortemOnDemand(t *testing.T) {
	db := obsDB(t)
	if _, err := db.Query(obsQ); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	bundle, err := db.Postmortem(dir)
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := os.ReadFile(filepath.Join(bundle, "metrics.prom"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "query_count 1") {
		t.Errorf("on-demand bundle metrics missing query_count:\n%s", metrics)
	}
	var meta struct {
		Reason string `json:"reason"`
	}
	raw, err := os.ReadFile(filepath.Join(bundle, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &meta); err != nil || meta.Reason != "on-demand" {
		t.Errorf("meta reason = %q (err %v), want on-demand", meta.Reason, err)
	}

	if _, err := db.Postmortem(""); err == nil {
		t.Error("Postmortem with empty dir accepted")
	}
}

// TestObsHubFlightStatus: the facade hub serves the new debug surfaces
// with the recorder the query wrote into.
func TestObsHubFlightStatus(t *testing.T) {
	db := obsDB(t)
	fr := NewFlightRecorder(512)
	hub := db.NewObsHub(ObsConfig{
		Flight: fr,
		Status: StatusInfo{Component: "facade-test", Details: map[string]string{"env": "ci"}},
	})
	if _, err := db.Query(obsQ, WithQueryLog(hub), WithFlightRecorder(fr)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	var status struct {
		Component string            `json:"component"`
		Details   map[string]string `json:"details"`
		GoVersion string            `json:"go_version"`
	}
	if err := json.Unmarshal([]byte(get("/debug/status")), &status); err != nil {
		t.Fatal(err)
	}
	if status.Component != "facade-test" || status.Details["env"] != "ci" || status.GoVersion == "" {
		t.Errorf("/debug/status payload = %+v", status)
	}
	fl := get("/debug/flight")
	for _, want := range []string{`"query-start"`, `"query-finish"`, `"align-done"`} {
		if !strings.Contains(fl, want) {
			t.Errorf("/debug/flight missing %s", want)
		}
	}
	if !strings.Contains(get("/debug/anomalies"), `"nodes"`) {
		t.Error("/debug/anomalies has no nodes field")
	}
}
