package shufflejoin

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildTestPair creates one joinable array pair with unique coordinates
// (linear join output) for the serving tests.
func buildTestPair(t *testing.T, db *DB, a, b string, cells int) {
	t.Helper()
	domain := int64(cells) * 2
	chunk := domain / 8
	if chunk < 1 {
		chunk = 1
	}
	for i, name := range []string{a, b} {
		attr := "v"
		if i == 1 {
			attr = "w"
		}
		ar, err := db.CreateArray(fmt.Sprintf("%s<%s:int>[i=1,%d,%d]", name, attr, domain, chunk))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < cells; j++ {
			// Both sides share even coordinates; side b also fills odd
			// ones, so the join matches exactly the even overlap.
			coord := int64(j)*2 + 1 + int64(i)
			if coord > domain {
				coord = int64(j) + 1
			}
			if err := ar.Insert([]int64{coord}, int64(j*7+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// serveFingerprint canonicalizes everything a query's result guarantees
// to be scheduling-independent: the chosen plan, join statistics,
// modeled phase times, and every output cell in deterministic order.
// Real wall-clock quantities (PlanSeconds, TotalSeconds) and
// interleaving-dependent provenance (PlanSource: a concurrent duplicate
// may be "cached" where the serial run planned) are deliberately
// excluded.
func serveFingerprint(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan=%s algo=%s matches=%d moved=%d clamped=%d peak=%d interned=%d\n",
		r.Plan, r.Algorithm, r.Matches, r.CellsMoved, r.ClampedCells, r.PeakBatchBytes, r.InternedStrings)
	fmt.Fprintf(&b, "align=%.12g compare=%.12g skew=%.12g straggler=%d lockwait=%.12g schema=%s\n",
		r.AlignSeconds, r.CompareSeconds, r.Skew, r.StragglerNode, r.LockWaitSeconds, r.OutputSchema)
	r.Scan(func(c Cell) bool {
		fmt.Fprintf(&b, "%v=%v\n", c.Coords, c.Values)
		return true
	})
	return b.String()
}

// TestConcurrentQueriesBitIdentical is the serving determinism stress
// test: one DB driven by 16 goroutines through a contended scheduler
// (fewer slots than clients, a small memory pool, mixed classes, a
// shared plan cache) must produce results bit-identical to the same
// queries run serially without any scheduler. Run under -race this also
// sweeps the engine's shared state (catalog, pools, cache, metrics) for
// data races.
func TestConcurrentQueriesBitIdentical(t *testing.T) {
	db, err := Open(4)
	if err != nil {
		t.Fatal(err)
	}
	buildTestPair(t, db, "CA", "CB", 600)
	buildTestPair(t, db, "CC", "CD", 1400)
	queries := []string{
		"SELECT CA.v, CB.w FROM CA, CB WHERE CA.i = CB.i",
		"SELECT CC.v, CD.w FROM CC, CD WHERE CC.i = CD.i",
	}

	// Serial references, no scheduler attached.
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = serveFingerprint(res)
	}

	s := db.NewScheduler(SchedulerConfig{
		MaxQueries:      4,
		AlignSlots:      2,
		CompareSlots:    2,
		MemoryPoolBytes: 64 << 20,
	})
	cache := NewPlanCache()
	classes := []string{"interactive", "scan"}

	const goroutines = 16
	const perG = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				qi := (g + k) % len(queries)
				res, err := db.Query(queries[qi],
					WithScheduler(s),
					WithQueryClass(classes[(g+k)%2]),
					WithPlanCache(cache),
				)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d query %d: %w", g, k, err)
					return
				}
				if got := serveFingerprint(res); got != want[qi] {
					errs <- fmt.Errorf("goroutine %d query %d: result diverges from serial run:\n got: %.200s\nwant: %.200s",
						g, k, got, want[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	snap := s.Snapshot()
	if snap.Inflight != 0 || snap.Interactive.Queued != 0 || snap.Scan.Queued != 0 {
		t.Errorf("scheduler not drained: %+v", snap)
	}
	if got := snap.Interactive.Admitted + snap.Scan.Admitted; got != goroutines*perG {
		t.Errorf("admitted %d queries, want %d", got, goroutines*perG)
	}
	if snap.MemReservedBytes != 0 {
		t.Errorf("memory pool not drained: %d bytes still reserved", snap.MemReservedBytes)
	}
	if snap.AlignSlotsFree != snap.AlignSlots || snap.CompareSlotsFree != snap.CompareSlots {
		t.Errorf("stage slots leaked: %+v", snap)
	}
}

// TestServeClosedLoop smoke-tests DB.Serve: a mixed workload completes,
// reports per-class latency, and leaves the scheduler drained.
func TestServeClosedLoop(t *testing.T) {
	db, err := Open(3)
	if err != nil {
		t.Fatal(err)
	}
	buildTestPair(t, db, "SVA", "SVB", 500)
	q := "SELECT SVA.v, SVB.w FROM SVA, SVB WHERE SVA.i = SVB.i"

	jobs := make([]ServeJob, 40)
	for i := range jobs {
		class := "interactive"
		if i%4 == 0 {
			class = "scan"
		}
		jobs[i] = ServeJob{Query: q, Class: class}
	}
	s := db.NewScheduler(SchedulerConfig{MaxQueries: 4, MemoryPoolBytes: 32 << 20})
	rep, err := db.Serve(jobs, ServeOptions{Concurrency: 8, Scheduler: s})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != int64(len(jobs)) || rep.Failed != 0 {
		t.Fatalf("completed %d / failed %d of %d jobs: %v", rep.Completed, rep.Failed, len(jobs), rep.Errors)
	}
	if rep.QPS <= 0 || rep.Wall <= 0 {
		t.Errorf("no throughput reported: qps=%f wall=%v", rep.QPS, rep.Wall)
	}
	if rep.Latency.Count != int64(len(jobs)) || rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Errorf("latency summary inconsistent: %+v", rep.Latency)
	}
	ic, sc := rep.PerClass["interactive"], rep.PerClass["scan"]
	if ic.Count != 30 || sc.Count != 10 {
		t.Errorf("per-class counts = %d interactive / %d scan, want 30/10", ic.Count, sc.Count)
	}
	if rep.Scheduler.Inflight != 0 || rep.Scheduler.MemReservedBytes != 0 {
		t.Errorf("scheduler not drained after Serve: %+v", rep.Scheduler)
	}

	if _, err := db.Serve(nil, ServeOptions{}); err == nil {
		t.Error("Serve with no jobs should fail")
	}
	if _, err := db.Serve([]ServeJob{{Query: q, Class: "bogus"}}, ServeOptions{Scheduler: s}); err == nil {
		t.Error("Serve with a bad class should fail up front")
	}
}

// TestQueryTimeoutAndCancel pins the per-query deadline and context
// paths: both surface the standard context errors, and a timed-out
// query releases its scheduler resources.
func TestQueryTimeoutAndCancel(t *testing.T) {
	db, err := Open(2)
	if err != nil {
		t.Fatal(err)
	}
	buildTestPair(t, db, "TA", "TB", 1200)
	q := "SELECT TA.v, TB.w FROM TA, TB WHERE TA.i = TB.i"

	if _, err := db.Query(q, WithQueryTimeout(time.Nanosecond)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout error = %v, want DeadlineExceeded", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Query(q, WithQueryContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled-context error = %v, want Canceled", err)
	}

	s := db.NewScheduler(SchedulerConfig{MaxQueries: 2, MemoryPoolBytes: 8 << 20})
	if _, err := db.Query(q, WithScheduler(s), WithQueryTimeout(time.Nanosecond)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("scheduled timeout error = %v, want DeadlineExceeded", err)
	}
	snap := s.Snapshot()
	if snap.Inflight != 0 || snap.MemReservedBytes != 0 {
		t.Errorf("timed-out query leaked scheduler resources: %+v", snap)
	}

	// A generous timeout must not perturb the result.
	plain, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	timed, err := db.Query(q, WithQueryTimeout(time.Minute), WithScheduler(s))
	if err != nil {
		t.Fatal(err)
	}
	if serveFingerprint(plain) != serveFingerprint(timed) {
		t.Error("query under timeout+scheduler diverges from plain run")
	}
}

// TestQueryOptionValidation covers the new options' error paths.
func TestQueryOptionValidation(t *testing.T) {
	db, err := Open(2)
	if err != nil {
		t.Fatal(err)
	}
	for name, opt := range map[string]QueryOption{
		"nil scheduler":    WithScheduler(nil),
		"bad class":        WithQueryClass("batch"),
		"zero timeout":     WithQueryTimeout(0),
		"negative timeout": WithQueryTimeout(-time.Second),
		"nil context":      WithQueryContext(nil),
	} {
		if _, err := db.Query("SELECT A.v FROM A, B WHERE A.i = B.i", opt); err == nil {
			t.Errorf("%s: expected an option error", name)
		}
	}
}
