// Command shufflejoin runs an AQL join query over a simulated
// shared-nothing cluster, loading its input arrays from .sjar files (see
// cmd/datagen).
//
// Usage:
//
//	shufflejoin -nodes 4 -data data/ -planner tabu \
//	    "SELECT A.v, B.w FROM A, B WHERE A.i = B.i"
//
// The query's phase breakdown (planning, data alignment, cell comparison)
// is printed along with a sample of the output cells.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"shufflejoin"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 4, "cluster size")
		dataDir = flag.String("data", "data", "directory of .sjar array files")
		planner = flag.String("planner", "mbh", "physical planner: baseline, mbh, tabu, ilp, coarse")
		budget  = flag.Duration("budget", 2*time.Second, "ILP solver time budget")
		algo    = flag.String("algo", "", "force join algorithm: hash, merge, nestedloop")
		sel     = flag.Float64("sel", 0, "optimizer selectivity estimate (output = sel*(nA+nB))")
		sample  = flag.Int("sample", 10, "output cells to print")
		fifo    = flag.Bool("fifo", false, "use naive FIFO shuffle scheduling instead of greedy locks")
		par     = flag.Int("par", 0, "planning/execution workers: 0 = one per CPU, 1 = sequential (results identical at every setting)")
		strict  = flag.Bool("strict", false, "fail on output cells outside the destination's dimension ranges instead of clamping")
		explain = flag.Bool("explain", false, "print the optimizer's candidate plans instead of executing")
		trace   = flag.String("trace", "", "write the query trace as Chrome trace-event JSON to this file (load in Perfetto) and print the trace summary")
		metrics = flag.Bool("metrics", false, "print the query's metric registry as JSON")
		analyze = flag.Bool("analyze", false, "print the query's EXPLAIN ANALYZE profile (per-stage timings, plan provenance, per-node skew)")
		obsAddr = flag.String("obs-addr", "", "serve live telemetry on this address (/metrics, /debug/queries, /debug/inflight, /debug/flight, /debug/anomalies, /debug/status); e.g. :8080 or :0")
		slowMs  = flag.Float64("slow-ms", 0, "mark queries at or above this wall time (ms) as slow in /debug/queries (with -postmortem-dir, also the slow-query bundle threshold)")
		obsHold = flag.Duration("obs-hold", 0, "keep the telemetry endpoint up this long after the query finishes")
		pmDir   = flag.String("postmortem-dir", "", "capture a diagnostic bundle (flight events, profile, metrics, goroutine stacks) into this directory when the query panics, fails a strict check, or breaches -slow-ms")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: shufflejoin [flags] \"SELECT ... FROM A, B WHERE ...\"")
		flag.PrintDefaults()
		os.Exit(2)
	}
	query := flag.Arg(0)

	db, err := shufflejoin.Open(*nodes)
	if err != nil {
		fail(err)
	}
	files, err := filepath.Glob(filepath.Join(*dataDir, "*.sjar"))
	if err != nil {
		fail(err)
	}
	if len(files) == 0 {
		fail(fmt.Errorf("no .sjar files in %s (generate some with cmd/datagen)", *dataDir))
	}
	for _, f := range files {
		ar, err := db.LoadFile(f)
		if err != nil {
			fail(fmt.Errorf("loading %s: %w", f, err))
		}
		fmt.Printf("loaded %s (%d cells, %d chunks)\n", ar.Schema(), ar.CellCount(), ar.ChunkCount())
	}

	opts := []shufflejoin.QueryOption{shufflejoin.WithPlanner(*planner, *budget)}
	if *algo != "" {
		opts = append(opts, shufflejoin.WithAlgorithm(*algo))
	}
	if *sel > 0 {
		opts = append(opts, shufflejoin.WithSelectivity(*sel))
	}
	if *fifo {
		opts = append(opts, shufflejoin.WithFIFOShuffle())
	}
	if *par != 0 {
		opts = append(opts, shufflejoin.WithParallelism(*par))
	}
	if *strict {
		opts = append(opts, shufflejoin.WithStrictBounds())
	}
	if *trace != "" || *metrics || *obsAddr != "" {
		opts = append(opts, shufflejoin.WithTrace())
	}
	if *analyze {
		opts = append(opts, shufflejoin.WithProfile())
	}
	if *pmDir != "" {
		opts = append(opts, shufflejoin.WithPostmortem(&shufflejoin.Postmortem{
			Dir:       *pmDir,
			SlowQuery: time.Duration(*slowMs * float64(time.Millisecond)),
		}))
	}
	var hub *shufflejoin.ObsHub
	if *obsAddr != "" {
		details := map[string]string{
			"nodes":       fmt.Sprint(*nodes),
			"planner":     *planner,
			"data":        *dataDir,
			"parallelism": fmt.Sprint(*par),
			"scheduling":  map[bool]string{false: "greedy-locks", true: "fifo"}[*fifo],
		}
		hub = db.NewObsHub(shufflejoin.ObsConfig{
			SlowQuery: time.Duration(*slowMs * float64(time.Millisecond)),
			Status:    shufflejoin.StatusInfo{Component: "shufflejoin", Details: details},
		})
		addr, err := hub.Serve(*obsAddr)
		if err != nil {
			fail(err)
		}
		defer hub.Close()
		fmt.Printf("telemetry on http://%s/metrics (also /debug/queries, /debug/inflight)\n", addr)
		opts = append(opts, shufflejoin.WithQueryLog(hub))
	}

	if *explain {
		ex, err := db.Explain(query, opts...)
		if err != nil {
			fail(err)
		}
		fmt.Printf("\nestimated selectivity: %.4g\n", ex.Selectivity)
		fmt.Printf("%-55s %-12s %-14s %9s %14s\n", "plan", "algorithm", "units", "#units", "modeled cost")
		for _, p := range ex.Plans {
			fmt.Printf("%-55s %-12s %-14s %9d %14.4g\n", p.Plan, p.Algorithm, p.Units, p.NumUnits, p.Cost)
		}
		return
	}

	res, err := db.Query(query, opts...)
	if err != nil {
		fail(err)
	}

	fmt.Printf("\nlogical plan:   %s\n", res.Plan)
	fmt.Printf("join algorithm: %s\n", res.Algorithm)
	fmt.Printf("planner:        %s\n", res.Planner)
	fmt.Printf("matches:        %d\n", res.Matches)
	fmt.Printf("cells moved:    %d\n", res.CellsMoved)
	if res.ClampedCells > 0 {
		fmt.Printf("WARNING: %d output cells clamped onto the destination boundary (rerun with -strict to fail instead)\n", res.ClampedCells)
	}
	fmt.Printf("query plan:     %8.3fs\n", res.PlanSeconds)
	fmt.Printf("data align:     %8.3fs (simulated)\n", res.AlignSeconds)
	fmt.Printf("cell compare:   %8.3fs (simulated)\n", res.CompareSeconds)
	fmt.Printf("total:          %8.3fs\n", res.TotalSeconds)

	if *trace != "" {
		fmt.Printf("\n%s", res.TraceSummary())
		f, err := os.Create(*trace)
		if err != nil {
			fail(err)
		}
		if err := res.ChromeTrace(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("\nChrome trace written to %s (open in ui.perfetto.dev)\n", *trace)
	}
	if *metrics {
		fmt.Println("\nmetrics:")
		if err := res.MetricsJSON(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *analyze && res.Profile != nil {
		fmt.Printf("\n%s", res.Profile)
	}
	if hub != nil && *obsHold > 0 {
		fmt.Printf("holding telemetry endpoint for %s\n", *obsHold)
		time.Sleep(*obsHold)
	}

	if *sample > 0 {
		fmt.Printf("\noutput sample (%s):\n", res.OutputSchema)
		n := 0
		res.Scan(func(c shufflejoin.Cell) bool {
			parts := make([]string, len(c.Values))
			for i, v := range c.Values {
				parts[i] = fmt.Sprint(v)
			}
			fmt.Printf("  %v -> (%s)\n", c.Coords, strings.Join(parts, ", "))
			n++
			return n < *sample
		})
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "shufflejoin:", err)
	os.Exit(1)
}
