// Command expdriver regenerates every table and figure of the paper's
// evaluation (Section 6) and prints them as text tables.
//
// Usage:
//
//	expdriver [-exp all|fig5|fig6|table1|table2|fig7|fig8|fig9|adversarial|fig10|planquality|beyond]
//	          [-scale small|full] [-seed N] [-budget DUR]
//	          [-trace FILE] [-metrics] [-json FILE] [-gate]
//	          [-obs-addr ADDR] [-slow-ms N] [-obs-hold DUR] [-postmortem-dir DIR]
//
// "planquality" is the greedy-vs-ILP calibration sweep behind the plan
// cache's regret policy: per Zipf skew level and join algorithm it
// reports planning wall-times (greedy fast path, full ILP, plan-cache
// hit) and the makespan ratio of the two assignments. -json writes the
// rows plus summary as JSON; -gate exits non-zero when the sweep
// violates the acceptance criteria (kept greedy ratio <= 1.10, cache
// hit <= 5% of the cold full plan).
//
// "full" scale uses the paper's decision-space parameters (1024 join
// units, 4-node default cluster, 2–12 node scale-out) with cell counts
// scaled to run on one machine; "small" runs everything in a few seconds.
//
// "beyond" is the beyond-paper scale-out — merge join on 16–64 nodes with
// 100k+ simulated transfers per query at the top end — and is opt-in: it
// runs only when named explicitly, never as part of -exp all.
//
// -trace writes every pipeline query the selected experiments execute
// (fig5/fig6, fig9, adversarial) into one Chrome trace-event JSON file,
// loadable in Perfetto; -metrics prints the accumulated metric registry
// as JSON. Both match the cmd/shufflejoin flags of the same names.
//
// -obs-addr serves live telemetry over HTTP while the experiments run:
// /metrics (Prometheus text format), /debug/queries (profiled query
// log; -slow-ms sets the slow-query threshold), /debug/inflight
// (per-stage progress), /debug/flight (the engine flight recorder),
// /debug/anomalies (the online skew-anomaly detector), and
// /debug/status. -obs-hold keeps the endpoint up after the last
// experiment so scrapers can collect the final state.
//
// -postmortem-dir installs a process-wide diagnostic-bundle sink: any
// experiment query that panics, fails a strict check, or breaches
// -slow-ms writes a bundle of evidence (recent flight events, profile,
// goroutine stacks, heap profile) into the directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"shufflejoin/internal/bench"
	"shufflejoin/internal/flight"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/obshttp"
	"shufflejoin/internal/servebench"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment to run (all, fig5, fig6, table1, table2, fig7, fig8, fig9, adversarial, fig10, planquality, beyond, serve; beyond and serve are opt-in and excluded from all)")
		scale       = flag.String("scale", "full", "experiment scale: small or full")
		seed        = flag.Int64("seed", 1, "deterministic seed")
		budget      = flag.Duration("budget", 0, "ILP solver time budget (default 2s full, 200ms small)")
		maxExplored = flag.Int64("maxexplored", 0, "deterministic ILP node budget: cap branch-and-bound at N explored nodes (forces sequential ILP search so truncated plans reproduce exactly; wall-clock budget stays as a safety cap)")
		par         = flag.Int("par", 0, "planner parallelism: workers for Tabu neighborhood evaluation and the ILP search (<= 1 sequential; results identical either way)")
		calibrate   = flag.Bool("calibrate", false, "measure the cost-model parameters m, b, p on this machine instead of using defaults")
		traceFile   = flag.String("trace", "", "write the pipeline spans of every executed query as Chrome trace-event JSON to this file (load in Perfetto)")
		metrics     = flag.Bool("metrics", false, "print the accumulated query metric registry as JSON")
		jsonFile    = flag.String("json", "", "planquality/serve: write the experiment's rows (and summary) as JSON to this file")
		gate        = flag.Bool("gate", false, "planquality/serve: exit non-zero when the run violates the experiment's acceptance criteria")
		serveConc   = flag.String("serve-conc", "", "serve: comma-separated closed-loop concurrency levels (default 1,4,16)")
		serveN      = flag.Int("serve-queries", 0, "serve: queries replayed per concurrency level (default 2000 full, 300 small)")
		obsAddr     = flag.String("obs-addr", "", "serve live telemetry on this address (/metrics, /debug/queries, /debug/inflight, /debug/flight, /debug/anomalies, /debug/status); e.g. :8080 or :0")
		slowMs      = flag.Float64("slow-ms", 0, "mark queries at or above this wall time (ms) as slow in /debug/queries (with -postmortem-dir, also the slow-query bundle threshold)")
		obsHold     = flag.Duration("obs-hold", 0, "keep the telemetry endpoint up this long after the experiments finish")
		pmDir       = flag.String("postmortem-dir", "", "capture diagnostic bundles (flight events, profile, goroutine stacks) into this directory when an experiment query panics, fails a strict check, or breaches -slow-ms")
	)
	flag.Parse()

	if *pmDir != "" {
		flight.SetDefaultPostmortem(&flight.Postmortem{
			Dir:       *pmDir,
			SlowQuery: time.Duration(*slowMs * float64(time.Millisecond)),
		})
	}

	var tr *obs.Trace
	if *traceFile != "" || *metrics || *obsAddr != "" {
		tr = obs.New("expdriver")
	}
	var hub *obshttp.Hub
	if *obsAddr != "" {
		hub = obshttp.NewHub(obshttp.Config{
			Registry:  tr.Metrics(),
			SlowQuery: time.Duration(*slowMs * float64(time.Millisecond)),
			Status: obshttp.StatusInfo{
				Component: "expdriver",
				Details: map[string]string{
					"exp":   *exp,
					"scale": *scale,
					"seed":  fmt.Sprint(*seed),
				},
			},
		})
		addr, err := hub.Serve(*obsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs: %v\n", err)
			os.Exit(1)
		}
		defer hub.Close()
		fmt.Printf("telemetry on http://%s/metrics (also /debug/queries, /debug/inflight)\n", addr)
	}

	cfg := bench.Config{Seed: *seed, ILPMaxExplored: *maxExplored, Workers: *par}
	rcfg := bench.RealConfig{Seed: *seed, ILPMaxExplored: *maxExplored, Workers: *par, Trace: tr}
	lcfg := bench.LogicalConfig{Seed: *seed, Trace: tr}
	if hub != nil {
		rcfg.Hooks = hub
		lcfg.Hooks = hub
	}
	switch *scale {
	case "small":
		cfg.Units = 256
		cfg.CellsPerSide = 1 << 20
		cfg.ILPBudget = 200 * time.Millisecond
		rcfg.AISCells = 40_000
		rcfg.MODISCells = 60_000
		rcfg.ILPBudget = 200 * time.Millisecond
		lcfg.CellsPerSide = 10_000
	case "full":
		// Library defaults: 1024 units, 4M cells/side, 2s budget.
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *budget != 0 {
		cfg.ILPBudget = *budget
		rcfg.ILPBudget = *budget
	}
	if *calibrate {
		cfg.Params = bench.Calibrate(0, *seed)
		fmt.Printf("calibrated cost parameters: m=%.3gs b=%.3gs p=%.3gs t=%.3gs per cell\n\n",
			cfg.Params.Merge, cfg.Params.Build, cfg.Params.Probe, cfg.Params.Transfer)
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	var logicalRows []bench.LogicalMeasurement
	logicalOnce := func() error {
		if logicalRows != nil {
			return nil
		}
		rows, err := bench.RunLogical(lcfg)
		if err != nil {
			return err
		}
		logicalRows = rows
		return nil
	}
	renderLogical := func() error {
		if err := logicalOnce(); err != nil {
			return err
		}
		fit, err := bench.Fig5Fit(logicalRows)
		if err != nil {
			return err
		}
		bench.RenderLogical(os.Stdout, logicalRows, fit)
		fmt.Printf("minimum-cost plan is also fastest: %v\n\n", bench.MinCostIsFastest(logicalRows))
		return nil
	}

	run("fig5", renderLogical)
	if *exp == "fig6" { // fig5 and fig6 share one run and renderer
		run("fig6", renderLogical)
	}
	run("table1", func() error {
		rows, fits, err := bench.Table1Operators(nil, *seed)
		if err != nil {
			return err
		}
		bench.RenderTable1(os.Stdout, rows, fits)
		return nil
	})
	run("table2", func() error {
		rows, fit, err := bench.Table2(cfg)
		if err != nil {
			return err
		}
		bench.RenderTable2(os.Stdout, rows, fit)
		return nil
	})
	run("fig7", func() error {
		rows, err := bench.Fig7(cfg)
		if err != nil {
			return err
		}
		bench.RenderPhys(os.Stdout, "Figure 7: merge join under skew", "skew", rows, bench.GroupByAlpha)
		return nil
	})
	run("fig8", func() error {
		rows, err := bench.Fig8(cfg)
		if err != nil {
			return err
		}
		bench.RenderPhys(os.Stdout, "Figure 8: hash join under skew", "skew", rows, bench.GroupByAlpha)
		return nil
	})
	run("fig9", func() error {
		rows, err := bench.Fig9(rcfg)
		if err != nil {
			return err
		}
		bench.RenderReal(os.Stdout, "Figure 9: merge join on real-world analogue (beneficial skew)", rows)
		fmt.Printf("end-to-end speedup over baseline: %.2fx (paper ~2.5x)\n", bench.Speedup(rows))
		fmt.Printf("data alignment reduction:        %.2fx (paper ~20x)\n\n", bench.AlignReduction(rows))
		return nil
	})
	run("adversarial", func() error {
		rows, err := bench.Adversarial(rcfg)
		if err != nil {
			return err
		}
		bench.RenderReal(os.Stdout, "Section 6.3.2: adversarial skew (two matched bands, NDVI join)", rows)
		return nil
	})
	run("fig10", func() error {
		rows, err := bench.Fig10(cfg, nil)
		if err != nil {
			return err
		}
		bench.RenderPhys(os.Stdout, "Figure 10: scale-out of merge join (skew a=1.0)", "nodes", rows, bench.GroupByNodes)
		return nil
	})
	run("planquality", func() error {
		rows, err := bench.PlanQuality(cfg, nil)
		if err != nil {
			return err
		}
		bench.RenderPlanQuality(os.Stdout, rows)
		if *jsonFile != "" {
			payload := struct {
				Experiment string                   `json:"experiment"`
				Rows       []bench.PlanQualityRow   `json:"rows"`
				Summary    bench.PlanQualitySummary `json:"summary"`
			}{"planquality", rows, bench.SummarizePlanQuality(rows)}
			data, err := json.MarshalIndent(payload, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*jsonFile, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("plan-quality JSON written to %s\n\n", *jsonFile)
		}
		if *gate {
			if err := bench.PlanQualityGate(rows); err != nil {
				return err
			}
			fmt.Printf("plan-quality gate passed: kept ratios <= %.2f, cache hits <= %.0f%% of cold plans\n\n",
				bench.MakespanRatioLimit, bench.CacheHitBudgetFrac*100)
		}
		return nil
	})
	if *exp == "serve" { // opt-in only: not part of -exp all
		scfg := servebench.Config{Seed: *seed, Queries: *serveN}
		if *scale == "small" {
			if scfg.Queries == 0 {
				scfg.Queries = 300
			}
			scfg.InteractiveCells = 800
			scfg.ScanCells = 6000
		}
		if *serveConc != "" {
			for _, part := range strings.Split(*serveConc, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil || n < 1 {
					fmt.Fprintf(os.Stderr, "serve: bad -serve-conc %q\n", *serveConc)
					os.Exit(2)
				}
				scfg.Levels = append(scfg.Levels, n)
			}
		}
		rows, err := servebench.Run(scfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
		servebench.Render(os.Stdout, rows)
		if *jsonFile != "" {
			payload := struct {
				Experiment string           `json:"experiment"`
				Rows       []servebench.Row `json:"rows"`
			}{"serve", rows}
			data, err := json.MarshalIndent(payload, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*jsonFile, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("serve JSON written to %s\n\n", *jsonFile)
		}
		if *gate {
			if err := servebench.Gate(rows); err != nil {
				fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("serve gate passed: 4-way throughput criterion met (%.0fx serial on >= 4 CPUs), interactive p99 within %.0fx serial (floor %.0fms)\n\n",
				servebench.SpeedupMin, servebench.P99FactorLimit, servebench.P99FloorMs)
		}
	}
	if *exp == "beyond" { // opt-in only: not part of -exp all
		bcfg := cfg
		if *scale == "full" {
			bcfg.Units = 0 // let Beyond pick its doubled-unit default
		}
		rows, err := bench.Beyond(bcfg, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "beyond: %v\n", err)
			os.Exit(1)
		}
		bench.RenderPhys(os.Stdout, "Beyond-paper scale-out: merge join, 16-64 nodes (skew a=1.0)", "nodes", rows, bench.GroupByNodes)
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if err := tr.WriteChrome(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nChrome trace written to %s (open in ui.perfetto.dev)\n", *traceFile)
	}
	if *metrics {
		fmt.Println("\nmetrics:")
		if err := tr.Metrics().WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if hub != nil && *obsHold > 0 {
		fmt.Printf("holding telemetry endpoint for %s\n", *obsHold)
		time.Sleep(*obsHold)
	}
}
