// Command datagen generates the repository's synthetic datasets and
// writes them as .sjar array files usable by cmd/shufflejoin.
//
// Usage:
//
//	datagen -kind ais   -name Broadcast -cells 110000 -out data/
//	datagen -kind modis -name Band1     -cells 170000 -out data/
//	datagen -kind zipf  -name A -cells 4000000 -alpha 1.0 -grid 32 -out data/
//	datagen -kind pair  -cells 40000 -sel 0.1 -out data/   (writes A and B)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"shufflejoin/internal/array"
	"shufflejoin/internal/storage"
	"shufflejoin/internal/workload"
)

func main() {
	var (
		kind  = flag.String("kind", "", "dataset kind: ais, modis, zipf, pair")
		name  = flag.String("name", "", "array name (defaults per kind)")
		cells = flag.Int64("cells", 100_000, "occupied cells to generate")
		seed  = flag.Int64("seed", 1, "deterministic seed")
		alpha = flag.Float64("alpha", 1.0, "Zipf skew for -kind zipf")
		grid  = flag.Int64("grid", 32, "chunks per dimension for -kind zipf")
		sel   = flag.Float64("sel", 1.0, "join selectivity for -kind pair")
		out   = flag.String("out", "data", "output directory")
	)
	flag.Parse()

	store, err := storage.NewStore(*out)
	if err != nil {
		fail(err)
	}
	save := func(a *array.Array) {
		if err := store.Save(a); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s: %s (%d cells, %d chunks, ~%d bytes)\n",
			a.Schema.Name, a.Schema, a.CellCount(), a.ChunkCount(), a.StoredBytes())
	}

	switch *kind {
	case "ais":
		n := orDefault(*name, "Broadcast")
		save(workload.AISLike(n, workload.GeoConfig{Cells: *cells, Seed: *seed}))
	case "modis":
		n := orDefault(*name, "Band1")
		save(workload.MODISLike(n, workload.GeoConfig{Cells: *cells, Seed: *seed}))
	case "zipf":
		n := orDefault(*name, "A")
		rng := rand.New(rand.NewSource(*seed))
		sizes := workload.ZipfUnitSizes(int(*grid**grid), *alpha, *cells, rng)
		side := *grid * 200 // 200 logical coordinates per chunk per dim
		a, err := workload.Grid2D(n, side, 200, sizes, *seed)
		if err != nil {
			fail(err)
		}
		save(a)
	case "pair":
		a, b, err := workload.SelectivityPair(*cells, *cells, 32, *sel, *seed)
		if err != nil {
			fail(err)
		}
		save(a)
		save(b)
	default:
		fmt.Fprintln(os.Stderr, "datagen: -kind must be one of ais, modis, zipf, pair")
		os.Exit(2)
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
