package shufflejoin

import (
	"fmt"
	"strings"

	"shufflejoin/internal/aql"
	"shufflejoin/internal/array"
	"shufflejoin/internal/exec"
	"shufflejoin/internal/join"
)

// algoByName maps user-facing algorithm names.
func algoByName(name string) (join.Algorithm, error) {
	switch name {
	case "hash":
		return join.Hash, nil
	case "merge":
		return join.Merge, nil
	case "nestedloop", "nested-loop", "nl":
		return join.NestedLoop, nil
	}
	return 0, fmt.Errorf("shufflejoin: unknown algorithm %q", name)
}

// Result is the outcome of a query: the chosen plans, the phase timing
// breakdown, and the materialized output cells.
type Result struct {
	// Plan is the logical plan as an AFL expression, e.g.
	// "redim(hashJoin(hash(A), hash(B)), C)".
	Plan string
	// Algorithm is the cell-comparison algorithm used.
	Algorithm string
	// Planner names the physical planner that assigned join units.
	Planner string
	// Matches is the number of matched cell pairs (= output cells).
	Matches int64
	// CellsMoved is the number of cells shipped during data alignment.
	CellsMoved int64
	// ClampedCells counts output cells whose coordinates fell outside the
	// destination's dimension ranges and were clamped onto the boundary.
	// Non-zero values signal a lossy store; WithStrictBounds turns them
	// into errors instead.
	ClampedCells int64

	// Modeled phase durations in seconds, as in the paper's figures:
	// planning is real wall time; alignment is the simulated shuffle
	// makespan; comparison is the slowest node's modeled time.
	PlanSeconds    float64
	AlignSeconds   float64
	CompareSeconds float64
	TotalSeconds   float64

	// OutputSchema is the destination schema literal.
	OutputSchema string

	// JoinOrder lists the per-step join order for multi-way queries
	// (empty for two-way joins).
	JoinOrder []string

	output *array.Array
}

func newResult(rep *exec.Report) *Result {
	return &Result{
		Plan:           rep.Logical.Describe(),
		Algorithm:      rep.Logical.Algo.String(),
		Planner:        rep.Physical.Planner,
		Matches:        rep.Matches,
		CellsMoved:     rep.CellsMoved,
		ClampedCells:   rep.ClampedCells,
		PlanSeconds:    rep.PlanTime,
		AlignSeconds:   rep.AlignTime,
		CompareSeconds: rep.CompareTime,
		TotalSeconds:   rep.Total,
		OutputSchema:   rep.Output.Schema.String(),
		output:         rep.Output,
	}
}

func newMultiResult(res *aql.MultiResult) *Result {
	r := &Result{
		Plan:           strings.Join(res.Order, " ; "),
		Algorithm:      "multi",
		Matches:        res.Matches,
		PlanSeconds:    res.PlanSeconds,
		AlignSeconds:   res.AlignSeconds,
		CompareSeconds: res.CompareSeconds,
		TotalSeconds:   res.TotalSeconds,
		OutputSchema:   res.Output.Schema.String(),
		JoinOrder:      res.Order,
		output:         res.Output,
	}
	for _, step := range res.Steps {
		r.CellsMoved += step.CellsMoved
		r.ClampedCells += step.ClampedCells
		if r.Planner == "" {
			r.Planner = step.Physical.Planner
		}
	}
	return r
}

// Cell is one output cell: coordinates and attribute values (int64,
// float64, or string).
type Cell struct {
	Coords []int64
	Values []any
}

// Cells materializes the full output in deterministic order. Intended for
// small results; use Scan for large ones.
func (r *Result) Cells() []Cell {
	var out []Cell
	r.Scan(func(c Cell) bool {
		out = append(out, c)
		return true
	})
	return out
}

// Scan streams output cells in deterministic (chunk C-order) order;
// returning false stops the scan.
func (r *Result) Scan(fn func(Cell) bool) {
	r.output.Scan(func(coords []int64, attrs []array.Value) bool {
		c := Cell{Coords: append([]int64(nil), coords...)}
		c.Values = make([]any, len(attrs))
		for i, v := range attrs {
			switch v.Kind {
			case array.TypeInt64:
				c.Values[i] = v.Int
			case array.TypeFloat64:
				c.Values[i] = v.F
			default:
				c.Values[i] = v.Str
			}
		}
		return fn(c)
	})
}

// String summarizes the result for logging.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d matches via %s [%s planner]", r.Matches, r.Plan, r.Planner)
	fmt.Fprintf(&b, " plan=%.3fs align=%.3fs compare=%.3fs total=%.3fs moved=%d cells",
		r.PlanSeconds, r.AlignSeconds, r.CompareSeconds, r.TotalSeconds, r.CellsMoved)
	return b.String()
}

// PlanInfo is one candidate logical plan in an Explain result.
type PlanInfo struct {
	Plan        string // AFL rendering, e.g. "mergeJoin(redim(A), redim(B))"
	Algorithm   string
	Units       string // "chunks" or "hash buckets"
	NumUnits    int
	Cost        float64 // total modeled cost (abstract per-cell units)
	AlignCost   float64
	CompareCost float64
	OutputCost  float64
}

// Explanation is the optimizer's view of a query: the selectivity estimate
// it used and every valid logical plan, cheapest first.
type Explanation struct {
	Selectivity float64
	Plans       []PlanInfo
}

// SaveAs registers the query output as a new array in the database so
// follow-up queries can join against it (materialized query chaining).
func (r *Result) SaveAs(db *DB, name string) (*Array, error) {
	if name == "" {
		return nil, fmt.Errorf("shufflejoin: SaveAs needs a name")
	}
	out := r.output.Clone()
	out.Schema.Name = name
	ar := &Array{db: db, inner: out}
	ar.Seal()
	return ar, nil
}
