package shufflejoin

import (
	"fmt"
	"io"
	"strings"

	"shufflejoin/internal/aql"
	"shufflejoin/internal/array"
	"shufflejoin/internal/join"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/pipeline"
)

// algoByName maps user-facing algorithm names.
func algoByName(name string) (join.Algorithm, error) {
	switch name {
	case "hash":
		return join.Hash, nil
	case "merge":
		return join.Merge, nil
	case "nestedloop", "nested-loop", "nl":
		return join.NestedLoop, nil
	}
	return 0, fmt.Errorf("shufflejoin: unknown algorithm %q", name)
}

// Result is the outcome of a query: the chosen plans, the phase timing
// breakdown, and the materialized output cells. Queries execute through
// the staged pipeline engine (LogicalPlan → SliceMap → PhysicalPlan →
// Align → Compare → Assemble; see internal/pipeline); each field's
// comment names the stage its value comes from.
type Result struct {
	// Plan is the logical plan as an AFL expression, e.g.
	// "redim(hashJoin(hash(A), hash(B)), C)" (LogicalPlan stage).
	Plan string
	// Algorithm is the cell-comparison algorithm used (LogicalPlan stage).
	Algorithm string
	// Planner names the physical planner that assigned join units
	// (PhysicalPlan stage).
	Planner string
	// PlanSource records how the plans were obtained: "cached" (plan-cache
	// hit, revalidated against current statistics), "greedy" (the
	// WithGreedyPlanning fast path), or "full" (complete enumeration and
	// the configured physical planner — including greedy-path queries
	// whose predicted regret forced the fallback). Empty for multi-way
	// queries (LogicalPlan/PhysicalPlan stages).
	PlanSource string
	// PlanRegret is the greedy plan's predicted regret against the
	// analytic cost lower bound when the greedy fast path ran; zero
	// otherwise (PhysicalPlan stage).
	PlanRegret float64
	// Matches is the number of matched cell pairs (= output cells)
	// (Compare stage).
	Matches int64
	// CellsMoved is the number of cells shipped during data alignment
	// (PhysicalPlan stage).
	CellsMoved int64
	// ClampedCells counts output cells whose coordinates fell outside the
	// destination's dimension ranges and were clamped onto the boundary.
	// Non-zero values signal a lossy store; WithStrictBounds turns them
	// into errors instead (Assemble stage).
	ClampedCells int64
	// PeakBatchBytes is the high-water mark of mapped batch storage on the
	// streaming data plane — the query's working-set bound, deterministic
	// across Parallelism settings. Zero when the query ran on the
	// materializing reference path (WithMaterializedExecution). Multi-way
	// queries report the largest per-step peak (SliceMap stage).
	PeakBatchBytes int64
	// InternedStrings is the number of distinct strings in the query's
	// dictionary; string cells carry 4-byte codes through the shuffle
	// instead of copies (SliceMap stage; summed across multi-way steps).
	InternedStrings int64
	// MemoryOverflowBytes is how far PeakBatchBytes exceeded the budget
	// set with WithMemoryBudget — zero when no budget was set or the query
	// fit. WithStrictMemory turns overflow into an error instead (SliceMap
	// stage; summed across multi-way steps).
	MemoryOverflowBytes int64

	// Modeled phase durations in seconds, as in the paper's figures:
	// planning is real wall time (PhysicalPlan stage); alignment is the
	// simulated shuffle makespan (Align stage); comparison is the slowest
	// node's modeled time (Compare stage).
	PlanSeconds    float64
	AlignSeconds   float64
	CompareSeconds float64
	TotalSeconds   float64

	// Skew is the comparison phase's straggler ratio: the slowest node's
	// modeled compare time over the mean (1 = perfectly balanced, 0 when
	// no compare work exists). Multi-way queries report the ratio over
	// per-node times summed across steps (Compare stage).
	Skew float64
	// StragglerNode is the node with the largest modeled compare time
	// (lowest id on ties), or -1 when no compare work exists (Compare
	// stage).
	StragglerNode int
	// LockWaitSeconds is the total simulated time senders spent stalled on
	// receiver write locks during data alignment — shuffle congestion
	// (Align stage).
	LockWaitSeconds float64

	// OutputSchema is the destination schema literal.
	OutputSchema string

	// JoinOrder lists the per-step join order for multi-way queries
	// (empty for two-way joins).
	JoinOrder []string

	// Profile is the query's EXPLAIN ANALYZE digest, populated when the
	// query ran with WithProfile or WithQueryLog (nil otherwise, and nil
	// for multi-way queries). See DB.ExplainAnalyze.
	Profile *Profile

	// Per-node diagnostics backing TraceSummary (node order; summed across
	// steps for multi-way queries).
	nodeCompare  []float64
	nodeSend     []float64
	nodeRecv     []float64
	nodeLockWait []float64

	trace  *obs.Trace
	output *array.Array
}

func newResult(rep *pipeline.Report) *Result {
	return &Result{
		Plan:                rep.Logical.Describe(),
		Algorithm:           rep.Logical.Algo.String(),
		Planner:             rep.Physical.Planner,
		PlanSource:          rep.PlanSource,
		PlanRegret:          rep.PlanRegret,
		Matches:             rep.Matches,
		CellsMoved:          rep.CellsMoved,
		ClampedCells:        rep.ClampedCells,
		PeakBatchBytes:      rep.PeakBatchBytes,
		InternedStrings:     rep.InternedStrings,
		MemoryOverflowBytes: rep.MemoryOverflowBytes,
		PlanSeconds:         rep.PlanTime,
		AlignSeconds:        rep.AlignTime,
		CompareSeconds:      rep.CompareTime,
		TotalSeconds:        rep.Total,
		Skew:                rep.Skew,
		StragglerNode:       rep.StragglerNode,
		LockWaitSeconds:     rep.LockWaitSeconds,
		OutputSchema:        rep.Output.Schema.String(),
		nodeCompare:         rep.NodeCompareTime,
		nodeSend:            rep.Align.SendBusy,
		nodeRecv:            rep.Align.RecvBusy,
		nodeLockWait:        rep.Align.RecvLockWait,
		Profile:             rep.Profile,
		output:              rep.Output,
	}
}

func newMultiResult(res *aql.MultiResult) *Result {
	r := &Result{
		Plan:           strings.Join(res.Order, " ; "),
		Algorithm:      "multi",
		Matches:        res.Matches,
		PlanSeconds:    res.PlanSeconds,
		AlignSeconds:   res.AlignSeconds,
		CompareSeconds: res.CompareSeconds,
		TotalSeconds:   res.TotalSeconds,
		StragglerNode:  -1,
		OutputSchema:   res.Output.Schema.String(),
		JoinOrder:      res.Order,
		output:         res.Output,
	}
	for _, step := range res.Steps {
		r.CellsMoved += step.CellsMoved
		r.ClampedCells += step.ClampedCells
		r.LockWaitSeconds += step.LockWaitSeconds
		if step.PeakBatchBytes > r.PeakBatchBytes {
			r.PeakBatchBytes = step.PeakBatchBytes
		}
		r.InternedStrings += step.InternedStrings
		r.MemoryOverflowBytes += step.MemoryOverflowBytes
		if r.Planner == "" {
			r.Planner = step.Physical.Planner
		}
		if r.nodeCompare == nil {
			k := len(step.NodeCompareTime)
			r.nodeCompare = make([]float64, k)
			r.nodeSend = make([]float64, k)
			r.nodeRecv = make([]float64, k)
			r.nodeLockWait = make([]float64, k)
		}
		for n := range step.NodeCompareTime {
			r.nodeCompare[n] += step.NodeCompareTime[n]
			r.nodeSend[n] += step.Align.SendBusy[n]
			r.nodeRecv[n] += step.Align.RecvBusy[n]
			r.nodeLockWait[n] += step.Align.RecvLockWait[n]
		}
	}
	r.Skew, r.StragglerNode = skewOf(r.nodeCompare)
	return r
}

// skewOf returns the straggler ratio (max/mean) of per-node compare times
// and the argmax node, or (0, -1) when no node has work.
func skewOf(times []float64) (float64, int) {
	var sum, max float64
	straggler := -1
	for node, t := range times {
		sum += t
		if straggler == -1 || t > max {
			max, straggler = t, node
		}
	}
	if sum == 0 {
		return 0, -1
	}
	return max / (sum / float64(len(times))), straggler
}

// Cell is one output cell: coordinates and attribute values (int64,
// float64, or string).
type Cell struct {
	Coords []int64
	Values []any
}

// Cells materializes the full output in deterministic order. Intended for
// small results; use Scan for large ones.
func (r *Result) Cells() []Cell {
	var out []Cell
	r.Scan(func(c Cell) bool {
		out = append(out, c)
		return true
	})
	return out
}

// Scan streams output cells in deterministic (chunk C-order) order;
// returning false stops the scan.
func (r *Result) Scan(fn func(Cell) bool) {
	r.output.Scan(func(coords []int64, attrs []array.Value) bool {
		c := Cell{Coords: append([]int64(nil), coords...)}
		c.Values = make([]any, len(attrs))
		for i, v := range attrs {
			switch v.Kind {
			case array.TypeInt64:
				c.Values[i] = v.Int
			case array.TypeFloat64:
				c.Values[i] = v.F
			default:
				c.Values[i] = v.Str
			}
		}
		return fn(c)
	})
}

// String summarizes the result for logging.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d matches via %s [%s planner]", r.Matches, r.Plan, r.Planner)
	if r.PlanSource != "" {
		fmt.Fprintf(&b, " plan_source=%s", r.PlanSource)
		if r.PlanRegret > 0 {
			fmt.Fprintf(&b, " regret=%.3f", r.PlanRegret)
		}
	}
	fmt.Fprintf(&b, " plan=%.3fs align=%.3fs compare=%.3fs total=%.3fs moved=%d cells",
		r.PlanSeconds, r.AlignSeconds, r.CompareSeconds, r.TotalSeconds, r.CellsMoved)
	if r.ClampedCells > 0 {
		fmt.Fprintf(&b, " clamped=%d cells", r.ClampedCells)
	}
	return b.String()
}

// TraceSummary renders the query's phase breakdown and skew/congestion
// diagnostics as a human-readable table: per-phase modeled times, the
// comparison-skew straggler, and per-node link activity including receiver
// lock-wait. When the query ran with WithTrace, the metric registry is
// appended. Works on untraced results too (from the always-on diagnostics).
func (r *Result) TraceSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s [%s planner, %s join]\n", r.Plan, r.Planner, r.Algorithm)
	fmt.Fprintf(&b, "matches=%d moved=%d clamped=%d\n\n", r.Matches, r.CellsMoved, r.ClampedCells)
	fmt.Fprintf(&b, "%-14s %12s\n", "phase", "modeled_s")
	fmt.Fprintf(&b, "%-14s %12.4f\n", "plan", r.PlanSeconds)
	fmt.Fprintf(&b, "%-14s %12.4f\n", "align", r.AlignSeconds)
	fmt.Fprintf(&b, "%-14s %12.4f\n", "compare", r.CompareSeconds)
	fmt.Fprintf(&b, "%-14s %12.4f\n\n", "total", r.TotalSeconds)
	if r.StragglerNode >= 0 {
		fmt.Fprintf(&b, "compare skew %.3f (straggler: node %d)\n", r.Skew, r.StragglerNode)
	} else {
		fmt.Fprintf(&b, "compare skew n/a (no compare work)\n")
	}
	fmt.Fprintf(&b, "lock wait    %.4fs total across receiver links\n", r.LockWaitSeconds)
	if len(r.nodeCompare) > 0 {
		fmt.Fprintf(&b, "\n%-6s %12s %12s %12s %14s\n", "node", "compare_s", "send_s", "recv_s", "lock_wait_s")
		for n := range r.nodeCompare {
			marker := ""
			if n == r.StragglerNode {
				marker = "  <- straggler"
			}
			fmt.Fprintf(&b, "%-6d %12.4f %12.4f %12.4f %14.4f%s\n",
				n, r.nodeCompare[n], r.nodeSend[n], r.nodeRecv[n], r.nodeLockWait[n], marker)
		}
	}
	if r.trace != nil {
		fmt.Fprintf(&b, "\nmetrics\n")
		r.trace.Metrics().WriteTable(&b)
	}
	return b.String()
}

// ChromeTrace writes the query's trace in Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing: one process per
// simulated node, transfers drawn as flow arrows between sender and
// receiver threads. The query must have run with WithTrace.
func (r *Result) ChromeTrace(w io.Writer) error {
	if r.trace == nil {
		return fmt.Errorf("shufflejoin: query ran without tracing; pass WithTrace()")
	}
	return r.trace.WriteChrome(w)
}

// MetricsJSON writes the query's metric registry as a JSON array in
// registration order. The query must have run with WithTrace.
func (r *Result) MetricsJSON(w io.Writer) error {
	if r.trace == nil {
		return fmt.Errorf("shufflejoin: query ran without tracing; pass WithTrace()")
	}
	return r.trace.Metrics().WriteJSON(w)
}

// traceFingerprint canonicalizes the span tree and metrics with wall-clock
// quantities masked; used by determinism tests.
func (r *Result) traceFingerprint() string { return r.trace.Fingerprint() }

// PlanInfo is one candidate logical plan in an Explain result.
type PlanInfo struct {
	Plan        string // AFL rendering, e.g. "mergeJoin(redim(A), redim(B))"
	Algorithm   string
	Units       string // "chunks" or "hash buckets"
	NumUnits    int
	Cost        float64 // total modeled cost (abstract per-cell units)
	AlignCost   float64
	CompareCost float64
	OutputCost  float64
}

// Explanation is the optimizer's view of a query: the selectivity estimate
// it used and every valid logical plan, cheapest first.
type Explanation struct {
	Selectivity float64
	Plans       []PlanInfo
}

// SaveAs registers the query output as a new array in the database so
// follow-up queries can join against it (materialized query chaining).
func (r *Result) SaveAs(db *DB, name string) (*Array, error) {
	if name == "" {
		return nil, fmt.Errorf("shufflejoin: SaveAs needs a name")
	}
	out := r.output.Clone()
	out.Schema.Name = name
	ar := &Array{db: db, inner: out}
	ar.Seal()
	return ar, nil
}
