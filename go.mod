module shufflejoin

go 1.22
