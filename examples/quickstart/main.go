// Quickstart: build two small arrays, run a dimension-to-dimension merge
// join over a simulated 4-node cluster, and inspect the result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"shufflejoin"
)

func main() {
	// A 4-node shared-nothing array database.
	db, err := shufflejoin.Open(4)
	if err != nil {
		log.Fatal(err)
	}

	// Two 2-D arrays sharing a dimension space: 100x100 coordinates in
	// 20x20 chunks (the paper's Figure 1 layout, scaled up).
	temps, err := db.CreateArray("Temps<celsius:float>[x=1,100,20, y=1,100,20]")
	if err != nil {
		log.Fatal(err)
	}
	winds, err := db.CreateArray("Winds<speed:float>[x=1,100,20, y=1,100,20]")
	if err != nil {
		log.Fatal(err)
	}

	// Sparse data: sensors cover only part of the grid.
	for x := int64(1); x <= 100; x++ {
		for y := int64(1); y <= 100; y += 3 {
			if err := temps.Insert([]int64{x, y}, 15.0+float64((x*y)%20)); err != nil {
				log.Fatal(err)
			}
		}
		for y := int64(1); y <= 100; y += 2 {
			if err := winds.Insert([]int64{x, y}, float64((x+y)%30)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// A D:D equi-join on both dimensions: the optimizer picks a merge
	// join with no reorganization, since the shapes already align.
	res, err := db.Query(`SELECT Temps.celsius, Winds.speed
		FROM Temps, Winds
		WHERE Temps.x = Winds.x AND Temps.y = Winds.y`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("plan:          ", res.Plan)
	fmt.Println("algorithm:     ", res.Algorithm)
	fmt.Println("matches:       ", res.Matches)
	fmt.Println("cells moved:   ", res.CellsMoved)
	fmt.Printf("data align:     %.4fs (simulated cluster time)\n", res.AlignSeconds)
	fmt.Printf("cell compare:   %.4fs\n", res.CompareSeconds)

	fmt.Println("\nfirst cells where both sensors report:")
	n := 0
	res.Scan(func(c shufflejoin.Cell) bool {
		fmt.Printf("  (%d,%d): %.1f C, wind %.0f\n", c.Coords[0], c.Coords[1], c.Values[0], c.Values[1])
		n++
		return n < 5
	})
}
