// Ship tracks vs. satellite imagery: the paper's Section 6.3.1 scenario.
// Marine-traffic broadcasts (AIS) cluster around ports — orders of
// magnitude more cells near major harbors than along empty coastline —
// while satellite reflectance data covers the globe near-uniformly.
// Joining them on the geospatial dimensions exhibits *beneficial skew*:
// for every geographic join unit there is a clearly cheaper side to move.
//
// The example joins the two datasets to study the environment at vessel
// locations, comparing the skew-aware minimum-bandwidth planner with the
// skew-agnostic baseline.
//
// Run with: go run ./examples/shiptracks
package main

import (
	"fmt"
	"log"

	"shufflejoin"
)

func main() {
	const query = `SELECT Band1.reflectance, Broadcast.ship_id
		FROM Band1, Broadcast
		WHERE Band1.longitude = Broadcast.longitude
		AND Band1.latitude = Broadcast.latitude`

	type outcome struct {
		name string
		res  *shufflejoin.Result
	}
	var outcomes []outcome
	for _, planner := range []string{"baseline", "mbh"} {
		db, err := shufflejoin.Open(4)
		if err != nil {
			log.Fatal(err)
		}
		// 110k AIS broadcasts (110 GB in the paper, scaled 1e-6) and 170k
		// satellite readings, on a 4-degree chunk grid = 4,050 geo units.
		ships := db.LoadShipTracks("Broadcast", 110_000, 42)
		band := db.LoadSatelliteBand("Band1", 170_000, 43)
		fmt.Printf("loaded %s: %d cells over %d chunks\n", ships.Name(), ships.CellCount(), ships.ChunkCount())
		fmt.Printf("loaded %s: %d cells over %d chunks\n", band.Name(), band.CellCount(), band.ChunkCount())

		res, err := db.Query(query,
			shufflejoin.WithPlanner(planner),
			shufflejoin.WithAlgorithm("merge"),
		)
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{planner, res})
	}

	fmt.Printf("\n%-10s %12s %12s %12s %12s\n", "planner", "align(s)", "compare(s)", "total(s)", "cells moved")
	for _, o := range outcomes {
		fmt.Printf("%-10s %12.4f %12.4f %12.4f %12d\n",
			o.name, o.res.AlignSeconds, o.res.CompareSeconds,
			o.res.AlignSeconds+o.res.CompareSeconds, o.res.CellsMoved)
	}
	base, mbh := outcomes[0].res, outcomes[1].res
	fmt.Printf("\nbeneficial skew: the skew-aware planner moved %.0fx fewer cells\n",
		float64(base.CellsMoved)/float64(mbh.CellsMoved))
	fmt.Printf("and finished %.1fx faster end-to-end (paper reports ~2.5x on real data)\n",
		(base.AlignSeconds+base.CompareSeconds)/(mbh.AlignSeconds+mbh.CompareSeconds))
	fmt.Printf("matches (satellite readings at vessel positions): %d\n", mbh.Matches)
}
