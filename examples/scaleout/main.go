// Scale-out: the Figure 10 experiment in miniature. The same skewed merge
// join runs on clusters of 2 to 12 nodes, showing that a skew-aware plan
// on a small cluster can beat a skew-agnostic plan on a much larger one.
//
// Run with: go run ./examples/scaleout
package main

import (
	"fmt"
	"log"
	"math/rand"

	"shufflejoin"
)

const (
	side  = 3200 // 16x16 chunks of 200x200 coordinates
	chunk = 200
	cells = 120_000
	zipfS = 1.3
	query = `SELECT A.v1 - B.v1, A.v2 - B.v2 FROM A, B WHERE A.i = B.i AND A.j = B.j`
	seedA = 11
	seedB = 12
)

// loadSkewedGrid fills a 2-D array whose per-chunk densities follow a
// Zipf law: a few chunks are hotspots, most are sparse. The hashed flag
// decorrelates the array's chunk placement from its partner's, as happens
// when two arrays are loaded at different times.
func loadSkewedGrid(db *shufflejoin.DB, name string, seed int64, hashed bool) {
	a, err := db.CreateArray(fmt.Sprintf("%s<v1:int, v2:int>[i=1,%d,%d, j=1,%d,%d]",
		name, side, chunk, side, chunk))
	if err != nil {
		log.Fatal(err)
	}
	if hashed {
		a.DistributeByHash()
	}
	rng := rand.New(rand.NewSource(seed))
	grid := int64(side / chunk)
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(grid*grid-1))
	// Each array gets its own hotspot locations (a seed-specific
	// permutation of chunk ranks): a dense chunk of A usually meets a
	// sparse chunk of B — the paper's beneficial skew.
	perm := rng.Perm(int(grid * grid))
	for n := 0; n < cells; n++ {
		hot := int64(perm[zipf.Uint64()])
		baseI := (hot / grid) * chunk
		baseJ := (hot % grid) * chunk
		err := a.Insert(
			[]int64{baseI + rng.Int63n(chunk) + 1, baseJ + rng.Int63n(chunk) + 1},
			rng.Int63n(1000), rng.Int63n(1000))
		if err != nil {
			log.Fatal(err)
		}
	}
}

func run(nodes int, planner string) *shufflejoin.Result {
	db, err := shufflejoin.Open(nodes)
	if err != nil {
		log.Fatal(err)
	}
	loadSkewedGrid(db, "A", seedA, false)
	loadSkewedGrid(db, "B", seedB, true)
	res, err := db.Query(query, shufflejoin.WithPlanner(planner), shufflejoin.WithAlgorithm("merge"))
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Printf("%-6s %-10s %12s %12s %12s\n", "nodes", "planner", "align(s)", "compare(s)", "exec(s)")
	var mbh2, base12 float64
	for _, nodes := range []int{2, 4, 8, 12} {
		for _, planner := range []string{"baseline", "mbh"} {
			res := run(nodes, planner)
			exec := res.AlignSeconds + res.CompareSeconds
			fmt.Printf("%-6d %-10s %12.4f %12.4f %12.4f\n",
				nodes, planner, res.AlignSeconds, res.CompareSeconds, exec)
			if nodes == 2 && planner == "mbh" {
				mbh2 = exec
			}
			if nodes == 12 && planner == "baseline" {
				base12 = exec
			}
		}
	}
	fmt.Printf("\nskew-aware on 2 nodes: %.4fs vs skew-agnostic on 12 nodes: %.4fs", mbh2, base12)
	if mbh2 < base12 {
		fmt.Println("  -> two smart nodes beat twelve naive ones, as in Figure 10")
	} else {
		fmt.Println()
	}
}
