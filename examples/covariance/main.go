// Covariance of two satellite bands — the "complex analytics that combine
// arrays" the paper's Section 8 points to as the destination for its
// optimization framework. The covariance needs every co-located pair of
// readings: exactly a D:D shuffle join on the full dimension space,
// followed by a streaming accumulation over the join output.
//
// Run with: go run ./examples/covariance
package main

import (
	"fmt"
	"log"
	"math"

	"shufflejoin"
)

func main() {
	db, err := shufflejoin.Open(4)
	if err != nil {
		log.Fatal(err)
	}
	// Two bands from the same sensor grid with independent readings
	// (adversarially skewed — their dense regions line up, as in
	// Section 6.3.2).
	db.LoadSatelliteBandPair("Band1", "Band2", 60_000, 7)

	res, err := db.Query(`SELECT Band1.reflectance, Band2.reflectance AS r2
		FROM Band1, Band2
		WHERE Band1.time = Band2.time
		AND Band1.longitude = Band2.longitude
		AND Band1.latitude = Band2.latitude`,
		shufflejoin.WithAlgorithm("merge"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joined %d co-located readings via %s\n", res.Matches, res.Plan)
	fmt.Printf("data align %.4fs, cell compare %.4fs (simulated cluster time)\n",
		res.AlignSeconds, res.CompareSeconds)

	// Streaming covariance over the join output.
	var n, sx, sy, sxy float64
	res.Scan(func(c shufflejoin.Cell) bool {
		x := c.Values[0].(float64)
		y := c.Values[1].(float64)
		n++
		sx += x
		sy += y
		sxy += x * y
		return true
	})
	if n < 2 {
		log.Fatal("not enough joined readings")
	}
	cov := (sxy - sx*sy/n) / (n - 1)
	fmt.Printf("cov(Band1, Band2) over %d cells = %.6f\n", int(n), cov)
	if math.IsNaN(cov) {
		log.Fatal("covariance undefined")
	}
}
