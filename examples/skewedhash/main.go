// Skewed hash join: an attribute-to-attribute join whose key distribution
// is heavily Zipfian, comparing the skew-aware physical planners against
// the skew-agnostic baseline — the Section 6.2.2 scenario of the paper in
// miniature.
//
// Two "event" arrays are joined on a user id whose popularity follows a
// Zipf law (a few users generate most events), so hash-bucket join units
// differ wildly in size. The baseline deals buckets to nodes blindly; the
// skew-aware planners place each bucket to minimize network transfer
// while balancing comparison load.
//
// Run with: go run ./examples/skewedhash
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"shufflejoin"
)

const (
	users  = 16_384
	clicks = 60_000
	zipfS  = 1.4
)

// buildDB loads a click stream whose user popularity is Zipfian (a few
// users generate most clicks — the skew) and a purchase table with one row
// per purchasing user (unique keys, so the join output stays linear).
func buildDB() *shufflejoin.DB {
	db, err := shufflejoin.Open(4)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, zipfS, 1, users-1)

	clickArr, err := db.CreateArray(fmt.Sprintf("Clicks<user:int>[t=1,%d,%d]", clicks, clicks/32))
	if err != nil {
		log.Fatal(err)
	}
	buyArr, err := db.CreateArray(fmt.Sprintf("Buys<buyer:int>[r=1,%d,%d]", users, users/32))
	if err != nil {
		log.Fatal(err)
	}
	// Hot users click in bursts: the popular user at time t sits near
	// t·users/clicks, so each user's activity clusters in a narrow time
	// band — and therefore on few storage chunks and few nodes. That gives
	// the hash buckets location skew on top of size skew, which is what
	// the skew-aware planners exploit.
	for t := int64(1); t <= clicks; t++ {
		user := (int64(zipf.Uint64()) + t*users/clicks) % users
		if err := clickArr.Insert([]int64{t}, user); err != nil {
			log.Fatal(err)
		}
	}
	for r := int64(1); r <= users; r++ {
		if err := buyArr.Insert([]int64{r}, r-1); err != nil {
			log.Fatal(err)
		}
	}
	return db
}

func main() {
	const query = `SELECT Clicks.t, Buys.r
		INTO Pairs<click_t:int, buy_r:int>[]
		FROM Clicks, Buys
		WHERE Clicks.user = Buys.buyer`

	fmt.Printf("%-10s %12s %12s %12s %12s %12s\n",
		"planner", "plan(s)", "align(s)", "compare(s)", "total(s)", "moved")
	best, worst := math.Inf(1), 0.0
	for _, planner := range []string{"baseline", "mbh", "tabu", "ilp", "coarse"} {
		// Fresh cluster per run so every planner sees the same layout.
		db := buildDB()
		res, err := db.Query(query,
			shufflejoin.WithPlanner(planner, 500*time.Millisecond),
			shufflejoin.WithAlgorithm("hash"),
			shufflejoin.WithSelectivity(10),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.4f %12.4f %12.4f %12.4f %12d\n",
			planner, res.PlanSeconds, res.AlignSeconds, res.CompareSeconds,
			res.TotalSeconds, res.CellsMoved)
		exec := res.AlignSeconds + res.CompareSeconds
		if exec < best {
			best = exec
		}
		if exec > worst {
			worst = exec
		}
	}
	fmt.Printf("\nskew-aware planning improved execution by up to %.1fx on this layout\n", worst/best)
}
