// Package shufflejoin is a skew-aware distributed join optimizer and
// executor for array databases — a from-scratch implementation of the
// shuffle join framework of "Skew-Aware Join Optimization for Array
// Databases" (SIGMOD 2015).
//
// The library models a shared-nothing array database: multidimensional
// sparse arrays chunked into multidimensional tiles, distributed over a
// simulated cluster. Equi-join queries written in an AQL subset are
// planned in two phases — a logical planner picks the join algorithm,
// join-unit granularity, and schema-alignment operators via dynamic
// programming; a physical planner assigns join units to nodes with a
// skew-aware analytical cost model — and then executed: slices shuffle
// across a discrete-event network with coordinator-managed write locks,
// and real cells flow through real join algorithms into the destination
// array.
//
// Quickstart:
//
//	db, _ := shufflejoin.Open(4)
//	a, _ := db.CreateArray("A<v:int>[i=1,1000,100]")
//	b, _ := db.CreateArray("B<w:int>[i=1,1000,100]")
//	// ... a.Insert / b.Insert ...
//	res, _ := db.Query("SELECT A.v, B.w FROM A, B WHERE A.i = B.i")
//	fmt.Println(res.Matches, res.Plan)
package shufflejoin

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"shufflejoin/internal/aql"
	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/exec"
	"shufflejoin/internal/flight"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/par"
	"shufflejoin/internal/physical"
	"shufflejoin/internal/pipeline"
	"shufflejoin/internal/plancache"
	"shufflejoin/internal/sched"
	"shufflejoin/internal/simnet"
	"shufflejoin/internal/storage"
	"shufflejoin/internal/workload"
)

// DB is a simulated shared-nothing array database cluster. A DB is safe
// for concurrent Query calls: two-way queries only read the shared
// catalog and run fully in parallel, while catalog mutations (sealing
// pending arrays, multi-way joins registering intermediates,
// Redimension) serialize behind a write lock.
type DB struct {
	cluster  *cluster.Cluster
	defaults queryConfig
	metrics  *obs.Registry

	// mu guards the catalog and the pending-array map: read-held for the
	// duration of a two-way query, write-held by sealing, multi-way
	// queries, and redimension.
	mu      sync.RWMutex
	pending map[string]*Array
}

// Open creates a database spread over the given number of nodes.
func Open(nodes int) (*DB, error) {
	c, err := cluster.New(nodes)
	if err != nil {
		return nil, err
	}
	return &DB{
		cluster: c,
		pending: make(map[string]*Array),
		defaults: queryConfig{
			planner: physical.MinBandwidthPlanner{},
		},
		metrics: obs.NewRegistry(),
	}, nil
}

// MetricsSnapshot returns the database's cumulative query metrics as an
// expvar-style flat map (counters and gauges by name; histograms as
// name.count/.sum/.min/.max). query.count, query.matches,
// query.cells_moved, and query.total_seconds accumulate for every query;
// queries run with WithTrace additionally fold their full per-query
// registry (alignment, skew, and per-node diagnostics) into the totals.
func (db *DB) MetricsSnapshot() map[string]float64 { return db.metrics.Snapshot() }

// recordQuery folds one finished query into the DB's cumulative metrics.
func (db *DB) recordQuery(r *Result) {
	db.metrics.Counter("query.count").Add(1)
	db.metrics.Counter("query.matches").Add(r.Matches)
	db.metrics.Counter("query.cells_moved").Add(r.CellsMoved)
	db.metrics.Gauge("query.total_seconds").Add(r.TotalSeconds)
	if r.trace != nil {
		db.metrics.AddFrom(r.trace.Metrics())
	}
}

// Nodes returns the cluster size.
func (db *DB) Nodes() int { return db.cluster.K }

// Array is a handle to an array being built or already loaded.
type Array struct {
	db     *DB
	inner  *array.Array
	loaded bool
	policy cluster.PlacementPolicy
}

// CreateArray declares a new array from a schema literal in the paper's
// notation, e.g. "A<v1:int, v2:float>[i=1,6,3, j=1,6,3]". Cells are added
// with Insert; the array is distributed over the cluster when first
// queried (or explicitly via Seal).
func (db *DB) CreateArray(schemaLiteral string) (*Array, error) {
	s, err := array.ParseSchema(schemaLiteral)
	if err != nil {
		return nil, err
	}
	if s.Name == "" {
		return nil, fmt.Errorf("shufflejoin: array schema needs a name")
	}
	a, err := array.New(s)
	if err != nil {
		return nil, err
	}
	ar := &Array{db: db, inner: a}
	db.mu.Lock()
	db.pending[s.Name] = ar
	db.mu.Unlock()
	return ar, nil
}

// Name returns the array's name.
func (ar *Array) Name() string { return ar.inner.Schema.Name }

// Schema returns the array's schema literal.
func (ar *Array) Schema() string { return ar.inner.Schema.String() }

// CellCount returns the number of occupied cells.
func (ar *Array) CellCount() int64 { return ar.inner.CellCount() }

// ChunkCount returns the number of stored chunks.
func (ar *Array) ChunkCount() int { return ar.inner.ChunkCount() }

// Insert stores one cell: coordinates (one per dimension) and attribute
// values (int64/int/float64/string, one per attribute).
func (ar *Array) Insert(coords []int64, values ...any) error {
	if ar.loaded {
		return fmt.Errorf("shufflejoin: %s is sealed; arrays are immutable once queried", ar.Name())
	}
	attrs := make([]array.Value, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case int:
			attrs[i] = array.IntValue(int64(x))
		case int64:
			attrs[i] = array.IntValue(x)
		case float64:
			attrs[i] = array.FloatValue(x)
		case string:
			attrs[i] = array.StringValue(x)
		default:
			return fmt.Errorf("shufflejoin: unsupported value type %T", v)
		}
	}
	return ar.inner.Put(coords, attrs)
}

// DistributeByHash switches the array's placement policy from the default
// round-robin to hashed chunk placement.
func (ar *Array) DistributeByHash() { ar.policy = cluster.HashChunks }

// Seal sorts, distributes, and registers the array, making it queryable.
// Queries seal pending arrays automatically.
func (ar *Array) Seal() {
	ar.db.mu.Lock()
	ar.sealLocked()
	ar.db.mu.Unlock()
}

// sealLocked is Seal with the DB's write lock already held.
func (ar *Array) sealLocked() {
	if ar.loaded {
		return
	}
	ar.inner.SortAll()
	ar.db.cluster.Load(ar.inner, ar.policy)
	ar.loaded = true
	delete(ar.db.pending, ar.Name())
}

// sealAll seals every pending array.
func (db *DB) sealAll() {
	db.mu.Lock()
	for _, ar := range db.pending {
		ar.sealLocked()
	}
	db.mu.Unlock()
}

// LoadShipTracks generates and loads an AIS-like ship-tracking array
// (heavily skewed toward port hotspots: ~85% of cells in ~5% of chunks),
// dimensioned [time, longitude, latitude] with ship_id and speed
// attributes. Used by the examples and benchmarks.
func (db *DB) LoadShipTracks(name string, cells, seed int64) *Array {
	a := workload.AISLike(name, workload.GeoConfig{Cells: cells, Seed: seed})
	ar := &Array{db: db, inner: a}
	ar.Seal()
	return ar
}

// LoadSatelliteBand generates and loads a MODIS-like satellite imagery
// band (near-uniform with mild equator-ward density), dimensioned
// [time, longitude, latitude] with a float reflectance attribute.
func (db *DB) LoadSatelliteBand(name string, cells, seed int64) *Array {
	a := workload.MODISLike(name, workload.GeoConfig{Cells: cells, Seed: seed})
	ar := &Array{db: db, inner: a}
	ar.Seal()
	return ar
}

// LoadSatelliteBandPair generates and loads two matched satellite bands
// (Section 6.3.2's adversarial layout): the second shares the first's
// sensor grid with independent readings and ~1.5% dropout.
func (db *DB) LoadSatelliteBandPair(name1, name2 string, cells, seed int64) (*Array, *Array) {
	b1, b2 := workload.MODISPair(name1, name2, workload.GeoConfig{Cells: cells, Seed: seed}, 0.015)
	a1 := &Array{db: db, inner: b1}
	a2 := &Array{db: db, inner: b2}
	a1.Seal()
	a2.Seal()
	return a1, a2
}

// LoadFile loads a serialized array (.sjar, as written by cmd/datagen)
// and registers it under its schema name.
func (db *DB) LoadFile(path string) (*Array, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := storage.ReadArray(f)
	if err != nil {
		return nil, err
	}
	ar := &Array{db: db, inner: a}
	ar.Seal()
	return ar, nil
}

// queryConfig collects per-query options.
type queryConfig struct {
	planner      physical.Planner
	selectivity  float64
	scheduling   simnet.Scheduling
	parallelism  int // 0 = one worker per CPU, 1 = sequential, n = n workers
	strictBounds bool
	batchSize    int   // streaming batch capacity in rows (0 = default)
	memBudget    int64 // per-query batch-memory budget in bytes (0 = unlimited)
	strictMemory bool  // budget overflow fails the query instead of counting
	materialize  bool  // run the materializing reference data plane
	forceAlgo    string
	trace        *obs.Trace
	cache        *plancache.Cache
	policy       *plancache.Policy
	profile      bool
	hooks        pipeline.QueryHooks
	flight       *flight.Recorder
	flightOff    bool
	postmortem   *flight.Postmortem
	ctx          context.Context // nil = Background
	timeout      time.Duration   // 0 = none
	class        sched.Class
	sched        *sched.Scheduler
}

// QueryOption customizes one Query call.
type QueryOption func(*queryConfig) error

// WithPlanner selects the physical planner: "baseline", "mbh", "tabu",
// "ilp", or "coarse". The optional budget applies to the ILP solvers.
func WithPlanner(name string, budget ...time.Duration) QueryOption {
	return func(c *queryConfig) error {
		b := 2 * time.Second
		if len(budget) > 0 {
			b = budget[0]
		}
		p, err := PlannerByName(name, b)
		if err != nil {
			return err
		}
		c.planner = p
		return nil
	}
}

// plannerWithWorkers propagates the query's parallelism knob into planners
// that have a worker-pool knob of their own, unless the caller already set
// one explicitly on the planner value. The planners treat Workers <= 1 as
// sequential, so the facade's 0-means-auto convention is resolved to a
// concrete worker count here.
func plannerWithWorkers(p physical.Planner, parallelism int) physical.Planner {
	w := par.Workers(parallelism)
	switch t := p.(type) {
	case physical.TabuPlanner:
		if t.Workers == 0 {
			t.Workers = w
		}
		return t
	case physical.ILPPlanner:
		if t.Workers == 0 {
			t.Workers = w
		}
		return t
	case physical.CoarseILPPlanner:
		if t.Workers == 0 {
			t.Workers = w
		}
		return t
	}
	return p
}

// PlannerByName resolves a planner name.
func PlannerByName(name string, budget time.Duration) (physical.Planner, error) {
	switch name {
	case "baseline", "b":
		return physical.BaselinePlanner{}, nil
	case "mbh", "minbandwidth":
		return physical.MinBandwidthPlanner{}, nil
	case "tabu":
		return physical.TabuPlanner{}, nil
	case "ilp":
		return physical.ILPPlanner{Budget: budget}, nil
	case "coarse", "ilp-c", "ilpcoarse":
		return physical.CoarseILPPlanner{Budget: budget}, nil
	default:
		return nil, fmt.Errorf("shufflejoin: unknown planner %q (want baseline|mbh|tabu|ilp|coarse)", name)
	}
}

// PlanCache is a signature-keyed cache of logical plans and physical
// assignments, shared across queries (and safe for concurrent ones).
// Create one with NewPlanCache and attach it per query via WithPlanCache;
// a repeated query whose data, cluster, and planning options are
// unchanged skips planning entirely, after a cheap revalidation of the
// cached assignment against current statistics. The signature covers the
// per-side data fingerprints (schema, chunk grid, per-chunk cell counts,
// placement, skew histogram) — so re-ingesting the same schema with a
// different skew profile misses by construction — plus node count,
// predicate, join-column histograms, and every planning option.
type PlanCache = plancache.Cache

// PlanCacheStats is the cumulative hit/miss/revalidation-reject counters
// of a PlanCache (PlanCache.Stats).
type PlanCacheStats = plancache.Stats

// NewPlanCache creates an empty plan cache to share across queries.
func NewPlanCache() *PlanCache { return plancache.New() }

// WithPlanCache attaches a shared plan cache to the query: the query's
// plan signature is looked up before planning, and on a hit the stored
// logical plan and physical assignment are replayed (after revalidation
// against current statistics). Misses and revalidation rejects plan
// normally and store the outcome for the next identical query.
func WithPlanCache(pc *PlanCache) QueryOption {
	return func(c *queryConfig) error {
		if pc == nil {
			return fmt.Errorf("shufflejoin: WithPlanCache needs a non-nil cache (use NewPlanCache)")
		}
		c.cache = pc
		return nil
	}
}

// WithGreedyPlanning enables the microsecond-class greedy planner fast
// path: the logical plan comes from a dominated candidate set instead of
// the full enumeration, and the physical assignment from
// center-of-gravity seeding with one bounded polish pass instead of the
// configured planner. When the greedy assignment's predicted regret
// against the analytic cost lower bound exceeds epsilon, the query falls
// back to full planning and keeps the cheaper plan (Result.PlanSource
// reports which path won). The optional epsilon overrides the default
// regret threshold (0.10, calibrated by the planquality experiment's
// Zipf sweep); it must be positive.
func WithGreedyPlanning(epsilon ...float64) QueryOption {
	return func(c *queryConfig) error {
		eps := plancache.DefaultEpsilon
		if len(epsilon) > 0 {
			eps = epsilon[0]
			if eps <= 0 {
				return fmt.Errorf("shufflejoin: greedy-planning epsilon must be positive, got %g", eps)
			}
		}
		c.policy = &plancache.Policy{Epsilon: eps}
		return nil
	}
}

// WithSelectivity supplies the optimizer's output-cardinality estimate:
// the join is expected to produce sel·(n_left + n_right) cells.
func WithSelectivity(sel float64) QueryOption {
	return func(c *queryConfig) error {
		if sel <= 0 {
			return fmt.Errorf("shufflejoin: selectivity must be positive")
		}
		c.selectivity = sel
		return nil
	}
}

// WithAlgorithm forces the join algorithm: "hash", "merge", or
// "nestedloop". By default the logical planner chooses.
func WithAlgorithm(algo string) QueryOption {
	return func(c *queryConfig) error {
		switch algo {
		case "hash", "merge", "nestedloop", "":
			c.forceAlgo = algo
			return nil
		}
		return fmt.Errorf("shufflejoin: unknown algorithm %q", algo)
	}
}

// WithFIFOShuffle replaces the paper's greedy lock-skipping shuffle
// scheduler with naive FIFO sending (for ablation).
func WithFIFOShuffle() QueryOption {
	return func(c *queryConfig) error {
		c.scheduling = simnet.FIFONoSkip
		return nil
	}
}

// WithParallelism sets the worker count for planning and execution: 0
// (the default) uses one worker per CPU, 1 runs fully sequentially, and
// n > 1 uses n workers. Query results, join statistics, and modeled phase
// times are identical at every setting; only wall-clock changes.
func WithParallelism(n int) QueryOption {
	return func(c *queryConfig) error {
		if n < 0 {
			return fmt.Errorf("shufflejoin: parallelism must be >= 0, got %d", n)
		}
		c.parallelism = n
		return nil
	}
}

// WithSequentialCompare disables goroutine parallelism during planning and
// cell comparison (output is identical either way). Equivalent to
// WithParallelism(1).
func WithSequentialCompare() QueryOption {
	return func(c *queryConfig) error {
		c.parallelism = 1
		return nil
	}
}

// WithStrictBounds makes a query fail when an output cell's coordinates
// fall outside the destination's declared dimension ranges, instead of
// silently clamping the cell onto the boundary.
func WithStrictBounds() QueryOption {
	return func(c *queryConfig) error {
		c.strictBounds = true
		return nil
	}
}

// WithBatchSize sets the streaming data plane's batch capacity in rows
// (cells per columnar batch). The default is 1024. Results are identical
// at every batch size; smaller batches lower the per-unit working set at
// the price of more per-batch bookkeeping.
func WithBatchSize(rows int) QueryOption {
	return func(c *queryConfig) error {
		if rows < 0 {
			return fmt.Errorf("shufflejoin: batch size must be >= 0, got %d", rows)
		}
		c.batchSize = rows
		return nil
	}
}

// WithMemoryBudget bounds the query's mapped batch storage to the given
// number of bytes. By default overflow is counted, not fatal: the query
// still completes and Result.MemoryOverflowBytes reports how far the
// peak exceeded the budget (mirroring the ClampedCells convention).
// Combine with WithStrictMemory to fail the query instead.
func WithMemoryBudget(bytes int64) QueryOption {
	return func(c *queryConfig) error {
		if bytes < 0 {
			return fmt.Errorf("shufflejoin: memory budget must be >= 0, got %d", bytes)
		}
		c.memBudget = bytes
		return nil
	}
}

// WithStrictMemory makes a query fail with batch.ErrBudget the moment its
// mapped batch storage would exceed the WithMemoryBudget limit, instead of
// counting the overflow (the StrictBounds analogue for memory).
func WithStrictMemory() QueryOption {
	return func(c *queryConfig) error {
		c.strictMemory = true
		return nil
	}
}

// WithMaterializedExecution runs the query on the materializing reference
// data plane — every slice fully expanded to tuples before comparison —
// instead of the default streaming batch iterators. Outputs are identical;
// the option exists for differential testing and A/B memory measurements.
func WithMaterializedExecution() QueryOption {
	return func(c *queryConfig) error {
		c.materialize = true
		return nil
	}
}

// WithTrace enables tracing and metrics capture for the query: the Result
// then supports TraceSummary (human-readable skew/congestion breakdown),
// ChromeTrace (Perfetto-loadable trace-event JSON), and MetricsJSON, and
// the query's metrics fold into DB.MetricsSnapshot. The captured span tree
// and metric values are bit-for-bit identical at every Parallelism setting
// (wall-clock durations are recorded but excluded from that guarantee).
func WithTrace() QueryOption {
	return func(c *queryConfig) error {
		c.trace = obs.New("query")
		return nil
	}
}

// Query plans and executes an AQL join query, e.g.
//
//	SELECT A.v, B.w INTO T<v:int, w:int>[] FROM A JOIN B ON A.v = B.w
//
// Pending arrays are sealed (distributed and registered) first.
func (db *DB) Query(q string, opts ...QueryOption) (*Result, error) {
	cfg := db.defaults
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	db.sealAll()

	ctx := cfg.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	eo := pipeline.Options{
		Ctx:          ctx,
		Planner:      plannerWithWorkers(cfg.planner, cfg.parallelism),
		Scheduling:   cfg.scheduling,
		Parallelism:  cfg.parallelism,
		StrictBounds: cfg.strictBounds,
		BatchSize:    cfg.batchSize,
		MemoryBudget: cfg.memBudget,
		StrictMemory: cfg.strictMemory,
		Materialize:  cfg.materialize,
		Logical:      logical.PlanOptions{Selectivity: cfg.selectivity},
		Trace:        cfg.trace,
		Cache:        cfg.cache,
		PlanPolicy:   cfg.policy,
		Profile:      cfg.profile,
		Hooks:        cfg.hooks,
		QueryLabel:   q,
		Flight:       cfg.flight,
		FlightOff:    cfg.flightOff,
		Postmortem:   cfg.postmortem,
	}
	if cfg.policy != nil {
		cfg.policy.Workers = par.Workers(cfg.parallelism)
	}
	if cfg.forceAlgo != "" {
		a, err := algoByName(cfg.forceAlgo)
		if err != nil {
			return nil, err
		}
		eo.ForceAlgo = &a
	}
	parsed, err := aql.Parse(q)
	if err != nil {
		return nil, err
	}

	// Admission: block until the scheduler grants a query slot and a
	// memory reservation, then execute with the ticket gating the Align
	// and Compare stages. The DB lock is NOT held while waiting — an
	// admission queue must never block catalog readers.
	if cfg.sched != nil {
		ticket, err := cfg.sched.Admit(ctx, cfg.class, cfg.memBudget, q)
		if err != nil {
			return nil, err
		}
		defer ticket.Done()
		eo.Gate = ticket
		if eo.MemoryBudget == 0 {
			// No explicit budget: run under the per-query carve from the
			// scheduler's shared pool (0 when no pool is configured).
			eo.MemoryBudget = ticket.MemoryBytes()
		}
	}

	var res *Result
	if len(parsed.From) > 2 {
		// Multi-way join: greedy join ordering (the paper's Section 8
		// future work, implemented in internal/aql). Registers
		// intermediates in the catalog, so it holds the write lock.
		db.mu.Lock()
		mres, err := aql.RunMulti(db.cluster, q, eo)
		db.mu.Unlock()
		if err != nil {
			return nil, err
		}
		res = newMultiResult(mres)
	} else {
		db.mu.RLock()
		rep, err := aql.Run(db.cluster, q, eo)
		db.mu.RUnlock()
		if err != nil {
			return nil, err
		}
		res = newResult(rep)
	}
	res.trace = cfg.trace
	db.recordQuery(res)
	return res, nil
}

// Explain enumerates the optimizer's candidate logical plans for a
// two-way query without executing it, cheapest first.
func (db *DB) Explain(q string, opts ...QueryOption) (*Explanation, error) {
	cfg := db.defaults
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	db.sealAll()
	eo := pipeline.Options{
		Planner: cfg.planner,
		Logical: logical.PlanOptions{Selectivity: cfg.selectivity},
	}
	db.mu.RLock()
	ex, err := aql.Explain(db.cluster, q, eo)
	db.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	out := &Explanation{Selectivity: ex.Selectivity}
	for _, p := range ex.Plans {
		out.Plans = append(out.Plans, PlanInfo{
			Plan:        p.Describe(),
			Algorithm:   p.Algo.String(),
			Units:       p.Units.String(),
			NumUnits:    p.NumUnits,
			Cost:        p.Cost,
			AlignCost:   p.AlignCost,
			CompareCost: p.CompareCost,
			OutputCost:  p.OutCost,
		})
	}
	return out, nil
}

// Redimension reorganizes a sealed array into a new schema across the
// cluster — converting attributes to dimensions or realigning chunk
// intervals — and registers the result under the new schema's name. It
// returns the new array handle plus the simulated reorganization cost
// (the redistribution network time and chunk re-sorting the paper's
// Section 2.3.1 describes).
func (ar *Array) Redimension(schemaLiteral string) (*Array, *ReorgReport, error) {
	ar.Seal()
	target, err := array.ParseSchema(schemaLiteral)
	if err != nil {
		return nil, nil, err
	}
	if target.Name == "" {
		return nil, nil, fmt.Errorf("shufflejoin: redimension target needs a name")
	}
	ar.db.mu.Lock()
	d, err := ar.db.cluster.Catalog.Lookup(ar.Name())
	if err != nil {
		ar.db.mu.Unlock()
		return nil, nil, err
	}
	out, rep, err := exec.Redistribute(ar.db.cluster, d, target, exec.RedistributeOptions{})
	ar.db.mu.Unlock()
	if err != nil {
		return nil, nil, err
	}
	return &Array{db: ar.db, inner: out.Array, loaded: true}, &ReorgReport{
		AlignSeconds: rep.AlignTime,
		SortSeconds:  rep.SortTime,
		TotalSeconds: rep.TotalTime,
		CellsMoved:   rep.CellsMoved,
	}, nil
}

// ReorgReport is the cost of a distributed redimension.
type ReorgReport struct {
	AlignSeconds float64
	SortSeconds  float64
	TotalSeconds float64
	CellsMoved   int64
}

// JoinOrderStep is one planned step of a multi-way join preview.
type JoinOrderStep struct {
	Left, Right    string
	EstimatedCells float64
}

// ExplainJoinOrder previews the greedy join order the multi-way optimizer
// would use for a query over three or more arrays, without materializing
// results in the database.
func (db *DB) ExplainJoinOrder(q string) ([]JoinOrderStep, error) {
	db.sealAll()
	db.mu.RLock()
	plan, err := aql.ExplainMulti(db.cluster, q, pipeline.Options{})
	db.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	out := make([]JoinOrderStep, len(plan.Steps))
	for i, s := range plan.Steps {
		out[i] = JoinOrderStep{Left: s.Left, Right: s.Right, EstimatedCells: s.EstimatedCost}
	}
	return out, nil
}
