package shufflejoin

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	db, err := Open(4)
	if err != nil {
		t.Fatal(err)
	}
	if db.Nodes() != 4 {
		t.Errorf("Nodes = %d", db.Nodes())
	}
	a, err := db.CreateArray("A<v:int>[i=1,100,10]")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.CreateArray("B<w:float>[i=1,100,10]")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 100; i++ {
		if err := a.Insert([]int64{i}, i%10); err != nil {
			t.Fatal(err)
		}
		if err := b.Insert([]int64{i}, float64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query("SELECT A.v, B.w FROM A, B WHERE A.i = B.i")
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 100 {
		t.Errorf("Matches = %d, want 100", res.Matches)
	}
	if res.Algorithm != "merge" {
		t.Errorf("Algorithm = %s, want merge for D:D", res.Algorithm)
	}
	cells := res.Cells()
	if int64(len(cells)) != res.Matches {
		t.Errorf("Cells() = %d", len(cells))
	}
	if _, ok := cells[0].Values[0].(int64); !ok {
		t.Errorf("int attribute surfaced as %T", cells[0].Values[0])
	}
	if _, ok := cells[0].Values[1].(float64); !ok {
		t.Errorf("float attribute surfaced as %T", cells[0].Values[1])
	}
	if !strings.Contains(res.String(), "matches") {
		t.Error("String() not descriptive")
	}
}

func TestInsertAfterSealFails(t *testing.T) {
	db, _ := Open(2)
	a, _ := db.CreateArray("A<v:int>[i=1,10,5]")
	b, _ := db.CreateArray("B<w:int>[i=1,10,5]")
	_ = a.Insert([]int64{1}, 1)
	_ = b.Insert([]int64{1}, 1)
	if _, err := db.Query("SELECT A.v FROM A, B WHERE A.i = B.i"); err != nil {
		t.Fatal(err)
	}
	if err := a.Insert([]int64{2}, 2); err == nil {
		t.Error("Insert after Seal should fail")
	}
}

func TestQueryOptions(t *testing.T) {
	db, _ := Open(3)
	a, _ := db.CreateArray("A<v:int>[i=1,60,10]")
	b, _ := db.CreateArray("B<w:int>[j=1,60,10]")
	for i := int64(1); i <= 60; i++ {
		_ = a.Insert([]int64{i}, i%12)
		_ = b.Insert([]int64{i}, i%12)
	}
	q := "SELECT i, j INTO T<i:int, j:int>[] FROM A JOIN B ON A.v = B.w"
	var want int64 = -1
	for _, planner := range []string{"baseline", "mbh", "tabu", "ilp", "coarse"} {
		res, err := db.Query(q,
			WithPlanner(planner, 100*time.Millisecond),
			WithAlgorithm("hash"),
			WithSelectivity(2),
		)
		if err != nil {
			t.Fatalf("%s: %v", planner, err)
		}
		if want == -1 {
			want = res.Matches
		}
		if res.Matches != want {
			t.Errorf("%s: Matches = %d, want %d", planner, res.Matches, want)
		}
		if res.Algorithm != "hash" {
			t.Errorf("%s: Algorithm = %s", planner, res.Algorithm)
		}
	}
	if want == 0 {
		t.Error("expected matches")
	}
}

func TestQueryOptionErrors(t *testing.T) {
	db, _ := Open(2)
	if _, err := db.Query("SELECT * FROM A, B WHERE A.i = B.i", WithPlanner("quantum")); err == nil {
		t.Error("unknown planner should error")
	}
	if _, err := db.Query("x", WithSelectivity(-1)); err == nil {
		t.Error("negative selectivity should error")
	}
	if _, err := db.Query("x", WithAlgorithm("bogus")); err == nil {
		t.Error("unknown algorithm should error")
	}
	if _, err := db.Query("SELECT * FROM Missing, Gone WHERE Missing.i = Gone.i"); err == nil {
		t.Error("unknown arrays should error")
	}
}

func TestSchedulingAndSequentialOptions(t *testing.T) {
	run := func(opts ...QueryOption) int64 {
		db, _ := Open(3)
		a, _ := db.CreateArray("A<v:int>[i=1,90,10]")
		b, _ := db.CreateArray("B<w:int>[i=1,90,10]")
		for i := int64(1); i <= 90; i++ {
			_ = a.Insert([]int64{i}, i)
			_ = b.Insert([]int64{i}, i)
		}
		res, err := db.Query("SELECT A.v FROM A, B WHERE A.i = B.i", opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res.Matches
	}
	if run(WithFIFOShuffle()) != run(WithSequentialCompare()) {
		t.Error("options changed query semantics")
	}
}

// TestParallelismDeterminism: the facade's one parallelism knob must not
// change anything the user can observe — output cells, statistics, or
// modeled phase times — at any setting, for any planner.
func TestParallelismDeterminism(t *testing.T) {
	type snapshot struct {
		Cells   []Cell
		Matches int64
		Moved   int64
		Clamped int64
		Align   float64
		Compare float64
	}
	run := func(planner string, parallelism int) snapshot {
		db, _ := Open(4)
		a, _ := db.CreateArray("A<v:int>[i=1,200,20]")
		b, _ := db.CreateArray("B<w:int>[j=1,200,20]")
		for i := int64(1); i <= 200; i++ {
			_ = a.Insert([]int64{i}, (i*i)%23)
			_ = b.Insert([]int64{i}, (i*7)%23)
		}
		res, err := db.Query(
			"SELECT i, j INTO T<i:int, j:int>[] FROM A JOIN B ON A.v = B.w",
			WithPlanner(planner, time.Second),
			WithParallelism(parallelism),
		)
		if err != nil {
			t.Fatalf("%s parallelism=%d: %v", planner, parallelism, err)
		}
		return snapshot{
			Cells:   res.Cells(),
			Matches: res.Matches,
			Moved:   res.CellsMoved,
			Clamped: res.ClampedCells,
			Align:   res.AlignSeconds,
			Compare: res.CompareSeconds,
		}
	}
	for _, planner := range []string{"mbh", "tabu", "ilp"} {
		ref := run(planner, 1)
		for _, p := range []int{0, 2, 3} {
			if got := run(planner, p); !reflect.DeepEqual(got, ref) {
				t.Errorf("%s: parallelism=%d changed the observable result", planner, p)
			}
		}
	}
	db, _ := Open(2)
	if _, err := db.Query("x", WithParallelism(-1)); err == nil {
		t.Error("negative parallelism should error")
	}
}

func TestGenerators(t *testing.T) {
	db, _ := Open(4)
	ships := db.LoadShipTracks("Broadcast", 20_000, 1)
	band := db.LoadSatelliteBand("Band1", 20_000, 2)
	if ships.CellCount() != 20_000 || band.CellCount() != 20_000 {
		t.Errorf("generator cells = %d / %d", ships.CellCount(), band.CellCount())
	}
	res, err := db.Query(`SELECT Band1.reflectance, Broadcast.ship_id
		FROM Band1, Broadcast
		WHERE Band1.longitude = Broadcast.longitude
		AND Band1.latitude = Broadcast.latitude`,
		WithAlgorithm("merge"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches == 0 {
		t.Error("geo join found no matches")
	}
}

func TestCreateArrayErrors(t *testing.T) {
	db, _ := Open(2)
	if _, err := db.CreateArray("<v:int>[i=1,10,5]"); err == nil {
		t.Error("nameless schema should fail")
	}
	if _, err := db.CreateArray("A<v:frob>[i=1,10,5]"); err == nil {
		t.Error("bad type should fail")
	}
	a, _ := db.CreateArray("A<v:int>[i=1,10,5]")
	if err := a.Insert([]int64{1}, struct{}{}); err == nil {
		t.Error("unsupported value type should fail")
	}
	if err := a.Insert([]int64{99}, 1); err == nil {
		t.Error("out-of-range coordinate should fail")
	}
}

func TestMultiWayQuery(t *testing.T) {
	db, _ := Open(3)
	sensors, _ := db.CreateArray("Sensors<site:int>[sid=1,40,10]")
	readings, _ := db.CreateArray("Readings<sensor:int, value:float>[t=1,200,25]")
	sites, _ := db.CreateArray("Sites<code:int, elevation:int>[s=1,8,4]")
	for sid := int64(1); sid <= 40; sid++ {
		_ = sensors.Insert([]int64{sid}, sid%8)
	}
	for ts := int64(1); ts <= 200; ts++ {
		_ = readings.Insert([]int64{ts}, ts%40+1, float64(ts)/2)
	}
	for s := int64(1); s <= 8; s++ {
		_ = sites.Insert([]int64{s}, s%8, s*100)
	}
	res, err := db.Query(`SELECT * FROM Readings, Sensors, Sites
		WHERE Readings.sensor = Sensors.sid AND Sensors.site = Sites.code`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "multi" {
		t.Errorf("Algorithm = %s, want multi", res.Algorithm)
	}
	if len(res.JoinOrder) != 2 {
		t.Errorf("JoinOrder = %v", res.JoinOrder)
	}
	// Every reading has one sensor, every sensor one site -> 200 rows.
	if res.Matches != 200 {
		t.Errorf("Matches = %d, want 200", res.Matches)
	}
}

func TestExplain(t *testing.T) {
	db, _ := Open(4)
	a, _ := db.CreateArray("A<v:int>[i=1,200,20]")
	b, _ := db.CreateArray("B<w:int>[i=1,200,20]")
	for i := int64(1); i <= 200; i++ {
		_ = a.Insert([]int64{i}, i%9)
		_ = b.Insert([]int64{i}, i%9)
	}
	ex, err := db.Explain("SELECT A.v FROM A, B WHERE A.i = B.i")
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Plans) < 3 {
		t.Fatalf("only %d plans enumerated", len(ex.Plans))
	}
	// Cheapest first, and a same-shape D:D join must choose the pure scan
	// merge plan.
	for i := 1; i < len(ex.Plans); i++ {
		if ex.Plans[i].Cost < ex.Plans[i-1].Cost {
			t.Fatal("plans not sorted by cost")
		}
	}
	if ex.Plans[0].Plan != "mergeJoin(A, B)" {
		t.Errorf("best plan = %q, want mergeJoin(A, B)", ex.Plans[0].Plan)
	}
	if ex.Selectivity <= 0 {
		t.Error("no selectivity estimate")
	}
	if _, err := db.Explain("SELECT nope FROM A, B WHERE A.i = B.i"); err == nil {
		t.Error("bad query should fail to explain")
	}
}

func TestRedimensionAndSaveAs(t *testing.T) {
	db, _ := Open(3)
	a, _ := db.CreateArray("Events<user:int>[t=1,120,20]")
	for ts := int64(1); ts <= 120; ts++ {
		_ = a.Insert([]int64{ts}, ts%30)
	}
	// Reorganize so user becomes a dimension.
	byUser, rep, err := a.Redimension("ByUser<t:int>[user=0,29,10]")
	if err != nil {
		t.Fatal(err)
	}
	if byUser.CellCount() != 120 {
		t.Errorf("cells = %d", byUser.CellCount())
	}
	if rep.TotalSeconds <= 0 || rep.CellsMoved == 0 {
		t.Errorf("report = %+v", rep)
	}
	// The redimensioned array is queryable.
	b, _ := db.CreateArray("Users<name:string>[uid=0,29,10]")
	for uid := int64(0); uid < 30; uid++ {
		_ = b.Insert([]int64{uid}, "u")
	}
	res, err := db.Query("SELECT t FROM ByUser, Users WHERE ByUser.user = Users.uid")
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 120 {
		t.Errorf("Matches = %d, want 120", res.Matches)
	}
	// Chain: save the join output and query it again.
	saved, err := res.SaveAs(db, "Joined")
	if err != nil {
		t.Fatal(err)
	}
	if saved.CellCount() != 120 {
		t.Errorf("saved cells = %d", saved.CellCount())
	}
	res2, err := db.Query("SELECT Joined.t FROM Joined, Users WHERE Joined.user = Users.uid")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Matches != 120 {
		t.Errorf("chained Matches = %d", res2.Matches)
	}
	if _, err := res.SaveAs(db, ""); err == nil {
		t.Error("empty name should fail")
	}
	if _, _, err := a.Redimension("<t:int>[user=0,29,10]"); err == nil {
		t.Error("nameless target should fail")
	}
}

// TestPlanCacheAndGreedyOptions: the facade's plan-cache and greedy-planning
// options must not change query semantics, and must report how each query's
// plans were obtained via Result.PlanSource.
func TestPlanCacheAndGreedyOptions(t *testing.T) {
	open := func() *DB {
		db, _ := Open(3)
		a, _ := db.CreateArray("A<v:int>[i=1,120,10]")
		b, _ := db.CreateArray("B<w:int>[i=1,120,10]")
		for i := int64(1); i <= 120; i++ {
			_ = a.Insert([]int64{i}, i)
			_ = b.Insert([]int64{i}, i)
		}
		return db
	}
	q := "SELECT A.v, B.w FROM A, B WHERE A.i = B.i"

	db := open()
	ref, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if ref.PlanSource != "full" {
		t.Errorf("default PlanSource = %q, want full", ref.PlanSource)
	}

	pc := NewPlanCache()
	cold, err := db.Query(q, WithPlanCache(pc))
	if err != nil {
		t.Fatal(err)
	}
	if cold.PlanSource != "full" {
		t.Errorf("cold PlanSource = %q, want full", cold.PlanSource)
	}
	hit, err := db.Query(q, WithPlanCache(pc))
	if err != nil {
		t.Fatal(err)
	}
	if hit.PlanSource != "cached" {
		t.Errorf("hit PlanSource = %q, want cached", hit.PlanSource)
	}
	st := pc.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Rejects != 0 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss / 0 rejects", st)
	}
	for tag, res := range map[string]*Result{"cold": cold, "hit": hit} {
		if res.Matches != ref.Matches || !reflect.DeepEqual(res.Cells(), ref.Cells()) {
			t.Errorf("%s: cached path changed query output", tag)
		}
		if res.CellsMoved != ref.CellsMoved || res.CompareSeconds != ref.CompareSeconds {
			t.Errorf("%s: cached path changed modeled execution", tag)
		}
	}

	greedy, err := db.Query(q, WithGreedyPlanning())
	if err != nil {
		t.Fatal(err)
	}
	if greedy.PlanSource != "greedy" && greedy.PlanSource != "full" {
		t.Errorf("greedy PlanSource = %q", greedy.PlanSource)
	}
	if greedy.PlanSource == "greedy" && greedy.PlanRegret < 0 {
		t.Errorf("PlanRegret = %g, want >= 0", greedy.PlanRegret)
	}
	if greedy.Matches != ref.Matches || !reflect.DeepEqual(greedy.Cells(), ref.Cells()) {
		t.Error("greedy planning changed query output")
	}

	if _, err := db.Query(q, WithPlanCache(nil)); err == nil {
		t.Error("nil plan cache should error")
	}
	if _, err := db.Query(q, WithGreedyPlanning(-0.5)); err == nil {
		t.Error("non-positive epsilon should error")
	}
}
