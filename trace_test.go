package shufflejoin

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"shufflejoin/internal/obs"
)

// nilSpanSink defeats dead-code elimination in timeNilObsOps.
var nilSpanSink *obs.Span

// timeNilObsOps measures n disabled-path observability operations — span
// creation, attribute sets, enabled checks — against a nil trace, mixed the
// way the executor mixes them.
func timeNilObsOps(n int) float64 {
	var tr *obs.Trace
	start := time.Now()
	for i := 0; i < n; i++ {
		if tr.Enabled() {
			tr.Metrics().Counter("never").Add(1)
		}
		sp := tr.Root().Child("x")
		sp.SetInt("k", int64(i))
		sp.End()
		nilSpanSink = sp
	}
	return time.Since(start).Seconds()
}

// traceDB builds a skewed two-array workload large enough that planning,
// alignment, and comparison all do real work.
func traceDB(t testing.TB) *DB {
	t.Helper()
	db, err := Open(4)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := db.CreateArray("A<v:int>[i=1,400,25]")
	b, _ := db.CreateArray("B<w:int>[j=1,400,25]")
	for i := int64(1); i <= 400; i++ {
		// Quadratic residues skew the value distribution so the physical
		// planners have imbalance to fight.
		_ = a.Insert([]int64{i}, (i*i)%31)
		_ = b.Insert([]int64{i}, (i*3)%31)
	}
	return db
}

const traceQuery = "SELECT i, j INTO T<i:int, j:int>[] FROM A JOIN B ON A.v = B.w"

// TestTraceDeterminism: the captured span tree and metric registry must be
// bit-for-bit identical (wall-clock quantities masked) at every Parallelism
// setting, for every join algorithm. This is the observability layer's core
// contract: turning the knob must never change what the trace says happened.
func TestTraceDeterminism(t *testing.T) {
	run := func(algo string, parallelism int) string {
		db := traceDB(t)
		res, err := db.Query(traceQuery,
			WithPlanner("tabu", time.Second),
			WithAlgorithm(algo),
			WithTrace(),
			WithParallelism(parallelism),
		)
		if err != nil {
			t.Fatalf("%s parallelism=%d: %v", algo, parallelism, err)
		}
		return res.traceFingerprint()
	}
	for _, algo := range []string{"hash", "merge", "nestedloop"} {
		ref := run(algo, 1)
		if !strings.Contains(ref, "align") || !strings.Contains(ref, "compare") {
			t.Fatalf("%s: fingerprint missing phases:\n%s", algo, ref)
		}
		for _, p := range []int{4, runtime.NumCPU()} {
			if got := run(algo, p); got != ref {
				t.Errorf("%s: trace changed at parallelism=%d\n--- parallelism=1\n%s\n--- parallelism=%d\n%s",
					algo, p, ref, p, got)
			}
		}
	}
}

// TestTraceDiagnostics: the headline skew/congestion fields and TraceSummary
// must be populated and internally consistent.
func TestTraceDiagnostics(t *testing.T) {
	db := traceDB(t)
	res, err := db.Query(traceQuery, WithPlanner("tabu", time.Second), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Skew < 1 {
		t.Errorf("Skew = %v, want >= 1 (max/mean)", res.Skew)
	}
	if res.StragglerNode < 0 || res.StragglerNode >= 4 {
		t.Errorf("StragglerNode = %d out of range", res.StragglerNode)
	}
	if res.LockWaitSeconds < 0 {
		t.Errorf("LockWaitSeconds = %v", res.LockWaitSeconds)
	}
	sum := res.TraceSummary()
	for _, want := range []string{
		"compare skew",
		fmt.Sprintf("straggler: node %d", res.StragglerNode),
		"lock wait",
		"metrics",
		"align.makespan_seconds",
	} {
		if !strings.Contains(sum, want) {
			t.Errorf("TraceSummary missing %q:\n%s", want, sum)
		}
	}
	// The straggler marker points at the named node's row.
	if !strings.Contains(sum, "<- straggler") {
		t.Errorf("TraceSummary missing straggler marker:\n%s", sum)
	}
}

// TestChromeTraceExport: the exported trace must be well-formed Chrome
// trace-event JSON — every event carries the required keys, complete events
// have durations, and flow arrows come in matched s/f pairs.
func TestChromeTraceExport(t *testing.T) {
	db := traceDB(t)
	res, err := db.Query(traceQuery, WithPlanner("mbh"), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.ChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.Unit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	starts, finishes := 0, 0
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
		switch ph {
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Errorf("complete event missing dur: %v", ev)
			}
			if ts, ok := ev["ts"].(float64); !ok || ts < 0 {
				t.Errorf("bad ts: %v", ev)
			}
		case "s":
			starts++
		case "f":
			finishes++
		case "M":
		default:
			t.Errorf("unexpected phase %q: %v", ph, ev)
		}
	}
	if starts == 0 || starts != finishes {
		t.Errorf("flow events unbalanced: %d starts, %d finishes", starts, finishes)
	}

	// Exports demand tracing: an untraced query must refuse, not panic.
	plain, err := db.Query(traceQuery, WithPlanner("mbh"))
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.ChromeTrace(&buf); err == nil {
		t.Error("ChromeTrace on untraced result should error")
	}
	if err := plain.MetricsJSON(&buf); err == nil {
		t.Error("MetricsJSON on untraced result should error")
	}
}

// TestMetricsSnapshot: the DB accumulates per-query facade counters for every
// query, and folds the full registry of traced ones.
func TestMetricsSnapshot(t *testing.T) {
	db := traceDB(t)
	if n := db.MetricsSnapshot()["query.count"]; n != 0 {
		t.Fatalf("fresh DB query.count = %v", n)
	}
	res1, err := db.Query(traceQuery, WithPlanner("mbh"))
	if err != nil {
		t.Fatal(err)
	}
	snap := db.MetricsSnapshot()
	if snap["query.count"] != 1 {
		t.Errorf("query.count = %v, want 1", snap["query.count"])
	}
	if snap["query.matches"] != float64(res1.Matches) {
		t.Errorf("query.matches = %v, want %d", snap["query.matches"], res1.Matches)
	}
	if _, ok := snap["align.transfers"]; ok {
		t.Error("untraced query leaked per-phase metrics into the DB registry")
	}

	res2, err := db.Query(traceQuery, WithPlanner("mbh"), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	snap = db.MetricsSnapshot()
	if snap["query.count"] != 2 {
		t.Errorf("query.count = %v, want 2", snap["query.count"])
	}
	if snap["query.matches"] != float64(res1.Matches+res2.Matches) {
		t.Errorf("query.matches = %v, want %d", snap["query.matches"], res1.Matches+res2.Matches)
	}
	if snap["align.transfers"] <= 0 {
		t.Error("traced query did not fold align.* metrics into the DB registry")
	}
	if snap["compare.matches"] != float64(res2.Matches) {
		t.Errorf("compare.matches = %v, want %d (traced query only)", snap["compare.matches"], res2.Matches)
	}
}

// TestMultiWayTraceDiagnostics: multi-way queries aggregate per-node
// diagnostics across steps and still fingerprint deterministically.
func TestMultiWayTraceDiagnostics(t *testing.T) {
	run := func(parallelism int) (*Result, string) {
		db, _ := Open(3)
		sensors, _ := db.CreateArray("Sensors<site:int>[sid=1,40,10]")
		readings, _ := db.CreateArray("Readings<sensor:int, value:float>[t=1,200,25]")
		sites, _ := db.CreateArray("Sites<code:int, elevation:int>[s=1,8,4]")
		for sid := int64(1); sid <= 40; sid++ {
			_ = sensors.Insert([]int64{sid}, sid%8)
		}
		for ts := int64(1); ts <= 200; ts++ {
			_ = readings.Insert([]int64{ts}, ts%40+1, float64(ts)/2)
		}
		for s := int64(1); s <= 8; s++ {
			_ = sites.Insert([]int64{s}, s%8, s*100)
		}
		res, err := db.Query(`SELECT * FROM Readings, Sensors, Sites
			WHERE Readings.sensor = Sensors.sid AND Sensors.site = Sites.code`,
			WithTrace(), WithParallelism(parallelism))
		if err != nil {
			t.Fatal(err)
		}
		return res, res.traceFingerprint()
	}
	res, ref := run(1)
	if res.StragglerNode < 0 {
		t.Errorf("multi-way StragglerNode = %d", res.StragglerNode)
	}
	if res.Skew < 1 {
		t.Errorf("multi-way Skew = %v", res.Skew)
	}
	if !strings.Contains(res.TraceSummary(), "straggler") {
		t.Error("multi-way TraceSummary missing straggler")
	}
	if _, got := run(4); got != ref {
		t.Error("multi-way trace changed with parallelism")
	}
}

// benchWorkload runs one traced-or-not query and returns its wall time.
func benchQuery(b *testing.B, traced bool) {
	db := traceDB(b)
	opts := []QueryOption{WithPlanner("mbh")}
	if traced {
		opts = append(opts, WithTrace())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(traceQuery, opts...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryUntraced(b *testing.B) { benchQuery(b, false) }
func BenchmarkQueryTraced(b *testing.B)   { benchQuery(b, true) }

// TestTraceOverheadBudget asserts the <2% overhead budget for the disabled
// path. Wall-clock comparisons are too noisy for ordinary CI runners, so the
// check only runs when OBS_OVERHEAD_CHECK=1 (the dedicated CI bench job sets
// it); the budget there is relaxed to 2% + noise floor via medians.
func TestTraceOverheadBudget(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_CHECK") != "1" {
		t.Skip("set OBS_OVERHEAD_CHECK=1 to run the overhead budget check")
	}
	db := traceDB(t)
	// Warm up caches and the planner paths.
	for i := 0; i < 3; i++ {
		if _, err := db.Query(traceQuery, WithPlanner("mbh")); err != nil {
			t.Fatal(err)
		}
	}
	median := func(opts ...QueryOption) float64 {
		const rounds = 9
		times := make([]float64, 0, rounds)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			if _, err := db.Query(traceQuery, opts...); err != nil {
				t.Fatal(err)
			}
			times = append(times, time.Since(start).Seconds())
		}
		// Insertion sort: 9 elements.
		for i := 1; i < len(times); i++ {
			for j := i; j > 0 && times[j] < times[j-1]; j-- {
				times[j], times[j-1] = times[j-1], times[j]
			}
		}
		return times[len(times)/2]
	}
	off := median(WithPlanner("mbh"))
	on := median(WithPlanner("mbh"), WithTrace())
	t.Logf("untraced median %.4fs, traced median %.4fs, enabled overhead %+.2f%%",
		off, on, (on/off-1)*100)

	// The <2% budget is for the *disabled* path: the nil-receiver no-ops the
	// instrumentation leaves behind in an untraced query. The per-event span
	// loops sit behind tr.Enabled() guards, so an untraced query executes
	// only the unguarded call sites — a few dozen. Measure the unit cost of
	// 10k mixed nil ops (hundreds of times the real count) and compare
	// against the untraced query's median wall time.
	const nilOps = 10_000
	nilCost := timeNilObsOps(nilOps)
	t.Logf("%d nil obs ops cost %.6fs (%.2f%% of untraced query)",
		nilOps, nilCost, nilCost/off*100)
	if nilCost > 0.02*off {
		t.Errorf("disabled-path overhead %.2f%% of query time exceeds the 2%% budget",
			nilCost/off*100)
	}
	// Regression tripwire for the enabled path: tracing is a few hundred span
	// and counter updates per query, which must stay in the noise.
	if on > off*1.10 {
		t.Errorf("enabled tracing overhead %.1f%% exceeds 10%% ceiling", (on/off-1)*100)
	}
}
