package shufflejoin_test

import (
	"fmt"
	"log"

	"shufflejoin"
)

// The basic flow: open a simulated cluster, declare arrays in the paper's
// schema notation, insert cells, and run an equi-join in AQL.
func Example() {
	db, err := shufflejoin.Open(4)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := db.CreateArray("A<v:int>[i=1,100,10]")
	b, _ := db.CreateArray("B<w:float>[i=1,100,10]")
	for i := int64(1); i <= 100; i++ {
		_ = a.Insert([]int64{i}, i%7)
		_ = b.Insert([]int64{i}, float64(i)/2)
	}
	res, err := db.Query("SELECT A.v, B.w FROM A, B WHERE A.i = B.i")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Plan)
	fmt.Println(res.Matches, "matches via", res.Algorithm, "join")
	// Output:
	// mergeJoin(A, B)
	// 100 matches via merge join
}

// Forcing an attribute-to-attribute hash join with a planner choice and
// an unordered destination schema (INTO T<...>[]).
func ExampleDB_Query() {
	db, _ := shufflejoin.Open(3)
	a, _ := db.CreateArray("Events<user:int>[t=1,60,10]")
	b, _ := db.CreateArray("Users<uid:int>[r=1,30,10]")
	for t := int64(1); t <= 60; t++ {
		_ = a.Insert([]int64{t}, t%30)
	}
	for r := int64(1); r <= 30; r++ {
		_ = b.Insert([]int64{r}, r-1)
	}
	res, err := db.Query(
		"SELECT t, r INTO Pairs<t:int, r:int>[] FROM Events, Users WHERE Events.user = Users.uid",
		shufflejoin.WithPlanner("tabu"),
		shufflejoin.WithAlgorithm("hash"),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Algorithm, res.Planner, res.Matches)
	// Output: hash Tabu 60
}

// EXPLAIN: enumerate the optimizer's candidate plans without executing.
func ExampleDB_Explain() {
	db, _ := shufflejoin.Open(2)
	a, _ := db.CreateArray("A<v:int>[i=1,40,10]")
	b, _ := db.CreateArray("B<w:int>[i=1,40,10]")
	for i := int64(1); i <= 40; i++ {
		_ = a.Insert([]int64{i}, i)
		_ = b.Insert([]int64{i}, i)
	}
	ex, err := db.Explain("SELECT A.v FROM A, B WHERE A.i = B.i")
	if err != nil {
		log.Fatal(err)
	}
	// A same-shape dimension join needs no reorganization: the cheapest
	// plan scans both inputs straight into a merge join.
	fmt.Println(ex.Plans[0].Plan, ex.Plans[0].Units)
	// Output: mergeJoin(A, B) chunks
}

// Filters on literals push down to their source array before the join.
func ExampleDB_Query_filter() {
	db, _ := shufflejoin.Open(2)
	a, _ := db.CreateArray("Readings<celsius:float>[t=1,50,10]")
	b, _ := db.CreateArray("Flags<ok:int>[t=1,50,10]")
	for t := int64(1); t <= 50; t++ {
		_ = a.Insert([]int64{t}, float64(t))
		_ = b.Insert([]int64{t}, t%2)
	}
	res, _ := db.Query(`SELECT Readings.celsius FROM Readings, Flags
		WHERE Readings.t = Flags.t AND Flags.ok = 1 AND Readings.celsius > 40.0`)
	fmt.Println(res.Matches)
	// Output: 5
}
