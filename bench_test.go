// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each Benchmark runs the corresponding experiment end to end
// per iteration at a reduced scale (cmd/expdriver runs the full scale) and
// reports the experiment's headline quantity as a custom metric.
package shufflejoin

import (
	"math/rand"
	"testing"
	"time"

	"shufflejoin/internal/afl"
	"shufflejoin/internal/array"
	"shufflejoin/internal/bench"
	"shufflejoin/internal/join"
	"shufflejoin/internal/physical"
	"shufflejoin/internal/simnet"
	"shufflejoin/internal/workload"
)

func benchCfg() bench.Config {
	return bench.Config{
		Units:        256,
		CellsPerSide: 1 << 20,
		ILPBudget:    100 * time.Millisecond,
		Seed:         1,
	}
}

func benchReal() bench.RealConfig {
	return bench.RealConfig{
		AISCells:   30_000,
		MODISCells: 45_000,
		ILPBudget:  100 * time.Millisecond,
		Seed:       1,
	}
}

// BenchmarkFig5LogicalPlans regenerates Figure 5: logical plan cost vs.
// real single-node duration across algorithms and selectivities, reporting
// the power-law r².
func BenchmarkFig5LogicalPlans(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunLogical(bench.LogicalConfig{
			CellsPerSide:  8_000,
			Selectivities: []float64{0.01, 1, 10},
			Seed:          1,
		})
		if err != nil {
			b.Fatal(err)
		}
		fit, err := bench.Fig5FitAdjusted(rows, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fit.R2, "r2")
	}
}

// BenchmarkFig6Selectivity regenerates Figure 6's series (duration vs.
// selectivity per plan), reporting the merge/hash duration ratio at the
// highest selectivity.
func BenchmarkFig6Selectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunLogical(bench.LogicalConfig{
			CellsPerSide:  8_000,
			Selectivities: []float64{0.01, 1, 10},
			Seed:          2,
		})
		if err != nil {
			b.Fatal(err)
		}
		var mergeHi, hashHi float64
		for _, m := range rows {
			if m.Selectivity == 10 {
				switch m.Algo {
				case join.Merge:
					mergeHi = m.DurationSec
				case join.Hash:
					hashHi = m.DurationSec
				}
			}
		}
		b.ReportMetric(hashHi/mergeHi, "hash/merge@sel10")
	}
}

// BenchmarkTable1Operators validates the Table-1 operator cost formulas
// against real operator runs, reporting the redim fit's r².
func BenchmarkTable1Operators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, fits, err := bench.Table1Operators([]int64{10_000, 20_000, 40_000}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fits["redim"].R2, "redim-r2")
	}
}

// BenchmarkTable2ModelVerification regenerates Table 2: analytical model
// cost vs. simulated hash-join time for the cost-based planners, reporting
// the linear r² (paper: ~0.9).
func BenchmarkTable2ModelVerification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, fit, err := bench.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fit.R2, "r2")
	}
}

// BenchmarkFig7MergeSkew regenerates Figure 7 (merge join across the skew
// sweep for all five planners), reporting baseline/MBH total ratio at
// α=2.0.
func BenchmarkFig7MergeSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var base, mbh float64
		for _, m := range rows {
			if m.Alpha == 2.0 {
				switch m.Planner {
				case "B":
					base = m.TotalSec
				case "MBH":
					mbh = m.TotalSec
				}
			}
		}
		b.ReportMetric(base/mbh, "baseline/MBH@a2")
	}
}

// BenchmarkFig8HashSkew regenerates Figure 8 (hash join across the skew
// sweep), reporting MBH/Tabu total ratio at α=0.5 — the paper's MBH
// collapse under slight skew.
func BenchmarkFig8HashSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		var mbh, tabu float64
		for _, m := range rows {
			if m.Alpha == 0.5 {
				switch m.Planner {
				case "MBH":
					mbh = m.TotalSec
				case "Tabu":
					tabu = m.TotalSec
				}
			}
		}
		b.ReportMetric(mbh/tabu, "MBH/Tabu@a0.5")
	}
}

// BenchmarkFig9Beneficial regenerates Figure 9 (AIS ⋈ MODIS analogue,
// beneficial skew), reporting the end-to-end speedup over the baseline
// (paper: ~2.5x).
func BenchmarkFig9Beneficial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig9(benchReal())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.Speedup(rows), "speedup")
		b.ReportMetric(bench.AlignReduction(rows), "align-reduction")
	}
}

// BenchmarkAdversarial regenerates the Section 6.3.2 experiment (two
// matched MODIS bands), reporting the exec-time spread across the
// non-solver planners (paper: all comparable).
func BenchmarkAdversarial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Adversarial(benchReal())
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := -1.0, 0.0
		for _, m := range rows {
			if m.Planner == "ILP" || m.Planner == "ILP-C" {
				continue
			}
			et := m.AlignSec + m.CompSec
			if lo < 0 || et < lo {
				lo = et
			}
			if et > hi {
				hi = et
			}
		}
		b.ReportMetric(hi/lo, "max/min-exec")
	}
}

// BenchmarkFig10ScaleOut regenerates Figure 10 (2–12 node scale-out at
// α=1.0), reporting baseline@12 / MBH@2 — above 1 means two skew-aware
// nodes beat twelve naive ones.
func BenchmarkFig10ScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig10(benchCfg(), []int{2, 12})
		if err != nil {
			b.Fatal(err)
		}
		var mbh2, base12 float64
		for _, m := range rows {
			if m.Nodes == 2 && m.Planner == "MBH" {
				mbh2 = m.AlignSec + m.CompSec
			}
			if m.Nodes == 12 && m.Planner == "B" {
				base12 = m.AlignSec + m.CompSec
			}
		}
		b.ReportMetric(base12/mbh2, "base@12/MBH@2")
	}
}

// ---- Ablation benchmarks (DESIGN.md Section 4) ----

// ablationProblem builds a moderately skewed hash-join planning instance.
func ablationProblem(b *testing.B) *physical.Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	ls := workload.ZipfUnitSizes(512, 1.0, 2<<20, rng)
	rs := workload.ZipfUnitSizes(512, 1.0, 2<<20, rng)
	left, right := workload.HashSlices(ls, rs, 4, 1.0, rng)
	pr, err := physical.NewProblem(4, join.Hash, left, right, physical.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	return pr
}

// BenchmarkAblationTabuList compares Algorithm 2's assignment-level tabu
// memory against plain improving-move hill climbing: the tabu list prunes
// revisits, bounding planning work (the paper's polynomial-search
// argument).
func BenchmarkAblationTabuList(b *testing.B) {
	pr := ablationProblem(b)
	b.Run("assignment-tabu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := physical.TabuPlanner{}.Plan(pr)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Model.Total, "model-cost")
		}
	})
	b.Run("no-tabu-hillclimb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := physical.TabuPlanner{DisableTabuList: true}.Plan(pr)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Model.Total, "model-cost")
		}
	})
}

// BenchmarkAblationLockScheduler compares the Section 3.4 greedy
// lock-skipping shuffle scheduler against naive FIFO sending on the same
// physical plan, reporting the makespan of each.
func BenchmarkAblationLockScheduler(b *testing.B) {
	pr := ablationProblem(b)
	res, err := physical.MinBandwidthPlanner{}.Plan(pr)
	if err != nil {
		b.Fatal(err)
	}
	var transfers []simnet.Transfer
	for u := 0; u < pr.N; u++ {
		for j := 0; j < pr.K; j++ {
			if j != res.Assignment[u] && pr.Sizes[u][j] > 0 {
				transfers = append(transfers, simnet.Transfer{From: j, To: res.Assignment[u], Cells: pr.Sizes[u][j]})
			}
		}
	}
	for _, mode := range []struct {
		name string
		s    simnet.Scheduling
	}{{"greedy-locks", simnet.GreedyLocks}, {"fifo", simnet.FIFONoSkip}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, err := simnet.Simulate(simnet.Config{
					Nodes:       pr.K,
					PerCellTime: pr.Params.Transfer,
					Scheduling:  mode.s,
				}, transfers)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.Makespan, "makespan-s")
			}
		})
	}
}

// BenchmarkAblationBuildSide compares building the hash map on the smaller
// vs. the larger join side — the asymmetry (b ≫ p) behind the hash-join
// unit cost C_i = b·t_i + p·u_i.
func BenchmarkAblationBuildSide(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	mk := func(n int) []join.Tuple {
		ts := make([]join.Tuple, n)
		for i := range ts {
			ts[i] = join.Tuple{Key: []array.Value{array.IntValue(rng.Int63n(int64(n)))}}
		}
		return ts
	}
	small, large := mk(2_000), mk(200_000)
	b.Run("build-small", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.HashJoinBuildSide(small, large, nil)
		}
	})
	b.Run("build-large", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.HashJoinBuildSide(large, small, nil)
		}
	})
}

// BenchmarkAblationCoarseBins sweeps the coarse solver's bin count around
// the paper's 75, trading solve speed against plan quality.
func BenchmarkAblationCoarseBins(b *testing.B) {
	pr := ablationProblem(b)
	for _, bins := range []int{8, 75, 300} {
		bins := bins
		b.Run(map[int]string{8: "bins-8", 75: "bins-75", 300: "bins-300"}[bins], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := physical.CoarseILPPlanner{Budget: 100 * time.Millisecond, Bins: bins}.Plan(pr)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Model.Total, "model-cost")
			}
		})
	}
}

// BenchmarkAblationSortPlacement isolates the logical planner's lazy-sort
// rule: sorting the whole input up front (redim) vs. reassigning cells
// without sorting (rechunk) and sorting only a small output later.
func BenchmarkAblationSortPlacement(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	src := array.MustNew(array.MustParseSchema("A<v:int>[i=1,200000,6250]"))
	for i := int64(1); i <= 200_000; i++ {
		src.MustPut([]int64{i}, []array.Value{array.IntValue(rng.Int63n(200_000))})
	}
	src.SortAll()
	target := array.MustParseSchema("<i:int>[v=0,200000,6251]")
	smallOut := array.MustNew(array.MustParseSchema("O<x:int>[v=0,200000,6251]"))
	for i := int64(0); i < 2_000; i++ { // 1% selectivity output
		smallOut.MustPut([]int64{rng.Int63n(200_000)}, []array.Value{array.IntValue(i)})
	}
	b.Run("sort-before-redim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := afl.Redimension(src, target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sort-after-rechunk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := afl.Rechunk(src, target); err != nil {
				b.Fatal(err)
			}
			afl.Sort(smallOut)
		}
	})
}
