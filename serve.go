// Concurrent multi-query serving: the facade over internal/sched. A
// Scheduler admits N concurrent Query calls into the engine with
// stage-level admission control (capped simulator pool for Align, a
// compare-stage semaphore), carves per-query batch-memory budgets out of
// one process-wide pool (queuing, not failing, when it is exhausted),
// and weighted-fair-queues admissions between the interactive and scan
// classes with a starvation bound. DB.Serve is the closed-loop driver:
// a fixed worker pool replays a job list through the scheduler and
// reports throughput and latency percentiles per class.
//
// Scheduling is control-plane only: it decides when a query starts and
// which resources it may hold, never what it computes. Query outputs,
// join statistics, and modeled phase times are bit-for-bit identical
// with and without a scheduler attached.
package shufflejoin

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"shufflejoin/internal/sched"
)

// Scheduler admits concurrent queries into the engine: an admission cap
// with per-class weighted-fair queuing, a shared batch-memory pool, and
// capped Align/Compare stage slots. Create one with DB.NewScheduler,
// attach it per query with WithScheduler (or run a whole workload
// through DB.Serve), and inspect it with Snapshot. Safe for concurrent
// use; one Scheduler is meant to be shared by every query of a DB.
type Scheduler = sched.Scheduler

// SchedulerSnapshot is a point-in-time view of a Scheduler's admission
// state: in-flight and queued queries per class, cumulative
// admitted/rejected counters, memory-pool usage, and free stage slots.
type SchedulerSnapshot = sched.Snapshot

// SchedulerConfig configures DB.NewScheduler. The zero value of every
// field picks a sensible default.
type SchedulerConfig struct {
	// MaxQueries caps concurrently executing queries (default: one per
	// CPU). Submissions beyond the cap queue fairly instead of failing.
	MaxQueries int
	// AlignSlots caps concurrent Align stages — the size of the shared
	// simulator pool (default: MaxQueries).
	AlignSlots int
	// CompareSlots caps concurrent Compare stages (default: MaxQueries).
	CompareSlots int
	// MemoryPoolBytes is the process-wide batch-memory cap that admitted
	// queries reserve their budgets from; 0 disables memory admission.
	MemoryPoolBytes int64
	// PerQueryBytes is the reservation for a query without its own
	// WithMemoryBudget (default: MemoryPoolBytes / MaxQueries).
	PerQueryBytes int64
	// InteractiveWeight and ScanWeight are the WFQ weights (defaults 3
	// and 1: three interactive grants per scan grant under contention).
	InteractiveWeight int
	ScanWeight        int
	// StarvationBound forces a waiting class through after this many
	// consecutive grants to the other class (default 8).
	StarvationBound int
}

// NewScheduler creates a query scheduler wired into the database's
// metrics registry: its queue depths, admission counters, and
// admission-wait histograms appear in MetricsSnapshot (and on a hub's
// /metrics) under sched.* names.
func (db *DB) NewScheduler(cfg SchedulerConfig) *Scheduler {
	return sched.New(sched.Config{
		MaxQueries:        cfg.MaxQueries,
		AlignSlots:        cfg.AlignSlots,
		CompareSlots:      cfg.CompareSlots,
		PoolBytes:         cfg.MemoryPoolBytes,
		PerQueryBytes:     cfg.PerQueryBytes,
		InteractiveWeight: cfg.InteractiveWeight,
		ScanWeight:        cfg.ScanWeight,
		StarvationBound:   cfg.StarvationBound,
		Registry:          db.metrics,
	})
}

// WithScheduler routes the query through a shared scheduler: the call
// blocks until admitted (query slot plus memory reservation), executes
// with the scheduler's stage slots metering its Align and Compare
// phases, and releases everything when it finishes. Results are
// identical with and without a scheduler.
func WithScheduler(s *Scheduler) QueryOption {
	return func(c *queryConfig) error {
		if s == nil {
			return fmt.Errorf("shufflejoin: WithScheduler needs a non-nil scheduler (use NewScheduler)")
		}
		c.sched = s
		return nil
	}
}

// WithQueryClass sets the query's scheduling class: "interactive" (the
// default — latency-sensitive, higher WFQ weight) or "scan"
// (throughput-oriented). Only meaningful together with WithScheduler.
func WithQueryClass(class string) QueryOption {
	return func(c *queryConfig) error {
		cl, err := sched.ParseClass(class)
		if err != nil {
			return fmt.Errorf("shufflejoin: %w", err)
		}
		c.class = cl
		return nil
	}
}

// WithQueryTimeout bounds the query's total time — admission wait
// included — cancelling it with context.DeadlineExceeded at expiry.
func WithQueryTimeout(d time.Duration) QueryOption {
	return func(c *queryConfig) error {
		if d <= 0 {
			return fmt.Errorf("shufflejoin: query timeout must be positive, got %v", d)
		}
		c.timeout = d
		return nil
	}
}

// WithQueryContext attaches a cancellation context to the query: the
// pipeline checks it at every stage boundary and per join unit, so a
// cancelled query stops promptly and returns ctx's error. Composes with
// WithQueryTimeout (the timeout nests inside ctx).
func WithQueryContext(ctx context.Context) QueryOption {
	return func(c *queryConfig) error {
		if ctx == nil {
			return fmt.Errorf("shufflejoin: WithQueryContext needs a non-nil context")
		}
		c.ctx = ctx
		return nil
	}
}

// ServeJob is one query of a DB.Serve workload.
type ServeJob struct {
	// Query is the AQL text.
	Query string
	// Class is the scheduling class ("interactive", "scan", or "" for
	// interactive).
	Class string
	// Options are extra per-query options (planner, cache, trace, ...).
	Options []QueryOption
}

// ServeOptions configures DB.Serve.
type ServeOptions struct {
	// Concurrency is the closed-loop client count: that many workers
	// each keep exactly one query outstanding (default: the scheduler's
	// MaxQueries).
	Concurrency int
	// Scheduler is the admission scheduler the workload runs through;
	// nil creates a default-configured one.
	Scheduler *Scheduler
	// Timeout bounds each query (0 = none).
	Timeout time.Duration
	// MaxErrors aborts the run after this many failed queries (0 = never
	// abort; failures are only counted).
	MaxErrors int
}

// LatencySummary is a latency distribution digest in a ServeReport.
type LatencySummary struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean"`
	P50   time.Duration `json:"p50"`
	P95   time.Duration `json:"p95"`
	P99   time.Duration `json:"p99"`
	Max   time.Duration `json:"max"`
}

// ServeReport is the outcome of one DB.Serve run.
type ServeReport struct {
	Completed int64                     `json:"completed"`
	Failed    int64                     `json:"failed"`
	Wall      time.Duration             `json:"wall"`
	QPS       float64                   `json:"qps"`
	Latency   LatencySummary            `json:"latency"`
	PerClass  map[string]LatencySummary `json:"per_class"`
	// Errors holds the first few failure messages, for diagnosis.
	Errors []string `json:"errors,omitempty"`
	// Scheduler is the scheduler's final admission state.
	Scheduler SchedulerSnapshot `json:"scheduler"`
}

// Serve replays a job list through the scheduler with a closed-loop
// worker pool: Concurrency workers each submit the next job the moment
// their previous query finishes, until the list is exhausted. It
// returns throughput and per-class latency percentiles; per-query
// results are folded into the DB's cumulative metrics exactly as
// individual Query calls are.
func (db *DB) Serve(jobs []ServeJob, opt ServeOptions) (*ServeReport, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("shufflejoin: Serve needs at least one job")
	}
	s := opt.Scheduler
	if s == nil {
		s = db.NewScheduler(SchedulerConfig{})
	}
	workers := opt.Concurrency
	if workers <= 0 {
		workers = s.Snapshot().MaxQueries
	}
	// Validate classes up front so a typo fails the run, not one job.
	for i := range jobs {
		if _, err := sched.ParseClass(jobs[i].Class); err != nil {
			return nil, fmt.Errorf("shufflejoin: job %d: %w", i, err)
		}
	}
	db.sealAll()

	type sample struct {
		class string
		d     time.Duration
	}
	var (
		next     atomic.Int64
		failed   atomic.Int64
		mu       sync.Mutex
		samples  []sample
		errs     []string
		overflow bool
		wg       sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if opt.MaxErrors > 0 && failed.Load() >= int64(opt.MaxErrors) {
					return
				}
				job := &jobs[i]
				qopts := make([]QueryOption, 0, len(job.Options)+3)
				qopts = append(qopts, job.Options...)
				qopts = append(qopts, WithScheduler(s), WithQueryClass(job.Class))
				if opt.Timeout > 0 {
					qopts = append(qopts, WithQueryTimeout(opt.Timeout))
				}
				t0 := time.Now()
				_, err := db.Query(job.Query, qopts...)
				d := time.Since(t0)
				if err != nil {
					failed.Add(1)
					mu.Lock()
					if len(errs) < 8 {
						errs = append(errs, fmt.Sprintf("job %d: %v", i, err))
					} else {
						overflow = true
					}
					mu.Unlock()
					continue
				}
				class := job.Class
				if class == "" {
					class = sched.Interactive.String()
				}
				mu.Lock()
				samples = append(samples, sample{class: class, d: d})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &ServeReport{
		Completed: int64(len(samples)),
		Failed:    failed.Load(),
		Wall:      wall,
		PerClass:  make(map[string]LatencySummary),
		Errors:    errs,
		Scheduler: s.Snapshot(),
	}
	if overflow {
		rep.Errors = append(rep.Errors, "... more errors elided")
	}
	if wall > 0 {
		rep.QPS = float64(rep.Completed) / wall.Seconds()
	}
	all := make([]time.Duration, 0, len(samples))
	byClass := make(map[string][]time.Duration)
	for _, sm := range samples {
		all = append(all, sm.d)
		byClass[sm.class] = append(byClass[sm.class], sm.d)
	}
	rep.Latency = summarize(all)
	for class, ds := range byClass {
		rep.PerClass[class] = summarize(ds)
	}
	return rep, nil
}

// summarize digests a latency sample set.
func summarize(ds []time.Duration) LatencySummary {
	if len(ds) == 0 {
		return LatencySummary{}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	pct := func(p float64) time.Duration {
		i := int(p*float64(len(ds))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ds) {
			i = len(ds) - 1
		}
		return ds[i]
	}
	return LatencySummary{
		Count: int64(len(ds)),
		Mean:  sum / time.Duration(len(ds)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
		Max:   ds[len(ds)-1],
	}
}
