package aql

import (
	"fmt"
	"math"

	"shufflejoin/internal/array"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/pipeline"
)

// Compiled is a query lowered against concrete source schemas, ready to
// hand to the shuffle join executor.
type Compiled struct {
	Query *Query
	Out   *array.Schema // destination τ (nil only for SELECT * with no INTO)
	Pred  join.Predicate
	// ExtraCarryLeft/Right name attribute columns referenced by SELECT
	// expressions, per side.
	ExtraCarryLeft, ExtraCarryRight []string
	// ProjectFactory builds the attribute projector once the join schema
	// is known; nil for SELECT *.
	ProjectFactory func(js *logical.JoinSchema) (func(l, r *join.Tuple) []array.Value, error)
}

// Compile resolves a parsed query against the source schemas.
func Compile(q *Query, left, right *array.Schema) (*Compiled, error) {
	if q.Left != left.Name || q.Right != right.Name {
		return nil, fmt.Errorf("aql: query joins %s and %s, given schemas %s and %s",
			q.Left, q.Right, left.Name, right.Name)
	}
	c := &Compiled{Query: q, Pred: q.Pred}
	if q.Star {
		c.Out = q.Into // nil means Equation-3 default
		return c, nil
	}

	// Column references in expressions become carry requirements.
	var cols []ColRef
	for _, item := range q.Select {
		cols = item.Expr.columns(cols)
	}
	for _, col := range cols {
		side, err := sideOf(col, left, right)
		if err != nil {
			return nil, err
		}
		s := left
		if side == 1 {
			s = right
		}
		if !s.HasDim(col.Name) && !s.HasAttr(col.Name) {
			return nil, fmt.Errorf("aql: column %s not found in %s", col, s.Name)
		}
		if s.AttrIndex(col.Name) >= 0 {
			if side == 0 {
				c.ExtraCarryLeft = append(c.ExtraCarryLeft, col.Name)
			} else {
				c.ExtraCarryRight = append(c.ExtraCarryRight, col.Name)
			}
		}
	}

	// Destination schema: INTO wins; otherwise derive it — the paper's
	// default join output keeps the sources' dimension space (Equation 3)
	// with one attribute per SELECT item.
	if q.Into != nil {
		c.Out = q.Into
		if len(q.Into.Attrs) != len(q.Select) {
			return nil, fmt.Errorf("aql: INTO schema has %d attributes, SELECT list has %d",
				len(q.Into.Attrs), len(q.Select))
		}
	} else {
		rp, err := join.ResolvePredicate(left, right, q.Pred)
		if err != nil {
			return nil, err
		}
		def := logical.DefaultOutputSchema(left, right, rp)
		out := &array.Schema{Name: def.Name, Dims: def.Dims}
		for i, item := range q.Select {
			out.Attrs = append(out.Attrs, array.Attribute{
				Name: item.Name(i),
				Type: exprType(item.Expr, left, right),
			})
		}
		c.Out = out
	}

	// Projection factory: compile each expression to an evaluator over
	// matched tuple pairs.
	items := q.Select
	outAttrs := c.Out.Attrs
	c.ProjectFactory = func(js *logical.JoinSchema) (func(l, r *join.Tuple) []array.Value, error) {
		evals := make([]evalFunc, len(items))
		for i, item := range items {
			ev, err := compileExpr(item.Expr, js)
			if err != nil {
				return nil, err
			}
			evals[i] = ev
		}
		return func(l, r *join.Tuple) []array.Value {
			out := make([]array.Value, len(evals))
			for i, ev := range evals {
				v := ev(l, r)
				if outAttrs[i].Type == array.TypeInt64 && v.Kind == array.TypeFloat64 {
					v = array.IntValue(v.AsInt())
				}
				out[i] = v
			}
			return out
		}, nil
	}
	return c, nil
}

// ExecOptions folds the compiled query into executor options.
func (c *Compiled) ExecOptions(base pipeline.Options) pipeline.Options {
	base.ExtraCarryLeft = append(base.ExtraCarryLeft, c.ExtraCarryLeft...)
	base.ExtraCarryRight = append(base.ExtraCarryRight, c.ExtraCarryRight...)
	base.ProjectFactory = c.ProjectFactory
	return base
}

func sideOf(col ColRef, left, right *array.Schema) (int, error) {
	if col.Array != "" {
		switch col.Array {
		case left.Name:
			return 0, nil
		case right.Name:
			return 1, nil
		default:
			return 0, fmt.Errorf("aql: column %s references unknown array", col)
		}
	}
	inLeft := left.HasDim(col.Name) || left.HasAttr(col.Name)
	inRight := right.HasDim(col.Name) || right.HasAttr(col.Name)
	switch {
	case inLeft:
		return 0, nil
	case inRight:
		return 1, nil
	default:
		return 0, fmt.Errorf("aql: column %s not found in %s or %s", col, left.Name, right.Name)
	}
}

// exprType infers the output scalar type of an expression.
func exprType(e Expr, left, right *array.Schema) array.ScalarType {
	switch x := e.(type) {
	case ColRef:
		for _, s := range []*array.Schema{left, right} {
			if x.Array != "" && x.Array != s.Name {
				continue
			}
			if s.HasDim(x.Name) {
				return array.TypeInt64
			}
			if i := s.AttrIndex(x.Name); i >= 0 {
				return s.Attrs[i].Type
			}
		}
		return array.TypeInt64
	case NumLit:
		if x.IsInt {
			return array.TypeInt64
		}
		return array.TypeFloat64
	case NegExpr:
		return exprType(x.E, left, right)
	case BinExpr:
		if x.Op == '/' {
			return array.TypeFloat64
		}
		lt, rt := exprType(x.L, left, right), exprType(x.R, left, right)
		if lt == array.TypeFloat64 || rt == array.TypeFloat64 {
			return array.TypeFloat64
		}
		return array.TypeInt64
	}
	return array.TypeFloat64
}

type evalFunc func(l, r *join.Tuple) array.Value

// compileExpr lowers an expression to an evaluator bound to the join
// schema's carried columns.
func compileExpr(e Expr, js *logical.JoinSchema) (evalFunc, error) {
	switch x := e.(type) {
	case ColRef:
		acc, err := pipeline.Accessor(js, x.Array, x.Name)
		if err != nil {
			return nil, err
		}
		return evalFunc(acc), nil
	case NumLit:
		var v array.Value
		if x.IsInt {
			v = array.IntValue(int64(x.Val))
		} else {
			v = array.FloatValue(x.Val)
		}
		return func(l, r *join.Tuple) array.Value { return v }, nil
	case NegExpr:
		inner, err := compileExpr(x.E, js)
		if err != nil {
			return nil, err
		}
		return func(l, r *join.Tuple) array.Value {
			v := inner(l, r)
			if v.Kind == array.TypeInt64 {
				return array.IntValue(-v.Int)
			}
			return array.FloatValue(-v.AsFloat())
		}, nil
	case BinExpr:
		lf, err := compileExpr(x.L, js)
		if err != nil {
			return nil, err
		}
		rf, err := compileExpr(x.R, js)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(l, r *join.Tuple) array.Value {
			a, b := lf(l, r), rf(l, r)
			bothInt := a.Kind == array.TypeInt64 && b.Kind == array.TypeInt64
			switch op {
			case '+':
				if bothInt {
					return array.IntValue(a.Int + b.Int)
				}
				return array.FloatValue(a.AsFloat() + b.AsFloat())
			case '-':
				if bothInt {
					return array.IntValue(a.Int - b.Int)
				}
				return array.FloatValue(a.AsFloat() - b.AsFloat())
			case '*':
				if bothInt {
					return array.IntValue(a.Int * b.Int)
				}
				return array.FloatValue(a.AsFloat() * b.AsFloat())
			case '/':
				d := b.AsFloat()
				if d == 0 {
					return array.FloatValue(math.NaN())
				}
				return array.FloatValue(a.AsFloat() / d)
			}
			return array.Value{}
		}, nil
	}
	return nil, fmt.Errorf("aql: unsupported expression %T", e)
}
