package aql

import (
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/exec"
)

func filterCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c := cluster.MustNew(3)
	a := array.MustNew(array.MustParseSchema("A<v:int, flag:int>[i=1,100,10]"))
	b := array.MustNew(array.MustParseSchema("B<w:int, score:float>[i=1,100,10]"))
	for i := int64(1); i <= 100; i++ {
		a.MustPut([]int64{i}, []array.Value{array.IntValue(i), array.IntValue(i % 4)})
		b.MustPut([]int64{i}, []array.Value{array.IntValue(i), array.FloatValue(float64(i) / 10)})
	}
	a.SortAll()
	b.SortAll()
	c.Load(a, cluster.RoundRobin)
	c.Load(b, cluster.RoundRobin)
	return c
}

func TestParseFilterConjuncts(t *testing.T) {
	q, err := Parse("SELECT * FROM A, B WHERE A.i = B.i AND A.flag = 2 AND B.score > 5.0")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Pred) != 1 {
		t.Fatalf("Pred = %v", q.Pred)
	}
	if len(q.Filters) != 2 {
		t.Fatalf("Filters = %v", q.Filters)
	}
	if q.Filters[0].Col.Name != "flag" || q.Filters[0].Op != "=" {
		t.Errorf("filter 0 = %v", q.Filters[0])
	}
	if q.Filters[1].Op != ">" || q.Filters[1].Val.AsFloat() != 5.0 {
		t.Errorf("filter 1 = %v", q.Filters[1])
	}
}

func TestParseFlippedFilter(t *testing.T) {
	q, err := Parse("SELECT * FROM A, B WHERE A.i = B.i AND 10 <= A.v")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Filters) != 1 || q.Filters[0].Op != ">=" || q.Filters[0].Col.Name != "v" {
		t.Errorf("flipped filter = %v", q.Filters)
	}
}

func TestParseFilterErrors(t *testing.T) {
	bad := []string{
		"SELECT * FROM A, B WHERE A.v < B.w",  // non-equality join
		"SELECT * FROM A, B WHERE 1 = 2",      // two literals
		"SELECT * FROM A, B WHERE A.v ~ 3",    // bad operator
		"SELECT * FROM A, B WHERE A.flag = 2", // filter only: no join pred
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestRunWithFilterPushdown(t *testing.T) {
	c := filterCluster(t)
	// flag = i%4; i in 1..100 with flag=2: i ∈ {2,6,...,98} -> 25 rows.
	rep, err := Run(c, "SELECT A.v FROM A, B WHERE A.i = B.i AND A.flag = 2", exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != 25 {
		t.Errorf("Matches = %d, want 25", rep.Matches)
	}
}

func TestRunWithBothSideFilters(t *testing.T) {
	c := filterCluster(t)
	// A.flag != 0 keeps 75 rows; B.score > 5.0 keeps i > 50.
	// Intersection: i in 51..100 with i%4 != 0 -> 50 - 13 = 37.
	rep, err := Run(c, `SELECT A.v FROM A, B
		WHERE A.i = B.i AND A.flag != 0 AND B.score > 5.0`, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != 37 {
		t.Errorf("Matches = %d, want 37", rep.Matches)
	}
}

func TestRunFilterOnDimension(t *testing.T) {
	c := filterCluster(t)
	rep, err := Run(c, "SELECT A.v FROM A, B WHERE A.i = B.i AND A.i <= 10", exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != 10 {
		t.Errorf("Matches = %d, want 10", rep.Matches)
	}
}

func TestRunFilterUnknownColumn(t *testing.T) {
	c := filterCluster(t)
	if _, err := Run(c, "SELECT A.v FROM A, B WHERE A.i = B.i AND nope = 1", exec.Options{}); err == nil {
		t.Error("unknown filter column should error")
	}
	// Ambiguous unqualified column (i exists in both).
	if _, err := Run(c, "SELECT A.v FROM A, B WHERE A.i = B.i AND i = 1", exec.Options{}); err == nil {
		t.Error("ambiguous filter column should error")
	}
}

func TestMultiWayWithFilter(t *testing.T) {
	c := threeWayCluster(t)
	// Regions pop > 3000 keeps regions 4,5 (pop 4000, 5000) -> rid 4,0.
	res, err := RunMulti(c, `SELECT * FROM Clicks, Users, Regions
		WHERE Clicks.who = Users.uid AND Users.region = Regions.rid
		AND Regions.pop > 3000`, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Users with region ∈ {4, 0}: uid%5 ∈ {4,0} -> 20 users; each has 8
	// clicks -> 160.
	if res.Matches != 160 {
		t.Errorf("Matches = %d, want 160", res.Matches)
	}
}

func TestFilterPreservesPlacement(t *testing.T) {
	c := filterCluster(t)
	dl, _ := c.Catalog.Lookup("A")
	q, err := Parse("SELECT A.v FROM A, B WHERE A.i = B.i AND A.flag = 2")
	if err != nil {
		t.Fatal(err)
	}
	dr, _ := c.Catalog.Lookup("B")
	fl, _, err := pushdownFilters(q, dl, dr)
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.Validate(c.K); err != nil {
		t.Fatalf("filtered placement invalid: %v", err)
	}
	for key, node := range fl.Placement {
		if dl.Placement[key] != node {
			t.Fatalf("chunk %s moved from node %d to %d", key, dl.Placement[key], node)
		}
	}
}
