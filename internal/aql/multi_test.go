package aql

import (
	"strings"
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/exec"
)

// threeWayCluster loads Users (small), Clicks (large), Regions (small):
// Clicks joins Users on user id, Users joins Regions on region id.
func threeWayCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c := cluster.MustNew(3)

	users := array.MustNew(array.MustParseSchema("Users<region:int>[uid=1,50,10]"))
	for uid := int64(1); uid <= 50; uid++ {
		users.MustPut([]int64{uid}, []array.Value{array.IntValue(uid % 5)})
	}
	clicks := array.MustNew(array.MustParseSchema("Clicks<who:int>[t=1,400,50]"))
	for ts := int64(1); ts <= 400; ts++ {
		clicks.MustPut([]int64{ts}, []array.Value{array.IntValue(ts%50 + 1)})
	}
	regions := array.MustNew(array.MustParseSchema("Regions<rid:int, pop:int>[r=1,5,5]"))
	for r := int64(1); r <= 5; r++ {
		regions.MustPut([]int64{r}, []array.Value{array.IntValue(r % 5), array.IntValue(r * 1000)})
	}
	for _, a := range []*array.Array{users, clicks, regions} {
		a.SortAll()
		c.Load(a, cluster.RoundRobin)
	}
	return c
}

const threeWayQuery = `SELECT *
	FROM Clicks, Users, Regions
	WHERE Clicks.who = Users.uid AND Users.region = Regions.rid`

func TestRunMultiThreeWay(t *testing.T) {
	c := threeWayCluster(t)
	res, err := RunMulti(c, threeWayQuery, exec.Options{})
	if err != nil {
		t.Fatalf("RunMulti: %v", err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(res.Steps))
	}
	// Every click matches exactly one user; every user matches exactly one
	// region -> 400 final rows.
	if res.Matches != 400 {
		t.Errorf("Matches = %d, want 400", res.Matches)
	}
	if res.TotalSeconds <= 0 {
		t.Error("no aggregate timing")
	}
	if len(res.Order) != 2 {
		t.Errorf("Order = %v", res.Order)
	}
	// The output must carry fields from all three sources. The join key
	// pair (region = rid) merges, so exactly one of the two survives.
	s := res.Output.Schema
	for _, want := range []string{"who", "pop"} {
		if !s.HasAttr(want) && !s.HasDim(want) {
			t.Errorf("output schema %s missing %s", s, want)
		}
	}
	if !s.HasAttr("region") && !s.HasAttr("rid") {
		t.Errorf("output schema %s lost the join key", s)
	}
}

func TestRunMultiGreedyOrder(t *testing.T) {
	// The greedy optimizer should join the two small relations (Users ⋈
	// Regions) first: that intermediate is far smaller than anything
	// involving Clicks.
	c := threeWayCluster(t)
	res, err := RunMulti(c, threeWayQuery, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Order[0]
	if !strings.Contains(first, "Users") || !strings.Contains(first, "Regions") {
		t.Errorf("first join = %q, want Users ⋈ Regions (smallest intermediate)", first)
	}
}

func TestRunMultiProjection(t *testing.T) {
	c := threeWayCluster(t)
	res, err := RunMulti(c, `SELECT pop, who FROM Clicks, Users, Regions
		WHERE Clicks.who = Users.uid AND Users.region = Regions.rid`, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output.Schema.Attrs) != 2 {
		t.Errorf("projected attrs = %v", res.Output.Schema.Attrs)
	}
	if res.Matches != 400 {
		t.Errorf("Matches = %d, want 400", res.Matches)
	}
}

func TestRunMultiMatchesTwoStepManual(t *testing.T) {
	// Cross-check against running the two joins by hand.
	c := threeWayCluster(t)
	auto, err := RunMulti(c, threeWayQuery, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := threeWayCluster(t)
	step1, err := Run(c2, "SELECT * FROM Users, Regions WHERE Users.region = Regions.rid", exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	step1.Output.Schema.Name = "UR"
	c2.Load(step1.Output, cluster.RoundRobin)
	step2, err := Run(c2, "SELECT * FROM Clicks, UR WHERE Clicks.who = UR.uid", exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Matches != step2.Matches {
		t.Errorf("multi-join %d matches, manual pipeline %d", auto.Matches, step2.Matches)
	}
}

func TestRunMultiErrors(t *testing.T) {
	c := threeWayCluster(t)
	cases := []string{
		// Two-way query routed to RunMulti.
		"SELECT * FROM Users, Regions WHERE Users.region = Regions.rid",
		// Disconnected array (no predicate touches Regions).
		"SELECT * FROM Clicks, Users, Regions WHERE Clicks.who = Users.uid AND Clicks.t = Users.uid",
		// Expression select.
		"SELECT pop + 1 FROM Clicks, Users, Regions WHERE Clicks.who = Users.uid AND Users.region = Regions.rid",
		// INTO unsupported.
		"SELECT * INTO T<x:int>[i=1,10,5] FROM Clicks, Users, Regions WHERE Clicks.who = Users.uid AND Users.region = Regions.rid",
		// Unknown array.
		"SELECT * FROM Clicks, Users, Ghosts WHERE Clicks.who = Users.uid AND Users.region = Ghosts.rid",
		// Single-array predicate.
		"SELECT * FROM Clicks, Users, Regions WHERE Users.uid = Users.region AND Clicks.who = Users.uid",
	}
	for _, q := range cases {
		if _, err := RunMulti(c, q, exec.Options{}); err == nil {
			t.Errorf("RunMulti(%q) succeeded, want error", q)
		}
	}
}

func TestRunRejectsMultiWay(t *testing.T) {
	c := threeWayCluster(t)
	if _, err := Run(c, threeWayQuery, exec.Options{}); err == nil {
		t.Error("Run should reject three-way queries")
	}
}

func TestParseThreeWayFrom(t *testing.T) {
	q, err := Parse(threeWayQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 3 {
		t.Errorf("From = %v", q.From)
	}
}

func TestExplainMulti(t *testing.T) {
	c := threeWayCluster(t)
	plan, err := ExplainMulti(c, threeWayQuery, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("steps = %v", plan.Steps)
	}
	// Small pair first, as in TestRunMultiGreedyOrder.
	first := plan.Steps[0]
	pair := first.Left + " " + first.Right
	if !strings.Contains(pair, "Users") || !strings.Contains(pair, "Regions") {
		t.Errorf("first step = %+v", first)
	}
	// The preview must not register intermediates in the real catalog.
	if _, err := c.Catalog.Lookup("_join1"); err == nil {
		t.Error("ExplainMulti leaked an intermediate into the catalog")
	}
	if _, err := ExplainMulti(c, "SELECT * FROM Users, Regions WHERE Users.region = Regions.rid", exec.Options{}); err == nil {
		t.Error("two-way query should be rejected")
	}
}
