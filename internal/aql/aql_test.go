package aql

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/exec"
)

func TestParseFigure5Query(t *testing.T) {
	q, err := Parse("SELECT * INTO C<i:int, j:int>[v=1,128M,4M] FROM A, B WHERE A.v = B.w")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !q.Star {
		t.Error("expected SELECT *")
	}
	if q.Into == nil || q.Into.Name != "C" || q.Into.Dims[0].ChunkInterval != 4000000 {
		t.Errorf("Into = %v", q.Into)
	}
	if q.Left != "A" || q.Right != "B" {
		t.Errorf("FROM = %s, %s", q.Left, q.Right)
	}
	if len(q.Pred) != 1 || q.Pred[0].Left.Name != "v" || q.Pred[0].Right.Name != "w" {
		t.Errorf("Pred = %v", q.Pred)
	}
}

func TestParseMergeJoinQuery(t *testing.T) {
	q, err := Parse(`SELECT A.v1 - B.v1, A.v2 - B.v2
		FROM A, B
		WHERE A.i = B.i AND A.j = B.j;`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Select) != 2 {
		t.Fatalf("Select = %v", q.Select)
	}
	if len(q.Pred) != 2 {
		t.Fatalf("Pred = %v", q.Pred)
	}
	b, ok := q.Select[0].Expr.(BinExpr)
	if !ok || b.Op != '-' {
		t.Errorf("Select[0] = %#v", q.Select[0].Expr)
	}
}

func TestParseNDVIQuery(t *testing.T) {
	q, err := Parse(`SELECT (Band2.reflectance - Band1.reflectance)
		/ (Band2.reflectance + Band1.reflectance)
		FROM Band1, Band2
		WHERE Band1.time = Band2.time
		AND Band1.longitude = Band2.longitude
		AND Band1.latitude = Band2.latitude;`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Pred) != 3 {
		t.Errorf("Pred = %v", q.Pred)
	}
	if len(q.Select) != 1 {
		t.Fatalf("Select = %v", q.Select)
	}
	div, ok := q.Select[0].Expr.(BinExpr)
	if !ok || div.Op != '/' {
		t.Errorf("top expr = %#v", q.Select[0].Expr)
	}
}

func TestParsePredicateOrientation(t *testing.T) {
	// Reversed qualifiers must flip so left terms reference the left array.
	q, err := Parse("SELECT * FROM A JOIN B ON B.w = A.v")
	if err != nil {
		t.Fatal(err)
	}
	if q.Pred[0].Left.Array != "A" || q.Pred[0].Right.Array != "B" {
		t.Errorf("Pred = %v", q.Pred)
	}
}

func TestParseAlias(t *testing.T) {
	q, err := Parse("SELECT A.v AS reading FROM A, B WHERE A.i = B.j")
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Alias != "reading" || q.Select[0].Name(0) != "reading" {
		t.Errorf("alias = %q", q.Select[0].Alias)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT FROM A, B WHERE A.i = B.i",
		"SELECT * FROM A WHERE A.i = A.j",          // missing second array
		"SELECT * FROM A, B",                       // no predicate
		"SELECT * FROM A, B WHERE A.i < B.i",       // not an equality
		"SELECT * FROM A, B WHERE A.i = B.i junk",  // trailing tokens
		"SELECT * INTO C<v:int> FROM",              // truncated
		"SELECT 'unclosed FROM A, B WHERE A.i=B.i", // bad string
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestQueryStringRoundTrips(t *testing.T) {
	q, err := Parse("SELECT A.v1 - B.v1 FROM A, B WHERE A.i = B.i")
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"SELECT", "(A.v1 - B.v1)", "FROM A JOIN B", "A.i = B.i"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestCompileInfersOutputSchema(t *testing.T) {
	left := array.MustParseSchema("A<v1:int, v2:float>[i=1,100,10]")
	right := array.MustParseSchema("B<v1:int, v2:float>[i=1,100,10]")
	q, err := Parse("SELECT A.v1 - B.v1, A.v2 / B.v2 FROM A, B WHERE A.i = B.i")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(q, left, right)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Out.Attrs) != 2 {
		t.Fatalf("out attrs = %v", c.Out.Attrs)
	}
	if c.Out.Attrs[0].Type != array.TypeInt64 {
		t.Errorf("int - int should be int, got %v", c.Out.Attrs[0].Type)
	}
	if c.Out.Attrs[1].Type != array.TypeFloat64 {
		t.Errorf("division should be float, got %v", c.Out.Attrs[1].Type)
	}
	if len(c.Out.Dims) == 0 {
		t.Error("D:D default output should keep the dimension space")
	}
	// v1 and v2 are carried on both sides for the expressions.
	if len(c.ExtraCarryLeft) != 2 || len(c.ExtraCarryRight) != 2 {
		t.Errorf("carries = %v / %v", c.ExtraCarryLeft, c.ExtraCarryRight)
	}
}

func TestCompileIntoArityMismatch(t *testing.T) {
	left := array.MustParseSchema("A<v:int>[i=1,100,10]")
	right := array.MustParseSchema("B<w:int>[j=1,100,10]")
	q, err := Parse("SELECT A.v, B.w INTO T<only:int>[i=1,100,10] FROM A, B WHERE A.v = B.w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(q, left, right); err == nil {
		t.Error("arity mismatch should fail compilation")
	}
}

func TestCompileUnknownColumn(t *testing.T) {
	left := array.MustParseSchema("A<v:int>[i=1,100,10]")
	right := array.MustParseSchema("B<w:int>[j=1,100,10]")
	q, err := Parse("SELECT A.nope FROM A, B WHERE A.v = B.w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(q, left, right); err == nil {
		t.Error("unknown column should fail compilation")
	}
}

// End-to-end: run the paper's D:D expression query on real data and verify
// the computed attribute values.
func TestRunExpressionQuery(t *testing.T) {
	mk := func(name string, seed int64) *array.Array {
		s := array.MustParseSchema(name + "<v1:int, v2:int>[i=1,40,10, j=1,40,10]")
		a := array.MustNew(s)
		rng := rand.New(rand.NewSource(seed))
		for i := int64(1); i <= 40; i++ {
			for j := int64(1); j <= 40; j++ {
				if rng.Intn(3) == 0 {
					continue // sparse
				}
				a.MustPut([]int64{i, j}, []array.Value{
					array.IntValue(rng.Int63n(100)), array.IntValue(rng.Int63n(100))})
			}
		}
		return a
	}
	a, b := mk("A", 1), mk("B", 2)
	c := cluster.MustNew(4)
	c.Load(a, cluster.RoundRobin)
	c.Load(b, cluster.RoundRobin)

	rep, err := Run(c, `SELECT A.v1 - B.v1, A.v2 - B.v2 FROM A, B
		WHERE A.i = B.i AND A.j = B.j;`, exec.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Matches == 0 {
		t.Fatal("no matches")
	}
	checked := 0
	rep.Output.Scan(func(coords []int64, attrs []array.Value) bool {
		av, okA := a.Get(coords)
		bv, okB := b.Get(coords)
		if !okA || !okB {
			t.Fatalf("output cell %v has no source", coords)
		}
		if attrs[0].AsInt() != av[0].AsInt()-bv[0].AsInt() {
			t.Fatalf("cell %v: v1 diff = %v, want %v", coords, attrs[0], av[0].AsInt()-bv[0].AsInt())
		}
		checked++
		return checked < 50
	})
	if checked == 0 {
		t.Error("verified no cells")
	}
}

// End-to-end NDVI-style division query with floats.
func TestRunDivisionQuery(t *testing.T) {
	mk := func(name string) *array.Array {
		s := array.MustParseSchema(name + "<reflectance:float>[x=1,20,5]")
		a := array.MustNew(s)
		for x := int64(1); x <= 20; x++ {
			a.MustPut([]int64{x}, []array.Value{array.FloatValue(float64(x) + 0.5)})
		}
		return a
	}
	c := cluster.MustNew(2)
	c.Load(mk("Band1"), cluster.RoundRobin)
	c.Load(mk("Band2"), cluster.RoundRobin)
	rep, err := Run(c, `SELECT (Band2.reflectance - Band1.reflectance)
		/ (Band2.reflectance + Band1.reflectance)
		FROM Band1, Band2 WHERE Band1.x = Band2.x`, exec.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Matches != 20 {
		t.Fatalf("Matches = %d, want 20", rep.Matches)
	}
	rep.Output.Scan(func(coords []int64, attrs []array.Value) bool {
		if math.Abs(attrs[0].AsFloat()-0) > 1e-12 {
			t.Fatalf("NDVI of identical bands should be 0, got %v at %v", attrs[0], coords)
		}
		return true
	})
}

// SELECT i, j INTO T<i:int,j:int>[] — Figure 2(b) exactly.
func TestRunUnorderedOutput(t *testing.T) {
	mkA := array.MustNew(array.MustParseSchema("a<v:int>[i=1,9,3]"))
	mkB := array.MustNew(array.MustParseSchema("b<w:int>[j=1,9,3]"))
	// Figure 2 input data.
	avals := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	bvals := []int64{2, 3, 5, 6, 7, 9, 10, 11, 12}
	for idx, v := range avals {
		mkA.MustPut([]int64{int64(idx + 1)}, []array.Value{array.IntValue(v)})
	}
	for idx, w := range bvals {
		mkB.MustPut([]int64{int64(idx + 1)}, []array.Value{array.IntValue(w)})
	}
	c := cluster.MustNew(2)
	c.Load(mkA, cluster.RoundRobin)
	c.Load(mkB, cluster.RoundRobin)
	rep, err := Run(c, "SELECT i, j INTO T<i:int, j:int>[] FROM a JOIN b ON a.v = b.w", exec.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Matching values: 2,3,5,6,7,9 -> 6 matches.
	if rep.Matches != 6 {
		t.Errorf("Matches = %d, want 6", rep.Matches)
	}
}
