package aql

import (
	"math"
	"strings"
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/exec"
)

func TestExplainViaAQL(t *testing.T) {
	c := filterCluster(t)
	ex, err := Explain(c, "SELECT A.v FROM A, B WHERE A.i = B.i", exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Plans) == 0 || ex.Selectivity <= 0 {
		t.Fatalf("explanation = %+v", ex)
	}
	// Same-shape D:D: cheapest plan is the pure scan merge.
	if got := ex.Plans[0].Describe(); got != "mergeJoin(A, B)" {
		t.Errorf("best plan = %q", got)
	}
	// Filters apply before explaining: a filter that empties one side
	// changes the statistics but must not error.
	ex2, err := Explain(c, "SELECT A.v FROM A, B WHERE A.i = B.i AND A.flag = 99", exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex2.Plans) == 0 {
		t.Error("empty side should still enumerate plans")
	}
	// Errors propagate.
	if _, err := Explain(c, "garbage", exec.Options{}); err == nil {
		t.Error("parse error should propagate")
	}
	if _, err := Explain(c, threeWayQuery, exec.Options{}); err == nil {
		t.Error("multi-way explain should be rejected")
	}
	if _, err := Explain(c, "SELECT A.v FROM A, Gone WHERE A.i = Gone.i", exec.Options{}); err == nil {
		t.Error("unknown array should fail")
	}
}

func TestExpressionNegationAndLiterals(t *testing.T) {
	c := filterCluster(t)
	rep, err := Run(c, `SELECT -A.v + 1.5 AS adj, 2 * A.v AS dbl
		FROM A, B WHERE A.i = B.i AND A.i <= 3`, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches != 3 {
		t.Fatalf("Matches = %d", rep.Matches)
	}
	rep.Output.Scan(func(coords []int64, attrs []array.Value) bool {
		i := coords[0]
		if math.Abs(attrs[0].AsFloat()-(-float64(i)+1.5)) > 1e-12 {
			t.Errorf("adj at %d = %v", i, attrs[0])
		}
		if attrs[1].AsInt() != 2*i {
			t.Errorf("dbl at %d = %v", i, attrs[1])
		}
		return true
	})
}

func TestExprStringsAndColumns(t *testing.T) {
	q, err := Parse("SELECT -A.v * (B.w + 2.5) AS x FROM A, B WHERE A.i = B.i")
	if err != nil {
		t.Fatal(err)
	}
	e := q.Select[0].Expr
	s := e.String()
	for _, want := range []string{"-A.v", "B.w", "2.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	cols := e.columns(nil)
	if len(cols) != 2 {
		t.Errorf("columns = %v", cols)
	}
	// NumLit int/float rendering.
	if (NumLit{Val: 3, IsInt: true}).String() != "3" {
		t.Error("int literal rendering")
	}
	if (NumLit{Val: 3.5}).String() != "3.5" {
		t.Error("float literal rendering")
	}
}

func TestQueryStringWithInto(t *testing.T) {
	q, err := Parse("SELECT v AS out INTO T<out:int>[i=1,10,5] FROM A, B WHERE A.i = B.i")
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"AS out", "INTO T", "FROM A JOIN B"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestFlipComparisonTable(t *testing.T) {
	cases := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
	for in, want := range cases {
		if got := flipComparison(in); got != want {
			t.Errorf("flip(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestExpandSuffix(t *testing.T) {
	cases := map[string]string{"4M": "4000000", "2K": "2000", "1G": "1000000000", "7": "7", "": ""}
	for in, want := range cases {
		if got := expandSuffix(in); got != want {
			t.Errorf("expandSuffix(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestNumberSuffixInPredicateLiteral(t *testing.T) {
	q, err := Parse("SELECT A.v FROM A, B WHERE A.i = B.i AND A.v < 2K")
	if err != nil {
		t.Fatal(err)
	}
	if q.Filters[0].Val.AsInt() != 2000 {
		t.Errorf("suffix literal = %v", q.Filters[0].Val)
	}
}
