package aql

import (
	"fmt"
	"strconv"
	"strings"

	"shufflejoin/internal/array"
	"shufflejoin/internal/join"
)

// Expr is a projection expression node.
type Expr interface {
	String() string
	// columns appends every column reference in the expression.
	columns(dst []ColRef) []ColRef
}

// ColRef names a source column (dimension or attribute), optionally
// qualified with its array name.
type ColRef struct {
	Array string
	Name  string
}

// String implements Expr.
func (c ColRef) String() string {
	if c.Array == "" {
		return c.Name
	}
	return c.Array + "." + c.Name
}

func (c ColRef) columns(dst []ColRef) []ColRef { return append(dst, c) }

// NumLit is a numeric literal.
type NumLit struct {
	Val   float64
	IsInt bool
}

// String implements Expr.
func (n NumLit) String() string {
	if n.IsInt {
		return strconv.FormatInt(int64(n.Val), 10)
	}
	return strconv.FormatFloat(n.Val, 'g', -1, 64)
}

func (n NumLit) columns(dst []ColRef) []ColRef { return dst }

// BinExpr is a binary arithmetic expression.
type BinExpr struct {
	Op   byte // + - * /
	L, R Expr
}

// String implements Expr.
func (b BinExpr) String() string {
	return fmt.Sprintf("(%s %c %s)", b.L, b.Op, b.R)
}

func (b BinExpr) columns(dst []ColRef) []ColRef { return b.R.columns(b.L.columns(dst)) }

// NegExpr is unary minus.
type NegExpr struct{ E Expr }

// String implements Expr.
func (n NegExpr) String() string { return "-" + n.E.String() }

func (n NegExpr) columns(dst []ColRef) []ColRef { return n.E.columns(dst) }

// SelectItem is one projection: an expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// Name returns the output attribute name of the item: the alias, the bare
// column name, or a positional fallback.
func (s SelectItem) Name(pos int) string {
	if s.Alias != "" {
		return s.Alias
	}
	if c, ok := s.Expr.(ColRef); ok {
		return c.Name
	}
	return fmt.Sprintf("expr_%d", pos)
}

// Filter is a non-join WHERE conjunct: column OP literal, applied to its
// source array before the join (selection pushdown).
type Filter struct {
	Col ColRef
	Op  string // = != < <= > >=
	Val array.Value
}

func (f Filter) String() string {
	return fmt.Sprintf("%s %s %s", f.Col, f.Op, f.Val)
}

// Query is a parsed AQL join query. From lists the source arrays; Left
// and Right alias its first two entries for the common two-way case, and
// queries over three or more arrays are executed by the multi-join
// optimizer (see RunMulti).
type Query struct {
	Star    bool
	Select  []SelectItem
	Into    *array.Schema // nil when no INTO clause
	From    []string
	Left    string // From[0]
	Right   string // From[1]
	Pred    join.Predicate
	Filters []Filter
	Raw     string
}

// String reassembles a canonical form of the query.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Star {
		b.WriteString("*")
	} else {
		for i, s := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.Expr.String())
			if s.Alias != "" {
				b.WriteString(" AS " + s.Alias)
			}
		}
	}
	if q.Into != nil {
		b.WriteString(" INTO " + q.Into.String())
	}
	fmt.Fprintf(&b, " FROM %s JOIN %s ON %s", q.Left, q.Right, q.Pred)
	return b.String()
}
