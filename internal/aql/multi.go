package aql

import (
	"fmt"
	"strings"

	"shufflejoin/internal/afl"
	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/pipeline"
)

// MultiResult is the outcome of a multi-way join: the per-step shuffle
// join reports in execution order and the final output array.
type MultiResult struct {
	Steps  []*pipeline.Report
	Order  []string // human-readable join order, e.g. "B ⋈ C", "(B ⋈ C) ⋈ A"
	Output *array.Array
	// Aggregate phase durations across steps (steps run one after
	// another, as a query pipeline would).
	PlanSeconds, AlignSeconds, CompareSeconds, TotalSeconds float64
	Matches                                                 int64
}

// MultiPlan describes the greedy optimizer's chosen join order without
// executing: each step names the pair joined and its estimated cost
// (inputs plus estimated output cells).
type MultiPlan struct {
	Steps []MultiPlanStep
}

// MultiPlanStep is one planned pairwise join.
type MultiPlanStep struct {
	Left, Right   string
	EstimatedCost float64
}

// ExplainMulti previews the greedy join order for a multi-way query. It
// simulates the ordering loop using cardinality estimates only; no join
// executes and no intermediate materializes (intermediate statistics are
// approximated by the estimated output size on the union schema).
func ExplainMulti(c *cluster.Cluster, query string, opt pipeline.Options) (*MultiPlan, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	if len(q.From) < 3 {
		return nil, fmt.Errorf("aql: ExplainMulti needs three or more arrays")
	}
	// Reuse the executor loop but stop after recording the order: run the
	// real loop on clones so planning-by-doing stays exact, then report.
	cc := cluster.MustNew(c.K)
	for _, name := range q.From {
		d, err := c.Catalog.Lookup(name)
		if err != nil {
			return nil, err
		}
		dd := cluster.DistributeExplicit(d.Array, d.Placement)
		cc.Catalog.Register(dd)
	}
	res, err := runMultiParsed(cc, q, opt)
	if err != nil {
		return nil, err
	}
	plan := &MultiPlan{}
	for i, step := range res.Steps {
		parts := strings.SplitN(res.Order[i], " ⋈ ", 2)
		plan.Steps = append(plan.Steps, MultiPlanStep{
			Left:          parts[0],
			Right:         parts[1],
			EstimatedCost: float64(step.Matches),
		})
	}
	return plan, nil
}

// RunMulti executes a join over three or more arrays, choosing the join
// order greedily by estimated intermediate size — the multi-join ordering
// the paper lists as future work (Section 8). At each step the pair of
// remaining relations connected by a predicate with the smallest estimated
// output (plus input sizes) is joined with the two-phase shuffle join; the
// intermediate is registered and the process repeats.
//
// The SELECT list must be * or bare column names (projection applies to
// the final intermediate); INTO is not supported for multi-way queries.
func RunMulti(c *cluster.Cluster, query string, opt pipeline.Options) (*MultiResult, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return runMultiParsed(c, q, opt)
}

func runMultiParsed(c *cluster.Cluster, q *Query, opt pipeline.Options) (*MultiResult, error) {
	if len(q.From) < 3 {
		return nil, fmt.Errorf("aql: RunMulti needs three or more arrays; use Run for two-way joins")
	}
	if q.Into != nil {
		return nil, fmt.Errorf("aql: INTO is not supported for multi-way joins")
	}
	for _, item := range q.Select {
		if _, ok := item.Expr.(ColRef); !ok {
			return nil, fmt.Errorf("aql: multi-way SELECT supports * or bare columns, not %s", item.Expr)
		}
	}

	// live maps a display name to its distributed array.
	live := make(map[string]*cluster.Distributed, len(q.From))
	for _, name := range q.From {
		d, err := c.Catalog.Lookup(name)
		if err != nil {
			return nil, err
		}
		if _, dup := live[name]; dup {
			return nil, fmt.Errorf("aql: array %s appears twice in FROM (self joins need aliases, which are unsupported)", name)
		}
		live[name] = d
	}
	// Selection pushdown: literal filters apply before any join.
	for _, f := range q.Filters {
		owner, err := ownerOf(live, join.Term{Array: f.Col.Array, Name: f.Col.Name})
		if err != nil {
			return nil, err
		}
		filtered, err := applyFilter(live[owner], f)
		if err != nil {
			return nil, err
		}
		live[owner] = filtered
	}

	// Pending equalities, each tracked with its current owning arrays.
	var pending []multiEq
	for _, pair := range q.Pred {
		l, r := pair.Left, pair.Right
		var err error
		if l.Array, err = ownerOf(live, l); err != nil {
			return nil, err
		}
		if r.Array, err = ownerOf(live, r); err != nil {
			return nil, err
		}
		if l.Array == r.Array {
			return nil, fmt.Errorf("aql: predicate %s = %s references a single array", l, r)
		}
		pending = append(pending, multiEq{l, r})
	}

	res := &MultiResult{}
	tmpID := 0
	for len(live) > 1 {
		// Candidate pairs: arrays connected by at least one pending
		// equality.
		type cand struct {
			a, b string
			cost float64
		}
		best := cand{cost: -1}
		for _, e := range pending {
			a, b := e.l.Array, e.r.Array
			da, db := live[a], live[b]
			if da == nil || db == nil {
				continue
			}
			cost, err := pairCost(c, da, db, predsBetween(pending, a, b))
			if err != nil {
				return nil, err
			}
			if best.cost < 0 || cost < best.cost {
				best = cand{a: a, b: b, cost: cost}
			}
		}
		if best.cost < 0 {
			return nil, fmt.Errorf("aql: remaining arrays %v are not connected by any predicate (cross products unsupported)", keysOf(live))
		}

		da, db := live[best.a], live[best.b]
		pred := predsBetween(pending, best.a, best.b)
		stepOpt := opt
		stepOpt.ProjectFactory = nil // intermediates keep natural schemas
		rep, err := pipeline.RunDistributed(c, da, db, pred, nil, stepOpt)
		if err != nil {
			return nil, fmt.Errorf("aql: joining %s with %s: %w", best.a, best.b, err)
		}
		res.Steps = append(res.Steps, rep)
		res.Order = append(res.Order, fmt.Sprintf("%s ⋈ %s", best.a, best.b))
		res.PlanSeconds += rep.PlanTime
		res.AlignSeconds += rep.AlignTime
		res.CompareSeconds += rep.CompareTime

		// Register the intermediate and rewrite bookkeeping.
		tmpID++
		tmpName := fmt.Sprintf("_join%d", tmpID)
		rep.Output.Schema.Name = tmpName
		dt := c.Load(rep.Output, cluster.RoundRobin)
		delete(live, best.a)
		delete(live, best.b)
		live[tmpName] = dt

		var rest []multiEq
		for _, e := range pending {
			if (e.l.Array == best.a || e.l.Array == best.b) && (e.r.Array == best.a || e.r.Array == best.b) {
				continue // consumed by this step
			}
			if e.l.Array == best.a || e.l.Array == best.b {
				if err := retarget(&e.l, dt, tmpName); err != nil {
					return nil, err
				}
			}
			if e.r.Array == best.a || e.r.Array == best.b {
				if err := retarget(&e.r, dt, tmpName); err != nil {
					return nil, err
				}
			}
			rest = append(rest, e)
		}
		pending = rest
	}

	for _, d := range live {
		res.Output = d.Array
	}
	if res.Output == nil {
		return nil, fmt.Errorf("aql: multi-join produced no output")
	}
	if !q.Star {
		fields := make([]string, len(q.Select))
		for i, item := range q.Select {
			fields[i] = item.Expr.(ColRef).Name
		}
		projected, err := afl.Project(res.Output, fields)
		if err != nil {
			return nil, err
		}
		res.Output = projected
	}
	res.Matches = res.Output.CellCount()
	res.TotalSeconds = res.PlanSeconds + res.AlignSeconds + res.CompareSeconds
	return res, nil
}

// keysOf lists a live-map's names for error messages.
func keysOf(m map[string]*cluster.Distributed) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// ownerOf resolves a term's owning array by qualifier or field membership.
func ownerOf(live map[string]*cluster.Distributed, t join.Term) (string, error) {
	if t.Array != "" {
		if _, ok := live[t.Array]; !ok {
			return "", fmt.Errorf("aql: predicate references %s, not in FROM", t.Array)
		}
		return t.Array, nil
	}
	owner := ""
	for name, d := range live {
		s := d.Array.Schema
		if s.HasDim(t.Name) || s.HasAttr(t.Name) {
			if owner != "" {
				return "", fmt.Errorf("aql: unqualified column %s is ambiguous across %s and %s", t.Name, owner, name)
			}
			owner = name
		}
	}
	if owner == "" {
		return "", fmt.Errorf("aql: column %s not found in any FROM array", t.Name)
	}
	return owner, nil
}

// multiEq is one pending equality of a multi-way join, tracked with the
// arrays (or intermediates) currently owning each side.
type multiEq struct {
	l, r join.Term
}

// predsBetween collects the pending equalities joining arrays a and b,
// oriented so left terms reference a.
func predsBetween(pending []multiEq, a, b string) join.Predicate {
	var pred join.Predicate
	for _, e := range pending {
		switch {
		case e.l.Array == a && e.r.Array == b:
			pred = append(pred, join.PredPair{Left: e.l, Right: e.r})
		case e.l.Array == b && e.r.Array == a:
			pred = append(pred, join.PredPair{Left: e.r, Right: e.l})
		}
	}
	return pred
}

// pairCost estimates the cost of joining a candidate pair next: inputs
// plus the estimated output cardinality (the greedy minimum-intermediate
// heuristic).
func pairCost(c *cluster.Cluster, da, db *cluster.Distributed, pred join.Predicate) (float64, error) {
	src, err := logical.ResolveSources(da.Array.Schema, db.Array.Schema, nil, pred)
	if err != nil {
		return 0, err
	}
	nA, nB := da.Array.CellCount(), db.Array.CellCount()
	sel := pipeline.EstimateSelectivity(c, src, nA, nB)
	return float64(nA) + float64(nB) + sel*float64(nA+nB), nil
}

// retarget points a term at the intermediate that now owns its field.
func retarget(t *join.Term, dt *cluster.Distributed, tmpName string) error {
	s := dt.Array.Schema
	if !s.HasDim(t.Name) && !s.HasAttr(t.Name) {
		return fmt.Errorf("aql: column %s was projected away by an earlier join step (name collision in intermediate schema)", t.Name)
	}
	t.Array = tmpName
	return nil
}
