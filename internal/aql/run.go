package aql

import (
	"fmt"

	"shufflejoin/internal/afl"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/pipeline"
)

// Run parses, compiles, and executes an AQL join query against the
// cluster's catalog. Literal WHERE conjuncts (column OP literal) push down
// as selections on their source arrays before the join.
func Run(c *cluster.Cluster, query string, opt pipeline.Options) (*pipeline.Report, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	if len(q.From) > 2 {
		return nil, fmt.Errorf("aql: query joins %d arrays; use RunMulti", len(q.From))
	}
	dl, err := c.Catalog.Lookup(q.Left)
	if err != nil {
		return nil, err
	}
	dr, err := c.Catalog.Lookup(q.Right)
	if err != nil {
		return nil, err
	}
	dl, dr, err = pushdownFilters(q, dl, dr)
	if err != nil {
		return nil, err
	}
	comp, err := Compile(q, dl.Array.Schema, dr.Array.Schema)
	if err != nil {
		return nil, err
	}
	return pipeline.RunDistributed(c, dl, dr, comp.Pred, comp.Out, comp.ExecOptions(opt))
}

// pushdownFilters applies each literal filter to its source array,
// preserving the surviving chunks' original placement (selection does not
// move data between nodes).
func pushdownFilters(q *Query, dl, dr *cluster.Distributed) (*cluster.Distributed, *cluster.Distributed, error) {
	for _, f := range q.Filters {
		var target **cluster.Distributed
		switch {
		case f.Col.Array == dl.Array.Schema.Name:
			target = &dl
		case f.Col.Array == dr.Array.Schema.Name:
			target = &dr
		case f.Col.Array == "":
			ls, rs := dl.Array.Schema, dr.Array.Schema
			inL := ls.HasDim(f.Col.Name) || ls.HasAttr(f.Col.Name)
			inR := rs.HasDim(f.Col.Name) || rs.HasAttr(f.Col.Name)
			switch {
			case inL && inR:
				return nil, nil, fmt.Errorf("aql: filter column %s is ambiguous", f.Col)
			case inL:
				target = &dl
			case inR:
				target = &dr
			default:
				return nil, nil, fmt.Errorf("aql: filter column %s not found", f.Col)
			}
		default:
			return nil, nil, fmt.Errorf("aql: filter references unknown array %s", f.Col.Array)
		}
		filtered, err := applyFilter(*target, f)
		if err != nil {
			return nil, nil, err
		}
		*target = filtered
	}
	return dl, dr, nil
}

func applyFilter(d *cluster.Distributed, f Filter) (*cluster.Distributed, error) {
	out, err := afl.Filter(d.Array, &afl.Condition{Attr: f.Col.Name, Op: f.Op, Val: f.Val})
	if err != nil {
		return nil, err
	}
	// Selection keeps cells where they were: reuse the placement of every
	// surviving chunk.
	p := make(cluster.Placement, len(out.Chunks))
	for key := range out.Chunks {
		p[key] = d.Placement[key]
	}
	return cluster.DistributeExplicit(out, p), nil
}

// Explain parses and compiles a two-way query, then returns the
// optimizer's plan enumeration without executing.
func Explain(c *cluster.Cluster, query string, opt pipeline.Options) (*pipeline.Explanation, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	if len(q.From) > 2 {
		return nil, fmt.Errorf("aql: EXPLAIN supports two-way joins")
	}
	dl, err := c.Catalog.Lookup(q.Left)
	if err != nil {
		return nil, err
	}
	dr, err := c.Catalog.Lookup(q.Right)
	if err != nil {
		return nil, err
	}
	dl, dr, err = pushdownFilters(q, dl, dr)
	if err != nil {
		return nil, err
	}
	comp, err := Compile(q, dl.Array.Schema, dr.Array.Schema)
	if err != nil {
		return nil, err
	}
	return pipeline.Explain(c, dl, dr, comp.Pred, comp.Out, comp.ExecOptions(opt))
}
