package aql

import (
	"fmt"
	"strconv"
	"strings"

	"shufflejoin/internal/array"
	"shufflejoin/internal/join"
)

// Parse parses an AQL join query of the supported subset:
//
//	SELECT <* | expr [AS name], ...>
//	[INTO <schema literal>]
//	FROM <array> , <array> | FROM <array> JOIN <array> [ON <equalities>]
//	[WHERE <equalities>] [;]
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("aql: %w", err)
	}
	q.Raw = src
	return q, nil
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expectKeyword(kw string) error {
	if !keywordIs(p.cur(), kw) {
		return fmt.Errorf("expected %s at offset %d, found %q", kw, p.cur().pos, p.cur().text)
	}
	p.pos++
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.cur()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("expected %q at offset %d, found %q", sym, t.pos, t.text)
	}
	p.pos++
	return nil
}

func (p *parser) symbolIs(sym string) bool {
	t := p.cur()
	return t.kind == tokSymbol && t.text == sym
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if p.symbolIs("*") {
		p.pos++
		q.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, item)
			if !p.symbolIs(",") {
				break
			}
			p.pos++
		}
	}

	if keywordIs(p.cur(), "INTO") {
		p.pos++
		schema, err := p.parseSchemaLiteral()
		if err != nil {
			return nil, err
		}
		q.Into = schema
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, name)
		if p.symbolIs(",") || keywordIs(p.cur(), "JOIN") {
			p.pos++
			continue
		}
		break
	}
	if len(q.From) < 2 {
		return nil, fmt.Errorf("join query needs at least two arrays in FROM")
	}
	q.Left, q.Right = q.From[0], q.From[1]

	if keywordIs(p.cur(), "ON") || keywordIs(p.cur(), "WHERE") {
		p.pos++
		pred, filters, err := p.parsePredicate(q)
		if err != nil {
			return nil, err
		}
		q.Pred = pred
		q.Filters = filters
	}
	if p.symbolIs(";") {
		p.pos++
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("trailing input at offset %d: %q", p.cur().pos, p.cur().text)
	}
	if len(q.Pred) == 0 {
		return nil, fmt.Errorf("join query needs an equi-join predicate (ON or WHERE clause)")
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if keywordIs(p.cur(), "AS") {
		p.pos++
		alias, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	}
	return item, nil
}

// parseSchemaLiteral consumes a schema literal (NAME<attrs>[dims]) by
// locating its raw extent in the source and delegating to array.ParseSchema.
func (p *parser) parseSchemaLiteral() (*array.Schema, error) {
	start := p.cur().pos
	// The literal ends at the top-level FROM keyword.
	depth := 0
	i := p.pos
	for ; p.toks[i].kind != tokEOF; i++ {
		t := p.toks[i]
		if t.kind == tokSymbol && (t.text == "<" || t.text == "[") {
			depth++
		}
		if t.kind == tokSymbol && (t.text == ">" || t.text == "]") {
			depth--
		}
		if depth == 0 && keywordIs(t, "FROM") {
			break
		}
	}
	if p.toks[i].kind == tokEOF {
		return nil, fmt.Errorf("INTO schema literal not followed by FROM")
	}
	raw := strings.TrimSpace(p.src[start:p.toks[i].pos])
	schema, err := array.ParseSchema(raw)
	if err != nil {
		return nil, err
	}
	p.pos = i
	return schema, nil
}

func (p *parser) parseIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent || isKeyword(t) {
		return "", fmt.Errorf("expected identifier at offset %d, found %q", t.pos, t.text)
	}
	p.pos++
	return t.text, nil
}

// parsePredicate parses the WHERE/ON conjunction. Each conjunct is either
// an equi-join pair (column = column, oriented so the left term references
// q.Left in two-way queries) or a literal filter (column OP literal),
// which pushes down as a selection on its source array.
func (p *parser) parsePredicate(q *Query) (join.Predicate, []Filter, error) {
	var pred join.Predicate
	var filters []Filter
	for {
		if err := p.parseConjunct(q, &pred, &filters); err != nil {
			return nil, nil, err
		}
		if !keywordIs(p.cur(), "AND") {
			break
		}
		p.pos++
	}
	return pred, filters, nil
}

func (p *parser) parseConjunct(q *Query, pred *join.Predicate, filters *[]Filter) error {
	lCol, lLit, err := p.parseOperand()
	if err != nil {
		return err
	}
	op, err := p.parseComparison()
	if err != nil {
		return err
	}
	rCol, rLit, err := p.parseOperand()
	if err != nil {
		return err
	}
	switch {
	case lCol != nil && rCol != nil:
		if op != "=" {
			return fmt.Errorf("join predicates must be equalities, got %s %s %s", lCol, op, rCol)
		}
		lt := join.Term{Array: lCol.Array, Name: lCol.Name}
		rt := join.Term{Array: rCol.Array, Name: rCol.Name}
		// Orient: the pair's left term must belong to the left array.
		if lt.Array == q.Right || rt.Array == q.Left {
			lt, rt = rt, lt
		}
		*pred = append(*pred, join.PredPair{Left: lt, Right: rt})
	case lCol != nil:
		*filters = append(*filters, Filter{Col: *lCol, Op: op, Val: *rLit})
	case rCol != nil:
		*filters = append(*filters, Filter{Col: *rCol, Op: flipComparison(op), Val: *lLit})
	default:
		return fmt.Errorf("conjunct compares two literals")
	}
	return nil
}

// parseOperand reads a column reference or a literal.
func (p *parser) parseOperand() (*ColRef, *array.Value, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad number %q at offset %d", t.text, t.pos)
			}
			v := array.FloatValue(f)
			return nil, &v, nil
		}
		n, err := strconv.ParseInt(expandSuffix(t.text), 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad number %q at offset %d", t.text, t.pos)
		}
		v := array.IntValue(n)
		return nil, &v, nil
	case t.kind == tokString:
		p.pos++
		v := array.StringValue(t.text)
		return nil, &v, nil
	case t.kind == tokIdent && !isKeyword(t):
		c, err := p.parseColRef()
		if err != nil {
			return nil, nil, err
		}
		return &c, nil, nil
	}
	return nil, nil, fmt.Errorf("expected column or literal at offset %d, found %q", t.pos, t.text)
}

// parseComparison assembles a comparison operator from symbol tokens.
func (p *parser) parseComparison() (string, error) {
	op := ""
	for p.cur().kind == tokSymbol && strings.ContainsAny(p.cur().text, "<>=!") && len(op) < 2 {
		op += p.next().text
	}
	switch op {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		if op == "<>" {
			op = "!="
		}
		return op, nil
	}
	return "", fmt.Errorf("expected comparison operator at offset %d, found %q", p.cur().pos, op)
}

// flipComparison mirrors an operator when operands swap sides.
func flipComparison(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and != are symmetric
}

func (p *parser) parseColRef() (ColRef, error) {
	name, err := p.parseIdent()
	if err != nil {
		return ColRef{}, err
	}
	if p.symbolIs(".") {
		p.pos++
		field, err := p.parseIdent()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Array: name, Name: field}, nil
	}
	return ColRef{Name: name}, nil
}

// Expression grammar: expr := term {(+|-) term}; term := factor {(*|/)
// factor}; factor := number | colref | (expr) | -factor.
func (p *parser) parseExpr() (Expr, error) {
	e, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.symbolIs("+") || p.symbolIs("-") {
		op := p.next().text[0]
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		e = BinExpr{Op: op, L: e, R: r}
	}
	return e, nil
}

func (p *parser) parseTerm() (Expr, error) {
	e, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.symbolIs("*") || p.symbolIs("/") {
		op := p.next().text[0]
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		e = BinExpr{Op: op, L: e, R: r}
	}
	return e, nil
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		isInt := !strings.Contains(t.text, ".")
		v, err := strconv.ParseFloat(expandSuffix(t.text), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q at offset %d", t.text, t.pos)
		}
		return NumLit{Val: v, IsInt: isInt}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokSymbol && t.text == "-":
		p.pos++
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return NegExpr{E: e}, nil
	case t.kind == tokIdent && !isKeyword(t):
		return p.parseColRef()
	}
	return nil, fmt.Errorf("unexpected token %q at offset %d", t.text, t.pos)
}

func expandSuffix(s string) string {
	if s == "" {
		return s
	}
	switch s[len(s)-1] {
	case 'K', 'k':
		return s[:len(s)-1] + "000"
	case 'M', 'm':
		return s[:len(s)-1] + "000000"
	case 'G', 'g':
		return s[:len(s)-1] + "000000000"
	}
	return s
}
