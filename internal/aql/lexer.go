// Package aql implements a parser and compiler for the Array Query
// Language subset the paper's evaluation uses: two-way equi-join SELECT
// queries with optional INTO destination schemas and arithmetic projection
// expressions, e.g.
//
//	SELECT (Band2.reflectance - Band1.reflectance) /
//	       (Band2.reflectance + Band1.reflectance)
//	FROM Band1, Band2
//	WHERE Band1.time = Band2.time
//	  AND Band1.longitude = Band2.longitude
//	  AND Band1.latitude = Band2.latitude;
//
// Parsed queries compile against a cluster catalog into the predicate,
// destination schema, carry lists, and projection function the shuffle join
// executor consumes.
package aql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , . ; = * + - / < >
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// keywords of the AQL subset, matched case-insensitively.
var keywords = map[string]bool{
	"SELECT": true, "INTO": true, "FROM": true, "JOIN": true,
	"ON": true, "WHERE": true, "AND": true, "AS": true,
}

// isKeyword reports whether an identifier token is a reserved word.
func isKeyword(t token) bool {
	return t.kind == tokIdent && keywords[strings.ToUpper(t.text)]
}

// keywordIs reports whether t is the given keyword.
func keywordIs(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// lex tokenizes an AQL query.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			toks = append(toks, token{tokIdent, src[start:i], start})
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				i++
			}
			// Magnitude suffixes as in schema literals: 4M, 2K, 1G.
			if i < len(src) && strings.ContainsRune("KkMmGg", rune(src[i])) {
				i++
			}
			toks = append(toks, token{tokNumber, src[start:i], start})
		case c == '\'':
			start := i
			i++
			for i < len(src) && src[i] != '\'' {
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("aql: unterminated string at offset %d", start)
			}
			toks = append(toks, token{tokString, src[start+1 : i], start})
			i++
		case strings.ContainsRune("(),.;=*+-/<>[]:!", rune(c)):
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("aql: unexpected character %q at offset %d", string(c), i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}
