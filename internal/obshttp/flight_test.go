package obshttp_test

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"shufflejoin/internal/cluster"
	"shufflejoin/internal/flight"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/obshttp"
	"shufflejoin/internal/pipeline"
)

func TestStatusEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	hub := obshttp.NewHub(obshttp.Config{
		Registry: reg,
		Status: obshttp.StatusInfo{
			Component: "test-harness",
			Details:   map[string]string{"nodes": "4"},
		},
	})
	runQuery(t, hub, reg, "status-q")
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	code, body, ct := get(t, srv, "/debug/status")
	if code != 200 || !strings.Contains(ct, "application/json") {
		t.Fatalf("status = %d, content-type = %q", code, ct)
	}
	var p struct {
		Component     string            `json:"component"`
		Details       map[string]string `json:"details"`
		GoVersion     string            `json:"go_version"`
		GOMAXPROCS    int               `json:"gomaxprocs"`
		UptimeSeconds float64           `json:"uptime_seconds"`
		QueriesTotal  uint64            `json:"queries_total"`
		Flight        flight.Stats      `json:"flight"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("status payload: %v", err)
	}
	if p.Component != "test-harness" || p.Details["nodes"] != "4" {
		t.Errorf("status info = %+v", p)
	}
	if p.GoVersion == "" || p.GOMAXPROCS < 1 || p.UptimeSeconds < 0 {
		t.Errorf("runtime fields = %+v", p)
	}
	if p.QueriesTotal != 1 {
		t.Errorf("queries_total = %d, want 1", p.QueriesTotal)
	}
	if p.Flight.Capacity == 0 || p.Flight.Recorded == 0 {
		t.Errorf("flight stats = %+v (default recorder should have recorded the query)", p.Flight)
	}
}

func TestFlightEndpoint(t *testing.T) {
	fr := flight.New(256)
	reg := obs.NewRegistry()
	hub := obshttp.NewHub(obshttp.Config{Registry: reg, Flight: fr})

	// Record through the pipeline into the hub's recorder.
	runQueryFlight(t, hub, fr, "flight-q")

	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	code, body, ct := get(t, srv, "/debug/flight")
	if code != 200 || !strings.Contains(ct, "application/json") {
		t.Fatalf("status = %d, content-type = %q", code, ct)
	}
	var p struct {
		Capacity int `json:"capacity"`
		Events   []struct {
			Type string         `json:"type"`
			Args map[string]any `json:"args"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("flight payload: %v", err)
	}
	if p.Capacity != 256 || len(p.Events) == 0 {
		t.Fatalf("payload = capacity %d, %d events", p.Capacity, len(p.Events))
	}
	types := map[string]bool{}
	for _, e := range p.Events {
		types[e.Type] = true
	}
	for _, want := range []string{"query-start", "stage-start", "align-done", "compare-done", "query-finish"} {
		if !types[want] {
			t.Errorf("no %s event in /debug/flight dump (have %v)", want, types)
		}
	}

	// ?limit bounds the dump; malformed limits are a 400.
	code, body, _ = get(t, srv, "/debug/flight?limit=2")
	if code != 200 {
		t.Fatalf("limited dump status = %d", code)
	}
	var limited struct {
		Events []json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &limited); err != nil || len(limited.Events) != 2 {
		t.Errorf("limit=2 returned %d events (%v)", len(limited.Events), err)
	}
	if code, _, _ := get(t, srv, "/debug/flight?limit=banana"); code != 400 {
		t.Errorf("malformed limit status = %d, want 400", code)
	}
	if code, _, _ := get(t, srv, "/debug/flight?limit=-3"); code != 400 {
		t.Errorf("negative limit status = %d, want 400", code)
	}
}

// runQueryFlight is runQuery with the query's flight recorder pinned to
// the hub's ring.
func runQueryFlight(t *testing.T, hub *obshttp.Hub, fr *flight.Recorder, label string) {
	t.Helper()
	a := buildArray("A<v:int>[i=1,100,20]", 71, 40, 15)
	b := buildArray("B<w:int>[j=1,100,20]", 72, 40, 15)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := cluster.MustNew(2)
	c.Load(a, cluster.RoundRobin)
	c.Load(b, cluster.RoundRobin)
	if _, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{
		Logical:    logical.PlanOptions{Selectivity: 0.5},
		Hooks:      hub,
		QueryLabel: label,
		Flight:     fr,
	}); err != nil {
		t.Fatal(err)
	}
}

// syntheticFinish pushes one synthetic finished query through the hub's
// QueryFinished hook — the planted-skew harness for the anomaly tests.
func syntheticFinish(hub *obshttp.Hub, label string, compare []float64, recv []int64, unitCells []int64) {
	p := pipeline.NewProgress(label)
	hub.QueryStarted(p)
	rep := &pipeline.Report{
		NodeCompareTime: compare,
		UnitCells:       unitCells,
		StragglerNode:   -1,
	}
	rep.Align.CellsRecv = recv
	hub.QueryFinished(p, rep, nil)
}

// TestAnomalyDetectionPlantedStraggler plants a persistent straggler in
// synthetic query reports and watches the hub surface it everywhere it
// promises: /debug/anomalies, the query-log entry annotations, and the
// engine gauges on /metrics.
func TestAnomalyDetectionPlantedStraggler(t *testing.T) {
	reg := obs.NewRegistry()
	hub := obshttp.NewHub(obshttp.Config{Registry: reg, Flight: flight.New(128)})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	// Before warmup the gauge reads -1 (no straggler).
	_, body, _ := get(t, srv, "/metrics")
	if !strings.Contains(body, "engine_anomaly_straggler_node -1") {
		t.Errorf("initial straggler gauge missing:\n%s", body)
	}

	// Node 2 is 10x slower than its peers, every query.
	for i := 0; i < 4; i++ {
		syntheticFinish(hub, fmt.Sprintf("planted-%d", i), []float64{1, 1, 10, 1}, nil, nil)
	}

	code, body, ct := get(t, srv, "/debug/anomalies")
	if code != 200 || !strings.Contains(ct, "application/json") {
		t.Fatalf("status = %d, content-type = %q", code, ct)
	}
	var snap flight.DetectorSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("anomalies payload: %v", err)
	}
	if snap.Flagged != 1 || snap.Total == 0 {
		t.Fatalf("snapshot = flagged %d, total %d", snap.Flagged, snap.Total)
	}
	if len(snap.Nodes) < 3 || snap.Nodes[2].StragglerSince == 0 {
		t.Errorf("node 2 not flagged: %+v", snap.Nodes)
	}
	if len(snap.Recent) == 0 || snap.Recent[0].Kind != "straggler-compare" || snap.Recent[0].Node != 2 {
		t.Errorf("recent anomalies = %+v", snap.Recent)
	}

	// The Prometheus gauge names the straggler.
	_, body, _ = get(t, srv, "/metrics")
	if !strings.Contains(body, "engine_anomaly_straggler_node 2") {
		t.Errorf("straggler gauge not exported:\n%s", body)
	}
	if !strings.Contains(body, "engine_anomaly_flagged_nodes 1") {
		t.Errorf("flagged-nodes gauge not exported:\n%s", body)
	}
	if !strings.Contains(body, "engine_anomaly_total") {
		t.Errorf("anomaly counter not exported:\n%s", body)
	}

	// The query-log entry that crossed the warmup carries the annotation.
	var annotated bool
	for _, e := range hub.Log().Entries() {
		for _, a := range e.Anomalies {
			if strings.Contains(a, "node 2") {
				annotated = true
			}
		}
	}
	if !annotated {
		t.Error("no query-log entry carries the straggler annotation")
	}

	// The flight ring carries the anomaly events too.
	code, body, _ = get(t, srv, "/debug/flight")
	if code != 200 || !strings.Contains(body, `"anomaly"`) {
		t.Errorf("no anomaly events on /debug/flight (status %d)", code)
	}
}

// TestQueryParamHardening: malformed query parameters are a 400, not a
// silent ignore, and every handler declares a Content-Type.
func TestQueryParamHardening(t *testing.T) {
	reg := obs.NewRegistry()
	hub := obshttp.NewHub(obshttp.Config{Registry: reg})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/debug/queries?slow=banana", 400},
		{"/debug/queries?slow=2", 400},
		{"/debug/queries?limit=banana", 400},
		{"/debug/queries?limit=-1", 400},
		{"/debug/queries?slow=1&limit=10", 200},
		{"/debug/queries?slow=0", 200},
		{"/debug/queries", 200},
		{"/debug/flight?limit=banana", 400},
		{"/debug/flight", 200},
		{"/debug/anomalies", 200},
		{"/debug/status", 200},
	} {
		code, _, ct := get(t, srv, tc.path)
		if code != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, code, tc.want)
		}
		if ct == "" {
			t.Errorf("GET %s: no Content-Type header", tc.path)
		}
	}
}

// TestPprofMounted: the standard profiles are reachable through the hub.
func TestPprofMounted(t *testing.T) {
	hub := obshttp.NewHub(obshttp.Config{Registry: obs.NewRegistry()})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	if code, body, _ := get(t, srv, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index status = %d", code)
	}
	if code, _, _ := get(t, srv, "/debug/pprof/goroutine?debug=1"); code != 200 {
		t.Errorf("goroutine profile status = %d", code)
	}
}

// TestQueriesLimitParam: a well-formed limit truncates the newest-first
// log.
func TestQueriesLimitParam(t *testing.T) {
	reg := obs.NewRegistry()
	hub := obshttp.NewHub(obshttp.Config{Registry: reg})
	for i := 0; i < 5; i++ {
		syntheticFinish(hub, fmt.Sprintf("q-%d", i), nil, nil, nil)
	}
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	_, body, _ := get(t, srv, "/debug/queries?limit=2")
	var p struct {
		Total   uint64 `json:"total"`
		Queries []struct {
			Query string `json:"query"`
		} `json:"queries"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatal(err)
	}
	if p.Total != 5 || len(p.Queries) != 2 {
		t.Fatalf("total %d, returned %d, want 5/2", p.Total, len(p.Queries))
	}
	if p.Queries[0].Query != "q-4" || p.Queries[1].Query != "q-3" {
		t.Errorf("limited queries = %+v, want newest first", p.Queries)
	}
}
