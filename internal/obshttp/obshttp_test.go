package obshttp_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/obshttp"
	"shufflejoin/internal/pipeline"
)

func buildArray(schema string, seed int64, n int, domain int64) *array.Array {
	s := array.MustParseSchema(schema)
	a := array.MustNew(s)
	rng := rand.New(rand.NewSource(seed))
	used := make(map[int64]bool)
	for len(used) < n {
		c := rng.Int63n(s.Dims[0].Extent()) + s.Dims[0].Start
		if used[c] {
			continue
		}
		used[c] = true
		a.MustPut([]int64{c}, []array.Value{array.IntValue(rng.Int63n(domain))})
	}
	a.SortAll()
	return a
}

// runQuery executes one join with the hub attached as query hooks,
// recording trace metrics into reg.
func runQuery(t *testing.T, hub *obshttp.Hub, reg *obs.Registry, label string) *pipeline.Report {
	t.Helper()
	a := buildArray("A<v:int>[i=1,300,30]", 31, 160, 30)
	b := buildArray("B<w:int>[j=1,300,30]", 32, 150, 30)
	out := array.MustParseSchema("T<i:int, j:int>[v=0,29,6]")
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := cluster.MustNew(4)
	c.Load(a, cluster.RoundRobin)
	c.Load(b, cluster.RoundRobin)
	opt := pipeline.Options{
		Logical:    logical.PlanOptions{Selectivity: 0.5},
		Hooks:      hub,
		QueryLabel: label,
	}
	if reg != nil {
		tr := obs.New("test")
		opt.Trace = tr
		defer reg.AddFrom(tr.Metrics())
	}
	rep, err := pipeline.Run(c, "A", "B", pred, out, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

// TestHubEndToEnd drives a real query through a hub and checks all three
// endpoints: /metrics serves the registry in Prometheus format,
// /debug/queries carries the profiled entry, and /debug/inflight is
// empty once the query finished.
func TestHubEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	hub := obshttp.NewHub(obshttp.Config{Registry: reg})
	rep := runQuery(t, hub, reg, "A join B on v=w")

	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	code, body, ctype := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	for _, want := range []string{"# TYPE", "_bucket{le=", "pipeline_query_count 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body, ctype = get(t, srv, "/debug/queries")
	if code != http.StatusOK {
		t.Fatalf("/debug/queries status %d", code)
	}
	if ctype != "application/json" {
		t.Errorf("/debug/queries content type %q", ctype)
	}
	var qp struct {
		Total   uint64          `json:"total"`
		Queries []obshttp.Entry `json:"queries"`
	}
	if err := json.Unmarshal([]byte(body), &qp); err != nil {
		t.Fatalf("/debug/queries JSON: %v\n%s", err, body)
	}
	if qp.Total != 1 || len(qp.Queries) != 1 {
		t.Fatalf("query log total=%d len=%d, want 1/1", qp.Total, len(qp.Queries))
	}
	e := qp.Queries[0]
	if e.Query != "A join B on v=w" {
		t.Errorf("logged query label %q", e.Query)
	}
	if e.Matches != rep.Matches {
		t.Errorf("logged matches %d, report %d", e.Matches, rep.Matches)
	}
	if e.Profile == nil {
		t.Error("log entry carries no profile (hooks must imply Profile)")
	} else if len(e.Profile.Stages) != 6 {
		t.Errorf("logged profile has %d stages, want 6", len(e.Profile.Stages))
	}
	if e.PlanSource == "" {
		t.Error("log entry missing plan source")
	}

	code, body, _ = get(t, srv, "/debug/inflight")
	if code != http.StatusOK {
		t.Fatalf("/debug/inflight status %d", code)
	}
	var ip struct {
		Running []json.RawMessage `json:"running"`
	}
	if err := json.Unmarshal([]byte(body), &ip); err != nil {
		t.Fatalf("/debug/inflight JSON: %v\n%s", err, body)
	}
	if len(ip.Running) != 0 {
		t.Errorf("finished query still in flight: %s", body)
	}
}

// TestInflightVisibleMidQuery registers progress via the hook interface
// directly and checks the /debug/inflight snapshot while "running".
func TestInflightVisibleMidQuery(t *testing.T) {
	hub := obshttp.NewHub(obshttp.Config{})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	// Drive the hooks by hand: a query that started but has not finished.
	var hooks pipeline.QueryHooks = hub
	prog := pipeline.NewProgress("slow query")
	hooks.QueryStarted(prog)

	_, body, _ := get(t, srv, "/debug/inflight")
	var ip struct {
		Running []struct {
			ID    uint64 `json:"id"`
			Query string `json:"query"`
			Done  bool   `json:"done"`
		} `json:"running"`
	}
	if err := json.Unmarshal([]byte(body), &ip); err != nil {
		t.Fatalf("/debug/inflight JSON: %v\n%s", err, body)
	}
	if len(ip.Running) != 1 || ip.Running[0].Query != "slow query" || ip.Running[0].Done {
		t.Fatalf("in-flight snapshot wrong: %s", body)
	}

	hooks.QueryFinished(prog, nil, nil)
	_, body, _ = get(t, srv, "/debug/inflight")
	if err := json.Unmarshal([]byte(body), &ip); err != nil {
		t.Fatal(err)
	}
	if len(ip.Running) != 0 {
		t.Fatalf("query not removed from in-flight set: %s", body)
	}
}

// TestQueryLogRingEviction fills the log past capacity and checks that
// the oldest entries are evicted while Total keeps counting.
func TestQueryLogRingEviction(t *testing.T) {
	hub := obshttp.NewHub(obshttp.Config{QueryLogCapacity: 3})
	var hooks pipeline.QueryHooks = hub
	for i := 0; i < 5; i++ {
		p := pipeline.NewProgress(fmt.Sprintf("q%d", i))
		hooks.QueryStarted(p)
		hooks.QueryFinished(p, nil, nil)
	}
	entries := hub.Log().Entries()
	if len(entries) != 3 {
		t.Fatalf("retained %d entries, want 3", len(entries))
	}
	if got := hub.Log().Total(); got != 5 {
		t.Errorf("total %d, want 5", got)
	}
	labels := []string{entries[0].Query, entries[1].Query, entries[2].Query}
	if labels[0] != "q2" || labels[1] != "q3" || labels[2] != "q4" {
		t.Errorf("retained entries %v, want [q2 q3 q4] oldest first", labels)
	}
}

// TestSlowQueryMarking checks the slow threshold: an entry whose wall
// time reaches SlowQuery is flagged, and ?slow=1 filters to it.
func TestSlowQueryMarking(t *testing.T) {
	hub := obshttp.NewHub(obshttp.Config{SlowQuery: time.Nanosecond})
	var hooks pipeline.QueryHooks = hub
	p := pipeline.NewProgress("crawler")
	hooks.QueryStarted(p)
	time.Sleep(time.Millisecond)
	hooks.QueryFinished(p, nil, nil)

	if got := hub.Log().Slow(); got != 1 {
		t.Fatalf("slow count %d, want 1", got)
	}
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()
	_, body, _ := get(t, srv, "/debug/queries?slow=1")
	var qp struct {
		SlowQueries uint64          `json:"slow_queries"`
		Queries     []obshttp.Entry `json:"queries"`
	}
	if err := json.Unmarshal([]byte(body), &qp); err != nil {
		t.Fatal(err)
	}
	if qp.SlowQueries != 1 || len(qp.Queries) != 1 || !qp.Queries[0].Slow {
		t.Fatalf("slow filter wrong: %s", body)
	}
}

// TestServeAndClose binds :0, hits the live listener, and closes.
func TestServeAndClose(t *testing.T) {
	hub := obshttp.NewHub(obshttp.Config{Registry: obs.NewRegistry()})
	addr, err := hub.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := net3(addr); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, err := hub.Serve("127.0.0.1:0"); err == nil {
		t.Error("second Serve on same hub should fail")
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("listener still accepting after Close")
	}
}

// net3 splits host:port, verifying Serve returned a real bound address.
func net3(addr string) (string, string, error) {
	i := strings.LastIndex(addr, ":")
	if i < 0 || addr[i+1:] == "" || addr[i+1:] == "0" {
		return "", "", fmt.Errorf("bad bound addr %q", addr)
	}
	return addr[:i], addr[i+1:], nil
}
