// Package obshttp is the engine's live telemetry endpoint: an HTTP
// surface over the observability layer that serves
//
//	/metrics          — the metrics registry in Prometheus text format,
//	                    followed by the hub's own engine metrics
//	                    (anomaly gauges, uptime)
//	/debug/queries    — a ring-buffer query log with EXPLAIN ANALYZE
//	                    profiles and a configurable slow-query threshold
//	/debug/inflight   — per-stage progress of currently running queries
//	/debug/flight     — recent flight-recorder events, decoded to JSON
//	/debug/anomalies  — the online skew-anomaly detector's state
//	/debug/status     — build/runtime identification and engine config
//	/debug/pprof/...  — the standard net/http/pprof profiles
//
// The Hub at the center implements pipeline.QueryHooks: attach it to a
// query's Options.Hooks (the facade's WithQueryLog does this) and every
// execution registers its live Progress tracker on start and folds its
// profiled Report into the query log on finish — where the anomaly
// detector also observes it, annotating the entry (and its profile)
// with any straggler, hot-receiver, or hot-unit conditions it raises.
// The Hub is safe for concurrent queries and concurrent HTTP reads; it
// never blocks the orchestration goroutine beyond a mutex-guarded ring
// append and the detector's EWMA fold.
package obshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	rtdebug "runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"shufflejoin/internal/flight"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/pipeline"
	"shufflejoin/internal/sched"
)

// StatusInfo identifies the process on /debug/status.
type StatusInfo struct {
	// Component names the serving binary ("shufflejoin", "expdriver", a
	// test harness...).
	Component string `json:"component,omitempty"`
	// Details carries free-form engine configuration (node count,
	// planner, scheduling mode...) for the status page.
	Details map[string]string `json:"details,omitempty"`
}

// Config parameterizes a Hub.
type Config struct {
	// Registry backs /metrics. Typically the DB's cumulative registry or
	// an experiment driver's shared trace registry. A nil registry serves
	// an empty exposition.
	Registry *obs.Registry
	// QueryLogCapacity bounds the /debug/queries ring buffer; once full,
	// the oldest entry is evicted. Defaults to 128.
	QueryLogCapacity int
	// SlowQuery marks query-log entries whose wall time reaches the
	// threshold as slow (Entry.Slow, and the slow_queries counter in the
	// /debug/queries header). Zero disables slow marking.
	SlowQuery time.Duration
	// Flight is the recorder served on /debug/flight; nil uses the
	// process-wide flight.Default ring.
	Flight *flight.Recorder
	// Detector overrides the anomaly detector's tuning; the zero value
	// selects the flight package defaults.
	Detector flight.DetectorConfig
	// Status identifies the process on /debug/status.
	Status StatusInfo
	// Sched, when non-nil, annotates /debug/inflight and /debug/status
	// with the query scheduler's admission state (queue depths per class,
	// memory-pool usage, free stage slots).
	Sched *sched.Scheduler
}

// Hub collects live telemetry and serves it over HTTP. Create with
// NewHub, attach to queries via pipeline Options.Hooks, and expose with
// Serve (or mount Handler on an existing mux).
type Hub struct {
	cfg   Config
	log   *QueryLog
	rec   *flight.Recorder
	det   *flight.Detector
	start time.Time
	// engine holds the hub's own operational metrics (anomaly gauges,
	// uptime). It is deliberately separate from cfg.Registry: per-query
	// trace registries are fingerprinted bit-for-bit across Parallelism
	// settings, and anomaly state is history-dependent, so it must never
	// leak into them. /metrics serves both.
	engine *obs.Registry

	mu       sync.Mutex
	seq      uint64
	inflight map[*pipeline.Progress]uint64

	srvMu sync.Mutex
	srv   *http.Server
	ln    net.Listener
}

// NewHub returns a Hub with the given configuration.
func NewHub(cfg Config) *Hub {
	if cfg.QueryLogCapacity <= 0 {
		cfg.QueryLogCapacity = 128
	}
	rec := cfg.Flight
	if rec == nil {
		rec = flight.Default
	}
	h := &Hub{
		cfg:      cfg,
		log:      newQueryLog(cfg.QueryLogCapacity),
		rec:      rec,
		det:      flight.NewDetector(cfg.Detector, rec),
		start:    time.Now(),
		engine:   obs.NewRegistry(),
		inflight: make(map[*pipeline.Progress]uint64),
	}
	h.engine.Gauge("engine_anomaly_straggler_node").Set(-1)
	return h
}

// Log returns the hub's query log.
func (h *Hub) Log() *QueryLog { return h.log }

// Detector returns the hub's anomaly detector.
func (h *Hub) Detector() *flight.Detector { return h.det }

// QueryStarted implements pipeline.QueryHooks: the query's Progress
// tracker becomes visible on /debug/inflight.
func (h *Hub) QueryStarted(p *pipeline.Progress) {
	h.mu.Lock()
	h.seq++
	h.inflight[p] = h.seq
	h.mu.Unlock()
}

// QueryFinished implements pipeline.QueryHooks: the query leaves
// /debug/inflight and its profiled report is appended to the query log.
func (h *Hub) QueryFinished(p *pipeline.Progress, rep *pipeline.Report, err error) {
	h.mu.Lock()
	id := h.inflight[p]
	delete(h.inflight, p)
	h.mu.Unlock()

	snap := p.Snapshot()
	e := Entry{
		Seq:         id,
		Query:       snap.Query,
		Start:       snap.Start,
		WallSeconds: snap.ElapsedSeconds,
		Slow:        h.cfg.SlowQuery > 0 && snap.ElapsedSeconds >= h.cfg.SlowQuery.Seconds(),
	}
	if err != nil {
		e.Error = err.Error()
	}
	if rep != nil {
		e.PlanSeconds = rep.PlanTime
		e.AlignSeconds = rep.AlignTime
		e.CompareSeconds = rep.CompareTime
		e.ModeledSeconds = rep.Total
		e.Matches = rep.Matches
		e.CellsMoved = rep.CellsMoved
		e.Planner = rep.Physical.Planner
		e.Algorithm = rep.Logical.Algo.String()
		e.PlanSource = rep.PlanSource
		e.PlanRegret = rep.PlanRegret
		e.Skew = rep.Skew
		e.StragglerNode = rep.StragglerNode
		e.LockWaitSeconds = rep.LockWaitSeconds
		e.Profile = rep.Profile
		if err == nil {
			// Fold the finished query into the online anomaly detector
			// and surface what it raised: on the log entry, on the
			// profile (an annotation outside the fingerprint), and as
			// engine gauges a Prometheus scraper can alert on.
			for _, a := range h.det.Observe(snap.Query, rep.NodeCompareTime, rep.Align.CellsRecv, rep.UnitCells) {
				e.Anomalies = append(e.Anomalies, a.String())
			}
			if rep.Profile != nil {
				rep.Profile.Anomalies = e.Anomalies
			}
			h.engine.Counter("engine_anomaly_total").Add(int64(len(e.Anomalies)))
			flagged, straggler := h.det.Flagged()
			h.engine.Gauge("engine_anomaly_flagged_nodes").Set(float64(flagged))
			h.engine.Gauge("engine_anomaly_straggler_node").Set(float64(straggler))
		}
	}
	h.log.add(e)
}

// Entry is one finished query in the /debug/queries log.
type Entry struct {
	Seq             uint64            `json:"seq"`
	Query           string            `json:"query,omitempty"`
	Start           time.Time         `json:"start"`
	WallSeconds     float64           `json:"wall_seconds"`
	PlanSeconds     float64           `json:"plan_seconds"`
	AlignSeconds    float64           `json:"align_seconds"`
	CompareSeconds  float64           `json:"compare_seconds"`
	ModeledSeconds  float64           `json:"modeled_seconds"`
	Matches         int64             `json:"matches"`
	CellsMoved      int64             `json:"cells_moved"`
	Planner         string            `json:"planner,omitempty"`
	Algorithm       string            `json:"algorithm,omitempty"`
	PlanSource      string            `json:"plan_source,omitempty"`
	PlanRegret      float64           `json:"plan_regret,omitempty"`
	Skew            float64           `json:"skew"`
	StragglerNode   int               `json:"straggler_node"`
	LockWaitSeconds float64           `json:"lock_wait_seconds"`
	Slow            bool              `json:"slow"`
	Error           string            `json:"error,omitempty"`
	Anomalies       []string          `json:"anomalies,omitempty"`
	Profile         *pipeline.Profile `json:"profile,omitempty"`
}

// QueryLog is a fixed-capacity ring buffer of finished queries.
type QueryLog struct {
	mu      sync.Mutex
	cap     int
	entries []Entry
	next    int
	total   uint64
	slow    uint64
}

func newQueryLog(capacity int) *QueryLog {
	return &QueryLog{cap: capacity}
}

func (l *QueryLog) add(e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if e.Slow {
		l.slow++
	}
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		return
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % l.cap
}

// Entries returns the retained entries, oldest first.
func (l *QueryLog) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, 0, len(l.entries))
	out = append(out, l.entries[l.next:]...)
	out = append(out, l.entries[:l.next]...)
	return out
}

// Len returns the number of retained entries; Total the number ever
// logged (retained + evicted); Slow the number marked slow.
func (l *QueryLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Total returns the number of queries ever logged.
func (l *QueryLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Slow returns the number of queries marked slow.
func (l *QueryLog) Slow() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.slow
}

// Handler returns the hub's HTTP mux: /metrics, the /debug endpoints,
// and the standard pprof profiles under /debug/pprof/.
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/debug/queries", h.handleQueries)
	mux.HandleFunc("/debug/inflight", h.handleInflight)
	mux.HandleFunc("/debug/flight", h.handleFlight)
	mux.HandleFunc("/debug/anomalies", h.handleAnomalies)
	mux.HandleFunc("/debug/status", h.handleStatus)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// boolParam parses a 0/1 query parameter; a malformed value is a 400.
func boolParam(w http.ResponseWriter, r *http.Request, name string) (value, ok bool) {
	switch r.URL.Query().Get(name) {
	case "", "0":
		return false, true
	case "1":
		return true, true
	default:
		http.Error(w, fmt.Sprintf("obshttp: query parameter %q must be 0 or 1", name), http.StatusBadRequest)
		return false, false
	}
}

// intParam parses a non-negative integer query parameter with a
// default; a malformed or negative value is a 400.
func intParam(w http.ResponseWriter, r *http.Request, name string, def int) (value int, ok bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		http.Error(w, fmt.Sprintf("obshttp: query parameter %q must be a non-negative integer", name), http.StatusBadRequest)
		return 0, false
	}
	return n, true
}

func (h *Hub) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.engine.Gauge("engine_uptime_seconds").Set(time.Since(h.start).Seconds())
	if err := h.cfg.Registry.WritePrometheus(w); err != nil {
		// Headers are sent; nothing to do beyond dropping the connection.
		return
	}
	h.engine.WritePrometheus(w) //nolint:errcheck // same: headers already sent
}

// queriesPayload is the /debug/queries response shape.
type queriesPayload struct {
	Total       uint64  `json:"total"`
	SlowQueries uint64  `json:"slow_queries"`
	Capacity    int     `json:"capacity"`
	SlowMs      float64 `json:"slow_threshold_ms"`
	Queries     []Entry `json:"queries"`
}

func (h *Hub) handleQueries(w http.ResponseWriter, r *http.Request) {
	slowOnly, ok := boolParam(w, r, "slow")
	if !ok {
		return
	}
	limit, ok := intParam(w, r, "limit", 0)
	if !ok {
		return
	}
	entries := h.log.Entries()
	// Newest first: the interesting queries are the recent ones.
	for i, j := 0, len(entries)-1; i < j; i, j = i+1, j-1 {
		entries[i], entries[j] = entries[j], entries[i]
	}
	if slowOnly {
		kept := entries[:0]
		for _, e := range entries {
			if e.Slow {
				kept = append(kept, e)
			}
		}
		entries = kept
	}
	if limit > 0 && len(entries) > limit {
		entries = entries[:limit]
	}
	writeJSON(w, queriesPayload{
		Total:       h.log.Total(),
		SlowQueries: h.log.Slow(),
		Capacity:    h.log.cap,
		SlowMs:      h.cfg.SlowQuery.Seconds() * 1000,
		Queries:     entries,
	})
}

// inflightEntry is one running query in the /debug/inflight response.
type inflightEntry struct {
	ID uint64 `json:"id"`
	pipeline.ProgressSnapshot
}

func (h *Hub) handleInflight(w http.ResponseWriter, _ *http.Request) {
	h.mu.Lock()
	running := make([]inflightEntry, 0, len(h.inflight))
	for p, id := range h.inflight {
		running = append(running, inflightEntry{ID: id, ProgressSnapshot: p.Snapshot()})
	}
	h.mu.Unlock()
	sort.Slice(running, func(i, j int) bool { return running[i].ID < running[j].ID })
	payload := struct {
		Running   []inflightEntry `json:"running"`
		Scheduler *sched.Snapshot `json:"scheduler,omitempty"`
	}{Running: running}
	if h.cfg.Sched != nil {
		snap := h.cfg.Sched.Snapshot()
		payload.Scheduler = &snap
	}
	writeJSON(w, payload)
}

// handleFlight serves the flight recorder's recent events, decoded.
// ?limit=N bounds the dump (default 256, 0 = everything retained).
func (h *Hub) handleFlight(w http.ResponseWriter, r *http.Request) {
	limit, ok := intParam(w, r, "limit", 256)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	h.rec.WriteJSON(w, limit) //nolint:errcheck // headers already sent
}

// handleAnomalies serves the online skew-anomaly detector's state:
// per-node EWMAs and flags, and the recent anomalies newest first.
func (h *Hub) handleAnomalies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, h.det.Snapshot())
}

// statusPayload is the /debug/status response shape.
type statusPayload struct {
	StatusInfo
	GoVersion     string          `json:"go_version"`
	GoOSArch      string          `json:"go_os_arch"`
	Module        string          `json:"module,omitempty"`
	VCSRevision   string          `json:"vcs_revision,omitempty"`
	GOMAXPROCS    int             `json:"gomaxprocs"`
	Goroutines    int             `json:"goroutines"`
	Start         time.Time       `json:"start"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	SlowMs        float64         `json:"slow_threshold_ms"`
	LogCapacity   int             `json:"query_log_capacity"`
	QueriesTotal  uint64          `json:"queries_total"`
	QueriesSlow   uint64          `json:"queries_slow"`
	Inflight      int             `json:"inflight"`
	Flight        flight.Stats    `json:"flight"`
	Scheduler     *sched.Snapshot `json:"scheduler,omitempty"`
}

func (h *Hub) handleStatus(w http.ResponseWriter, _ *http.Request) {
	h.mu.Lock()
	inflight := len(h.inflight)
	h.mu.Unlock()
	p := statusPayload{
		StatusInfo:    h.cfg.Status,
		GoVersion:     runtime.Version(),
		GoOSArch:      runtime.GOOS + "/" + runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Goroutines:    runtime.NumGoroutine(),
		Start:         h.start,
		UptimeSeconds: time.Since(h.start).Seconds(),
		SlowMs:        h.cfg.SlowQuery.Seconds() * 1000,
		LogCapacity:   h.log.cap,
		QueriesTotal:  h.log.Total(),
		QueriesSlow:   h.log.Slow(),
		Inflight:      inflight,
		Flight:        h.rec.Stats(),
	}
	if h.cfg.Sched != nil {
		snap := h.cfg.Sched.Snapshot()
		p.Scheduler = &snap
	}
	if bi, ok := rtdebug.ReadBuildInfo(); ok {
		p.Module = bi.Main.Path
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				p.VCSRevision = s.Value
			}
		}
	}
	writeJSON(w, p)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Serve binds addr (host:port; ":0" picks a free port) and serves the
// hub's handler in a background goroutine until Close. It returns the
// bound address.
func (h *Hub) Serve(addr string) (string, error) {
	h.srvMu.Lock()
	defer h.srvMu.Unlock()
	if h.ln != nil {
		return "", fmt.Errorf("obshttp: hub already serving on %s", h.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obshttp: %w", err)
	}
	h.ln = ln
	h.srv = &http.Server{Handler: h.Handler()}
	go h.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), nil
}

// Close stops the HTTP listener, if Serve was called.
func (h *Hub) Close() error {
	h.srvMu.Lock()
	defer h.srvMu.Unlock()
	if h.srv == nil {
		return nil
	}
	err := h.srv.Close()
	h.srv, h.ln = nil, nil
	return err
}
