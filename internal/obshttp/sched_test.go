package obshttp_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"shufflejoin/internal/obs"
	"shufflejoin/internal/obshttp"
	"shufflejoin/internal/sched"
)

// TestSchedulerOnInflight pins that a hub configured with a scheduler
// serves its admission state on /debug/inflight and /debug/status, and
// that a hub without one omits the section.
func TestSchedulerOnInflight(t *testing.T) {
	s := sched.New(sched.Config{MaxQueries: 3, PoolBytes: 1 << 20})
	tk, err := s.Admit(context.Background(), sched.Scan, 0, "q")
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Done()

	hub := obshttp.NewHub(obshttp.Config{Registry: obs.NewRegistry(), Sched: s})
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	var p struct {
		Scheduler *sched.Snapshot `json:"scheduler"`
	}
	_, body, _ := get(t, srv, "/debug/inflight")
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("inflight payload: %v", err)
	}
	if p.Scheduler == nil {
		t.Fatal("no scheduler section on /debug/inflight")
	}
	if p.Scheduler.Inflight != 1 || p.Scheduler.MaxQueries != 3 {
		t.Errorf("scheduler snapshot = %+v, want inflight 1 of 3", p.Scheduler)
	}
	if p.Scheduler.Scan.Admitted != 1 || p.Scheduler.MemReservedBytes == 0 {
		t.Errorf("scan admissions/memory not reflected: %+v", p.Scheduler)
	}

	p.Scheduler = nil
	_, body, _ = get(t, srv, "/debug/status")
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("status payload: %v", err)
	}
	if p.Scheduler == nil || p.Scheduler.Inflight != 1 {
		t.Errorf("status scheduler = %+v, want inflight 1", p.Scheduler)
	}

	bare := obshttp.NewHub(obshttp.Config{Registry: obs.NewRegistry()})
	srv2 := httptest.NewServer(bare.Handler())
	defer srv2.Close()
	_, body, _ = get(t, srv2, "/debug/inflight")
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &raw); err != nil {
		t.Fatalf("bare inflight payload: %v", err)
	}
	if _, present := raw["scheduler"]; present {
		t.Error("scheduler section present on a hub without one")
	}
}
