package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shufflejoin/internal/flight"
	"shufflejoin/internal/obs"
)

// TestAdmissionCap pins that at most MaxQueries tickets are outstanding
// at once and that released slots admit queued work.
func TestAdmissionCap(t *testing.T) {
	s := New(Config{MaxQueries: 2, Flight: flight.New(64)})
	ctx := context.Background()

	t1, err := s.Admit(ctx, Interactive, 0, "q1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Admit(ctx, Interactive, 0, "q2")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().Inflight; got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}

	admitted := make(chan *Ticket)
	go func() {
		t3, err := s.Admit(ctx, Interactive, 0, "q3")
		if err != nil {
			t.Error(err)
		}
		admitted <- t3
	}()
	select {
	case <-admitted:
		t.Fatal("third query admitted past MaxQueries=2")
	case <-time.After(30 * time.Millisecond):
	}
	t1.Done()
	t3 := <-admitted
	if got := s.Snapshot().Inflight; got != 2 {
		t.Fatalf("inflight after release+grant = %d, want 2", got)
	}
	t2.Done()
	t3.Done()
	if snap := s.Snapshot(); snap.Inflight != 0 || snap.MemReservedBytes != 0 {
		t.Fatalf("after all Done: %+v", snap)
	}
}

// TestMemoryQueuing pins that a query whose reservation does not fit the
// pool queues (not fails) and runs once memory frees.
func TestMemoryQueuing(t *testing.T) {
	s := New(Config{MaxQueries: 8, PoolBytes: 1000, Flight: flight.New(64)})
	ctx := context.Background()

	big, err := s.Admit(ctx, Scan, 800, "big")
	if err != nil {
		t.Fatal(err)
	}
	if big.MemoryBytes() != 800 {
		t.Fatalf("reservation = %d, want 800", big.MemoryBytes())
	}

	admitted := make(chan *Ticket)
	go func() {
		tk, err := s.Admit(ctx, Scan, 500, "second")
		if err != nil {
			t.Error(err)
		}
		admitted <- tk
	}()
	select {
	case <-admitted:
		t.Fatal("500-byte query admitted into a pool with 200 free")
	case <-time.After(30 * time.Millisecond):
	}
	if q := s.Snapshot().Scan.Queued; q != 1 {
		t.Fatalf("queued = %d, want 1", q)
	}
	big.Done()
	tk := <-admitted
	if got := s.Snapshot().MemReservedBytes; got != 500 {
		t.Fatalf("mem reserved = %d, want 500", got)
	}
	tk.Done()
}

// TestReservationClamp pins that a declared budget larger than the pool
// is clamped so the query can ever be admitted.
func TestReservationClamp(t *testing.T) {
	s := New(Config{MaxQueries: 2, PoolBytes: 1000, Flight: flight.New(64)})
	tk, err := s.Admit(context.Background(), Scan, 1<<40, "huge")
	if err != nil {
		t.Fatal(err)
	}
	if tk.MemoryBytes() != 1000 {
		t.Fatalf("reservation = %d, want clamp to 1000", tk.MemoryBytes())
	}
	tk.Done()
}

// TestDefaultReservation pins the PoolBytes/MaxQueries default carve.
func TestDefaultReservation(t *testing.T) {
	s := New(Config{MaxQueries: 4, PoolBytes: 1000, Flight: flight.New(64)})
	tk, err := s.Admit(context.Background(), Interactive, 0, "q")
	if err != nil {
		t.Fatal(err)
	}
	if tk.MemoryBytes() != 250 {
		t.Fatalf("default reservation = %d, want 250", tk.MemoryBytes())
	}
	tk.Done()
}

// TestWeightedFairness pins the WFQ grant ratio: with both classes
// backlogged at weights 3:1, interactive receives three grants per scan
// grant (up to rounding over the run).
func TestWeightedFairness(t *testing.T) {
	s := New(Config{
		MaxQueries:        1,
		InteractiveWeight: 3,
		ScanWeight:        1,
		StarvationBound:   1000, // isolate pure WFQ behavior
		Flight:            flight.New(64),
	})
	ctx := context.Background()
	hold, err := s.Admit(ctx, Interactive, 0, "hold")
	if err != nil {
		t.Fatal(err)
	}

	const perClass = 20
	order := make(chan Class, 2*perClass)
	var wg sync.WaitGroup
	enqueue := func(c Class) {
		defer wg.Done()
		tk, err := s.Admit(ctx, c, 0, "w")
		if err != nil {
			t.Error(err)
			return
		}
		order <- c
		tk.Done()
	}
	wg.Add(2 * perClass)
	for i := 0; i < perClass; i++ {
		go enqueue(Interactive)
		go enqueue(Scan)
	}
	// Let every waiter enqueue before the single slot starts draining,
	// so the WFQ choice sees both classes backlogged throughout.
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := s.Snapshot()
		if snap.Interactive.Queued == perClass && snap.Scan.Queued == perClass {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters failed to enqueue: %+v", snap)
		}
		time.Sleep(time.Millisecond)
	}
	hold.Done()
	wg.Wait()
	close(order)

	// Count the interactive:scan ratio over the first grants while both
	// classes were still backlogged (first 24 grants ≈ 18i + 6s).
	granted := make([]Class, 0, 2*perClass)
	for c := range order {
		granted = append(granted, c)
	}
	ni := 0
	window := granted[:24]
	for _, c := range window {
		if c == Interactive {
			ni++
		}
	}
	if ni < 16 || ni > 20 {
		t.Fatalf("interactive grants in first %d = %d, want ~18 (3:1 weights); order=%v", len(window), ni, granted)
	}
}

// TestStarvationBound pins that a backlogged scan query is granted
// within StarvationBound consecutive interactive grants.
func TestStarvationBound(t *testing.T) {
	s := New(Config{
		MaxQueries:        1,
		InteractiveWeight: 1 << 20, // WFQ alone would starve scan for ages
		ScanWeight:        1,
		StarvationBound:   3,
		Flight:            flight.New(64),
	})
	ctx := context.Background()
	hold, err := s.Admit(ctx, Interactive, 0, "hold")
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan Class, 32)
	var wg sync.WaitGroup
	enqueue := func(c Class) {
		defer wg.Done()
		tk, err := s.Admit(ctx, c, 0, "w")
		if err != nil {
			t.Error(err)
			return
		}
		order <- c
		tk.Done()
	}
	wg.Add(11)
	for i := 0; i < 10; i++ {
		go enqueue(Interactive)
	}
	go enqueue(Scan)
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := s.Snapshot()
		if snap.Interactive.Queued == 10 && snap.Scan.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("waiters failed to enqueue: %+v", s.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	hold.Done()
	wg.Wait()
	close(order)

	pos := -1
	i := 0
	for c := range order {
		if c == Scan {
			pos = i
			break
		}
		i++
	}
	// hold was interactive, so scan must land within the first
	// StarvationBound grants of the drain.
	if pos < 0 || pos > 3 {
		t.Fatalf("scan granted at position %d, want <= 3 (starvation bound)", pos)
	}
}

// TestCancelWhileQueued pins that a queued admission honors context
// cancellation, is removed from the queue, and does not leak resources
// even when the cancellation races an in-flight grant.
func TestCancelWhileQueued(t *testing.T) {
	s := New(Config{MaxQueries: 1, Flight: flight.New(64)})
	bg := context.Background()
	hold, err := s.Admit(bg, Interactive, 0, "hold")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(bg)
	errc := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, Interactive, 0, "victim")
		errc <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Snapshot().Interactive.Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("victim never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("queued cancel: err = %v, want context.Canceled", err)
	}
	snap := s.Snapshot()
	if snap.Interactive.Queued != 0 || snap.Interactive.Rejected != 1 {
		t.Fatalf("after cancel: %+v", snap)
	}
	hold.Done()
	if snap := s.Snapshot(); snap.Inflight != 0 {
		t.Fatalf("leaked inflight after cancel: %+v", snap)
	}

	// Grant/cancel race: hammer both sides; whatever the interleaving,
	// no slot or memory may leak.
	for i := 0; i < 200; i++ {
		h, err := s.Admit(bg, Interactive, 10, "h")
		if err != nil {
			t.Fatal(err)
		}
		rctx, rcancel := context.WithCancel(bg)
		done := make(chan struct{})
		go func() {
			tk, err := s.Admit(rctx, Interactive, 10, "r")
			if err == nil {
				tk.Done()
			}
			close(done)
		}()
		go rcancel()
		h.Done()
		<-done
		rcancel()
	}
	if snap := s.Snapshot(); snap.Inflight != 0 || snap.MemReservedBytes != 0 {
		t.Fatalf("leak after race storm: %+v", snap)
	}
}

// TestPreCanceledContext pins that Admit fails fast on an already-done
// context without touching the queues.
func TestPreCanceledContext(t *testing.T) {
	s := New(Config{MaxQueries: 1, Flight: flight.New(64)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Admit(ctx, Scan, 0, "q"); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSimPoolCapped pins that AcquireSim blocks at AlignSlots
// outstanding simulators and that instances are reused.
func TestSimPoolCapped(t *testing.T) {
	s := New(Config{MaxQueries: 4, AlignSlots: 2, Flight: flight.New(64)})
	ctx := context.Background()
	tk, err := s.Admit(ctx, Interactive, 0, "q")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := tk.AcquireSim(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tk.AcquireSim(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if _, err := tk.AcquireSim(tctx); err != context.DeadlineExceeded {
		t.Fatalf("third AcquireSim: err = %v, want DeadlineExceeded", err)
	}
	tk.ReleaseSim(s1)
	s3, err := tk.AcquireSim(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Fatal("released simulator not reused")
	}
	tk.ReleaseSim(s2)
	tk.ReleaseSim(s3)
	if free := s.Snapshot().AlignSlotsFree; free != 2 {
		t.Fatalf("align slots free = %d, want 2", free)
	}
	tk.Done()
}

// TestCompareSlots pins the compare semaphore bound.
func TestCompareSlots(t *testing.T) {
	s := New(Config{MaxQueries: 4, CompareSlots: 1, Flight: flight.New(64)})
	ctx := context.Background()
	tk, err := s.Admit(ctx, Interactive, 0, "q")
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.AcquireCompare(ctx); err != nil {
		t.Fatal(err)
	}
	tctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if err := tk.AcquireCompare(tctx); err != context.DeadlineExceeded {
		t.Fatalf("second AcquireCompare: err = %v, want DeadlineExceeded", err)
	}
	tk.ReleaseCompare()
	if free := s.Snapshot().CompareSlotsFree; free != 1 {
		t.Fatalf("compare slots free = %d, want 1", free)
	}
	tk.Done()
}

// TestDoneIdempotent pins that double-Done releases once.
func TestDoneIdempotent(t *testing.T) {
	s := New(Config{MaxQueries: 2, PoolBytes: 100, Flight: flight.New(64)})
	tk, err := s.Admit(context.Background(), Interactive, 50, "q")
	if err != nil {
		t.Fatal(err)
	}
	tk.Done()
	tk.Done()
	snap := s.Snapshot()
	if snap.Inflight != 0 || snap.MemReservedBytes != 0 {
		t.Fatalf("after double Done: %+v", snap)
	}
}

// TestMetricsAndFlight pins the obs registry and flight-recorder
// surfaces of admission.
func TestMetricsAndFlight(t *testing.T) {
	reg := obs.NewRegistry()
	fr := flight.New(128)
	s := New(Config{MaxQueries: 1, Registry: reg, Flight: fr})
	ctx := context.Background()
	t1, err := s.Admit(ctx, Interactive, 0, "a")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		t2, err := s.Admit(ctx, Scan, 0, "b")
		if err == nil {
			t2.Done()
		}
		close(done)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Snapshot().Scan.Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("scan never queued")
		}
		time.Sleep(time.Millisecond)
	}
	t1.Done()
	<-done

	counters := reg.Snapshot()
	if counters["sched.admitted.interactive"] != 1 || counters["sched.admitted.scan"] != 1 {
		t.Fatalf("admitted counters: %v", counters)
	}

	var sawQueue, sawAdmit bool
	for _, e := range fr.Snapshot(0) {
		switch e.Type {
		case flight.EvSchedQueue:
			sawQueue = true
			if fr.LabelName(e.Args[0]) != "scan" {
				t.Fatalf("queue event class = %q", fr.LabelName(e.Args[0]))
			}
		case flight.EvSchedAdmit:
			sawAdmit = true
		}
	}
	if !sawQueue || !sawAdmit {
		t.Fatalf("flight events: queue=%v admit=%v", sawQueue, sawAdmit)
	}
}

// TestParseClass pins the class-name surface.
func TestParseClass(t *testing.T) {
	for in, want := range map[string]Class{"": Interactive, "interactive": Interactive, "scan": Scan} {
		got, err := ParseClass(in)
		if err != nil || got != want {
			t.Fatalf("ParseClass(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseClass("batch"); err == nil {
		t.Fatal("ParseClass accepted unknown class")
	}
}

// TestConcurrentChurn hammers the scheduler from many goroutines under
// the race detector and pins conservation: admitted == completed, no
// slot or memory leak.
func TestConcurrentChurn(t *testing.T) {
	s := New(Config{MaxQueries: 4, PoolBytes: 1 << 20, Flight: flight.New(256)})
	ctx := context.Background()
	var completed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := Interactive
				if (g+i)%3 == 0 {
					c = Scan
				}
				tk, err := s.Admit(ctx, c, int64(1024*(i%7+1)), "churn")
				if err != nil {
					t.Error(err)
					return
				}
				sim, err := tk.AcquireSim(ctx)
				if err == nil {
					tk.ReleaseSim(sim)
				}
				tk.Done()
				completed.Add(1)
			}
		}(g)
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Inflight != 0 || snap.MemReservedBytes != 0 {
		t.Fatalf("leak after churn: %+v", snap)
	}
	if total := snap.Interactive.Admitted + snap.Scan.Admitted; total != completed.Load() {
		t.Fatalf("admitted %d != completed %d", total, completed.Load())
	}
}
