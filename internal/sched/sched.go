// Package sched is the engine's multi-query admission layer: it decides
// which of N concurrently submitted queries may enter the pipeline's
// stage machinery, and meters their access to the shared execution
// resources once admitted. One Scheduler owns
//
//   - query admission: at most MaxQueries queries execute at once;
//     excess submissions queue (per class, FIFO) instead of piling
//     goroutines onto the stage hot paths.
//   - a shared memory pool: each admitted query reserves its
//     batch-memory budget out of one process-wide cap at admission
//     time, and a query whose reservation does not fit waits in the
//     queue rather than failing — reservation happens before any stage
//     runs, so queries never deadlock holding partial allocations.
//   - stage-level slots: a capped pool of reusable simnet.Sim
//     instances bounds concurrent Align work, and a compare semaphore
//     bounds concurrent cell-comparison work, so P admitted queries
//     cannot oversubscribe the per-query Parallelism worker budget.
//   - fairness: admission grants are weighted-fair-queued between the
//     interactive and scan classes by per-class virtual time, with a
//     starvation bound forcing a waiting class through after too many
//     consecutive grants to the other.
//
// Admission is control-plane only: it decides *when* a query starts,
// never *what* it computes. A query's outputs, modeled times, and
// profile fingerprints are bit-for-bit identical with and without a
// scheduler attached (the concurrency equivalence test pins this); only
// the interleaving of queries — and therefore wall-clock latency — is
// scheduling-dependent.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"shufflejoin/internal/flight"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/simnet"
)

// Class is a query's scheduling class.
type Class uint8

const (
	// Interactive is the latency-sensitive class (point lookups, small
	// selective joins); it carries the higher default WFQ weight.
	Interactive Class = iota
	// Scan is the throughput class (large analytic scans) that may
	// saturate the pool without starving interactive work.
	Scan

	numClasses = 2
)

// String returns the class's wire name.
func (c Class) String() string {
	if c == Scan {
		return "scan"
	}
	return "interactive"
}

// ParseClass resolves a class name ("interactive" or "scan"; empty
// defaults to interactive).
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "interactive":
		return Interactive, nil
	case "scan":
		return Scan, nil
	}
	return Interactive, fmt.Errorf("sched: unknown query class %q (want interactive|scan)", s)
}

// Config parameterizes a Scheduler. The zero value of every field
// selects a sensible default, resolved by New.
type Config struct {
	// MaxQueries is the number of queries admitted concurrently
	// (default: one per CPU). Submissions beyond it queue.
	MaxQueries int
	// AlignSlots caps concurrent Align stages — it is the size of the
	// shared simulator pool (default: MaxQueries).
	AlignSlots int
	// CompareSlots caps concurrent Compare stages (default: MaxQueries).
	CompareSlots int
	// PoolBytes is the process-wide batch-memory cap per-query budgets
	// are carved from; 0 disables memory admission entirely.
	PoolBytes int64
	// PerQueryBytes is the reservation for a query that declares no
	// budget of its own (default: PoolBytes / MaxQueries). A declared
	// budget larger than PoolBytes is clamped to PoolBytes so it can
	// ever be admitted; the query's own Budget still counts overflow.
	PerQueryBytes int64
	// InteractiveWeight and ScanWeight are the WFQ weights (defaults
	// 3 and 1: three interactive grants per scan grant under
	// contention).
	InteractiveWeight int
	ScanWeight        int
	// StarvationBound forces a waiting class through after this many
	// consecutive grants to the other class (default 8).
	StarvationBound int
	// Registry, when non-nil, receives the scheduler's gauges,
	// counters, and admission-wait histograms (sched.* names).
	Registry *obs.Registry
	// Flight overrides the recorder admission events are recorded into;
	// nil uses the process-wide flight.Default ring.
	Flight *flight.Recorder
}

// waitBuckets spans admission waits from 100µs to ~100s.
var waitBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// Scheduler admits queries and meters their stage-level resource use.
// Construct with New; safe for concurrent use.
type Scheduler struct {
	cfg Config
	fr  *flight.Recorder

	sims chan *simnet.Sim // capped shared simulator pool (align slots)
	cmp  chan struct{}    // compare-stage semaphore

	mu        sync.Mutex
	queues    [numClasses][]*waiter
	inflight  int
	memUsed   int64
	vtime     [numClasses]float64 // WFQ per-class virtual finish times
	lastClass Class
	consec    int // consecutive grants to lastClass
	admitted  [numClasses]int64
	rejected  [numClasses]int64
	granted   uint64 // total grants, for deterministic ticket ids

	// Metrics are optional; every handle below may be nil.
	mDepth    [numClasses]*obs.Gauge
	mInflight *obs.Gauge
	mMem      *obs.Gauge
	mAdmit    [numClasses]*obs.Counter
	mReject   [numClasses]*obs.Counter
	mWait     [numClasses]*obs.Histogram
}

// waiter is one queued admission request.
type waiter struct {
	class  Class
	bytes  int64
	since  time.Time
	ready  chan struct{}
	ticket *Ticket // set under the scheduler mutex when granted
}

// New returns a Scheduler for the given configuration, with defaults
// resolved as documented on Config.
func New(cfg Config) *Scheduler {
	if cfg.MaxQueries <= 0 {
		cfg.MaxQueries = runtime.GOMAXPROCS(0)
	}
	if cfg.AlignSlots <= 0 {
		cfg.AlignSlots = cfg.MaxQueries
	}
	if cfg.CompareSlots <= 0 {
		cfg.CompareSlots = cfg.MaxQueries
	}
	if cfg.PerQueryBytes <= 0 && cfg.PoolBytes > 0 {
		cfg.PerQueryBytes = cfg.PoolBytes / int64(cfg.MaxQueries)
	}
	if cfg.InteractiveWeight <= 0 {
		cfg.InteractiveWeight = 3
	}
	if cfg.ScanWeight <= 0 {
		cfg.ScanWeight = 1
	}
	if cfg.StarvationBound <= 0 {
		cfg.StarvationBound = 8
	}
	s := &Scheduler{cfg: cfg, fr: cfg.Flight}
	if s.fr == nil {
		s.fr = flight.Default
	}
	s.sims = make(chan *simnet.Sim, cfg.AlignSlots)
	for i := 0; i < cfg.AlignSlots; i++ {
		s.sims <- new(simnet.Sim)
	}
	s.cmp = make(chan struct{}, cfg.CompareSlots)
	for i := 0; i < cfg.CompareSlots; i++ {
		s.cmp <- struct{}{}
	}
	if reg := cfg.Registry; reg != nil {
		for c := Class(0); c < numClasses; c++ {
			s.mDepth[c] = reg.Gauge("sched.queue_depth." + c.String())
			s.mAdmit[c] = reg.Counter("sched.admitted." + c.String())
			s.mReject[c] = reg.Counter("sched.rejected." + c.String())
			s.mWait[c] = reg.Histogram("sched.admission_wait_seconds."+c.String(), waitBuckets)
		}
		s.mInflight = reg.Gauge("sched.inflight")
		s.mMem = reg.Gauge("sched.mem_reserved_bytes")
	}
	return s
}

// weight returns the configured WFQ weight of a class.
func (s *Scheduler) weight(c Class) float64 {
	if c == Scan {
		return float64(s.cfg.ScanWeight)
	}
	return float64(s.cfg.InteractiveWeight)
}

// reserveBytes resolves a query's memory reservation: its own declared
// budget (clamped to the pool) or the per-query default. Zero when the
// scheduler runs without a memory pool.
func (s *Scheduler) reserveBytes(declared int64) int64 {
	if s.cfg.PoolBytes <= 0 {
		return 0
	}
	b := declared
	if b <= 0 {
		b = s.cfg.PerQueryBytes
	}
	if b > s.cfg.PoolBytes {
		b = s.cfg.PoolBytes
	}
	return b
}

// Admit blocks until the query is granted a slot (and, when a memory
// pool is configured, its reservation fits) or ctx is done. declared is
// the query's own memory budget in bytes (0 = none; the scheduler then
// reserves its per-query default). label annotates flight events.
//
// The returned Ticket is the query's resource handle: it satisfies the
// pipeline's Gate interface for stage-level slot acquisition and must
// be released with Done when the query finishes (success or failure).
func (s *Scheduler) Admit(ctx context.Context, class Class, declared int64, label string) (*Ticket, error) {
	if class >= numClasses {
		class = Interactive
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bytes := s.reserveBytes(declared)

	s.mu.Lock()
	// Fast path: nothing queued ahead and the resources fit.
	if s.queues[Interactive] == nil && s.queues[Scan] == nil && s.fitsLocked(bytes) {
		t := s.grantLocked(class, bytes, 0)
		s.mu.Unlock()
		return t, nil
	}
	w := &waiter{class: class, bytes: bytes, since: time.Now(), ready: make(chan struct{})}
	s.queues[class] = append(s.queues[class], w)
	depth := len(s.queues[class])
	s.setDepthLocked(class)
	s.fr.Record(flight.EvSchedQueue, 0, s.fr.Label(class.String()), int64(depth), s.memUsed, 0)
	// A slot may have freed between the fast-path check and the
	// enqueue of a same-class predecessor; try to drain immediately.
	s.grantNextLocked()
	s.mu.Unlock()

	select {
	case <-w.ready:
		return w.ticket, nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	if w.ticket != nil {
		// The grant raced the cancellation: take the ticket and release
		// it so the resources return to the pool.
		t := w.ticket
		s.mu.Unlock()
		t.Done()
		return nil, ctx.Err()
	}
	q := s.queues[class]
	for i, qw := range q {
		if qw == w {
			s.queues[class] = append(q[:i:i], q[i+1:]...)
			break
		}
	}
	if len(s.queues[class]) == 0 {
		s.queues[class] = nil
	}
	s.setDepthLocked(class)
	s.rejected[class]++
	if s.mReject[class] != nil {
		s.mReject[class].Add(1)
	}
	wait := time.Since(w.since)
	s.fr.Record(flight.EvSchedReject, 0, s.fr.Label(class.String()), int64(wait), s.fr.Label("context"), 0)
	// Removing a head-of-line waiter may unblock a smaller one behind it.
	s.grantNextLocked()
	s.mu.Unlock()
	return nil, ctx.Err()
}

// fitsLocked reports whether a query-slot plus memory reservation is
// available right now.
func (s *Scheduler) fitsLocked(bytes int64) bool {
	if s.inflight >= s.cfg.MaxQueries {
		return false
	}
	return s.cfg.PoolBytes <= 0 || s.memUsed+bytes <= s.cfg.PoolBytes
}

// setDepthLocked mirrors a class queue's depth into its gauge.
func (s *Scheduler) setDepthLocked(c Class) {
	if s.mDepth[c] != nil {
		s.mDepth[c].Set(float64(len(s.queues[c])))
	}
}

// pickClassLocked chooses which non-empty class queue the next grant
// goes to: weighted fair queueing over per-class virtual time, with the
// starvation bound overriding the WFQ choice when one class has
// monopolized too many consecutive grants.
func (s *Scheduler) pickClassLocked() (Class, bool) {
	ni, ns := len(s.queues[Interactive]) > 0, len(s.queues[Scan]) > 0
	switch {
	case !ni && !ns:
		return 0, false
	case ni && !ns:
		return Interactive, true
	case ns && !ni:
		return Scan, true
	}
	// Both wait: virtual-time WFQ. An idle class must not hoard credit,
	// so each candidate's virtual start is floored at the current
	// virtual "now" (the smaller of the two finish times).
	vnow := s.vtime[Interactive]
	if s.vtime[Scan] < vnow {
		vnow = s.vtime[Scan]
	}
	finish := func(c Class) float64 {
		v := s.vtime[c]
		if v < vnow {
			v = vnow
		}
		return v + 1/s.weight(c)
	}
	pick := Interactive
	if finish(Scan) < finish(Interactive) {
		pick = Scan
	}
	if s.consec >= s.cfg.StarvationBound && s.lastClass == pick {
		pick = 1 - pick
	}
	return pick, true
}

// grantNextLocked drains the queues while resources last, in WFQ order.
// When the WFQ-chosen class's head does not fit the memory pool, the
// other class's head may still fit and is admitted instead (bounded
// head-of-line bypass); when neither fits, admission waits for a
// release.
func (s *Scheduler) grantNextLocked() {
	for s.inflight < s.cfg.MaxQueries {
		c, ok := s.pickClassLocked()
		if !ok {
			return
		}
		if !s.fitsLocked(s.queues[c][0].bytes) {
			o := 1 - c
			if len(s.queues[o]) == 0 || !s.fitsLocked(s.queues[o][0].bytes) {
				return
			}
			c = o
		}
		w := s.queues[c][0]
		s.queues[c] = s.queues[c][1:]
		if len(s.queues[c]) == 0 {
			s.queues[c] = nil
		}
		s.setDepthLocked(c)
		w.ticket = s.grantLocked(c, w.bytes, time.Since(w.since))
		close(w.ready)
	}
}

// grantLocked commits one admission: resources, WFQ bookkeeping,
// metrics, and the flight event. Returns the query's ticket.
func (s *Scheduler) grantLocked(c Class, bytes int64, waited time.Duration) *Ticket {
	s.inflight++
	s.memUsed += bytes
	vnow := s.vtime[Interactive]
	if s.vtime[Scan] < vnow {
		vnow = s.vtime[Scan]
	}
	if s.vtime[c] < vnow {
		s.vtime[c] = vnow
	}
	s.vtime[c] += 1 / s.weight(c)
	if c == s.lastClass {
		s.consec++
	} else {
		s.lastClass, s.consec = c, 1
	}
	s.admitted[c]++
	s.granted++
	if s.mAdmit[c] != nil {
		s.mAdmit[c].Add(1)
	}
	if s.mWait[c] != nil {
		s.mWait[c].Observe(waited.Seconds())
	}
	if s.mInflight != nil {
		s.mInflight.Set(float64(s.inflight))
	}
	if s.mMem != nil {
		s.mMem.Set(float64(s.memUsed))
	}
	s.fr.Record(flight.EvSchedAdmit, 0, s.fr.Label(c.String()), int64(waited), int64(s.inflight), 0)
	return &Ticket{s: s, class: c, bytes: bytes}
}

// release returns a finished query's slot and reservation and wakes the
// queue.
func (s *Scheduler) release(t *Ticket) {
	s.mu.Lock()
	s.inflight--
	s.memUsed -= t.bytes
	if s.mInflight != nil {
		s.mInflight.Set(float64(s.inflight))
	}
	if s.mMem != nil {
		s.mMem.Set(float64(s.memUsed))
	}
	s.grantNextLocked()
	s.mu.Unlock()
}

// Ticket is one admitted query's handle on the scheduler's shared
// resources. It implements the pipeline's Gate interface (stage-level
// simulator and compare-slot acquisition) and must be released exactly
// once with Done; Done is idempotent.
type Ticket struct {
	s     *Scheduler
	class Class
	bytes int64
	done  atomic.Bool
}

// Class returns the ticket's scheduling class.
func (t *Ticket) Class() Class { return t.class }

// MemoryBytes returns the batch-memory reservation carved for this
// query out of the scheduler's pool (0 when no pool is configured).
func (t *Ticket) MemoryBytes() int64 { return t.bytes }

// AcquireSim borrows a simulator from the scheduler's capped shared
// pool, blocking while all AlignSlots instances are in use.
func (t *Ticket) AcquireSim(ctx context.Context) (*simnet.Sim, error) {
	select {
	case sim := <-t.s.sims:
		return sim, nil
	default:
	}
	select {
	case sim := <-t.s.sims:
		return sim, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// ReleaseSim returns a borrowed simulator to the shared pool.
func (t *Ticket) ReleaseSim(sim *simnet.Sim) {
	if sim != nil {
		t.s.sims <- sim
	}
}

// AcquireCompare takes a compare-stage slot, blocking while all
// CompareSlots are in use.
func (t *Ticket) AcquireCompare(ctx context.Context) error {
	select {
	case <-t.s.cmp:
		return nil
	default:
	}
	select {
	case <-t.s.cmp:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ReleaseCompare returns a compare-stage slot.
func (t *Ticket) ReleaseCompare() { t.s.cmp <- struct{}{} }

// Done releases the query's admission slot and memory reservation and
// admits the next queued query. Idempotent.
func (t *Ticket) Done() {
	if t.done.CompareAndSwap(false, true) {
		t.s.release(t)
	}
}

// ClassCounts is one class's admission counters in a Snapshot.
type ClassCounts struct {
	Queued   int   `json:"queued"`
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
}

// Snapshot is a point-in-time view of the scheduler's admission state,
// served on /debug/inflight.
type Snapshot struct {
	MaxQueries       int         `json:"max_queries"`
	Inflight         int         `json:"inflight"`
	Interactive      ClassCounts `json:"interactive"`
	Scan             ClassCounts `json:"scan"`
	MemReservedBytes int64       `json:"mem_reserved_bytes"`
	MemPoolBytes     int64       `json:"mem_pool_bytes"`
	AlignSlotsFree   int         `json:"align_slots_free"`
	AlignSlots       int         `json:"align_slots"`
	CompareSlotsFree int         `json:"compare_slots_free"`
	CompareSlots     int         `json:"compare_slots"`
}

// Snapshot returns the scheduler's current admission state.
func (s *Scheduler) Snapshot() Snapshot {
	s.mu.Lock()
	snap := Snapshot{
		MaxQueries: s.cfg.MaxQueries,
		Inflight:   s.inflight,
		Interactive: ClassCounts{
			Queued:   len(s.queues[Interactive]),
			Admitted: s.admitted[Interactive],
			Rejected: s.rejected[Interactive],
		},
		Scan: ClassCounts{
			Queued:   len(s.queues[Scan]),
			Admitted: s.admitted[Scan],
			Rejected: s.rejected[Scan],
		},
		MemReservedBytes: s.memUsed,
		MemPoolBytes:     s.cfg.PoolBytes,
		AlignSlots:       s.cfg.AlignSlots,
		CompareSlots:     s.cfg.CompareSlots,
	}
	s.mu.Unlock()
	snap.AlignSlotsFree = len(s.sims)
	snap.CompareSlotsFree = len(s.cmp)
	return snap
}
