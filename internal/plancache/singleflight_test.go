package plancache

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestBeginLookupSingleflight pins the duplicate-suppression contract
// with controlled timing: one planner, K-1 waiters that block until the
// planner Stores + Finishes, all sharing the entry as suppressed hits.
func TestBeginLookupSingleflight(t *testing.T) {
	c := New()
	ctx := context.Background()

	e, outcome, planning, err := c.BeginLookup(ctx, "sig")
	if err != nil || e != nil || outcome != "miss" || planning == nil {
		t.Fatalf("first BeginLookup = %v, %q, %v, %v", e, outcome, planning, err)
	}

	const waiters = 4
	type result struct {
		e       *Entry
		outcome string
		err     error
	}
	results := make([]result, waiters)
	var started, wg sync.WaitGroup
	started.Add(waiters)
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			defer wg.Done()
			started.Done()
			e, o, p, err := c.BeginLookup(ctx, "sig")
			if p != nil {
				p.Finish()
				t.Error("waiter received a planning token")
			}
			results[i] = result{e, o, err}
		}(i)
	}
	started.Wait()
	// All waiters are at (or heading into) the inflight wait; nothing
	// can give them an entry until the planner stores one.
	time.Sleep(10 * time.Millisecond)

	want := &Entry{Source: "full"}
	c.Store("sig", want)
	planning.Finish()
	planning.Finish() // idempotent
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("waiter %d: %v", i, r.err)
		}
		if r.e != want {
			t.Fatalf("waiter %d got entry %p, want shared %p", i, r.e, want)
		}
		if r.outcome != "suppressed" {
			t.Fatalf("waiter %d outcome = %q, want suppressed", i, r.outcome)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != waiters || st.Suppressed != waiters {
		t.Fatalf("stats = %+v, want 1 miss / %d hits / %d suppressed", st, waiters, waiters)
	}
}

// TestBeginLookupPlannerFailure pins the abandoned-planning path: when
// the planner Finishes without Storing, exactly one waiter becomes the
// new planner and the rest keep waiting on it.
func TestBeginLookupPlannerFailure(t *testing.T) {
	c := New()
	ctx := context.Background()
	_, _, planning, err := c.BeginLookup(ctx, "sig")
	if err != nil || planning == nil {
		t.Fatalf("first BeginLookup: %v, %v", planning, err)
	}

	const waiters = 3
	tokens := make(chan *Planning, waiters)
	var wg sync.WaitGroup
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			defer wg.Done()
			e, _, p, err := c.BeginLookup(ctx, "sig")
			if err != nil {
				t.Error(err)
				return
			}
			if p != nil {
				// This waiter was promoted to planner.
				tokens <- p
				return
			}
			if e == nil {
				t.Error("waiter resolved with neither entry nor token")
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	planning.Finish() // planner died without storing

	// Exactly one waiter is promoted; it plans and stores, releasing
	// the others as hits.
	p := <-tokens
	c.Store("sig", &Entry{Source: "greedy"})
	p.Finish()
	wg.Wait()
	if len(tokens) != 0 {
		t.Fatalf("%d extra waiters promoted to planner", len(tokens))
	}
	if c.Len() != 1 {
		t.Fatalf("cache len = %d, want 1", c.Len())
	}
}

// TestBeginLookupContextCancel pins that a waiting BeginLookup honors
// cancellation without corrupting the inflight table.
func TestBeginLookupContextCancel(t *testing.T) {
	c := New()
	_, _, planning, err := c.BeginLookup(context.Background(), "sig")
	if err != nil || planning == nil {
		t.Fatal("first lookup should miss with a token")
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, _, err := c.BeginLookup(ctx, "sig")
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The original planner is unaffected.
	c.Store("sig", &Entry{})
	planning.Finish()
	if e, outcome, p, err := c.BeginLookup(context.Background(), "sig"); e == nil || outcome != "hit" || p != nil || err != nil {
		t.Fatalf("post-cancel lookup = %v, %q, %v, %v", e, outcome, p, err)
	}
}

// TestBeginLookupNilCache pins the nil-cache tolerance contract.
func TestBeginLookupNilCache(t *testing.T) {
	var c *Cache
	e, outcome, p, err := c.BeginLookup(context.Background(), "sig")
	if e != nil || outcome != "miss" || p != nil || err != nil {
		t.Fatalf("nil cache BeginLookup = %v, %q, %v, %v", e, outcome, p, err)
	}
	p.Finish() // nil token must be safe
}
