// Package plancache makes planning a per-connection cost instead of a
// per-query cost. It provides the two halves of the fast path:
//
//   - a signature-keyed cache of finished plans. The key fingerprints
//     everything the planners consume — schema shape, chunk grid,
//     skew-histogram fingerprint (internal/stats), node count, and the
//     planner-relevant options — so a plan is only ever reused for the
//     planning problem it was computed for. Per Skew Strikes Back
//     (PAPERS.md), a cached plan is only as good as the skew statistics
//     it was computed against: re-ingesting the same schema under a
//     different skew profile changes the histogram fingerprint and
//     misses by construction. Hits are still revalidated by re-costing
//     the cached assignment against the current slice statistics, with
//     a drift threshold guarding against fingerprint collisions and
//     manually seeded entries.
//
//   - a regret-based policy choosing between the greedy planner pair
//     (logical.GreedyChoose + physical.GreedyPlanner: center-of-gravity
//     seed, one bounded Tabu polish sweep, no ILP) and the configured
//     full planner. The greedy plan is always computed first — it costs
//     microseconds — and kept unless its predicted regret against the
//     problem's analytic lower bound (physical.LowerBound) exceeds ε,
//     in which case the full planner runs and the fallback is recorded.
package plancache

import (
	"context"
	"fmt"
	"sync"

	"shufflejoin/internal/logical"
	"shufflejoin/internal/physical"
)

// Signature identifies a planning problem. Equal signatures mean the
// planners would see identical inputs: same schemas and predicate, same
// chunk grids and per-chunk cell counts, same skew histograms, same node
// count, and same planning options. Built by pipeline's signature
// computation from catalog fingerprints (cluster.DataFingerprint).
type Signature string

// Entry is one cached planning outcome: the chosen logical plan, the
// selectivity it was priced with, and the physical assignment with its
// modeled cost at store time.
type Entry struct {
	Logical     logical.Plan
	Selectivity float64
	Assignment  physical.Assignment
	Model       physical.Breakdown
	// Source records how the stored plan was produced ("greedy" or
	// "full"), so a revalidated hit can report the provenance chain.
	Source string
}

// Stats are the cache's monotone counters, mirrored into internal/obs by
// the pipeline integration.
type Stats struct {
	Hits       int64 // signature present
	Misses     int64 // signature absent
	Rejects    int64 // hit whose revalidation failed (drift past threshold)
	Suppressed int64 // duplicate planning runs avoided by singleflight waits
}

// Cache is a concurrency-safe plan cache. The zero value is not usable;
// call New. A nil *Cache is tolerated by every method and behaves as an
// always-miss cache, so callers can thread an optional cache without
// branching.
type Cache struct {
	mu       sync.Mutex
	entries  map[Signature]*Entry
	inflight map[Signature]*planCall
	stats    Stats
}

// planCall is one in-progress planning run other queries with the same
// signature wait on instead of planning themselves.
type planCall struct {
	done chan struct{}
}

// New returns an empty plan cache.
func New() *Cache {
	return &Cache{
		entries:  make(map[Signature]*Entry),
		inflight: make(map[Signature]*planCall),
	}
}

// Lookup returns the entry stored under sig, counting a hit or a miss.
// The entry is shared — callers must treat it as immutable.
func (c *Cache) Lookup(sig Signature) (*Entry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[sig]
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return e, ok
}

// Planning is a singleflight token held by the one query planning a
// signature. Finish must be called exactly once when the plan has been
// Stored (or planning failed/was abandoned); it is idempotent and
// nil-safe, so callers may defer it unconditionally.
type Planning struct {
	c    *Cache
	sig  Signature
	call *planCall
	once sync.Once
}

// Finish ends the planning run: the signature's waiters wake and
// re-check the cache. If the planner Stored its entry first, they all
// hit; if it errored out, one waiter claims a fresh Planning token and
// becomes the new planner.
func (p *Planning) Finish() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		p.c.mu.Lock()
		if p.c.inflight[p.sig] == p.call {
			delete(p.c.inflight, p.sig)
		}
		p.c.mu.Unlock()
		close(p.call.done)
	})
}

// BeginLookup is Lookup with singleflight duplicate suppression for
// concurrent misses: K queries missing on the same signature plan once
// and share the entry, instead of all K planning and racing to Store.
//
// The outcome string is "hit" (entry present), "suppressed" (entry
// present, obtained by waiting on a concurrent planner — counted in
// Stats.Suppressed), or "miss" (this query must plan; the returned
// Planning token is non-nil and must be Finished after Store, or on
// error, so waiters wake). ctx bounds the wait; on cancellation the
// error is returned with no entry and no token.
func (c *Cache) BeginLookup(ctx context.Context, sig Signature) (*Entry, string, *Planning, error) {
	if c == nil {
		return nil, "miss", nil, nil
	}
	waited := false
	for {
		c.mu.Lock()
		if e, ok := c.entries[sig]; ok {
			c.stats.Hits++
			outcome := "hit"
			if waited {
				c.stats.Suppressed++
				outcome = "suppressed"
			}
			c.mu.Unlock()
			return e, outcome, nil, nil
		}
		call, ok := c.inflight[sig]
		if !ok {
			call = &planCall{done: make(chan struct{})}
			if c.inflight == nil {
				c.inflight = make(map[Signature]*planCall)
			}
			c.inflight[sig] = call
			c.stats.Misses++
			c.mu.Unlock()
			return nil, "miss", &Planning{c: c, sig: sig, call: call}, nil
		}
		c.mu.Unlock()
		select {
		case <-call.done:
			waited = true
		case <-ctx.Done():
			return nil, "", nil, ctx.Err()
		}
	}
}

// Store records a planning outcome under sig, replacing any prior entry.
func (c *Cache) Store(sig Signature, e *Entry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[sig] = e
}

// RecordReject counts a revalidation rejection and evicts the stale
// entry so the replacement stored by the replanning query wins.
func (c *Cache) RecordReject(sig Signature) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Rejects++
	delete(c.entries, sig)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// DefaultMaxDrift is the revalidation threshold: a cached assignment
// whose re-costed makespan exceeds its stored makespan by more than this
// fraction is rejected. When the signature machinery works, a hit's
// statistics are identical and measured drift is exactly zero; any
// nonzero drift means the entry no longer describes the data.
const DefaultMaxDrift = 0.05

// Revalidate re-costs a cached assignment against the current planning
// problem — the cheap O(N·K) hit-path check. It returns the fresh cost
// breakdown and whether the entry is still usable: the assignment must
// be shape-valid for the problem, and its re-costed total must stay
// within maxDrift (<= 0 selects DefaultMaxDrift) of the total it was
// stored with.
func Revalidate(e *Entry, pr *physical.Problem, maxDrift float64) (physical.Breakdown, bool) {
	if maxDrift <= 0 {
		maxDrift = DefaultMaxDrift
	}
	if e == nil || !pr.Valid(e.Assignment) {
		return physical.Breakdown{}, false
	}
	bd := pr.Evaluate(e.Assignment)
	if e.Model.Total <= 0 {
		return bd, bd.Total <= 0
	}
	return bd, bd.Total <= (1+maxDrift)*e.Model.Total
}

// DefaultEpsilon is the regret policy's acceptance threshold, calibrated
// against the Zipf α sweep (expdriver -exp planquality): the greedy
// planner's makespan stays within 10% of the full planner's at every
// swept skew level, so predicted regret beyond that signals a problem
// shape the polish pass cannot balance and the full planner should see.
const DefaultEpsilon = 0.10

// Policy is the data-driven greedy/full decision.
type Policy struct {
	// Epsilon is the largest acceptable predicted regret; <= 0 selects
	// DefaultEpsilon.
	Epsilon float64
	// Polish and Workers configure the greedy planner's bounded Tabu
	// polish pass (see physical.GreedyPlanner).
	Polish  int
	Workers int
}

func (p Policy) epsilon() float64 {
	if p.Epsilon <= 0 {
		return DefaultEpsilon
	}
	return p.Epsilon
}

// PredictedRegret is the policy's quality signal: how far a plan's
// modeled makespan sits above the problem's analytic lower bound,
// as a fraction (0 = provably optimal). The true regret against the
// full planner is unobservable without running it; the lower bound
// over-approximates it, so filtering on the prediction only ever errs
// toward running the full planner.
func PredictedRegret(pr *physical.Problem, total float64) float64 {
	lb := physical.LowerBound(pr)
	if lb <= 0 {
		if total <= 0 {
			return 0
		}
		return total
	}
	if r := total/lb - 1; r > 0 {
		return r
	}
	return 0 // clamp float rounding when the plan sits exactly on the bound
}

// Decision reports how the policy planned one query.
type Decision struct {
	Result physical.Result
	Regret float64 // predicted regret of the greedy plan
	// FellBack is true when predicted regret exceeded ε and Result came
	// from the full planner instead.
	FellBack bool
}

// PlanPhysical runs the greedy fast path and, when its predicted regret
// exceeds the policy's ε, falls back to the supplied full planner.
func (p Policy) PlanPhysical(pr *physical.Problem, full physical.Planner) (Decision, error) {
	greedy, err := physical.GreedyPlanner{Polish: p.Polish, Workers: p.Workers}.Plan(pr)
	if err != nil {
		return Decision{}, err
	}
	d := Decision{Result: greedy, Regret: PredictedRegret(pr, greedy.Model.Total)}
	if d.Regret <= p.epsilon() {
		return d, nil
	}
	if full == nil {
		return d, nil
	}
	res, err := full.Plan(pr)
	if err != nil {
		return Decision{}, fmt.Errorf("plancache: regret fallback: %w", err)
	}
	// Keep whichever plan models cheaper: the full planner is a search
	// under a budget, not an oracle, and must never make a query worse
	// than the fast path it replaced.
	if res.Model.Total <= greedy.Model.Total {
		d.Result = res
		d.FellBack = true
	}
	return d, nil
}
