package plancache

import (
	"math/rand"
	"testing"
	"time"

	"shufflejoin/internal/join"
	"shufflejoin/internal/physical"
)

func testProblem(t *testing.T, seed int64, n, k int) *physical.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	left := make([][]int64, n)
	right := make([][]int64, n)
	for i := 0; i < n; i++ {
		l := make([]int64, k)
		r := make([]int64, k)
		for j := 0; j < k; j++ {
			l[j] = rng.Int63n(200)
			r[j] = rng.Int63n(200)
		}
		left[i], right[i] = l, r
	}
	pr, err := physical.NewProblem(k, join.Hash, left, right, physical.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestCacheHitMissCounters(t *testing.T) {
	c := New()
	if _, ok := c.Lookup("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Store("a", &Entry{Source: "full"})
	e, ok := c.Lookup("a")
	if !ok || e.Source != "full" {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	if _, ok := c.Lookup("b"); ok {
		t.Fatal("hit on missing signature")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Rejects != 0 {
		t.Errorf("Stats = %+v, want 1 hit, 2 misses", s)
	}
	c.RecordReject("a")
	if c.Stats().Rejects != 1 {
		t.Error("RecordReject not counted")
	}
	if _, ok := c.Lookup("a"); ok {
		t.Error("rejected entry not evicted")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after eviction", c.Len())
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	c.Store("a", &Entry{})
	if _, ok := c.Lookup("a"); ok {
		t.Fatal("nil cache returned a hit")
	}
	c.RecordReject("a")
	if c.Stats() != (Stats{}) || c.Len() != 0 {
		t.Error("nil cache should have zero stats")
	}
}

func TestRevalidateAcceptsUnchangedProblem(t *testing.T) {
	pr := testProblem(t, 1, 32, 4)
	res, err := physical.GreedyPlanner{}.Plan(pr)
	if err != nil {
		t.Fatal(err)
	}
	e := &Entry{Assignment: res.Assignment, Model: res.Model}
	bd, ok := Revalidate(e, pr, 0)
	if !ok {
		t.Fatal("unchanged problem rejected")
	}
	if bd != res.Model {
		t.Errorf("re-cost %+v differs from stored %+v on identical stats", bd, res.Model)
	}
}

func TestRevalidateRejectsDriftAndShapeMismatch(t *testing.T) {
	pr := testProblem(t, 1, 32, 4)
	res, err := physical.GreedyPlanner{}.Plan(pr)
	if err != nil {
		t.Fatal(err)
	}
	// A stale entry whose stored cost pretends to be far cheaper than
	// the assignment's true cost on the current data: drift past 5%.
	stale := &Entry{Assignment: res.Assignment, Model: physical.Breakdown{Total: res.Model.Total / 10}}
	if _, ok := Revalidate(stale, pr, 0); ok {
		t.Error("10x drift accepted")
	}
	// Wrong shape: assignment for another unit count.
	short := &Entry{Assignment: res.Assignment[:8], Model: res.Model}
	if _, ok := Revalidate(short, pr, 0); ok {
		t.Error("truncated assignment accepted")
	}
	// Node out of range for a smaller cluster.
	pr2 := testProblem(t, 1, 32, 2)
	if _, ok := Revalidate(&Entry{Assignment: res.Assignment, Model: res.Model}, pr2, 0); ok {
		t.Error("assignment naming node 3 accepted on a 2-node problem")
	}
	if _, ok := Revalidate(nil, pr, 0); ok {
		t.Error("nil entry accepted")
	}
}

func TestPolicyKeepsGreedyWhenRegretSmall(t *testing.T) {
	// Uniform data: greedy is at the lower bound, regret ~0, no fallback.
	k, n := 4, 32
	left := make([][]int64, n)
	right := make([][]int64, n)
	for i := 0; i < n; i++ {
		l := make([]int64, k)
		r := make([]int64, k)
		l[i%k], r[i%k] = 100, 100
		left[i], right[i] = l, r
	}
	pr, err := physical.NewProblem(k, join.Merge, left, right, physical.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	d, err := Policy{}.PlanPhysical(pr, physical.ILPPlanner{Budget: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if d.FellBack {
		t.Errorf("uniform data fell back to ILP (regret %v)", d.Regret)
	}
	if d.Result.Planner != "Greedy" {
		t.Errorf("Planner = %q", d.Result.Planner)
	}
	if d.Regret > 1e-9 {
		t.Errorf("regret = %v on uniform data, want ~0", d.Regret)
	}
}

func TestPolicyFallsBackOnHighRegret(t *testing.T) {
	pr := testProblem(t, 7, 48, 4)
	// An absurdly strict ε forces the fallback path regardless of the
	// greedy plan's real quality.
	d, err := Policy{Epsilon: 1e-12}.PlanPhysical(pr, physical.TabuPlanner{})
	if err != nil {
		t.Fatal(err)
	}
	greedy, _ := physical.GreedyPlanner{}.Plan(pr)
	if d.Regret != PredictedRegret(pr, greedy.Model.Total) {
		t.Errorf("Decision.Regret = %v, want the greedy plan's", d.Regret)
	}
	if d.Regret > 1e-12 && !d.FellBack && d.Result.Model.Total > greedy.Model.Total {
		t.Error("high regret, no fallback, and a worse plan")
	}
	// The decision never models worse than the pure greedy plan.
	if d.Result.Model.Total > greedy.Model.Total+1e-9 {
		t.Errorf("policy result %v worse than greedy %v", d.Result.Model.Total, greedy.Model.Total)
	}
}

func TestPolicyNilFullPlannerKeepsGreedy(t *testing.T) {
	pr := testProblem(t, 3, 16, 4)
	d, err := Policy{Epsilon: 1e-12}.PlanPhysical(pr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.FellBack || d.Result.Planner != "Greedy" {
		t.Errorf("nil full planner: %+v", d)
	}
}
