// Package servebench is the closed-loop concurrent-serving benchmark:
// it replays a mixed interactive/scan AQL workload through the facade's
// scheduler (DB.Serve) at increasing concurrency levels and reports
// throughput and latency percentiles per class. It lives outside
// internal/bench because it drives the public facade — the scheduler,
// admission control, and per-query options are facade surface — and the
// root package's own benchmarks import internal/bench.
//
// The workload is the serving shape the paper's engine would face in a
// multi-tenant deployment: many small latency-sensitive joins
// (interactive class) mixed with fewer large skewed analytic joins
// (scan class), every query running with sequential internal
// parallelism so cross-query concurrency is the only parallelism —
// the closed-loop speedup from 1 to N workers then measures the
// scheduler's ability to keep N queries genuinely in flight.
package servebench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"shufflejoin"
)

// Config parameterizes the serving benchmark. Zero fields select
// defaults.
type Config struct {
	// Nodes is the simulated cluster size (default 4).
	Nodes int
	// Queries is the job count replayed per concurrency level
	// (default 2000).
	Queries int
	// Mix is the interactive fraction of the workload (default 0.75).
	Mix float64
	// Levels are the closed-loop concurrency levels (default 1, 4, 16).
	Levels []int
	// InteractiveCells / ScanCells size the two array pairs
	// (defaults 2000 and 24000 cells per side).
	InteractiveCells int
	ScanCells        int
	// PoolBytes is the scheduler's shared memory pool (default 256 MiB).
	PoolBytes int64
	// Timeout bounds each query (0 = none).
	Timeout time.Duration
	// Seed makes the workload mix deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Queries == 0 {
		c.Queries = 2000
	}
	if c.Mix == 0 {
		c.Mix = 0.75
	}
	if len(c.Levels) == 0 {
		c.Levels = []int{1, 4, 16}
	}
	if c.InteractiveCells == 0 {
		c.InteractiveCells = 2000
	}
	if c.ScanCells == 0 {
		c.ScanCells = 24000
	}
	if c.PoolBytes == 0 {
		c.PoolBytes = 256 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Latency is a latency digest in milliseconds.
type Latency struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func toLatency(s shufflejoin.LatencySummary) Latency {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return Latency{
		Count:  s.Count,
		MeanMs: ms(s.Mean),
		P50Ms:  ms(s.P50),
		P95Ms:  ms(s.P95),
		P99Ms:  ms(s.P99),
		MaxMs:  ms(s.Max),
	}
}

// Row is one concurrency level's outcome.
type Row struct {
	Concurrency int      `json:"concurrency"`
	Completed   int64    `json:"completed"`
	Failed      int64    `json:"failed"`
	WallSeconds float64  `json:"wall_seconds"`
	QPS         float64  `json:"qps"`
	Overall     Latency  `json:"overall"`
	Interactive Latency  `json:"interactive"`
	Scan        Latency  `json:"scan"`
	Errors      []string `json:"errors,omitempty"`
}

const (
	qInteractive = "SELECT IA.v, IB.w FROM IA, IB WHERE IA.i = IB.i"
	qScan        = "SELECT SA.v, SB.w FROM SA, SB WHERE SA.i = SB.i"
)

// buildPair creates and fills one joinable array pair with unique
// coordinates per side (so join output is linear in the input, never a
// hotspot cross product). When skew > 1, cells pile into
// Zipf-distributed chunks — the paper's skew shape: chunk-density
// imbalance, with full chunks spilling to the next — while a uniform
// pair spreads cells evenly.
func buildPair(db *shufflejoin.DB, a, b string, cells int, skew float64, seed int64) error {
	const nchunks = 8
	domain := int64(cells) * 2
	chunk := domain / nchunks
	if chunk < 1 {
		chunk = 1
	}
	for i, name := range []string{a, b} {
		attr := "v"
		if i == 1 {
			attr = "w"
		}
		ar, err := db.CreateArray(fmt.Sprintf("%s<%s:int>[i=1,%d,%d]", name, attr, domain, chunk))
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(seed + int64(i)))
		var zipf *rand.Zipf
		if skew > 1 {
			zipf = rand.NewZipf(rng, skew, 1, nchunks-1)
		}
		// fill[k] is the next free offset in chunk k; a full chunk
		// spills into the following one.
		var fill [nchunks]int64
		for j := 0; j < cells; j++ {
			k := j % nchunks
			if zipf != nil {
				k = int(zipf.Uint64())
			}
			for fill[k] >= chunk {
				k = (k + 1) % nchunks
			}
			coord := int64(k)*chunk + fill[k] + 1
			fill[k]++
			if err := ar.Insert([]int64{coord}, rng.Int63n(1000)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Run executes the benchmark: one DB, one workload, replayed through a
// fresh scheduler per concurrency level (so per-level admission
// counters and queue state are independent). Every query runs with
// sequential internal parallelism and a shared plan cache — the first
// execution of each template plans, every later one replays the cached
// assignment (concurrent duplicates collapse via the cache's
// singleflight), so the measured region is steady-state serving.
func Run(cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	db, err := shufflejoin.Open(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	if err := buildPair(db, "IA", "IB", cfg.InteractiveCells, 0, cfg.Seed*7+1); err != nil {
		return nil, err
	}
	if err := buildPair(db, "SA", "SB", cfg.ScanCells, 1.2, cfg.Seed*7+3); err != nil {
		return nil, err
	}

	// One deterministic job mix, replayed identically at every level.
	rng := rand.New(rand.NewSource(cfg.Seed))
	type tmpl struct {
		query, class string
	}
	mix := make([]tmpl, cfg.Queries)
	for i := range mix {
		if rng.Float64() < cfg.Mix {
			mix[i] = tmpl{qInteractive, "interactive"}
		} else {
			mix[i] = tmpl{qScan, "scan"}
		}
	}

	var rows []Row
	for _, level := range cfg.Levels {
		cache := shufflejoin.NewPlanCache()
		opts := []shufflejoin.QueryOption{
			shufflejoin.WithParallelism(1),
			shufflejoin.WithPlanCache(cache),
		}
		// Warm both templates serially: seals the arrays and populates
		// the plan cache, so the timed region measures steady-state
		// serving, not first-query planning.
		for _, q := range []string{qInteractive, qScan} {
			if _, err := db.Query(q, opts...); err != nil {
				return nil, fmt.Errorf("servebench: warmup %q: %w", q, err)
			}
		}
		s := db.NewScheduler(shufflejoin.SchedulerConfig{
			MaxQueries:      level,
			MemoryPoolBytes: cfg.PoolBytes,
		})
		jobs := make([]shufflejoin.ServeJob, len(mix))
		for i, t := range mix {
			jobs[i] = shufflejoin.ServeJob{Query: t.query, Class: t.class, Options: opts}
		}
		rep, err := db.Serve(jobs, shufflejoin.ServeOptions{
			Concurrency: level,
			Scheduler:   s,
			Timeout:     cfg.Timeout,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Concurrency: level,
			Completed:   rep.Completed,
			Failed:      rep.Failed,
			WallSeconds: rep.Wall.Seconds(),
			QPS:         rep.QPS,
			Overall:     toLatency(rep.Latency),
			Interactive: toLatency(rep.PerClass["interactive"]),
			Scan:        toLatency(rep.PerClass["scan"]),
			Errors:      rep.Errors,
		})
	}
	return rows, nil
}

// Render writes the benchmark rows as an aligned text table.
func Render(w io.Writer, rows []Row) {
	title := "Concurrent serving: closed-loop throughput and latency"
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(w, "%-6s %9s %7s %9s %10s | %-21s | %-21s\n",
		"conc", "queries", "failed", "QPS", "wall(s)", "interactive p50/p99 ms", "scan p50/p99 ms")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %9d %7d %9.1f %10.2f | %9.2f / %9.2f | %9.2f / %9.2f\n",
			r.Concurrency, r.Completed, r.Failed, r.QPS, r.WallSeconds,
			r.Interactive.P50Ms, r.Interactive.P99Ms, r.Scan.P50Ms, r.Scan.P99Ms)
	}
	fmt.Fprintln(w)
}

// Gate thresholds (exported so CI output can cite them).
const (
	// SpeedupMin is the minimum 4-way closed-loop throughput multiple
	// over serial.
	SpeedupMin = 2.0
	// P99FactorLimit bounds the interactive p99 at concurrency 4 to
	// this multiple of its serial p99 (higher levels deliberately
	// oversubscribe the machine and are reported, not gated) ...
	P99FactorLimit = 25.0
	// ... with P99FloorMs as an absolute floor on that limit, so
	// microsecond-class serial p99s on fast machines don't turn jitter
	// into failures.
	P99FloorMs = 250.0
)

// Gate enforces the serving acceptance criteria: no failed queries, a
// >= SpeedupMin throughput multiple from concurrency 1 to 4, and an
// interactive p99 at concurrency 4 within P99FactorLimit x the serial
// p99 (floored at P99FloorMs).
//
// The queries are pure CPU work (the cluster and its network are
// simulated), so the achievable closed-loop speedup is bounded by the
// machine: on fewer than 4 CPUs the 2x multiple is physically
// impossible and the throughput check degrades to a no-regression bound
// (concurrency must not cost throughput).
func Gate(rows []Row) error {
	byLevel := make(map[int]Row, len(rows))
	for _, r := range rows {
		if r.Failed > 0 {
			return fmt.Errorf("servebench: %d failed queries at concurrency %d: %v", r.Failed, r.Concurrency, r.Errors)
		}
		byLevel[r.Concurrency] = r
	}
	base, okBase := byLevel[1]
	four, okFour := byLevel[4]
	if !okBase || !okFour {
		return fmt.Errorf("servebench: gate needs concurrency levels 1 and 4 (have %v)", levelsOf(rows))
	}
	need := SpeedupMin
	if cpus := runtime.GOMAXPROCS(0); cpus < 4 {
		need = 0.85 // no-regression bound on machines that cannot parallelize
	}
	if four.QPS < need*base.QPS {
		return fmt.Errorf("servebench: 4-way throughput %.1f qps < %.2fx serial %.1f qps (%d CPUs)",
			four.QPS, need, base.QPS, runtime.GOMAXPROCS(0))
	}
	limit := P99FactorLimit * base.Interactive.P99Ms
	if limit < P99FloorMs {
		limit = P99FloorMs
	}
	if four.Interactive.P99Ms > limit {
		return fmt.Errorf("servebench: interactive p99 %.1fms at concurrency 4 exceeds limit %.1fms (%.0fx serial p99 %.2fms, floor %.0fms)",
			four.Interactive.P99Ms, limit, P99FactorLimit, base.Interactive.P99Ms, P99FloorMs)
	}
	return nil
}

func levelsOf(rows []Row) []int {
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = r.Concurrency
	}
	return out
}
