package par

import (
	"sync"
	"testing"
)

func TestPoolGetPut(t *testing.T) {
	p := NewPool[[]int](4)
	if _, ok := p.Get(); ok {
		t.Fatal("empty pool returned an item")
	}
	p.Put(make([]int, 0, 8))
	v, ok := p.Get()
	if !ok || cap(v) != 8 {
		t.Fatalf("Get = cap %d, %v; want cap 8, true", cap(v), ok)
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", p.Len())
	}
}

func TestPoolBounded(t *testing.T) {
	p := NewPool[int](2)
	// Overfill far past every shard's cap; the retained total must not
	// exceed shards × perShard.
	for i := 0; i < 10000; i++ {
		p.Put(i)
	}
	if n, max := p.Len(), 2*len(p.shards); n > max {
		t.Fatalf("pool retains %d items, cap is %d", n, max)
	}
}

func TestPoolZeroesFreedSlots(t *testing.T) {
	p := NewPool[*int](4)
	x := new(int)
	p.Put(x)
	if _, ok := p.Get(); !ok {
		t.Fatal("lost the pooled item")
	}
	// The slot the item occupied must no longer reference it.
	for i := range p.shards {
		s := &p.shards[i]
		for _, v := range s.items[:cap(s.items)] {
			if v == x {
				t.Fatal("freed slot still references the item")
			}
		}
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool[[]byte](16)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b, ok := p.Get()
				if !ok {
					b = make([]byte, 0, 64)
				}
				b = append(b[:0], 1, 2, 3)
				p.Put(b)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkPoolContended measures Get/Put round-trips under full
// parallelism — the shape of 16-way concurrent query serving hitting the
// shared scratch pools.
func BenchmarkPoolContended(b *testing.B) {
	p := NewPool[[]byte](64)
	for i := 0; i < 256; i++ {
		p.Put(make([]byte, 0, 1024))
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v, ok := p.Get()
			if !ok {
				v = make([]byte, 0, 1024)
			}
			p.Put(v)
		}
	})
}
