package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-5); got != want {
		t.Errorf("Workers(-5) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestDoRunsEveryWorker(t *testing.T) {
	for _, w := range []int{1, 2, 5} {
		seen := make([]atomic.Int64, w)
		Do(w, func(id int) { seen[id].Add(1) })
		for id := range seen {
			if seen[id].Load() != 1 {
				t.Errorf("workers=%d: worker %d ran %d times", w, id, seen[id].Load())
			}
		}
	}
}

// Property: ForEach visits every index exactly once, for any size and
// worker count.
func TestForEachVisitsEachIndexOnce(t *testing.T) {
	f := func(n uint8, workers uint8) bool {
		size := int(n % 100)
		w := int(workers%8) + 1
		visits := make([]atomic.Int64, size)
		ForEach(size, w, func(i int) { visits[i].Add(1) })
		for i := range visits {
			if visits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: ForChunks covers [0, n) with disjoint contiguous ranges.
func TestForChunksPartitionsRange(t *testing.T) {
	f := func(n uint8, workers uint8) bool {
		size := int(n % 200)
		w := int(workers%8) + 1
		visits := make([]atomic.Int64, size)
		ForChunks(size, w, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				visits[i].Add(1)
			}
		})
		for i := range visits {
			if visits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
