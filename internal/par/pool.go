package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded, sharded free list for hot-path scratch objects,
// shared across concurrent queries. It differs from sync.Pool in two
// ways that matter under sustained multi-query load:
//
//   - retention: sync.Pool is drained by the garbage collector, so a
//     serving workload that allocates (output arrays, reports) sees its
//     scratch pools emptied every GC cycle and re-pays the allocation
//     spikes. A Pool retains its items until displaced, keeping the
//     steady-state scratch paths at zero allocations per operation even
//     with GC pressure from neighboring queries.
//   - typing: items are stored as T, not interface{}, so value types
//     (e.g. slice headers) are pooled without a boxing allocation per
//     Put.
//
// The free list is sharded to roughly one shard per CPU with a
// round-robin shard pick, so 16-way concurrent Get/Put traffic does not
// serialize on one mutex. Each shard holds at most perShard items;
// excess Puts are dropped for the collector, which bounds the pool's
// footprint. The zero Pool is not usable; construct with NewPool.
type Pool[T any] struct {
	shards []poolShard[T]
	mask   uint32
	ctr    atomic.Uint32
}

type poolShard[T any] struct {
	mu    sync.Mutex
	items []T
	cap   int
	// Pad each shard past a cache line so neighboring shard locks do
	// not false-share.
	_ [24]byte
}

// NewPool returns a pool whose shards each retain up to perShard items
// (<= 0 selects 32). The shard count is the smallest power of two
// covering the machine's CPUs.
func NewPool[T any](perShard int) *Pool[T] {
	if perShard <= 0 {
		perShard = 32
	}
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	p := &Pool[T]{shards: make([]poolShard[T], n), mask: uint32(n - 1)}
	for i := range p.shards {
		p.shards[i].cap = perShard
	}
	return p
}

// Get pops an item from one shard, reporting whether one was available.
// On false the caller allocates; the zero T returned alongside is
// meaningless.
func (p *Pool[T]) Get() (T, bool) {
	s := &p.shards[p.ctr.Add(1)&p.mask]
	s.mu.Lock()
	if n := len(s.items); n > 0 {
		v := s.items[n-1]
		var zero T
		s.items[n-1] = zero // release the reference to the collector
		s.items = s.items[:n-1]
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	var zero T
	return zero, false
}

// Put offers an item back to one shard; a full shard drops it. The
// caller must not use v afterward.
func (p *Pool[T]) Put(v T) {
	s := &p.shards[p.ctr.Add(1)&p.mask]
	s.mu.Lock()
	if len(s.items) < s.cap {
		s.items = append(s.items, v)
	}
	s.mu.Unlock()
}

// Len reports the pooled items across all shards (for tests).
func (p *Pool[T]) Len() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}
