// Package par holds the small worker-pool primitives shared by the
// parallel planning and execution paths. Every construct here is
// deterministic in its *results*: parallelism only changes which goroutine
// performs a piece of work, never what the piece of work computes, and
// callers merge per-worker results with explicit deterministic tie-breaks.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob to an effective worker count:
// n >= 1 is used as given (1 means sequential), and n <= 0 means "auto" —
// one worker per available CPU.
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs fn(w) for w in [0, workers) concurrently and waits for all of
// them. With workers <= 1 it calls fn(0) inline — no goroutine is spawned,
// so the sequential path stays allocation- and scheduler-free.
func Do(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n), distributing indices over up to
// `workers` goroutines via an atomic counter. Each index runs exactly once;
// with workers <= 1 the loop runs inline in index order.
func ForEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	Do(workers, func(int) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	})
}

// ForChunks splits [0, n) into at most `workers` contiguous half-open
// ranges and runs fn(lo, hi, w) for each — one range per worker, so
// per-worker partial results can be merged deterministically by worker
// index afterwards. With workers <= 1 it calls fn(0, n, 0) inline.
func ForChunks(n, workers int, fn func(lo, hi, w int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n, 0)
		}
		return
	}
	Do(workers, func(w int) {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		if lo < hi {
			fn(lo, hi, w)
		}
	})
}
