package afl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shufflejoin/internal/array"
)

// figure1 builds the paper's Figure 1 array.
func figure1(t *testing.T) *array.Array {
	t.Helper()
	a := array.MustNew(array.MustParseSchema("A<v1:int, v2:float>[i=1,6,3, j=1,6,3]"))
	cells := []struct {
		i, j int64
		v1   int64
		v2   float64
	}{
		{1, 2, 5, 3.0}, {1, 3, 1, 4.7},
		{2, 1, 1, 0.2}, {2, 2, 7, 1.3},
		{3, 1, 1, 0.9}, {3, 2, 0, 0.4}, {3, 3, 0, 7.5},
		{4, 1, 6, 1.4}, {4, 2, 3, 6.9},
		{5, 1, 3, 0.8}, {5, 2, 3, 1.4}, {5, 3, 6, 9.1},
		{6, 1, 9, 2.7}, {6, 2, 5, 7.9}, {6, 3, 5, 8.7},
	}
	for _, c := range cells {
		a.MustPut([]int64{c.i, c.j}, []array.Value{array.IntValue(c.v1), array.FloatValue(c.v2)})
	}
	a.SortAll()
	return a
}

func TestFilterPaperExample(t *testing.T) {
	// filter(A, v1 > 5): the Section 2.2 example query.
	a := figure1(t)
	out, err := Eval(MustParse("filter(A, v1 > 5)"), Env{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	// v1 > 5: cells (2,2)=7, (4,1)=6, (5,3)=6, (6,1)=9.
	if out.CellCount() != 4 {
		t.Errorf("filter kept %d cells, want 4", out.CellCount())
	}
	out.Scan(func(_ []int64, attrs []array.Value) bool {
		if attrs[0].AsInt() <= 5 {
			t.Errorf("cell with v1=%v survived the filter", attrs[0])
		}
		return true
	})
}

func TestFilterOnDimension(t *testing.T) {
	a := figure1(t)
	out, err := Eval(MustParse("filter(A, i <= 2)"), Env{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	if out.CellCount() != 4 {
		t.Errorf("got %d cells, want 4", out.CellCount())
	}
}

func TestFilterOperators(t *testing.T) {
	a := figure1(t)
	cases := map[string]int64{
		"filter(A, v1 = 1)":   3,
		"filter(A, v1 != 1)":  12,
		"filter(A, v1 < 1)":   2,
		"filter(A, v1 >= 9)":  1,
		"filter(A, v2 > 7.0)": 4,
	}
	for src, want := range cases {
		out, err := Eval(MustParse(src), Env{"A": a})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if out.CellCount() != want {
			t.Errorf("%s: %d cells, want %d", src, out.CellCount(), want)
		}
	}
}

func TestProjectVerticalPartition(t *testing.T) {
	a := figure1(t)
	out, err := Eval(MustParse("project(A, v2)"), Env{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Schema.Attrs) != 1 || out.Schema.Attrs[0].Name != "v2" {
		t.Errorf("projected schema = %v", out.Schema)
	}
	if out.CellCount() != a.CellCount() {
		t.Errorf("project changed cell count")
	}
	if _, err := Project(a, []string{"nope"}); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestRedimensionPaperExample(t *testing.T) {
	// The Section 2.3.1 example: B<v1,v2,i>[j] redimensioned so attribute
	// i becomes a dimension, making it merge-compatible with A.
	b := array.MustNew(array.MustParseSchema("B<v1:int, v2:float, i:int>[j=1,6,3]"))
	for j := int64(1); j <= 6; j++ {
		b.MustPut([]int64{j}, []array.Value{
			array.IntValue(j * 10), array.FloatValue(float64(j)), array.IntValue(7 - j)})
	}
	out, err := Eval(MustParse("redim(B, <v1:int, v2:float>[i=1,6,3, j=1,6,3])"), Env{"B": b})
	if err != nil {
		t.Fatal(err)
	}
	if out.CellCount() != 6 {
		t.Fatalf("redim produced %d cells", out.CellCount())
	}
	if got := len(out.Schema.Dims); got != 2 {
		t.Fatalf("redim output has %d dims", got)
	}
	// Cell originally at j=1 had attribute i=6: must now live at (6,1).
	vals, ok := out.Get([]int64{6, 1})
	if !ok || vals[0].AsInt() != 10 {
		t.Errorf("cell at (6,1) = %v, %v", vals, ok)
	}
	// Output chunks must be sorted (redim sorts; Table 1).
	for _, ch := range out.Chunks {
		if !ch.IsSortedCOrder() {
			t.Error("redim output chunk not sorted")
		}
	}
}

func TestRechunkDoesNotSort(t *testing.T) {
	a := array.MustNew(array.MustParseSchema("A<v:int>[i=1,100,10]"))
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 100; n++ {
		a.MustPut([]int64{rng.Int63n(100) + 1}, []array.Value{array.IntValue(rng.Int63n(100))})
	}
	// Rechunk to a coarser grid keyed on the attribute.
	out, err := Rechunk(a, array.MustParseSchema("<i:int>[v=0,99,25]"))
	if err != nil {
		t.Fatal(err)
	}
	if out.CellCount() != 100 {
		t.Errorf("rechunk lost cells: %d", out.CellCount())
	}
	sorted := Sort(out)
	for _, ch := range sorted.Chunks {
		if !ch.IsSortedCOrder() {
			t.Error("Sort left an unsorted chunk")
		}
	}
}

func TestMergePaperWorkflow(t *testing.T) {
	// merge(A, redim(B, <...>)) — the Section 2.3.1 workflow, end to end.
	a := figure1(t)
	b := array.MustNew(array.MustParseSchema("B<w1:int, w2:float, i:int>[j=1,6,3]"))
	// Occupy positions matching three of A's occupied cells after redim:
	// (i=1,j=2), (i=3,j=1), (i=6,j=3).
	b.MustPut([]int64{2}, []array.Value{array.IntValue(100), array.FloatValue(1), array.IntValue(1)})
	b.MustPut([]int64{1}, []array.Value{array.IntValue(200), array.FloatValue(2), array.IntValue(3)})
	b.MustPut([]int64{3}, []array.Value{array.IntValue(300), array.FloatValue(3), array.IntValue(6)})
	out, err := Eval(MustParse("merge(A, redim(B, <w1:int, w2:float>[i=1,6,3, j=1,6,3]))"),
		Env{"A": a, "B": b})
	if err != nil {
		t.Fatal(err)
	}
	if out.CellCount() != 3 {
		t.Fatalf("merge produced %d cells, want 3", out.CellCount())
	}
	vals, ok := out.Get([]int64{1, 2})
	if !ok {
		t.Fatal("missing merged cell (1,2)")
	}
	// A attrs then B attrs: v1=5, v2=3.0, w1=100, w2=1.
	if vals[0].AsInt() != 5 || vals[2].AsInt() != 100 {
		t.Errorf("merged cell = %v", vals)
	}
}

func TestMergeRequiresSameShape(t *testing.T) {
	a := figure1(t)
	b := array.MustNew(array.MustParseSchema("B<v:int>[i=1,6,2]"))
	if _, err := Merge(a, b); err == nil {
		t.Error("merge of different shapes should fail")
	}
}

func TestMergeAttributeCollisionRenamed(t *testing.T) {
	a := figure1(t)
	b := figure1(t)
	b.Schema.Name = "B"
	out, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, at := range out.Schema.Attrs {
		if names[at.Name] {
			t.Fatalf("duplicate attribute %q", at.Name)
		}
		names[at.Name] = true
	}
	if out.CellCount() != a.CellCount() {
		t.Errorf("self-merge cells = %d, want %d", out.CellCount(), a.CellCount())
	}
}

func TestCrossCartesianProduct(t *testing.T) {
	a := array.MustNew(array.MustParseSchema("A<v:int>[i=1,4,2]"))
	b := array.MustNew(array.MustParseSchema("B<w:int>[i=1,4,2]"))
	for i := int64(1); i <= 3; i++ {
		a.MustPut([]int64{i}, []array.Value{array.IntValue(i)})
	}
	for i := int64(1); i <= 2; i++ {
		b.MustPut([]int64{i}, []array.Value{array.IntValue(i)})
	}
	out, err := Eval(MustParse("cross(A, B)"), Env{"A": a, "B": b})
	if err != nil {
		t.Fatal(err)
	}
	if out.CellCount() != 6 {
		t.Errorf("cross produced %d cells, want 6", out.CellCount())
	}
	if len(out.Schema.Dims) != 2 {
		t.Errorf("cross dims = %v", out.Schema.Dims)
	}
}

func TestRedimRoundTripProperty(t *testing.T) {
	// Redimensioning dim->attr->dim preserves the cell set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := array.MustNew(array.MustParseSchema("A<v:int>[i=1,50,10]"))
		seen := map[int64]bool{}
		for n := 0; n < 20; n++ {
			c := rng.Int63n(50) + 1
			if seen[c] {
				continue
			}
			seen[c] = true
			a.MustPut([]int64{c}, []array.Value{array.IntValue(c % 7)})
		}
		// i becomes an attribute of a v-dimensioned array, then back.
		mid, err := Redimension(a, array.MustParseSchema("<i:int>[v=0,6,2]"))
		if err != nil {
			return false
		}
		back, err := Redimension(mid, array.MustParseSchema("<v:int>[i=1,50,10]"))
		if err != nil {
			return false
		}
		if back.CellCount() != a.CellCount() {
			return false
		}
		ok := true
		a.Scan(func(coords []int64, attrs []array.Value) bool {
			got, found := back.Get(coords)
			if !found || got[0].AsInt() != attrs[0].AsInt() {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"merge(A, redim(B, <v1:int, v2:float>[i=1,6,3, j=1,6,3]))",
		"filter(A, v1 > 5)",
		"project(sort(A), v1, v2)",
		"cross(scan(A), B)",
	}
	for _, src := range cases {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		again, err := Parse(n.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", n.String(), err)
		}
		if n.String() != again.String() {
			t.Errorf("round trip: %q != %q", n.String(), again.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"frobnicate(A)",
		"merge(A)",
		"filter(A)",
		"filter(A, v1 ~ 3)",
		"project(A)",
		"redim(A, not a schema)",
		"merge(A, B) trailing",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestEvalUnknownArray(t *testing.T) {
	if _, err := Eval(MustParse("sort(Missing)"), Env{}); err == nil {
		t.Error("unknown array should error")
	}
}
