package afl

import (
	"math"
	"testing"

	"shufflejoin/internal/array"
)

func TestBetweenWindow(t *testing.T) {
	a := figure1(t)
	out, err := Eval(MustParse("between(A, 2, 1, 4, 2)"), Env{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	// Window i in [2,4], j in [1,2]: occupied cells (2,1)(2,2)(3,1)(3,2)(4,1)(4,2).
	if out.CellCount() != 6 {
		t.Errorf("between kept %d cells, want 6", out.CellCount())
	}
	out.Scan(func(coords []int64, _ []array.Value) bool {
		if coords[0] < 2 || coords[0] > 4 || coords[1] < 1 || coords[1] > 2 {
			t.Errorf("cell %v outside window", coords)
		}
		return true
	})
}

func TestBetweenErrors(t *testing.T) {
	a := figure1(t)
	if _, err := Between(a, []int64{1}, []int64{2}); err == nil {
		t.Error("wrong bound arity should fail")
	}
	if _, err := Between(a, []int64{5, 1}, []int64{2, 6}); err == nil {
		t.Error("inverted bounds should fail")
	}
	if _, err := Parse("between(A, 1, 2, 3)"); err == nil {
		t.Error("odd bound count should fail to parse")
	}
}

func TestApplyComputedAttribute(t *testing.T) {
	a := figure1(t)
	out, err := Eval(MustParse("apply(A, scaled, v1 * 10)"), Env{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Schema.HasAttr("scaled") {
		t.Fatalf("schema = %v", out.Schema)
	}
	if out.Schema.Attrs[2].Type != array.TypeInt64 {
		t.Errorf("int*int should stay int, got %v", out.Schema.Attrs[2].Type)
	}
	out.Scan(func(_ []int64, attrs []array.Value) bool {
		if attrs[2].AsInt() != attrs[0].AsInt()*10 {
			t.Errorf("scaled = %v, want %v", attrs[2], attrs[0].AsInt()*10)
		}
		return true
	})
}

func TestApplyWithDimensionOperand(t *testing.T) {
	a := figure1(t)
	out, err := Apply(a, "isum", ApplyExpr{Op: '+', Left: ApplyOperand{Attr: "i"}, Right: ApplyOperand{Attr: "j"}})
	if err != nil {
		t.Fatal(err)
	}
	out.Scan(func(coords []int64, attrs []array.Value) bool {
		if attrs[2].AsInt() != coords[0]+coords[1] {
			t.Errorf("isum at %v = %v", coords, attrs[2])
		}
		return true
	})
}

func TestApplyDivisionIsFloat(t *testing.T) {
	a := figure1(t)
	out, err := Eval(MustParse("apply(A, ratio, v2 / v1)"), Env{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Attrs[2].Type != array.TypeFloat64 {
		t.Errorf("division should be float, got %v", out.Schema.Attrs[2].Type)
	}
	// v1=0 cells divide by zero -> NaN, not a crash.
	nan := 0
	out.Scan(func(_ []int64, attrs []array.Value) bool {
		if math.IsNaN(attrs[2].AsFloat()) {
			nan++
		}
		return true
	})
	if nan == 0 {
		t.Error("expected NaN cells from zero divisors in Figure 1 data")
	}
}

func TestApplyErrors(t *testing.T) {
	a := figure1(t)
	if _, err := Apply(a, "v1", ApplyExpr{Op: '+', Left: ApplyOperand{Attr: "v1"}, Right: ApplyOperand{Lit: 1}}); err == nil {
		t.Error("duplicate output name should fail")
	}
	if _, err := Apply(a, "x", ApplyExpr{Op: '+', Left: ApplyOperand{Attr: "nope"}, Right: ApplyOperand{Lit: 1}}); err == nil {
		t.Error("unknown operand should fail")
	}
}

func TestBetweenApplyRoundTrip(t *testing.T) {
	for _, src := range []string{
		"between(A, 2, 1, 4, 2)",
		"apply(A, s, v1 + v2)",
		"apply(between(A, 1, 1, 3, 3), s, v1 * 2)",
	} {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		again, err := Parse(n.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", n.String(), err)
		}
		if n.String() != again.String() {
			t.Errorf("round trip: %q != %q", n.String(), again.String())
		}
	}
}

// NDVI as an AFL workflow: merge two bands, then apply the index — the
// kind of operator composition Section 2.2 motivates.
func TestNDVIWorkflow(t *testing.T) {
	mk := func(name string, base float64) *array.Array {
		a := array.MustNew(array.MustParseSchema(name + "<reflectance:float>[x=1,10,5]"))
		for x := int64(1); x <= 10; x++ {
			a.MustPut([]int64{x}, []array.Value{array.FloatValue(base + float64(x))})
		}
		return a
	}
	env := Env{"Band1": mk("Band1", 0), "Band2": mk("Band2", 100)}
	merged, err := Eval(MustParse("merge(Band1, Band2)"), env)
	if err != nil {
		t.Fatal(err)
	}
	env["M"] = merged
	diff, err := Eval(MustParse("apply(M, diff, reflectance_2 - reflectance)"), env)
	if err != nil {
		t.Fatal(err)
	}
	diff.Scan(func(_ []int64, attrs []array.Value) bool {
		if attrs[2].AsFloat() != 100 {
			t.Errorf("band difference = %v, want 100", attrs[2])
		}
		return true
	})
}

func TestRenameField(t *testing.T) {
	a := figure1(t)
	out, err := Rename(a, "v1", "value")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Schema.HasAttr("value") || out.Schema.HasAttr("v1") {
		t.Errorf("schema = %v", out.Schema)
	}
	if out.CellCount() != a.CellCount() {
		t.Error("rename changed data")
	}
	out2, err := Rename(a, "i", "row")
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Schema.HasDim("row") {
		t.Errorf("dim rename failed: %v", out2.Schema)
	}
	if _, err := Rename(a, "v1", "v2"); err == nil {
		t.Error("collision should fail")
	}
	if _, err := Rename(a, "nope", "x"); err == nil {
		t.Error("unknown source should fail")
	}
	same, err := Rename(a, "v1", "v1")
	if err != nil || same.CellCount() != a.CellCount() {
		t.Error("identity rename should clone")
	}
}

func TestCastNameEnablesSelfJoin(t *testing.T) {
	a := figure1(t)
	b := CastName(a, "A2")
	if b.Schema.Name != "A2" || a.Schema.Name != "A" {
		t.Error("CastName should copy")
	}
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.CellCount() != a.CellCount() {
		t.Errorf("self-merge cells = %d", merged.CellCount())
	}
}
