package afl

import (
	"fmt"
	"math"

	"shufflejoin/internal/array"
)

// Between selects the subarray inside the dimension window [lo, hi]
// (inclusive, one bound pair per dimension) — SciDB's between operator.
// The schema is unchanged; cells outside the window are dropped.
func Between(a *array.Array, lo, hi []int64) (*array.Array, error) {
	nd := len(a.Schema.Dims)
	if len(lo) != nd || len(hi) != nd {
		return nil, fmt.Errorf("afl: between needs %d bound pairs, got %d/%d", nd, len(lo), len(hi))
	}
	for d := 0; d < nd; d++ {
		if lo[d] > hi[d] {
			return nil, fmt.Errorf("afl: between bounds inverted on dimension %s", a.Schema.Dims[d].Name)
		}
	}
	out := array.MustNew(a.Schema.Clone())
	a.Scan(func(coords []int64, attrs []array.Value) bool {
		for d := 0; d < nd; d++ {
			if coords[d] < lo[d] || coords[d] > hi[d] {
				return true
			}
		}
		out.MustPut(coords, attrs)
		return true
	})
	out.SortAll()
	return out, nil
}

// ApplyExpr is the one-step arithmetic Apply supports: left op right,
// where each operand is an attribute name or a numeric literal.
type ApplyExpr struct {
	Op          byte // + - * /
	Left, Right ApplyOperand
}

// ApplyOperand is an attribute reference or a literal.
type ApplyOperand struct {
	Attr string // attribute (or dimension) name; empty for a literal
	Lit  float64
}

func (o ApplyOperand) String() string {
	if o.Attr != "" {
		return o.Attr
	}
	return fmt.Sprintf("%g", o.Lit)
}

func (e ApplyExpr) String() string {
	return fmt.Sprintf("%s %c %s", e.Left, e.Op, e.Right)
}

// Apply appends a computed attribute to every cell — SciDB's apply
// operator restricted to one binary arithmetic step. Operands may name
// attributes or dimensions of the source.
func Apply(a *array.Array, name string, expr ApplyExpr) (*array.Array, error) {
	s := a.Schema.Clone()
	if s.HasAttr(name) || s.HasDim(name) {
		return nil, fmt.Errorf("afl: apply output name %q already exists", name)
	}
	t := array.TypeFloat64
	if expr.Op != '/' && operandIsInt(a.Schema, expr.Left) && operandIsInt(a.Schema, expr.Right) {
		t = array.TypeInt64
	}
	s.Attrs = append(s.Attrs, array.Attribute{Name: name, Type: t})
	out, err := array.New(s)
	if err != nil {
		return nil, err
	}
	lv, err := operandReader(a.Schema, expr.Left)
	if err != nil {
		return nil, err
	}
	rv, err := operandReader(a.Schema, expr.Right)
	if err != nil {
		return nil, err
	}
	a.Scan(func(coords []int64, attrs []array.Value) bool {
		x, y := lv(coords, attrs), rv(coords, attrs)
		var v float64
		switch expr.Op {
		case '+':
			v = x + y
		case '-':
			v = x - y
		case '*':
			v = x * y
		case '/':
			if y == 0 {
				v = math.NaN()
			} else {
				v = x / y
			}
		}
		var nv array.Value
		if t == array.TypeInt64 {
			nv = array.IntValue(int64(v))
		} else {
			nv = array.FloatValue(v)
		}
		out.MustPut(coords, append(append([]array.Value(nil), attrs...), nv))
		return true
	})
	out.SortAll()
	return out, nil
}

func operandIsInt(s *array.Schema, o ApplyOperand) bool {
	if o.Attr == "" {
		return o.Lit == math.Trunc(o.Lit)
	}
	if s.HasDim(o.Attr) {
		return true
	}
	if i := s.AttrIndex(o.Attr); i >= 0 {
		return s.Attrs[i].Type == array.TypeInt64
	}
	return false
}

func operandReader(s *array.Schema, o ApplyOperand) (func(coords []int64, attrs []array.Value) float64, error) {
	if o.Attr == "" {
		lit := o.Lit
		return func([]int64, []array.Value) float64 { return lit }, nil
	}
	if d := s.DimIndex(o.Attr); d >= 0 {
		return func(coords []int64, _ []array.Value) float64 { return float64(coords[d]) }, nil
	}
	if i := s.AttrIndex(o.Attr); i >= 0 {
		return func(_ []int64, attrs []array.Value) float64 { return attrs[i].AsFloat() }, nil
	}
	return nil, fmt.Errorf("afl: apply operand %q not in %s", o.Attr, s.Name)
}

// Rename returns a copy of the array with the given field (attribute or
// dimension) renamed — SciDB's attribute_rename / cast applied to one
// name. Data is shared structurally (chunks are cloned shallowly through
// Clone) but the schema is fresh.
func Rename(a *array.Array, from, to string) (*array.Array, error) {
	if from == to {
		return a.Clone(), nil
	}
	s := a.Schema.Clone()
	if s.HasDim(to) || s.HasAttr(to) {
		return nil, fmt.Errorf("afl: rename target %q already exists", to)
	}
	switch {
	case s.HasDim(from):
		s.Dims[s.DimIndex(from)].Name = to
	case s.HasAttr(from):
		s.Attrs[s.AttrIndex(from)].Name = to
	default:
		return nil, fmt.Errorf("afl: rename source %q not in %s", from, s.Name)
	}
	out := a.Clone()
	out.Schema = s
	return out, nil
}

// CastName renames the array itself (the "cast" every SciDB workflow uses
// before self joins).
func CastName(a *array.Array, name string) *array.Array {
	out := a.Clone()
	out.Schema = out.Schema.Rename(name)
	return out
}
