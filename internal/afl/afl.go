// Package afl implements the Array Functional Language of the ADM
// (Section 2.2 of the paper): composable operator expressions such as
//
//	merge(A, redim(B, <v1:int, v2:float>[i=1,6,3, j=1,6,3]))
//	filter(A, v1 > 5)
//
// with a single-node evaluator over in-memory arrays. The schema
// reorganization operators here — redim, rechunk, sort, scan — are the
// operators of the logical planner's Table 1, implemented for real; the
// repository's operator benchmarks validate the planner's cost formulas
// against them.
package afl

import (
	"fmt"
	"sort"
	"strings"

	"shufflejoin/internal/array"
	"shufflejoin/internal/join"
)

// Node is one AFL expression node.
type Node struct {
	Op     string        // "array" for a leaf reference, else the operator
	Name   string        // leaf: array name
	Args   []*Node       // operand subexpressions
	Schema *array.Schema // redim/rechunk target
	Cond   *Condition    // filter predicate
	Fields []string      // project field list
	Lo, Hi []int64       // between window bounds
	AName  string        // apply: new attribute name
	AExpr  *ApplyExpr    // apply: computed expression
}

// Condition is a filter comparison: attribute OP literal.
type Condition struct {
	Attr string
	Op   string // > < >= <= = !=
	Val  array.Value
}

func (c *Condition) String() string {
	return fmt.Sprintf("%s %s %s", c.Attr, c.Op, c.Val)
}

// String renders the expression back to AFL text.
func (n *Node) String() string {
	switch n.Op {
	case "array":
		return n.Name
	case "filter":
		return fmt.Sprintf("filter(%s, %s)", n.Args[0], n.Cond)
	case "project":
		return fmt.Sprintf("project(%s, %s)", n.Args[0], strings.Join(n.Fields, ", "))
	case "redim", "rechunk":
		return fmt.Sprintf("%s(%s, %s)", n.Op, n.Args[0], schemaBody(n.Schema))
	case "between":
		s := n.Args[0].String()
		for _, v := range n.Lo {
			s += fmt.Sprintf(", %d", v)
		}
		for _, v := range n.Hi {
			s += fmt.Sprintf(", %d", v)
		}
		return fmt.Sprintf("between(%s)", s)
	case "apply":
		return fmt.Sprintf("apply(%s, %s, %s)", n.Args[0], n.AName, n.AExpr)
	default:
		parts := make([]string, len(n.Args))
		for i, a := range n.Args {
			parts[i] = a.String()
		}
		return fmt.Sprintf("%s(%s)", n.Op, strings.Join(parts, ", "))
	}
}

// schemaBody prints a schema without its (possibly empty) name.
func schemaBody(s *array.Schema) string {
	full := s.String()
	return strings.TrimPrefix(full, s.Name)
}

// Env maps array names to arrays for evaluation.
type Env map[string]*array.Array

// Eval evaluates an AFL expression tree.
func Eval(n *Node, env Env) (*array.Array, error) {
	switch n.Op {
	case "array":
		a, ok := env[n.Name]
		if !ok {
			return nil, fmt.Errorf("afl: unknown array %q", n.Name)
		}
		return a, nil
	case "scan":
		return Eval(n.Args[0], env)
	case "filter":
		return evalFilter(n, env)
	case "project":
		return evalProject(n, env)
	case "redim":
		a, err := Eval(n.Args[0], env)
		if err != nil {
			return nil, err
		}
		return Redimension(a, n.Schema)
	case "rechunk":
		a, err := Eval(n.Args[0], env)
		if err != nil {
			return nil, err
		}
		return Rechunk(a, n.Schema)
	case "sort":
		a, err := Eval(n.Args[0], env)
		if err != nil {
			return nil, err
		}
		return Sort(a), nil
	case "between":
		a, err := Eval(n.Args[0], env)
		if err != nil {
			return nil, err
		}
		return Between(a, n.Lo, n.Hi)
	case "apply":
		a, err := Eval(n.Args[0], env)
		if err != nil {
			return nil, err
		}
		return Apply(a, n.AName, *n.AExpr)
	case "merge":
		return evalBinary(n, env, Merge)
	case "cross":
		return evalBinary(n, env, Cross)
	default:
		return nil, fmt.Errorf("afl: unknown operator %q", n.Op)
	}
}

func evalBinary(n *Node, env Env, f func(a, b *array.Array) (*array.Array, error)) (*array.Array, error) {
	if len(n.Args) != 2 {
		return nil, fmt.Errorf("afl: %s takes two operands", n.Op)
	}
	a, err := Eval(n.Args[0], env)
	if err != nil {
		return nil, err
	}
	b, err := Eval(n.Args[1], env)
	if err != nil {
		return nil, err
	}
	return f(a, b)
}

func evalFilter(n *Node, env Env) (*array.Array, error) {
	a, err := Eval(n.Args[0], env)
	if err != nil {
		return nil, err
	}
	return Filter(a, n.Cond)
}

func evalProject(n *Node, env Env) (*array.Array, error) {
	a, err := Eval(n.Args[0], env)
	if err != nil {
		return nil, err
	}
	return Project(a, n.Fields)
}

// Filter returns the cells of a satisfying the condition, same schema.
func Filter(a *array.Array, cond *Condition) (*array.Array, error) {
	di := a.Schema.DimIndex(cond.Attr)
	ai := a.Schema.AttrIndex(cond.Attr)
	if di < 0 && ai < 0 {
		return nil, fmt.Errorf("afl: filter references unknown field %q", cond.Attr)
	}
	out := array.MustNew(a.Schema.Clone())
	var err error
	a.Scan(func(coords []int64, attrs []array.Value) bool {
		var v array.Value
		if di >= 0 {
			v = array.IntValue(coords[di])
		} else {
			v = attrs[ai]
		}
		ok, cmpErr := compare(v, cond.Op, cond.Val)
		if cmpErr != nil {
			err = cmpErr
			return false
		}
		if ok {
			out.MustPut(coords, attrs)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out.SortAll()
	return out, nil
}

func compare(v array.Value, op string, lit array.Value) (bool, error) {
	c := v.Compare(lit)
	switch op {
	case "=", "==":
		return c == 0, nil
	case "!=", "<>":
		return c != 0, nil
	case ">":
		return c > 0, nil
	case ">=":
		return c >= 0, nil
	case "<":
		return c < 0, nil
	case "<=":
		return c <= 0, nil
	}
	return false, fmt.Errorf("afl: unknown comparison %q", op)
}

// Project keeps only the named attributes (dimensions are untouched —
// arrays are vertically partitioned, so this models reading a column
// subset).
func Project(a *array.Array, fields []string) (*array.Array, error) {
	s := &array.Schema{Name: a.Schema.Name, Dims: append([]array.Dimension(nil), a.Schema.Dims...)}
	var idx []int
	for _, f := range fields {
		i := a.Schema.AttrIndex(f)
		if i < 0 {
			return nil, fmt.Errorf("afl: project references unknown attribute %q", f)
		}
		s.Attrs = append(s.Attrs, a.Schema.Attrs[i])
		idx = append(idx, i)
	}
	out := array.MustNew(s)
	a.Scan(func(coords []int64, attrs []array.Value) bool {
		sub := make([]array.Value, len(idx))
		for i, ai := range idx {
			sub[i] = attrs[ai]
		}
		out.MustPut(coords, sub)
		return true
	})
	out.SortAll()
	return out, nil
}

// Redimension reorganizes a into the target schema, converting attributes
// to dimensions (or vice versa) as the target requires, then sorts every
// chunk — the Table-1 redim operator, cost n + n·log(n/c).
func Redimension(a *array.Array, target *array.Schema) (*array.Array, error) {
	out, mapCell, err := reorganizer(a, target)
	if err != nil {
		return nil, err
	}
	a.Scan(func(coords []int64, attrs []array.Value) bool {
		mapCell(coords, attrs)
		return true
	})
	out.SortAll()
	return out, nil
}

// Rechunk reassigns cells to the target schema's chunk grid without
// sorting them — the Table-1 rechunk operator, cost n, unordered output.
func Rechunk(a *array.Array, target *array.Schema) (*array.Array, error) {
	out, mapCell, err := reorganizer(a, target)
	if err != nil {
		return nil, err
	}
	a.Scan(func(coords []int64, attrs []array.Value) bool {
		mapCell(coords, attrs)
		return true
	})
	return out, nil
}

// reorganizer prepares the target array and a cell-mapping closure shared
// by Redimension and Rechunk. Every target field must name a dimension or
// attribute of the source.
func reorganizer(a *array.Array, target *array.Schema) (*array.Array, func([]int64, []array.Value), error) {
	t := target.Clone()
	if t.Name == "" {
		t.Name = a.Schema.Name
	}
	out, err := array.New(t)
	if err != nil {
		return nil, nil, err
	}
	type src struct {
		isDim bool
		idx   int
	}
	resolve := func(name string) (src, error) {
		if i := a.Schema.DimIndex(name); i >= 0 {
			return src{isDim: true, idx: i}, nil
		}
		if i := a.Schema.AttrIndex(name); i >= 0 {
			return src{isDim: false, idx: i}, nil
		}
		return src{}, fmt.Errorf("afl: target field %q not in source %s", name, a.Schema.Name)
	}
	dimSrc := make([]src, len(t.Dims))
	for i, d := range t.Dims {
		s, err := resolve(d.Name)
		if err != nil {
			return nil, nil, err
		}
		dimSrc[i] = s
	}
	attrSrc := make([]src, len(t.Attrs))
	for i, at := range t.Attrs {
		s, err := resolve(at.Name)
		if err != nil {
			return nil, nil, err
		}
		attrSrc[i] = s
	}
	mapCell := func(coords []int64, attrs []array.Value) {
		nc := make([]int64, len(dimSrc))
		for i, s := range dimSrc {
			var v int64
			if s.isDim {
				v = coords[s.idx]
			} else {
				v = attrs[s.idx].AsInt()
			}
			d := t.Dims[i]
			if v < d.Start {
				v = d.Start
			}
			if v > d.End {
				v = d.End
			}
			nc[i] = v
		}
		na := make([]array.Value, len(attrSrc))
		for i, s := range attrSrc {
			if s.isDim {
				na[i] = array.IntValue(coords[s.idx])
			} else {
				na[i] = attrs[s.idx]
			}
		}
		out.MustPut(nc, na)
	}
	return out, mapCell, nil
}

// Sort returns a copy of a with every chunk in C-order — the Table-1 sort
// operator, cost n·log(n/c).
func Sort(a *array.Array) *array.Array {
	out := a.Clone()
	out.SortAll()
	return out
}

// Merge computes the D:D merge join of two same-shape arrays: cells
// occupied in both at the same coordinates, with the attributes of both
// sides (right-side name collisions get a "_2" suffix). This is the
// classic array merge join of Section 2.3.1.
func Merge(a, b *array.Array) (*array.Array, error) {
	if !a.Schema.SameShape(b.Schema) {
		return nil, fmt.Errorf("afl: merge requires same-shape arrays (%s vs %s)", a.Schema, b.Schema)
	}
	s := &array.Schema{
		Name: a.Schema.Name + "_" + b.Schema.Name,
		Dims: append([]array.Dimension(nil), a.Schema.Dims...),
	}
	s.Attrs = append(s.Attrs, a.Schema.Attrs...)
	for _, at := range b.Schema.Attrs {
		name := at.Name
		if s.HasAttr(name) || s.HasDim(name) {
			name += "_2"
		}
		s.Attrs = append(s.Attrs, array.Attribute{Name: name, Type: at.Type})
	}
	out, err := array.New(s)
	if err != nil {
		return nil, err
	}
	// Iterate chunk positions present in both; merge sorted cells.
	for _, key := range a.SortedKeys() {
		ca := a.Chunks[key]
		cb, ok := b.Chunks[key]
		if !ok {
			continue
		}
		ca.Sort()
		cb.Sort()
		left := chunkTuples(ca)
		right := chunkTuples(cb)
		_, err := join.MergeJoin(left, right, func(l, r *join.Tuple) {
			attrs := append(append([]array.Value(nil), l.Attrs...), r.Attrs...)
			out.MustPut(l.Coords, attrs)
		})
		if err != nil {
			return nil, err
		}
	}
	out.SortAll()
	return out, nil
}

// Cross computes the Cartesian-product join of Section 2.2's default
// cross(a, b) plan: output dimensionality is the concatenation of the
// inputs' dimensions and every pair of occupied cells produces an output
// cell. Exhaustive — O(n_a·n_b).
func Cross(a, b *array.Array) (*array.Array, error) {
	s := &array.Schema{Name: a.Schema.Name + "_x_" + b.Schema.Name}
	s.Dims = append(s.Dims, a.Schema.Dims...)
	for _, d := range b.Schema.Dims {
		if s.HasDim(d.Name) {
			d.Name += "_2"
		}
		s.Dims = append(s.Dims, d)
	}
	s.Attrs = append(s.Attrs, a.Schema.Attrs...)
	for _, at := range b.Schema.Attrs {
		name := at.Name
		if s.HasAttr(name) || s.HasDim(name) {
			name += "_2"
		}
		s.Attrs = append(s.Attrs, array.Attribute{Name: name, Type: at.Type})
	}
	out, err := array.New(s)
	if err != nil {
		return nil, err
	}
	// Full materialization is legitimate here: the inner side is iterated
	// |a| times, so a streaming re-scan per outer cell would re-decode b
	// O(n_a) times for no memory win — the operator is exhaustive
	// O(n_a·n_b) by definition and only used on small reference inputs.
	bCells := b.Cells()
	a.Scan(func(ac []int64, aa []array.Value) bool {
		for _, bc := range bCells {
			coords := append(append([]int64(nil), ac...), bc.Coords...)
			attrs := append(append([]array.Value(nil), aa...), bc.Attrs...)
			out.MustPut(coords, attrs)
		}
		return true
	})
	out.SortAll()
	return out, nil
}

// chunkTuples converts a chunk's cells into merge-join tuples keyed by
// their coordinates. Materialization here is bounded by one chunk — the
// unit the merge join sorts — not a whole array, so it needs no
// streaming treatment.
func chunkTuples(ch *array.Chunk) []join.Tuple {
	ts := make([]join.Tuple, ch.Len())
	for row := 0; row < ch.Len(); row++ {
		coords, attrs := ch.Cell(row)
		key := make([]array.Value, len(coords))
		for i, c := range coords {
			key[i] = array.IntValue(c)
		}
		ts[row] = join.Tuple{Key: key, Coords: coords, Attrs: attrs}
	}
	sort.SliceStable(ts, func(i, j int) bool { return join.KeyCompare(&ts[i], &ts[j]) < 0 })
	return ts
}
