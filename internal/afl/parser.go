package afl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"shufflejoin/internal/array"
)

// Parse parses an AFL operator expression, e.g.
//
//	merge(A, redim(B, <v1:int, v2:float>[i=1,6,3, j=1,6,3]))
//	filter(A, v1 > 5)
//	project(sort(A), v1, v2)
func Parse(src string) (*Node, error) {
	p := &aflParser{src: src}
	n, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("afl: %w", err)
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("afl: trailing input at offset %d", p.pos)
	}
	return n, nil
}

// MustParse is Parse but panics on error, for tests and examples.
func MustParse(src string) *Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type aflParser struct {
	src string
	pos int
}

func (p *aflParser) skipSpace() {
	for p.pos < len(p.src) && strings.ContainsRune(" \t\r\n", rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *aflParser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *aflParser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || c == '_' || (p.pos > start && unicode.IsDigit(c)) {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *aflParser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return fmt.Errorf("expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *aflParser) parseExpr() (*Node, error) {
	name := p.ident()
	if name == "" {
		return nil, fmt.Errorf("expected identifier at offset %d", p.pos)
	}
	p.skipSpace()
	if p.peek() != '(' {
		return &Node{Op: "array", Name: name}, nil
	}
	p.pos++
	op := strings.ToLower(name)
	n := &Node{Op: op}
	switch op {
	case "scan", "sort":
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		n.Args = []*Node{arg}
	case "merge", "cross":
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		b, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		n.Args = []*Node{a, b}
	case "redim", "rechunk", "redimension":
		if op == "redimension" {
			n.Op = "redim"
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		schema, err := p.parseSchema()
		if err != nil {
			return nil, err
		}
		n.Args = []*Node{arg}
		n.Schema = schema
	case "between":
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		n.Args = []*Node{arg}
		var bounds []int64
		for {
			p.skipSpace()
			if p.peek() != ',' {
				break
			}
			p.pos++
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			bounds = append(bounds, v.AsInt())
		}
		if len(bounds) == 0 || len(bounds)%2 != 0 {
			return nil, fmt.Errorf("between needs an even number of bounds, got %d", len(bounds))
		}
		n.Lo = bounds[:len(bounds)/2]
		n.Hi = bounds[len(bounds)/2:]
	case "apply":
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		name := p.ident()
		if name == "" {
			return nil, fmt.Errorf("apply needs an output attribute name at offset %d", p.pos)
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		expr, err := p.parseApplyExpr()
		if err != nil {
			return nil, err
		}
		n.Args = []*Node{arg}
		n.AName = name
		n.AExpr = expr
	case "filter":
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		cond, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		n.Args = []*Node{arg}
		n.Cond = cond
	case "project":
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		n.Args = []*Node{arg}
		for {
			p.skipSpace()
			if p.peek() != ',' {
				break
			}
			p.pos++
			f := p.ident()
			if f == "" {
				return nil, fmt.Errorf("expected field name at offset %d", p.pos)
			}
			n.Fields = append(n.Fields, f)
		}
		if len(n.Fields) == 0 {
			return nil, fmt.Errorf("project needs at least one field")
		}
	default:
		return nil, fmt.Errorf("unknown operator %q", name)
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return n, nil
}

// parseSchema consumes a schema literal: optional name, then <attrs>[dims].
func (p *aflParser) parseSchema() (*array.Schema, error) {
	p.skipSpace()
	start := p.pos
	depth := 0
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '<' || c == '[' {
			depth++
		}
		if c == '>' || c == ']' {
			depth--
		}
		if depth == 0 && (c == ')' || c == ',') && p.pos > start {
			// End of the literal only when brackets are balanced and we
			// have consumed at least the closing ']'.
			if strings.ContainsAny(p.src[start:p.pos], "]>") {
				break
			}
		}
		p.pos++
	}
	raw := strings.TrimSpace(p.src[start:p.pos])
	return array.ParseSchema(raw)
}

// parseApplyExpr parses "operand op operand" where operands are attribute
// names or numeric literals.
func (p *aflParser) parseApplyExpr() (*ApplyExpr, error) {
	left, err := p.parseApplyOperand()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	op := p.peek()
	if op != '+' && op != '-' && op != '*' && op != '/' {
		return nil, fmt.Errorf("expected arithmetic operator at offset %d", p.pos)
	}
	p.pos++
	right, err := p.parseApplyOperand()
	if err != nil {
		return nil, err
	}
	return &ApplyExpr{Op: op, Left: left, Right: right}, nil
}

func (p *aflParser) parseApplyOperand() (ApplyOperand, error) {
	p.skipSpace()
	c := p.peek()
	if c >= '0' && c <= '9' || c == '.' {
		v, err := p.parseLiteral()
		if err != nil {
			return ApplyOperand{}, err
		}
		return ApplyOperand{Lit: v.AsFloat()}, nil
	}
	name := p.ident()
	if name == "" {
		return ApplyOperand{}, fmt.Errorf("expected apply operand at offset %d", p.pos)
	}
	return ApplyOperand{Attr: name}, nil
}

func (p *aflParser) parseCondition() (*Condition, error) {
	attr := p.ident()
	if attr == "" {
		return nil, fmt.Errorf("expected attribute at offset %d", p.pos)
	}
	p.skipSpace()
	opStart := p.pos
	for p.pos < len(p.src) && strings.ContainsRune("<>=!", rune(p.src[p.pos])) {
		p.pos++
	}
	op := p.src[opStart:p.pos]
	if op == "" {
		return nil, fmt.Errorf("expected comparison operator at offset %d", p.pos)
	}
	p.skipSpace()
	val, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &Condition{Attr: attr, Op: op, Val: val}, nil
}

func (p *aflParser) parseLiteral() (array.Value, error) {
	p.skipSpace()
	if p.peek() == '\'' {
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '\'' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return array.Value{}, fmt.Errorf("unterminated string literal")
		}
		s := p.src[start:p.pos]
		p.pos++
		return array.StringValue(s), nil
	}
	start := p.pos
	if p.peek() == '-' || p.peek() == '+' {
		p.pos++
	}
	isFloat := false
	for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
		if p.src[p.pos] == '.' {
			isFloat = true
		}
		p.pos++
	}
	txt := p.src[start:p.pos]
	if txt == "" || txt == "-" || txt == "+" {
		return array.Value{}, fmt.Errorf("expected literal at offset %d", start)
	}
	if isFloat {
		f, err := strconv.ParseFloat(txt, 64)
		if err != nil {
			return array.Value{}, err
		}
		return array.FloatValue(f), nil
	}
	n, err := strconv.ParseInt(txt, 10, 64)
	if err != nil {
		return array.Value{}, err
	}
	return array.IntValue(n), nil
}
