package ilp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func solve(t *testing.T, p *Problem, budget time.Duration) Solution {
	t.Helper()
	sol, err := Solve(p, budget)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

// bruteForce enumerates every assignment (tiny instances only).
func bruteForce(p *Problem) float64 {
	n := len(p.Sizes)
	assign := make([]int, n)
	best := math.Inf(1)
	var rec func(d int)
	rec = func(d int) {
		if d == n {
			if obj := evaluate(p, assign); obj < best {
				best = obj
			}
			return
		}
		for j := 0; j < p.K; j++ {
			assign[d] = j
			rec(d + 1)
		}
	}
	rec(0)
	return best
}

// evaluate recomputes the objective d + g independently of the solver.
func evaluate(p *Problem, assign []int) float64 {
	send := make([]int64, p.K)
	recv := make([]int64, p.K)
	comp := make([]float64, p.K)
	for i, row := range p.Sizes {
		a := assign[i]
		comp[a] += p.Comp[i]
		for j, s := range row {
			if j == a {
				continue
			}
			send[j] += s
			recv[a] += s
		}
	}
	var mv int64
	var mc float64
	for j := 0; j < p.K; j++ {
		if send[j] > mv {
			mv = send[j]
		}
		if recv[j] > mv {
			mv = recv[j]
		}
		if comp[j] > mc {
			mc = comp[j]
		}
	}
	return float64(mv)*p.Transfer + mc
}

func randomProblem(rng *rand.Rand, n, k int) *Problem {
	p := &Problem{K: k, Transfer: 0.5}
	for i := 0; i < n; i++ {
		row := make([]int64, k)
		for j := range row {
			row[j] = rng.Int63n(40)
		}
		p.Sizes = append(p.Sizes, row)
		p.Comp = append(p.Comp, float64(rng.Intn(30)))
	}
	return p
}

func TestSolveEmpty(t *testing.T) {
	sol := solve(t, &Problem{K: 3, Transfer: 1}, time.Second)
	if !sol.Optimal || sol.Objective != 0 {
		t.Errorf("empty problem: %+v", sol)
	}
}

func TestSolveSingleUnitStaysHome(t *testing.T) {
	// One unit entirely on node 1: assigning it there moves nothing.
	p := &Problem{
		K:        3,
		Sizes:    [][]int64{{0, 100, 0}},
		Comp:     []float64{5},
		Transfer: 1,
	}
	sol := solve(t, p, time.Second)
	if sol.Assignment[0] != 1 {
		t.Errorf("assigned to %d, want 1", sol.Assignment[0])
	}
	if sol.Objective != 5 { // no movement, comp 5
		t.Errorf("objective = %v, want 5", sol.Objective)
	}
	if !sol.Optimal {
		t.Error("tiny instance should be solved to optimality")
	}
}

func TestSolveBalancesComparison(t *testing.T) {
	// Two equal units on node 0, zero transfer cost: spread them.
	p := &Problem{
		K:        2,
		Sizes:    [][]int64{{50, 0}, {50, 0}},
		Comp:     []float64{10, 10},
		Transfer: 0,
	}
	sol := solve(t, p, time.Second)
	if sol.Assignment[0] == sol.Assignment[1] {
		t.Error("with free transfer, units should spread across nodes")
	}
	if sol.Objective != 10 {
		t.Errorf("objective = %v, want 10", sol.Objective)
	}
}

func TestSolveTradesTransferForBalance(t *testing.T) {
	// With very expensive transfer the solver keeps both units home even
	// though that doubles the comparison load on node 0.
	p := &Problem{
		K:        2,
		Sizes:    [][]int64{{50, 0}, {50, 0}},
		Comp:     []float64{10, 10},
		Transfer: 1000,
	}
	sol := solve(t, p, time.Second)
	if sol.Assignment[0] != 0 || sol.Assignment[1] != 0 {
		t.Errorf("assignments = %v, want both on node 0", sol.Assignment)
	}
	if sol.Objective != 20 {
		t.Errorf("objective = %v, want 20", sol.Objective)
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, rng.Intn(5)+2, rng.Intn(2)+2)
		sol, err := Solve(p, 5*time.Second)
		if err != nil || !sol.Optimal {
			return false
		}
		want := bruteForce(p)
		return math.Abs(sol.Objective-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveObjectiveConsistent(t *testing.T) {
	// The reported objective must equal an independent evaluation of the
	// returned assignment.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, rng.Intn(10)+2, rng.Intn(3)+2)
		sol, err := Solve(p, time.Second)
		if err != nil {
			return false
		}
		return math.Abs(sol.Objective-evaluate(p, sol.Assignment)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveAnytimeUnderTightBudget(t *testing.T) {
	// A large instance under a microscopic budget must still return a
	// complete (possibly suboptimal) assignment — the anytime behaviour the
	// experiments rely on.
	rng := rand.New(rand.NewSource(42))
	p := randomProblem(rng, 200, 6)
	sol, err := Solve(p, time.Millisecond)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(sol.Assignment) != 200 {
		t.Fatalf("incomplete assignment: %d units", len(sol.Assignment))
	}
	for _, a := range sol.Assignment {
		if a < 0 || a >= 6 {
			t.Fatalf("invalid assignment %d", a)
		}
	}
}

func TestLargerBudgetNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng, 60, 4)
	short, err := Solve(p, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Solve(p, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if long.Objective > short.Objective+1e-9 {
		t.Errorf("longer budget worsened objective: %v -> %v", short.Objective, long.Objective)
	}
}

// TestParallelMatchesSequential is the solver's determinism contract:
// whenever the search exhausts, every Workers setting returns the identical
// canonical (objective, lex-smallest) optimum.
func TestParallelMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, rng.Intn(7)+3, rng.Intn(2)+2)
		seq, err := SolveOpts(p, Options{Budget: 10 * time.Second, Workers: 1})
		if err != nil || !seq.Optimal {
			return false
		}
		for _, w := range []int{2, 3, 8} {
			par, err := SolveOpts(p, Options{Budget: 10 * time.Second, Workers: w})
			if err != nil || !par.Optimal {
				return false
			}
			if par.Objective != seq.Objective || !reflect.DeepEqual(par.Assignment, seq.Assignment) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMaxExploredReproducible: a node budget (unlike wall-clock) makes a
// truncated sequential search a pure function of the Problem — two runs
// return byte-identical solutions and explored-node counts.
func TestMaxExploredReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := randomProblem(rng, 120, 5)
	opts := Options{MaxExplored: 20_000}
	first, err := SolveOpts(p, opts)
	if err != nil {
		t.Fatalf("SolveOpts: %v", err)
	}
	if first.Optimal {
		t.Fatalf("instance too easy: solved optimally within %d nodes", opts.MaxExplored)
	}
	for run := 0; run < 3; run++ {
		again, err := SolveOpts(p, opts)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if again.Objective != first.Objective ||
			again.Nodes != first.Nodes ||
			again.Optimal != first.Optimal ||
			!reflect.DeepEqual(again.Assignment, first.Assignment) {
			t.Fatalf("run %d diverged:\n got %+v\nwant %+v", run, again, first)
		}
	}
}

// A pure node budget with no wall-clock deadline must still terminate and
// report non-optimality, and never return worse than the greedy seed.
func TestMaxExploredCapsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 80, 4)
	sol, err := SolveOpts(p, Options{MaxExplored: 1_000})
	if err != nil {
		t.Fatalf("SolveOpts: %v", err)
	}
	if sol.Optimal {
		t.Error("80-unit instance should not exhaust within 1000 nodes")
	}
	if len(sol.Assignment) != 80 {
		t.Fatalf("incomplete assignment: %d units", len(sol.Assignment))
	}
	if math.Abs(sol.Objective-evaluate(p, sol.Assignment)) > 1e-9 {
		t.Errorf("objective %v disagrees with evaluation %v", sol.Objective, evaluate(p, sol.Assignment))
	}
}

// TestSearchStatsExactAcrossWorkers: tasks are searched in isolation, so
// every deterministic solver statistic — explored and pruned node counts,
// task count, seed objective, and the incumbent itself — is identical at
// every Workers setting, both for exhaustive runs and for truncated
// MaxExplored runs.
func TestSearchStatsExactAcrossWorkers(t *testing.T) {
	for _, tc := range []struct {
		name string
		n, k int
		opts Options
	}{
		{"exhaustive", 12, 3, Options{Budget: 30 * time.Second}},
		{"truncated", 100, 5, Options{MaxExplored: 15_000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			p := randomProblem(rng, tc.n, tc.k)
			opts := tc.opts
			opts.Workers = 1
			base, err := SolveOpts(p, opts)
			if err != nil {
				t.Fatalf("Workers=1: %v", err)
			}
			if base.Tasks < 2 {
				t.Fatalf("decomposition degenerate: %d tasks", base.Tasks)
			}
			for _, workers := range []int{2, 4, 8} {
				opts.Workers = workers
				got, err := SolveOpts(p, opts)
				if err != nil {
					t.Fatalf("Workers=%d: %v", workers, err)
				}
				if got.Nodes != base.Nodes || got.Pruned != base.Pruned ||
					got.Tasks != base.Tasks || got.SeedObjective != base.SeedObjective ||
					got.Objective != base.Objective || got.Optimal != base.Optimal ||
					!reflect.DeepEqual(got.Assignment, base.Assignment) {
					t.Errorf("Workers=%d diverged:\n got nodes=%d pruned=%d tasks=%d obj=%v optimal=%v\nwant nodes=%d pruned=%d tasks=%d obj=%v optimal=%v",
						workers, got.Nodes, got.Pruned, got.Tasks, got.Objective, got.Optimal,
						base.Nodes, base.Pruned, base.Tasks, base.Objective, base.Optimal)
				}
			}
		})
	}
}

// A zero-budget, zero-node-cap solve must still return the greedy seed
// deterministically (legacy anytime behaviour) and report its statistics.
func TestZeroBudgetReturnsSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := randomProblem(rng, 60, 4)
	sol, err := SolveOpts(p, Options{})
	if err != nil {
		t.Fatalf("SolveOpts: %v", err)
	}
	if sol.Optimal {
		t.Error("expired budget must not claim optimality")
	}
	if sol.Objective != sol.SeedObjective {
		t.Errorf("objective %v != seed objective %v", sol.Objective, sol.SeedObjective)
	}
	if math.Abs(sol.Objective-evaluate(p, sol.Assignment)) > 1e-9 {
		t.Errorf("objective %v disagrees with evaluation %v", sol.Objective, evaluate(p, sol.Assignment))
	}
}

func TestValidateRejectsBadInstances(t *testing.T) {
	bad := []*Problem{
		{K: 0},
		{K: 2, Sizes: [][]int64{{1, 2}}, Comp: nil},
		{K: 2, Sizes: [][]int64{{1}}, Comp: []float64{1}},
	}
	for i, p := range bad {
		if _, err := Solve(p, time.Second); err == nil {
			t.Errorf("instance %d should be rejected", i)
		}
	}
}
