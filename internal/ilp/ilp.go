// Package ilp is a from-scratch 0-1 branch-and-bound solver for the
// integer-program formulation of the physical shuffle join planner
// (Section 5 of the paper, Equations 10–12).
//
// The formulation assigns each join unit i to exactly one node j (binary
// variables x_ij, Equation 4) and minimizes d + g, where d bounds the data
// alignment time — t times the larger of the worst per-node send and
// receive cell counts (Equations 10–11) — and g bounds the worst per-node
// cell-comparison load (Equation 12). The paper applies the SCIP solver to
// this program; this package substitutes an exact branch-and-bound over the
// same model with the same anytime behaviour: the search runs under a
// budget and returns the best incumbent when the budget expires, flagging
// whether optimality was proven.
//
// # Determinism
//
// The solver canonicalizes ties: among equal-objective assignments it
// prefers the lexicographically smallest assignment vector (by unit
// index), and pruning is strict (a subtree is cut only when its lower
// bound exceeds the incumbent objective), so equal-cost regions are always
// searched.
//
// The search space is split into a fixed set of prefix-assignment tasks
// whose decomposition depends only on the Problem — never on Workers —
// and each task is searched in isolation: it prunes against the greedy
// seed and its own local incumbent, not a shared cross-task bound, so a
// task's explored node set, node count, and pruned-subtree count are pure
// functions of the Problem. Workers only decides how many goroutines
// drain the task queue. Consequently Solution.Nodes and Solution.Pruned
// are exact and identical at every Workers setting, a MaxExplored node
// budget (split across tasks as fixed per-task quotas) yields bit-for-bit
// reproducible truncated searches at any parallelism, and whenever the
// search exhausts (Solution.Optimal) the returned assignment is the
// canonical function of the Problem alone. Only wall-clock (Budget)
// truncation remains machine-dependent: it returns a valid incumbent —
// never worse than the greedy seed — whose identity depends on timing.
package ilp

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"shufflejoin/internal/obs"
	"shufflejoin/internal/par"
)

// Problem is one instance: n join units over k nodes.
//
// Sizes[i][j] is s_ij, the cells of unit i resident on node j (both join
// sides combined — they travel together). Comp[i] is C_i, the modeled
// comparison cost of unit i. Transfer is t, the per-cell transmission cost.
type Problem struct {
	K        int
	Sizes    [][]int64
	Comp     []float64
	Transfer float64
}

// Options configures one Solve run.
type Options struct {
	// Budget is the wall-clock cap. When zero and MaxExplored is also
	// zero, the budget is treated as already expired (legacy Solve(p, 0)
	// behaviour): the deterministic greedy seed is returned as the
	// incumbent. When zero with MaxExplored set, only the node budget
	// applies.
	Budget time.Duration
	// MaxExplored caps the number of branch-and-bound nodes explored.
	// Unlike Budget it is machine- and load-independent: the cap is split
	// into fixed per-task quotas over the deterministic task decomposition,
	// so the explored node set — and therefore the incumbent — is a pure
	// function of the Problem at every Workers setting. Zero means no node
	// cap. Wall-clock remains a secondary cap when both are set.
	MaxExplored int64
	// Workers is the parallelism of the search: the task decomposition is
	// fixed by the Problem, and Workers goroutines drain the task queue.
	// <= 1 searches sequentially. Every value explores the same nodes and
	// returns the same solution (see the package determinism notes).
	Workers int
	// Span, when non-nil, receives the solver's observability attributes
	// (tasks, nodes explored/pruned, seed objective). Nil-safe.
	Span *obs.Span
}

// Solution is the solver's answer.
type Solution struct {
	Assignment []int   // unit -> node
	Objective  float64 // modeled cost d + g of the assignment
	Optimal    bool    // true when the search space was exhausted
	// Nodes is the number of branch-and-bound nodes explored. Tasks are
	// searched in isolation (see the package determinism notes), so unless
	// the wall-clock Budget truncated the run, Nodes is exact: identical
	// at every Workers setting and across runs.
	Nodes int64
	// Pruned counts subtrees cut by the lower bound; deterministic under
	// the same conditions as Nodes.
	Pruned int64
	// Tasks is the size of the deterministic task decomposition.
	Tasks int
	// SeedObjective is the greedy seed's cost — the incumbent every task
	// starts from, and an upper bound on Objective.
	SeedObjective float64
	Elapsed       time.Duration
}

// ErrNoBudget is returned when no complete assignment could be
// constructed. Since the greedy seed always completes before the search
// starts, it is unreachable today; it remains exported for callers that
// still check it.
var ErrNoBudget = errors.New("ilp: budget expired before any solution")

// Validate checks the instance.
func (p *Problem) Validate() error {
	if p.K <= 0 {
		return fmt.Errorf("ilp: k = %d", p.K)
	}
	if len(p.Sizes) != len(p.Comp) {
		return fmt.Errorf("ilp: %d size rows, %d comp entries", len(p.Sizes), len(p.Comp))
	}
	for i, row := range p.Sizes {
		if len(row) != p.K {
			return fmt.Errorf("ilp: unit %d has %d size entries, want %d", i, len(row), p.K)
		}
	}
	return nil
}

// Solve runs branch and bound under the given wall-clock budget.
func Solve(p *Problem, budget time.Duration) (Solution, error) {
	return SolveOpts(p, Options{Budget: budget})
}

// SolveOpts runs branch and bound under the given options.
func SolveOpts(p *Problem, opts Options) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	start := time.Now()
	n := len(p.Sizes)
	if n == 0 {
		return Solution{Assignment: nil, Objective: 0, Optimal: true, Elapsed: time.Since(start)}, nil
	}

	st := newSearchState(p)

	// Branch on units in descending total-size order: big units constrain
	// the objective most, so deciding them first tightens bounds early.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return st.unitTotal[order[a]] > st.unitTotal[order[b]] })

	ctx := &searchCtx{
		p:     p,
		st:    st,
		order: order,
	}
	if opts.Budget > 0 {
		ctx.deadline = start.Add(opts.Budget)
	} else if opts.MaxExplored <= 0 {
		// Legacy zero-budget: expired from the outset; the greedy seed is
		// still returned (deterministically) as the incumbent.
		ctx.timedOut.Store(true)
	}
	// Suffix sums over the branching order: remaining per-node resident
	// cells and remaining unavoidable receives, for O(k) lower bounds.
	ctx.remCol = make([][]int64, n+1)
	ctx.remRecvMin = make([]int64, n+1)
	ctx.remCol[n] = make([]int64, p.K)
	for d := n - 1; d >= 0; d-- {
		i := order[d]
		ctx.remCol[d] = make([]int64, p.K)
		for j := 0; j < p.K; j++ {
			ctx.remCol[d][j] = ctx.remCol[d+1][j] + p.Sizes[i][j]
		}
		ctx.remRecvMin[d] = ctx.remRecvMin[d+1] + st.unitTotal[i] - st.maxSlice[i]
	}

	// Seed the search with the deterministic greedy descent: every task
	// prunes against (at least) this incumbent, and a budget-expired run
	// still returns the greedy plan.
	ctx.seed, ctx.seedObj = greedySeed(ctx)

	// The task decomposition and per-task quotas are fixed by the Problem
	// and MaxExplored — never by Workers — so the explored node set is
	// identical at every parallelism (see the package determinism notes).
	tasks := genTasks(ctx)
	quotas := taskQuotas(opts.MaxExplored, len(tasks))

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	results := make([]*worker, workers)
	var nextTask atomic.Int64
	par.Do(workers, func(wid int) {
		w := newWorker(ctx)
		w.best = append([]int(nil), ctx.seed...)
		w.bestObj = ctx.seedObj
		results[wid] = w
		for {
			ti := int(nextTask.Add(1)) - 1
			if ti >= len(tasks) {
				return
			}
			w.runTask(tasks[ti], quotas[ti])
		}
	})

	// Merge the per-worker incumbents with the canonical (objective, lex)
	// order — independent of which worker drained which task.
	var best []int
	bestObj := 0.0
	for _, w := range results {
		if w == nil || w.best == nil {
			continue
		}
		if best == nil || w.bestObj < bestObj || (w.bestObj == bestObj && lexLess(w.best, best)) {
			best, bestObj = w.best, w.bestObj
		}
	}
	if best == nil {
		return Solution{}, ErrNoBudget
	}
	sol := Solution{
		Assignment:    append([]int(nil), best...),
		Objective:     bestObj,
		Optimal:       !ctx.timedOut.Load() && ctx.truncated.Load() == 0,
		Nodes:         ctx.explored.Load(),
		Pruned:        ctx.pruned.Load(),
		Tasks:         len(tasks),
		SeedObjective: ctx.seedObj,
		Elapsed:       time.Since(start),
	}
	if sp := opts.Span; sp != nil {
		sp.SetInt("ilp.tasks", int64(sol.Tasks))
		sp.SetInt("ilp.nodes_explored", sol.Nodes)
		sp.SetInt("ilp.nodes_pruned", sol.Pruned)
		sp.SetNum("ilp.seed_cost", sol.SeedObjective)
		sp.SetNum("ilp.objective", sol.Objective)
		sp.SetInt("ilp.optimal", boolInt(sol.Optimal))
		sp.SetNum("ilp.solve_wall_seconds", sol.Elapsed.Seconds())
	}
	return sol, nil
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// taskTarget is the size the task decomposition aims for. It is a
// constant — not a multiple of Workers — so the decomposition, and with it
// every deterministic solver statistic, is a pure function of the Problem.
const taskTarget = 64

// genTasks expands the first branching levels breadth-first into prefix
// assignments (over ctx.order). Sequential and parallel runs share the
// same task list; Workers only changes who drains it.
func genTasks(ctx *searchCtx) [][]int {
	tasks := [][]int{nil}
	depth := 0
	for depth < len(ctx.order) && len(tasks) < taskTarget && len(tasks)*ctx.p.K <= 4096 {
		unit := ctx.order[depth]
		next := make([][]int, 0, len(tasks)*ctx.p.K)
		for _, t := range tasks {
			for _, j := range ctx.st.candOrder[unit] {
				nt := make([]int, depth+1)
				copy(nt, t)
				nt[depth] = j
				next = append(next, nt)
			}
		}
		tasks = next
		depth++
	}
	return tasks
}

// taskQuotas splits a MaxExplored node budget into fixed per-task quotas
// (earlier tasks get the remainder). quota < 0 means unlimited.
func taskQuotas(maxExplored int64, tasks int) []int64 {
	quotas := make([]int64, tasks)
	if maxExplored <= 0 {
		for i := range quotas {
			quotas[i] = -1
		}
		return quotas
	}
	base := maxExplored / int64(tasks)
	rem := maxExplored % int64(tasks)
	for i := range quotas {
		quotas[i] = base
		if int64(i) < rem {
			quotas[i]++
		}
	}
	return quotas
}

// greedySeed constructs the initial incumbent: units in branching order,
// each placed on the node minimizing the partial objective, ties broken by
// candidate order. A pure function of the Problem, so the seed — and with
// it every budget-expired answer at Workers <= 1 — is deterministic.
func greedySeed(ctx *searchCtx) ([]int, float64) {
	w := newWorker(ctx)
	for _, unit := range ctx.order {
		bestJ := -1
		bestObj := math.Inf(1)
		for _, j := range ctx.st.candOrder[unit] {
			w.place(unit, j)
			obj := w.objective()
			w.unplace(unit, j)
			if obj < bestObj {
				bestObj, bestJ = obj, j
			}
		}
		w.place(unit, bestJ)
	}
	return append([]int(nil), w.assign...), w.objective()
}

// lexLess orders assignment vectors lexicographically by unit index — the
// canonical tie-break among equal-objective assignments.
func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// searchState precomputes per-instance quantities.
type searchState struct {
	unitTotal  []int64 // S_i
	maxSlice   []int64 // max_j s_ij
	colTotal   []int64 // per node: total cells resident there
	totalComp  float64 // Σ C_i
	minRecvSum int64   // Σ_i (S_i - max_j s_ij): unavoidable received cells
	candOrder  [][]int // per unit: nodes in descending local-slice order
}

func newSearchState(p *Problem) *searchState {
	n := len(p.Sizes)
	st := &searchState{
		unitTotal: make([]int64, n),
		maxSlice:  make([]int64, n),
		colTotal:  make([]int64, p.K),
	}
	for i, row := range p.Sizes {
		var total, mx int64
		for j, s := range row {
			total += s
			st.colTotal[j] += s
			if s > mx {
				mx = s
			}
		}
		st.unitTotal[i] = total
		st.maxSlice[i] = mx
		st.minRecvSum += total - mx
	}
	for _, c := range p.Comp {
		st.totalComp += c
	}
	st.candOrder = make([][]int, n)
	for i, row := range p.Sizes {
		cand := make([]int, p.K)
		for j := range cand {
			cand[j] = j
		}
		sort.SliceStable(cand, func(a, b int) bool { return row[cand[a]] > row[cand[b]] })
		st.candOrder[i] = cand
	}
	return st
}

// searchCtx is the state shared by every worker of one SolveOpts run: the
// read-only instance data, the greedy seed, and the atomic run totals.
// There is deliberately no shared incumbent bound — tasks prune only
// against the seed and their own local incumbent, so each task's explored
// node set is a pure function of the Problem (see the package docs).
type searchCtx struct {
	p     *Problem
	st    *searchState
	order []int

	// Suffix sums over the branching order (see SolveOpts).
	remCol     [][]int64
	remRecvMin []int64

	deadline time.Time // zero = no wall-clock cap

	seed    []int
	seedObj float64

	explored  atomic.Int64
	pruned    atomic.Int64
	truncated atomic.Int64 // tasks cut short by their node quota
	timedOut  atomic.Bool  // wall-clock budget expired
}

// worker is one goroutine's search state: mutable per-node accumulators
// for the partial assignment, its cross-task incumbent, and the per-task
// accumulators reset by runTask.
type worker struct {
	ctx        *searchCtx
	ownSum     []int64   // cells of units assigned to j that already live on j
	recv       []int64   // cells units assigned to j must pull from elsewhere
	comp       []float64 // comparison load assigned to j
	assign     []int
	best       []int
	bestObj    float64
	sinceCheck int

	// Per-task state: the task-local incumbent (seeded from the greedy
	// seed so pruning and tie-breaks never depend on other tasks), the
	// node quota, and the task's explored/pruned tallies.
	taskBest      []int
	taskBestObj   float64
	taskQuota     int64
	taskExplored  int64
	taskPruned    int64
	taskTruncated bool
}

func newWorker(ctx *searchCtx) *worker {
	n := len(ctx.p.Sizes)
	w := &worker{
		ctx:    ctx,
		ownSum: make([]int64, ctx.p.K),
		recv:   make([]int64, ctx.p.K),
		comp:   make([]float64, ctx.p.K),
		assign: make([]int, n),
	}
	for i := range w.assign {
		w.assign[i] = -1
	}
	return w
}

// runTask replays a prefix assignment (over ctx.order) into fresh
// accumulators, searches the subtree below it in isolation against the
// given node quota, then folds the task's incumbent and tallies into the
// worker's cross-task state.
func (w *worker) runTask(prefix []int, quota int64) {
	ctx := w.ctx
	for j := range w.ownSum {
		w.ownSum[j], w.recv[j], w.comp[j] = 0, 0, 0
	}
	for i := range w.assign {
		w.assign[i] = -1
	}
	for d, j := range prefix {
		unit := ctx.order[d]
		w.place(unit, j)
	}
	w.taskBest = append(w.taskBest[:0], ctx.seed...)
	w.taskBestObj = ctx.seedObj
	w.taskQuota = quota
	w.taskExplored = 0
	w.taskPruned = 0
	w.taskTruncated = false

	w.dfs(len(prefix))

	ctx.explored.Add(w.taskExplored)
	ctx.pruned.Add(w.taskPruned)
	if w.taskTruncated {
		ctx.truncated.Add(1)
	}
	if w.taskBestObj < w.bestObj || (w.taskBestObj == w.bestObj && lexLess(w.taskBest, w.best)) {
		w.best = append(w.best[:0], w.taskBest...)
		w.bestObj = w.taskBestObj
	}
}

func (w *worker) place(unit, j int) {
	w.assign[unit] = j
	w.ownSum[j] += w.ctx.p.Sizes[unit][j]
	w.recv[j] += w.ctx.st.unitTotal[unit] - w.ctx.p.Sizes[unit][j]
	w.comp[j] += w.ctx.p.Comp[unit]
}

func (w *worker) unplace(unit, j int) {
	w.assign[unit] = -1
	w.ownSum[j] -= w.ctx.p.Sizes[unit][j]
	w.recv[j] -= w.ctx.st.unitTotal[unit] - w.ctx.p.Sizes[unit][j]
	w.comp[j] -= w.ctx.p.Comp[unit]
}

func (w *worker) dfs(depth int) {
	ctx := w.ctx
	w.taskExplored++
	if w.taskQuota >= 0 && w.taskExplored > w.taskQuota {
		w.taskTruncated = true
	}
	w.sinceCheck++
	if w.sinceCheck >= 4096 {
		w.sinceCheck = 0
		if !ctx.deadline.IsZero() && time.Now().After(ctx.deadline) {
			ctx.timedOut.Store(true)
		}
	}
	if w.taskTruncated || ctx.timedOut.Load() {
		return
	}

	if depth == len(ctx.order) {
		obj := w.objective()
		if obj < w.taskBestObj || (obj == w.taskBestObj && lexLess(w.assign, w.taskBest)) {
			w.taskBest = append(w.taskBest[:0], w.assign...)
			w.taskBestObj = obj
		}
		return
	}
	// Strict pruning (>) keeps equal-objective subtrees alive so the
	// canonical lex-smallest optimum is always reachable. The bound is the
	// task-local incumbent (at worst the greedy seed) — never a value from
	// another task — so pruning decisions replay identically at every
	// Workers setting.
	if w.lowerBound(depth) > w.taskBestObj {
		w.taskPruned++
		return
	}

	unit := ctx.order[depth]

	// Try nodes in descending local-slice order: keeping the unit near its
	// data is usually best, so good incumbents appear early.
	for _, j := range ctx.st.candOrder[unit] {
		w.place(unit, j)
		w.dfs(depth + 1)
		w.unplace(unit, j)
		if w.taskTruncated || ctx.timedOut.Load() {
			return
		}
	}
}

// objective computes d + g for a complete assignment:
// d = t · max(max_j send_j, max_j recv_j), g = max_j comp_j.
func (w *worker) objective() float64 {
	var maxSend, maxRecv int64
	var maxComp float64
	for j := 0; j < w.ctx.p.K; j++ {
		send := w.ctx.st.colTotal[j] - w.ownSum[j]
		if send > maxSend {
			maxSend = send
		}
		if w.recv[j] > maxRecv {
			maxRecv = w.recv[j]
		}
		if w.comp[j] > maxComp {
			maxComp = w.comp[j]
		}
	}
	move := maxSend
	if maxRecv > move {
		move = maxRecv
	}
	return float64(move)*w.ctx.p.Transfer + maxComp
}

// lowerBound is an admissible bound on the best completion of the current
// partial assignment (units at order positions < depth are fixed).
func (w *worker) lowerBound(depth int) float64 {
	ctx := w.ctx
	// Receive: already-accumulated per-node receives only grow; each
	// remaining unit must pull at least S_i - max_j s_ij cells. Spreading
	// that perfectly gives a max-receive bound.
	var curMaxRecv, curRecvSum int64
	var curMaxComp float64
	for j := 0; j < ctx.p.K; j++ {
		if w.recv[j] > curMaxRecv {
			curMaxRecv = w.recv[j]
		}
		curRecvSum += w.recv[j]
		if w.comp[j] > curMaxComp {
			curMaxComp = w.comp[j]
		}
	}
	recvLB := curMaxRecv
	if avg := (curRecvSum + ctx.remRecvMin[depth] + int64(ctx.p.K) - 1) / int64(ctx.p.K); avg > recvLB {
		recvLB = avg
	}

	// Send: node j will eventually send colTotal_j minus the local slices
	// of units assigned to it. Remaining units could at best keep all their
	// j-resident cells home.
	var sendLB int64
	for j := 0; j < ctx.p.K; j++ {
		lb := ctx.st.colTotal[j] - w.ownSum[j] - ctx.remCol[depth][j]
		if lb > sendLB {
			sendLB = lb
		}
	}

	// Comparison: remaining comp spread perfectly still bounds max comp by
	// the average of the total.
	compLB := curMaxComp
	if avg := ctx.st.totalComp / float64(ctx.p.K); avg > compLB {
		compLB = avg
	}

	move := recvLB
	if sendLB > move {
		move = sendLB
	}
	return float64(move)*ctx.p.Transfer + compLB
}
