// Package ilp is a from-scratch 0-1 branch-and-bound solver for the
// integer-program formulation of the physical shuffle join planner
// (Section 5 of the paper, Equations 10–12).
//
// The formulation assigns each join unit i to exactly one node j (binary
// variables x_ij, Equation 4) and minimizes d + g, where d bounds the data
// alignment time — t times the larger of the worst per-node send and
// receive cell counts (Equations 10–11) — and g bounds the worst per-node
// cell-comparison load (Equation 12). The paper applies the SCIP solver to
// this program; this package substitutes an exact branch-and-bound over the
// same model with the same anytime behaviour: the search runs under a time
// budget and returns the best incumbent when the budget expires, flagging
// whether optimality was proven.
package ilp

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Problem is one instance: n join units over k nodes.
//
// Sizes[i][j] is s_ij, the cells of unit i resident on node j (both join
// sides combined — they travel together). Comp[i] is C_i, the modeled
// comparison cost of unit i. Transfer is t, the per-cell transmission cost.
type Problem struct {
	K        int
	Sizes    [][]int64
	Comp     []float64
	Transfer float64
}

// Solution is the solver's answer.
type Solution struct {
	Assignment []int   // unit -> node
	Objective  float64 // modeled cost d + g of the assignment
	Optimal    bool    // true when the search space was exhausted
	Nodes      int64   // branch-and-bound nodes explored
	Elapsed    time.Duration
}

// ErrNoBudget is returned when the time budget expires before any complete
// assignment has been constructed (it cannot happen with budget > 0, since
// the first depth-first descent completes immediately, but a zero budget
// surfaces it).
var ErrNoBudget = errors.New("ilp: time budget expired before any solution")

// Validate checks the instance.
func (p *Problem) Validate() error {
	if p.K <= 0 {
		return fmt.Errorf("ilp: k = %d", p.K)
	}
	if len(p.Sizes) != len(p.Comp) {
		return fmt.Errorf("ilp: %d size rows, %d comp entries", len(p.Sizes), len(p.Comp))
	}
	for i, row := range p.Sizes {
		if len(row) != p.K {
			return fmt.Errorf("ilp: unit %d has %d size entries, want %d", i, len(row), p.K)
		}
	}
	return nil
}

// Solve runs branch and bound under the given wall-clock budget.
func Solve(p *Problem, budget time.Duration) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	start := time.Now()
	n := len(p.Sizes)
	if n == 0 {
		return Solution{Assignment: nil, Objective: 0, Optimal: true, Elapsed: time.Since(start)}, nil
	}

	st := newSearchState(p)

	// Branch on units in descending total-size order: big units constrain
	// the objective most, so deciding them first tightens bounds early.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return st.unitTotal[order[a]] > st.unitTotal[order[b]] })

	s := &solver{
		p:        p,
		st:       st,
		order:    order,
		deadline: start.Add(budget),
		best:     nil,
		bestObj:  0,
	}
	// Suffix sums over the branching order: remaining per-node resident
	// cells and remaining unavoidable receives, for O(k) lower bounds.
	s.remCol = make([][]int64, n+1)
	s.remRecvMin = make([]int64, n+1)
	s.remCol[n] = make([]int64, p.K)
	for d := n - 1; d >= 0; d-- {
		i := order[d]
		s.remCol[d] = make([]int64, p.K)
		for j := 0; j < p.K; j++ {
			s.remCol[d][j] = s.remCol[d+1][j] + p.Sizes[i][j]
		}
		s.remRecvMin[d] = s.remRecvMin[d+1] + st.unitTotal[i] - st.maxSlice[i]
	}
	s.dfs(0)

	if s.best == nil {
		return Solution{}, ErrNoBudget
	}
	return Solution{
		Assignment: s.best,
		Objective:  s.bestObj,
		Optimal:    !s.timedOut,
		Nodes:      s.explored,
		Elapsed:    time.Since(start),
	}, nil
}

// searchState precomputes per-instance quantities.
type searchState struct {
	unitTotal  []int64 // S_i
	maxSlice   []int64 // max_j s_ij
	colTotal   []int64 // per node: total cells resident there
	totalComp  float64 // Σ C_i
	minRecvSum int64   // Σ_i (S_i - max_j s_ij): unavoidable received cells
	candOrder  [][]int // per unit: nodes in descending local-slice order
}

func newSearchState(p *Problem) *searchState {
	n := len(p.Sizes)
	st := &searchState{
		unitTotal: make([]int64, n),
		maxSlice:  make([]int64, n),
		colTotal:  make([]int64, p.K),
	}
	for i, row := range p.Sizes {
		var total, mx int64
		for j, s := range row {
			total += s
			st.colTotal[j] += s
			if s > mx {
				mx = s
			}
		}
		st.unitTotal[i] = total
		st.maxSlice[i] = mx
		st.minRecvSum += total - mx
	}
	for _, c := range p.Comp {
		st.totalComp += c
	}
	st.candOrder = make([][]int, n)
	for i, row := range p.Sizes {
		cand := make([]int, p.K)
		for j := range cand {
			cand[j] = j
		}
		sort.SliceStable(cand, func(a, b int) bool { return row[cand[a]] > row[cand[b]] })
		st.candOrder[i] = cand
	}
	return st
}

type solver struct {
	p        *Problem
	st       *searchState
	order    []int
	deadline time.Time

	// Suffix sums over the branching order (see Solve).
	remCol     [][]int64
	remRecvMin []int64

	// Mutable per-node accumulators for the partial assignment.
	ownSum []int64   // cells of units assigned to j that already live on j
	recv   []int64   // cells units assigned to j must pull from elsewhere
	comp   []float64 // comparison load assigned to j
	assign []int

	best     []int
	bestObj  float64
	timedOut bool
	explored int64
}

func (s *solver) dfs(depth int) {
	if s.assign == nil {
		n := len(s.p.Sizes)
		s.ownSum = make([]int64, s.p.K)
		s.recv = make([]int64, s.p.K)
		s.comp = make([]float64, s.p.K)
		s.assign = make([]int, n)
		for i := range s.assign {
			s.assign[i] = -1
		}
	}
	s.explored++
	if s.explored%4096 == 0 && time.Now().After(s.deadline) {
		s.timedOut = true
	}
	if s.timedOut && s.best != nil {
		return
	}

	if depth == len(s.order) {
		obj := s.objective()
		if s.best == nil || obj < s.bestObj {
			s.best = append([]int(nil), s.assign...)
			s.bestObj = obj
		}
		return
	}
	if s.best != nil && s.lowerBound(depth) >= s.bestObj {
		return
	}

	unit := s.order[depth]
	row := s.p.Sizes[unit]

	// Try nodes in descending local-slice order: keeping the unit near its
	// data is usually best, so good incumbents appear early.
	for _, j := range s.st.candOrder[unit] {
		s.assign[unit] = j
		s.ownSum[j] += row[j]
		s.recv[j] += s.st.unitTotal[unit] - row[j]
		s.comp[j] += s.p.Comp[unit]

		s.dfs(depth + 1)

		s.assign[unit] = -1
		s.ownSum[j] -= row[j]
		s.recv[j] -= s.st.unitTotal[unit] - row[j]
		s.comp[j] -= s.p.Comp[unit]
		if s.timedOut && s.best != nil {
			return
		}
	}
}

// objective computes d + g for a complete assignment:
// d = t · max(max_j send_j, max_j recv_j), g = max_j comp_j.
func (s *solver) objective() float64 {
	var maxSend, maxRecv int64
	var maxComp float64
	for j := 0; j < s.p.K; j++ {
		send := s.st.colTotal[j] - s.ownSum[j]
		if send > maxSend {
			maxSend = send
		}
		if s.recv[j] > maxRecv {
			maxRecv = s.recv[j]
		}
		if s.comp[j] > maxComp {
			maxComp = s.comp[j]
		}
	}
	move := maxSend
	if maxRecv > move {
		move = maxRecv
	}
	return float64(move)*s.p.Transfer + maxComp
}

// lowerBound is an admissible bound on the best completion of the current
// partial assignment (units at order positions < depth are fixed).
func (s *solver) lowerBound(depth int) float64 {
	// Receive: already-accumulated per-node receives only grow; each
	// remaining unit must pull at least S_i - max_j s_ij cells. Spreading
	// that perfectly gives a max-receive bound.
	var curMaxRecv, curRecvSum int64
	var curMaxComp float64
	for j := 0; j < s.p.K; j++ {
		if s.recv[j] > curMaxRecv {
			curMaxRecv = s.recv[j]
		}
		curRecvSum += s.recv[j]
		if s.comp[j] > curMaxComp {
			curMaxComp = s.comp[j]
		}
	}
	recvLB := curMaxRecv
	if avg := (curRecvSum + s.remRecvMin[depth] + int64(s.p.K) - 1) / int64(s.p.K); avg > recvLB {
		recvLB = avg
	}

	// Send: node j will eventually send colTotal_j minus the local slices
	// of units assigned to it. Remaining units could at best keep all their
	// j-resident cells home.
	var sendLB int64
	for j := 0; j < s.p.K; j++ {
		lb := s.st.colTotal[j] - s.ownSum[j] - s.remCol[depth][j]
		if lb > sendLB {
			sendLB = lb
		}
	}

	// Comparison: remaining comp spread perfectly still bounds max comp by
	// the average of the total.
	compLB := curMaxComp
	if avg := s.st.totalComp / float64(s.p.K); avg > compLB {
		compLB = avg
	}

	move := recvLB
	if sendLB > move {
		move = sendLB
	}
	return float64(move)*s.p.Transfer + compLB
}
