package batch

import (
	"shufflejoin/internal/array"

	"shufflejoin/internal/par"
)

// Reshape reconfigures a recycled batch for a new layout, retaining as
// much of its grown column storage as possible: dimension and value
// columns are revived by reslicing within their kept capacity (a column
// that shrank away in one query and returns in the next gets its old
// backing array back, because the header slots beyond len survive the
// intermediate reslices), and a Col keeps all three typed backing
// slices, so changing a column's type costs nothing. After Reshape the
// batch is empty, shaped exactly as New(ndims, types, capacity) would
// shape it.
func (b *Batch) Reshape(ndims int, types []array.ScalarType, capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	b.capacity = capacity
	if ndims <= cap(b.Coords) {
		b.Coords = b.Coords[:ndims]
	} else {
		b.Coords = append(b.Coords[:cap(b.Coords)], make([][]int64, ndims-cap(b.Coords))...)
	}
	for d := range b.Coords {
		b.Coords[d] = b.Coords[d][:0]
	}
	if len(types) <= cap(b.Cols) {
		b.Cols = b.Cols[:len(types)]
	} else {
		b.Cols = append(b.Cols[:cap(b.Cols)], make([]Col, len(types)-cap(b.Cols))...)
	}
	for i, t := range types {
		b.Cols[i].Type = t
		b.Cols[i].reset()
	}
}

// pool recycles batches across queries and concurrent producers. It is
// a sharded par.Pool, not a sync.Pool and not a per-RunSet free list:
// per-RunSet lists serialized all of a query's mapper workers on one
// mutex and threw the grown storage away at query end, while a
// sync.Pool is drained by the collector under exactly the allocation
// pressure (concurrent query output assembly) the pool exists to
// absorb. Capacity follows Pool semantics: a bounded per-shard free
// list, excess Puts dropped.
var pool = par.NewPool[*Batch](128)

// Get returns an empty batch shaped for the given layout: a recycled
// one (Reshape'd, retaining grown storage from any prior query) when
// the pool has one, else a fresh New batch.
func Get(ndims int, types []array.ScalarType, capacity int) *Batch {
	if b, ok := pool.Get(); ok {
		b.Reshape(ndims, types, capacity)
		return b
	}
	return New(ndims, types, capacity)
}

// Put recycles a batch for any later Get, across queries. The caller
// must not use b afterward.
func Put(b *Batch) {
	if b != nil {
		pool.Put(b)
	}
}
