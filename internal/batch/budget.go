package batch

import (
	"errors"
	"fmt"
	"sync/atomic"

	"shufflejoin/internal/flight"
)

// ErrBudget is the sentinel wrapped by strict-mode budget violations;
// test with errors.Is.
var ErrBudget = errors.New("batch: query memory budget exceeded")

// Budget accounts the bytes of batch storage a query holds in flight,
// mirroring the engine's ClampedCells/StrictBounds pattern for bounds
// violations:
//
//   - counted mode (Strict false): overflow is measured, never fatal —
//     OverflowBytes reports how far the peak exceeded the limit;
//   - strict mode (Strict true): the Acquire that crosses the limit
//     fails with an error wrapping ErrBudget.
//
// Usage is monotonically non-decreasing while slice mapping runs
// (batches are acquired as they seal) and monotonically non-increasing
// while comparison retires join units (ReleaseUnit), so the peak equals
// the total mapped bytes regardless of worker interleaving — Peak and
// OverflowBytes are deterministic at every Parallelism setting and in
// both overlapped and barrier modes. A nil *Budget is a valid no-op
// accountant; Limit 0 means unlimited (counted mode never overflows,
// strict mode never fails).
type Budget struct {
	limit  int64
	strict bool
	used   atomic.Int64
	peak   atomic.Int64

	// Flight-recorder attachment, set once via SetFlight before any
	// worker touches the budget (never mutated concurrently with
	// Acquire/Release). A nil fr records nothing.
	fr  *flight.Recorder
	qid uint32
}

// NewBudget returns a budget with the given byte limit and overflow
// mode. limit <= 0 means unlimited.
func NewBudget(limit int64, strict bool) *Budget {
	if limit < 0 {
		limit = 0
	}
	return &Budget{limit: limit, strict: strict}
}

// SetFlight attaches a flight recorder so every charge/credit (and the
// overflow crossing, if any) leaves an event trail. Must be called
// before the budget is shared with workers; events are pure telemetry
// and never alter accounting.
func (b *Budget) SetFlight(fr *flight.Recorder, qid uint32) {
	if b != nil {
		b.fr, b.qid = fr, qid
	}
}

// Acquire charges n bytes. In strict mode it fails when the charge
// pushes usage past the limit (the bytes stay charged; the query is
// aborting anyway).
func (b *Budget) Acquire(n int64) error {
	if b == nil {
		return nil
	}
	u := b.used.Add(n)
	for {
		p := b.peak.Load()
		if u <= p || b.peak.CompareAndSwap(p, u) {
			break
		}
	}
	b.fr.Record(flight.EvBudgetCharge, b.qid, n, u, b.limit, 0)
	if b.limit > 0 && u > b.limit && u-n <= b.limit {
		// This charge crossed the limit — record the crossing exactly
		// once per excursion regardless of how far usage climbs.
		b.fr.Record(flight.EvBudgetOverflow, b.qid, u, b.limit, n, boolArg(b.strict))
	}
	if b.strict && b.limit > 0 && u > b.limit {
		return fmt.Errorf("%w: %d bytes in flight, limit %d", ErrBudget, u, b.limit)
	}
	return nil
}

// Release returns n bytes to the budget.
func (b *Budget) Release(n int64) {
	if b != nil {
		u := b.used.Add(-n)
		b.fr.Record(flight.EvBudgetCredit, b.qid, n, u, b.limit, 0)
	}
}

func boolArg(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// Used returns the bytes currently charged.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Peak returns the high-water mark of charged bytes.
func (b *Budget) Peak() int64 {
	if b == nil {
		return 0
	}
	return b.peak.Load()
}

// Limit returns the configured byte limit (0 = unlimited).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// OverflowBytes returns how far the peak exceeded the limit — the
// counted-mode analogue of ClampedCells. Zero when within budget or
// unlimited.
func (b *Budget) OverflowBytes() int64 {
	if b == nil || b.limit <= 0 {
		return 0
	}
	over := b.peak.Load() - b.limit
	if over < 0 {
		return 0
	}
	return over
}
