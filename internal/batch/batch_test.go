package batch

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"shufflejoin/internal/array"
)

// TestBatchRoundTrip pins the columnar round trip: values appended into
// a batch decode back bit-identically, including exact Value kinds.
func TestBatchRoundTrip(t *testing.T) {
	types := []array.ScalarType{array.TypeInt64, array.TypeFloat64, array.TypeString}
	in := NewIntern()
	b := New(2, types, 8)
	cells := [][]array.Value{
		{array.IntValue(7), array.FloatValue(1.5), array.StringValue("port")},
		{array.IntValue(-3), array.FloatValue(0), array.StringValue("")},
		{array.IntValue(7), array.FloatValue(-2.25), array.StringValue("port")},
	}
	for i, vals := range cells {
		b.AppendCell([]int64{int64(i), int64(-i)}, vals, in)
	}
	if b.Len() != 3 || b.Full() {
		t.Fatalf("Len=%d Full=%v, want 3,false", b.Len(), b.Full())
	}
	for i, vals := range cells {
		if b.Coords[0][i] != int64(i) || b.Coords[1][i] != int64(-i) {
			t.Errorf("cell %d coords = (%d,%d)", i, b.Coords[0][i], b.Coords[1][i])
		}
		for c := range vals {
			if got := b.Cols[c].Value(i, in); !reflect.DeepEqual(got, vals[c]) {
				t.Errorf("cell %d col %d = %#v, want %#v", i, c, got, vals[c])
			}
		}
	}
	// 3 cells × (2 coords + 3 values) × 8 bytes.
	if got := b.Bytes(); got != 3*5*8 {
		t.Errorf("Bytes = %d, want %d", got, 3*5*8)
	}
	b.Reset()
	if b.Len() != 0 || b.Bytes() != 0 {
		t.Errorf("after Reset: Len=%d Bytes=%d", b.Len(), b.Bytes())
	}
}

// TestInternDedup pins the dictionary: repeated strings share one code,
// codes decode back exactly, and accounted bytes grow only on first
// sight.
func TestInternDedup(t *testing.T) {
	in := NewIntern()
	a1 := in.ID("anchorage")
	b1 := in.ID("berth")
	a2 := in.ID("anchorage")
	if a1 != a2 {
		t.Errorf("same string interned as %d and %d", a1, a2)
	}
	if a1 == b1 {
		t.Errorf("distinct strings share code %d", a1)
	}
	if in.Str(a1) != "anchorage" || in.Str(b1) != "berth" {
		t.Errorf("decode mismatch: %q, %q", in.Str(a1), in.Str(b1))
	}
	if in.Count() != 2 {
		t.Errorf("Count = %d, want 2", in.Count())
	}
	after2 := in.Bytes()
	in.ID("anchorage")
	if in.Bytes() != after2 {
		t.Errorf("Bytes grew on a repeated string: %d -> %d", after2, in.Bytes())
	}
}

// TestBudgetCounted: without strict mode the budget never fails; it
// tracks usage, records the peak, and reports overflow past the limit.
func TestBudgetCounted(t *testing.T) {
	b := NewBudget(100, false)
	if err := b.Acquire(80); err != nil {
		t.Fatalf("Acquire(80): %v", err)
	}
	if err := b.Acquire(70); err != nil {
		t.Fatalf("counted mode must not fail: %v", err)
	}
	if b.Used() != 150 || b.Peak() != 150 {
		t.Errorf("Used=%d Peak=%d, want 150,150", b.Used(), b.Peak())
	}
	b.Release(80)
	if b.Used() != 70 || b.Peak() != 150 {
		t.Errorf("after Release: Used=%d Peak=%d, want 70,150", b.Used(), b.Peak())
	}
	if got := b.OverflowBytes(); got != 50 {
		t.Errorf("OverflowBytes = %d, want 50", got)
	}
	// No limit set means no overflow, whatever the peak.
	free := NewBudget(0, false)
	free.Acquire(1 << 30)
	if got := free.OverflowBytes(); got != 0 {
		t.Errorf("unlimited OverflowBytes = %d, want 0", got)
	}
}

// TestBudgetStrict: in strict mode the acquire that crosses the limit
// fails with ErrBudget.
func TestBudgetStrict(t *testing.T) {
	b := NewBudget(100, true)
	if err := b.Acquire(100); err != nil {
		t.Fatalf("Acquire at the limit: %v", err)
	}
	err := b.Acquire(1)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("Acquire over the limit = %v, want ErrBudget", err)
	}
}

// TestBudgetNil: a nil budget is a no-op accountant, so unbudgeted
// callers need no branches.
func TestBudgetNil(t *testing.T) {
	var b *Budget
	if err := b.Acquire(10); err != nil {
		t.Fatalf("nil Acquire: %v", err)
	}
	b.Release(10)
	if b.Used() != 0 || b.Peak() != 0 || b.OverflowBytes() != 0 || b.Limit() != 0 {
		t.Error("nil budget must report zeros")
	}
}

// TestArraySourceMatchesCells pins the streaming array iterator against
// the materializing reference at several batch capacities.
func TestArraySourceMatchesCells(t *testing.T) {
	s := array.MustParseSchema("G<v:int, tag:string>[i=1,60,10]")
	a := array.MustNew(s)
	rng := rand.New(rand.NewSource(11))
	tags := []string{"x", "y", "z"}
	used := make(map[int64]bool)
	for len(used) < 45 {
		c := rng.Int63n(60) + 1
		if used[c] {
			continue
		}
		used[c] = true
		a.MustPut([]int64{c}, []array.Value{
			array.IntValue(rng.Int63n(9)),
			array.StringValue(tags[rng.Intn(len(tags))]),
		})
	}
	a.SortAll()
	want := a.Cells()

	for _, capacity := range []int{1, 7, 1024} {
		in := NewIntern()
		src := NewArraySource(a, in)
		b := New(len(s.Dims), []array.ScalarType{array.TypeInt64, array.TypeString}, capacity)
		var got []array.StoredCell
		for src.Next(b) {
			for i := 0; i < b.Len(); i++ {
				c := array.StoredCell{Coords: []int64{b.Coords[0][i]}}
				for col := range b.Cols {
					c.Attrs = append(c.Attrs, b.Cols[col].Value(i, in))
				}
				got = append(got, c)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("capacity=%d: streamed cells differ from Cells()", capacity)
		}
	}
}
