// Package batch implements the bounded columnar cell batches of the
// streaming data plane. A Batch is a fixed-capacity window of cells in
// the same vertically partitioned layout the chunk store uses — one
// int64 column per dimension plus one typed column per carried value —
// so producers append cells without materializing per-cell coordinate
// or attribute slices, and consumers decode whole windows at once.
//
// String values are dictionary-encoded: a column of type
// array.TypeString stores uint32 codes into a query-shared Intern
// table, so a batch's memory footprint is a flat 8 bytes per stored
// value regardless of string content, and repeated strings are stored
// once per query. Batches are reusable (Reset) and are pooled by their
// producers, which is what makes the steady-state streaming path
// allocation-free.
//
// The companion types — Intern (the shared dictionary), Budget (the
// per-query memory accountant with counted and strict overflow modes),
// and CellIterator (the pull contract) — complete the package. See
// DESIGN.md §11.
package batch

import "shufflejoin/internal/array"

// Col is one value column of a batch: dimension-typed storage selected
// by Type, exactly mirroring array.Column except that strings are
// stored as dictionary codes rather than string headers.
type Col struct {
	Type  array.ScalarType
	Ints  []int64   // Type == array.TypeInt64
	Fs    []float64 // Type == array.TypeFloat64
	Codes []uint32  // Type == array.TypeString: codes into the query Intern
}

// Append adds one value, interning strings through in. The value's kind
// must match the column type (producers append straight from same-typed
// chunk columns).
func (c *Col) Append(v array.Value, in *Intern) {
	switch c.Type {
	case array.TypeInt64:
		c.Ints = append(c.Ints, v.AsInt())
	case array.TypeFloat64:
		c.Fs = append(c.Fs, v.AsFloat())
	case array.TypeString:
		c.Codes = append(c.Codes, in.ID(v.Str))
	}
}

// Value reconstructs the value at row i. The result is bit-identical to
// what array.Column.Value would have produced for the same source cell:
// the reconstructed Value kinds (and, for strings, contents) match the
// materializing path exactly.
func (c *Col) Value(i int, in *Intern) array.Value {
	switch c.Type {
	case array.TypeInt64:
		return array.IntValue(c.Ints[i])
	case array.TypeFloat64:
		return array.FloatValue(c.Fs[i])
	case array.TypeString:
		return array.StringValue(in.Str(c.Codes[i]))
	}
	return array.Value{}
}

// reset truncates the column for reuse, keeping capacity.
func (c *Col) reset() {
	c.Ints = c.Ints[:0]
	c.Fs = c.Fs[:0]
	c.Codes = c.Codes[:0]
}

// Batch is a fixed-capacity columnar window of cells: Coords[d][row]
// holds the coordinate of dimension d, Cols[c] the c-th carried value
// column. Producers fill it to capacity, hand it downstream, and
// recycle it via Reset once the consumer is done.
type Batch struct {
	Coords   [][]int64
	Cols     []Col
	capacity int
}

// New returns an empty batch for ndims dimensions and the given value
// column types, with row capacity cap (at least 1). Column storage
// grows lazily toward the capacity as cells arrive — a slice map's many
// partially filled tail batches (one per sparse (unit, node) run) then
// cost only what they hold — and, once grown, is retained across Reset,
// so pooled batches reach a steady state with no further allocation.
func New(ndims int, types []array.ScalarType, capacity int) *Batch {
	if capacity < 1 {
		capacity = 1
	}
	b := &Batch{capacity: capacity}
	b.Coords = make([][]int64, ndims)
	b.Cols = make([]Col, len(types))
	for i, t := range types {
		b.Cols[i] = Col{Type: t}
	}
	return b
}

// Len returns the number of cells currently stored.
func (b *Batch) Len() int {
	if len(b.Coords) > 0 {
		return len(b.Coords[0])
	}
	if len(b.Cols) > 0 {
		c := &b.Cols[0]
		switch c.Type {
		case array.TypeInt64:
			return len(c.Ints)
		case array.TypeFloat64:
			return len(c.Fs)
		case array.TypeString:
			return len(c.Codes)
		}
	}
	return 0
}

// Cap returns the row capacity the batch was created with.
func (b *Batch) Cap() int { return b.capacity }

// Full reports whether the batch has reached capacity.
func (b *Batch) Full() bool { return b.Len() >= b.capacity }

// Reset truncates the batch for reuse, keeping all column capacity.
func (b *Batch) Reset() {
	for d := range b.Coords {
		b.Coords[d] = b.Coords[d][:0]
	}
	for i := range b.Cols {
		b.Cols[i].reset()
	}
}

// Bytes returns the accounted memory of the stored cells: a flat 8
// bytes per coordinate and per value (string codes are charged 8 like
// every other value; the strings themselves are owned and accounted by
// the Intern table). This is the quantity Budget tracks.
func (b *Batch) Bytes() int64 {
	return int64(b.Len()) * 8 * int64(len(b.Coords)+len(b.Cols))
}

// AppendCell appends one cell: coords (one per dimension) and vals (one
// per value column, kinds matching the column types). The caller must
// not exceed capacity.
func (b *Batch) AppendCell(coords []int64, vals []array.Value, in *Intern) {
	for d := range b.Coords {
		b.Coords[d] = append(b.Coords[d], coords[d])
	}
	for i := range b.Cols {
		b.Cols[i].Append(vals[i], in)
	}
}

// CellIterator is the pull contract of the streaming data plane: Next
// resets b and fills it with up to Cap cells, returning false when the
// source is exhausted (b is left empty). Implementations yield cells in
// a deterministic order; callers own b and may recycle it between
// calls.
type CellIterator interface {
	Next(b *Batch) bool
}

// ArraySource adapts an array to the CellIterator contract, yielding
// cells in the array's deterministic scan order (chunk-key C-order,
// in-chunk row order) — the streaming replacement for array.Cells().
type ArraySource struct {
	sc     *array.Scanner
	blk    array.CellBlock
	off    int // consumed rows of blk
	intern *Intern
}

// NewArraySource returns an iterator over a's cells. in receives any
// string attribute values; it must be non-nil when the schema has
// string attributes.
func NewArraySource(a *array.Array, in *Intern) *ArraySource {
	return &ArraySource{sc: a.NewScanner(0), intern: in}
}

// Next implements CellIterator.
func (s *ArraySource) Next(b *Batch) bool {
	b.Reset()
	for !b.Full() {
		if s.off >= s.blk.Len() {
			blk, ok := s.sc.Next()
			if !ok {
				break
			}
			s.blk, s.off = blk, 0
		}
		ch := s.blk.Chunk
		row := s.blk.From + s.off
		for d := range b.Coords {
			b.Coords[d] = append(b.Coords[d], ch.Coords[d][row])
		}
		for i := range b.Cols {
			b.Cols[i].Append(ch.Cols[i].Value(row), s.intern)
		}
		s.off++
	}
	return b.Len() > 0
}
