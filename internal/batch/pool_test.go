package batch

import (
	"testing"

	"shufflejoin/internal/array"
)

func TestReshape(t *testing.T) {
	it := array.TypeInt64
	ft := array.TypeFloat64
	st := array.TypeString

	b := New(2, []array.ScalarType{it, st}, 4)
	in := NewIntern()
	b.AppendCell([]int64{1, 2}, []array.Value{array.IntValue(7), array.StringValue("x")}, in)
	b.AppendCell([]int64{3, 4}, []array.Value{array.IntValue(8), array.StringValue("y")}, in)

	// Reshape to a wider layout with different column types.
	b.Reshape(3, []array.ScalarType{ft, it, it}, 16)
	if b.Len() != 0 || b.Cap() != 16 {
		t.Fatalf("after Reshape: Len=%d Cap=%d, want 0/16", b.Len(), b.Cap())
	}
	if len(b.Coords) != 3 || len(b.Cols) != 3 {
		t.Fatalf("shape = %d dims / %d cols, want 3/3", len(b.Coords), len(b.Cols))
	}
	for i, want := range []array.ScalarType{ft, it, it} {
		if b.Cols[i].Type != want {
			t.Fatalf("col %d type = %v, want %v", i, b.Cols[i].Type, want)
		}
	}
	b.AppendCell([]int64{9, 9, 9}, []array.Value{array.FloatValue(1.5), array.IntValue(2), array.IntValue(3)}, in)
	if b.Len() != 1 || b.Coords[2][0] != 9 || b.Cols[0].Fs[0] != 1.5 {
		t.Fatal("reshaped batch does not store cells correctly")
	}

	// Shrink back down; grown storage beyond the new shape is retained
	// within capacity, so a later re-widening reuses it.
	b.Reshape(1, []array.ScalarType{it}, 4)
	if len(b.Coords) != 1 || len(b.Cols) != 1 || b.Len() != 0 {
		t.Fatalf("after shrink: %d dims / %d cols / len %d", len(b.Coords), len(b.Cols), b.Len())
	}
	grown := b.Coords[:3][2] // the dim-2 backing slice survives the shrink
	if cap(grown) == 0 {
		t.Fatal("shrink dropped retained dimension storage")
	}
}

// TestReshapeMatchesNew pins that a recycled, reshaped batch behaves
// exactly like a fresh one for the same layout.
func TestReshapeMatchesNew(t *testing.T) {
	types := []array.ScalarType{array.TypeInt64, array.TypeFloat64}
	in := NewIntern()

	fresh := New(2, types, 8)
	recycled := New(5, []array.ScalarType{array.TypeString, array.TypeString, array.TypeString}, 3)
	recycled.AppendCell([]int64{1, 2, 3, 4, 5}, []array.Value{
		array.StringValue("a"), array.StringValue("b"), array.StringValue("c")}, in)
	recycled.Reshape(2, types, 8)

	for _, b := range []*Batch{fresh, recycled} {
		for i := 0; i < 8; i++ {
			b.AppendCell([]int64{int64(i), int64(-i)},
				[]array.Value{array.IntValue(int64(i * 10)), array.FloatValue(float64(i) / 2)}, in)
		}
	}
	if fresh.Len() != recycled.Len() || fresh.Bytes() != recycled.Bytes() || !recycled.Full() {
		t.Fatalf("fresh Len/Bytes %d/%d vs recycled %d/%d",
			fresh.Len(), fresh.Bytes(), recycled.Len(), recycled.Bytes())
	}
	for i := 0; i < 8; i++ {
		for d := 0; d < 2; d++ {
			if fresh.Coords[d][i] != recycled.Coords[d][i] {
				t.Fatalf("coords diverge at row %d dim %d", i, d)
			}
		}
		for c := 0; c < 2; c++ {
			if fresh.Cols[c].Value(i, in) != recycled.Cols[c].Value(i, in) {
				t.Fatalf("values diverge at row %d col %d", i, c)
			}
		}
	}
}

func TestPoolRecycles(t *testing.T) {
	types := []array.ScalarType{array.TypeInt64}
	b := Get(1, types, 4)
	in := NewIntern()
	b.AppendCell([]int64{1}, []array.Value{array.IntValue(1)}, in)
	Put(b)
	got := Get(2, []array.ScalarType{array.TypeInt64, array.TypeFloat64}, 8)
	if got.Len() != 0 || len(got.Coords) != 2 || got.Cap() != 8 {
		t.Fatalf("recycled batch: Len=%d dims=%d Cap=%d", got.Len(), len(got.Coords), got.Cap())
	}
	Put(got)
	Put(nil) // must be a no-op
}

// BenchmarkBatchPoolConcurrent is the satellite's gate: steady-state
// batch Get/fill/Put must stay at 0 allocs/op under 16-way concurrency
// (the old per-RunSet free list was allocation-free too, but serialized
// on one mutex; the sharded pool must keep the former while fixing the
// latter).
func BenchmarkBatchPoolConcurrent(b *testing.B) {
	types := []array.ScalarType{array.TypeInt64, array.TypeInt64}
	in := NewIntern()
	coords := []int64{3, 4}
	vals := []array.Value{array.IntValue(1), array.IntValue(2)}
	// Warm the pool past the worker count so the steady state never
	// falls back to New.
	warm := make([]*Batch, 64)
	for i := range warm {
		warm[i] = Get(2, types, 64)
	}
	for _, bt := range warm {
		// Fill once so column storage is grown before measurement.
		for !bt.Full() {
			bt.AppendCell(coords, vals, in)
		}
		bt.Reset()
		Put(bt)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			bt := Get(2, types, 64)
			for !bt.Full() {
				bt.AppendCell(coords, vals, in)
			}
			bt.Reset()
			Put(bt)
		}
	})
}
