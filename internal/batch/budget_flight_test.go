package batch

import (
	"errors"
	"testing"

	"shufflejoin/internal/flight"
)

func TestBudgetFlightEvents(t *testing.T) {
	fr := flight.New(64)
	b := NewBudget(100, false)
	b.SetFlight(fr, 9)

	if err := b.Acquire(60); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(60); err != nil { // crosses the limit: 120 > 100
		t.Fatal(err)
	}
	if err := b.Acquire(10); err != nil { // already over: no second overflow event
		t.Fatal(err)
	}
	b.Release(130)

	var charges, credits, overflows int
	for _, e := range fr.Snapshot(0) {
		if e.QID != 9 {
			t.Errorf("event qid = %d, want 9", e.QID)
		}
		switch e.Type {
		case flight.EvBudgetCharge:
			charges++
		case flight.EvBudgetCredit:
			credits++
			if e.Args[0] != 130 || e.Args[1] != 0 {
				t.Errorf("credit args = %v", e.Args)
			}
		case flight.EvBudgetOverflow:
			overflows++
			if e.Args[0] != 120 || e.Args[1] != 100 || e.Args[3] != 0 {
				t.Errorf("overflow args = %v", e.Args)
			}
		}
	}
	if charges != 3 || credits != 1 || overflows != 1 {
		t.Errorf("events charge/credit/overflow = %d/%d/%d, want 3/1/1", charges, credits, overflows)
	}
}

func TestBudgetStrictOverflowEvent(t *testing.T) {
	fr := flight.New(16)
	b := NewBudget(50, true)
	b.SetFlight(fr, 1)
	if err := b.Acquire(80); !errors.Is(err, ErrBudget) {
		t.Fatalf("strict acquire err = %v", err)
	}
	var ev *flight.Event
	for _, e := range fr.Snapshot(0) {
		if e.Type == flight.EvBudgetOverflow {
			ev = &e
		}
	}
	if ev == nil || ev.Args[3] != 1 {
		t.Fatalf("strict overflow event = %+v", ev)
	}
}

func TestBudgetWithoutFlight(t *testing.T) {
	// A budget with no recorder attached must behave exactly as before.
	b := NewBudget(10, true)
	if err := b.Acquire(5); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire(10); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v", err)
	}
	b.Release(15)
	var nilB *Budget
	nilB.SetFlight(flight.New(16), 1) // must not panic
}
