package batch

import "sync"

// Intern is a query-shared string dictionary: every distinct string
// value that flows through the streaming data plane is stored once and
// referenced by a dense uint32 code. Batches store the codes; decoding
// returns the canonical string, so downstream value comparisons see
// exactly the contents the source chunks held.
//
// Concurrent producers may assign different codes to the same string
// set depending on interleaving — codes are private to one query and
// never compared across tables — but the decoded strings, the distinct
// count, and the accounted bytes are deterministic.
type Intern struct {
	mu    sync.RWMutex
	ids   map[string]uint32
	strs  []string
	bytes int64
}

// NewIntern returns an empty dictionary.
func NewIntern() *Intern {
	return &Intern{ids: make(map[string]uint32)}
}

// ID returns the code for s, interning it on first sight.
func (in *Intern) ID(s string) uint32 {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[s]; ok {
		return id
	}
	id = uint32(len(in.strs))
	in.strs = append(in.strs, s)
	in.ids[s] = id
	// String content plus the 16-byte header the dictionary retains.
	in.bytes += int64(len(s)) + 16
	return id
}

// Str returns the canonical string for a code previously returned by ID.
func (in *Intern) Str(id uint32) string {
	in.mu.RLock()
	s := in.strs[id]
	in.mu.RUnlock()
	return s
}

// Count returns the number of distinct interned strings.
func (in *Intern) Count() int {
	in.mu.RLock()
	n := len(in.strs)
	in.mu.RUnlock()
	return n
}

// Bytes returns the accounted size of the dictionary's string storage.
func (in *Intern) Bytes() int64 {
	in.mu.RLock()
	b := in.bytes
	in.mu.RUnlock()
	return b
}
