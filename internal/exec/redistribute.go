package exec

import (
	"fmt"
	"math"

	"shufflejoin/internal/afl"
	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/physical"
	"shufflejoin/internal/simnet"
)

// RedistributeReport accounts for a distributed redimension: the simulated
// network shuffle that moves every cell to the node owning its destination
// chunk, plus the per-node chunk sorting that follows.
type RedistributeReport struct {
	Align      simnet.Result
	AlignTime  float64 // simulated shuffle makespan
	SortTime   float64 // slowest node's modeled chunk-sort time
	TotalTime  float64
	CellsMoved int64
}

// RedistributeOptions tunes a distributed redimension.
type RedistributeOptions struct {
	Params     physical.CostParams
	Scheduling simnet.Scheduling
	// StrictBounds fails the redistribution when a source cell's value for
	// a target dimension falls outside that dimension's declared range,
	// instead of silently clamping it onto the boundary (clamped cells
	// collapse into the edge chunks, skewing placement and sort costs).
	StrictBounds bool
}

// Redistribute performs the redimension of Section 2.3.1 as a cluster
// operation: every node maps its local cells into the target schema's
// chunk grid, ships each cell to the node owning its destination chunk
// (dealt round-robin over the grid), and the receivers sort their new
// chunks. It returns the reorganized distributed array, registered in the
// catalog under the target schema's name, with the timing report.
func Redistribute(c *cluster.Cluster, d *cluster.Distributed, target *array.Schema, opt RedistributeOptions) (*cluster.Distributed, *RedistributeReport, error) {
	if opt.Params == (physical.CostParams{}) {
		opt.Params = physical.DefaultParams()
	}
	if err := target.Validate(); err != nil {
		return nil, nil, err
	}

	// The actual reorganization (single logical array; ownership below).
	out, err := afl.Redimension(d.Array, target)
	if err != nil {
		return nil, nil, err
	}

	// Destination ownership: deal target chunks round-robin in C-order.
	destNode := make(map[array.ChunkKey]int, len(out.Chunks))
	for i, key := range out.SortedKeys() {
		destNode[key] = i % c.K
	}

	// Transfer accounting: walk the source cells again, mapping each to
	// its destination chunk and aggregating (sourceNode -> destNode) cell
	// counts per destination chunk (one slice per source node per chunk,
	// as in the shuffle join's data alignment).
	type flow struct{ from, to int }
	counts := make(map[array.ChunkKey]map[flow]int64)
	mapper, err := targetMapper(d.Array.Schema, target, opt.StrictBounds)
	if err != nil {
		return nil, nil, err
	}
	for key, ch := range d.Array.Chunks {
		from := d.Placement[key]
		for row := 0; row < ch.Len(); row++ {
			coords, attrs := ch.Cell(row)
			destKey, err := mapper(coords, attrs)
			if err != nil {
				return nil, nil, err
			}
			to, ok := destNode[destKey]
			if !ok {
				// Destination chunk empty in out (cannot happen: the cell
				// itself occupies it), but guard anyway.
				to = from
			}
			m := counts[destKey]
			if m == nil {
				m = make(map[flow]int64)
				counts[destKey] = m
			}
			m[flow{from, to}]++
		}
	}
	var transfers []simnet.Transfer
	var moved int64
	for _, key := range out.SortedKeys() { // deterministic order
		for f, n := range counts[key] {
			if f.from == f.to {
				continue
			}
			transfers = append(transfers, simnet.Transfer{From: f.from, To: f.to, Cells: n})
			moved += n
		}
	}
	// Deterministic transfer order: map iteration above varies; sort.
	sortTransfers(transfers)

	align, err := simnet.Simulate(simnet.Config{
		Nodes:       c.K,
		PerCellTime: opt.Params.Transfer,
		Scheduling:  opt.Scheduling,
	}, transfers)
	if err != nil {
		return nil, nil, err
	}

	// Per-node sort cost of the received chunks: n·log2(n) per chunk at
	// the merge per-cell rate (Table 1's in-chunk sort).
	sortTime := make([]float64, c.K)
	for key, ch := range out.Chunks {
		n := float64(ch.Len())
		if n > 1 {
			sortTime[destNode[key]] += opt.Params.Merge * n * log2(n)
		}
	}
	var maxSort float64
	for _, s := range sortTime {
		if s > maxSort {
			maxSort = s
		}
	}

	placement := make(cluster.Placement, len(out.Chunks))
	for key := range out.Chunks {
		placement[key] = destNode[key]
	}
	dist, err := c.LoadExplicit(out, placement)
	if err != nil {
		return nil, nil, err
	}
	rep := &RedistributeReport{
		Align:      align,
		AlignTime:  align.Makespan,
		SortTime:   maxSort,
		TotalTime:  align.Makespan + maxSort,
		CellsMoved: moved,
	}
	return dist, rep, nil
}

// targetMapper resolves how a source cell maps into the target chunk grid.
// Out-of-range values are clamped onto the boundary, or rejected when
// strict is set.
func targetMapper(src, target *array.Schema, strict bool) (func(coords []int64, attrs []array.Value) (array.ChunkKey, error), error) {
	type ref struct {
		isDim bool
		idx   int
	}
	refs := make([]ref, len(target.Dims))
	for i, d := range target.Dims {
		if j := src.DimIndex(d.Name); j >= 0 {
			refs[i] = ref{isDim: true, idx: j}
			continue
		}
		if j := src.AttrIndex(d.Name); j >= 0 {
			refs[i] = ref{isDim: false, idx: j}
			continue
		}
		return nil, fmt.Errorf("exec: target dimension %q not in source %s", d.Name, src.Name)
	}
	dims := target.Dims
	return func(coords []int64, attrs []array.Value) (array.ChunkKey, error) {
		idx := make([]int64, len(refs))
		for i, r := range refs {
			var v int64
			if r.isDim {
				v = coords[r.idx]
			} else {
				v = attrs[r.idx].AsInt()
			}
			if v < dims[i].Start || v > dims[i].End {
				if strict {
					return "", fmt.Errorf("exec: cell value %d outside target dimension %s=[%d,%d] (StrictBounds)",
						v, dims[i].Name, dims[i].Start, dims[i].End)
				}
				if v < dims[i].Start {
					v = dims[i].Start
				} else {
					v = dims[i].End
				}
			}
			idx[i] = dims[i].ChunkIndex(v)
		}
		return array.MakeChunkKey(idx), nil
	}, nil
}

func sortTransfers(ts []simnet.Transfer) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && lessTransfer(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func lessTransfer(a, b simnet.Transfer) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	if a.To != b.To {
		return a.To < b.To
	}
	return a.Cells > b.Cells
}

func log2(x float64) float64 {
	return math.Log2(x)
}
