package exec

import (
	"strings"
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
)

func TestRedistributeDimensionSwap(t *testing.T) {
	// Redimension the paper's B<v1,v2,i>[j] so attribute i becomes a
	// dimension, across a 3-node cluster.
	b := array.MustNew(array.MustParseSchema("B<v1:int, i:int>[j=1,60,10]"))
	for j := int64(1); j <= 60; j++ {
		b.MustPut([]int64{j}, []array.Value{array.IntValue(j * 10), array.IntValue(61 - j)})
	}
	b.SortAll()
	c := cluster.MustNew(3)
	d := c.Load(b, cluster.RoundRobin)

	target := array.MustParseSchema("B2<v1:int>[i=1,60,10, j=1,60,10]")
	out, rep, err := Redistribute(c, d, target, RedistributeOptions{})
	if err != nil {
		t.Fatalf("Redistribute: %v", err)
	}
	if out.Array.CellCount() != 60 {
		t.Errorf("cells = %d, want 60", out.Array.CellCount())
	}
	// Cell originally at j=1 (i=60) must now live at (60, 1).
	vals, ok := out.Array.Get([]int64{60, 1})
	if !ok || vals[0].AsInt() != 10 {
		t.Errorf("cell at (60,1) = %v, %v", vals, ok)
	}
	// Registered in the catalog under the new name.
	if _, err := c.Catalog.Lookup("B2"); err != nil {
		t.Errorf("catalog lookup: %v", err)
	}
	// Placement valid and chunks sorted.
	if err := out.Validate(c.K); err != nil {
		t.Fatalf("placement: %v", err)
	}
	for _, ch := range out.Array.Chunks {
		if !ch.IsSortedCOrder() {
			t.Error("redistributed chunk not sorted")
		}
	}
	if rep.TotalTime < rep.AlignTime {
		t.Error("total must include alignment")
	}
	// Conservation: simulated cells moved equals the report's count.
	var simMoved int64
	for _, s := range rep.Align.CellsSent {
		simMoved += s
	}
	if simMoved != rep.CellsMoved {
		t.Errorf("sim moved %d, report %d", simMoved, rep.CellsMoved)
	}
}

func TestRedistributeNoMoveWhenAligned(t *testing.T) {
	// Redimensioning to the identical schema with matching ownership moves
	// only cells whose destination chunk lands elsewhere; with one node,
	// nothing moves at all.
	a := buildArray("A<v:int>[i=1,100,10]", 21, 80, 50)
	c := cluster.MustNew(1)
	d := c.Load(a, cluster.RoundRobin)
	out, rep, err := Redistribute(c, d, array.MustParseSchema("A2<v:int>[i=1,100,10]"), RedistributeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsMoved != 0 || rep.AlignTime != 0 {
		t.Errorf("single node moved %d cells", rep.CellsMoved)
	}
	if out.Array.CellCount() != 80 {
		t.Errorf("cells = %d", out.Array.CellCount())
	}
}

func TestRedistributeErrors(t *testing.T) {
	a := buildArray("A<v:int>[i=1,100,10]", 22, 50, 50)
	c := cluster.MustNew(2)
	d := c.Load(a, cluster.RoundRobin)
	if _, _, err := Redistribute(c, d, array.MustParseSchema("T<v:int>[zzz=1,10,5]"), RedistributeOptions{}); err == nil {
		t.Error("unknown target dimension should fail")
	}
	bad := &array.Schema{Name: "X"}
	if _, _, err := Redistribute(c, d, bad, RedistributeOptions{}); err == nil {
		t.Error("invalid target schema should fail")
	}
}

func TestRedistributeMismatchedChunkInterval(t *testing.T) {
	// A target whose chunk interval was corrupted (zero / negative) must be
	// rejected by schema validation before any cell moves, not divide by
	// zero inside the chunk grid math.
	a := buildArray("A<v:int>[i=1,100,10]", 23, 40, 50)
	c := cluster.MustNew(2)
	d := c.Load(a, cluster.RoundRobin)
	for _, interval := range []int64{0, -5} {
		target := array.MustParseSchema("T<v:int>[i=1,100,10]")
		target.Dims[0].ChunkInterval = interval
		_, _, err := Redistribute(c, d, target, RedistributeOptions{})
		if err == nil {
			t.Errorf("chunk interval %d: want validation error, got nil", interval)
		} else if !strings.Contains(err.Error(), "chunk interval") {
			t.Errorf("chunk interval %d: error %q does not mention the chunk interval", interval, err)
		}
	}
}

func TestRedistributeEmptyDistribution(t *testing.T) {
	// Redistributing an empty array is a no-op, not an error: zero cells
	// moved, zero modeled time, and the (empty) result still lands in the
	// catalog under the target name.
	empty := array.MustNew(array.MustParseSchema("A<v:int>[i=1,100,10]"))
	c := cluster.MustNew(3)
	d := c.Load(empty, cluster.RoundRobin)
	out, rep, err := Redistribute(c, d, array.MustParseSchema("A2<v:int>[i=1,100,20]"), RedistributeOptions{})
	if err != nil {
		t.Fatalf("Redistribute(empty): %v", err)
	}
	if out.Array.CellCount() != 0 {
		t.Errorf("cells = %d, want 0", out.Array.CellCount())
	}
	if rep.CellsMoved != 0 || rep.AlignTime != 0 || rep.SortTime != 0 || rep.TotalTime != 0 {
		t.Errorf("empty redistribution reported work: %+v", rep)
	}
	if _, err := c.Catalog.Lookup("A2"); err != nil {
		t.Errorf("catalog lookup: %v", err)
	}
}

func TestRedistributeStrictBounds(t *testing.T) {
	// One cell's attribute value (500) falls outside the target dimension
	// v=[1,50]. Default mode clamps it onto the boundary; StrictBounds
	// turns it into an error naming the offending value and range.
	a := array.MustNew(array.MustParseSchema("A<v:int>[i=1,20,5]"))
	for i := int64(1); i <= 20; i++ {
		v := i
		if i == 7 {
			v = 500
		}
		a.MustPut([]int64{i}, []array.Value{array.IntValue(v)})
	}
	a.SortAll()
	target := array.MustParseSchema("T<i:int>[v=1,50,10]")

	c := cluster.MustNew(2)
	d := c.Load(a, cluster.RoundRobin)
	out, _, err := Redistribute(c, d, target, RedistributeOptions{})
	if err != nil {
		t.Fatalf("clamping mode: %v", err)
	}
	if vals, ok := out.Array.Get([]int64{50}); !ok || vals[0].AsInt() != 7 {
		t.Errorf("out-of-range cell not clamped onto boundary v=50: %v, %v", vals, ok)
	}

	c2 := cluster.MustNew(2)
	d2 := c2.Load(a.Clone(), cluster.RoundRobin)
	_, _, err = Redistribute(c2, d2, target, RedistributeOptions{StrictBounds: true})
	if err == nil {
		t.Fatal("StrictBounds: want error for out-of-range value, got nil")
	}
	for _, frag := range []string{"StrictBounds", "500", "v=[1,50]"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("StrictBounds error %q missing %q", err, frag)
		}
	}

	// With every value in range, StrictBounds matches the default mode
	// cell for cell.
	inRange := buildArray("A<v:int>[i=1,40,8]", 24, 30, 49)
	c3 := cluster.MustNew(2)
	d3 := c3.Load(inRange, cluster.RoundRobin)
	strictOut, strictRep, err := Redistribute(c3, d3, array.MustParseSchema("T2<i:int>[v=0,50,10]"), RedistributeOptions{StrictBounds: true})
	if err != nil {
		t.Fatalf("StrictBounds with in-range data: %v", err)
	}
	c4 := cluster.MustNew(2)
	d4 := c4.Load(inRange.Clone(), cluster.RoundRobin)
	laxOut, laxRep, err := Redistribute(c4, d4, array.MustParseSchema("T2<i:int>[v=0,50,10]"), RedistributeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if strictOut.Array.CellCount() != laxOut.Array.CellCount() || strictRep.CellsMoved != laxRep.CellsMoved {
		t.Errorf("StrictBounds changed behavior on in-range data: %d/%d cells, %d/%d moved",
			strictOut.Array.CellCount(), laxOut.Array.CellCount(), strictRep.CellsMoved, laxRep.CellsMoved)
	}
}
