package exec

import (
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
)

func TestRedistributeDimensionSwap(t *testing.T) {
	// Redimension the paper's B<v1,v2,i>[j] so attribute i becomes a
	// dimension, across a 3-node cluster.
	b := array.MustNew(array.MustParseSchema("B<v1:int, i:int>[j=1,60,10]"))
	for j := int64(1); j <= 60; j++ {
		b.MustPut([]int64{j}, []array.Value{array.IntValue(j * 10), array.IntValue(61 - j)})
	}
	b.SortAll()
	c := cluster.MustNew(3)
	d := c.Load(b, cluster.RoundRobin)

	target := array.MustParseSchema("B2<v1:int>[i=1,60,10, j=1,60,10]")
	out, rep, err := Redistribute(c, d, target, RedistributeOptions{})
	if err != nil {
		t.Fatalf("Redistribute: %v", err)
	}
	if out.Array.CellCount() != 60 {
		t.Errorf("cells = %d, want 60", out.Array.CellCount())
	}
	// Cell originally at j=1 (i=60) must now live at (60, 1).
	vals, ok := out.Array.Get([]int64{60, 1})
	if !ok || vals[0].AsInt() != 10 {
		t.Errorf("cell at (60,1) = %v, %v", vals, ok)
	}
	// Registered in the catalog under the new name.
	if _, err := c.Catalog.Lookup("B2"); err != nil {
		t.Errorf("catalog lookup: %v", err)
	}
	// Placement valid and chunks sorted.
	if err := out.Validate(c.K); err != nil {
		t.Fatalf("placement: %v", err)
	}
	for _, ch := range out.Array.Chunks {
		if !ch.IsSortedCOrder() {
			t.Error("redistributed chunk not sorted")
		}
	}
	if rep.TotalTime < rep.AlignTime {
		t.Error("total must include alignment")
	}
	// Conservation: simulated cells moved equals the report's count.
	var simMoved int64
	for _, s := range rep.Align.CellsSent {
		simMoved += s
	}
	if simMoved != rep.CellsMoved {
		t.Errorf("sim moved %d, report %d", simMoved, rep.CellsMoved)
	}
}

func TestRedistributeNoMoveWhenAligned(t *testing.T) {
	// Redimensioning to the identical schema with matching ownership moves
	// only cells whose destination chunk lands elsewhere; with one node,
	// nothing moves at all.
	a := buildArray("A<v:int>[i=1,100,10]", 21, 80, 50)
	c := cluster.MustNew(1)
	d := c.Load(a, cluster.RoundRobin)
	out, rep, err := Redistribute(c, d, array.MustParseSchema("A2<v:int>[i=1,100,10]"), RedistributeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CellsMoved != 0 || rep.AlignTime != 0 {
		t.Errorf("single node moved %d cells", rep.CellsMoved)
	}
	if out.Array.CellCount() != 80 {
		t.Errorf("cells = %d", out.Array.CellCount())
	}
}

func TestRedistributeErrors(t *testing.T) {
	a := buildArray("A<v:int>[i=1,100,10]", 22, 50, 50)
	c := cluster.MustNew(2)
	d := c.Load(a, cluster.RoundRobin)
	if _, _, err := Redistribute(c, d, array.MustParseSchema("T<v:int>[zzz=1,10,5]"), RedistributeOptions{}); err == nil {
		t.Error("unknown target dimension should fail")
	}
	bad := &array.Schema{Name: "X"}
	if _, _, err := Redistribute(c, d, bad, RedistributeOptions{}); err == nil {
		t.Error("invalid target schema should fail")
	}
}
