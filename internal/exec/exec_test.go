package exec

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/physical"
	"shufflejoin/internal/simnet"
)

// buildArray fills a 1-D array with n cells at random coordinates with
// attribute v drawn from a small domain.
func buildArray(schema string, seed int64, n int, domain int64) *array.Array {
	s := array.MustParseSchema(schema)
	a := array.MustNew(s)
	rng := rand.New(rand.NewSource(seed))
	used := make(map[int64]bool)
	for len(used) < n {
		c := rng.Int63n(s.Dims[0].Extent()) + s.Dims[0].Start
		if used[c] {
			continue
		}
		used[c] = true
		a.MustPut([]int64{c}, []array.Value{array.IntValue(rng.Int63n(domain))})
	}
	a.SortAll()
	return a
}

// bruteMatches counts matches of an equi-join directly from the arrays.
func bruteMatches(l, r *array.Array, lKey, rKey func(coords []int64, attrs []array.Value) int64) int64 {
	var lv, rv []int64
	l.Scan(func(c []int64, a []array.Value) bool { lv = append(lv, lKey(c, a)); return true })
	r.Scan(func(c []int64, a []array.Value) bool { rv = append(rv, rKey(c, a)); return true })
	counts := make(map[int64]int64)
	for _, v := range rv {
		counts[v]++
	}
	var n int64
	for _, v := range lv {
		n += counts[v]
	}
	return n
}

func newCluster(t *testing.T, k int, arrays ...*array.Array) *cluster.Cluster {
	t.Helper()
	c := cluster.MustNew(k)
	for _, a := range arrays {
		c.Load(a, cluster.RoundRobin)
	}
	return c
}

func dimOf(c []int64, _ []array.Value) int64  { return c[0] }
func attrOf(_ []int64, a []array.Value) int64 { return a[0].AsInt() }

func TestDDMergeJoinCorrect(t *testing.T) {
	a := buildArray("A<v:int>[i=1,200,20]", 1, 120, 100)
	b := buildArray("B<w:int>[i=1,200,20]", 2, 130, 100)
	c := newCluster(t, 4, a, b)
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "i"}}}
	rep, err := Run(c, "A", "B", pred, nil, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Logical.Algo != join.Merge {
		t.Errorf("D:D plan chose %v, want merge", rep.Logical.Algo)
	}
	want := bruteMatches(a, b, dimOf, dimOf)
	if rep.Matches != want {
		t.Errorf("Matches = %d, want %d", rep.Matches, want)
	}
	if got := rep.Output.CellCount(); got != want {
		t.Errorf("output cells = %d, want %d", got, want)
	}
}

func TestAAHashJoinCorrect(t *testing.T) {
	a := buildArray("A<v:int>[i=1,300,30]", 3, 200, 40)
	b := buildArray("B<w:int>[j=1,300,30]", 4, 180, 40)
	out := array.MustParseSchema("T<i:int, j:int>[v=0,39,8]")
	c := newCluster(t, 4, a, b)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	algo := join.Hash
	rep, err := Run(c, "A", "B", pred, out, Options{
		ForceAlgo: &algo,
		Logical:   logical.PlanOptions{Selectivity: 0.5},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := bruteMatches(a, b, attrOf, attrOf)
	if rep.Matches != want {
		t.Errorf("Matches = %d, want %d", rep.Matches, want)
	}
}

func TestAllAlgorithmsSameMatches(t *testing.T) {
	a := buildArray("A<v:int>[i=1,300,30]", 5, 150, 30)
	b := buildArray("B<w:int>[j=1,300,30]", 6, 160, 30)
	out := array.MustParseSchema("T<i:int, j:int>[v=0,29,6]")
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	want := bruteMatches(a, b, attrOf, attrOf)
	for _, algo := range []join.Algorithm{join.Hash, join.Merge, join.NestedLoop} {
		algo := algo
		c := newCluster(t, 3, a.Clone(), b.Clone())
		rep, err := Run(c, "A", "B", pred, out, Options{ForceAlgo: &algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if rep.Matches != want {
			t.Errorf("%v: Matches = %d, want %d", algo, rep.Matches, want)
		}
	}
}

func TestAllPlannersSameOutput(t *testing.T) {
	a := buildArray("A<v:int>[i=1,400,40]", 7, 250, 60)
	b := buildArray("B<w:int>[i=1,400,40]", 8, 260, 60)
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "i"}}}
	planners := []physical.Planner{
		physical.BaselinePlanner{},
		physical.MinBandwidthPlanner{},
		physical.TabuPlanner{},
		physical.ILPPlanner{Budget: 200 * time.Millisecond},
		physical.CoarseILPPlanner{Budget: 200 * time.Millisecond, Bins: 8},
	}
	var ref []array.StoredCell
	for _, pl := range planners {
		c := newCluster(t, 4, a.Clone(), b.Clone())
		rep, err := Run(c, "A", "B", pred, nil, Options{Planner: pl})
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		cells := rep.Output.Cells()
		if ref == nil {
			ref = cells
			continue
		}
		if !reflect.DeepEqual(cells, ref) {
			t.Errorf("%s produced different output cells", pl.Name())
		}
	}
}

// TestParallelMatchesSequential is the executor's determinism contract:
// for every join algorithm, every Parallelism setting produces the same
// output cells, join statistics, modeled phase times, and counters.
func TestParallelMatchesSequential(t *testing.T) {
	a := buildArray("A<v:int>[i=1,500,50]", 9, 300, 80)
	b := buildArray("B<w:int>[i=1,500,50]", 10, 320, 80)
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "i"}}}
	type outcome struct {
		Cells        []array.StoredCell
		Matches      int64
		CellsMoved   int64
		ClampedCells int64
		AlignTime    float64
		CompareTime  float64
		Stats        join.Stats
	}
	for _, algo := range []join.Algorithm{join.Hash, join.Merge, join.NestedLoop} {
		algo := algo
		run := func(parallelism int) outcome {
			c := newCluster(t, 4, a.Clone(), b.Clone())
			rep, err := Run(c, "A", "B", pred, nil, Options{Parallelism: parallelism, ForceAlgo: &algo})
			if err != nil {
				t.Fatalf("%v parallelism=%d: %v", algo, parallelism, err)
			}
			return outcome{
				Cells:        rep.Output.Cells(),
				Matches:      rep.Matches,
				CellsMoved:   rep.CellsMoved,
				ClampedCells: rep.ClampedCells,
				AlignTime:    rep.AlignTime,
				CompareTime:  rep.CompareTime,
				Stats:        rep.JoinStats,
			}
		}
		ref := run(1)
		for _, p := range []int{0, 2, 3} {
			if got := run(p); !reflect.DeepEqual(got, ref) {
				t.Errorf("%v: parallelism=%d changed the result:\n got %+v\nwant %+v", algo, p, got, ref)
			}
		}
	}
}

// clampSetup builds a join whose destination dimension v=[0,19] covers only
// half the key domain 0..39, so every match pair with key >= 20 produces an
// out-of-range output cell.
func clampSetup(t *testing.T) (c *cluster.Cluster, out *array.Schema, pred join.Predicate, wantClamped int64) {
	t.Helper()
	a := buildArray("A<v:int>[i=1,300,30]", 15, 150, 40)
	b := buildArray("B<w:int>[j=1,300,30]", 16, 160, 40)
	out = array.MustParseSchema("T<i:int, j:int>[v=0,19,5]")
	pred = join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	counts := make(map[int64]int64)
	b.Scan(func(_ []int64, attrs []array.Value) bool {
		counts[attrs[0].AsInt()]++
		return true
	})
	a.Scan(func(_ []int64, attrs []array.Value) bool {
		if v := attrs[0].AsInt(); v > 19 {
			wantClamped += counts[v]
		}
		return true
	})
	if wantClamped == 0 {
		t.Fatal("setup produced no out-of-range matches")
	}
	return newCluster(t, 3, a, b), out, pred, wantClamped
}

func TestClampedCellsCounted(t *testing.T) {
	c, out, pred, want := clampSetup(t)
	rep, err := Run(c, "A", "B", pred, out, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.ClampedCells != want {
		t.Errorf("ClampedCells = %d, want %d", rep.ClampedCells, want)
	}
}

func TestStrictBoundsRejectsClamp(t *testing.T) {
	c, out, pred, _ := clampSetup(t)
	if _, err := Run(c, "A", "B", pred, out, Options{StrictBounds: true}); err == nil {
		t.Error("StrictBounds should fail on out-of-range output cells")
	}
}

func TestStrictBoundsAcceptsInRange(t *testing.T) {
	a := buildArray("A<v:int>[i=1,300,30]", 3, 200, 40)
	b := buildArray("B<w:int>[j=1,300,30]", 4, 180, 40)
	out := array.MustParseSchema("T<i:int, j:int>[v=0,39,8]") // covers the domain
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := newCluster(t, 4, a, b)
	rep, err := Run(c, "A", "B", pred, out, Options{StrictBounds: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.ClampedCells != 0 {
		t.Errorf("ClampedCells = %d, want 0", rep.ClampedCells)
	}
}

func TestUnorderedDestinationRowDim(t *testing.T) {
	// INTO T<i:int, j:int>[] — Figure 2(b)'s unordered A:A output.
	a := buildArray("A<v:int>[i=1,50,10]", 11, 30, 10)
	b := buildArray("B<w:int>[j=1,50,10]", 12, 30, 10)
	out := &array.Schema{Name: "T", Attrs: []array.Attribute{
		{Name: "i", Type: array.TypeInt64}, {Name: "j", Type: array.TypeInt64}}}
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := newCluster(t, 2, a, b)
	rep, err := Run(c, "A", "B", pred, out, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := bruteMatches(a, b, attrOf, attrOf)
	if rep.Matches != want || rep.Output.CellCount() != want {
		t.Errorf("matches %d / cells %d, want %d", rep.Matches, rep.Output.CellCount(), want)
	}
	// Output attrs must be the source coordinates.
	rep.Output.Scan(func(coords []int64, attrs []array.Value) bool {
		if len(attrs) != 2 {
			t.Fatalf("output attrs = %v", attrs)
		}
		return false
	})
}

func TestPredicateNamedOutputDimension(t *testing.T) {
	// INTO C<i:int, j:int>[v=...]: the output dimension v is fed by the
	// join key A.v = B.w (the Figure 5 query shape).
	a := buildArray("A<v:int>[i=1,100,10]", 13, 60, 20)
	b := buildArray("B<w:int>[j=1,100,10]", 14, 60, 20)
	out := array.MustParseSchema("C<i:int, j:int>[v=0,19,5]")
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := newCluster(t, 2, a, b)
	rep, err := Run(c, "A", "B", pred, out, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Every output cell's v coordinate must equal the i-th source's value
	// at coordinate (attr i of the output names A's dimension).
	bad := 0
	rep.Output.Scan(func(coords []int64, attrs []array.Value) bool {
		i := attrs[0].AsInt()
		vals, ok := a.Get([]int64{i})
		if !ok || vals[0].AsInt() != coords[0] {
			bad++
		}
		return true
	})
	if bad > 0 {
		t.Errorf("%d output cells with v coordinate not matching A.v", bad)
	}
	if rep.Matches == 0 {
		t.Error("expected some matches")
	}
}

func TestReportTimingsPopulated(t *testing.T) {
	a := buildArray("A<v:int>[i=1,400,40]", 15, 300, 50)
	b := buildArray("B<w:int>[i=1,400,40]", 16, 300, 50)
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "i"}}}
	c := newCluster(t, 4, a, b)
	rep, err := Run(c, "A", "B", pred, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompareTime <= 0 {
		t.Error("CompareTime should be positive")
	}
	if rep.Total < rep.AlignTime+rep.CompareTime {
		t.Error("Total must include align and compare")
	}
	var moved int64
	for _, s := range rep.Align.CellsSent {
		moved += s
	}
	if moved != rep.CellsMoved {
		t.Errorf("simulated cells moved %d != model CellsMoved %d", moved, rep.CellsMoved)
	}
}

func TestSchedulingAblation(t *testing.T) {
	// FIFO scheduling must never beat greedy locks on the same plan.
	a := buildArray("A<v:int>[i=1,1000,50]", 17, 800, 100)
	b := buildArray("B<w:int>[i=1,1000,50]", 18, 800, 100)
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "i"}}}
	run := func(s simnet.Scheduling) float64 {
		c := newCluster(t, 4, a.Clone(), b.Clone())
		rep, err := Run(c, "A", "B", pred, nil, Options{
			Scheduling: s,
			Planner:    physical.BaselinePlanner{}, // forces movement
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.AlignTime
	}
	greedy := run(simnet.GreedyLocks)
	fifo := run(simnet.FIFONoSkip)
	if greedy > fifo+1e-9 {
		t.Errorf("greedy align %v worse than FIFO %v", greedy, fifo)
	}
}

func TestRunUnknownArray(t *testing.T) {
	c := cluster.MustNew(2)
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "i"}}}
	if _, err := Run(c, "nope", "nada", pred, nil, Options{}); err == nil {
		t.Error("unknown arrays should error")
	}
}

func TestForceAlgoUnavailable(t *testing.T) {
	// Merge join cannot run when the predicate has no rangeable dims
	// (string keys) — forcing it must error.
	s1 := array.MustParseSchema("A<v:string>[i=1,10,5]")
	s2 := array.MustParseSchema("B<w:string>[j=1,10,5]")
	a, b := array.MustNew(s1), array.MustNew(s2)
	a.MustPut([]int64{1}, []array.Value{array.StringValue("x")})
	b.MustPut([]int64{1}, []array.Value{array.StringValue("x")})
	c := newCluster(t, 2, a, b)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	algo := join.Merge
	out := &array.Schema{Name: "T", Attrs: []array.Attribute{{Name: "i", Type: array.TypeInt64}}}
	if _, err := Run(c, "A", "B", pred, out, Options{ForceAlgo: &algo}); err == nil {
		t.Error("forcing merge with string keys should error")
	}
	// Hash works.
	algoH := join.Hash
	rep, err := Run(c, "A", "B", pred, out, Options{ForceAlgo: &algoH})
	if err != nil {
		t.Fatalf("hash on strings: %v", err)
	}
	if rep.Matches != 1 {
		t.Errorf("Matches = %d, want 1", rep.Matches)
	}
}

func TestStringJoinCorrectness(t *testing.T) {
	s1 := array.MustParseSchema("A<v:string>[i=1,20,5]")
	s2 := array.MustParseSchema("B<w:string>[j=1,20,5]")
	a, b := array.MustNew(s1), array.MustNew(s2)
	words := []string{"ship", "port", "sea", "dock"}
	for i := int64(1); i <= 20; i++ {
		a.MustPut([]int64{i}, []array.Value{array.StringValue(words[i%4])})
		b.MustPut([]int64{i}, []array.Value{array.StringValue(words[i%3])})
	}
	c := newCluster(t, 3, a, b)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	out := &array.Schema{Name: "T", Attrs: []array.Attribute{{Name: "i", Type: array.TypeInt64}}}
	rep, err := Run(c, "A", "B", pred, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force on strings.
	var want int64
	a.Scan(func(_ []int64, aa []array.Value) bool {
		b.Scan(func(_ []int64, bb []array.Value) bool {
			if aa[0].Str == bb[0].Str {
				want++
			}
			return true
		})
		return true
	})
	if rep.Matches != want {
		t.Errorf("Matches = %d, want %d", rep.Matches, want)
	}
}

func TestEmptyInputs(t *testing.T) {
	// One or both sides empty: the join plans and runs, producing nothing.
	a := array.MustNew(array.MustParseSchema("A<v:int>[i=1,100,10]"))
	b := buildArray("B<w:int>[i=1,100,10]", 41, 50, 10)
	c := newCluster(t, 3, a, b)
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "i"}}}
	rep, err := Run(c, "A", "B", pred, nil, Options{})
	if err != nil {
		t.Fatalf("empty left: %v", err)
	}
	if rep.Matches != 0 || rep.Output.CellCount() != 0 {
		t.Errorf("empty join produced %d matches", rep.Matches)
	}
	// Both empty.
	c2 := newCluster(t, 2,
		array.MustNew(array.MustParseSchema("A<v:int>[i=1,100,10]")),
		array.MustNew(array.MustParseSchema("B<w:int>[i=1,100,10]")))
	rep2, err := Run(c2, "A", "B", pred, nil, Options{})
	if err != nil {
		t.Fatalf("both empty: %v", err)
	}
	if rep2.Matches != 0 {
		t.Errorf("both-empty join produced matches")
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	// The ADM stores what it is given: duplicate positions join as
	// independent cells (cross product per coordinate).
	a := array.MustNew(array.MustParseSchema("A<v:int>[i=1,10,5]"))
	b := array.MustNew(array.MustParseSchema("B<w:int>[i=1,10,5]"))
	a.MustPut([]int64{3}, []array.Value{array.IntValue(1)})
	a.MustPut([]int64{3}, []array.Value{array.IntValue(2)})
	b.MustPut([]int64{3}, []array.Value{array.IntValue(10)})
	b.MustPut([]int64{3}, []array.Value{array.IntValue(20)})
	b.MustPut([]int64{3}, []array.Value{array.IntValue(30)})
	a.SortAll()
	b.SortAll()
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "i"}}}
	for _, algo := range []join.Algorithm{join.Hash, join.Merge, join.NestedLoop} {
		algo := algo
		c := newCluster(t, 2, a.Clone(), b.Clone())
		rep, err := Run(c, "A", "B", pred, nil, Options{ForceAlgo: &algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if rep.Matches != 6 {
			t.Errorf("%v: Matches = %d, want 6 (2x3 cross product)", algo, rep.Matches)
		}
	}
}
