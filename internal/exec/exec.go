// Package exec is a thin compatibility layer over the staged pipeline
// engine (internal/pipeline), which executes shuffle joins as an explicit
// LogicalPlan → SliceMap → PhysicalPlan → Align → Compare → Assemble
// stage sequence with join-unit-granular shuffle/compare overlap. The
// former monolithic executor that lived here was refactored into that
// package; exec re-exports the entry points and option/report types so
// existing call sites and tests keep working unchanged.
//
// Redistribution (the standalone redimension/repartition operation) still
// lives here — see redistribute.go — because it is not a join pipeline.
package exec

import (
	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/pipeline"
)

// Options configures a shuffle join run. See pipeline.Options for the
// field documentation, including the Barrier ablation knob and the
// overlap semantics of Parallelism.
type Options = pipeline.Options

// Report is the outcome of one shuffle join; each field's documentation
// names the pipeline stage that populates it (see pipeline.Report).
type Report = pipeline.Report

// Explanation describes the optimizer's view of a query without running
// it (see pipeline.Explanation).
type Explanation = pipeline.Explanation

// Run executes τ = left ⋈ right over the cluster through the staged
// pipeline.
func Run(c *cluster.Cluster, leftName, rightName string, pred join.Predicate, out *array.Schema, opt Options) (*Report, error) {
	return pipeline.Run(c, leftName, rightName, pred, out, opt)
}

// RunDistributed is Run for already-resolved distributed arrays.
func RunDistributed(c *cluster.Cluster, dl, dr *cluster.Distributed, pred join.Predicate, out *array.Schema, opt Options) (*Report, error) {
	return pipeline.RunDistributed(c, dl, dr, pred, out, opt)
}

// Explain enumerates and costs the logical plans for a join without
// executing it (the pipeline's LogicalPlan stage only).
func Explain(c *cluster.Cluster, dl, dr *cluster.Distributed, pred join.Predicate, out *array.Schema, opt Options) (*Explanation, error) {
	return pipeline.Explain(c, dl, dr, pred, out, opt)
}

// Accessor resolves a source field of the join into an extractor over
// matched tuple pairs; see pipeline.Accessor.
func Accessor(js *logical.JoinSchema, arrayName, field string) (func(l, r *join.Tuple) array.Value, error) {
	return pipeline.Accessor(js, arrayName, field)
}

// EstimateSelectivity predicts the join's output cardinality from catalog
// statistics; see pipeline.EstimateSelectivity.
func EstimateSelectivity(c *cluster.Cluster, src *logical.ResolvedSources, nA, nB int64) float64 {
	return pipeline.EstimateSelectivity(c, src, nA, nB)
}
