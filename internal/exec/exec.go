// Package exec implements shuffle join execution (Sections 3.3–3.4 of the
// paper): logical planning, slice mapping, physical planning, the
// lock-scheduled data alignment shuffle, and per-node cell comparison,
// ending with assembly of the destination array.
//
// Cell comparison runs for real — actual cells flow through the chosen
// join algorithm and into the output array — while phase durations are
// also modeled with the calibrated per-cell cost parameters and the
// discrete-event network simulator, so experiments report cluster-scale
// timings deterministically.
package exec

import (
	"fmt"
	"math"
	"time"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/par"
	"shufflejoin/internal/physical"
	"shufflejoin/internal/shuffle"
	"shufflejoin/internal/simnet"
	"shufflejoin/internal/stats"
)

// Options configures a shuffle join run.
type Options struct {
	// Planner assigns join units to nodes; defaults to the Minimum
	// Bandwidth Heuristic.
	Planner physical.Planner
	// Logical tunes the logical plan enumeration (selectivity estimate,
	// hash bucket count). Nodes is filled in from the cluster.
	Logical logical.PlanOptions
	// Params are the cost-model constants m, b, p, t; zero value uses
	// DefaultParams.
	Params physical.CostParams
	// Scheduling selects the shuffle scheduler (default: greedy locks).
	Scheduling simnet.Scheduling
	// ForceAlgo restricts the logical planner to one join algorithm,
	// used by experiments that compare algorithms directly.
	ForceAlgo *join.Algorithm
	// TargetCellsPerChunk tunes join-dimension inference.
	TargetCellsPerChunk int64
	// Parallelism is the worker count for the execution hot paths (slice
	// mapping and per-node cell comparison): 0 means one worker per CPU
	// (the default — parallel execution is on unless disabled), 1 forces
	// sequential execution, and n > 1 uses n workers. Output, join stats,
	// and modeled times are bit-for-bit identical at every setting.
	Parallelism int
	// StrictBounds makes the executor fail when an output cell's
	// coordinates fall outside the destination's dimension ranges instead
	// of silently clamping them (clamped cells can collide and overwrite
	// each other). Clamps are counted in Report.ClampedCells either way.
	StrictBounds bool
	// ExtraCarryLeft/ExtraCarryRight name additional source attributes to
	// carry through the shuffle (columns referenced only by SELECT
	// expressions).
	ExtraCarryLeft, ExtraCarryRight []string
	// ProjectFactory, when non-nil, builds a projector that computes the
	// output attribute values of each match instead of name-based field
	// mapping (SELECT expression evaluation). The factory runs after the
	// join schema is inferred; build per-field accessors with Accessor.
	// The returned function must be safe for concurrent use unless
	// Parallelism is 1.
	ProjectFactory func(js *logical.JoinSchema) (func(l, r *join.Tuple) []array.Value, error)
	// Trace, when non-nil, receives hierarchical spans (planning, align,
	// per-transfer, per-node compare) and skew/congestion metrics for the
	// run. Spans and metrics are recorded only from sequential orchestration
	// code, so the capture is bit-for-bit identical at every Parallelism
	// setting. Nil disables tracing at the cost of a nil check per call.
	Trace *obs.Trace
}

// workers resolves the Parallelism knob to an effective worker count.
func (o *Options) workers() int { return par.Workers(o.Parallelism) }

// Accessor resolves a source field of the join into an extractor over
// matched tuple pairs: dimensions read coordinates, attributes read carried
// values. arrayName may be empty to search both sides (left first).
func Accessor(js *logical.JoinSchema, arrayName, field string) (func(l, r *join.Tuple) array.Value, error) {
	src := js.Pred
	carry := [2]map[int]int{carryPositions(js.LeftCarry), carryPositions(js.RightCarry)}
	schemas := [2]*array.Schema{src.Left, src.Right}
	for side, s := range schemas {
		if arrayName != "" && arrayName != s.Name {
			continue
		}
		if i := s.DimIndex(field); i >= 0 {
			side, i := side, i
			return func(l, r *join.Tuple) array.Value {
				t := l
				if side == 1 {
					t = r
				}
				return array.IntValue(t.Coords[i])
			}, nil
		}
		if i := s.AttrIndex(field); i >= 0 {
			pos, ok := carry[side][i]
			if !ok {
				return nil, fmt.Errorf("exec: attribute %s.%s is not carried through the shuffle", s.Name, field)
			}
			side, pos := side, pos
			return func(l, r *join.Tuple) array.Value {
				t := l
				if side == 1 {
					t = r
				}
				return t.Attrs[pos]
			}, nil
		}
	}
	return nil, fmt.Errorf("exec: no field %s.%s in join sources", arrayName, field)
}

// Report is the outcome of one shuffle join: the chosen plans, the modeled
// phase durations (seconds), and the materialized output.
type Report struct {
	Logical  logical.Plan
	Physical physical.Result

	// Selectivity is the output-cardinality estimate the logical planner
	// used: the caller's, or the catalog-statistics estimate when the
	// caller supplied none.
	Selectivity float64

	// Modeled phase durations in seconds, mirroring the paper's figures:
	// PlanTime is real planning wall-time; AlignTime is the simulated
	// shuffle makespan; CompareTime is the slowest node's modeled cell
	// comparison (including post-join output sorting when the plan calls
	// for it).
	PlanTime    float64
	AlignTime   float64
	CompareTime float64
	Total       float64

	Align      simnet.Result
	JoinStats  join.Stats
	Matches    int64
	CellsMoved int64

	// NodeCompareTime is each node's modeled comparison seconds under the
	// physical plan; CompareTime is its maximum.
	NodeCompareTime []float64
	// Skew is the straggler ratio of the comparison phase: the slowest
	// node's modeled compare time over the mean (1 = perfectly balanced,
	// 0 when no compare work exists).
	Skew float64
	// StragglerNode is the node with the largest modeled compare time
	// (lowest id on ties), or -1 when no compare work exists.
	StragglerNode int
	// LockWaitSeconds is the total simulated time senders spent stalled on
	// receiver write locks during data alignment — the shuffle-congestion
	// half of the skew picture.
	LockWaitSeconds float64

	// ClampedCells counts output cells whose coordinates fell outside the
	// destination's dimension ranges and were clamped onto the boundary.
	// Clamped cells can collide with real cells and overwrite them, so a
	// nonzero count is a data-fidelity warning (or an error under
	// Options.StrictBounds).
	ClampedCells int64
	Output       *array.Array
	WallTime     time.Duration
}

// Run executes τ = left ⋈ right over the cluster.
func Run(c *cluster.Cluster, leftName, rightName string, pred join.Predicate, out *array.Schema, opt Options) (*Report, error) {
	dl, err := c.Catalog.Lookup(leftName)
	if err != nil {
		return nil, err
	}
	dr, err := c.Catalog.Lookup(rightName)
	if err != nil {
		return nil, err
	}
	return RunDistributed(c, dl, dr, pred, out, opt)
}

// RunDistributed is Run for already-resolved distributed arrays.
func RunDistributed(c *cluster.Cluster, dl, dr *cluster.Distributed, pred join.Predicate, out *array.Schema, opt Options) (*Report, error) {
	wallStart := time.Now()
	plans, sel, err := planLogical(c, dl, dr, pred, out, &opt)
	if err != nil {
		return nil, err
	}
	lp := plans[0]
	if opt.ForceAlgo != nil {
		found := false
		for _, p := range plans {
			if p.Algo == *opt.ForceAlgo {
				lp, found = p, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("exec: no valid plan with algorithm %v", *opt.ForceAlgo)
		}
	}

	rep, err := execute(c, dl, dr, &lp, opt, wallStart)
	if err != nil {
		return nil, err
	}
	rep.Selectivity = sel
	return rep, nil
}

// planLogical performs the Section 4 planning prefix shared by execution
// and Explain: source resolution, join-schema inference, selectivity
// estimation, and plan enumeration. opt is normalized in place.
func planLogical(c *cluster.Cluster, dl, dr *cluster.Distributed, pred join.Predicate, out *array.Schema, opt *Options) ([]logical.Plan, float64, error) {
	if opt.Planner == nil {
		opt.Planner = physical.MinBandwidthPlanner{}
	}
	if opt.Params == (physical.CostParams{}) {
		opt.Params = physical.DefaultParams()
	}
	src, err := logical.ResolveSources(dl.Array.Schema, dr.Array.Schema, out, pred)
	if err != nil {
		return nil, 0, err
	}
	target := opt.TargetCellsPerChunk
	if target <= 0 {
		// Join units should be of moderate size (Section 3.3): fine
		// grained enough to give every node many units to balance, capped
		// so huge inputs don't flood the physical planner with options.
		total := dl.Array.CellCount() + dr.Array.CellCount()
		target = total / int64(32*c.K)
		if target < 256 {
			target = 256
		}
		if target > logical.DefaultTargetCellsPerChunk {
			target = logical.DefaultTargetCellsPerChunk
		}
	}
	js, err := logical.InferJoinSchema(src, logical.InferOptions{
		AttrHistogram:       catalogHistogram(c),
		TargetCellsPerChunk: target,
		ExtraCarryLeft:      opt.ExtraCarryLeft,
		ExtraCarryRight:     opt.ExtraCarryRight,
	})
	if err != nil {
		return nil, 0, err
	}
	lopt := opt.Logical
	lopt.Nodes = c.K
	sa := logical.ArrayStats{Cells: dl.Array.CellCount(), Chunks: int64(dl.Array.ChunkCount())}
	sb := logical.ArrayStats{Cells: dr.Array.CellCount(), Chunks: int64(dr.Array.ChunkCount())}
	if lopt.Selectivity <= 0 {
		// No caller estimate: derive one from catalog statistics
		// (histogram-based power-law estimation; see internal/cardinality).
		lopt.Selectivity = EstimateSelectivity(c, src, sa.Cells, sb.Cells)
	}
	sp := opt.Trace.Root().Child("plan.logical")
	plans, err := logical.Enumerate(js, sa, sb, lopt)
	if err != nil {
		return nil, 0, err
	}
	sp.SetInt("candidates", int64(len(plans)))
	sp.SetNum("selectivity", lopt.Selectivity)
	sp.SetStr("best", plans[0].Describe())
	sp.End()
	opt.Trace.Metrics().Counter("plan.candidates").Add(int64(len(plans)))
	return plans, lopt.Selectivity, nil
}

// Explanation describes the optimizer's view of a query without running
// it: every valid logical plan with its modeled cost, cheapest first.
type Explanation struct {
	Selectivity float64
	Units       string // join-unit description of the chosen plan
	NumUnits    int
	Plans       []logical.Plan
}

// Explain enumerates and costs the logical plans for a join without
// executing it.
func Explain(c *cluster.Cluster, dl, dr *cluster.Distributed, pred join.Predicate, out *array.Schema, opt Options) (*Explanation, error) {
	plans, sel, err := planLogical(c, dl, dr, pred, out, &opt)
	if err != nil {
		return nil, err
	}
	return &Explanation{
		Selectivity: sel,
		Units:       plans[0].Units.String(),
		NumUnits:    plans[0].NumUnits,
		Plans:       plans,
	}, nil
}

// execute runs a chosen logical plan through slice mapping, physical
// planning, alignment, and comparison.
func execute(c *cluster.Cluster, dl, dr *cluster.Distributed, lp *logical.Plan, opt Options, wallStart time.Time) (*Report, error) {
	js := lp.JS
	rep := &Report{Logical: *lp}

	workers := opt.workers()
	tr := opt.Trace
	reg := tr.Metrics()

	// ---- Slice mapping (Section 3.3) ----
	ms := tr.Root().Child("map.slices")
	spec, lm, rm := logical.UnitSpecFor(lp)
	ssl, err := shuffle.MapSideN(dl, c.K, spec, lm, workers)
	if err != nil {
		return nil, err
	}
	ssr, err := shuffle.MapSideN(dr, c.K, spec, rm, workers)
	if err != nil {
		return nil, err
	}
	ms.SetInt("units", int64(spec.NumUnits))
	ms.End()

	// ---- Physical planning (Section 5) ----
	pr, err := physical.NewProblem(c.K, modelAlgo(lp.Algo), ssl.Sizes(), ssr.Sizes(), opt.Params)
	if err != nil {
		return nil, err
	}
	ps := tr.Root().Child("plan.physical")
	pr.Span = ps
	pres, err := opt.Planner.Plan(pr)
	if err != nil {
		return nil, err
	}
	rep.Physical = pres
	rep.PlanTime = pres.PlanTime.Seconds()
	rep.CellsMoved = pr.CellsMoved(pres.Assignment)
	ps.SetStr("planner", pres.Planner)
	ps.SetNum("model_cost", pres.Model.Total)
	ps.SetInt("cells_moved", rep.CellsMoved)
	ps.End()
	if tr.Enabled() {
		reg.Counter("units.count").Add(int64(pr.N))
		cellsHist := reg.Histogram("units.cells", obs.PowersOf2Buckets(2, 16))
		for u := 0; u < pr.N; u++ {
			cellsHist.Observe(float64(pr.UnitTotal[u]))
		}
		reg.Counter("plan.ilp.nodes_explored").Add(pres.Search.ILPNodes)
		reg.Counter("plan.ilp.nodes_pruned").Add(pres.Search.ILPPruned)
		reg.Counter("plan.tabu.rounds").Add(int64(pres.Search.TabuRounds))
		reg.Counter("plan.tabu.moves").Add(int64(pres.Search.TabuMoves))
		reg.Counter("plan.tabu.whatifs").Add(pres.Search.TabuWhatIfs)
	}

	// ---- Data alignment (Section 3.4) ----
	var transfers []simnet.Transfer
	for u := 0; u < spec.NumUnits; u++ {
		dest := pres.Assignment[u]
		for node := 0; node < c.K; node++ {
			cells := int64(len(ssl.Slice(u, node))) + int64(len(ssr.Slice(u, node)))
			if node != dest && cells > 0 {
				transfers = append(transfers, simnet.Transfer{From: node, To: dest, Cells: cells, Tag: u})
			}
		}
	}
	align, err := simnet.Simulate(simnet.Config{
		Nodes:       c.K,
		PerCellTime: opt.Params.Transfer,
		Scheduling:  opt.Scheduling,
	}, transfers)
	if err != nil {
		return nil, err
	}
	rep.Align = align
	rep.AlignTime = align.Makespan
	rep.LockWaitSeconds = align.LockWaitTime
	if tr.Enabled() {
		as := tr.Root().SimChild("align", 0, align.Makespan)
		as.SetInt("transfers", int64(len(align.Timeline)))
		as.SetInt("lock_waits", int64(align.LockWaits))
		as.SetInt("skipped_sends", int64(align.SkippedSends))
		as.SetNum("lock_wait_seconds", align.LockWaitTime)
		for _, ev := range align.Timeline {
			x := as.SimChild("xfer", ev.Start, ev.End)
			x.SetNum("transfer", 1)
			x.SetInt("from", int64(ev.From))
			x.SetInt("to", int64(ev.To))
			x.SetInt("unit", int64(ev.Tag))
			x.SetInt("cells", ev.Cells)
		}
		reg.Counter("align.transfers").Add(int64(len(align.Timeline)))
		reg.Counter("align.cells_moved").Add(rep.CellsMoved)
		reg.Counter("align.lock_waits").Add(int64(align.LockWaits))
		reg.Counter("align.skipped_sends").Add(int64(align.SkippedSends))
		reg.Gauge("align.lock_wait_seconds").Add(align.LockWaitTime)
		reg.Gauge("align.makespan_seconds").Add(align.Makespan)
	}

	// ---- Cell comparison (Section 3.4) ----
	outArr, err := newOutputArray(js)
	if err != nil {
		return nil, err
	}
	var attrFn func(l, r *join.Tuple) []array.Value
	if opt.ProjectFactory != nil {
		attrFn, err = opt.ProjectFactory(js)
		if err != nil {
			return nil, err
		}
	}
	proj, err := newProjector(js, attrFn)
	if err != nil {
		return nil, err
	}

	nodeUnits := make([][]int, c.K)
	for u := 0; u < spec.NumUnits; u++ {
		dest := pres.Assignment[u]
		nodeUnits[dest] = append(nodeUnits[dest], u)
	}

	type nodeOut struct {
		cells []array.StoredCell
		stats join.Stats
		time  float64
		err   error
	}
	results := make([]nodeOut, c.K)
	process := func(node int) {
		no := &results[node]
		// Each node projects with its own row counter (stride K) so
		// synthetic row coordinates are unique and deterministic whether
		// or not nodes run concurrently.
		nproj := proj.forNode(node, c.K)
		for _, u := range nodeUnits[node] {
			left := ssl.Assemble(u, node)
			right := ssr.Assemble(u, node)
			if lp.Algo == join.Merge {
				// Reassembled units are concatenations of sorted slices;
				// restore full key order (Section 3.4's preprocessing).
				join.SortTuples(left)
				join.SortTuples(right)
			}
			st, err := join.Run(lp.Algo, left, right, func(l, r *join.Tuple) {
				coords, attrs := nproj.project(l, r)
				no.cells = append(no.cells, array.StoredCell{Coords: coords, Attrs: attrs})
			})
			if err != nil {
				no.err = err
				return
			}
			no.stats.Add(st)
			no.time += unitModelTime(lp.Algo, opt.Params, len(left), len(right))
		}
		// Post-join output handling: sorting or redimensioning the node's
		// output cells when the plan calls for it (OutSort / OutRedim).
		if lp.Out != logical.OutScan && len(no.cells) > 0 {
			n := float64(len(no.cells))
			no.time += opt.Params.Merge * n * math.Log2(math.Max(n, 2))
			if lp.Out == logical.OutRedim {
				no.time += opt.Params.Merge * n
			}
		}
	}
	par.ForEach(c.K, workers, process)

	// Replay per-node results in node order: results[node] slots are
	// filled independently, so the output below is identical no matter
	// how the worker pool interleaved the nodes.
	rep.NodeCompareTime = make([]float64, c.K)
	for node := 0; node < c.K; node++ {
		no := &results[node]
		if no.err != nil {
			return nil, no.err
		}
		rep.JoinStats.Add(no.stats)
		rep.NodeCompareTime[node] = no.time
		if no.time > rep.CompareTime {
			rep.CompareTime = no.time
		}
		for _, cell := range no.cells {
			clamped, err := putClamped(outArr, cell.Coords, cell.Attrs, opt.StrictBounds)
			if err != nil {
				return nil, err
			}
			if clamped {
				rep.ClampedCells++
			}
		}
	}
	rep.Matches = rep.JoinStats.Matches
	rep.Skew, rep.StragglerNode = skewOf(rep.NodeCompareTime)

	if tr.Enabled() {
		cs := tr.Root().SimChild("compare", align.Makespan, align.Makespan+rep.CompareTime)
		cs.SetNum("skew", rep.Skew)
		cs.SetInt("straggler_node", int64(rep.StragglerNode))
		for node := 0; node < c.K; node++ {
			ns := cs.SimChild("compare.node", align.Makespan, align.Makespan+rep.NodeCompareTime[node])
			ns.SetNode(node)
			ns.SetInt("units", int64(len(nodeUnits[node])))
			ns.SetInt("output_cells", int64(len(results[node].cells)))
		}
		reg.Gauge("compare.skew").Set(rep.Skew)
		reg.Gauge("compare.straggler_node").Set(float64(rep.StragglerNode))
		reg.Counter("compare.matches").Add(rep.Matches)
		reg.Counter("compare.clamped_cells").Add(rep.ClampedCells)
		for node := 0; node < c.K; node++ {
			pfx := fmt.Sprintf("node%02d.", node)
			var assigned int64
			for _, u := range nodeUnits[node] {
				assigned += pr.UnitTotal[u]
			}
			reg.Counter(pfx + "assigned_cells").Add(assigned)
			reg.Gauge(pfx + "send_seconds").Add(align.SendBusy[node])
			reg.Gauge(pfx + "recv_seconds").Add(align.RecvBusy[node])
			reg.Gauge(pfx + "lock_wait_seconds").Add(align.RecvLockWait[node])
			reg.Gauge(pfx + "compare_seconds").Add(rep.NodeCompareTime[node])
		}
		reg.Counter("exec.steps").Add(1)
	}

	outArr.SortAll()
	rep.Output = outArr
	rep.Total = rep.PlanTime + rep.AlignTime + rep.CompareTime
	rep.WallTime = time.Since(wallStart)
	return rep, nil
}

// skewOf returns the straggler ratio (max/mean) of per-node modeled
// compare times and the argmax node, or (0, -1) when no node has work.
func skewOf(times []float64) (float64, int) {
	var sum, max float64
	straggler := -1
	for node, t := range times {
		sum += t
		if straggler == -1 || t > max {
			max, straggler = t, node
		}
	}
	if sum == 0 {
		return 0, -1
	}
	mean := sum / float64(len(times))
	return max / mean, straggler
}

// modelAlgo maps the plan's algorithm to one the physical cost model
// accepts; nested loop (never profitable, still executable) is modeled as
// hash for assignment purposes.
func modelAlgo(a join.Algorithm) join.Algorithm {
	if a == join.NestedLoop {
		return join.Hash
	}
	return a
}

// unitModelTime applies the Section 5.1 per-unit cost C_i.
func unitModelTime(algo join.Algorithm, p physical.CostParams, nl, nr int) float64 {
	switch algo {
	case join.Merge:
		return p.Merge * float64(nl+nr)
	case join.Hash:
		small, large := nl, nr
		if small > large {
			small, large = large, small
		}
		return p.Build*float64(small) + p.Probe*float64(large)
	default: // nested loop: every pair probed
		return p.Probe * float64(nl) * float64(nr)
	}
}

// catalogHistogram builds attribute histograms on demand by scanning the
// stored array — the statistics the paper's engine keeps in its catalog.
func catalogHistogram(c *cluster.Cluster) func(arrayName, attrName string) *stats.Histogram {
	return func(arrayName, attrName string) *stats.Histogram {
		d, err := c.Catalog.Lookup(arrayName)
		if err != nil {
			return nil
		}
		ai := d.Array.Schema.AttrIndex(attrName)
		if ai < 0 {
			return nil
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		d.Array.Scan(func(_ []int64, attrs []array.Value) bool {
			v := attrs[ai].AsFloat()
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			return true
		})
		if lo > hi {
			return nil
		}
		h := stats.NewHistogram(lo, hi, 64)
		d.Array.Scan(func(_ []int64, attrs []array.Value) bool {
			h.Add(attrs[ai].AsFloat())
			return true
		})
		return h
	}
}

// putClamped stores an output cell, clamping coordinates into the
// destination's dimension ranges (join keys can exceed a destination
// declared smaller than the data). It reports whether any coordinate was
// clamped; under strict bounds an out-of-range cell is an error instead.
func putClamped(a *array.Array, coords []int64, attrs []array.Value, strict bool) (bool, error) {
	clamped := false
	for i, d := range a.Schema.Dims {
		if coords[i] < d.Start || coords[i] > d.End {
			if strict {
				return false, fmt.Errorf("exec: output cell %v outside destination dimension %s=[%d,%d] (StrictBounds)",
					coords, d.Name, d.Start, d.End)
			}
			clamped = true
			if coords[i] < d.Start {
				coords[i] = d.Start
			} else {
				coords[i] = d.End
			}
		}
	}
	return clamped, a.Put(coords, attrs)
}

// newOutputArray materializes the destination schema. A destination with
// no dimensions (unordered output, e.g. INTO T<i:int,j:int>[]) gets a
// synthetic row dimension.
func newOutputArray(js *logical.JoinSchema) (*array.Array, error) {
	out := js.Pred.Out.Clone()
	if len(out.Dims) == 0 {
		out.Dims = []array.Dimension{{Name: "row_", Start: 0, End: math.MaxInt64 / 2, ChunkInterval: 1 << 20}}
	}
	return array.New(out)
}

// projector maps a matched tuple pair to an output cell.
type projector struct {
	js       *logical.JoinSchema
	dimSrc   []fieldSrc
	attrSrc  []fieldSrc
	rowDim   bool
	nextRow  int64
	rowStep  int64
	carryPos [2]map[int]int // original attr index -> tuple.Attrs position
	attrFn   func(l, r *join.Tuple) []array.Value
}

// forNode returns a node-local copy whose synthetic row coordinates are
// node, node+k, node+2k, … — disjoint across nodes.
func (p *projector) forNode(node, k int) *projector {
	c := *p
	c.nextRow = int64(node)
	c.rowStep = int64(k)
	return &c
}

// fieldSrc locates one output field's value in a matched pair.
type fieldSrc struct {
	side  int // 0 = left tuple, 1 = right tuple
	isDim bool
	idx   int // coords index, or position within tuple.Attrs
}

func newProjector(js *logical.JoinSchema, attrFn func(l, r *join.Tuple) []array.Value) (*projector, error) {
	p := &projector{js: js, attrFn: attrFn}
	p.carryPos[0] = carryPositions(js.LeftCarry)
	p.carryPos[1] = carryPositions(js.RightCarry)
	out := js.Pred.Out
	if len(out.Dims) == 0 {
		p.rowDim = true
	} else {
		for _, d := range out.Dims {
			src, err := p.resolveField(d.Name)
			if err != nil {
				return nil, err
			}
			p.dimSrc = append(p.dimSrc, src)
		}
	}
	if attrFn == nil {
		for _, a := range out.Attrs {
			src, err := p.resolveField(a.Name)
			if err != nil {
				return nil, err
			}
			p.attrSrc = append(p.attrSrc, src)
		}
	}
	return p, nil
}

func carryPositions(carry []int) map[int]int {
	m := make(map[int]int, len(carry))
	for pos, idx := range carry {
		m[idx] = pos
	}
	return m
}

// resolveField finds where an output field's value comes from: a source
// dimension, a carried source attribute, or — when the name matches a
// predicate term — the corresponding key value.
func (p *projector) resolveField(name string) (fieldSrc, error) {
	src := p.js.Pred
	schemas := [2]*array.Schema{src.Left, src.Right}
	for side, s := range schemas {
		if i := s.DimIndex(name); i >= 0 {
			return fieldSrc{side: side, isDim: true, idx: i}, nil
		}
		if i := s.AttrIndex(name); i >= 0 {
			if pos, ok := p.carryPos[side][i]; ok {
				return fieldSrc{side: side, isDim: false, idx: pos}, nil
			}
		}
	}
	// Predicate-name match: τ renames a joined pair (e.g. dimension v fed
	// by A.v = B.w). Use the left side's term.
	for pi, pair := range src.Resolved.Pred {
		if pair.Left.Name == name || pair.Right.Name == name {
			ref := src.Resolved.Left[pi]
			if ref.IsDim {
				return fieldSrc{side: 0, isDim: true, idx: ref.Index}, nil
			}
			if pos, ok := p.carryPos[0][ref.Index]; ok {
				return fieldSrc{side: 0, isDim: false, idx: pos}, nil
			}
		}
	}
	return fieldSrc{}, fmt.Errorf("exec: output field %q has no source in %s or %s",
		name, src.Left.Name, src.Right.Name)
}

func (p *projector) project(l, r *join.Tuple) ([]int64, []array.Value) {
	pick := func(src fieldSrc) array.Value {
		t := l
		if src.side == 1 {
			t = r
		}
		if src.isDim {
			return array.IntValue(t.Coords[src.idx])
		}
		return t.Attrs[src.idx]
	}
	var coords []int64
	if p.rowDim {
		coords = []int64{p.nextRow}
		p.nextRow += p.rowStep
	} else {
		coords = make([]int64, len(p.dimSrc))
		for i, src := range p.dimSrc {
			coords[i] = pick(src).AsInt()
		}
	}
	if p.attrFn != nil {
		return coords, p.attrFn(l, r)
	}
	attrs := make([]array.Value, len(p.attrSrc))
	for i, src := range p.attrSrc {
		attrs[i] = pick(src)
	}
	return coords, attrs
}
