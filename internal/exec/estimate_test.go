package exec

import (
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
)

func TestEstimatedSelectivityDrivesPlan(t *testing.T) {
	// A highly selective A:A join (few overlapping keys): the estimator
	// must report a low selectivity, steering the planner to a hash-side
	// plan (sort after comparison), as in Figure 6's low-selectivity
	// regime.
	a := array.MustNew(array.MustParseSchema("A<v:int>[i=1,4000,500]"))
	b := array.MustNew(array.MustParseSchema("B<w:int>[j=1,4000,500]"))
	for i := int64(1); i <= 4000; i++ {
		a.MustPut([]int64{i}, []array.Value{array.IntValue(i)})         // 1..4000
		b.MustPut([]int64{i}, []array.Value{array.IntValue(i + 3_900)}) // 3901..7900: 100 overlap
	}
	c := newCluster(t, 2, a, b)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	out := array.MustParseSchema("T<i:int, j:int>[v=1,8000,1000]")
	rep, err := Run(c, "A", "B", pred, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Selectivity <= 0 {
		t.Fatal("no selectivity recorded")
	}
	// True selectivity: 100 matches / 8000 cells = 0.0125.
	if rep.Selectivity > 0.2 {
		t.Errorf("estimated selectivity %v far above truth 0.0125", rep.Selectivity)
	}
	if rep.Matches != 100 {
		t.Errorf("Matches = %d, want 100", rep.Matches)
	}
}

func TestEstimatedSelectivityDDJoin(t *testing.T) {
	// Dense same-space D:D join: estimator uses key-space overlap.
	a := buildArray("A<v:int>[i=1,500,50]", 31, 400, 10)
	b := buildArray("B<w:int>[i=1,500,50]", 32, 400, 10)
	c := newCluster(t, 2, a, b)
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "i"}}}
	rep, err := Run(c, "A", "B", pred, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// n_out estimate = 400*400/500 = 320 -> sel = 0.4.
	if rep.Selectivity < 0.1 || rep.Selectivity > 1.5 {
		t.Errorf("D:D estimated selectivity = %v, want ~0.4", rep.Selectivity)
	}
}

func TestCallerSelectivityWins(t *testing.T) {
	a := buildArray("A<v:int>[i=1,100,10]", 33, 50, 10)
	b := buildArray("B<w:int>[i=1,100,10]", 34, 50, 10)
	c := newCluster(t, 2, a, b)
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "i"}}}
	rep, err := Run(c, "A", "B", pred, nil, Options{
		Logical: logicalPlanOpts(7.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Selectivity != 7.5 {
		t.Errorf("Selectivity = %v, want caller's 7.5", rep.Selectivity)
	}
}

// TestADJoinFigure2c exercises the Attribute:Dimension join of Figure
// 2(c): SELECT a.v INTO <v:int>[i, j] FROM a, b WHERE a.i = b.w — a join
// type the paper notes current array databases do not support.
func TestADJoinFigure2c(t *testing.T) {
	a := array.MustNew(array.MustParseSchema("a<v:int>[i=1,9,3]"))
	b := array.MustNew(array.MustParseSchema("b<w:int>[j=1,9,3]"))
	// Figure 2 inputs: a.v = 1..9 at i=1..9; b.w = {2,3,5,6,7,9,10,11,12}.
	bw := []int64{2, 3, 5, 6, 7, 9, 10, 11, 12}
	for i := int64(1); i <= 9; i++ {
		a.MustPut([]int64{i}, []array.Value{array.IntValue(i)})
		b.MustPut([]int64{i}, []array.Value{array.IntValue(bw[i-1])})
	}
	c := newCluster(t, 3, a, b)
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "w"}}}
	out := array.MustParseSchema("T<v:int>[i=1,9,3, j=1,9,3]")
	rep, err := Run(c, "a", "b", pred, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Matches: b.w values within 1..9 that a occupies: 2,3,5,6,7,9 -> 6.
	if rep.Matches != 6 {
		t.Fatalf("Matches = %d, want 6", rep.Matches)
	}
	// Figure 2(c): output cell at (i=2, j=1) holds a.v=2 (b.w=2 at j=1).
	vals, ok := rep.Output.Get([]int64{2, 1})
	if !ok || vals[0].AsInt() != 2 {
		t.Errorf("output at (2,1) = %v, %v; want v=2", vals, ok)
	}
	// And (i=9, j=6) holds v=9 (b.w=9 at j=6).
	vals, ok = rep.Output.Get([]int64{9, 6})
	if !ok || vals[0].AsInt() != 9 {
		t.Errorf("output at (9,6) = %v, %v; want v=9", vals, ok)
	}
}

// TestADJoinAllAlgorithms verifies A:D joins agree across algorithms.
func TestADJoinAllAlgorithms(t *testing.T) {
	a := buildArray("A<v:int>[i=1,200,20]", 35, 150, 150)
	b := buildArray("B<w:int>[j=1,200,20]", 36, 150, 200)
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "w"}}}
	out := array.MustParseSchema("T<v:int>[i=1,200,20, j=1,200,20]")
	want := int64(-1)
	for _, algo := range []join.Algorithm{join.Hash, join.Merge, join.NestedLoop} {
		algo := algo
		c := newCluster(t, 3, a.Clone(), b.Clone())
		rep, err := Run(c, "A", "B", pred, out, Options{ForceAlgo: &algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if want == -1 {
			want = rep.Matches
		}
		if rep.Matches != want {
			t.Errorf("%v: Matches = %d, want %d", algo, rep.Matches, want)
		}
	}
	if want <= 0 {
		t.Error("expected matches in A:D join")
	}
}

// logicalPlanOpts builds PlanOptions with the given selectivity.
func logicalPlanOpts(sel float64) (o logical.PlanOptions) {
	o.Selectivity = sel
	return o
}

func TestAccessorResolution(t *testing.T) {
	a := buildArray("A<v:int>[i=1,50,10]", 51, 30, 10)
	b := buildArray("B<w:int>[j=1,50,10]", 52, 30, 10)
	c := newCluster(t, 2, a, b)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	out := array.MustParseSchema("T<i:int>[v=0,9,5]")
	dl, _ := c.Catalog.Lookup("A")
	dr, _ := c.Catalog.Lookup("B")
	var js *logical.JoinSchema
	opt := Options{
		ProjectFactory: func(j *logical.JoinSchema) (func(l, r *join.Tuple) []array.Value, error) {
			js = j
			acc, err := Accessor(j, "A", "i")
			if err != nil {
				return nil, err
			}
			return func(l, r *join.Tuple) []array.Value {
				return []array.Value{acc(l, r)}
			}, nil
		},
	}
	rep, err := RunDistributed(c, dl, dr, pred, out, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Matches == 0 {
		t.Fatal("no matches")
	}
	// Accessor error paths.
	if _, err := Accessor(js, "A", "missing"); err == nil {
		t.Error("unknown field should fail")
	}
	if _, err := Accessor(js, "Z", "v"); err == nil {
		t.Error("unknown array should fail")
	}
	// Dimension accessor on the right side, unqualified attribute search.
	if _, err := Accessor(js, "B", "j"); err != nil {
		t.Errorf("right dim accessor: %v", err)
	}
	if _, err := Accessor(js, "", "w"); err != nil {
		t.Errorf("unqualified attr accessor: %v", err)
	}
}

func TestAccessorNotCarried(t *testing.T) {
	// An attribute not in the carry set cannot be accessed post-shuffle.
	a := buildArray("A<v:int>[i=1,50,10]", 53, 30, 10)
	b := buildArray("B<w:int>[i=1,50,10]", 54, 30, 10)
	c := newCluster(t, 2, a, b)
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "i"}}}
	out := &array.Schema{
		Name:  "T",
		Dims:  []array.Dimension{{Name: "i", Start: 1, End: 50, ChunkInterval: 10}},
		Attrs: []array.Attribute{{Name: "x", Type: array.TypeInt64}},
	}
	opt := Options{
		ProjectFactory: func(j *logical.JoinSchema) (func(l, r *join.Tuple) []array.Value, error) {
			// B.w is not referenced by τ or the predicate and was not
			// declared as an extra carry: the accessor must refuse.
			if _, err := Accessor(j, "B", "w"); err == nil {
				t.Error("uncarried attribute should fail")
			}
			acc, err := Accessor(j, "A", "v") // v not carried either
			if err == nil {
				return func(l, r *join.Tuple) []array.Value {
					return []array.Value{acc(l, r)}
				}, nil
			}
			return func(l, r *join.Tuple) []array.Value {
				return []array.Value{array.IntValue(0)}
			}, nil
		},
	}
	dl, _ := c.Catalog.Lookup("A")
	dr, _ := c.Catalog.Lookup("B")
	if _, err := RunDistributed(c, dl, dr, pred, out, opt); err != nil {
		t.Fatal(err)
	}
}
