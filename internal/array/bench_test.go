package array

import (
	"math/rand"
	"testing"
)

func benchArray(b *testing.B, n int64) *Array {
	b.Helper()
	s := &Schema{
		Name:  "A",
		Dims:  []Dimension{{Name: "i", Start: 1, End: n, ChunkInterval: (n + 31) / 32}},
		Attrs: []Attribute{{Name: "v", Type: TypeInt64}},
	}
	a := MustNew(s)
	rng := rand.New(rand.NewSource(1))
	for i := int64(1); i <= n; i++ {
		a.MustPut([]int64{i}, []Value{IntValue(rng.Int63())})
	}
	return a
}

func BenchmarkArrayPut(b *testing.B) {
	s := MustParseSchema("A<v:int>[i=1,10000000,100000]")
	a := MustNew(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coord := int64(i%10_000_000) + 1
		a.MustPut([]int64{coord}, []Value{IntValue(int64(i))})
	}
}

func BenchmarkChunkSort(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ch := NewChunk("0,0", 2, []ScalarType{TypeInt64})
		for k := 0; k < 50_000; k++ {
			ch.AppendCell([]int64{rng.Int63n(1000), rng.Int63n(1000)}, []Value{IntValue(int64(k))})
		}
		b.StartTimer()
		ch.Sort()
	}
}

func BenchmarkArrayScan(b *testing.B) {
	a := benchArray(b, 200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int64
		a.Scan(func([]int64, []Value) bool { n++; return true })
		if n != 200_000 {
			b.Fatal("scan miscount")
		}
	}
}

func BenchmarkValueHashKey(b *testing.B) {
	vals := []Value{IntValue(1234567), FloatValue(3.25), StringValue("shipping-lane")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vals[i%3].HashKey()
	}
}
