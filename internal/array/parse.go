package array

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseSchema parses the paper's schema notation:
//
//	A<v1:int, v2:float>[i=1,6,3, j=1,6,3]
//
// The array name is optional (an anonymous schema such as
// "<v:int>[i=1,10,2]" is accepted, as used in redimension expressions).
// Dimension entries are name=start,end,chunkInterval; a bare "[]" produces
// a schema with no dimensions, which the caller must later infer (used for
// unordered A:A join outputs in AQL INTO clauses).
func ParseSchema(src string) (*Schema, error) {
	p := &schemaParser{src: src}
	s, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("array: parsing schema %q: %w", src, err)
	}
	return s, nil
}

// MustParseSchema is ParseSchema but panics on error; intended for tests
// and package-level literals.
func MustParseSchema(src string) *Schema {
	s, err := ParseSchema(src)
	if err != nil {
		panic(err)
	}
	return s
}

type schemaParser struct {
	src string
	pos int
}

func (p *schemaParser) parse() (*Schema, error) {
	s := &Schema{}
	p.skipSpace()
	s.Name = p.ident()
	p.skipSpace()
	if p.peek() == '<' {
		p.pos++
		attrs, err := p.attrList()
		if err != nil {
			return nil, err
		}
		s.Attrs = attrs
		if err := p.expect('>'); err != nil {
			return nil, err
		}
	}
	p.skipSpace()
	if p.peek() == '[' {
		p.pos++
		dims, err := p.dimList()
		if err != nil {
			return nil, err
		}
		s.Dims = dims
		if err := p.expect(']'); err != nil {
			return nil, err
		}
	}
	p.skipSpace()
	if p.peek() == ';' {
		p.pos++
		p.skipSpace()
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("trailing input at offset %d", p.pos)
	}
	return s, nil
}

func (p *schemaParser) attrList() ([]Attribute, error) {
	var attrs []Attribute
	p.skipSpace()
	if p.peek() == '>' {
		return attrs, nil
	}
	for {
		p.skipSpace()
		name := p.ident()
		if name == "" {
			return nil, fmt.Errorf("expected attribute name at offset %d", p.pos)
		}
		if err := p.expect(':'); err != nil {
			return nil, err
		}
		p.skipSpace()
		tname := p.ident()
		t, err := ParseScalarType(tname)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, Attribute{Name: name, Type: t})
		p.skipSpace()
		if p.peek() != ',' {
			return attrs, nil
		}
		p.pos++
	}
}

func (p *schemaParser) dimList() ([]Dimension, error) {
	var dims []Dimension
	p.skipSpace()
	if p.peek() == ']' {
		return dims, nil
	}
	for {
		p.skipSpace()
		name := p.ident()
		if name == "" {
			return nil, fmt.Errorf("expected dimension name at offset %d", p.pos)
		}
		if err := p.expect('='); err != nil {
			return nil, err
		}
		start, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		end, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		ci, err := p.number()
		if err != nil {
			return nil, err
		}
		d := Dimension{Name: name, Start: start, End: end, ChunkInterval: ci}
		if err := d.Validate(); err != nil {
			return nil, err
		}
		dims = append(dims, d)
		p.skipSpace()
		if p.peek() != ',' {
			return dims, nil
		}
		p.pos++
	}
}

func (p *schemaParser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *schemaParser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return fmt.Errorf("expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *schemaParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n' || p.src[p.pos] == '\r') {
		p.pos++
	}
}

func (p *schemaParser) ident() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || c == '_' || (p.pos > start && unicode.IsDigit(c)) {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *schemaParser) number() (int64, error) {
	p.skipSpace()
	start := p.pos
	if p.peek() == '-' || p.peek() == '+' {
		p.pos++
	}
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	txt := p.src[start:p.pos]
	// Accept suffix multipliers used in the paper's schemas: 4M, 128M, 2K.
	if p.pos < len(p.src) {
		switch p.src[p.pos] {
		case 'K', 'k':
			txt += "000"
			p.pos++
		case 'M', 'm':
			txt += "000000"
			p.pos++
		case 'G', 'g':
			txt += "000000000"
			p.pos++
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(txt), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("expected number at offset %d", start)
	}
	return n, nil
}
