package array

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func figure1Schema(t *testing.T) *Schema {
	t.Helper()
	s, err := ParseSchema("A<v1:int, v2:float>[i=1,6,3, j=1,6,3]")
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	return s
}

func TestParseSchemaFigure1(t *testing.T) {
	s := figure1Schema(t)
	if s.Name != "A" {
		t.Errorf("name = %q, want A", s.Name)
	}
	if len(s.Dims) != 2 || len(s.Attrs) != 2 {
		t.Fatalf("got %d dims, %d attrs; want 2, 2", len(s.Dims), len(s.Attrs))
	}
	if s.Dims[0].Name != "i" || s.Dims[0].Start != 1 || s.Dims[0].End != 6 || s.Dims[0].ChunkInterval != 3 {
		t.Errorf("dim i = %+v", s.Dims[0])
	}
	if s.Attrs[0] != (Attribute{Name: "v1", Type: TypeInt64}) {
		t.Errorf("attr v1 = %+v", s.Attrs[0])
	}
	if s.Attrs[1] != (Attribute{Name: "v2", Type: TypeFloat64}) {
		t.Errorf("attr v2 = %+v", s.Attrs[1])
	}
	if got := s.TotalChunks(); got != 4 {
		t.Errorf("TotalChunks = %d, want 4", got)
	}
	if got := s.LogicalCells(); got != 36 {
		t.Errorf("LogicalCells = %d, want 36", got)
	}
}

func TestParseSchemaRoundTrip(t *testing.T) {
	cases := []string{
		"A<v1:int, v2:float>[i=1,6,3, j=1,6,3]",
		"B<w:int>[j=1,128000000,4000000]",
		"C<i:int, j:int>[v=1,128000000,4000000]",
		"T<s:string>[x=1,10,5]",
	}
	for _, src := range cases {
		s, err := ParseSchema(src)
		if err != nil {
			t.Fatalf("ParseSchema(%q): %v", src, err)
		}
		again, err := ParseSchema(s.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", s.String(), err)
		}
		if s.String() != again.String() {
			t.Errorf("round trip: %q != %q", s.String(), again.String())
		}
	}
}

func TestParseSchemaSuffixes(t *testing.T) {
	s, err := ParseSchema("A<v:int>[i=1,128M,4M]")
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	if s.Dims[0].End != 128000000 || s.Dims[0].ChunkInterval != 4000000 {
		t.Errorf("suffix parsing: dim = %+v", s.Dims[0])
	}
	if got := s.Dims[0].ChunkCount(); got != 32 {
		t.Errorf("ChunkCount = %d, want 32", got)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	bad := []string{
		"A<v:int>[i=1,0,3]",      // end < start
		"A<v:int>[i=1,6,0]",      // zero interval
		"A<v:frob>[i=1,6,3]",     // unknown type
		"A<v:int>[i=1,6,3] junk", // trailing garbage
		"A<v:int>[=1,6,3]",       // missing dim name
	}
	for _, src := range bad {
		if _, err := ParseSchema(src); err == nil {
			t.Errorf("ParseSchema(%q) succeeded, want error", src)
		}
	}
}

func TestSchemaValidateDuplicates(t *testing.T) {
	s := &Schema{
		Name:  "D",
		Dims:  []Dimension{{Name: "i", Start: 1, End: 4, ChunkInterval: 2}},
		Attrs: []Attribute{{Name: "i", Type: TypeInt64}},
	}
	if err := s.Validate(); err == nil {
		t.Error("Validate allowed duplicate name across dims and attrs")
	}
}

func TestSchemaNoDims(t *testing.T) {
	s := &Schema{Name: "E", Attrs: []Attribute{{Name: "v", Type: TypeInt64}}}
	if err := s.Validate(); err == nil {
		t.Error("Validate allowed schema with no dimensions")
	}
}

func TestChunkKeyRoundTrip(t *testing.T) {
	f := func(a, b, c int16) bool {
		idx := []int64{int64(a), int64(b), int64(c)}
		got := MakeChunkKey(idx).Indices()
		return reflect.DeepEqual(got, idx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChunkKeyOfFigure1(t *testing.T) {
	s := figure1Schema(t)
	cases := []struct {
		coords []int64
		want   ChunkKey
	}{
		{[]int64{1, 1}, "0,0"},
		{[]int64{3, 3}, "0,0"},
		{[]int64{4, 1}, "1,0"},
		{[]int64{1, 4}, "0,1"},
		{[]int64{6, 6}, "1,1"},
	}
	for _, c := range cases {
		if got := ChunkKeyOf(s, c.coords); got != c.want {
			t.Errorf("ChunkKeyOf(%v) = %q, want %q", c.coords, got, c.want)
		}
	}
}

func TestCompareCoordsIsCOrder(t *testing.T) {
	// C-order: iterate innermost (last) dimension fastest.
	seq := [][]int64{{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2}, {3, 3}}
	for k := 1; k < len(seq); k++ {
		if CompareCoords(seq[k-1], seq[k]) >= 0 {
			t.Errorf("CompareCoords(%v, %v) >= 0", seq[k-1], seq[k])
		}
	}
	if CompareCoords([]int64{2, 2}, []int64{2, 2}) != 0 {
		t.Error("equal coords should compare 0")
	}
}

func TestChunkSortFigure1Layout(t *testing.T) {
	// Figure 1: the first v1 chunk serializes as (3,1,1,7,4,0,0) in C-order.
	s := figure1Schema(t)
	a := MustNew(s)
	// Occupied cells of the first chunk, inserted out of order.
	puts := []struct {
		i, j int64
		v1   int64
		v2   float64
	}{
		{3, 3, 0, 7.5},
		{1, 2, 5, 3.0},
		{2, 2, 7, 1.3},
		{3, 1, 1, 0.9},
		{1, 3, 1, 4.7},
		{2, 1, 1, 0.2},
		{3, 2, 0, 0.4},
	}
	for _, p := range puts {
		a.MustPut([]int64{p.i, p.j}, []Value{IntValue(p.v1), FloatValue(p.v2)})
	}
	ch := a.Chunks["0,0"]
	if ch == nil {
		t.Fatal("chunk 0,0 missing")
	}
	ch.Sort()
	if !ch.IsSortedCOrder() {
		t.Fatal("chunk not in C-order after Sort")
	}
	want := []int64{5, 1, 1, 7, 1, 0, 0}
	// Expected serialization given our occupied positions sorted C-order:
	// (1,2)=5 (1,3)=1 (2,1)=1 (2,2)=7 (3,1)=1 (3,2)=0 (3,3)=0
	if !reflect.DeepEqual(ch.Cols[0].Ints, want) {
		t.Errorf("v1 column = %v, want %v", ch.Cols[0].Ints, want)
	}
}

func TestChunkSortPropertyCOrder(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ch := NewChunk("0,0", 2, []ScalarType{TypeInt64})
		count := int(n%64) + 2
		for k := 0; k < count; k++ {
			ch.AppendCell([]int64{rng.Int63n(10), rng.Int63n(10)}, []Value{IntValue(int64(k))})
		}
		ch.Sort()
		return ch.IsSortedCOrder() && ch.Len() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestChunkSortKeepsCellsIntact(t *testing.T) {
	// Sorting must permute whole cells: attribute values travel with their
	// coordinates.
	rng := rand.New(rand.NewSource(7))
	ch := NewChunk("0", 1, []ScalarType{TypeInt64, TypeFloat64, TypeString})
	type rec struct {
		c int64
		v int64
	}
	var recs []rec
	for k := 0; k < 100; k++ {
		c := rng.Int63n(1000)
		recs = append(recs, rec{c, int64(k)})
		ch.AppendCell([]int64{c}, []Value{IntValue(int64(k)), FloatValue(float64(k) / 2), StringValue("s")})
	}
	ch.Sort()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].c < recs[j].c })
	for row := range recs {
		coords, attrs := ch.Cell(row)
		if coords[0] != recs[row].c || attrs[0].Int != recs[row].v {
			t.Fatalf("row %d: got (%d,%d), want (%d,%d)", row, coords[0], attrs[0].Int, recs[row].c, recs[row].v)
		}
		if attrs[1].F != float64(recs[row].v)/2 {
			t.Fatalf("row %d: float column desynchronized", row)
		}
	}
}

func TestArrayPutGet(t *testing.T) {
	s := figure1Schema(t)
	a := MustNew(s)
	a.MustPut([]int64{2, 5}, []Value{IntValue(9), FloatValue(2.7)})
	got, ok := a.Get([]int64{2, 5})
	if !ok {
		t.Fatal("Get reported empty cell")
	}
	if got[0].Int != 9 || got[1].F != 2.7 {
		t.Errorf("Get = %v", got)
	}
	if _, ok := a.Get([]int64{1, 1}); ok {
		t.Error("Get found a cell at an empty position")
	}
}

func TestArrayPutOutOfRange(t *testing.T) {
	a := MustNew(figure1Schema(t))
	if err := a.Put([]int64{0, 1}, []Value{IntValue(1), FloatValue(1)}); err == nil {
		t.Error("Put accepted coordinate below range")
	}
	if err := a.Put([]int64{7, 1}, []Value{IntValue(1), FloatValue(1)}); err == nil {
		t.Error("Put accepted coordinate above range")
	}
	if err := a.Put([]int64{1}, []Value{IntValue(1)}); err == nil {
		t.Error("Put accepted wrong dimensionality")
	}
}

func TestArraySparseStorage(t *testing.T) {
	// Figure 1's array stores only 2 of 4 chunks.
	a := MustNew(figure1Schema(t))
	a.MustPut([]int64{1, 2}, []Value{IntValue(5), FloatValue(3.0)})
	a.MustPut([]int64{6, 6}, []Value{IntValue(5), FloatValue(8.7)})
	if a.ChunkCount() != 2 {
		t.Errorf("ChunkCount = %d, want 2", a.ChunkCount())
	}
	if a.CellCount() != 2 {
		t.Errorf("CellCount = %d, want 2", a.CellCount())
	}
}

func TestArrayScanOrderDeterministic(t *testing.T) {
	a := MustNew(figure1Schema(t))
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 30; k++ {
		a.MustPut([]int64{rng.Int63n(6) + 1, rng.Int63n(6) + 1},
			[]Value{IntValue(int64(k)), FloatValue(0)})
	}
	a.SortAll()
	var first, second [][]int64
	a.Scan(func(coords []int64, _ []Value) bool {
		first = append(first, append([]int64(nil), coords...))
		return true
	})
	a.Scan(func(coords []int64, _ []Value) bool {
		second = append(second, append([]int64(nil), coords...))
		return true
	})
	if !reflect.DeepEqual(first, second) {
		t.Error("Scan order not deterministic")
	}
	if len(first) != 30 {
		t.Errorf("scanned %d cells, want 30", len(first))
	}
}

func TestArrayCloneIndependent(t *testing.T) {
	a := MustNew(figure1Schema(t))
	a.MustPut([]int64{1, 1}, []Value{IntValue(1), FloatValue(1)})
	b := a.Clone()
	b.MustPut([]int64{2, 2}, []Value{IntValue(2), FloatValue(2)})
	if a.CellCount() != 1 || b.CellCount() != 2 {
		t.Errorf("clone not independent: a=%d b=%d", a.CellCount(), b.CellCount())
	}
}

func TestValueEqualCrossKind(t *testing.T) {
	if !IntValue(3).Equal(FloatValue(3.0)) {
		t.Error("int 3 should equal float 3.0")
	}
	if IntValue(3).Equal(FloatValue(3.5)) {
		t.Error("int 3 should not equal float 3.5")
	}
	if IntValue(3).Equal(StringValue("3")) {
		t.Error("numeric/string comparison should be unequal")
	}
	if !StringValue("x").Equal(StringValue("x")) {
		t.Error("equal strings should compare equal")
	}
}

func TestValueHashKeyConsistentWithEqual(t *testing.T) {
	f := func(n int32) bool {
		v := int64(n)
		return IntValue(v).HashKey() == FloatValue(float64(v)).HashKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	vals := []Value{IntValue(-5), FloatValue(-1.5), IntValue(0), FloatValue(2.5), IntValue(3), StringValue("a"), StringValue("b")}
	for i := range vals {
		for j := range vals {
			got := vals[i].Compare(vals[j])
			rev := vals[j].Compare(vals[i])
			if got != -rev {
				t.Errorf("Compare(%v,%v)=%d but reverse=%d", vals[i], vals[j], got, rev)
			}
			if i == j && got != 0 {
				t.Errorf("Compare(%v, itself) = %d", vals[i], got)
			}
		}
	}
}

func TestStoredBytes(t *testing.T) {
	ch := NewChunk("0", 1, []ScalarType{TypeInt64, TypeString})
	ch.AppendCell([]int64{1}, []Value{IntValue(10), StringValue("abc")})
	// 8 (coord) + 8 (int) + 3+4 (string)
	if got := ch.StoredBytes(); got != 23 {
		t.Errorf("StoredBytes = %d, want 23", got)
	}
}

func TestSameShape(t *testing.T) {
	a := MustParseSchema("A<v:int>[i=1,100,10]")
	b := MustParseSchema("B<w:int>[j=1,100,10]")
	c := MustParseSchema("C<w:int>[j=1,100,20]")
	if !a.SameShape(b) {
		t.Error("A and B share a shape (names may differ)")
	}
	if a.SameShapeAligned(b) {
		t.Error("A and B differ in dimension names")
	}
	if a.SameShape(c) {
		t.Error("A and C differ in chunk interval")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := figure1Schema(t)
	if s.NumDims() != 2 {
		t.Errorf("NumDims = %d", s.NumDims())
	}
	if s.DimIndex("j") != 1 || s.DimIndex("zzz") != -1 {
		t.Error("DimIndex wrong")
	}
	if s.AttrIndex("v2") != 1 || s.AttrIndex("zzz") != -1 {
		t.Error("AttrIndex wrong")
	}
	if !s.HasDim("i") || s.HasDim("v1") || !s.HasAttr("v1") || s.HasAttr("i") {
		t.Error("HasDim/HasAttr wrong")
	}
	if s.CellsPerChunk() != 9 {
		t.Errorf("CellsPerChunk = %d, want 9", s.CellsPerChunk())
	}
	r := s.Rename("Z")
	if r.Name != "Z" || s.Name != "A" {
		t.Error("Rename should copy")
	}
}

func TestArrayCellsAndStoredBytes(t *testing.T) {
	a := MustNew(figure1Schema(t))
	a.MustPut([]int64{1, 1}, []Value{IntValue(1), FloatValue(2)})
	a.MustPut([]int64{4, 4}, []Value{IntValue(3), FloatValue(4)})
	cells := a.Cells()
	if len(cells) != 2 {
		t.Fatalf("Cells = %d", len(cells))
	}
	if cells[0].Coords[0] != 1 || cells[0].Attrs[0].Int != 1 {
		t.Errorf("cells[0] = %+v", cells[0])
	}
	// 2 cells x (2 coords + 2 numeric attrs) x 8 bytes.
	if got := a.StoredBytes(); got != 64 {
		t.Errorf("StoredBytes = %d, want 64", got)
	}
}

func TestMustPutPanics(t *testing.T) {
	a := MustNew(figure1Schema(t))
	defer func() {
		if recover() == nil {
			t.Error("MustPut should panic on bad coords")
		}
	}()
	a.MustPut([]int64{99, 99}, []Value{IntValue(1), FloatValue(1)})
}

func TestChunkKeyIndicesEmpty(t *testing.T) {
	if got := ChunkKey("").Indices(); got != nil {
		t.Errorf("empty key indices = %v", got)
	}
}

func TestAppendCellPadsMissingAttrs(t *testing.T) {
	ch := NewChunk("0", 1, []ScalarType{TypeInt64, TypeFloat64})
	ch.AppendCell([]int64{1}, []Value{IntValue(5)}) // second attr missing
	_, attrs := ch.Cell(0)
	if attrs[1].Kind != TypeFloat64 || attrs[1].F != 0 {
		t.Errorf("missing attr should zero-fill, got %v", attrs[1])
	}
}

func TestZeroDimChunkLen(t *testing.T) {
	ch := &Chunk{NDims: 0, Cols: []Column{NewColumn(TypeInt64)}}
	ch.Cols[0].Append(IntValue(1))
	if ch.Len() != 1 {
		t.Errorf("zero-dim Len = %d", ch.Len())
	}
	empty := &Chunk{NDims: 0}
	if empty.Len() != 0 {
		t.Error("empty zero-dim chunk should have Len 0")
	}
}
