package array

import (
	"fmt"
	"strings"
)

// Dimension describes one named dimension of an array schema: a contiguous
// range of integer coordinate values [Start, End] divided into logical
// chunks of ChunkInterval coordinates each. Dimensions are ordered; the
// order determines the C-order traversal used inside chunks.
type Dimension struct {
	Name          string
	Start, End    int64 // inclusive range of coordinate values
	ChunkInterval int64 // coordinates per chunk along this dimension
}

// Extent returns the number of potential coordinate values of the dimension.
func (d Dimension) Extent() int64 { return d.End - d.Start + 1 }

// ChunkCount returns the number of logical chunks along the dimension.
func (d Dimension) ChunkCount() int64 {
	e := d.Extent()
	return (e + d.ChunkInterval - 1) / d.ChunkInterval
}

// ChunkIndex returns the zero-based index of the chunk containing coord.
func (d Dimension) ChunkIndex(coord int64) int64 {
	return (coord - d.Start) / d.ChunkInterval
}

// Contains reports whether coord lies inside the dimension range.
func (d Dimension) Contains(coord int64) bool {
	return coord >= d.Start && coord <= d.End
}

// Validate checks the dimension for internal consistency.
func (d Dimension) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("array: dimension with empty name")
	}
	if d.End < d.Start {
		return fmt.Errorf("array: dimension %s has End %d < Start %d", d.Name, d.End, d.Start)
	}
	if d.ChunkInterval <= 0 {
		return fmt.Errorf("array: dimension %s has non-positive chunk interval %d", d.Name, d.ChunkInterval)
	}
	return nil
}

func (d Dimension) String() string {
	return fmt.Sprintf("%s=%d,%d,%d", d.Name, d.Start, d.End, d.ChunkInterval)
}

// Attribute describes one named, typed attribute stored in each occupied
// cell of an array.
type Attribute struct {
	Name string
	Type ScalarType
}

func (a Attribute) String() string { return a.Name + ":" + a.Type.String() }

// Schema is the logical schema of an array: its name, ordered dimensions,
// and attributes. The printable form matches the paper's notation:
//
//	A<v1:int, v2:float>[i=1,6,3, j=1,6,3]
type Schema struct {
	Name  string
	Dims  []Dimension
	Attrs []Attribute
}

// Validate checks the schema: at least one dimension, unique names across
// dimensions and attributes, and valid dimension ranges.
func (s *Schema) Validate() error {
	if len(s.Dims) == 0 {
		return fmt.Errorf("array: schema %s has no dimensions", s.Name)
	}
	seen := make(map[string]bool, len(s.Dims)+len(s.Attrs))
	for _, d := range s.Dims {
		if err := d.Validate(); err != nil {
			return err
		}
		if seen[d.Name] {
			return fmt.Errorf("array: schema %s repeats name %q", s.Name, d.Name)
		}
		seen[d.Name] = true
	}
	for _, a := range s.Attrs {
		if a.Name == "" {
			return fmt.Errorf("array: schema %s has attribute with empty name", s.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("array: schema %s repeats name %q", s.Name, a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// NumDims returns the dimensionality of the schema.
func (s *Schema) NumDims() int { return len(s.Dims) }

// DimIndex returns the position of the named dimension, or -1.
func (s *Schema) DimIndex(name string) int {
	for i, d := range s.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// HasDim reports whether the schema has a dimension with the given name.
func (s *Schema) HasDim(name string) bool { return s.DimIndex(name) >= 0 }

// HasAttr reports whether the schema has an attribute with the given name.
func (s *Schema) HasAttr(name string) bool { return s.AttrIndex(name) >= 0 }

// TotalChunks returns the number of logical chunk positions of the array
// space (the product of per-dimension chunk counts).
func (s *Schema) TotalChunks() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		n *= d.ChunkCount()
	}
	return n
}

// LogicalCells returns the number of logical cell positions (product of
// dimension extents). This is the dense capacity, not the occupied count.
func (s *Schema) LogicalCells() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		n *= d.Extent()
	}
	return n
}

// CellsPerChunk returns the number of logical cells covered by one chunk
// (product of chunk intervals, clipped to extents).
func (s *Schema) CellsPerChunk() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		ci := d.ChunkInterval
		if e := d.Extent(); ci > e {
			ci = e
		}
		n *= ci
	}
	return n
}

// SameShape reports whether two schemas have identical dimension lists:
// same names in the same order, same ranges and chunk intervals. Merge join
// requires its operands to share a shape (Section 2.3.1 of the paper).
func (s *Schema) SameShape(o *Schema) bool {
	if len(s.Dims) != len(o.Dims) {
		return false
	}
	for i, d := range s.Dims {
		od := o.Dims[i]
		if d.Start != od.Start || d.End != od.End || d.ChunkInterval != od.ChunkInterval {
			return false
		}
	}
	return true
}

// SameShapeAligned is like SameShape but also requires matching dimension
// names.
func (s *Schema) SameShapeAligned(o *Schema) bool {
	if !s.SameShape(o) {
		return false
	}
	for i, d := range s.Dims {
		if d.Name != o.Dims[i].Name {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{Name: s.Name}
	c.Dims = append([]Dimension(nil), s.Dims...)
	c.Attrs = append([]Attribute(nil), s.Attrs...)
	return c
}

// Rename returns a copy of the schema with a new array name.
func (s *Schema) Rename(name string) *Schema {
	c := s.Clone()
	c.Name = name
	return c
}

// String renders the schema in the paper's notation.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('<')
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteString(">[")
	for i, d := range s.Dims {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.String())
	}
	b.WriteByte(']')
	return b.String()
}
