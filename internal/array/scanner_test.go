package array

import (
	"math/rand"
	"reflect"
	"testing"
)

// scannerArray builds a two-dimensional mixed-type array with randomly
// occupied cells across several chunks.
func scannerArray(t *testing.T, seed int64, n int) *Array {
	t.Helper()
	s := MustParseSchema("S<v:int, f:float, s:string>[i=1,40,10, j=1,40,10]")
	a := MustNew(s)
	rng := rand.New(rand.NewSource(seed))
	type coord struct{ i, j int64 }
	used := make(map[coord]bool)
	labels := []string{"alpha", "beta", "gamma", "delta"}
	for len(used) < n {
		c := coord{rng.Int63n(40) + 1, rng.Int63n(40) + 1}
		if used[c] {
			continue
		}
		used[c] = true
		a.MustPut([]int64{c.i, c.j}, []Value{
			IntValue(rng.Int63n(100)),
			FloatValue(rng.Float64()),
			StringValue(labels[rng.Intn(len(labels))]),
		})
	}
	a.SortAll()
	return a
}

// collectScanner drains a scanner into StoredCells, copying every window.
func collectScanner(a *Array, blockRows int) []StoredCell {
	var out []StoredCell
	sc := a.NewScanner(blockRows)
	for {
		blk, ok := sc.Next()
		if !ok {
			return out
		}
		for i := 0; i < blk.Len(); i++ {
			c := StoredCell{Coords: make([]int64, len(a.Schema.Dims))}
			for d := range c.Coords {
				c.Coords[d] = blk.Coord(d, i)
			}
			for at := range a.Schema.Attrs {
				c.Attrs = append(c.Attrs, blk.Attr(at, i))
			}
			out = append(out, c)
		}
	}
}

// TestScannerMatchesScan pins the Scanner's contract: for every window
// size, the concatenated windows visit exactly the cells Scan visits, in
// the same deterministic order, with bit-identical values.
func TestScannerMatchesScan(t *testing.T) {
	a := scannerArray(t, 1, 300)
	var want []StoredCell
	a.Scan(func(coords []int64, attrs []Value) bool {
		want = append(want, StoredCell{
			Coords: append([]int64(nil), coords...),
			Attrs:  append([]Value(nil), attrs...),
		})
		return true
	})
	for _, rows := range []int{1, 3, 7, DefaultBlockRows, 1 << 20, 0} {
		got := collectScanner(a, rows)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("blockRows=%d: scanner cells differ from Scan order", rows)
		}
	}
}

// TestScannerWindowsStayInChunk verifies windows never span chunks and
// never exceed the requested size.
func TestScannerWindowsStayInChunk(t *testing.T) {
	a := scannerArray(t, 2, 250)
	sc := a.NewScanner(7)
	for {
		blk, ok := sc.Next()
		if !ok {
			break
		}
		if blk.Len() <= 0 || blk.Len() > 7 {
			t.Fatalf("window of %d rows, want 1..7", blk.Len())
		}
		if blk.From < 0 || blk.To > blk.Chunk.Len() {
			t.Fatalf("window [%d,%d) outside chunk of %d rows", blk.From, blk.To, blk.Chunk.Len())
		}
	}
}

// TestCellsMatchesScanner pins Cells() as a thin collect-all wrapper
// over the scanner.
func TestCellsMatchesScanner(t *testing.T) {
	a := scannerArray(t, 3, 200)
	if got, want := a.Cells(), collectScanner(a, 0); !reflect.DeepEqual(got, want) {
		t.Error("Cells() differs from scanner collection")
	}
	if a.CellCount() != int64(len(a.Cells())) {
		t.Errorf("CellCount = %d, Cells len = %d", a.CellCount(), len(a.Cells()))
	}
}
