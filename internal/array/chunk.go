package array

import (
	"fmt"
	"sort"
	"strings"
)

// ChunkKey identifies a logical chunk position in array space: one chunk
// index per dimension, in dimension order. Keys are comparable and have a
// canonical string encoding so they may be used as map keys.
type ChunkKey string

// MakeChunkKey encodes per-dimension chunk indices into a ChunkKey.
func MakeChunkKey(idx []int64) ChunkKey {
	var b strings.Builder
	for i, v := range idx {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return ChunkKey(b.String())
}

// Indices decodes the per-dimension chunk indices of the key.
func (k ChunkKey) Indices() []int64 {
	if k == "" {
		return nil
	}
	parts := strings.Split(string(k), ",")
	out := make([]int64, len(parts))
	for i, p := range parts {
		var v int64
		fmt.Sscanf(p, "%d", &v)
		out[i] = v
	}
	return out
}

// ChunkKeyOf returns the key of the chunk containing the given coordinates
// under schema s. Coordinates must be in range (checked by Array.Put).
func ChunkKeyOf(s *Schema, coords []int64) ChunkKey {
	idx := make([]int64, len(s.Dims))
	for i, d := range s.Dims {
		idx[i] = d.ChunkIndex(coords[i])
	}
	return MakeChunkKey(idx)
}

// CompareCoords orders two coordinate vectors in C-order: the first
// dimension is the outermost, the last the innermost. It is the cell sort
// order within chunks (Section 2.1).
func CompareCoords(a, b []int64) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Chunk is a stored multidimensional subarray: the occupied cells of one
// logical chunk position. Storage is columnar ("vertically partitioned"):
// coordinates are stored as one column per dimension and each attribute is
// its own column, mirroring the on-disk layout of Figure 1(b).
//
// A chunk is either sorted (cells in C-order on the coordinates) or
// unsorted; rechunk produces unsorted chunks, redimension sorted ones.
type Chunk struct {
	Key    ChunkKey
	NDims  int
	Coords [][]int64 // Coords[d][row]: coordinate of dimension d for each cell
	Cols   []Column  // one column per attribute
	Sorted bool
}

// Column is one vertically partitioned attribute column of a chunk.
type Column struct {
	Type ScalarType
	Ints []int64   // used when Type == TypeInt64
	Fs   []float64 // used when Type == TypeFloat64
	Strs []string  // used when Type == TypeString
}

// NewColumn returns an empty column of the given type.
func NewColumn(t ScalarType) Column { return Column{Type: t} }

// Len returns the number of values in the column.
func (c *Column) Len() int {
	switch c.Type {
	case TypeInt64:
		return len(c.Ints)
	case TypeFloat64:
		return len(c.Fs)
	case TypeString:
		return len(c.Strs)
	}
	return 0
}

// Append adds a value, converting between numeric kinds as needed.
func (c *Column) Append(v Value) {
	switch c.Type {
	case TypeInt64:
		c.Ints = append(c.Ints, v.AsInt())
	case TypeFloat64:
		c.Fs = append(c.Fs, v.AsFloat())
	case TypeString:
		c.Strs = append(c.Strs, v.String())
	}
}

// Value returns the value at the given row.
func (c *Column) Value(row int) Value {
	switch c.Type {
	case TypeInt64:
		return IntValue(c.Ints[row])
	case TypeFloat64:
		return FloatValue(c.Fs[row])
	case TypeString:
		return StringValue(c.Strs[row])
	}
	return Value{}
}

// swap exchanges two rows of the column.
func (c *Column) swap(i, j int) {
	switch c.Type {
	case TypeInt64:
		c.Ints[i], c.Ints[j] = c.Ints[j], c.Ints[i]
	case TypeFloat64:
		c.Fs[i], c.Fs[j] = c.Fs[j], c.Fs[i]
	case TypeString:
		c.Strs[i], c.Strs[j] = c.Strs[j], c.Strs[i]
	}
}

// NewChunk returns an empty chunk at the given position for a schema with
// nDims dimensions and the given attribute types.
func NewChunk(key ChunkKey, nDims int, attrTypes []ScalarType) *Chunk {
	ch := &Chunk{Key: key, NDims: nDims, Sorted: true}
	ch.Coords = make([][]int64, nDims)
	ch.Cols = make([]Column, len(attrTypes))
	for i, t := range attrTypes {
		ch.Cols[i] = NewColumn(t)
	}
	return ch
}

// Len returns the number of occupied cells stored in the chunk.
func (ch *Chunk) Len() int {
	if ch.NDims == 0 {
		if len(ch.Cols) > 0 {
			return ch.Cols[0].Len()
		}
		return 0
	}
	return len(ch.Coords[0])
}

// AppendCell adds a cell. The chunk is marked unsorted unless the new cell
// extends the existing C-order.
func (ch *Chunk) AppendCell(coords []int64, attrs []Value) {
	n := ch.Len()
	if ch.Sorted && n > 0 {
		last := make([]int64, ch.NDims)
		for d := 0; d < ch.NDims; d++ {
			last[d] = ch.Coords[d][n-1]
		}
		if CompareCoords(last, coords) > 0 {
			ch.Sorted = false
		}
	}
	for d := 0; d < ch.NDims; d++ {
		ch.Coords[d] = append(ch.Coords[d], coords[d])
	}
	for i := range ch.Cols {
		if i < len(attrs) {
			ch.Cols[i].Append(attrs[i])
		} else {
			ch.Cols[i].Append(Value{Kind: ch.Cols[i].Type})
		}
	}
}

// Cell materializes the cell at a row (coordinates plus attribute values).
func (ch *Chunk) Cell(row int) ([]int64, []Value) {
	coords := make([]int64, ch.NDims)
	for d := 0; d < ch.NDims; d++ {
		coords[d] = ch.Coords[d][row]
	}
	attrs := make([]Value, len(ch.Cols))
	for i := range ch.Cols {
		attrs[i] = ch.Cols[i].Value(row)
	}
	return coords, attrs
}

// CoordsAt fills dst with the coordinates of the cell at row and returns it.
func (ch *Chunk) CoordsAt(row int, dst []int64) []int64 {
	if cap(dst) < ch.NDims {
		dst = make([]int64, ch.NDims)
	}
	dst = dst[:ch.NDims]
	for d := 0; d < ch.NDims; d++ {
		dst[d] = ch.Coords[d][row]
	}
	return dst
}

// Sort sorts the chunk's cells into C-order on the coordinates. It is the
// in-chunk sort invoked by the redimension operator; cost O(n log n) per
// chunk (Table 1).
func (ch *Chunk) Sort() {
	if ch.Sorted || ch.NDims == 0 {
		ch.Sorted = true
		return
	}
	s := &chunkSorter{ch: ch}
	sort.Stable(s)
	ch.Sorted = true
}

// IsSortedCOrder verifies C-order by scanning (used by tests and the merge
// join validator).
func (ch *Chunk) IsSortedCOrder() bool {
	n := ch.Len()
	prev := make([]int64, ch.NDims)
	cur := make([]int64, ch.NDims)
	for row := 1; row < n; row++ {
		prev = ch.CoordsAt(row-1, prev)
		cur = ch.CoordsAt(row, cur)
		if CompareCoords(prev, cur) > 0 {
			return false
		}
	}
	return true
}

// StoredBytes estimates the serialized size of the chunk: 8 bytes per
// coordinate and numeric attribute value, string lengths for strings. The
// database engine uses this as its transfer-size estimate.
func (ch *Chunk) StoredBytes() int64 {
	n := int64(ch.Len())
	bytes := n * int64(ch.NDims) * 8
	for i := range ch.Cols {
		c := &ch.Cols[i]
		switch c.Type {
		case TypeInt64, TypeFloat64:
			bytes += n * 8
		case TypeString:
			for _, s := range c.Strs {
				bytes += int64(len(s)) + 4
			}
		}
	}
	return bytes
}

// Clone returns a deep copy of the chunk.
func (ch *Chunk) Clone() *Chunk {
	c := &Chunk{Key: ch.Key, NDims: ch.NDims, Sorted: ch.Sorted}
	c.Coords = make([][]int64, len(ch.Coords))
	for d := range ch.Coords {
		c.Coords[d] = append([]int64(nil), ch.Coords[d]...)
	}
	c.Cols = make([]Column, len(ch.Cols))
	for i := range ch.Cols {
		src := &ch.Cols[i]
		c.Cols[i] = Column{Type: src.Type}
		c.Cols[i].Ints = append([]int64(nil), src.Ints...)
		c.Cols[i].Fs = append([]float64(nil), src.Fs...)
		c.Cols[i].Strs = append([]string(nil), src.Strs...)
	}
	return c
}

type chunkSorter struct {
	ch *Chunk
	a  []int64
	b  []int64
}

func (s *chunkSorter) Len() int { return s.ch.Len() }

func (s *chunkSorter) Less(i, j int) bool {
	s.a = s.ch.CoordsAt(i, s.a)
	s.b = s.ch.CoordsAt(j, s.b)
	return CompareCoords(s.a, s.b) < 0
}

func (s *chunkSorter) Swap(i, j int) {
	ch := s.ch
	for d := 0; d < ch.NDims; d++ {
		ch.Coords[d][i], ch.Coords[d][j] = ch.Coords[d][j], ch.Coords[d][i]
	}
	for c := range ch.Cols {
		ch.Cols[c].swap(i, j)
	}
}
