// Package array implements the Array Data Model (ADM) used by the shuffle
// join framework: multidimensional sparse arrays whose cells are clustered
// into chunks, sorted in C-order on their dimensions, with vertically
// partitioned attribute storage.
//
// The model follows Section 2.1 of "Skew-Aware Join Optimization for Array
// Databases" (SIGMOD 2015): an array has any number of named, ordered
// dimensions, each a contiguous integer range divided into logical chunks by
// a chunk interval, plus one or more typed attributes stored per occupied
// cell. Only occupied cells are stored, which makes the representation
// efficient for sparse arrays.
package array

import (
	"fmt"
	"math"
	"strconv"
)

// ScalarType enumerates the attribute value types supported by the ADM.
type ScalarType uint8

const (
	// TypeInt64 is a 64-bit signed integer attribute ("int" in schemas).
	TypeInt64 ScalarType = iota
	// TypeFloat64 is a 64-bit IEEE float attribute ("float" in schemas).
	TypeFloat64
	// TypeString is a variable-length string attribute ("string" in schemas).
	TypeString
)

// String returns the schema spelling of the type.
func (t ScalarType) String() string {
	switch t {
	case TypeInt64:
		return "int"
	case TypeFloat64:
		return "float"
	case TypeString:
		return "string"
	default:
		return fmt.Sprintf("ScalarType(%d)", uint8(t))
	}
}

// ParseScalarType converts a schema spelling ("int", "float", "string",
// with "int64"/"double" accepted as aliases) to a ScalarType.
func ParseScalarType(s string) (ScalarType, error) {
	switch s {
	case "int", "int64", "integer":
		return TypeInt64, nil
	case "float", "float64", "double":
		return TypeFloat64, nil
	case "string":
		return TypeString, nil
	default:
		return 0, fmt.Errorf("array: unknown scalar type %q", s)
	}
}

// Value is a scalar attribute value: a tagged union over the ADM types.
// The zero Value is the integer 0.
type Value struct {
	Kind ScalarType
	Int  int64
	F    float64
	Str  string
}

// IntValue returns an integer Value.
func IntValue(v int64) Value { return Value{Kind: TypeInt64, Int: v} }

// FloatValue returns a float Value.
func FloatValue(v float64) Value { return Value{Kind: TypeFloat64, F: v} }

// StringValue returns a string Value.
func StringValue(v string) Value { return Value{Kind: TypeString, Str: v} }

// String formats the value the way it would appear in query output.
func (v Value) String() string {
	switch v.Kind {
	case TypeInt64:
		return strconv.FormatInt(v.Int, 10)
	case TypeFloat64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeString:
		return v.Str
	default:
		return "?"
	}
}

// Equal reports whether two values compare equal under the equi-join
// semantics of the ADM. Values of different kinds are compared numerically
// when both are numeric (an int attribute may join a float attribute);
// otherwise they are unequal.
func (v Value) Equal(o Value) bool {
	if v.Kind == o.Kind {
		switch v.Kind {
		case TypeInt64:
			return v.Int == o.Int
		case TypeFloat64:
			return v.F == o.F
		case TypeString:
			return v.Str == o.Str
		}
		return false
	}
	if v.Kind == TypeString || o.Kind == TypeString {
		return false
	}
	return v.AsFloat() == o.AsFloat()
}

// Compare orders two values: -1, 0, +1. Numeric kinds compare numerically;
// strings compare lexicographically; a numeric value sorts before a string.
func (v Value) Compare(o Value) int {
	vs, os := v.Kind == TypeString, o.Kind == TypeString
	switch {
	case vs && os:
		switch {
		case v.Str < o.Str:
			return -1
		case v.Str > o.Str:
			return 1
		}
		return 0
	case vs:
		return 1
	case os:
		return -1
	}
	a, b := v.AsFloat(), o.AsFloat()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// AsFloat converts a numeric value to float64. Strings parse if possible,
// otherwise NaN.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case TypeInt64:
		return float64(v.Int)
	case TypeFloat64:
		return v.F
	case TypeString:
		f, err := strconv.ParseFloat(v.Str, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	}
	return math.NaN()
}

// AsInt converts a numeric value to int64, truncating floats. String values
// parse if possible, otherwise 0.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case TypeInt64:
		return v.Int
	case TypeFloat64:
		return int64(v.F)
	case TypeString:
		n, err := strconv.ParseInt(v.Str, 10, 64)
		if err != nil {
			return 0
		}
		return n
	}
	return 0
}

// HashKey returns a canonical comparable key for use in join hash maps:
// numerically equal int and float values share a key.
func (v Value) HashKey() uint64 {
	switch v.Kind {
	case TypeInt64:
		return mix64(uint64(v.Int))
	case TypeFloat64:
		if v.F == math.Trunc(v.F) && v.F >= math.MinInt64 && v.F <= math.MaxInt64 {
			return mix64(uint64(int64(v.F)))
		}
		return mix64(math.Float64bits(v.F))
	case TypeString:
		var h uint64 = 14695981039346656037 // FNV-1a
		for i := 0; i < len(v.Str); i++ {
			h ^= uint64(v.Str[i])
			h *= 1099511628211
		}
		return h
	}
	return 0
}

// mix64 is a 64-bit finalizer (splitmix64) giving well-spread hash values.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
