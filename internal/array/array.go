package array

import (
	"fmt"
	"sort"
)

// Array is a sparse multidimensional array: a schema plus the set of its
// occupied (stored) chunks, keyed by chunk position. Only chunks containing
// at least one occupied cell are stored.
type Array struct {
	Schema *Schema
	Chunks map[ChunkKey]*Chunk
}

// New returns an empty array with the given schema. The schema is validated.
func New(s *Schema) (*Array, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Array{Schema: s, Chunks: make(map[ChunkKey]*Chunk)}, nil
}

// MustNew is New but panics on an invalid schema.
func MustNew(s *Schema) *Array {
	a, err := New(s)
	if err != nil {
		panic(err)
	}
	return a
}

// attrTypes returns the schema attribute types, used to create chunks.
func (a *Array) attrTypes() []ScalarType {
	ts := make([]ScalarType, len(a.Schema.Attrs))
	for i, at := range a.Schema.Attrs {
		ts[i] = at.Type
	}
	return ts
}

// Put stores a cell at the given coordinates. Coordinates are validated
// against the dimension ranges. Writing to an occupied position appends a
// duplicate (the ADM stores what it is given; deduplication is the loader's
// concern).
func (a *Array) Put(coords []int64, attrs []Value) error {
	if len(coords) != len(a.Schema.Dims) {
		return fmt.Errorf("array: %s: got %d coordinates, schema has %d dimensions",
			a.Schema.Name, len(coords), len(a.Schema.Dims))
	}
	for i, d := range a.Schema.Dims {
		if !d.Contains(coords[i]) {
			return fmt.Errorf("array: %s: coordinate %s=%d outside [%d,%d]",
				a.Schema.Name, d.Name, coords[i], d.Start, d.End)
		}
	}
	key := ChunkKeyOf(a.Schema, coords)
	ch, ok := a.Chunks[key]
	if !ok {
		ch = NewChunk(key, len(a.Schema.Dims), a.attrTypes())
		a.Chunks[key] = ch
	}
	ch.AppendCell(coords, attrs)
	return nil
}

// MustPut is Put but panics on error; for tests and generators whose
// coordinates are constructed in range.
func (a *Array) MustPut(coords []int64, attrs []Value) {
	if err := a.Put(coords, attrs); err != nil {
		panic(err)
	}
}

// Get returns the attribute values of the first stored cell at coords, or
// false if the position is empty.
func (a *Array) Get(coords []int64) ([]Value, bool) {
	key := ChunkKeyOf(a.Schema, coords)
	ch, ok := a.Chunks[key]
	if !ok {
		return nil, false
	}
	tmp := make([]int64, ch.NDims)
	for row := 0; row < ch.Len(); row++ {
		tmp = ch.CoordsAt(row, tmp)
		if CompareCoords(tmp, coords) == 0 {
			_, attrs := ch.Cell(row)
			return attrs, true
		}
	}
	return nil, false
}

// CellCount returns the total number of occupied cells stored.
func (a *Array) CellCount() int64 {
	var n int64
	for _, ch := range a.Chunks {
		n += int64(ch.Len())
	}
	return n
}

// ChunkCount returns the number of stored (non-empty) chunks.
func (a *Array) ChunkCount() int { return len(a.Chunks) }

// StoredBytes returns the estimated serialized size of all stored chunks.
func (a *Array) StoredBytes() int64 {
	var n int64
	for _, ch := range a.Chunks {
		n += ch.StoredBytes()
	}
	return n
}

// SortAll sorts every stored chunk into C-order.
func (a *Array) SortAll() {
	for _, ch := range a.Chunks {
		ch.Sort()
	}
}

// SortedKeys returns the stored chunk keys in C-order of their chunk
// indices, giving a deterministic traversal of array space.
func (a *Array) SortedKeys() []ChunkKey {
	keys := make([]ChunkKey, 0, len(a.Chunks))
	for k := range a.Chunks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return CompareCoords(keys[i].Indices(), keys[j].Indices()) < 0
	})
	return keys
}

// Scan calls fn for every stored cell in chunk-key C-order and in-chunk row
// order. Returning false from fn stops the scan.
func (a *Array) Scan(fn func(coords []int64, attrs []Value) bool) {
	for _, key := range a.SortedKeys() {
		ch := a.Chunks[key]
		for row := 0; row < ch.Len(); row++ {
			coords, attrs := ch.Cell(row)
			if !fn(coords, attrs) {
				return
			}
		}
	}
}

// Cells materializes every stored cell (coords, attrs) in deterministic
// order. It is a thin collect-all wrapper over the pull-based Scanner —
// full materialization is legitimate only for tests, small arrays, and
// exhaustive operators; streaming consumers should use NewScanner (or
// batch.ArraySource) instead.
func (a *Array) Cells() []StoredCell {
	out := make([]StoredCell, 0, a.CellCount())
	sc := a.NewScanner(0)
	for {
		blk, ok := sc.Next()
		if !ok {
			return out
		}
		ch := blk.Chunk
		for row := blk.From; row < blk.To; row++ {
			coords := make([]int64, ch.NDims)
			for d := 0; d < ch.NDims; d++ {
				coords[d] = ch.Coords[d][row]
			}
			attrs := make([]Value, len(ch.Cols))
			for i := range ch.Cols {
				attrs[i] = ch.Cols[i].Value(row)
			}
			out = append(out, StoredCell{Coords: coords, Attrs: attrs})
		}
	}
}

// StoredCell is one materialized cell: coordinates plus attribute values.
type StoredCell struct {
	Coords []int64
	Attrs  []Value
}

// Clone returns a deep copy of the array.
func (a *Array) Clone() *Array {
	c := &Array{Schema: a.Schema.Clone(), Chunks: make(map[ChunkKey]*Chunk, len(a.Chunks))}
	for k, ch := range a.Chunks {
		c.Chunks[k] = ch.Clone()
	}
	return c
}
