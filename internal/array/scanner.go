package array

// CellBlock is a bounded, zero-copy columnar window over one stored
// chunk: rows [From, To) of Chunk. It is the unit the pull-based
// Scanner yields — consumers read coordinates and attribute values
// straight out of the chunk's columns without materializing per-cell
// slices.
type CellBlock struct {
	Chunk    *Chunk
	From, To int
}

// Len returns the number of cells in the window.
func (b CellBlock) Len() int { return b.To - b.From }

// Coord returns the coordinate of dimension d for the i-th cell of the
// window.
func (b CellBlock) Coord(d, i int) int64 { return b.Chunk.Coords[d][b.From+i] }

// Attr returns attribute a of the i-th cell of the window.
func (b CellBlock) Attr(a, i int) Value { return b.Chunk.Cols[a].Value(b.From + i) }

// Scanner is a pull iterator over an array's cells in the deterministic
// scan order (chunk-key C-order, in-chunk row order) — the same order
// Scan and Cells visit. Each Next returns the next window of at most
// blockRows cells; windows never span chunks, so every window is a
// contiguous columnar view into one chunk.
type Scanner struct {
	a         *Array
	keys      []ChunkKey
	ki        int // next key index
	row       int // next row within the current chunk
	cur       *Chunk
	blockRows int
}

// DefaultBlockRows is the window size used when the caller passes 0.
const DefaultBlockRows = 1024

// NewScanner returns a scanner over a's cells. blockRows bounds the
// window size (0 uses DefaultBlockRows).
func (a *Array) NewScanner(blockRows int) *Scanner {
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	return &Scanner{a: a, keys: a.SortedKeys(), blockRows: blockRows}
}

// Next returns the next window, or ok=false when the array is
// exhausted.
func (s *Scanner) Next() (CellBlock, bool) {
	for {
		if s.cur == nil {
			if s.ki >= len(s.keys) {
				return CellBlock{}, false
			}
			s.cur = s.a.Chunks[s.keys[s.ki]]
			s.ki++
			s.row = 0
		}
		if s.row >= s.cur.Len() {
			s.cur = nil
			continue
		}
		from := s.row
		to := from + s.blockRows
		if to > s.cur.Len() {
			to = s.cur.Len()
		}
		s.row = to
		return CellBlock{Chunk: s.cur, From: from, To: to}, true
	}
}
