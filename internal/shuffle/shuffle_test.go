package shuffle

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
)

// lineArray builds A<v:int>[i=1,n,ci] with cells at every coordinate,
// v = i % 17, distributed round-robin over k nodes.
func lineArray(t *testing.T, name string, n, ci int64, k int) *cluster.Distributed {
	t.Helper()
	s := array.MustParseSchema(name + "<v:int>[i=1,100,10]")
	s.Dims[0].End, s.Dims[0].ChunkInterval = n, ci
	a := array.MustNew(s)
	for i := int64(1); i <= n; i++ {
		a.MustPut([]int64{i}, []array.Value{array.IntValue(i % 17)})
	}
	return cluster.Distribute(a, k, cluster.RoundRobin)
}

func dimMapper(s *array.Schema) *SideMapper {
	ref := join.Ref{IsDim: true, Index: 0, Name: s.Dims[0].Name}
	return &SideMapper{KeyRefs: []join.Ref{ref}, DimRefs: []join.Ref{ref}, CarryAll: true}
}

func TestChunkUnitsPartitionCells(t *testing.T) {
	d := lineArray(t, "A", 100, 10, 4)
	spec := &UnitSpec{Kind: ChunkUnits, JoinDims: []array.Dimension{{Name: "i", Start: 1, End: 100, ChunkInterval: 10}}}
	ss, err := MapSide(d, 4, spec, dimMapper(d.Array.Schema))
	if err != nil {
		t.Fatalf("MapSide: %v", err)
	}
	if spec.NumUnits != 10 {
		t.Fatalf("NumUnits = %d, want 10", spec.NumUnits)
	}
	if got := ss.TotalCells(); got != 100 {
		t.Errorf("TotalCells = %d, want 100", got)
	}
	for u := 0; u < spec.NumUnits; u++ {
		if got := ss.UnitTotal(u); got != 10 {
			t.Errorf("unit %d holds %d cells, want 10", u, got)
		}
	}
}

func TestChunkUnitsRespectJoinSpace(t *testing.T) {
	// Every cell of unit u must have its join coordinate inside chunk u.
	d := lineArray(t, "A", 60, 10, 3)
	spec := &UnitSpec{Kind: ChunkUnits, JoinDims: []array.Dimension{{Name: "i", Start: 1, End: 60, ChunkInterval: 10}}}
	ss, err := MapSide(d, 3, spec, dimMapper(d.Array.Schema))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < spec.NumUnits; u++ {
		for node := 0; node < 3; node++ {
			for _, tup := range ss.Slice(u, node) {
				i := tup.Coords[0]
				if got := int((i - 1) / 10); got != u {
					t.Fatalf("cell i=%d in unit %d, want %d", i, u, got)
				}
			}
		}
	}
}

func TestHashUnitsConsistentAcrossSides(t *testing.T) {
	// Two arrays with matching attribute values must land matching cells in
	// the same bucket, whichever array they came from.
	dA := lineArray(t, "A", 200, 20, 4)
	dB := lineArray(t, "B", 150, 30, 4)
	spec := &UnitSpec{Kind: HashUnits, NumUnits: 16}
	attrRef := join.Ref{IsDim: false, Index: 0, Name: "v"}
	m := &SideMapper{KeyRefs: []join.Ref{attrRef}, CarryAll: true}
	ssA, err := MapSide(dA, 4, spec, m)
	if err != nil {
		t.Fatal(err)
	}
	ssB, err := MapSide(dB, 4, spec, m)
	if err != nil {
		t.Fatal(err)
	}
	unitOfKey := func(ss *SliceSet) map[int64]int {
		res := make(map[int64]int)
		for u := 0; u < spec.NumUnits; u++ {
			for node := 0; node < 4; node++ {
				for _, tup := range ss.Slice(u, node) {
					res[tup.Key[0].AsInt()] = u
				}
			}
		}
		return res
	}
	ua, ub := unitOfKey(ssA), unitOfKey(ssB)
	for k, u := range ua {
		if u2, ok := ub[k]; ok && u2 != u {
			t.Fatalf("key %d in unit %d on A but %d on B", k, u, u2)
		}
	}
}

func TestSizesMatchPlacement(t *testing.T) {
	d := lineArray(t, "A", 100, 10, 4)
	spec := &UnitSpec{Kind: ChunkUnits, JoinDims: []array.Dimension{{Name: "i", Start: 1, End: 100, ChunkInterval: 10}}}
	ss, err := MapSide(d, 4, spec, dimMapper(d.Array.Schema))
	if err != nil {
		t.Fatal(err)
	}
	sizes := ss.Sizes()
	// With matching chunking, unit u's cells all live where chunk u lives.
	for u := 0; u < 10; u++ {
		owner := d.Placement[array.MakeChunkKey([]int64{int64(u)})]
		for node := 0; node < 4; node++ {
			want := int64(0)
			if node == owner {
				want = 10
			}
			if sizes[u][node] != want {
				t.Errorf("sizes[%d][%d] = %d, want %d", u, node, sizes[u][node], want)
			}
		}
	}
}

func TestAssembleGathersAllSlices(t *testing.T) {
	d := lineArray(t, "A", 100, 5, 4) // chunks smaller than join chunks: slices split
	spec := &UnitSpec{Kind: ChunkUnits, JoinDims: []array.Dimension{{Name: "i", Start: 1, End: 100, ChunkInterval: 20}}}
	ss, err := MapSide(d, 4, spec, dimMapper(d.Array.Schema))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < spec.NumUnits; u++ {
		got := ss.Assemble(u, 0)
		if int64(len(got)) != ss.UnitTotal(u) {
			t.Errorf("unit %d: assembled %d cells, total %d", u, len(got), ss.UnitTotal(u))
		}
	}
}

func TestCarrySubsetOfAttributes(t *testing.T) {
	s := array.MustParseSchema("A<v1:int, v2:float, v3:string>[i=1,10,5]")
	a := array.MustNew(s)
	for i := int64(1); i <= 10; i++ {
		a.MustPut([]int64{i}, []array.Value{array.IntValue(i), array.FloatValue(float64(i)), array.StringValue("x")})
	}
	d := cluster.Distribute(a, 2, cluster.RoundRobin)
	spec := &UnitSpec{Kind: HashUnits, NumUnits: 4}
	m := &SideMapper{
		KeyRefs: []join.Ref{{IsDim: false, Index: 0, Name: "v1"}},
		Carry:   []int{1}, // only v2 travels
	}
	ss, err := MapSide(d, 2, spec, m)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4; u++ {
		for node := 0; node < 2; node++ {
			for _, tup := range ss.Slice(u, node) {
				if len(tup.Attrs) != 1 || tup.Attrs[0].Kind != array.TypeFloat64 {
					t.Fatalf("tuple carries %v, want only v2", tup.Attrs)
				}
			}
		}
	}
}

func TestUnitSpecValidate(t *testing.T) {
	bad := []UnitSpec{
		{Kind: HashUnits, NumUnits: 0},
		{Kind: ChunkUnits},
		{Kind: UnitKind(7), NumUnits: 4},
		{Kind: ChunkUnits, NumUnits: 5, JoinDims: []array.Dimension{{Name: "i", Start: 1, End: 100, ChunkInterval: 10}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("spec %d should fail validation: %+v", i, bad[i])
		}
	}
	good := UnitSpec{Kind: ChunkUnits, JoinDims: []array.Dimension{{Name: "i", Start: 1, End: 100, ChunkInterval: 10}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	if good.NumUnits != 10 {
		t.Errorf("Validate should infer NumUnits, got %d", good.NumUnits)
	}
}

func TestMapSideMapperSpecMismatch(t *testing.T) {
	d := lineArray(t, "A", 10, 5, 2)
	spec := &UnitSpec{Kind: ChunkUnits, JoinDims: []array.Dimension{{Name: "i", Start: 1, End: 10, ChunkInterval: 5}}}
	m := &SideMapper{KeyRefs: []join.Ref{{IsDim: true}}} // no DimRefs
	if _, err := MapSide(d, 2, spec, m); err == nil {
		t.Error("mismatched mapper should fail")
	}
}

// Property: mapping never loses or duplicates cells, for random arrays and
// both unit kinds.
func TestMapSideConservesCells(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(rng.Intn(200) + 10)
		s := array.MustParseSchema("A<v:int>[i=1,1000,100]")
		a := array.MustNew(s)
		for c := int64(0); c < n; c++ {
			a.MustPut([]int64{rng.Int63n(1000) + 1}, []array.Value{array.IntValue(rng.Int63n(50))})
		}
		k := rng.Intn(5) + 1
		d := cluster.Distribute(a, k, cluster.RoundRobin)
		ref := join.Ref{IsDim: false, Index: 0, Name: "v"}
		hashSpec := &UnitSpec{Kind: HashUnits, NumUnits: rng.Intn(30) + 1}
		ss, err := MapSide(d, k, hashSpec, &SideMapper{KeyRefs: []join.Ref{ref}})
		if err != nil || ss.TotalCells() != n {
			return false
		}
		dimRef := join.Ref{IsDim: true, Index: 0, Name: "i"}
		chunkSpec := &UnitSpec{Kind: ChunkUnits, JoinDims: []array.Dimension{{Name: "i", Start: 1, End: 1000, ChunkInterval: int64(rng.Intn(400) + 1)}}}
		ss2, err := MapSide(d, k, chunkSpec, &SideMapper{KeyRefs: []join.Ref{dimRef}, DimRefs: []join.Ref{dimRef}})
		return err == nil && ss2.TotalCells() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the parallel slice mapper partitions every cell exactly once
// and builds a SliceSet identical to the sequential mapper's — same tuples
// in the same (unit, node) slots in the same order — at any worker count
// and for both unit kinds.
func TestMapSideNMatchesSequential(t *testing.T) {
	f := func(seed int64, workers uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int64(rng.Intn(300) + 20)
		s := array.MustParseSchema("A<v:int>[i=1,1000,50]")
		a := array.MustNew(s)
		for c := int64(0); c < n; c++ {
			a.MustPut([]int64{rng.Int63n(1000) + 1}, []array.Value{array.IntValue(rng.Int63n(50))})
		}
		a.SortAll()
		k := rng.Intn(6) + 1
		d := cluster.Distribute(a, k, cluster.RoundRobin)
		w := int(workers%8) + 1
		ref := join.Ref{IsDim: false, Index: 0, Name: "v"}
		dimRef := join.Ref{IsDim: true, Index: 0, Name: "i"}
		specs := []*UnitSpec{
			{Kind: HashUnits, NumUnits: rng.Intn(30) + 1},
			{Kind: ChunkUnits, JoinDims: []array.Dimension{{Name: "i", Start: 1, End: 1000, ChunkInterval: int64(rng.Intn(400) + 1)}}},
		}
		mappers := []*SideMapper{
			{KeyRefs: []join.Ref{ref}, CarryAll: true},
			{KeyRefs: []join.Ref{dimRef}, DimRefs: []join.Ref{dimRef}},
		}
		for i, spec := range specs {
			seq, err := MapSide(d, k, spec, mappers[i])
			if err != nil {
				return false
			}
			par, err := MapSideN(d, k, spec, mappers[i], w)
			if err != nil {
				return false
			}
			if par.TotalCells() != a.CellCount() || !reflect.DeepEqual(seq.cells, par.cells) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Mapping an attribute into join space (A:A style): join dims derive from
// attribute values.
func TestChunkUnitsFromAttribute(t *testing.T) {
	d := lineArray(t, "A", 100, 10, 2)
	attrRef := join.Ref{IsDim: false, Index: 0, Name: "v"}
	spec := &UnitSpec{Kind: ChunkUnits, JoinDims: []array.Dimension{{Name: "v", Start: 0, End: 16, ChunkInterval: 4}}}
	ss, err := MapSide(d, 2, spec, &SideMapper{KeyRefs: []join.Ref{attrRef}, DimRefs: []join.Ref{attrRef}})
	if err != nil {
		t.Fatal(err)
	}
	// v = i % 17 in 0..16 -> 5 units (ceil(17/4)).
	if spec.NumUnits != 5 {
		t.Fatalf("NumUnits = %d, want 5", spec.NumUnits)
	}
	for u := 0; u < spec.NumUnits; u++ {
		for node := 0; node < 2; node++ {
			for _, tup := range ss.Slice(u, node) {
				v := tup.Key[0].AsInt()
				if int(v/4) != u {
					t.Fatalf("v=%d in unit %d, want %d", v, u, v/4)
				}
			}
		}
	}
}
