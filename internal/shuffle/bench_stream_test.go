package shuffle

import (
	"math/rand"
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
)

// benchSide builds a hash-unit mapped side for the steady-state
// benchmark: n cells, k nodes, int key with heavy duplication so hash
// buckets chain.
func benchSide(name string, n int64, k int, units int) (*cluster.Distributed, *UnitSpec, *SideMapper) {
	s := array.MustParseSchema(name + "<v:int, f:float>[i=1,100,10]")
	s.Dims[0].End, s.Dims[0].ChunkInterval = n, n/16
	a := array.MustNew(s)
	rng := rand.New(rand.NewSource(n))
	for i := int64(1); i <= n; i++ {
		a.MustPut([]int64{i}, []array.Value{
			array.IntValue(rng.Int63n(n / 8)),
			array.FloatValue(rng.Float64()),
		})
	}
	d := cluster.Distribute(a, k, cluster.RoundRobin)
	spec := &UnitSpec{Kind: HashUnits, NumUnits: units}
	m := &SideMapper{
		KeyRefs:  []join.Ref{{IsDim: false, Index: 0, Name: "v"}},
		CarryAll: true,
	}
	return d, spec, m
}

// BenchmarkStreamingSteadyState measures the recurring cost of the
// streaming compare path — pooled readers decoding batch runs into
// reusable arenas, pooled hash index, windowed probing — with the
// one-time map cost excluded. The hard requirement (enforced by the
// memory-bench CI job) is 0 allocs/op: after the first warmup pass every
// reader, arena, and index comes from a pool.
func BenchmarkStreamingSteadyState(b *testing.B) {
	const k, units = 4, 16
	dl, spec, m := benchSide("L", 1<<14, k, units)
	dr, _, _ := benchSide("R", 1<<14, k, units)

	rsl, err := MapSideStream(dl, k, spec, m, 0, StreamConfig{})
	if err != nil {
		b.Fatal(err)
	}
	rsr, err := MapSideStream(dr, k, spec, m, 0, StreamConfig{})
	if err != nil {
		b.Fatal(err)
	}

	var cells int64
	runAll := func() {
		for u := 0; u < spec.NumUnits; u++ {
			dest := u % k
			lrd := rsl.Reader(u, dest)
			rrd := rsr.Reader(u, dest)
			cells += int64(lrd.Len() + rrd.Len())
			join.RunStream(join.Hash, lrd, rrd, nil)
			lrd.Close()
			rrd.Close()
			// No ReleaseUnit: the runs persist so every iteration replays
			// the same compare work, exactly like repeated queries over a
			// warm engine.
		}
	}
	runAll() // warm the reader, arena, and index pools
	cells = 0

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runAll()
	}
	b.ReportMetric(float64(cells)/float64(b.N), "cells/op")
}
