package shuffle

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/batch"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
)

// mixedArray builds A<v:int, tag:string, f:float>[i=1,n,ci] with every
// coordinate occupied — string attributes included so the differential
// tests cover dictionary encoding — distributed round-robin over k
// nodes.
func mixedArray(t *testing.T, name string, n, ci int64, k int) *cluster.Distributed {
	t.Helper()
	s := array.MustParseSchema(name + "<v:int, tag:string, f:float>[i=1,100,10]")
	s.Dims[0].End, s.Dims[0].ChunkInterval = n, ci
	a := array.MustNew(s)
	rng := rand.New(rand.NewSource(n))
	tags := []string{"port", "open-sea", "anchorage"}
	for i := int64(1); i <= n; i++ {
		a.MustPut([]int64{i}, []array.Value{
			array.IntValue(i % 13),
			array.StringValue(tags[rng.Intn(len(tags))]),
			array.FloatValue(rng.Float64()),
		})
	}
	return cluster.Distribute(a, k, cluster.RoundRobin)
}

// streamCases enumerates the mapper shapes the engine actually uses:
// chunk units keyed by a dimension, and hash units keyed by an
// attribute (including a string key).
func streamCases(d *cluster.Distributed) []struct {
	name string
	spec *UnitSpec
	m    *SideMapper
} {
	dimRef := join.Ref{IsDim: true, Index: 0, Name: "i"}
	intRef := join.Ref{IsDim: false, Index: 0, Name: "v"}
	strRef := join.Ref{IsDim: false, Index: 1, Name: "tag"}
	return []struct {
		name string
		spec *UnitSpec
		m    *SideMapper
	}{
		{
			"chunk-units-dim-key",
			&UnitSpec{Kind: ChunkUnits, JoinDims: []array.Dimension{d.Array.Schema.Dims[0]}},
			&SideMapper{KeyRefs: []join.Ref{dimRef}, DimRefs: []join.Ref{dimRef}, CarryAll: true},
		},
		{
			"hash-units-int-key",
			&UnitSpec{Kind: HashUnits, NumUnits: 8},
			&SideMapper{KeyRefs: []join.Ref{intRef}, CarryAll: true},
		},
		{
			"hash-units-string-key",
			&UnitSpec{Kind: HashUnits, NumUnits: 8},
			&SideMapper{KeyRefs: []join.Ref{strRef}, Carry: []int{0, 2}},
		},
		{
			"hash-units-no-carry",
			&UnitSpec{Kind: HashUnits, NumUnits: 4},
			&SideMapper{KeyRefs: []join.Ref{intRef}},
		},
	}
}

// TestMapSideStreamMatchesMapSideN is the slice-mapping differential
// test: for every mapper shape, batch size, and worker count, the
// streamed RunSet reports the same slice statistics as the materializing
// reference, and its readers decode every (unit, destination) pair to
// the exact tuples Assemble produces — same order, same Value kinds,
// same string contents.
func TestMapSideStreamMatchesMapSideN(t *testing.T) {
	const k = 4
	d := mixedArray(t, "A", 100, 10, k)
	for _, tc := range streamCases(d) {
		for _, rows := range []int{1, 7, 1024} {
			for _, workers := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/rows=%d/workers=%d", tc.name, rows, workers), func(t *testing.T) {
					ss, err := MapSideN(d, k, tc.spec, tc.m, workers)
					if err != nil {
						t.Fatal(err)
					}
					rs, err := MapSideStream(d, k, tc.spec, tc.m, workers, StreamConfig{BatchRows: rows})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(rs.Sizes(), ss.Sizes()) {
						t.Fatalf("Sizes differ:\nstream %v\nref    %v", rs.Sizes(), ss.Sizes())
					}
					if rs.TotalCells() != ss.TotalCells() {
						t.Fatalf("TotalCells = %d, want %d", rs.TotalCells(), ss.TotalCells())
					}
					for u := 0; u < tc.spec.NumUnits; u++ {
						if rs.UnitTotal(u) != ss.UnitTotal(u) {
							t.Fatalf("UnitTotal(%d) = %d, want %d", u, rs.UnitTotal(u), ss.UnitTotal(u))
						}
						for dest := 0; dest < k; dest++ {
							want := ss.Assemble(u, dest)
							rd := rs.Reader(u, dest)
							got := rd.Materialize()
							if len(got) == 0 && len(want) == 0 {
								rd.Close()
								continue
							}
							if !reflect.DeepEqual(got, want) {
								t.Fatalf("unit %d dest %d: decoded tuples differ", u, dest)
							}
							rd.Close()
						}
					}
				})
			}
		}
	}
}

// TestReaderWindowsConcatenate pins the windowed pull path against
// whole-side materialization: the concatenation of Next windows equals
// Materialize.
func TestReaderWindowsConcatenate(t *testing.T) {
	const k = 3
	d := mixedArray(t, "B", 90, 10, k)
	tc := streamCases(d)[0]
	rs, err := MapSideStream(d, k, tc.spec, tc.m, 1, StreamConfig{BatchRows: 7})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < tc.spec.NumUnits; u++ {
		for dest := 0; dest < k; dest++ {
			whole := rs.Reader(u, dest)
			want := append([]join.Tuple(nil), whole.Materialize()...)
			// Deep-copy: window arenas are reused across Next calls.
			for i := range want {
				want[i].Key = append([]array.Value(nil), want[i].Key...)
				want[i].Coords = append([]int64(nil), want[i].Coords...)
				want[i].Attrs = append([]array.Value(nil), want[i].Attrs...)
			}
			whole.Close()

			rd := rs.Reader(u, dest)
			var got []join.Tuple
			for {
				win, ok := rd.Next()
				if !ok {
					break
				}
				if len(win) > 7 {
					t.Fatalf("window of %d tuples, want <= batch rows 7", len(win))
				}
				for i := range win {
					got = append(got, join.Tuple{
						Key:    append([]array.Value(nil), win[i].Key...),
						Coords: append([]int64(nil), win[i].Coords...),
						Attrs:  append([]array.Value(nil), win[i].Attrs...),
					})
				}
			}
			rd.Close()
			if len(got) != len(want) {
				t.Fatalf("unit %d dest %d: %d windowed tuples, want %d", u, dest, len(got), len(want))
			}
			if len(want) > 0 && !reflect.DeepEqual(got, want) {
				t.Fatalf("unit %d dest %d: windowed tuples differ from Materialize", u, dest)
			}
		}
	}
}

// TestRunSetBudgetLifecycle: every sealed batch is charged, every
// released unit credited; after all units retire the budget reads zero
// and ReleaseUnit is idempotent.
func TestRunSetBudgetLifecycle(t *testing.T) {
	const k = 3
	d := mixedArray(t, "C", 60, 10, k)
	tc := streamCases(d)[1]
	bud := batch.NewBudget(0, false)
	rs, err := MapSideStream(d, k, tc.spec, tc.m, 1, StreamConfig{BatchRows: 4, Budget: bud})
	if err != nil {
		t.Fatal(err)
	}
	if bud.Used() == 0 || bud.Peak() != bud.Used() {
		t.Fatalf("after mapping: Used=%d Peak=%d, want equal and positive", bud.Used(), bud.Peak())
	}
	for u := 0; u < tc.spec.NumUnits; u++ {
		rs.ReleaseUnit(u)
		rs.ReleaseUnit(u) // idempotent
	}
	if bud.Used() != 0 {
		t.Errorf("after releasing every unit: Used = %d, want 0", bud.Used())
	}
}

// TestMapSideStreamStrictBudget: a strict budget fails the map with
// ErrBudget when mapped batches exceed the limit.
func TestMapSideStreamStrictBudget(t *testing.T) {
	const k = 2
	d := mixedArray(t, "D", 40, 10, k)
	tc := streamCases(d)[0]
	bud := batch.NewBudget(64, true) // far below 40 cells × 5 cols × 8B
	_, err := MapSideStream(d, k, tc.spec, tc.m, 1, StreamConfig{BatchRows: 4, Budget: bud})
	if !errors.Is(err, batch.ErrBudget) {
		t.Fatalf("err = %v, want batch.ErrBudget", err)
	}
}
