package shuffle

import (
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
)

func benchDistributed(b *testing.B, n int64) *cluster.Distributed {
	b.Helper()
	s := &array.Schema{
		Name:  "A",
		Dims:  []array.Dimension{{Name: "i", Start: 1, End: n, ChunkInterval: (n + 63) / 64}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TypeInt64}},
	}
	a := array.MustNew(s)
	for i := int64(1); i <= n; i++ {
		a.MustPut([]int64{i}, []array.Value{array.IntValue(i % 977)})
	}
	return cluster.Distribute(a, 4, cluster.RoundRobin)
}

func BenchmarkMapSideHashUnits(b *testing.B) {
	d := benchDistributed(b, 200_000)
	spec := &UnitSpec{Kind: HashUnits, NumUnits: 256}
	m := &SideMapper{KeyRefs: []join.Ref{{IsDim: false, Index: 0, Name: "v"}}, CarryAll: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MapSide(d, 4, spec, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapSideChunkUnits(b *testing.B) {
	d := benchDistributed(b, 200_000)
	ref := join.Ref{IsDim: true, Index: 0, Name: "i"}
	spec := &UnitSpec{Kind: ChunkUnits, JoinDims: []array.Dimension{{Name: "i", Start: 1, End: 200_000, ChunkInterval: 3125}}}
	m := &SideMapper{KeyRefs: []join.Ref{ref}, DimRefs: []join.Ref{ref}, CarryAll: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MapSide(d, 4, spec, m); err != nil {
			b.Fatal(err)
		}
	}
}
