// Package shuffle implements the join unit and slice primitives of the
// shuffle join framework (Section 3.1 of the paper).
//
// A join unit is a non-overlapping collection of cells grouped by the join
// predicate: every pair of cells that can possibly match falls into the
// same unit, so units can be processed independently and in parallel. Units
// are built dynamically at query time by a slice function that each node
// applies to its local cells. The per-node fragment of a unit is a slice —
// the granularity of network transfer during data alignment.
//
// Two unit kinds exist, matching the logical planner's operators: chunk
// units (range partitioning by the join schema's chunk intervals, produced
// by redim/rechunk/scan) and hash units (hash buckets over the predicate
// key, produced by the hash operator).
package shuffle

import (
	"fmt"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/par"
)

// UnitKind distinguishes chunk-shaped join units from hash buckets.
type UnitKind int

const (
	// ChunkUnits groups cells by their chunk position in the join schema's
	// dimension space (ordered; supports merge join).
	ChunkUnits UnitKind = iota
	// HashUnits groups cells by a hash of the predicate key (unordered,
	// dimension-less buckets; finer-grained slices).
	HashUnits
)

func (k UnitKind) String() string {
	if k == HashUnits {
		return "hash buckets"
	}
	return "chunks"
}

// UnitSpec describes how cells map to join units. For ChunkUnits, JoinDims
// gives the join schema's dimensions (range + chunk interval per dimension)
// and each side supplies one Ref per join dimension; the unit id is the
// linearized chunk index. For HashUnits, NumUnits buckets are keyed on the
// full predicate key.
type UnitSpec struct {
	Kind     UnitKind
	NumUnits int
	JoinDims []array.Dimension // ChunkUnits only
}

// Validate checks internal consistency of the spec.
func (u *UnitSpec) Validate() error {
	switch u.Kind {
	case HashUnits:
		if u.NumUnits <= 0 {
			return fmt.Errorf("shuffle: hash units need NumUnits > 0, got %d", u.NumUnits)
		}
	case ChunkUnits:
		if len(u.JoinDims) == 0 {
			return fmt.Errorf("shuffle: chunk units need at least one join dimension")
		}
		n := 1
		for _, d := range u.JoinDims {
			if err := d.Validate(); err != nil {
				return err
			}
			n *= int(d.ChunkCount())
		}
		if u.NumUnits == 0 {
			u.NumUnits = n
		} else if u.NumUnits != n {
			return fmt.Errorf("shuffle: NumUnits %d disagrees with join-dim grid %d", u.NumUnits, n)
		}
	default:
		return fmt.Errorf("shuffle: unknown unit kind %d", u.Kind)
	}
	return nil
}

// Ordered reports whether the units carry a dimension order (chunk units
// do; hash buckets are dimension-less).
func (u *UnitSpec) Ordered() bool { return u.Kind == ChunkUnits }

// SideMapper is the slice function for one side of the join, closed over
// the resolved predicate: how to extract the comparison key and (for chunk
// units) the join-space coordinates from a local cell, and which attributes
// the vertically partitioned engine must carry through the shuffle.
type SideMapper struct {
	KeyRefs  []join.Ref // predicate terms of this side, in predicate order
	DimRefs  []join.Ref // ChunkUnits: per JoinDims entry, value source
	CarryAll bool       // carry every attribute (default: only Carry)
	Carry    []int      // attribute indices to carry when !CarryAll
}

// unitOfCell computes the join unit id of a single cell.
func unitOfCell(spec *UnitSpec, m *SideMapper, coords []int64, attrs []array.Value) (int, error) {
	if spec.Kind == HashUnits {
		key := join.KeyOf(m.KeyRefs, coords, attrs)
		var h uint64 = 1469598103934665603
		for i := range key {
			h ^= key[i].HashKey()
			h *= 1099511628211
		}
		return int(h % uint64(spec.NumUnits)), nil
	}
	unit := 0
	for i, d := range spec.JoinDims {
		ref := m.DimRefs[i]
		var v int64
		if ref.IsDim {
			v = coords[ref.Index]
		} else {
			v = attrs[ref.Index].AsInt()
		}
		if v < d.Start {
			v = d.Start
		}
		if v > d.End {
			v = d.End
		}
		unit = unit*int(d.ChunkCount()) + int(d.ChunkIndex(v))
	}
	return unit, nil
}

// SliceSet holds the mapped slices of one side: for every (unit, node)
// pair, the cells of that slice as comparison-ready tuples.
type SliceSet struct {
	Spec  *UnitSpec
	Nodes int
	// cells[unit][node] holds the slice's tuples; nil when empty.
	cells [][][]join.Tuple
}

// Slice returns the tuples of join unit u stored on the given node.
func (ss *SliceSet) Slice(u, node int) []join.Tuple { return ss.cells[u][node] }

// Sizes returns the slice statistics s_{i,j}: cells of each unit on each
// node — exactly what each node reports to the coordinator after slice
// mapping, and what the physical planner consumes.
func (ss *SliceSet) Sizes() [][]int64 {
	out := make([][]int64, ss.Spec.NumUnits)
	for u := range out {
		row := make([]int64, ss.Nodes)
		for n := 0; n < ss.Nodes; n++ {
			row[n] = int64(len(ss.cells[u][n]))
		}
		out[u] = row
	}
	return out
}

// UnitTotal returns S_i, the total cells of unit u across all nodes.
func (ss *SliceSet) UnitTotal(u int) int64 {
	var n int64
	for node := 0; node < ss.Nodes; node++ {
		n += int64(len(ss.cells[u][node]))
	}
	return n
}

// TotalCells returns the cells across all slices.
func (ss *SliceSet) TotalCells() int64 {
	var n int64
	for u := range ss.cells {
		n += ss.UnitTotal(u)
	}
	return n
}

// Assemble concatenates the slices of unit u — as they arrive at the
// destination node during data alignment — into a single join unit side.
// Local cells (those already on dest) come first, then remote slices in
// node order, mirroring arrival order in the executor.
func (ss *SliceSet) Assemble(u, dest int) []join.Tuple {
	return ss.AppendUnit(nil, u, dest)
}

// AppendUnit appends unit u's slices into dst in Assemble's arrival
// order and returns the extended slice. It exists so the compare hot
// path can assemble into pooled scratch (join.GetTuples) instead of a
// fresh allocation per unit.
func (ss *SliceSet) AppendUnit(dst []join.Tuple, u, dest int) []join.Tuple {
	dst = append(dst, ss.cells[u][dest]...)
	for node := 0; node < ss.Nodes; node++ {
		if node == dest {
			continue
		}
		dst = append(dst, ss.cells[u][node]...)
	}
	return dst
}

// MapSide runs the slice function over one distributed array
// sequentially. It is MapSideN with one worker.
func MapSide(d *cluster.Distributed, k int, spec *UnitSpec, m *SideMapper) (*SliceSet, error) {
	return MapSideN(d, k, spec, m, 1)
}

// MapSideN runs the slice function over one distributed array: every node
// maps its local cells to (unit, slice) independently of the others —
// fully materializing every mapped cell as a join.Tuple. It is the
// materializing reference path kept for differential testing and
// ablation (pipeline Options.Materialize); the default data plane is
// the batch-streaming MapSideStream, which produces bit-identical
// tuples without the per-cell materialization. The per-row ch.Cell
// calls here (one coords + one attrs allocation per cell) are the cost
// the streaming path removes.
//
// Each node maps independently of the others — exactly what a real
// cluster does node-locally — so the per-node map runs are spread over a
// pool of `workers` goroutines (<= 1 means sequential).
// A node's cells are always processed in chunk-key order by a single
// worker, and distinct nodes write distinct (unit, node) slice slots, so
// the resulting SliceSet is identical at every worker count. Tuples carry
// the comparison key plus only the attributes the mapper says to carry
// (vertical partitioning: the join moves only the necessary columns).
func MapSideN(d *cluster.Distributed, k int, spec *UnitSpec, m *SideMapper, workers int) (*SliceSet, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind == ChunkUnits && len(m.DimRefs) != len(spec.JoinDims) {
		return nil, fmt.Errorf("shuffle: mapper has %d dim refs, spec has %d join dims",
			len(m.DimRefs), len(spec.JoinDims))
	}
	ss := &SliceSet{Spec: spec, Nodes: k}
	ss.cells = make([][][]join.Tuple, spec.NumUnits)
	for u := range ss.cells {
		ss.cells[u] = make([][]join.Tuple, k)
	}

	carry := m.Carry
	if m.CarryAll {
		carry = make([]int, len(d.Array.Schema.Attrs))
		for i := range carry {
			carry[i] = i
		}
	}

	// Each node's chunks, in the global chunk-key order — the order the
	// sequential path visits them, preserved per node under parallelism.
	perNode := make([][]array.ChunkKey, k)
	for _, key := range d.Array.SortedKeys() {
		node := d.Placement[key]
		perNode[node] = append(perNode[node], key)
	}

	errs := make([]error, k)
	par.ForEach(k, workers, func(node int) {
		for _, key := range perNode[node] {
			ch := d.Array.Chunks[key]
			for row := 0; row < ch.Len(); row++ {
				coords, attrs := ch.Cell(row)
				u, err := unitOfCell(spec, m, coords, attrs)
				if err != nil {
					errs[node] = err
					return
				}
				t := join.Tuple{
					Key:    join.KeyOf(m.KeyRefs, coords, attrs),
					Coords: coords,
				}
				if len(carry) > 0 {
					t.Attrs = make([]array.Value, len(carry))
					for i, ai := range carry {
						t.Attrs[i] = attrs[ai]
					}
				}
				ss.cells[u][node] = append(ss.cells[u][node], t)
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ss, nil
}
