// Streaming slice mapping: the pull-based, bounded-memory counterpart
// of MapSideN. Instead of materializing every mapped cell as a
// join.Tuple (three slice headers plus per-cell allocations), the
// streaming path appends cells into fixed-capacity columnar batches —
// one bounded run of batches per (unit, node) slice — and comparison
// pulls tuples back out through pooled TupleReaders one window at a
// time. Decoded tuples are bit-identical to what MapSideN produces for
// the same side (same unit function, same key extraction, same carry
// projection), which the differential tests in stream_test.go and the
// pipeline equivalence suite pin.
package shuffle

import (
	"fmt"

	"shufflejoin/internal/array"
	"shufflejoin/internal/batch"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/par"
)

// DefaultBatchRows is the batch row capacity used when StreamConfig
// leaves BatchRows zero.
const DefaultBatchRows = 1024

// StreamConfig tunes streaming slice mapping.
type StreamConfig struct {
	// BatchRows is the row capacity of each columnar batch (0 uses
	// DefaultBatchRows).
	BatchRows int
	// Intern is the query-shared string dictionary; created on demand
	// when nil.
	Intern *batch.Intern
	// Budget, when non-nil, is charged for every sealed batch and
	// credited on ReleaseUnit — per-query memory accounting with
	// counted or strict overflow (see batch.Budget). Typically shared
	// by both sides of the join.
	Budget *batch.Budget
}

// sideLayout fixes the columnar batch layout of one mapped side: key
// columns first (one per predicate term, typed by the term's source),
// then carried attribute columns.
type sideLayout struct {
	ndims   int
	keyRefs []join.Ref
	carry   []int
	types   []array.ScalarType // len(keyRefs) key cols + len(carry) attr cols
}

// RunSet holds the streamed slice map of one side: for every
// (unit, node) pair, a run of bounded columnar batches plus its cell
// count. It is the streaming counterpart of SliceSet — Sizes, UnitTotal
// and TotalCells report the same statistics, and Reader replays a
// unit's tuples in exactly Assemble's order (destination's local cells
// first, then remote slices in node order).
type RunSet struct {
	Spec  *UnitSpec
	Nodes int

	lay       sideLayout
	batchRows int
	intern    *batch.Intern
	budget    *batch.Budget

	runs   [][]*batch.Batch // [u*Nodes+node]
	counts []int64          // [u*Nodes+node]
}

// Intern returns the query dictionary the set encodes strings through.
func (rs *RunSet) Intern() *batch.Intern { return rs.intern }

// Count returns the cells of unit u mapped on the given node.
func (rs *RunSet) Count(u, node int) int64 { return rs.counts[u*rs.Nodes+node] }

// Sizes returns the slice statistics s_{i,j}, exactly as SliceSet.Sizes
// reports them for the materializing path.
func (rs *RunSet) Sizes() [][]int64 {
	out := make([][]int64, rs.Spec.NumUnits)
	for u := range out {
		out[u] = append([]int64(nil), rs.counts[u*rs.Nodes:(u+1)*rs.Nodes]...)
	}
	return out
}

// UnitTotal returns S_i, the total cells of unit u across all nodes.
func (rs *RunSet) UnitTotal(u int) int64 {
	var n int64
	for _, c := range rs.counts[u*rs.Nodes : (u+1)*rs.Nodes] {
		n += c
	}
	return n
}

// TotalCells returns the cells across all slices.
func (rs *RunSet) TotalCells() int64 {
	var n int64
	for _, c := range rs.counts {
		n += c
	}
	return n
}

// getBatch returns a cleared batch shaped for this side's layout. The
// process-wide sharded batch pool replaced the per-RunSet mutex-guarded
// free list: under concurrent serving the old list serialized every
// mapper worker of a query on one lock and discarded grown storage at
// query end, while the shared pool recycles batches across queries
// (batch.Reshape revives retained column storage) with a per-CPU shard
// pick instead of a global lock.
func (rs *RunSet) getBatch() *batch.Batch {
	return batch.Get(rs.lay.ndims, rs.lay.types, rs.batchRows)
}

// ReleaseUnit recycles unit u's batches and credits their bytes back to
// the budget. Called once a unit's comparison has fully consumed it;
// idempotent.
func (rs *RunSet) ReleaseUnit(u int) {
	var bytes int64
	freed := false
	for node := 0; node < rs.Nodes; node++ {
		idx := u*rs.Nodes + node
		for _, bt := range rs.runs[idx] {
			bytes += bt.Bytes()
			bt.Reset()
			batch.Put(bt)
			freed = true
		}
		rs.runs[idx] = nil
	}
	if freed {
		rs.budget.Release(bytes)
	}
}

// refValue reads the value a predicate term selects from a chunk row,
// without materializing the cell — bit-identical to what join.KeyOf
// sees on the materializing path.
func refValue(ch *array.Chunk, ref join.Ref, row int) array.Value {
	if ref.IsDim {
		return array.IntValue(ch.Coords[ref.Index][row])
	}
	return ch.Cols[ref.Index].Value(row)
}

// unitOfRow is unitOfCell over an in-place chunk row: identical hash
// and clamp arithmetic, no per-cell key materialization.
func unitOfRow(spec *UnitSpec, m *SideMapper, ch *array.Chunk, row int) int {
	if spec.Kind == HashUnits {
		var h uint64 = 1469598103934665603
		for _, ref := range m.KeyRefs {
			h ^= refValue(ch, ref, row).HashKey()
			h *= 1099511628211
		}
		return int(h % uint64(spec.NumUnits))
	}
	unit := 0
	for i, d := range spec.JoinDims {
		ref := m.DimRefs[i]
		var v int64
		if ref.IsDim {
			v = ch.Coords[ref.Index][row]
		} else {
			v = ch.Cols[ref.Index].Value(row).AsInt()
		}
		if v < d.Start {
			v = d.Start
		}
		if v > d.End {
			v = d.End
		}
		unit = unit*int(d.ChunkCount()) + int(d.ChunkIndex(v))
	}
	return unit
}

// MapSideStream is the streaming MapSideN: every node maps its local
// cells into per-(unit, node) batch runs instead of materialized tuple
// slices. Per-node chunk order, unit assignment, key extraction, and
// carry projection are identical to MapSideN, so a RunSet decodes to
// exactly the SliceSet the materializing path would have built. Sealed
// batches are charged to cfg.Budget as they fill; in strict budget mode
// the map fails with an error wrapping batch.ErrBudget when the charge
// crosses the limit.
func MapSideStream(d *cluster.Distributed, k int, spec *UnitSpec, m *SideMapper, workers int, cfg StreamConfig) (*RunSet, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind == ChunkUnits && len(m.DimRefs) != len(spec.JoinDims) {
		return nil, fmt.Errorf("shuffle: mapper has %d dim refs, spec has %d join dims",
			len(m.DimRefs), len(spec.JoinDims))
	}

	carry := m.Carry
	if m.CarryAll {
		carry = make([]int, len(d.Array.Schema.Attrs))
		for i := range carry {
			carry[i] = i
		}
	}
	lay := sideLayout{
		ndims:   len(d.Array.Schema.Dims),
		keyRefs: m.KeyRefs,
		carry:   carry,
	}
	lay.types = make([]array.ScalarType, 0, len(m.KeyRefs)+len(carry))
	for _, ref := range m.KeyRefs {
		if ref.IsDim {
			lay.types = append(lay.types, array.TypeInt64)
		} else {
			lay.types = append(lay.types, d.Array.Schema.Attrs[ref.Index].Type)
		}
	}
	for _, ai := range carry {
		lay.types = append(lay.types, d.Array.Schema.Attrs[ai].Type)
	}

	rs := &RunSet{
		Spec:      spec,
		Nodes:     k,
		lay:       lay,
		batchRows: cfg.BatchRows,
		intern:    cfg.Intern,
		budget:    cfg.Budget,
	}
	if rs.batchRows <= 0 {
		rs.batchRows = DefaultBatchRows
	}
	if rs.intern == nil {
		rs.intern = batch.NewIntern()
	}
	rs.runs = make([][]*batch.Batch, spec.NumUnits*k)
	rs.counts = make([]int64, spec.NumUnits*k)
	tails := make([]*batch.Batch, spec.NumUnits*k)

	// Each node's chunks, in the global chunk-key order — the order the
	// sequential path visits them, preserved per node under parallelism.
	perNode := make([][]array.ChunkKey, k)
	for _, key := range d.Array.SortedKeys() {
		node := d.Placement[key]
		perNode[node] = append(perNode[node], key)
	}

	nkey := len(m.KeyRefs)
	errs := make([]error, k)
	par.ForEach(k, workers, func(node int) {
		for _, key := range perNode[node] {
			ch := d.Array.Chunks[key]
			for row := 0; row < ch.Len(); row++ {
				u := unitOfRow(spec, m, ch, row)
				idx := u*k + node
				bt := tails[idx]
				if bt == nil {
					bt = rs.getBatch()
					tails[idx] = bt
				}
				for dd := range bt.Coords {
					bt.Coords[dd] = append(bt.Coords[dd], ch.Coords[dd][row])
				}
				for c, ref := range m.KeyRefs {
					bt.Cols[c].Append(refValue(ch, ref, row), rs.intern)
				}
				for a, src := range carry {
					bt.Cols[nkey+a].Append(ch.Cols[src].Value(row), rs.intern)
				}
				rs.counts[idx]++
				if bt.Full() {
					if err := rs.budget.Acquire(bt.Bytes()); err != nil {
						errs[node] = err
						return
					}
					rs.runs[idx] = append(rs.runs[idx], bt)
					tails[idx] = nil
				}
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Seal the partially filled tails (each run's final batch).
	for idx, bt := range tails {
		if bt == nil || bt.Len() == 0 {
			continue
		}
		if err := rs.budget.Acquire(bt.Bytes()); err != nil {
			return nil, err
		}
		rs.runs[idx] = append(rs.runs[idx], bt)
	}
	return rs, nil
}

// TupleReader replays one join unit's tuples for one side as a
// join.TupleStream, decoding batches into reader-owned scratch arenas —
// the pull chain's only working memory, bounded by the batch size for
// windowed consumption (Next) or the unit size for build-side
// materialization. Readers are pooled per RunSet: Close returns the
// reader (arenas and all) for reuse, which is what makes the
// steady-state compare path allocation-free.
type TupleReader struct {
	rs      *RunSet
	u, dest int
	total   int
	vi      int // visit pointer over nodes in Assemble order
	seq     int // batch index within the current node's run

	ts     []join.Tuple
	keys   []array.Value
	coords []int64
	attrs  []array.Value
}

// readerPool recycles TupleReaders (arenas and all) across units,
// queries, and RunSets — a sharded pool for the same reason as the
// batch pool: the per-RunSet free list serialized concurrent compare
// workers on the set's mutex and dropped the grown arenas at query end.
var readerPool = par.NewPool[*TupleReader](64)

// Reader returns a pooled reader over unit u as assembled at node dest.
func (rs *RunSet) Reader(u, dest int) *TupleReader {
	r, ok := readerPool.Get()
	if !ok {
		r = &TupleReader{}
	}
	r.rs = rs
	r.u, r.dest = u, dest
	r.total = int(rs.UnitTotal(u))
	r.vi, r.seq = 0, 0
	return r
}

// Close recycles the reader. The RunSet reference is dropped so a
// pooled reader never pins a finished query's slice map.
func (r *TupleReader) Close() {
	r.rs = nil
	readerPool.Put(r)
}

// Len implements join.TupleStream: the unit side's total tuple count.
func (r *TupleReader) Len() int { return r.total }

// advance returns the next non-empty batch in Assemble order
// (destination first, then remaining nodes ascending), or nil.
func (r *TupleReader) advance() *batch.Batch {
	for r.vi < r.rs.Nodes {
		node := r.dest
		if r.vi > 0 {
			node = r.vi - 1
			if node >= r.dest {
				node++
			}
		}
		run := r.rs.runs[r.u*r.rs.Nodes+node]
		if r.seq < len(run) {
			bt := run[r.seq]
			r.seq++
			return bt
		}
		r.vi++
		r.seq = 0
	}
	return nil
}

// grow ensures the scratch arenas can hold rows decoded tuples.
func (r *TupleReader) grow(rows int) {
	lay := &r.rs.lay
	if cap(r.ts) < rows {
		r.ts = make([]join.Tuple, rows)
	}
	if n := rows * len(lay.keyRefs); cap(r.keys) < n {
		r.keys = make([]array.Value, n)
	}
	if n := rows * lay.ndims; cap(r.coords) < n {
		r.coords = make([]int64, n)
	}
	if n := rows * len(lay.carry); cap(r.attrs) < n {
		r.attrs = make([]array.Value, n)
	}
}

// decode fills ts[:bt.Len()] from bt, carving each tuple's Key, Coords,
// and Attrs out of the given arenas starting at tuple offset off.
func (r *TupleReader) decode(bt *batch.Batch, ts []join.Tuple, off int) {
	lay := &r.rs.lay
	in := r.rs.intern
	nkey, nd, nattr := len(lay.keyRefs), lay.ndims, len(lay.carry)
	n := bt.Len()
	for i := 0; i < n; i++ {
		o := off + i
		key := r.keys[o*nkey : (o+1)*nkey : (o+1)*nkey]
		for c := 0; c < nkey; c++ {
			key[c] = bt.Cols[c].Value(i, in)
		}
		coords := r.coords[o*nd : (o+1)*nd : (o+1)*nd]
		for d := 0; d < nd; d++ {
			coords[d] = bt.Coords[d][i]
		}
		var attrs []array.Value
		if nattr > 0 {
			attrs = r.attrs[o*nattr : (o+1)*nattr : (o+1)*nattr]
			for a := 0; a < nattr; a++ {
				attrs[a] = bt.Cols[nkey+a].Value(i, in)
			}
		}
		ts[i] = join.Tuple{Key: key, Coords: coords, Attrs: attrs}
	}
}

// Next implements join.TupleStream: one decoded batch per window, valid
// until the next call.
func (r *TupleReader) Next() ([]join.Tuple, bool) {
	bt := r.advance()
	if bt == nil {
		return nil, false
	}
	r.grow(bt.Len())
	ts := r.ts[:bt.Len()]
	r.decode(bt, ts, 0)
	return ts, true
}

// Materialize implements join.TupleStream: the whole side decoded into
// reader-owned arenas, valid until Close.
func (r *TupleReader) Materialize() []join.Tuple {
	r.grow(r.total)
	ts := r.ts[:r.total]
	off := 0
	for bt := r.advance(); bt != nil; bt = r.advance() {
		r.decode(bt, ts[off:off+bt.Len()], off)
		off += bt.Len()
	}
	return ts[:off]
}
