package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"
)

// Postmortem writes diagnostic bundles: when a query panics, fails a
// strict budget/bounds check, or breaches the slow-query threshold, the
// engine captures a directory of evidence —
//
//	meta.json      reason, capture time, Go runtime identification
//	flight.json    the last Events flight-recorder entries
//	<section>.json every caller-supplied section (profile, progress,
//	               report digest, panic value + stack, ...)
//	metrics.prom   a metrics snapshot, when a Metrics writer is attached
//	goroutines.txt full goroutine stacks
//	heap.pprof     a heap profile
//
// — so a failure ships its own investigation. Bundles are capped by
// MaxBundles to keep a crash loop from filling the disk. A nil
// *Postmortem captures nothing. See DESIGN.md §12.
type Postmortem struct {
	// Dir is the directory bundles are created under (one subdirectory
	// per capture). Created on first use.
	Dir string
	// Flight is the recorder whose recent events are dumped; nil uses
	// the package Default.
	Flight *Recorder
	// Events bounds the flight events per bundle (default 1024).
	Events int
	// MaxBundles caps captures over the Postmortem's lifetime; once
	// reached, Capture becomes a no-op (default 16).
	MaxBundles int
	// SlowQuery, when positive, makes the pipeline capture a bundle for
	// any query whose wall time reaches the threshold.
	SlowQuery time.Duration
	// Metrics, when non-nil, writes a metrics snapshot into the bundle
	// (typically Registry.WritePrometheus).
	Metrics func(io.Writer) error

	mu  sync.Mutex
	seq int
	n   int
}

// Section is one named JSON document in a bundle.
type Section struct {
	Name  string
	Value any
}

// ErrBundleCap reports a capture skipped by the MaxBundles cap.
var ErrBundleCap = fmt.Errorf("flight: postmortem bundle cap reached")

// Capture writes one bundle and returns its directory. reason becomes
// part of the directory name and meta.json; sections are serialized as
// individual JSON files. Nil receivers and over-cap captures return
// ("", error) without touching the filesystem; file-level errors are
// collected into the returned error but never abort the remaining
// evidence (a postmortem should save what it can).
func (pm *Postmortem) Capture(reason string, sections ...Section) (string, error) {
	if pm == nil || pm.Dir == "" {
		return "", fmt.Errorf("flight: no postmortem directory configured")
	}
	pm.mu.Lock()
	maxB := pm.MaxBundles
	if maxB <= 0 {
		maxB = 16
	}
	if pm.n >= maxB {
		pm.mu.Unlock()
		return "", ErrBundleCap
	}
	pm.n++
	pm.seq++
	seq := pm.seq
	pm.mu.Unlock()

	now := time.Now()
	dir := filepath.Join(pm.Dir, fmt.Sprintf("pm-%s-%03d-%s",
		now.UTC().Format("20060102T150405"), seq, sanitize(reason)))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("flight: postmortem dir: %w", err)
	}

	var errs []error
	keep := func(name string, err error) {
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
		}
	}

	keep("meta.json", writeJSONFile(filepath.Join(dir, "meta.json"), map[string]any{
		"reason":       reason,
		"time":         now,
		"bundle":       seq,
		"go_version":   runtime.Version(),
		"go_os_arch":   runtime.GOOS + "/" + runtime.GOARCH,
		"gomaxprocs":   runtime.GOMAXPROCS(0),
		"goroutines":   runtime.NumGoroutine(),
		"sections":     sectionNames(sections),
		"flight_stats": pm.recorder().Stats(),
	}))

	keep("flight.json", writeFile(filepath.Join(dir, "flight.json"), func(w io.Writer) error {
		n := pm.Events
		if n <= 0 {
			n = 1024
		}
		return pm.recorder().WriteJSON(w, n)
	}))

	for _, s := range sections {
		if s.Value == nil {
			continue
		}
		name := sanitize(s.Name) + ".json"
		keep(name, writeJSONFile(filepath.Join(dir, name), s.Value))
	}

	if pm.Metrics != nil {
		keep("metrics.prom", writeFile(filepath.Join(dir, "metrics.prom"), pm.Metrics))
	}

	keep("goroutines.txt", writeFile(filepath.Join(dir, "goroutines.txt"), func(w io.Writer) error {
		return pprof.Lookup("goroutine").WriteTo(w, 2)
	}))
	keep("heap.pprof", writeFile(filepath.Join(dir, "heap.pprof"), func(w io.Writer) error {
		return pprof.WriteHeapProfile(w)
	}))

	if len(errs) > 0 {
		return dir, fmt.Errorf("flight: postmortem bundle %s incomplete: %v", dir, errs)
	}
	return dir, nil
}

// recorder resolves the bundle's flight recorder.
func (pm *Postmortem) recorder() *Recorder {
	if pm.Flight != nil {
		return pm.Flight
	}
	return Default
}

func sectionNames(sections []Section) []string {
	out := make([]string, 0, len(sections))
	for _, s := range sections {
		if s.Value != nil {
			out = append(out, s.Name)
		}
	}
	return out
}

// sanitize maps an arbitrary reason/section name onto a filesystem-safe
// slug.
func sanitize(s string) string {
	if s == "" {
		return "unnamed"
	}
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	out := b.String()
	if len(out) > 48 {
		out = out[:48]
	}
	return out
}

func writeFile(path string, fill func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeJSONFile(path string, v any) error {
	return writeFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}

// EnvPostmortemDir is the environment variable that configures the
// process-default Postmortem (used by CI so failing test runs ship
// their own bundles as artifacts).
const EnvPostmortemDir = "SHUFFLEJOIN_POSTMORTEM_DIR"

var (
	pmMu      sync.Mutex
	pmInit    bool
	defaultPM *Postmortem
)

// DefaultPostmortem returns the process-default postmortem sink: the
// one installed with SetDefaultPostmortem, else one rooted at
// $SHUFFLEJOIN_POSTMORTEM_DIR (resolved once), else nil. The pipeline
// falls back to it when a query has no Postmortem of its own.
func DefaultPostmortem() *Postmortem {
	pmMu.Lock()
	defer pmMu.Unlock()
	if !pmInit {
		pmInit = true
		if dir := os.Getenv(EnvPostmortemDir); dir != "" {
			defaultPM = &Postmortem{Dir: dir}
		}
	}
	return defaultPM
}

// SetDefaultPostmortem installs (or, with nil, clears) the
// process-default postmortem sink, overriding the environment variable.
func SetDefaultPostmortem(pm *Postmortem) {
	pmMu.Lock()
	defaultPM, pmInit = pm, true
	pmMu.Unlock()
}
