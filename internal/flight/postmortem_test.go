package flight

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
}

func TestPostmortemCapture(t *testing.T) {
	rec := New(64)
	q := rec.NextQID()
	rec.Record(EvQueryStart, q, rec.Label("SELECT fail"), 0, 0, 0)
	rec.Record(EvBudgetOverflow, q, 9000, 4096, 0, 0)

	pm := &Postmortem{
		Dir:    t.TempDir(),
		Flight: rec,
		Metrics: func(w io.Writer) error {
			_, err := io.WriteString(w, "engine_up 1\n")
			return err
		},
	}
	dir, err := pm.Capture("strict-budget",
		Section{Name: "report", Value: map[string]any{"matches": 0, "error": "budget exceeded"}},
		Section{Name: "skipped", Value: nil},
	)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	if !strings.Contains(filepath.Base(dir), "strict-budget") {
		t.Errorf("bundle dir %q does not name the reason", dir)
	}

	// Every expected file exists and the JSON ones parse.
	var meta struct {
		Reason   string   `json:"reason"`
		Sections []string `json:"sections"`
	}
	readJSON(t, filepath.Join(dir, "meta.json"), &meta)
	if meta.Reason != "strict-budget" {
		t.Errorf("meta reason = %q", meta.Reason)
	}
	if len(meta.Sections) != 1 || meta.Sections[0] != "report" {
		t.Errorf("meta sections = %v (nil-valued sections must be dropped)", meta.Sections)
	}

	var fl struct {
		Events []struct {
			Type string `json:"type"`
		} `json:"events"`
	}
	readJSON(t, filepath.Join(dir, "flight.json"), &fl)
	if len(fl.Events) != 2 || fl.Events[1].Type != "budget-overflow" {
		t.Fatalf("flight.json events = %+v", fl.Events)
	}

	var repSec map[string]any
	readJSON(t, filepath.Join(dir, "report.json"), &repSec)
	if repSec["error"] != "budget exceeded" {
		t.Errorf("report section = %v", repSec)
	}

	if data, err := os.ReadFile(filepath.Join(dir, "metrics.prom")); err != nil || string(data) != "engine_up 1\n" {
		t.Errorf("metrics.prom = %q, %v", data, err)
	}
	gor, err := os.ReadFile(filepath.Join(dir, "goroutines.txt"))
	if err != nil || !strings.Contains(string(gor), "goroutine") {
		t.Errorf("goroutines.txt missing stacks: %v", err)
	}
	if st, err := os.Stat(filepath.Join(dir, "heap.pprof")); err != nil || st.Size() == 0 {
		t.Errorf("heap.pprof missing or empty: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "skipped.json")); !os.IsNotExist(err) {
		t.Error("nil-valued section produced a file")
	}
}

func TestPostmortemBundleCap(t *testing.T) {
	pm := &Postmortem{Dir: t.TempDir(), Flight: New(16), MaxBundles: 2}
	for i := 0; i < 2; i++ {
		if _, err := pm.Capture("loop"); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
	}
	if _, err := pm.Capture("loop"); !errors.Is(err, ErrBundleCap) {
		t.Fatalf("over-cap capture err = %v, want ErrBundleCap", err)
	}
	entries, _ := os.ReadDir(pm.Dir)
	if len(entries) != 2 {
		t.Errorf("bundle dirs = %d, want 2", len(entries))
	}
}

func TestPostmortemNilAndUnconfigured(t *testing.T) {
	var pm *Postmortem
	if _, err := pm.Capture("x"); err == nil {
		t.Error("nil postmortem should error")
	}
	if _, err := (&Postmortem{}).Capture("x"); err == nil {
		t.Error("dir-less postmortem should error")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("strict budget: A/B"); got != "strict-budget--A-B" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize(""); got != "unnamed" {
		t.Errorf("sanitize empty = %q", got)
	}
	if got := sanitize(strings.Repeat("x", 100)); len(got) != 48 {
		t.Errorf("sanitize long len = %d", len(got))
	}
}

func TestDefaultPostmortem(t *testing.T) {
	old := DefaultPostmortem()
	defer SetDefaultPostmortem(old)

	dir := t.TempDir()
	SetDefaultPostmortem(&Postmortem{Dir: dir, Flight: New(16)})
	pm := DefaultPostmortem()
	if pm == nil || pm.Dir != dir {
		t.Fatalf("default postmortem = %+v", pm)
	}
	SetDefaultPostmortem(nil)
	if DefaultPostmortem() != nil {
		t.Error("cleared default should stay nil")
	}
}
