package flight

import (
	"strings"
	"testing"
)

// feed runs n identical observations through the detector.
func feed(d *Detector, n int, compare []float64, recv []int64) []Anomaly {
	var out []Anomaly
	for i := 0; i < n; i++ {
		out = append(out, d.Observe("q", compare, recv, nil)...)
	}
	return out
}

func TestDetectorFlagsStraggler(t *testing.T) {
	rec := New(64)
	d := NewDetector(DetectorConfig{}, rec)
	compare := []float64{1, 1, 10, 1}

	// Before warmup nothing is flagged.
	if got := feed(d, 2, compare, nil); len(got) != 0 {
		t.Fatalf("anomalies before warmup: %+v", got)
	}
	got := feed(d, 1, compare, nil)
	if len(got) != 1 || got[0].Kind != "straggler-compare" || got[0].Node != 2 {
		t.Fatalf("want straggler-compare on node 2, got %+v", got)
	}
	if !strings.Contains(got[0].String(), "node 2") {
		t.Errorf("annotation = %q", got[0].String())
	}

	// Rising edge only: the same persistent straggler is not re-raised.
	if again := feed(d, 5, compare, nil); len(again) != 0 {
		t.Fatalf("persistent straggler re-raised: %+v", again)
	}

	// The anomaly was recorded as a flight event.
	var found bool
	for _, e := range rec.Snapshot(0) {
		if e.Type == EvAnomaly && rec.LabelName(e.Args[0]) == "straggler-compare" && e.Args[1] == 2 {
			found = true
		}
	}
	if !found {
		t.Error("no EvAnomaly flight event for the straggler")
	}

	snap := d.Snapshot()
	if snap.Flagged != 1 || snap.Nodes[2].StragglerSince == 0 {
		t.Errorf("snapshot = %+v", snap)
	}
	if n, s := d.Flagged(); n != 1 || s != 2 {
		t.Errorf("Flagged() = %d, %d", n, s)
	}

	// Recovery: balanced load clears the flag, and a relapse re-raises.
	feed(d, 30, []float64{1, 1, 1, 1}, nil)
	if n, s := d.Flagged(); n != 0 || s != -1 {
		t.Errorf("after recovery Flagged() = %d, %d", n, s)
	}
	relapse := feed(d, 30, compare, nil)
	if len(relapse) != 1 || relapse[0].Node != 2 {
		t.Fatalf("relapse not re-raised: %+v", relapse)
	}
}

func TestDetectorFlagsHotReceiver(t *testing.T) {
	d := NewDetector(DetectorConfig{Warmup: 2}, nil)
	recv := []int64{100, 5000, 100, 100}
	got := feed(d, 3, nil, recv)
	var hot *Anomaly
	for i := range got {
		if got[i].Kind == "hot-receiver" {
			hot = &got[i]
		}
	}
	if hot == nil || hot.Node != 1 {
		t.Fatalf("want hot-receiver on node 1, got %+v", got)
	}
}

func TestDetectorHotUnits(t *testing.T) {
	d := NewDetector(DetectorConfig{}, nil)
	units := []int64{10, 10, 9000, 10, 10, 10, 10, 10}
	got := d.Observe("q", nil, nil, units)
	if len(got) != 1 || got[0].Kind != "hot-unit" || got[0].Unit != 2 {
		t.Fatalf("want hot-unit 2, got %+v", got)
	}
	if got[0].Node != -1 {
		t.Errorf("hot-unit node = %d, want -1", got[0].Node)
	}
}

func TestDetectorRingBound(t *testing.T) {
	d := NewDetector(DetectorConfig{History: 4}, nil)
	// Each query has a different hot unit position, raising one anomaly
	// per call.
	for i := 0; i < 10; i++ {
		units := make([]int64, 8)
		for j := range units {
			units[j] = 10
		}
		units[i%8] = 100000
		d.Observe("q", nil, nil, units)
	}
	snap := d.Snapshot()
	if snap.Total != 10 || len(snap.Recent) != 4 {
		t.Fatalf("total=%d recent=%d, want 10/4", snap.Total, len(snap.Recent))
	}
	// Newest first.
	if snap.Recent[0].Seq != 10 || snap.Recent[3].Seq != 7 {
		t.Errorf("ring order: %+v", snap.Recent)
	}
}

func TestNilDetector(t *testing.T) {
	var d *Detector
	if got := d.Observe("q", []float64{1, 9}, nil, nil); got != nil {
		t.Error("nil detector observed something")
	}
	if snap := d.Snapshot(); snap.Queries != 0 {
		t.Error("nil snapshot not empty")
	}
	if n, s := d.Flagged(); n != 0 || s != -1 {
		t.Errorf("nil Flagged() = %d, %d", n, s)
	}
}

func TestHotUnits(t *testing.T) {
	// Uniform: nothing hot.
	if got := HotUnits([]int64{500, 500, 500, 500}, 0, 0, 0); len(got) != 0 {
		t.Errorf("uniform units flagged: %+v", got)
	}
	// Below the absolute floor: a dominant but tiny unit stays quiet.
	if got := HotUnits([]int64{1, 1, 100, 1}, 0, 0, 0); len(got) != 0 {
		t.Errorf("tiny units flagged: %+v", got)
	}
	// Two dominant units, largest first.
	cells := make([]int64, 16)
	for i := range cells {
		cells[i] = 10
	}
	cells[1], cells[3] = 20000, 40000
	got := HotUnits(cells, 0, 0, 0)
	if len(got) != 2 || got[0].Unit != 3 || got[1].Unit != 1 {
		t.Fatalf("hot units = %+v", got)
	}
	if got[0].Cells != 40000 || got[0].Mean != got[1].Mean {
		t.Errorf("hot unit fields = %+v", got)
	}
	// Cap respected: three qualify, two reported, largest first.
	many := make([]int64, 64)
	many[5], many[9], many[20] = 100002, 100001, 100000
	if got := HotUnits(many, 0, 0, 2); len(got) != 2 || got[0].Unit != 5 || got[1].Unit != 9 {
		t.Errorf("capped hot units = %+v", got)
	}
	if HotUnits(nil, 0, 0, 0) != nil {
		t.Error("nil units should yield nil")
	}
}
