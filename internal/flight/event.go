package flight

import (
	"encoding/json"
	"io"
	"math"
	"time"
)

// Type identifies what an event records; its four arguments are typed
// per the schema table below.
type Type uint8

// Event types, one per instrumented engine decision. The comment names
// the four arguments in order (i=int64, f=float64 bits, l=label id;
// unused arguments are zero).
const (
	EvNone           Type = iota
	EvQueryStart          // l:query
	EvQueryFinish         // i:matches f:modeled_seconds i:wall_ns
	EvQueryError          // l:stage l:error
	EvStageStart          // l:stage
	EvStageFinish         // l:stage i:wall_ns f:sim_seconds
	EvPlanCache           // l:outcome
	EvBudgetCharge        // i:bytes i:used
	EvBudgetCredit        // i:bytes i:used
	EvBudgetOverflow      // i:used i:limit
	EvAlignDone           // i:transfers f:makespan_seconds i:lock_waits f:lock_wait_seconds
	EvHotReceiver         // i:node f:lock_wait_seconds i:recv_cells
	EvCompareDone         // i:straggler_node f:skew f:compare_seconds
	EvAnomaly             // l:kind i:node f:value f:baseline
	EvPostmortem          // l:reason
	EvSchedQueue          // l:class i:depth i:mem_used
	EvSchedAdmit          // l:class i:wait_ns i:inflight
	EvSchedReject         // l:class i:wait_ns l:reason
)

// argKind types one event argument for decoding.
type argKind uint8

const (
	argNone  argKind = iota
	argInt           // plain int64
	argFloat         // float64 bits (encode with F, decode with Float)
	argLabel         // label intern-table id
)

// eventSchema names an event type and its arguments.
type eventSchema struct {
	name string
	args [4]struct {
		name string
		kind argKind
	}
}

func args(pairs ...any) (out [4]struct {
	name string
	kind argKind
}) {
	for i := 0; i < len(pairs)/2; i++ {
		out[i].name = pairs[2*i].(string)
		out[i].kind = pairs[2*i+1].(argKind)
	}
	return out
}

// schemas is the decode table, indexed by Type.
var schemas = [...]eventSchema{
	EvNone:           {name: "none"},
	EvQueryStart:     {name: "query-start", args: args("query", argLabel)},
	EvQueryFinish:    {name: "query-finish", args: args("matches", argInt, "modeled_seconds", argFloat, "wall_ns", argInt)},
	EvQueryError:     {name: "query-error", args: args("stage", argLabel, "error", argLabel)},
	EvStageStart:     {name: "stage-start", args: args("stage", argLabel)},
	EvStageFinish:    {name: "stage-finish", args: args("stage", argLabel, "wall_ns", argInt, "sim_seconds", argFloat)},
	EvPlanCache:      {name: "plan-cache", args: args("outcome", argLabel)},
	EvBudgetCharge:   {name: "budget-charge", args: args("bytes", argInt, "used", argInt)},
	EvBudgetCredit:   {name: "budget-credit", args: args("bytes", argInt, "used", argInt)},
	EvBudgetOverflow: {name: "budget-overflow", args: args("used", argInt, "limit", argInt)},
	EvAlignDone:      {name: "align-done", args: args("transfers", argInt, "makespan_seconds", argFloat, "lock_waits", argInt, "lock_wait_seconds", argFloat)},
	EvHotReceiver:    {name: "hot-receiver", args: args("node", argInt, "lock_wait_seconds", argFloat, "recv_cells", argInt)},
	EvCompareDone:    {name: "compare-done", args: args("straggler_node", argInt, "skew", argFloat, "compare_seconds", argFloat)},
	EvAnomaly:        {name: "anomaly", args: args("kind", argLabel, "node", argInt, "value", argFloat, "baseline", argFloat)},
	EvPostmortem:     {name: "postmortem", args: args("reason", argLabel)},
	EvSchedQueue:     {name: "sched-queue", args: args("class", argLabel, "depth", argInt, "mem_used", argInt)},
	EvSchedAdmit:     {name: "sched-admit", args: args("class", argLabel, "wait_ns", argInt, "inflight", argInt)},
	EvSchedReject:    {name: "sched-reject", args: args("class", argLabel, "wait_ns", argInt, "reason", argLabel)},
}

// String returns the event type's wire name (e.g. "budget-charge").
func (t Type) String() string {
	if int(t) < len(schemas) && schemas[t].name != "" {
		return schemas[t].name
	}
	return "unknown"
}

// F encodes a float64 into an event argument (its IEEE-754 bits).
func F(v float64) int64 { return int64(math.Float64bits(v)) }

// Float decodes an argument written with F.
func Float(a int64) float64 { return math.Float64frombits(uint64(a)) }

// DecodedEvent is the JSON-friendly form of one event: the type's wire
// name and its arguments by name, with floats and labels resolved.
type DecodedEvent struct {
	Seq  uint64         `json:"seq"`
	Time time.Time      `json:"time"`
	Type string         `json:"type"`
	QID  uint32         `json:"qid,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Decode resolves an event against the recorder's label table.
func (r *Recorder) Decode(e Event) DecodedEvent {
	d := DecodedEvent{Seq: e.Seq, Time: r.TimeOf(e), Type: e.Type.String(), QID: e.QID}
	if int(e.Type) >= len(schemas) {
		return d
	}
	sch := &schemas[e.Type]
	for i, a := range sch.args {
		if a.kind == argNone {
			break
		}
		if d.Args == nil {
			d.Args = make(map[string]any, 4)
		}
		switch a.kind {
		case argInt:
			d.Args[a.name] = e.Args[i]
		case argFloat:
			d.Args[a.name] = Float(e.Args[i])
		case argLabel:
			d.Args[a.name] = r.LabelName(e.Args[i])
		}
	}
	return d
}

// jsonPayload is the WriteJSON envelope (also served on /debug/flight).
type jsonPayload struct {
	Capacity int            `json:"capacity"`
	Recorded uint64         `json:"recorded"`
	Labels   int            `json:"labels"`
	Events   []DecodedEvent `json:"events"`
}

// WriteJSON emits up to max recent events (oldest first; max <= 0 means
// all retained) as indented JSON, decoded through the label table.
func (r *Recorder) WriteJSON(w io.Writer, max int) error {
	st := r.Stats()
	evs := r.Snapshot(max)
	payload := jsonPayload{
		Capacity: st.Capacity,
		Recorded: st.Recorded,
		Labels:   st.Labels,
		Events:   make([]DecodedEvent, 0, len(evs)),
	}
	for _, e := range evs {
		payload.Events = append(payload.Events, r.Decode(e))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}
