package flight

import "testing"

// BenchmarkFlightRecordSteadyState is the CI-gated overhead benchmark:
// the flight-bench workflow step fails the build if this allocates or
// exceeds the per-event latency ceiling (see .github/workflows/ci.yml).
func BenchmarkFlightRecordSteadyState(b *testing.B) {
	r := New(DefaultCapacity)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(EvBudgetCharge, 7, int64(i), 4096, 0, 0)
	}
}

// BenchmarkFlightRecordParallel measures contended recording — several
// goroutines racing the same ring, as compare workers do in real runs.
func BenchmarkFlightRecordParallel(b *testing.B) {
	r := New(DefaultCapacity)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i int64
		for pb.Next() {
			i++
			r.Record(EvBudgetCharge, 7, i, 4096, 0, 0)
		}
	})
}

// BenchmarkFlightLabelHot measures the interned-label fast path (RLock +
// map hit) that query-start recording takes on every repeated query.
func BenchmarkFlightLabelHot(b *testing.B) {
	r := New(64)
	r.Label("SELECT * FROM a JOIN b")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Label("SELECT * FROM a JOIN b")
	}
}

func BenchmarkFlightSnapshot(b *testing.B) {
	r := New(1024)
	for i := 0; i < 2048; i++ {
		r.Record(EvBudgetCharge, 1, int64(i), 0, 0, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Snapshot(0)) != 1024 {
			b.Fatal("short snapshot")
		}
	}
}
