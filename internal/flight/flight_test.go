package flight

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestRecordSnapshot(t *testing.T) {
	r := New(64)
	q := r.NextQID()
	lbl := r.Label("SELECT 1")
	r.Record(EvQueryStart, q, lbl, 0, 0, 0)
	r.Record(EvBudgetCharge, q, 4096, 4096, 0, 0)
	r.Record(EvQueryFinish, q, 42, F(1.5), 1000, 0)

	evs := r.Snapshot(0)
	if len(evs) != 3 {
		t.Fatalf("snapshot returned %d events, want 3", len(evs))
	}
	if evs[0].Type != EvQueryStart || evs[1].Type != EvBudgetCharge || evs[2].Type != EvQueryFinish {
		t.Fatalf("wrong event order: %v %v %v", evs[0].Type, evs[1].Type, evs[2].Type)
	}
	for i, e := range evs {
		if e.QID != q {
			t.Errorf("event %d qid = %d, want %d", i, e.QID, q)
		}
		if e.Seq != uint64(i) {
			t.Errorf("event %d seq = %d", i, e.Seq)
		}
	}
	if got := r.LabelName(evs[0].Args[0]); got != "SELECT 1" {
		t.Errorf("query label = %q", got)
	}
	if evs[2].Args[0] != 42 || Float(evs[2].Args[1]) != 1.5 {
		t.Errorf("finish args = %v", evs[2].Args)
	}
	if evs[0].Nanos > evs[1].Nanos || evs[1].Nanos > evs[2].Nanos {
		t.Errorf("timestamps not monotone: %d %d %d", evs[0].Nanos, evs[1].Nanos, evs[2].Nanos)
	}

	// A bounded snapshot returns the most recent events.
	last := r.Snapshot(2)
	if len(last) != 2 || last[0].Type != EvBudgetCharge || last[1].Type != EvQueryFinish {
		t.Fatalf("bounded snapshot wrong: %+v", last)
	}
}

func TestWrapKeepsMostRecent(t *testing.T) {
	r := New(16) // power of two already
	for i := 0; i < 100; i++ {
		r.Record(EvBudgetCharge, 1, int64(i), 0, 0, 0)
	}
	evs := r.Snapshot(0)
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want 16", len(evs))
	}
	for i, e := range evs {
		if want := int64(84 + i); e.Args[0] != want {
			t.Errorf("event %d arg = %d, want %d", i, e.Args[0], want)
		}
	}
	if st := r.Stats(); st.Recorded != 100 || st.Capacity != 16 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 16}, {1, 16}, {16, 16}, {17, 32}, {8192, 8192}} {
		if got := New(tc.in).Stats().Capacity; got != tc.want {
			t.Errorf("New(%d) capacity = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestLabels(t *testing.T) {
	r := New(16)
	a := r.Label("align")
	if a == 0 {
		t.Fatal("label id should be nonzero")
	}
	if r.Label("align") != a {
		t.Error("re-interning returned a different id")
	}
	if r.Label("") != 0 {
		t.Error("empty label should be id 0")
	}
	if r.LabelName(0) != "" || r.LabelName(9999) != "" {
		t.Error("unknown label ids should render empty")
	}
	// The table is bounded: once full, new labels collapse to 0.
	for i := 0; i < 2*maxLabels; i++ {
		r.Label(string(rune('a')) + string(rune(i)))
	}
	if got := r.Label("one-more"); got != 0 {
		t.Errorf("over-cap label id = %d, want 0", got)
	}
	if r.Label("align") != a {
		t.Error("existing labels must survive table overflow")
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Record(EvQueryStart, 1, 2, 3, 4, 5) // must not panic
	if r.Snapshot(0) != nil {
		t.Error("nil snapshot should be nil")
	}
	if r.NextQID() != 0 || r.Label("x") != 0 || r.LabelName(1) != "" {
		t.Error("nil recorder ids should be 0")
	}
	if st := r.Stats(); st != (Stats{}) {
		t.Errorf("nil stats = %+v", st)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, 10); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

// TestConcurrentRecordSnapshot hammers the ring from several writers
// while readers snapshot continuously: under -race this proves the
// seqlock protocol is data-race free, and the payload invariant
// (a1 == a0+1 for every accepted event) proves snapshots never return
// torn reads.
func TestConcurrentRecordSnapshot(t *testing.T) {
	r := New(128)
	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := int64(w*perWriter + i)
				r.Record(EvBudgetCharge, uint32(w), v, v+1, -v, v%7)
			}
		}(w)
	}
	var readErr error
	var rg sync.WaitGroup
	for g := 0; g < 2; g++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range r.Snapshot(0) {
					if e.Type != EvBudgetCharge || e.Args[1] != e.Args[0]+1 || e.Args[2] != -e.Args[0] {
						readErr = &tornRead{e}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if st := r.Stats(); st.Recorded != writers*perWriter {
		t.Errorf("recorded %d, want %d", st.Recorded, writers*perWriter)
	}
}

type tornRead struct{ e Event }

func (t *tornRead) Error() string { return "torn read: inconsistent event payload" }

func TestDecodeAndWriteJSON(t *testing.T) {
	r := New(32)
	q := r.NextQID()
	r.Record(EvQueryStart, q, r.Label("q1"), 0, 0, 0)
	r.Record(EvAlignDone, q, 12, F(0.25), 3, F(0.01))
	r.Record(EvAnomaly, 0, r.Label("straggler-compare"), 2, F(9.0), F(1.0))

	d := r.Decode(r.Snapshot(0)[1])
	if d.Type != "align-done" {
		t.Fatalf("type = %q", d.Type)
	}
	if d.Args["transfers"] != int64(12) || d.Args["makespan_seconds"] != 0.25 {
		t.Errorf("decoded args = %v", d.Args)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Capacity int `json:"capacity"`
		Events   []struct {
			Type string         `json:"type"`
			Args map[string]any `json:"args"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &payload); err != nil {
		t.Fatalf("WriteJSON output is not JSON: %v", err)
	}
	if payload.Capacity != 32 || len(payload.Events) != 3 {
		t.Fatalf("payload = %+v", payload)
	}
	if payload.Events[2].Type != "anomaly" || payload.Events[2].Args["kind"] != "straggler-compare" {
		t.Errorf("anomaly event = %+v", payload.Events[2])
	}
}

func TestEventTypeNames(t *testing.T) {
	// Every declared type must have a decode schema (guards against
	// adding a type and forgetting the table entry).
	for ty := EvQueryStart; ty <= EvPostmortem; ty++ {
		if ty.String() == "unknown" || ty.String() == "" {
			t.Errorf("event type %d has no schema name", ty)
		}
	}
	if Type(200).String() != "unknown" {
		t.Error("out-of-range type should render unknown")
	}
}
