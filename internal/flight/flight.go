// Package flight is the engine's always-on flight recorder: a
// lock-free, fixed-capacity ring buffer of compact structured events
// that every layer of the engine writes into as it works — query
// lifecycle and stage transitions (internal/pipeline), plan-cache
// verdicts, memory-budget charges and overflows (internal/batch), and
// shuffle congestion/straggler signals (internal/simnet). When a query
// stalls, blows its budget, or panics, the last few thousand events are
// the black box: Snapshot them live over /debug/flight, or let a
// Postmortem dump them into a diagnostic bundle alongside profiles and
// pprof captures.
//
// The recorder is designed to be left on in production:
//
//   - Record is wait-free and allocation-free in steady state (a few
//     atomic stores plus one monotonic clock read; CI gates 0
//     allocs/op), so recording never perturbs the engine's bit-for-bit
//     determinism guarantees — events are telemetry, never inputs.
//   - Writers never block readers and readers never block writers: each
//     slot carries a seqlock-style version word, and Snapshot simply
//     skips slots that are mid-write or already recycled.
//   - Event payloads are six 64-bit words: nanoseconds since the
//     recorder's epoch, the event type + query id, and four typed
//     arguments (ints, float bits via F, or ids from the bounded label
//     intern table).
//
// A nil *Recorder is a valid disabled instance (every method no-ops),
// following the engine's nil-Trace/nil-Budget convention. The package
// default Default (capacity 8192) is what the pipeline records into
// unless a query overrides it. See DESIGN.md §12.
package flight

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the ring capacity of the package Default recorder.
const DefaultCapacity = 8192

// Default is the process-wide recorder the engine writes into when no
// per-query recorder is configured. It is never nil.
var Default = New(DefaultCapacity)

// maxLabels bounds the label intern table; once full, new labels map to
// id 0 (rendered as "") instead of growing without bound.
const maxLabels = 4096

// slot is one ring entry. ver follows the seqlock protocol on the slot's
// sequence number s: 2s+1 while the writer of sequence s is filling the
// words, 2s+2 once published. Readers accept a slot only when ver reads
// 2s+2 before and after copying the payload; a concurrent overwrite (a
// later sequence that wrapped onto the same slot) changes ver and the
// read is discarded. Payload words are atomics so concurrent
// writer/reader access stays within the Go memory model (and clean under
// -race) without any lock.
type slot struct {
	ver  atomic.Uint64
	word [6]atomic.Uint64
}

// Recorder is the lock-free ring buffer. Create with New; the zero
// value is not usable (use a nil *Recorder for a disabled one).
type Recorder struct {
	epoch time.Time
	mask  uint64
	slots []slot
	head  atomic.Uint64 // next sequence number to claim
	qid   atomic.Uint32 // last issued query id

	labelMu    sync.RWMutex
	labelIDs   map[string]int64
	labelNames []string
}

// New returns a recorder with at least the given capacity (rounded up
// to a power of two, minimum 16).
func New(capacity int) *Recorder {
	n := uint64(16)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &Recorder{
		epoch:      time.Now(),
		mask:       n - 1,
		slots:      make([]slot, n),
		labelIDs:   make(map[string]int64),
		labelNames: []string{""}, // id 0: empty / intern-table overflow
	}
}

// Record appends one event: type t, query id qid, and four arguments
// whose meaning is fixed per type (see event.go). Wait-free and
// allocation-free; safe from any goroutine; no-op on a nil recorder.
func (r *Recorder) Record(t Type, qid uint32, a0, a1, a2, a3 int64) {
	if r == nil {
		return
	}
	ns := uint64(time.Since(r.epoch))
	seq := r.head.Add(1) - 1
	s := &r.slots[seq&r.mask]
	s.ver.Store(2*seq + 1)
	s.word[0].Store(ns)
	s.word[1].Store(uint64(t) | uint64(qid)<<32)
	s.word[2].Store(uint64(a0))
	s.word[3].Store(uint64(a1))
	s.word[4].Store(uint64(a2))
	s.word[5].Store(uint64(a3))
	s.ver.Store(2*seq + 2)
}

// Event is one decoded ring entry. Nanos is the event time as
// nanoseconds since the recorder's epoch (TimeOf converts); Args hold
// the four per-type arguments (float arguments are Float64 bits — use
// Float; label arguments are intern-table ids — use LabelName).
type Event struct {
	Seq   uint64
	Nanos uint64
	Type  Type
	QID   uint32
	Args  [4]int64
}

// TimeOf converts an event's relative timestamp to wall-clock time.
func (r *Recorder) TimeOf(e Event) time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch.Add(time.Duration(e.Nanos))
}

// Snapshot returns up to max of the most recent fully published events,
// oldest first (max <= 0 means everything retained). It never blocks
// writers; events being overwritten concurrently are skipped, so under
// heavy write pressure a snapshot may return slightly fewer events than
// the ring holds.
func (r *Recorder) Snapshot(max int) []Event {
	if r == nil {
		return nil
	}
	head := r.head.Load()
	n := uint64(len(r.slots))
	if head < n {
		n = head
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]Event, 0, n)
	for seq := head - n; seq != head; seq++ {
		s := &r.slots[seq&r.mask]
		want := 2*seq + 2
		if s.ver.Load() != want {
			continue // mid-write, recycled, or not yet published
		}
		var w [6]uint64
		for i := range w {
			w[i] = s.word[i].Load()
		}
		if s.ver.Load() != want {
			continue // overwritten while copying: discard the torn read
		}
		out = append(out, Event{
			Seq:   seq,
			Nanos: w[0],
			Type:  Type(w[1] & 0xff),
			QID:   uint32(w[1] >> 32),
			Args:  [4]int64{int64(w[2]), int64(w[3]), int64(w[4]), int64(w[5])},
		})
	}
	return out
}

// NextQID issues a fresh nonzero query id for correlating one query's
// events. Returns 0 (the "no query" id) on a nil recorder.
func (r *Recorder) NextQID() uint32 {
	if r == nil {
		return 0
	}
	return r.qid.Add(1)
}

// Label interns a string and returns its id for use as an event
// argument. Interning an already-known label is allocation-free; the
// table is bounded, and once full (or for the empty string, or on a nil
// recorder) Label returns 0, which renders as "".
func (r *Recorder) Label(s string) int64 {
	if r == nil || s == "" {
		return 0
	}
	r.labelMu.RLock()
	id, ok := r.labelIDs[s]
	r.labelMu.RUnlock()
	if ok {
		return id
	}
	r.labelMu.Lock()
	defer r.labelMu.Unlock()
	if id, ok := r.labelIDs[s]; ok {
		return id
	}
	if len(r.labelNames) >= maxLabels {
		return 0
	}
	id = int64(len(r.labelNames))
	r.labelNames = append(r.labelNames, s)
	r.labelIDs[s] = id
	return id
}

// LabelName resolves an interned label id; unknown ids render as "".
func (r *Recorder) LabelName(id int64) string {
	if r == nil || id <= 0 {
		return ""
	}
	r.labelMu.RLock()
	defer r.labelMu.RUnlock()
	if id >= int64(len(r.labelNames)) {
		return ""
	}
	return r.labelNames[id]
}

// Stats describes a recorder's state for status endpoints.
type Stats struct {
	Capacity int    `json:"capacity"`
	Recorded uint64 `json:"recorded"` // events ever recorded (retained + overwritten)
	Labels   int    `json:"labels"`   // interned label count
}

// Stats returns the recorder's counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.labelMu.RLock()
	labels := len(r.labelNames) - 1
	r.labelMu.RUnlock()
	return Stats{Capacity: len(r.slots), Recorded: r.head.Load(), Labels: labels}
}
