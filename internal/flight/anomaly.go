package flight

import (
	"fmt"
	"sync"
	"time"
)

// DetectorConfig tunes the online anomaly detector. The zero value
// selects the defaults noted per field.
type DetectorConfig struct {
	// Alpha is the EWMA smoothing factor applied to each node's
	// per-query compare seconds and received cells (default 0.3).
	Alpha float64
	// Factor flags a node when its EWMA exceeds Factor times the mean of
	// the other nodes' EWMAs (default 2.0).
	Factor float64
	// Warmup is how many queries must be observed before any node is
	// flagged — EWMAs are meaningless on the first few samples
	// (default 3).
	Warmup int
	// History bounds the retained anomaly ring (default 64).
	History int
}

func (c *DetectorConfig) defaults() {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.Factor <= 1 {
		c.Factor = 2.0
	}
	if c.Warmup <= 0 {
		c.Warmup = 3
	}
	if c.History <= 0 {
		c.History = 64
	}
}

// Anomaly is one detected runtime condition: a straggler node, a hot
// receiver, or a hot join unit.
type Anomaly struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	Kind     string    `json:"kind"` // "straggler-compare", "hot-receiver", "hot-unit"
	Query    string    `json:"query,omitempty"`
	Node     int       `json:"node"` // -1 for unit anomalies
	Unit     int       `json:"unit"` // -1 for node anomalies
	Value    float64   `json:"value"`
	Baseline float64   `json:"baseline"`
}

// String renders the anomaly as a one-line annotation.
func (a Anomaly) String() string {
	switch a.Kind {
	case "hot-unit":
		return fmt.Sprintf("hot-unit: unit %d holds %.0f cells (%.1fx the mean %.0f)",
			a.Unit, a.Value, a.Value/nonzero(a.Baseline), a.Baseline)
	case "hot-receiver":
		return fmt.Sprintf("hot-receiver: node %d recv EWMA %.0f cells (%.1fx the peer mean %.0f)",
			a.Node, a.Value, a.Value/nonzero(a.Baseline), a.Baseline)
	default:
		return fmt.Sprintf("%s: node %d EWMA %.4gs (%.1fx the peer mean %.4gs)",
			a.Kind, a.Node, a.Value, a.Value/nonzero(a.Baseline), a.Baseline)
	}
}

func nonzero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// NodeState is one node's detector state in a DetectorSnapshot.
type NodeState struct {
	Node           int     `json:"node"`
	CompareEWMA    float64 `json:"compare_ewma_seconds"`
	RecvEWMA       float64 `json:"recv_ewma_cells"`
	StragglerSince int64   `json:"straggler_since,omitempty"` // query ordinal of the rising edge, 0 when unflagged
	HotSince       int64   `json:"hot_receiver_since,omitempty"`
}

// DetectorSnapshot is the /debug/anomalies payload.
type DetectorSnapshot struct {
	Queries  int64       `json:"queries"`
	Total    uint64      `json:"anomalies_total"`
	Flagged  int         `json:"flagged_nodes"`
	Nodes    []NodeState `json:"nodes"`
	Recent   []Anomaly   `json:"recent"`
	Warmup   int         `json:"warmup"`
	Factor   float64     `json:"factor"`
	Alpha    float64     `json:"alpha"`
	Capacity int         `json:"history_capacity"`
}

// Detector watches finished queries and flags skew anomalies online: it
// maintains per-node EWMAs of modeled compare seconds and received
// cells, raises a rising-edge anomaly when a node's EWMA crosses Factor
// times its peers' mean (and clears the flag when it recedes), and
// reports per-query hot join units. Anomalies are retained in a bounded
// ring for /debug/anomalies and, when a Recorder is attached, recorded
// as EvAnomaly flight events. Safe for concurrent use.
type Detector struct {
	cfg DetectorConfig
	rec *Recorder // optional: anomalies double as flight events

	mu      sync.Mutex
	queries int64
	nodes   []nodeState
	ring    []Anomaly
	next    int
	total   uint64
}

type nodeState struct {
	compareEWMA    float64
	recvEWMA       float64
	seeded         bool
	stragglerSince int64
	hotSince       int64
}

// NewDetector returns a detector with the given configuration,
// recording its anomalies into rec (which may be nil).
func NewDetector(cfg DetectorConfig, rec *Recorder) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg, rec: rec}
}

// Observe folds one finished query into the detector: compareSeconds
// and recvCells are per-node (from the query's report), unitCells the
// per-join-unit cell totals. It returns the anomalies this query newly
// raised (rising edges for node anomalies; hot units are per-query).
// A nil detector observes nothing.
func (d *Detector) Observe(query string, compareSeconds []float64, recvCells []int64, unitCells []int64) []Anomaly {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.queries++
	k := len(compareSeconds)
	if len(recvCells) > k {
		k = len(recvCells)
	}
	for len(d.nodes) < k {
		d.nodes = append(d.nodes, nodeState{})
	}
	a := d.cfg.Alpha
	for n := range d.nodes {
		var cs, rc float64
		if n < len(compareSeconds) {
			cs = compareSeconds[n]
		}
		if n < len(recvCells) {
			rc = float64(recvCells[n])
		}
		st := &d.nodes[n]
		if !st.seeded {
			st.compareEWMA, st.recvEWMA, st.seeded = cs, rc, true
			continue
		}
		st.compareEWMA += a * (cs - st.compareEWMA)
		st.recvEWMA += a * (rc - st.recvEWMA)
	}

	var raised []Anomaly
	if d.queries >= int64(d.cfg.Warmup) && len(d.nodes) > 1 {
		raised = append(raised, d.flagNodes(query, "straggler-compare",
			func(st *nodeState) float64 { return st.compareEWMA },
			func(st *nodeState) *int64 { return &st.stragglerSince })...)
		raised = append(raised, d.flagNodes(query, "hot-receiver",
			func(st *nodeState) float64 { return st.recvEWMA },
			func(st *nodeState) *int64 { return &st.hotSince })...)
	}
	for _, hu := range HotUnits(unitCells, 0, 0, 0) {
		an := Anomaly{
			Time:  time.Now(),
			Kind:  "hot-unit",
			Query: query,
			Node:  -1,
			Unit:  hu.Unit,
			Value: float64(hu.Cells), Baseline: hu.Mean,
		}
		raised = append(raised, d.push(an))
	}
	return raised
}

// flagNodes runs one EWMA rule over every node: flag rising edges,
// clear flags that receded, and return the newly raised anomalies.
func (d *Detector) flagNodes(query, kind string, value func(*nodeState) float64, since func(*nodeState) *int64) []Anomaly {
	var sum float64
	for i := range d.nodes {
		sum += value(&d.nodes[i])
	}
	var raised []Anomaly
	for i := range d.nodes {
		st := &d.nodes[i]
		v := value(st)
		peers := (sum - v) / float64(len(d.nodes)-1)
		flagged := peers > 0 && v > d.cfg.Factor*peers
		s := since(st)
		switch {
		case flagged && *s == 0:
			*s = d.queries
			raised = append(raised, d.push(Anomaly{
				Time: time.Now(), Kind: kind, Query: query,
				Node: i, Unit: -1, Value: v, Baseline: peers,
			}))
		case !flagged && *s != 0:
			*s = 0
		}
	}
	return raised
}

// push appends an anomaly to the ring (and the flight recorder),
// assigning its sequence number. Caller holds d.mu.
func (d *Detector) push(a Anomaly) Anomaly {
	d.total++
	a.Seq = d.total
	if len(d.ring) < d.cfg.History {
		d.ring = append(d.ring, a)
	} else {
		d.ring[d.next] = a
		d.next = (d.next + 1) % d.cfg.History
	}
	node := int64(a.Node)
	if a.Node < 0 {
		node = int64(a.Unit)
	}
	d.rec.Record(EvAnomaly, 0, d.rec.Label(a.Kind), node, F(a.Value), F(a.Baseline))
	return a
}

// Snapshot returns the detector's current state: per-node EWMAs and
// flags, cumulative totals, and the retained anomalies newest first.
func (d *Detector) Snapshot() DetectorSnapshot {
	if d == nil {
		return DetectorSnapshot{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	snap := DetectorSnapshot{
		Queries:  d.queries,
		Total:    d.total,
		Warmup:   d.cfg.Warmup,
		Factor:   d.cfg.Factor,
		Alpha:    d.cfg.Alpha,
		Capacity: d.cfg.History,
	}
	for i := range d.nodes {
		st := &d.nodes[i]
		if st.stragglerSince != 0 || st.hotSince != 0 {
			snap.Flagged++
		}
		snap.Nodes = append(snap.Nodes, NodeState{
			Node:           i,
			CompareEWMA:    st.compareEWMA,
			RecvEWMA:       st.recvEWMA,
			StragglerSince: st.stragglerSince,
			HotSince:       st.hotSince,
		})
	}
	// Oldest-first ring order, then reverse to newest-first.
	ring := append(append([]Anomaly(nil), d.ring[d.next:]...), d.ring[:d.next]...)
	for i, j := 0, len(ring)-1; i < j; i, j = i+1, j-1 {
		ring[i], ring[j] = ring[j], ring[i]
	}
	snap.Recent = ring
	return snap
}

// Flagged returns the nodes currently flagged by either EWMA rule and
// the most recently flagged straggler node (-1 when none is flagged).
func (d *Detector) Flagged() (nodes int, straggler int) {
	straggler = -1
	if d == nil {
		return 0, -1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var latest int64
	for i := range d.nodes {
		st := &d.nodes[i]
		if st.stragglerSince != 0 || st.hotSince != 0 {
			nodes++
		}
		if st.stragglerSince > latest {
			latest, straggler = st.stragglerSince, i
		}
	}
	return nodes, straggler
}

// HotUnit is one join unit whose cell count dominates its peers.
type HotUnit struct {
	Unit  int     `json:"unit"`
	Cells int64   `json:"cells"`
	Mean  float64 `json:"mean_cells"`
}

// Hot-unit defaults: a unit is hot when it holds at least factor times
// the mean unit cells (and at least minCells); at most max units are
// reported, largest first.
const (
	DefaultHotUnitFactor   = 4.0
	DefaultHotUnitMinCells = 256
	DefaultMaxHotUnits     = 4
)

// HotUnits scans per-unit cell totals for units that dominate the mean.
// Zero factor/minCells/max select the defaults. The result is ordered
// largest first and is fully deterministic, so callers may fold it into
// fingerprinted profiles.
func HotUnits(unitCells []int64, factor float64, minCells int64, max int) []HotUnit {
	if factor <= 0 {
		factor = DefaultHotUnitFactor
	}
	if minCells <= 0 {
		minCells = DefaultHotUnitMinCells
	}
	if max <= 0 {
		max = DefaultMaxHotUnits
	}
	if len(unitCells) == 0 {
		return nil
	}
	var total int64
	for _, c := range unitCells {
		total += c
	}
	mean := float64(total) / float64(len(unitCells))
	var hot []HotUnit
	for u, c := range unitCells {
		if c >= minCells && float64(c) > factor*mean {
			hot = append(hot, HotUnit{Unit: u, Cells: c, Mean: mean})
		}
	}
	// Largest first; ties by unit id ascending (stable and deterministic).
	for i := 1; i < len(hot); i++ {
		for j := i; j > 0 && (hot[j].Cells > hot[j-1].Cells ||
			(hot[j].Cells == hot[j-1].Cells && hot[j].Unit < hot[j-1].Unit)); j-- {
			hot[j], hot[j-1] = hot[j-1], hot[j]
		}
	}
	if len(hot) > max {
		hot = hot[:max]
	}
	return hot
}
