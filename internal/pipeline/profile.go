// EXPLAIN ANALYZE: the per-query execution profile. A Profile is the
// structured, serializable digest of one query's run — per-stage wall and
// simulated timings, plan provenance (source, regret, cache outcome,
// candidate costs), shuffle transfer totals, and per-node work/skew
// diagnostics — assembled by Execute from the same deterministic Report
// the observability spans are derived from. Everything except wall-clock
// fields is bit-for-bit identical at every Parallelism setting;
// Fingerprint masks the wall-clock fields so tests can assert exactly
// that.

package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"shufflejoin/internal/flight"
)

// StageTiming is one pipeline stage's timing in Report.Stages and
// Profile.Stages. WallSeconds is real elapsed time (nondeterministic);
// SimSeconds is the simulated-cluster seconds the stage contributed to
// the query's modeled makespan (deterministic; nonzero only for the
// align and compare stages).
type StageTiming struct {
	Stage       string  `json:"stage"`
	WallSeconds float64 `json:"wall_seconds"`
	SimSeconds  float64 `json:"sim_seconds"`
}

// PlanCandidate is one logical plan the optimizer considered, with its
// modeled cost breakdown (abstract per-cell units). Chosen marks the
// plan that executed. Greedy and cached queries carry a single
// candidate; full enumeration lists every valid plan, cheapest first.
type PlanCandidate struct {
	Plan        string  `json:"plan"`
	Algorithm   string  `json:"algorithm"`
	NumUnits    int     `json:"num_units"`
	Cost        float64 `json:"cost"`
	AlignCost   float64 `json:"align_cost"`
	CompareCost float64 `json:"compare_cost"`
	OutputCost  float64 `json:"output_cost"`
	Chosen      bool    `json:"chosen"`
}

// ShuffleProfile summarizes the data-alignment phase: transfer and
// congestion totals from the discrete-event shuffle simulation.
type ShuffleProfile struct {
	Transfers       int     `json:"transfers"`
	CellsMoved      int64   `json:"cells_moved"`
	LockWaits       int     `json:"lock_waits"`
	SkippedSends    int     `json:"skipped_sends"`
	LockWaitSeconds float64 `json:"lock_wait_seconds"`
	MakespanSeconds float64 `json:"makespan_seconds"`
}

// NodeProfile is one simulated node's share of the query: assigned join
// units and cells, emitted output cells, and its modeled compare,
// send/receive, and lock-wait seconds.
type NodeProfile struct {
	Node            int     `json:"node"`
	Units           int     `json:"units"`
	AssignedCells   int64   `json:"assigned_cells"`
	OutputCells     int64   `json:"output_cells"`
	CompareSeconds  float64 `json:"compare_seconds"`
	SendSeconds     float64 `json:"send_seconds"`
	RecvSeconds     float64 `json:"recv_seconds"`
	LockWaitSeconds float64 `json:"lock_wait_seconds"`
}

// Profile is one query's EXPLAIN ANALYZE result. Field order is fixed,
// so the JSON rendering is stable; every field except the wall-clock
// ones (WallSeconds, PlanSeconds, TotalSeconds, Stages[].WallSeconds) is
// deterministic across Parallelism settings and is covered by
// Fingerprint.
type Profile struct {
	// Query is the label the caller attached (AQL text or experiment
	// name); empty when none was set.
	Query string `json:"query,omitempty"`

	// Plan provenance.
	Plan         string          `json:"plan"`
	Algorithm    string          `json:"algorithm"`
	Planner      string          `json:"planner"`
	PlanSource   string          `json:"plan_source"`
	PlanRegret   float64         `json:"plan_regret,omitempty"`
	CacheOutcome string          `json:"cache_outcome,omitempty"`
	Selectivity  float64         `json:"selectivity"`
	NumUnits     int             `json:"num_units"`
	Candidates   []PlanCandidate `json:"candidates,omitempty"`

	// Per-stage timings, in execution order.
	Stages []StageTiming `json:"stages"`

	// Phase totals: PlanSeconds is planning wall time, MakespanSeconds is
	// the simulated align+compare makespan (the sum of the stages'
	// SimSeconds), TotalSeconds their sum as reported by the engine, and
	// WallSeconds the real end-to-end elapsed time.
	PlanSeconds     float64 `json:"plan_seconds"`
	MakespanSeconds float64 `json:"makespan_seconds"`
	TotalSeconds    float64 `json:"total_seconds"`
	WallSeconds     float64 `json:"wall_seconds"`

	// Outcome totals.
	Matches      int64 `json:"matches"`
	CellsMoved   int64 `json:"cells_moved"`
	ClampedCells int64 `json:"clamped_cells,omitempty"`

	// Memory: the streaming data plane's per-query bound. PeakBatchBytes
	// is the high-water mark of mapped batch storage (deterministic; 0
	// on the materializing reference path), InternedStrings the distinct
	// strings in the query's intern dictionary, and MemoryOverflowBytes
	// how far the peak exceeded Options.MemoryBudget (counted mode).
	PeakBatchBytes      int64 `json:"peak_batch_bytes"`
	InternedStrings     int64 `json:"interned_strings,omitempty"`
	MemoryOverflowBytes int64 `json:"memory_overflow_bytes,omitempty"`

	// Skew diagnostics: the compare phase's straggler ratio (max/mean)
	// and the straggler node (-1 when no compare work exists).
	Skew          float64 `json:"skew"`
	StragglerNode int     `json:"straggler_node"`
	// HotUnits lists join units whose cell count dominates the mean
	// (flight.HotUnits over Report.UnitCells with the default
	// thresholds). Deterministic, so it is covered by Fingerprint.
	HotUnits []flight.HotUnit `json:"hot_units,omitempty"`

	Shuffle ShuffleProfile `json:"shuffle"`
	Nodes   []NodeProfile  `json:"nodes"`

	// Anomalies is the online detector's annotations for this query
	// (straggler/hot-receiver rising edges, hot units), attached by the
	// observability hub after the fact. Cross-query EWMA state is
	// history-dependent, so this field is EXCLUDED from Fingerprint.
	Anomalies []string `json:"anomalies,omitempty"`
}

// buildProfile assembles the query's Profile from the finished
// QueryContext. Called by Execute after the last stage, on the
// orchestration goroutine, only when every stage succeeded.
func buildProfile(qc *QueryContext) *Profile {
	rep := qc.Report
	p := &Profile{
		Query:               qc.Opt.QueryLabel,
		Plan:                rep.Logical.Describe(),
		Algorithm:           rep.Logical.Algo.String(),
		Planner:             rep.Physical.Planner,
		PlanSource:          rep.PlanSource,
		PlanRegret:          rep.PlanRegret,
		CacheOutcome:        rep.CacheOutcome,
		Selectivity:         rep.Selectivity,
		NumUnits:            rep.Logical.NumUnits,
		Stages:              append([]StageTiming(nil), rep.Stages...),
		PlanSeconds:         rep.PlanTime,
		TotalSeconds:        rep.Total,
		WallSeconds:         rep.WallTime.Seconds(),
		Matches:             rep.Matches,
		CellsMoved:          rep.CellsMoved,
		ClampedCells:        rep.ClampedCells,
		PeakBatchBytes:      rep.PeakBatchBytes,
		InternedStrings:     rep.InternedStrings,
		MemoryOverflowBytes: rep.MemoryOverflowBytes,
		Skew:                rep.Skew,
		StragglerNode:       rep.StragglerNode,
		HotUnits:            flight.HotUnits(rep.UnitCells, 0, 0, 0),
		Shuffle: ShuffleProfile{
			Transfers:       len(rep.Align.Timeline),
			CellsMoved:      rep.CellsMoved,
			LockWaits:       rep.Align.LockWaits,
			SkippedSends:    rep.Align.SkippedSends,
			LockWaitSeconds: rep.Align.LockWaitTime,
			MakespanSeconds: rep.Align.Makespan,
		},
	}
	for _, st := range rep.Stages {
		p.MakespanSeconds += st.SimSeconds
	}
	for _, lp := range qc.plans {
		p.Candidates = append(p.Candidates, PlanCandidate{
			Plan:        lp.Describe(),
			Algorithm:   lp.Algo.String(),
			NumUnits:    lp.NumUnits,
			Cost:        lp.Cost,
			AlignCost:   lp.AlignCost,
			CompareCost: lp.CompareCost,
			OutputCost:  lp.OutCost,
			Chosen:      lp.Describe() == p.Plan && lp.Algo == rep.Logical.Algo,
		})
	}
	k := qc.Cluster.K
	for node := 0; node < k; node++ {
		np := NodeProfile{Node: node}
		if node < len(qc.nodeUnits) {
			np.Units = len(qc.nodeUnits[node])
			if qc.prob != nil {
				for _, u := range qc.nodeUnits[node] {
					np.AssignedCells += qc.prob.UnitTotal[u]
				}
			}
		}
		if node < len(qc.nodes) {
			np.OutputCells = int64(len(qc.nodes[node].cells))
		}
		if node < len(rep.NodeCompareTime) {
			np.CompareSeconds = rep.NodeCompareTime[node]
		}
		if node < len(rep.Align.SendBusy) {
			np.SendSeconds = rep.Align.SendBusy[node]
			np.RecvSeconds = rep.Align.RecvBusy[node]
			np.LockWaitSeconds = rep.Align.RecvLockWait[node]
		}
		p.Nodes = append(p.Nodes, np)
	}
	return p
}

// WriteJSON emits the profile as indented JSON with a fixed field order
// (Go struct order), so two profiles of the same deterministic run
// render byte-identically apart from wall-clock fields.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// String renders the profile as a human-readable EXPLAIN ANALYZE tree.
func (p *Profile) String() string {
	var b strings.Builder
	if p.Query != "" {
		fmt.Fprintf(&b, "EXPLAIN ANALYZE  %s\n", p.Query)
	} else {
		b.WriteString("EXPLAIN ANALYZE\n")
	}
	fmt.Fprintf(&b, "plan: %s  [%s join · %s planner", p.Plan, p.Algorithm, p.Planner)
	if p.PlanSource != "" {
		fmt.Fprintf(&b, " · source=%s", p.PlanSource)
	}
	if p.PlanRegret > 0 {
		fmt.Fprintf(&b, " · regret=%.3g", p.PlanRegret)
	}
	if p.CacheOutcome != "" {
		fmt.Fprintf(&b, " · cache=%s", p.CacheOutcome)
	}
	b.WriteString("]\n")
	fmt.Fprintf(&b, "selectivity %.4g · %d join units · %d matches · %d cells moved",
		p.Selectivity, p.NumUnits, p.Matches, p.CellsMoved)
	if p.ClampedCells > 0 {
		fmt.Fprintf(&b, " · %d clamped", p.ClampedCells)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "├─ stages %18s %14s\n", "wall", "simulated")
	for _, st := range p.Stages {
		sim := fmt.Sprintf("%.4fs", st.SimSeconds)
		if st.SimSeconds == 0 {
			sim = "—"
		}
		fmt.Fprintf(&b, "│    %-13s %10.2fms %14s\n", st.Stage, st.WallSeconds*1000, sim)
	}
	fmt.Fprintf(&b, "│    %-13s %10.2fms %13.4fs   (plan %.4fs + makespan %.4fs = total %.4fs)\n",
		"total", p.WallSeconds*1000, p.MakespanSeconds, p.PlanSeconds, p.MakespanSeconds, p.TotalSeconds)
	fmt.Fprintf(&b, "├─ shuffle: %d transfers · %d cells · %d lock waits (%.4fs) · %d skipped sends · makespan %.4fs\n",
		p.Shuffle.Transfers, p.Shuffle.CellsMoved, p.Shuffle.LockWaits,
		p.Shuffle.LockWaitSeconds, p.Shuffle.SkippedSends, p.Shuffle.MakespanSeconds)
	if p.PeakBatchBytes > 0 {
		fmt.Fprintf(&b, "├─ memory: %d peak batch bytes · %d interned strings", p.PeakBatchBytes, p.InternedStrings)
		if p.MemoryOverflowBytes > 0 {
			fmt.Fprintf(&b, " · %d bytes over budget", p.MemoryOverflowBytes)
		}
		b.WriteString("\n")
	}
	if len(p.HotUnits) > 0 {
		b.WriteString("├─ hot units:")
		for _, hu := range p.HotUnits {
			fmt.Fprintf(&b, " unit %d (%d cells, %.1fx mean)", hu.Unit, hu.Cells, float64(hu.Cells)/hu.Mean)
		}
		b.WriteString("\n")
	}
	for _, a := range p.Anomalies {
		fmt.Fprintf(&b, "├─ anomaly: %s\n", a)
	}
	if p.StragglerNode >= 0 {
		fmt.Fprintf(&b, "├─ nodes (compare skew %.3f · straggler node %d)\n", p.Skew, p.StragglerNode)
	} else {
		b.WriteString("├─ nodes (no compare work)\n")
	}
	fmt.Fprintf(&b, "│    %-5s %6s %15s %13s %11s %9s %9s %12s\n",
		"node", "units", "assigned_cells", "output_cells", "compare_s", "send_s", "recv_s", "lock_wait_s")
	for _, n := range p.Nodes {
		marker := ""
		if n.Node == p.StragglerNode {
			marker = "  <- straggler"
		}
		fmt.Fprintf(&b, "│    %-5d %6d %15d %13d %11.4f %9.4f %9.4f %12.4f%s\n",
			n.Node, n.Units, n.AssignedCells, n.OutputCells,
			n.CompareSeconds, n.SendSeconds, n.RecvSeconds, n.LockWaitSeconds, marker)
	}
	fmt.Fprintf(&b, "└─ candidates (%d plan(s), cheapest first)\n", len(p.Candidates))
	for _, c := range p.Candidates {
		mark := " "
		if c.Chosen {
			mark = "*"
		}
		fmt.Fprintf(&b, "   %s %-50s %-10s units=%-6d cost=%.4g (align %.4g · compare %.4g · output %.4g)\n",
			mark, c.Plan, c.Algorithm, c.NumUnits, c.Cost, c.AlignCost, c.CompareCost, c.OutputCost)
	}
	return b.String()
}

// Fingerprint renders every deterministic field of the profile in a
// canonical text form, with wall-clock quantities masked and simulated
// seconds printed exactly (%.17g). Two profiles of the same query are
// required to fingerprint identically at every Parallelism setting and
// in both overlapped and barrier execution modes.
func (p *Profile) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query=%q plan=%q algo=%s planner=%q source=%s regret=%.17g cache=%s sel=%.17g units=%d\n",
		p.Query, p.Plan, p.Algorithm, p.Planner, p.PlanSource, p.PlanRegret, p.CacheOutcome, p.Selectivity, p.NumUnits)
	for _, c := range p.Candidates {
		fmt.Fprintf(&b, "candidate plan=%q algo=%s units=%d cost=%.17g align=%.17g compare=%.17g out=%.17g chosen=%v\n",
			c.Plan, c.Algorithm, c.NumUnits, c.Cost, c.AlignCost, c.CompareCost, c.OutputCost, c.Chosen)
	}
	for _, st := range p.Stages {
		fmt.Fprintf(&b, "stage %s wall=[masked] sim=%.17g\n", st.Stage, st.SimSeconds)
	}
	fmt.Fprintf(&b, "makespan=%.17g matches=%d moved=%d clamped=%d skew=%.17g straggler=%d\n",
		p.MakespanSeconds, p.Matches, p.CellsMoved, p.ClampedCells, p.Skew, p.StragglerNode)
	for _, hu := range p.HotUnits {
		fmt.Fprintf(&b, "hotunit %d cells=%d mean=%.17g\n", hu.Unit, hu.Cells, hu.Mean)
	}
	fmt.Fprintf(&b, "memory peak=%d interned=%d overflow=%d\n",
		p.PeakBatchBytes, p.InternedStrings, p.MemoryOverflowBytes)
	fmt.Fprintf(&b, "shuffle transfers=%d cells=%d lock_waits=%d skipped=%d lock_wait_s=%.17g makespan=%.17g\n",
		p.Shuffle.Transfers, p.Shuffle.CellsMoved, p.Shuffle.LockWaits,
		p.Shuffle.SkippedSends, p.Shuffle.LockWaitSeconds, p.Shuffle.MakespanSeconds)
	for _, n := range p.Nodes {
		fmt.Fprintf(&b, "node %d units=%d assigned=%d output=%d compare=%.17g send=%.17g recv=%.17g lock=%.17g\n",
			n.Node, n.Units, n.AssignedCells, n.OutputCells,
			n.CompareSeconds, n.SendSeconds, n.RecvSeconds, n.LockWaitSeconds)
	}
	return b.String()
}
