package pipeline_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"shufflejoin/internal/batch"
	"shufflejoin/internal/flight"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/pipeline"
)

// TestFlightRecordingEquivalence is the flight recorder's determinism
// contract: a recorded run is bit-for-bit identical to an unrecorded
// one — output cells, modeled times, trace and profile fingerprints —
// at every Parallelism setting. Events are telemetry, never inputs.
func TestFlightRecordingEquivalence(t *testing.T) {
	a := buildArray("A<v:int>[i=1,300,30]", 21, 150, 25)
	b := buildArray("B<w:int>[j=1,300,30]", 22, 140, 25)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}

	run := func(t *testing.T, par int, fr *flight.Recorder, off bool) (*pipeline.Report, string) {
		t.Helper()
		c := newCluster(t, 4, a.Clone(), b.Clone())
		tr := obs.New("flight-equiv")
		rep, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{
			Logical:     logical.PlanOptions{Selectivity: 0.5},
			Parallelism: par,
			Trace:       tr,
			Profile:     true,
			Flight:      fr,
			FlightOff:   off,
		})
		if err != nil {
			t.Fatalf("Run(par=%d): %v", par, err)
		}
		return rep, tr.Fingerprint()
	}

	for _, par := range []int{1, 4, 0} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			fr := flight.New(4096)
			want, wantFP := run(t, par, nil, true) // recording off
			got, gotFP := run(t, par, fr, false)   // recording on

			if gotFP != wantFP {
				t.Errorf("trace fingerprints differ between recorded and unrecorded runs")
			}
			if got.Profile.Fingerprint() != want.Profile.Fingerprint() {
				t.Errorf("profile fingerprints differ:\n--- recorded ---\n%s\n--- unrecorded ---\n%s",
					got.Profile.Fingerprint(), want.Profile.Fingerprint())
			}
			if got.Matches != want.Matches || got.AlignTime != want.AlignTime || got.CompareTime != want.CompareTime {
				t.Errorf("recorded run diverged: matches %d/%d align %v/%v compare %v/%v",
					got.Matches, want.Matches, got.AlignTime, want.AlignTime, got.CompareTime, want.CompareTime)
			}
			if !reflect.DeepEqual(cellsOf(got.Output), cellsOf(want.Output)) {
				t.Error("output cells differ between recorded and unrecorded runs")
			}

			// The recorded run actually left a trail, and the query's
			// lifecycle events bracket it in order.
			counts := map[flight.Type]int{}
			for _, e := range fr.Snapshot(0) {
				counts[e.Type]++
			}
			if counts[flight.EvQueryStart] != 1 || counts[flight.EvQueryFinish] != 1 {
				t.Errorf("lifecycle events = %v", counts)
			}
			if counts[flight.EvStageStart] != 6 || counts[flight.EvStageFinish] != 6 {
				t.Errorf("stage events = %d/%d, want 6/6", counts[flight.EvStageStart], counts[flight.EvStageFinish])
			}
			if counts[flight.EvAlignDone] != 1 || counts[flight.EvCompareDone] != 1 {
				t.Errorf("align/compare events = %v", counts)
			}
			if counts[flight.EvBudgetCharge] == 0 || counts[flight.EvBudgetCredit] == 0 {
				t.Errorf("no budget events recorded: %v", counts)
			}
		})
	}
}

// TestFlightDefaultRecorderOn: with no flight options at all, queries
// record into the process-wide flight.Default ring — the recorder is on
// by default.
func TestFlightDefaultRecorderOn(t *testing.T) {
	a := buildArray("A<v:int>[i=1,100,20]", 31, 50, 15)
	b := buildArray("B<w:int>[j=1,100,20]", 32, 50, 15)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := newCluster(t, 2, a, b)
	before := flight.Default.Stats().Recorded
	if _, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{
		Logical: logical.PlanOptions{Selectivity: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	if after := flight.Default.Stats().Recorded; after <= before {
		t.Errorf("default recorder did not advance: %d -> %d", before, after)
	}
}

// bundleDirs lists the bundle directories under a postmortem root.
func bundleDirs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading postmortem dir: %v", err)
	}
	var out []string
	for _, e := range entries {
		out = append(out, filepath.Join(dir, e.Name()))
	}
	return out
}

// readMeta parses a bundle's meta.json.
func readMeta(t *testing.T, bundle string) map[string]any {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(bundle, "meta.json"))
	if err != nil {
		t.Fatalf("bundle %s has no meta.json: %v", bundle, err)
	}
	var meta map[string]any
	if err := json.Unmarshal(data, &meta); err != nil {
		t.Fatalf("meta.json: %v", err)
	}
	return meta
}

// TestPostmortemOnStrictBudget: a strict-memory failure ships a complete
// diagnostic bundle named for the strict-budget reason.
func TestPostmortemOnStrictBudget(t *testing.T) {
	a := buildArray("A<v:int>[i=1,200,20]", 9, 120, 25)
	b := buildArray("B<w:int>[j=1,200,20]", 10, 110, 25)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := newCluster(t, 3, a, b)
	dir := t.TempDir()
	fr := flight.New(1024)
	pm := &flight.Postmortem{Dir: dir, Flight: fr}

	_, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{
		Logical:      logical.PlanOptions{Selectivity: 0.5},
		MemoryBudget: 256,
		StrictMemory: true,
		Flight:       fr,
		Postmortem:   pm,
	})
	if !errors.Is(err, batch.ErrBudget) {
		t.Fatalf("err = %v, want batch.ErrBudget", err)
	}

	bundles := bundleDirs(t, dir)
	if len(bundles) != 1 {
		t.Fatalf("bundles = %v, want exactly one", bundles)
	}
	bundle := bundles[0]
	meta := readMeta(t, bundle)
	if meta["reason"] != "strict-budget" {
		t.Errorf("reason = %v", meta["reason"])
	}
	for _, f := range []string{"flight.json", "failure.json", "report.json", "goroutines.txt", "heap.pprof"} {
		if _, err := os.Stat(filepath.Join(bundle, f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}
	// The flight dump contains the budget overflow that killed the query.
	data, _ := os.ReadFile(filepath.Join(bundle, "flight.json"))
	if !strings.Contains(string(data), "budget-overflow") {
		t.Error("flight.json does not record the budget overflow")
	}
	var failure map[string]any
	fdata, _ := os.ReadFile(filepath.Join(bundle, "failure.json"))
	if err := json.Unmarshal(fdata, &failure); err != nil {
		t.Fatalf("failure.json: %v", err)
	}
	if failure["stage"] != "slice-map" || !strings.Contains(failure["error"].(string), "budget") {
		t.Errorf("failure section = %v", failure)
	}
}

// panicStage is a pipeline stage that always panics, standing in for an
// engine bug.
type panicStage struct{}

func (panicStage) Name() string                     { return "panic-stage" }
func (panicStage) Run(*pipeline.QueryContext) error { panic("injected failure") }

// TestPostmortemOnPanic: a panicking stage captures a bundle with the
// panic value and stack, then re-panics to the caller.
func TestPostmortemOnPanic(t *testing.T) {
	a := buildArray("A<v:int>[i=1,100,20]", 41, 40, 15)
	b := buildArray("B<w:int>[j=1,100,20]", 42, 40, 15)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := newCluster(t, 2, a, b)
	dir := t.TempDir()
	fr := flight.New(256)
	pm := &flight.Postmortem{Dir: dir, Flight: fr}

	dl, err := c.Catalog.Lookup("A")
	if err != nil {
		t.Fatal(err)
	}
	dr, err := c.Catalog.Lookup("B")
	if err != nil {
		t.Fatal(err)
	}
	qc := pipeline.NewQueryContext(c, dl, dr, pred, nil, pipeline.Options{
		Logical:    logical.PlanOptions{Selectivity: 0.5},
		Flight:     fr,
		Postmortem: pm,
	})

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("panic did not propagate to the caller")
			}
		}()
		pipeline.Execute(qc, []pipeline.Stage{pipeline.LogicalPlan{}, panicStage{}})
	}()

	bundles := bundleDirs(t, dir)
	if len(bundles) != 1 {
		t.Fatalf("bundles = %v, want exactly one", bundles)
	}
	meta := readMeta(t, bundles[0])
	if meta["reason"] != "panic" {
		t.Errorf("reason = %v", meta["reason"])
	}
	var failure map[string]any
	fdata, _ := os.ReadFile(filepath.Join(bundles[0], "failure.json"))
	if err := json.Unmarshal(fdata, &failure); err != nil {
		t.Fatalf("failure.json: %v", err)
	}
	if failure["panic"] != "injected failure" || failure["stage"] != "panic-stage" {
		t.Errorf("failure section = %v", failure)
	}
	if stack, _ := failure["stack"].(string); !strings.Contains(stack, "panicStage") {
		t.Error("failure section carries no stack trace")
	}
	// The postmortem flight event marks the trail.
	var marked bool
	for _, e := range fr.Snapshot(0) {
		if e.Type == flight.EvPostmortem && fr.LabelName(e.Args[0]) == "panic" {
			marked = true
		}
	}
	if !marked {
		t.Error("no postmortem flight event recorded")
	}
}

// TestPostmortemOnSlowQuery: a query breaching the sink's SlowQuery
// threshold ships a bundle even though it succeeded.
func TestPostmortemOnSlowQuery(t *testing.T) {
	a := buildArray("A<v:int>[i=1,100,20]", 51, 40, 15)
	b := buildArray("B<w:int>[j=1,100,20]", 52, 40, 15)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := newCluster(t, 2, a, b)
	dir := t.TempDir()
	pm := &flight.Postmortem{Dir: dir, Flight: flight.New(256), SlowQuery: time.Nanosecond}

	if _, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{
		Logical:    logical.PlanOptions{Selectivity: 0.5},
		Flight:     pm.Flight,
		Postmortem: pm,
	}); err != nil {
		t.Fatal(err)
	}
	bundles := bundleDirs(t, dir)
	if len(bundles) != 1 {
		t.Fatalf("bundles = %v, want exactly one", bundles)
	}
	meta := readMeta(t, bundles[0])
	if meta["reason"] != "slow-query" {
		t.Errorf("reason = %v", meta["reason"])
	}
	// A successful slow query has a full profile to dump.
	if _, err := os.Stat(filepath.Join(bundles[0], "profile.json")); err != nil {
		t.Errorf("bundle missing profile.json: %v", err)
	}
}

// TestProfileHotUnits: the profile's hot-unit list is derived
// deterministically from the per-unit cell totals the planner assigned.
func TestProfileHotUnits(t *testing.T) {
	a := buildArray("A<v:int>[i=1,300,30]", 61, 150, 25)
	b := buildArray("B<w:int>[j=1,300,30]", 62, 140, 25)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := newCluster(t, 3, a, b)
	rep, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{
		Logical: logical.PlanOptions{Selectivity: 0.5},
		Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.UnitCells) == 0 {
		t.Fatal("Report.UnitCells not populated")
	}
	want := flight.HotUnits(rep.UnitCells, 0, 0, 0)
	if !reflect.DeepEqual(rep.Profile.HotUnits, want) {
		t.Errorf("Profile.HotUnits = %+v, want %+v", rep.Profile.HotUnits, want)
	}
}
