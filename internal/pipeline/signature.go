package pipeline

import (
	"fmt"
	"strings"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/plancache"
)

// planSignature digests everything the planners consume for this query.
// The per-side data fingerprints (cluster.DataFingerprint) cover schema
// string, chunk grid, per-chunk cell counts, chunk placement, and the
// skew histogram's fingerprint, so a re-ingest of the same schema under
// a different skew profile — the Skew Strikes Back hazard — changes the
// signature and misses by construction. The remaining fields pin the
// planning options that select or price plans. Options must be
// normalized before signing.
func planSignature(qc *QueryContext) plancache.Signature {
	opt := qc.Opt
	var b strings.Builder
	fmt.Fprintf(&b, "L:%016x|R:%016x|K:%d", qc.Left.DataFingerprint(), qc.Right.DataFingerprint(), qc.Cluster.K)
	fmt.Fprintf(&b, "|pred:%s", qc.Pred)
	// The data fingerprint covers grid shape and per-chunk cell counts but
	// not attribute values; the predicate columns' value histograms drive
	// selectivity estimation and the logical plan choice, so sign them too
	// (cheap: histograms are cached per Distributed).
	for _, pp := range qc.Pred {
		if h := qc.Left.AttrHistogram(pp.Left.Name); h != nil {
			fmt.Fprintf(&b, "|hl:%016x", h.Fingerprint())
		}
		if h := qc.Right.AttrHistogram(pp.Right.Name); h != nil {
			fmt.Fprintf(&b, "|hr:%016x", h.Fingerprint())
		}
	}
	if qc.Out != nil {
		fmt.Fprintf(&b, "|out:%s", qc.Out)
	}
	fmt.Fprintf(&b, "|planner:%s|params:%v", opt.Planner.Name(), opt.Params)
	fmt.Fprintf(&b, "|sel:%g|hb:%d|tgt:%d|carryL:%v|carryR:%v",
		opt.Logical.Selectivity, opt.Logical.HashBuckets, opt.TargetCellsPerChunk,
		opt.ExtraCarryLeft, opt.ExtraCarryRight)
	if opt.ForceAlgo != nil {
		fmt.Fprintf(&b, "|force:%v", *opt.ForceAlgo)
	}
	if opt.PlanPolicy != nil {
		fmt.Fprintf(&b, "|eps:%g|polish:%d", opt.PlanPolicy.Epsilon, opt.PlanPolicy.Polish)
	}
	return plancache.Signature(b.String())
}

// PlanSignature returns the cache signature RunDistributed would compute
// for this query — exposed for cache-invalidation tests and debugging.
// Distinct signatures guarantee distinct cache slots; the planners never
// see the difference between a cold miss and an absent cache.
func PlanSignature(c *cluster.Cluster, dl, dr *cluster.Distributed, pred join.Predicate, out *array.Schema, opt Options) plancache.Signature {
	qc := NewQueryContext(c, dl, dr, pred, out, opt)
	qc.Opt.normalize()
	return planSignature(qc)
}
