package pipeline

import (
	"fmt"
	"math"

	"shufflejoin/internal/array"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
)

// putClamped stores an output cell, clamping coordinates into the
// destination's dimension ranges (join keys can exceed a destination
// declared smaller than the data). It reports whether any coordinate was
// clamped; under strict bounds an out-of-range cell is an error instead.
func putClamped(a *array.Array, coords []int64, attrs []array.Value, strict bool) (bool, error) {
	clamped := false
	for i, d := range a.Schema.Dims {
		if coords[i] < d.Start || coords[i] > d.End {
			if strict {
				return false, fmt.Errorf("pipeline: output cell %v outside destination dimension %s=[%d,%d] (StrictBounds)",
					coords, d.Name, d.Start, d.End)
			}
			clamped = true
			if coords[i] < d.Start {
				coords[i] = d.Start
			} else {
				coords[i] = d.End
			}
		}
	}
	return clamped, a.Put(coords, attrs)
}

// newOutputArray materializes the destination schema. A destination with
// no dimensions (unordered output, e.g. INTO T<i:int,j:int>[]) gets a
// synthetic row dimension.
func newOutputArray(js *logical.JoinSchema) (*array.Array, error) {
	out := js.Pred.Out.Clone()
	if len(out.Dims) == 0 {
		out.Dims = []array.Dimension{{Name: "row_", Start: 0, End: math.MaxInt64 / 2, ChunkInterval: 1 << 20}}
	}
	return array.New(out)
}

// projector maps a matched tuple pair to an output cell.
type projector struct {
	js       *logical.JoinSchema
	dimSrc   []fieldSrc
	attrSrc  []fieldSrc
	rowDim   bool
	nextRow  int64
	rowStep  int64
	carryPos [2]map[int]int // original attr index -> tuple.Attrs position
	attrFn   func(l, r *join.Tuple) []array.Value
}

// forNode returns a node-local copy whose synthetic row coordinates are
// node, node+k, node+2k, … — disjoint across nodes. The barrier compare
// path numbers rows this way directly.
func (p *projector) forNode(node, k int) *projector {
	c := *p
	c.nextRow = int64(node)
	c.rowStep = int64(k)
	return &c
}

// forUnit returns a unit-local copy that numbers synthetic rows 0, 1, 2, …
// The overlapped compare path projects each join unit independently (units
// finish in shuffle-completion order), then renumbers rows to the
// destination node's stride-k sequence when unit results are folded in
// deterministic order — reproducing forNode's numbering bit for bit.
func (p *projector) forUnit() *projector {
	c := *p
	c.nextRow = 0
	c.rowStep = 1
	return &c
}

// fieldSrc locates one output field's value in a matched pair.
type fieldSrc struct {
	side  int // 0 = left tuple, 1 = right tuple
	isDim bool
	idx   int // coords index, or position within tuple.Attrs
}

func newProjector(js *logical.JoinSchema, attrFn func(l, r *join.Tuple) []array.Value) (*projector, error) {
	p := &projector{js: js, attrFn: attrFn}
	p.carryPos[0] = carryPositions(js.LeftCarry)
	p.carryPos[1] = carryPositions(js.RightCarry)
	out := js.Pred.Out
	if len(out.Dims) == 0 {
		p.rowDim = true
	} else {
		for _, d := range out.Dims {
			src, err := p.resolveField(d.Name)
			if err != nil {
				return nil, err
			}
			p.dimSrc = append(p.dimSrc, src)
		}
	}
	if attrFn == nil {
		for _, a := range out.Attrs {
			src, err := p.resolveField(a.Name)
			if err != nil {
				return nil, err
			}
			p.attrSrc = append(p.attrSrc, src)
		}
	}
	return p, nil
}

func carryPositions(carry []int) map[int]int {
	m := make(map[int]int, len(carry))
	for pos, idx := range carry {
		m[idx] = pos
	}
	return m
}

// resolveField finds where an output field's value comes from: a source
// dimension, a carried source attribute, or — when the name matches a
// predicate term — the corresponding key value.
func (p *projector) resolveField(name string) (fieldSrc, error) {
	src := p.js.Pred
	schemas := [2]*array.Schema{src.Left, src.Right}
	for side, s := range schemas {
		if i := s.DimIndex(name); i >= 0 {
			return fieldSrc{side: side, isDim: true, idx: i}, nil
		}
		if i := s.AttrIndex(name); i >= 0 {
			if pos, ok := p.carryPos[side][i]; ok {
				return fieldSrc{side: side, isDim: false, idx: pos}, nil
			}
		}
	}
	// Predicate-name match: τ renames a joined pair (e.g. dimension v fed
	// by A.v = B.w). Use the left side's term.
	for pi, pair := range src.Resolved.Pred {
		if pair.Left.Name == name || pair.Right.Name == name {
			ref := src.Resolved.Left[pi]
			if ref.IsDim {
				return fieldSrc{side: 0, isDim: true, idx: ref.Index}, nil
			}
			if pos, ok := p.carryPos[0][ref.Index]; ok {
				return fieldSrc{side: 0, isDim: false, idx: pos}, nil
			}
		}
	}
	return fieldSrc{}, fmt.Errorf("pipeline: output field %q has no source in %s or %s",
		name, src.Left.Name, src.Right.Name)
}

func (p *projector) project(l, r *join.Tuple) ([]int64, []array.Value) {
	pick := func(src fieldSrc) array.Value {
		t := l
		if src.side == 1 {
			t = r
		}
		if src.isDim {
			return array.IntValue(t.Coords[src.idx])
		}
		return t.Attrs[src.idx]
	}
	var coords []int64
	if p.rowDim {
		coords = []int64{p.nextRow}
		p.nextRow += p.rowStep
	} else {
		coords = make([]int64, len(p.dimSrc))
		for i, src := range p.dimSrc {
			coords[i] = pick(src).AsInt()
		}
	}
	if p.attrFn != nil {
		return coords, p.attrFn(l, r)
	}
	attrs := make([]array.Value, len(p.attrSrc))
	for i, src := range p.attrSrc {
		attrs[i] = pick(src)
	}
	return coords, attrs
}
