package pipeline

import (
	"math"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cardinality"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/stats"
)

// EstimateSelectivity predicts the join's output cardinality when the
// caller supplied none, converting it to the paper's selectivity
// convention (n_out = sel·(nA+nB)). Per predicate pair it estimates the
// probability that a random cell pair matches — dimension pairs via key
// space overlap, attribute pairs via histogram-based power-law estimation
// — and combines pairs under independence. The logical planner only needs
// to know whether the output exceeds its inputs (Section 4), so coarse
// estimates suffice.
func EstimateSelectivity(c *cluster.Cluster, src *logical.ResolvedSources, nA, nB int64) float64 {
	return estimateSelectivity(catalogHistogram(c), src, nA, nB)
}

// estimateSelectivity is EstimateSelectivity with an injectable histogram
// source (the catalog in production, stubs in tests).
func estimateSelectivity(hist func(arrayName, attrName string) *stats.Histogram, src *logical.ResolvedSources, nA, nB int64) float64 {
	if nA == 0 || nB == 0 {
		return 1e-6
	}
	pairProb := 1.0
	for i := range src.Resolved.Pred {
		lref, rref := src.Resolved.Left[i], src.Resolved.Right[i]
		if lref.IsDim && rref.IsDim {
			ld, rd := src.Left.Dims[lref.Index], src.Right.Dims[rref.Index]
			lo := math.Min(float64(ld.Start), float64(rd.Start))
			hi := math.Max(float64(ld.End), float64(rd.End))
			extent := hi - lo + 1
			if extent < 1 {
				extent = 1
			}
			pairProb *= 1 / extent
			continue
		}
		ha := sideHistogram(hist, src.Left, lref, nA)
		hb := sideHistogram(hist, src.Right, rref, nB)
		if ha == nil || hb == nil || ha.Total == 0 || hb.Total == 0 {
			// No statistics (string keys, or an empty attribute column whose
			// histogram has zero mass — EquiJoinFromHistograms would estimate
			// zero matches and zero out the product): neutral guess.
			pairProb *= 1 / math.Max(float64(nA), 1)
			continue
		}
		corr := math.Sqrt(cardinality.SkewCorrection(ha) * cardinality.SkewCorrection(hb))
		matches := cardinality.EquiJoinFromHistograms(ha, hb, corr)
		pairProb *= matches / (float64(nA) * float64(nB))
	}
	nOut := float64(nA) * float64(nB) * pairProb
	return cardinality.Selectivity(nOut, nA, nB)
}

// sideHistogram returns value statistics for one predicate term: the
// catalog's attribute histogram, or — for a dimension term — a synthetic
// uniform histogram over the dimension range (the coordinate distribution
// the catalog would keep). String attributes have no numeric histogram.
func sideHistogram(hist func(arrayName, attrName string) *stats.Histogram, s *array.Schema, ref join.Ref, n int64) *stats.Histogram {
	if ref.IsDim {
		d := s.Dims[ref.Index]
		h := stats.NewHistogram(float64(d.Start), float64(d.End), 64)
		per := n / int64(len(h.Buckets))
		for i := range h.Buckets {
			h.Buckets[i] = per
		}
		h.Buckets[0] += n % int64(len(h.Buckets))
		h.Total = n
		return h
	}
	if s.Attrs[ref.Index].Type == array.TypeString {
		return nil
	}
	return hist(s.Name, ref.Name)
}
