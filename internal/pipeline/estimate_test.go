package pipeline

import (
	"math"
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/stats"
)

// resolveAttrJoin builds ResolvedSources for an attribute equi-join of two
// 1-D arrays, the shape whose selectivity estimate consults histograms.
func resolveAttrJoin(t *testing.T) *logical.ResolvedSources {
	t.Helper()
	ls := array.MustParseSchema("L<v:int>[i=1,1024,64]")
	rs := array.MustParseSchema("R<w:int>[j=1,1024,64]")
	src, err := logical.ResolveSources(ls, rs, nil,
		join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// A catalog histogram with Total == 0 (an empty attribute column) must not
// zero out — or NaN out — the selectivity estimate:
// cardinality.EquiJoinFromHistograms divides by histogram mass, so the
// zero-mass case has to take the same neutral 1/max(nA,1) path as a
// missing histogram.
func TestEstimateSelectivityZeroMassHistogram(t *testing.T) {
	src := resolveAttrJoin(t)
	empty := func(arrayName, attrName string) *stats.Histogram {
		return stats.NewHistogram(0, 100, 8) // zero mass
	}
	const nA, nB = 500, 400
	got := estimateSelectivity(empty, src, nA, nB)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("selectivity = %v, want finite", got)
	}
	if got <= 0 {
		t.Fatalf("selectivity = %v, want > 0", got)
	}
	missing := func(arrayName, attrName string) *stats.Histogram { return nil }
	if want := estimateSelectivity(missing, src, nA, nB); got != want {
		t.Errorf("zero-mass selectivity = %v, want neutral-path value %v", got, want)
	}
}

// One-sided zero mass must also fall back to the neutral path.
func TestEstimateSelectivityOneSidedZeroMass(t *testing.T) {
	src := resolveAttrJoin(t)
	oneSided := func(arrayName, attrName string) *stats.Histogram {
		if arrayName == "L" {
			h := stats.NewHistogram(0, 100, 8)
			for v := 0.0; v < 100; v++ {
				h.Add(v)
			}
			return h
		}
		return stats.NewHistogram(0, 100, 8)
	}
	got := estimateSelectivity(oneSided, src, 500, 400)
	if math.IsNaN(got) || got <= 0 {
		t.Fatalf("selectivity = %v, want finite and positive", got)
	}
}
