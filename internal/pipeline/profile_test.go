package pipeline_test

import (
	"bytes"
	"strings"
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/pipeline"
	"shufflejoin/internal/plancache"
)

func profiledRun(t *testing.T, par int, barrier bool) *pipeline.Report {
	t.Helper()
	a := buildArray("A<v:int>[i=1,300,30]", 31, 160, 30)
	b := buildArray("B<w:int>[j=1,300,30]", 32, 150, 30)
	out := array.MustParseSchema("T<i:int, j:int>[v=0,29,6]")
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := newCluster(t, 4, a, b)
	rep, err := pipeline.Run(c, "A", "B", pred, out, pipeline.Options{
		Logical:     logical.PlanOptions{Selectivity: 0.5},
		Parallelism: par,
		Barrier:     barrier,
		Profile:     true,
		QueryLabel:  "A join B on v=w",
	})
	if err != nil {
		t.Fatalf("par=%d barrier=%v: %v", par, barrier, err)
	}
	return rep
}

// TestProfileStageSimsSumToMakespan pins the EXPLAIN ANALYZE accounting
// identity: the per-stage simulated timings sum — exactly, in floating
// point — to the profile's makespan and to the engine's reported
// align+compare modeled times.
func TestProfileStageSimsSumToMakespan(t *testing.T) {
	rep := profiledRun(t, 0, false)
	p := rep.Profile
	if p == nil {
		t.Fatal("Options.Profile set but Report.Profile is nil")
	}
	var sum float64
	for _, st := range p.Stages {
		sum += st.SimSeconds
	}
	if sum != p.MakespanSeconds {
		t.Errorf("sum of stage SimSeconds = %v, profile makespan = %v", sum, p.MakespanSeconds)
	}
	if want := rep.AlignTime + rep.CompareTime; sum != want {
		t.Errorf("sum of stage SimSeconds = %v, AlignTime+CompareTime = %v (must be bit-identical)", sum, want)
	}
	if len(p.Stages) != 6 {
		t.Errorf("profile has %d stages, want 6: %+v", len(p.Stages), p.Stages)
	}
	if p.Shuffle.MakespanSeconds != rep.AlignTime {
		t.Errorf("shuffle makespan %v != AlignTime %v", p.Shuffle.MakespanSeconds, rep.AlignTime)
	}
	if p.Matches != rep.Matches || p.CellsMoved != rep.CellsMoved {
		t.Errorf("profile totals (%d, %d) disagree with report (%d, %d)",
			p.Matches, p.CellsMoved, rep.Matches, rep.CellsMoved)
	}
	var unitSum, cellSum int64
	for _, n := range p.Nodes {
		unitSum += int64(n.Units)
		cellSum += n.OutputCells
	}
	if int(unitSum) != p.NumUnits {
		t.Errorf("per-node units sum to %d, plan has %d units", unitSum, p.NumUnits)
	}
	if cellSum != p.Matches {
		t.Errorf("per-node output cells sum to %d, want %d matches", cellSum, p.Matches)
	}
	if len(p.Candidates) == 0 {
		t.Error("profile carries no candidate plans")
	}
	chosen := 0
	for _, c := range p.Candidates {
		if c.Chosen {
			chosen++
		}
	}
	if chosen != 1 {
		t.Errorf("%d candidates marked chosen, want exactly 1: %+v", chosen, p.Candidates)
	}
}

// TestProfileDeterministicAcrossParallelism is the acceptance bar: the
// profile (wall-clock fields masked) is bit-identical at Parallelism 1,
// 4, and 0, and across overlapped vs. barrier execution.
func TestProfileDeterministicAcrossParallelism(t *testing.T) {
	var base string
	for i, cfg := range []struct {
		par     int
		barrier bool
	}{{1, false}, {4, false}, {0, false}, {0, true}} {
		rep := profiledRun(t, cfg.par, cfg.barrier)
		fp := rep.Profile.Fingerprint()
		if i == 0 {
			base = fp
			continue
		}
		if fp != base {
			t.Errorf("profile fingerprint at par=%d barrier=%v diverges:\n--- base ---\n%s\n--- got ---\n%s",
				cfg.par, cfg.barrier, base, fp)
		}
	}
}

// TestProfileRenderAndJSON sanity-checks the two export forms: the tree
// renderer mentions every section, and the JSON round-trips through a
// stable encoding.
func TestProfileRenderAndJSON(t *testing.T) {
	rep := profiledRun(t, 0, false)
	p := rep.Profile
	s := p.String()
	for _, want := range []string{"EXPLAIN ANALYZE", "A join B on v=w", "stages", "shuffle:", "nodes", "candidates", "logical-plan", "align", "compare"} {
		if !strings.Contains(s, want) {
			t.Errorf("profile rendering missing %q:\n%s", want, s)
		}
	}
	var b1, b2 bytes.Buffer
	if err := p.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("profile JSON not stable across renders")
	}
	for _, want := range []string{`"plan_source"`, `"stages"`, `"shuffle"`, `"nodes"`, `"candidates"`, `"makespan_seconds"`} {
		if !strings.Contains(b1.String(), want) {
			t.Errorf("profile JSON missing %q", want)
		}
	}
}

// TestProfileCacheOutcome exercises plan-cache provenance in the
// profile: first run misses, second hits, and both record it.
func TestProfileCacheOutcome(t *testing.T) {
	a := buildArray("A<v:int>[i=1,300,30]", 41, 140, 25)
	b := buildArray("B<w:int>[j=1,300,30]", 42, 130, 25)
	out := array.MustParseSchema("T<i:int, j:int>[v=0,24,5]")
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := newCluster(t, 4, a, b)
	cache := plancache.New()
	opts := pipeline.Options{
		Logical: logical.PlanOptions{Selectivity: 0.5},
		Cache:   cache,
		Profile: true,
	}
	rep1, err := pipeline.Run(c, "A", "B", pred, out, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Profile.CacheOutcome != "miss" {
		t.Errorf("first run cache outcome = %q, want miss", rep1.Profile.CacheOutcome)
	}
	rep2, err := pipeline.Run(c, "A", "B", pred, out, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Profile.CacheOutcome != "hit" {
		t.Errorf("second run cache outcome = %q, want hit", rep2.Profile.CacheOutcome)
	}
	if rep2.Profile.PlanSource != pipeline.PlanSourceCached {
		t.Errorf("second run plan source = %q, want %q", rep2.Profile.PlanSource, pipeline.PlanSourceCached)
	}
}
