// Package pipeline is the staged query-execution engine of the shuffle
// join (Sections 3.3–3.4 of the paper). A query runs as an explicit
// sequence of stages —
//
//	LogicalPlan → SliceMap → PhysicalPlan → Align → Compare → Assemble
//
// — threading one QueryContext that carries the cluster, the options, the
// observability trace, and every intermediate product from stage to
// stage. internal/exec re-exports the entry points for compatibility;
// the AQL runner, the public facade, and both CLIs all execute through
// Run / RunDistributed here.
//
// # Overlapped execution
//
// The engine overlaps data alignment with cell comparison at join-unit
// granularity: the Align stage subscribes to the network simulator's
// per-transfer completion events (simnet.Config.OnComplete) and
// dispatches a unit's comparison the moment its last inbound slice lands
// — the paper's per-receiver write-lock model makes that point well
// defined — instead of waiting for a global alignment barrier. Units
// whose slices are already local are dispatched before the simulation
// even starts.
//
// Overlap is a wall-clock optimization only; the modeled timeline is
// unchanged (compare time is still stacked after the align makespan, as
// in the paper's cost model). Output cells, modeled times, and trace
// fingerprints are bit-for-bit identical to the barrier reference path
// (Options.Barrier) at every Parallelism setting, because
//
//  1. transfer completion order is deterministic in the discrete-event
//     loop,
//  2. each unit's results land in a pre-allocated per-unit slot, and
//  3. all merging — cells, join stats, modeled seconds, synthetic row
//     numbering — happens on the orchestration goroutine in a fixed
//     order: node ascending, unit assignment order, emit order.
//
// See DESIGN.md §7 for the full determinism argument.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"shufflejoin/internal/array"
	"shufflejoin/internal/batch"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/flight"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/physical"
	"shufflejoin/internal/plancache"
	"shufflejoin/internal/shuffle"
	"shufflejoin/internal/simnet"
)

// Stage is one phase of query execution. Stages run strictly in order on
// the orchestration goroutine; a stage reads its inputs from the
// QueryContext and writes its products back into it (and into
// QueryContext.Report). A stage may use worker goroutines internally but
// must merge their results deterministically before returning, and must
// record spans and metrics only from the orchestration goroutine.
type Stage interface {
	Name() string
	Run(qc *QueryContext) error
}

// DefaultStages returns the standard execution pipeline in order.
func DefaultStages() []Stage {
	return []Stage{LogicalPlan{}, SliceMap{}, PhysicalPlan{}, Align{}, Compare{}, Assemble{}}
}

// QueryContext is the shared state one query threads through its stages:
// the immutable query inputs (cluster, sources, predicate, destination,
// options) plus each stage's products. The observability trace rides in
// Opt.Trace; stages retire spans into it as they finish, so a registered
// obs.SpanSink sees the query's progress incrementally.
type QueryContext struct {
	Cluster     *cluster.Cluster
	Left, Right *cluster.Distributed
	Pred        join.Predicate
	Out         *array.Schema // destination schema τ (may be nil / dimension-less)
	Opt         *Options
	Report      *Report

	wallStart   time.Time
	explainOnly bool            // LogicalPlan stage: enumerate but do not select
	ctx         context.Context // resolved Opt.Ctx; checked between stages and per unit

	// Flight-recorder attachment (Execute; nil when recording is off).
	// Events are telemetry only: stages record decisions into fr but
	// never read it back, so recorded and unrecorded runs are
	// bit-for-bit identical.
	fr  *flight.Recorder
	qid uint32

	// Plan-cache state (LogicalPlan stage, only when Opt.Cache is set).
	sig      plancache.Signature // this query's cache signature
	cached   *plancache.Entry    // hit awaiting revalidation in PhysicalPlan
	planning *plancache.Planning // singleflight token; Finished after Store or on error

	// Gate state (Align/Compare stages, only when Opt.Gate is set).
	compareSlot bool // holding the gate's compare slot

	// Stage products, in the order they are produced.
	plans     []logical.Plan    // LogicalPlan: every valid plan, cheapest first
	plan      *logical.Plan     // LogicalPlan: the chosen plan
	spec      *shuffle.UnitSpec // SliceMap: join-unit geometry
	ssl, ssr  *shuffle.SliceSet // SliceMap: per-side slice maps (materializing path)
	rsl, rsr  *shuffle.RunSet   // SliceMap: per-side batch runs (streaming path)
	budget    *batch.Budget     // SliceMap: per-query memory accountant (streaming path)
	prob      *physical.Problem // PhysicalPlan: cost-model problem instance
	nodeUnits [][]int           // PhysicalPlan: units assigned to each node
	transfers []simnet.Transfer // Align: the shuffle's network transfers
	outArr    *array.Array      // Align: destination array (built pre-shuffle)
	proj      *projector        // Align: output-cell projector
	runner    *compareRunner    // Align: overlapped per-unit compare dispatcher
	nodes     []nodeOut         // Compare: merged per-node compare products
}

// streaming reports whether the query's data plane is the batch-run
// path (the default) rather than the materializing reference path.
func (qc *QueryContext) streaming() bool { return qc.rsl != nil }

// leftSizes / rightSizes report the slice statistics s_{i,j} from
// whichever slice map the query built.
func (qc *QueryContext) leftSizes() [][]int64 {
	if qc.streaming() {
		return qc.rsl.Sizes()
	}
	return qc.ssl.Sizes()
}

func (qc *QueryContext) rightSizes() [][]int64 {
	if qc.streaming() {
		return qc.rsr.Sizes()
	}
	return qc.ssr.Sizes()
}

// sliceCells returns the cells of unit u (both sides) mapped on a node.
func (qc *QueryContext) sliceCells(u, node int) int64 {
	if qc.streaming() {
		return qc.rsl.Count(u, node) + qc.rsr.Count(u, node)
	}
	return int64(len(qc.ssl.Slice(u, node))) + int64(len(qc.ssr.Slice(u, node)))
}

// NewQueryContext prepares a context for one join execution. opt is
// copied; stages normalize it in place.
func NewQueryContext(c *cluster.Cluster, dl, dr *cluster.Distributed, pred join.Predicate, out *array.Schema, opt Options) *QueryContext {
	o := opt
	return &QueryContext{
		Cluster:   c,
		Left:      dl,
		Right:     dr,
		Pred:      pred,
		Out:       out,
		Opt:       &o,
		Report:    &Report{},
		wallStart: time.Now(),
		ctx:       o.ctx(),
	}
}

// releaseCompareSlot returns the gate's compare slot if this query holds
// one; safe to call repeatedly.
func (qc *QueryContext) releaseCompareSlot() {
	if qc.compareSlot {
		qc.compareSlot = false
		qc.Opt.Gate.ReleaseCompare()
	}
}

// Execute runs the stages in order, stopping at the first error. Around
// the stages it maintains the query's observability surface: per-stage
// timings into Report.Stages (wall seconds plus the deterministic
// simulated seconds each stage added to the modeled makespan), a live
// Progress tracker delivered to Options.Hooks, and — when profiling is
// enabled — the EXPLAIN ANALYZE Profile assembled into Report.Profile
// after the last stage.
func Execute(qc *QueryContext, stages []Stage) error {
	opt := qc.Opt
	qc.fr = opt.flightRecorder()
	qc.qid = qc.fr.NextQID()
	pm := opt.postmortem()
	var prog *Progress
	if opt.Hooks != nil {
		prog = newProgress(opt.QueryLabel)
		opt.Hooks.QueryStarted(prog)
	}
	qc.fr.Record(flight.EvQueryStart, qc.qid, qc.fr.Label(opt.QueryLabel), 0, 0, 0)
	var stageName string
	defer func() {
		if r := recover(); r != nil {
			// A panicking stage still ships its own investigation: dump
			// the flight trail and whatever the query had produced, then
			// let the panic continue to the caller.
			qc.fr.Record(flight.EvPostmortem, qc.qid, qc.fr.Label("panic"), 0, 0, 0)
			capturePostmortem(pm, "panic", qc, prog, map[string]any{
				"panic": fmt.Sprint(r),
				"stage": stageName,
				"stack": string(debug.Stack()),
			})
			panic(r)
		}
	}()
	var execErr error
	for _, st := range stages {
		// Honor cancellation at every stage boundary (including before
		// the first stage, so a pre-canceled query never plans).
		if err := qc.ctx.Err(); err != nil {
			execErr = err
			break
		}
		start := time.Now()
		stageName = st.Name()
		prog.stageStarted(stageName)
		qc.fr.Record(flight.EvStageStart, qc.qid, qc.fr.Label(stageName), 0, 0, 0)
		alignBefore, compareBefore := qc.Report.AlignTime, qc.Report.CompareTime
		err := st.Run(qc)
		wall := time.Since(start)
		sim := (qc.Report.AlignTime - alignBefore) + (qc.Report.CompareTime - compareBefore)
		qc.Report.Stages = append(qc.Report.Stages, StageTiming{
			Stage:       stageName,
			WallSeconds: wall.Seconds(),
			SimSeconds:  sim,
		})
		qc.fr.Record(flight.EvStageFinish, qc.qid, qc.fr.Label(stageName), int64(wall), flight.F(sim), 0)
		prog.stageFinished(wall)
		if err != nil {
			execErr = err
			break
		}
	}
	// Error exits can leave gate or singleflight state held mid-stage;
	// release both so neither a compare slot nor concurrent planners for
	// this signature stay blocked. Both are no-ops on the success path
	// (stages release the slot and Finish after Store themselves).
	if opt.Gate != nil {
		qc.releaseCompareSlot()
	}
	qc.planning.Finish()
	if execErr == nil && (opt.Profile || opt.Hooks != nil) {
		qc.Report.Profile = buildProfile(qc)
	}
	if tr := opt.Trace; tr.Enabled() {
		reg := tr.Metrics()
		reg.Counter("pipeline.query_count").Add(1)
		if execErr != nil {
			reg.Counter("pipeline.query_errors").Add(1)
		} else {
			// Align+compare, not Report.Total: Total folds in real
			// planning wall-time, and the histogram must stay
			// bit-identical at every Parallelism setting (trace
			// fingerprints hash it exactly).
			reg.Histogram("pipeline.modeled_seconds", obs.PowersOf2Buckets(1, 12)).Observe(qc.Report.AlignTime + qc.Report.CompareTime)
		}
	}
	wall := time.Since(qc.wallStart)
	if execErr != nil {
		qc.fr.Record(flight.EvQueryError, qc.qid, qc.fr.Label(stageName), qc.fr.Label(execErr.Error()), 0, 0)
		canceled := errors.Is(execErr, context.Canceled) || errors.Is(execErr, context.DeadlineExceeded)
		if !canceled {
			// Cancellation and timeouts are the caller's decision, not an
			// engine failure — no diagnostic bundle for those.
			reason := "query-error"
			switch {
			case errors.Is(execErr, batch.ErrBudget):
				reason = "strict-budget"
			case strings.Contains(execErr.Error(), "StrictBounds"):
				reason = "strict-bounds"
			}
			qc.fr.Record(flight.EvPostmortem, qc.qid, qc.fr.Label(reason), 0, 0, 0)
			capturePostmortem(pm, reason, qc, prog, map[string]any{
				"error": execErr.Error(),
				"stage": stageName,
			})
		}
	} else {
		qc.fr.Record(flight.EvQueryFinish, qc.qid, qc.Report.Matches,
			flight.F(qc.Report.AlignTime+qc.Report.CompareTime), int64(wall), 0)
		if pm != nil && pm.SlowQuery > 0 && wall >= pm.SlowQuery {
			qc.fr.Record(flight.EvPostmortem, qc.qid, qc.fr.Label("slow-query"), 0, 0, 0)
			capturePostmortem(pm, "slow-query", qc, prog, map[string]any{
				"wall":      wall.String(),
				"threshold": pm.SlowQuery.String(),
			})
		}
	}
	if prog != nil {
		prog.finish(execErr != nil)
		opt.Hooks.QueryFinished(prog, qc.Report, execErr)
	}
	return execErr
}

// capturePostmortem assembles a bundle's evidence sections from the
// query's current state and writes it through pm. Capture errors are
// swallowed: a failing diagnostic dump must never mask the query's own
// outcome (and the bundle cap makes over-capture routine, not
// exceptional).
func capturePostmortem(pm *flight.Postmortem, reason string, qc *QueryContext, prog *Progress, failure map[string]any) {
	if pm == nil {
		return
	}
	sections := []flight.Section{
		{Name: "failure", Value: failure},
		{Name: "report", Value: reportDigest(qc.Report)},
	}
	if qc.Report.Profile != nil {
		sections = append(sections, flight.Section{Name: "profile", Value: qc.Report.Profile})
	} else if prof := buildProfileSafe(qc); prof != nil {
		sections = append(sections, flight.Section{Name: "profile", Value: prof})
	}
	if prog != nil {
		sections = append(sections, flight.Section{Name: "progress", Value: prog.Snapshot()})
	}
	pm.Capture(reason, sections...)
}

// buildProfileSafe assembles the EXPLAIN ANALYZE profile for a bundle
// even when the query died mid-pipeline, shielding the dump from
// secondary panics over half-built stage products.
func buildProfileSafe(qc *QueryContext) (p *Profile) {
	defer func() { recover() }()
	return buildProfile(qc)
}

// reportDigest is the bundle's report section: the Report minus its
// materialized output array (which can be arbitrarily large and is not
// diagnostic evidence).
func reportDigest(rep *Report) map[string]any {
	if rep == nil {
		return nil
	}
	return map[string]any{
		"plan_source":           rep.PlanSource,
		"cache_outcome":         rep.CacheOutcome,
		"selectivity":           rep.Selectivity,
		"stages":                rep.Stages,
		"plan_seconds":          rep.PlanTime,
		"align_seconds":         rep.AlignTime,
		"compare_seconds":       rep.CompareTime,
		"total_seconds":         rep.Total,
		"matches":               rep.Matches,
		"cells_moved":           rep.CellsMoved,
		"node_compare_seconds":  rep.NodeCompareTime,
		"unit_cells":            rep.UnitCells,
		"skew":                  rep.Skew,
		"straggler_node":        rep.StragglerNode,
		"lock_wait_seconds":     rep.LockWaitSeconds,
		"peak_batch_bytes":      rep.PeakBatchBytes,
		"memory_overflow_bytes": rep.MemoryOverflowBytes,
		"clamped_cells":         rep.ClampedCells,
		"wall":                  rep.WallTime.String(),
	}
}

// Run executes τ = left ⋈ right over the cluster through the full
// pipeline.
func Run(c *cluster.Cluster, leftName, rightName string, pred join.Predicate, out *array.Schema, opt Options) (*Report, error) {
	dl, err := c.Catalog.Lookup(leftName)
	if err != nil {
		return nil, err
	}
	dr, err := c.Catalog.Lookup(rightName)
	if err != nil {
		return nil, err
	}
	return RunDistributed(c, dl, dr, pred, out, opt)
}

// RunDistributed is Run for already-resolved distributed arrays.
func RunDistributed(c *cluster.Cluster, dl, dr *cluster.Distributed, pred join.Predicate, out *array.Schema, opt Options) (*Report, error) {
	qc := NewQueryContext(c, dl, dr, pred, out, opt)
	if err := Execute(qc, DefaultStages()); err != nil {
		return nil, err
	}
	return qc.Report, nil
}

// Explanation describes the optimizer's view of a query without running
// it: every valid logical plan with its modeled cost, cheapest first.
type Explanation struct {
	Selectivity float64
	Units       string // join-unit description of the chosen plan
	NumUnits    int
	Plans       []logical.Plan
}

// Explain runs only the LogicalPlan stage: it enumerates and costs the
// logical plans for a join without executing it.
func Explain(c *cluster.Cluster, dl, dr *cluster.Distributed, pred join.Predicate, out *array.Schema, opt Options) (*Explanation, error) {
	qc := NewQueryContext(c, dl, dr, pred, out, opt)
	qc.explainOnly = true
	if err := (LogicalPlan{}).Run(qc); err != nil {
		return nil, err
	}
	return &Explanation{
		Selectivity: qc.Report.Selectivity,
		Units:       qc.plans[0].Units.String(),
		NumUnits:    qc.plans[0].NumUnits,
		Plans:       qc.plans,
	}, nil
}
