package pipeline_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/batch"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/pipeline"
)

// TestStreamingMatchesMaterialized is the data-plane differential test:
// the default streaming execution is bit-identical to the materializing
// reference path — output cells, join statistics, modeled times, and
// per-node diagnostics — for every algorithm, batch size, parallelism,
// and compare mode. (Trace fingerprints are intentionally NOT compared
// across data planes: the streaming plane registers memory gauges the
// reference plane does not have.)
func TestStreamingMatchesMaterialized(t *testing.T) {
	a := buildArray("A<v:int>[i=1,300,30]", 5, 150, 30)
	b := buildArray("B<w:int>[j=1,300,30]", 6, 160, 30)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	out := array.MustParseSchema("T<i:int, j:int>[v=0,29,6]")

	run := func(t *testing.T, algo join.Algorithm, par, batchSize int, barrier, materialize bool) *pipeline.Report {
		t.Helper()
		c := newCluster(t, 4, a.Clone(), b.Clone())
		rep, err := pipeline.Run(c, "A", "B", pred, out, pipeline.Options{
			ForceAlgo:   &algo,
			Logical:     logical.PlanOptions{Selectivity: 0.5},
			Parallelism: par,
			Barrier:     barrier,
			BatchSize:   batchSize,
			Materialize: materialize,
		})
		if err != nil {
			t.Fatalf("Run(algo=%v par=%d batch=%d barrier=%v mat=%v): %v",
				algo, par, batchSize, barrier, materialize, err)
		}
		return rep
	}

	for _, algo := range []join.Algorithm{join.Hash, join.Merge, join.NestedLoop} {
		// One reference run per algorithm; every streaming configuration
		// must reproduce it exactly.
		want := run(t, algo, 1, 0, true, true)
		wantCells := cellsOf(want.Output)
		for _, batchSize := range []int{1, 7, 1024} {
			for _, par := range []int{1, 4, 0} {
				for _, barrier := range []bool{false, true} {
					name := fmt.Sprintf("%v/batch=%d/par=%d/barrier=%v", algo, batchSize, par, barrier)
					t.Run(name, func(t *testing.T) {
						got := run(t, algo, par, batchSize, barrier, false)
						if got.Matches != want.Matches {
							t.Errorf("Matches = %d, want %d", got.Matches, want.Matches)
						}
						if got.JoinStats != want.JoinStats {
							t.Errorf("JoinStats = %+v, want %+v", got.JoinStats, want.JoinStats)
						}
						if got.CellsMoved != want.CellsMoved {
							t.Errorf("CellsMoved = %d, want %d", got.CellsMoved, want.CellsMoved)
						}
						if got.ClampedCells != want.ClampedCells {
							t.Errorf("ClampedCells = %d, want %d", got.ClampedCells, want.ClampedCells)
						}
						if got.AlignTime != want.AlignTime {
							t.Errorf("AlignTime = %v, want %v", got.AlignTime, want.AlignTime)
						}
						if got.CompareTime != want.CompareTime {
							t.Errorf("CompareTime = %v, want %v", got.CompareTime, want.CompareTime)
						}
						if !reflect.DeepEqual(got.NodeCompareTime, want.NodeCompareTime) {
							t.Errorf("NodeCompareTime = %v, want %v", got.NodeCompareTime, want.NodeCompareTime)
						}
						if !reflect.DeepEqual(cellsOf(got.Output), wantCells) {
							t.Errorf("output cells differ between streaming and materialized execution")
						}
						if got.PeakBatchBytes <= 0 {
							t.Errorf("streaming run reports PeakBatchBytes = %d, want > 0", got.PeakBatchBytes)
						}
						if want.PeakBatchBytes != 0 {
							t.Errorf("materialized run reports PeakBatchBytes = %d, want 0", want.PeakBatchBytes)
						}
					})
				}
			}
		}
	}
}

// TestStreamingPeakDeterministic pins the memory gauge itself: the
// reported peak is bit-identical across parallelism and compare modes
// (batch charges happen at SliceMap, releases strictly after — the peak
// is the total mapped footprint regardless of execution interleaving).
func TestStreamingPeakDeterministic(t *testing.T) {
	a := buildArray("A<v:int>[i=1,200,20]", 7, 120, 25)
	b := buildArray("B<w:int>[j=1,200,20]", 8, 110, 25)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}

	var wantPeak int64 = -1
	for _, par := range []int{1, 4, 0} {
		for _, barrier := range []bool{false, true} {
			c := newCluster(t, 3, a.Clone(), b.Clone())
			rep, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{
				Logical:     logical.PlanOptions{Selectivity: 0.5},
				Parallelism: par,
				Barrier:     barrier,
				BatchSize:   16,
			})
			if err != nil {
				t.Fatal(err)
			}
			if wantPeak < 0 {
				wantPeak = rep.PeakBatchBytes
			}
			if rep.PeakBatchBytes != wantPeak {
				t.Errorf("par=%d barrier=%v: PeakBatchBytes = %d, want %d",
					par, barrier, rep.PeakBatchBytes, wantPeak)
			}
		}
	}
	if wantPeak <= 0 {
		t.Fatalf("PeakBatchBytes = %d, want > 0", wantPeak)
	}
}

// TestMemoryBudgetCounted: an undersized budget in the default counted
// mode completes the query and reports the overflow, mirroring the
// ClampedCells convention.
func TestMemoryBudgetCounted(t *testing.T) {
	a := buildArray("A<v:int>[i=1,200,20]", 9, 120, 25)
	b := buildArray("B<w:int>[j=1,200,20]", 10, 110, 25)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := newCluster(t, 3, a, b)
	rep, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{
		Logical:      logical.PlanOptions{Selectivity: 0.5},
		MemoryBudget: 256,
	})
	if err != nil {
		t.Fatalf("counted overflow must not fail the query: %v", err)
	}
	if rep.MemoryOverflowBytes <= 0 {
		t.Errorf("MemoryOverflowBytes = %d, want > 0", rep.MemoryOverflowBytes)
	}
	if got, want := rep.MemoryOverflowBytes, rep.PeakBatchBytes-256; got != want {
		t.Errorf("MemoryOverflowBytes = %d, want peak-budget = %d", got, want)
	}
	if rep.Matches == 0 {
		t.Error("overflowing query produced no matches; fixture broken")
	}
}

// TestMemoryBudgetStrict: the same undersized budget in strict mode
// fails the query with batch.ErrBudget.
func TestMemoryBudgetStrict(t *testing.T) {
	a := buildArray("A<v:int>[i=1,200,20]", 9, 120, 25)
	b := buildArray("B<w:int>[j=1,200,20]", 10, 110, 25)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := newCluster(t, 3, a, b)
	_, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{
		Logical:      logical.PlanOptions{Selectivity: 0.5},
		MemoryBudget: 256,
		StrictMemory: true,
	})
	if !errors.Is(err, batch.ErrBudget) {
		t.Fatalf("err = %v, want batch.ErrBudget", err)
	}
}

// TestStreamingFingerprintsPinned: within the streaming plane, trace
// fingerprints (which now cover the memory gauges) stay bit-identical
// across parallelism — the same guarantee the engine makes for every
// other metric.
func TestStreamingFingerprintsPinned(t *testing.T) {
	a := buildArray("A<v:int>[i=1,200,20]", 11, 100, 20)
	b := buildArray("B<w:int>[j=1,200,20]", 12, 90, 20)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	var want string
	for i, par := range []int{1, 4, 0} {
		c := newCluster(t, 3, a.Clone(), b.Clone())
		tr := obs.New("streaming")
		_, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{
			Logical:     logical.PlanOptions{Selectivity: 0.5},
			Parallelism: par,
			Trace:       tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		fp := tr.Fingerprint()
		if i == 0 {
			want = fp
		} else if fp != want {
			t.Errorf("par=%d: fingerprint diverged", par)
		}
	}
}
