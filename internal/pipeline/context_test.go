package pipeline_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"shufflejoin/internal/join"
	"shufflejoin/internal/pipeline"
	"shufflejoin/internal/plancache"
	"shufflejoin/internal/sched"
)

// TestPreCanceledContext pins the stage-boundary check: an already-
// canceled context fails the query before any stage runs, reporting
// context.Canceled via errors.Is.
func TestPreCanceledContext(t *testing.T) {
	a := buildArray("A<v:int>[i=1,300,30]", 5, 150, 30)
	b := buildArray("B<w:int>[j=1,300,30]", 6, 160, 30)
	c := newCluster(t, 4, a, b)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDeadlineExceeded pins the timeout path: an expired deadline
// surfaces as context.DeadlineExceeded.
func TestDeadlineExceeded(t *testing.T) {
	a := buildArray("A<v:int>[i=1,300,30]", 5, 150, 30)
	b := buildArray("B<w:int>[j=1,300,30]", 6, 160, 30)
	c := newCluster(t, 4, a, b)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{Ctx: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestContextIgnoredWhenDone pins that a live context changes nothing: a
// query with a background context and one with no context produce
// identical results.
func TestContextIgnoredWhenDone(t *testing.T) {
	a := buildArray("A<v:int>[i=1,300,30]", 5, 150, 30)
	b := buildArray("B<w:int>[j=1,300,30]", 6, 160, 30)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}

	run := func(opt pipeline.Options) *pipeline.Report {
		c := newCluster(t, 4, a.Clone(), b.Clone())
		rep, err := pipeline.Run(c, "A", "B", pred, nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	plain := run(pipeline.Options{})
	ctxed := run(pipeline.Options{Ctx: context.Background()})
	reportsEquivalent(t, "ctx-vs-none", ctxed, plain)
}

// TestGatedEquivalence is the scheduler's determinism boundary: a query
// executed through a sched.Ticket gate (shared sim pool, compare slots,
// memory reservation) produces bit-identical results to an ungated run,
// in both overlap modes.
func TestGatedEquivalence(t *testing.T) {
	a := buildArray("A<v:int>[i=1,300,30]", 5, 150, 30)
	b := buildArray("B<w:int>[j=1,300,30]", 6, 160, 30)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}

	s := sched.New(sched.Config{MaxQueries: 2, AlignSlots: 1, CompareSlots: 1, PoolBytes: 1 << 30})
	for _, barrier := range []bool{false, true} {
		t.Run(fmt.Sprintf("barrier=%v", barrier), func(t *testing.T) {
			run := func(gate pipeline.Gate) *pipeline.Report {
				c := newCluster(t, 4, a.Clone(), b.Clone())
				rep, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{
					Ctx:     context.Background(),
					Gate:    gate,
					Barrier: barrier,
				})
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			plain := run(nil)
			tk, err := s.Admit(context.Background(), sched.Interactive, 0, "gated")
			if err != nil {
				t.Fatal(err)
			}
			gated := run(tk)
			tk.Done()
			reportsEquivalent(t, "gated-vs-plain", gated, plain)
			snap := s.Snapshot()
			if snap.AlignSlotsFree != 1 || snap.CompareSlotsFree != 1 {
				t.Fatalf("slots leaked: %+v", snap)
			}
		})
	}
}

// TestPlanCacheSingleflight pins the satellite: K concurrent misses on
// one signature plan once — one miss, K-1 suppressed hits sharing the
// entry — and every query returns identical results.
func TestPlanCacheSingleflight(t *testing.T) {
	a := buildArray("A<v:int>[i=1,300,30]", 5, 150, 30)
	b := buildArray("B<w:int>[j=1,300,30]", 6, 160, 30)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	cache := plancache.New()

	const K = 8
	reps := make([]*pipeline.Report, K)
	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := newCluster(t, 4, a.Clone(), b.Clone())
			reps[i], errs[i] = pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{
				Cache: cache,
				Ctx:   context.Background(),
			})
		}(i)
	}
	wg.Wait()

	var missed, shared int
	for i := 0; i < K; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		switch reps[i].CacheOutcome {
		case "miss":
			missed++
		case "suppressed", "hit":
			shared++
		default:
			t.Fatalf("query %d: CacheOutcome = %q", i, reps[i].CacheOutcome)
		}
		reportsEquivalent(t, fmt.Sprintf("query %d vs 0", i), reps[i], reps[0])
	}
	if missed != 1 || shared != K-1 {
		t.Fatalf("outcomes: %d misses, %d shared, want 1/%d", missed, shared, K-1)
	}
	st := cache.Stats()
	if st.Misses != 1 {
		t.Fatalf("stats.Misses = %d, want 1 (singleflight)", st.Misses)
	}
	if st.Hits != K-1 {
		t.Fatalf("stats.Hits = %d, want %d", st.Hits, K-1)
	}
	// How many of the K-1 hits waited on the planner (Suppressed) vs
	// arrived after Store is interleaving-dependent; the deterministic
	// suppression contract is pinned in plancache's own unit test.
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", cache.Len())
	}
}
