package pipeline_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/physical"
	"shufflejoin/internal/pipeline"
	"shufflejoin/internal/plancache"
	"shufflejoin/internal/stats"
)

// zipfArray ingests n cells whose coordinates follow a Zipf(alpha)
// distribution over the chunk grid — the re-ingest-under-different-skew
// scenario the cache signature must distinguish. Values are unique per
// coordinate so attribute-joined outputs have collision-free coords.
func zipfArray(schema string, seed int64, n int, alpha float64) *array.Array {
	s := array.MustParseSchema(schema)
	a := array.MustNew(s)
	rng := rand.New(rand.NewSource(seed))
	d := s.Dims[0]
	chunks := int((d.Extent() + d.ChunkInterval - 1) / d.ChunkInterval)
	w := stats.ZipfWeights(chunks, alpha)
	used := make(map[int64]bool)
	for len(used) < n {
		// Pick a chunk by Zipf weight, then a free coordinate inside it.
		r, ch := rng.Float64(), 0
		for ; ch < chunks-1 && r >= w[ch]; ch++ {
			r -= w[ch]
		}
		base := d.Start + int64(ch)*d.ChunkInterval
		c := base + rng.Int63n(d.ChunkInterval)
		if c > d.End || used[c] {
			continue
		}
		used[c] = true
		a.MustPut([]int64{c}, []array.Value{array.IntValue(c)})
	}
	a.SortAll()
	return a
}

func attrPredVW() join.Predicate {
	return join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
}

// reportsEquivalent compares the determinism-relevant fields of two
// Reports: everything except wall-clock timings and planner labels.
func reportsEquivalent(t *testing.T, tag string, got, want *pipeline.Report) {
	t.Helper()
	if got.Matches != want.Matches {
		t.Errorf("%s: Matches = %d, want %d", tag, got.Matches, want.Matches)
	}
	if got.JoinStats != want.JoinStats {
		t.Errorf("%s: JoinStats = %+v, want %+v", tag, got.JoinStats, want.JoinStats)
	}
	if got.CellsMoved != want.CellsMoved {
		t.Errorf("%s: CellsMoved = %d, want %d", tag, got.CellsMoved, want.CellsMoved)
	}
	if got.AlignTime != want.AlignTime || got.CompareTime != want.CompareTime {
		t.Errorf("%s: modeled times %v/%v, want %v/%v",
			tag, got.AlignTime, got.CompareTime, want.AlignTime, want.CompareTime)
	}
	if got.Selectivity != want.Selectivity {
		t.Errorf("%s: Selectivity = %v, want %v", tag, got.Selectivity, want.Selectivity)
	}
	if !reflect.DeepEqual(cellsOf(got.Output), cellsOf(want.Output)) {
		t.Errorf("%s: output cells differ", tag)
	}
}

// TestPlanCacheHitBitIdentical is the cache's core contract: a cache-hit
// execution returns bit-for-bit identical Results to the cold run that
// populated the entry, at every Parallelism setting.
func TestPlanCacheHitBitIdentical(t *testing.T) {
	a := zipfArray("A<v:int>[i=1,400,25]", 3, 200, 1.0)
	b := zipfArray("B<w:int>[j=1,400,25]", 4, 180, 1.0)
	out := array.MustParseSchema("T<i:int, j:int>[v=1,400,25]")

	for _, par := range []int{1, 4, 0} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			cache := plancache.New()
			run := func() *pipeline.Report {
				c := newCluster(t, 4, a.Clone(), b.Clone())
				rep, err := pipeline.Run(c, "A", "B", attrPredVW(), out, pipeline.Options{
					Cache:       cache,
					Parallelism: par,
				})
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			cold := run()
			if cold.PlanSource != pipeline.PlanSourceFull {
				t.Fatalf("cold PlanSource = %q, want full", cold.PlanSource)
			}
			hit := run()
			if hit.PlanSource != pipeline.PlanSourceCached {
				t.Fatalf("second run PlanSource = %q, want cached", hit.PlanSource)
			}
			if !reflect.DeepEqual(hit.Physical.Assignment, cold.Physical.Assignment) {
				t.Error("cached assignment differs from the one stored")
			}
			reportsEquivalent(t, "cached-vs-cold", hit, cold)

			s := cache.Stats()
			if s.Hits != 1 || s.Misses != 1 || s.Rejects != 0 {
				t.Errorf("cache stats = %+v, want 1 hit / 1 miss", s)
			}
		})
	}
}

// TestPlanCacheMissOnSkewDrift re-ingests the same schema under a
// different Zipf α: the skew fingerprint changes, so the second query
// must miss instead of replaying a plan computed for other statistics.
func TestPlanCacheMissOnSkewDrift(t *testing.T) {
	cache := plancache.New()
	pred := attrPredVW()
	run := func(alpha float64, seed int64) *pipeline.Report {
		a := zipfArray("A<v:int>[i=1,400,25]", seed, 200, alpha)
		b := zipfArray("B<w:int>[j=1,400,25]", seed+1, 180, alpha)
		c := newCluster(t, 4, a, b)
		rep, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	run(0.0, 3)
	rep := run(1.5, 3)
	if rep.PlanSource == pipeline.PlanSourceCached {
		t.Fatal("query after skew drift replayed the cached plan")
	}
	s := cache.Stats()
	if s.Hits != 0 || s.Misses != 2 {
		t.Errorf("cache stats = %+v, want 2 misses and no hits", s)
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2 distinct signatures", cache.Len())
	}
}

// TestPlanCacheSignatureSensitivity pins what the signature must react
// to: skew profile, node count, predicate, options — and what it must
// not (a bit-identical re-ingest).
func TestPlanCacheSignatureSensitivity(t *testing.T) {
	mk := func(alpha float64, seed int64) *array.Array {
		return zipfArray("A<v:int>[i=1,400,25]", seed, 200, alpha)
	}
	sig := func(k int, alpha float64, opt pipeline.Options) plancache.Signature {
		la, lb := mk(alpha, 3), mk(alpha, 4)
		lb.Schema.Name = "B"
		c := cluster.MustNew(k)
		dl := c.Load(la, cluster.RoundRobin)
		dr := c.Load(lb, cluster.RoundRobin)
		return pipeline.PlanSignature(c, dl, dr,
			join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "v"}}}, nil, opt)
	}
	base := sig(4, 1.0, pipeline.Options{})
	if again := sig(4, 1.0, pipeline.Options{}); again != base {
		t.Error("bit-identical re-ingest changed the signature")
	}
	if sig(8, 1.0, pipeline.Options{}) == base {
		t.Error("node count not in the signature")
	}
	if sig(4, 0.0, pipeline.Options{}) == base {
		t.Error("skew profile not in the signature")
	}
	if sig(4, 1.0, pipeline.Options{Planner: physical.TabuPlanner{}}) == base {
		t.Error("planner choice not in the signature")
	}
	if sig(4, 1.0, pipeline.Options{Logical: logical.PlanOptions{Selectivity: 0.5}}) == base {
		t.Error("caller selectivity not in the signature")
	}
}

// TestPlanCacheRevalidateReject seeds a stale entry under the query's
// true signature (the situation a fingerprint collision would produce):
// the hit must be rejected by re-costing, counted, evicted, and the
// query must fall back to fresh planning with correct results.
func TestPlanCacheRevalidateReject(t *testing.T) {
	a := zipfArray("A<v:int>[i=1,400,25]", 3, 200, 1.2)
	b := zipfArray("B<w:int>[j=1,400,25]", 4, 180, 1.2)
	out := array.MustParseSchema("T<i:int, j:int>[v=1,400,25]")
	pred := attrPredVW()

	// Reference run without any cache.
	cRef := newCluster(t, 4, a.Clone(), b.Clone())
	want, err := pipeline.Run(cRef, "A", "B", pred, out, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Populate a cache, then poison the stored entry's model so its
	// re-costed total drifts far past the threshold.
	cache := plancache.New()
	c1 := newCluster(t, 4, a.Clone(), b.Clone())
	if _, err := pipeline.Run(c1, "A", "B", pred, out, pipeline.Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	dl, _ := c1.Catalog.Lookup("A")
	dr, _ := c1.Catalog.Lookup("B")
	sig := pipeline.PlanSignature(c1, dl, dr, pred, out, pipeline.Options{Cache: cache})
	e, ok := cache.Lookup(sig)
	if !ok {
		t.Fatal("populated cache misses its own signature")
	}
	stale := *e
	stale.Model.Total /= 100 // pretends to be 100x cheaper than reality
	cache.Store(sig, &stale)

	c2 := newCluster(t, 4, a.Clone(), b.Clone())
	got, err := pipeline.Run(c2, "A", "B", pred, out, pipeline.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got.PlanSource == pipeline.PlanSourceCached {
		t.Fatal("poisoned entry survived revalidation")
	}
	s := cache.Stats()
	if s.Rejects != 1 {
		t.Errorf("Rejects = %d, want 1", s.Rejects)
	}
	reportsEquivalent(t, "post-reject", got, want)

	// The replanning query must have replaced the stale entry: the next
	// run hits and revalidates cleanly.
	c3 := newCluster(t, 4, a.Clone(), b.Clone())
	again, err := pipeline.Run(c3, "A", "B", pred, out, pipeline.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if again.PlanSource != pipeline.PlanSourceCached {
		t.Errorf("post-reject rerun PlanSource = %q, want cached", again.PlanSource)
	}
}

// TestGreedyPolicyMatchesFullPlanning: the greedy fast path must return
// the same query answer as full planning. Output coordinates here are
// genuine data (dimension values and unique attribute keys), so the
// comparison is assignment-independent and bit-for-bit.
func TestGreedyPolicyMatchesFullPlanning(t *testing.T) {
	a := zipfArray("A<v:int>[i=1,400,25]", 3, 200, 1.0)
	b := zipfArray("B<w:int>[j=1,400,25]", 4, 180, 1.0)
	out := array.MustParseSchema("T<i:int, j:int>[v=1,400,25]")

	cases := []struct {
		name string
		pred join.Predicate
		out  *array.Schema
	}{
		{"attr-join", attrPredVW(), out},
		{"dim-join", join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "j"}}}, nil},
	}
	for _, tc := range cases {
		for _, par := range []int{1, 4, 0} {
			t.Run(fmt.Sprintf("%s/par=%d", tc.name, par), func(t *testing.T) {
				run := func(policy *plancache.Policy) *pipeline.Report {
					c := newCluster(t, 4, a.Clone(), b.Clone())
					rep, err := pipeline.Run(c, "A", "B", tc.pred, tc.out, pipeline.Options{
						Planner:     physical.TabuPlanner{},
						PlanPolicy:  policy,
						Parallelism: par,
					})
					if err != nil {
						t.Fatal(err)
					}
					return rep
				}
				full := run(nil)
				if full.PlanSource != pipeline.PlanSourceFull {
					t.Fatalf("full PlanSource = %q", full.PlanSource)
				}
				fast := run(&plancache.Policy{})
				if fast.PlanSource != pipeline.PlanSourceGreedy && fast.PlanSource != pipeline.PlanSourceFull {
					t.Fatalf("fast PlanSource = %q", fast.PlanSource)
				}
				if fast.Matches != full.Matches {
					t.Errorf("Matches = %d, want %d", fast.Matches, full.Matches)
				}
				if fast.JoinStats.Matches != full.JoinStats.Matches {
					t.Errorf("JoinStats.Matches = %d, want %d", fast.JoinStats.Matches, full.JoinStats.Matches)
				}
				if !reflect.DeepEqual(cellsOf(fast.Output), cellsOf(full.Output)) {
					t.Error("greedy-path output cells differ from full planning")
				}
			})
		}
	}
}

// TestGreedyPolicyDeterministicAcrossParallelism: the fast path obeys
// the engine's parallelism-determinism contract.
func TestGreedyPolicyDeterministicAcrossParallelism(t *testing.T) {
	a := zipfArray("A<v:int>[i=1,400,25]", 7, 200, 1.4)
	b := zipfArray("B<w:int>[j=1,400,25]", 8, 180, 1.4)
	var want *pipeline.Report
	for _, par := range []int{1, 4, 0} {
		c := newCluster(t, 4, a.Clone(), b.Clone())
		rep, err := pipeline.Run(c, "A", "B", attrPredVW(), nil, pipeline.Options{
			PlanPolicy:  &plancache.Policy{},
			Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = rep
			continue
		}
		if rep.PlanSource != want.PlanSource || rep.PlanRegret != want.PlanRegret {
			t.Errorf("par=%d: PlanSource/Regret %s/%v, want %s/%v",
				par, rep.PlanSource, rep.PlanRegret, want.PlanSource, want.PlanRegret)
		}
		reportsEquivalent(t, fmt.Sprintf("par=%d", par), rep, want)
	}
}

// TestPlanCacheWithPolicyCachesGreedyPlans: cache and policy compose —
// the first query plans greedily, the second replays it from the cache.
func TestPlanCacheWithPolicyCachesGreedyPlans(t *testing.T) {
	a := zipfArray("A<v:int>[i=1,400,25]", 3, 200, 1.0)
	b := zipfArray("B<w:int>[j=1,400,25]", 4, 180, 1.0)
	cache := plancache.New()
	run := func() *pipeline.Report {
		c := newCluster(t, 4, a.Clone(), b.Clone())
		rep, err := pipeline.Run(c, "A", "B", attrPredVW(), nil, pipeline.Options{
			Cache:      cache,
			PlanPolicy: &plancache.Policy{},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	first := run()
	if first.PlanSource != pipeline.PlanSourceGreedy && first.PlanSource != pipeline.PlanSourceFull {
		t.Fatalf("first PlanSource = %q", first.PlanSource)
	}
	second := run()
	if second.PlanSource != pipeline.PlanSourceCached {
		t.Fatalf("second PlanSource = %q, want cached", second.PlanSource)
	}
	reportsEquivalent(t, "cached-vs-greedy", second, first)
}
