package pipeline_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/pipeline"
)

func buildArray(schema string, seed int64, n int, domain int64) *array.Array {
	s := array.MustParseSchema(schema)
	a := array.MustNew(s)
	rng := rand.New(rand.NewSource(seed))
	used := make(map[int64]bool)
	for len(used) < n {
		c := rng.Int63n(s.Dims[0].Extent()) + s.Dims[0].Start
		if used[c] {
			continue
		}
		used[c] = true
		a.MustPut([]int64{c}, []array.Value{array.IntValue(rng.Int63n(domain))})
	}
	a.SortAll()
	return a
}

func newCluster(t *testing.T, k int, arrays ...*array.Array) *cluster.Cluster {
	t.Helper()
	c := cluster.MustNew(k)
	for _, a := range arrays {
		c.Load(a, cluster.RoundRobin)
	}
	return c
}

type cell struct {
	coords []int64
	attrs  []array.Value
}

func cellsOf(a *array.Array) []cell {
	var out []cell
	a.Scan(func(c []int64, attrs []array.Value) bool {
		out = append(out, cell{coords: append([]int64(nil), c...), attrs: append([]array.Value(nil), attrs...)})
		return true
	})
	return out
}

// TestOverlapMatchesBarrier is the pipeline's central equivalence
// guarantee: the default overlapped execution (unit comparison dispatched
// as slices land during the shuffle) produces bit-for-bit identical
// results — output cells, modeled times, skew diagnostics, join stats,
// and trace fingerprints — to the barrier reference path, for every join
// algorithm at every Parallelism setting.
func TestOverlapMatchesBarrier(t *testing.T) {
	a := buildArray("A<v:int>[i=1,300,30]", 5, 150, 30)
	b := buildArray("B<w:int>[j=1,300,30]", 6, 160, 30)
	attrPred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	dimPred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "j"}}}

	cases := []struct {
		name string
		pred join.Predicate
		out  *array.Schema
	}{
		{"attr-join-dim-output", attrPred, array.MustParseSchema("T<i:int, j:int>[v=0,29,6]")},
		{"dim-join-default-output", dimPred, nil},
		{"attr-join-row-output", attrPred, array.MustParseSchema("T<i:int, j:int>[]")},
	}

	run := func(t *testing.T, pred join.Predicate, out *array.Schema, algo join.Algorithm, par int, barrier bool) (*pipeline.Report, string) {
		t.Helper()
		c := newCluster(t, 4, a.Clone(), b.Clone())
		tr := obs.New("equivalence")
		rep, err := pipeline.Run(c, "A", "B", pred, out, pipeline.Options{
			ForceAlgo:   &algo,
			Logical:     logical.PlanOptions{Selectivity: 0.5},
			Parallelism: par,
			Barrier:     barrier,
			Trace:       tr,
		})
		if err != nil {
			t.Fatalf("Run(algo=%v par=%d barrier=%v): %v", algo, par, barrier, err)
		}
		return rep, tr.Fingerprint()
	}

	for _, tc := range cases {
		algos := []join.Algorithm{join.Hash, join.Merge, join.NestedLoop}
		if tc.out == nil {
			// The dim:dim plan space does not enumerate every algorithm;
			// exercise the planner's own choice instead of forcing one.
			algos = algos[:0]
			for _, al := range []join.Algorithm{join.Merge} {
				algos = append(algos, al)
			}
		}
		for _, algo := range algos {
			for _, par := range []int{1, 4, 0} {
				name := fmt.Sprintf("%s/%v/par=%d", tc.name, algo, par)
				t.Run(name, func(t *testing.T) {
					want, wantFP := run(t, tc.pred, tc.out, algo, par, true)
					got, gotFP := run(t, tc.pred, tc.out, algo, par, false)

					if got.Matches != want.Matches {
						t.Errorf("Matches = %d, want %d", got.Matches, want.Matches)
					}
					if got.CellsMoved != want.CellsMoved {
						t.Errorf("CellsMoved = %d, want %d", got.CellsMoved, want.CellsMoved)
					}
					if got.ClampedCells != want.ClampedCells {
						t.Errorf("ClampedCells = %d, want %d", got.ClampedCells, want.ClampedCells)
					}
					if got.JoinStats != want.JoinStats {
						t.Errorf("JoinStats = %+v, want %+v", got.JoinStats, want.JoinStats)
					}
					if got.AlignTime != want.AlignTime {
						t.Errorf("AlignTime = %v, want %v (must be bit-identical)", got.AlignTime, want.AlignTime)
					}
					if got.CompareTime != want.CompareTime {
						t.Errorf("CompareTime = %v, want %v (must be bit-identical)", got.CompareTime, want.CompareTime)
					}
					if !reflect.DeepEqual(got.NodeCompareTime, want.NodeCompareTime) {
						t.Errorf("NodeCompareTime = %v, want %v", got.NodeCompareTime, want.NodeCompareTime)
					}
					if got.Skew != want.Skew || got.StragglerNode != want.StragglerNode {
						t.Errorf("Skew/Straggler = %v/%d, want %v/%d", got.Skew, got.StragglerNode, want.Skew, want.StragglerNode)
					}
					if got.LockWaitSeconds != want.LockWaitSeconds {
						t.Errorf("LockWaitSeconds = %v, want %v", got.LockWaitSeconds, want.LockWaitSeconds)
					}
					if got.Selectivity != want.Selectivity {
						t.Errorf("Selectivity = %v, want %v", got.Selectivity, want.Selectivity)
					}
					if !reflect.DeepEqual(cellsOf(got.Output), cellsOf(want.Output)) {
						t.Errorf("output cells differ between overlapped and barrier execution")
					}
					if gotFP != wantFP {
						t.Errorf("trace fingerprints differ:\n--- overlap ---\n%s\n--- barrier ---\n%s", gotFP, wantFP)
					}
				})
			}
		}
	}
}

// TestOverlapDeterministicAcrossParallelism locks the overlapped path's
// own determinism contract: identical fingerprints at Parallelism 1, 4,
// and 0 (one worker per CPU).
func TestOverlapDeterministicAcrossParallelism(t *testing.T) {
	a := buildArray("A<v:int>[i=1,300,30]", 11, 170, 25)
	b := buildArray("B<w:int>[j=1,300,30]", 12, 150, 25)
	out := array.MustParseSchema("T<i:int, j:int>[v=0,24,5]")
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	var base string
	for i, par := range []int{1, 4, 0} {
		c := newCluster(t, 4, a.Clone(), b.Clone())
		tr := obs.New("determinism")
		if _, err := pipeline.Run(c, "A", "B", pred, out, pipeline.Options{
			Logical:     logical.PlanOptions{Selectivity: 0.5},
			Parallelism: par,
			Trace:       tr,
		}); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		fp := tr.Fingerprint()
		if i == 0 {
			base = fp
		} else if fp != base {
			t.Fatalf("fingerprint at par=%d differs from par=1", par)
		}
	}
}

// streamProbe records each retired span's name together with whether the
// query had already completed at delivery time.
type streamProbe struct {
	mu    sync.Mutex
	done  *atomic.Bool
	names []string
	late  []string // spans delivered after query completion
}

func (p *streamProbe) SpanRetired(s *obs.Span) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.names = append(p.names, s.Name)
	if p.done.Load() {
		p.late = append(p.late, s.Name)
	}
}

// TestSpansStreamDuringQuery verifies the SpanSink contract end to end:
// stage spans are delivered incrementally while the query is still
// executing, not materialized afterwards.
func TestSpansStreamDuringQuery(t *testing.T) {
	a := buildArray("A<v:int>[i=1,200,20]", 21, 120, 40)
	b := buildArray("B<w:int>[j=1,200,20]", 22, 110, 40)
	out := array.MustParseSchema("T<i:int, j:int>[v=0,39,8]")
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	c := newCluster(t, 4, a, b)

	var done atomic.Bool
	probe := &streamProbe{done: &done}
	tr := obs.New("stream")
	tr.AddSink(probe)
	if _, err := pipeline.Run(c, "A", "B", pred, out, pipeline.Options{
		Logical: logical.PlanOptions{Selectivity: 0.5},
		Trace:   tr,
	}); err != nil {
		t.Fatal(err)
	}
	done.Store(true)

	if len(probe.late) != 0 {
		t.Errorf("%d spans delivered only after the query completed: %v", len(probe.late), probe.late)
	}
	seen := make(map[string]bool)
	for _, n := range probe.names {
		seen[n] = true
	}
	for _, stage := range []string{"plan.logical", "map.slices", "plan.physical", "align", "compare"} {
		if !seen[stage] {
			t.Errorf("stage span %q never retired to the sink (got %v)", stage, probe.names)
		}
	}
	// The align span must retire before the compare span: the sink sees
	// the pipeline's progress in stage order, mid-query.
	alignAt, compareAt := -1, -1
	for i, n := range probe.names {
		if n == "align" && alignAt == -1 {
			alignAt = i
		}
		if n == "compare" && compareAt == -1 {
			compareAt = i
		}
	}
	if alignAt == -1 || compareAt == -1 || alignAt > compareAt {
		t.Errorf("align span (idx %d) should retire before compare span (idx %d)", alignAt, compareAt)
	}
}
