package pipeline

import (
	"context"
	"fmt"
	"time"

	"shufflejoin/internal/array"
	"shufflejoin/internal/flight"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/par"
	"shufflejoin/internal/physical"
	"shufflejoin/internal/plancache"
	"shufflejoin/internal/simnet"
)

// Options configures a shuffle join run.
type Options struct {
	// Planner assigns join units to nodes; defaults to the Minimum
	// Bandwidth Heuristic.
	Planner physical.Planner
	// Logical tunes the logical plan enumeration (selectivity estimate,
	// hash bucket count). Nodes is filled in from the cluster.
	Logical logical.PlanOptions
	// Params are the cost-model constants m, b, p, t; zero value uses
	// DefaultParams.
	Params physical.CostParams
	// Scheduling selects the shuffle scheduler (default: greedy locks).
	Scheduling simnet.Scheduling
	// ForceAlgo restricts the logical planner to one join algorithm,
	// used by experiments that compare algorithms directly.
	ForceAlgo *join.Algorithm
	// TargetCellsPerChunk tunes join-dimension inference.
	TargetCellsPerChunk int64
	// Parallelism is the worker count for the execution hot paths (slice
	// mapping and join-unit cell comparison): 0 means one worker per CPU
	// (the default — parallel execution is on unless disabled), 1 forces
	// sequential execution, and n > 1 uses n workers. Output, join stats,
	// and modeled times are bit-for-bit identical at every setting.
	Parallelism int
	// Barrier disables the default overlapped execution — in which a join
	// unit's comparison is dispatched the moment its last inbound slice
	// lands in the simulated shuffle — and instead runs the pre-pipeline
	// reference path: a global alignment barrier followed by per-node
	// comparison. Output, modeled times, and trace fingerprints are
	// bit-for-bit identical in both modes at every Parallelism setting;
	// the knob exists for the equivalence test and for ablations.
	Barrier bool
	// Materialize switches the data plane back to the materializing
	// reference path: full per-cell tuple slice sets (shuffle.MapSideN)
	// and whole-unit Assemble copies, as the pre-streaming engine ran.
	// The default (false) is the pull-based columnar batch-streaming
	// path, whose results — output cells, join statistics, modeled
	// times — are bit-for-bit identical; the knob exists for the
	// differential tests and the memory benchmarks, the same way simnet
	// keeps its reference simulator.
	Materialize bool
	// BatchSize is the row capacity of the streaming path's columnar
	// batches (and thus the granularity of its memory accounting and
	// pull windows); 0 uses shuffle.DefaultBatchRows.
	BatchSize int
	// MemoryBudget caps the bytes of mapped batch storage the query may
	// hold in flight (8 bytes per stored coordinate and value; string
	// contents live in the per-query intern dictionary). 0 means
	// unlimited. By default overflow is counted, not fatal:
	// Report.MemoryOverflowBytes records how far the peak exceeded the
	// budget, mirroring the ClampedCells pattern. Ignored on the
	// materializing path.
	MemoryBudget int64
	// StrictMemory makes a MemoryBudget violation fail the query (with
	// an error wrapping batch.ErrBudget) instead of merely counting the
	// overflow — the memory analogue of StrictBounds.
	StrictMemory bool
	// StrictBounds makes the Assemble stage fail when an output cell's
	// coordinates fall outside the destination's dimension ranges instead
	// of silently clamping them (clamped cells can collide and overwrite
	// each other). Clamps are counted in Report.ClampedCells either way.
	StrictBounds bool
	// ExtraCarryLeft/ExtraCarryRight name additional source attributes to
	// carry through the shuffle (columns referenced only by SELECT
	// expressions).
	ExtraCarryLeft, ExtraCarryRight []string
	// ProjectFactory, when non-nil, builds a projector that computes the
	// output attribute values of each match instead of name-based field
	// mapping (SELECT expression evaluation). The factory runs after the
	// join schema is inferred; build per-field accessors with Accessor.
	// The returned function must be safe for concurrent use unless
	// Parallelism is 1.
	ProjectFactory func(js *logical.JoinSchema) (func(l, r *join.Tuple) []array.Value, error)
	// Trace, when non-nil, receives hierarchical spans (planning, align,
	// per-transfer, per-node compare) and skew/congestion metrics for the
	// run. Spans and metrics are recorded only from the orchestration
	// goroutine as stages retire, so the capture is bit-for-bit identical
	// at every Parallelism setting, and a registered obs.SpanSink sees
	// spans incrementally while the query is still executing. Nil
	// disables tracing at the cost of a nil check per call.
	Trace *obs.Trace
	// Cache, when non-nil, short-circuits planning for repeated queries:
	// before planning, the query's signature (schema shape, chunk grid,
	// skew-histogram fingerprint, node count, planning options) is looked
	// up, and a hit replays the stored logical plan and physical
	// assignment after a cheap revalidation against the current slice
	// statistics (plancache.Revalidate). Misses and revalidation rejects
	// plan normally and store the outcome. The cache is safe to share
	// across concurrent queries. Explain never consults it.
	Cache *plancache.Cache
	// PlanPolicy, when non-nil, enables the greedy planner fast path:
	// logical.GreedyChoose for the logical plan (unless ForceAlgo pins
	// the algorithm) and physical.GreedyPlanner for the assignment,
	// falling back to Planner when the greedy plan's predicted regret
	// against the analytic lower bound exceeds the policy's ε.
	PlanPolicy *plancache.Policy
	// Profile makes Execute assemble an EXPLAIN ANALYZE Profile into
	// Report.Profile after the last stage: per-stage timings, plan
	// provenance and candidate costs, shuffle totals, and per-node skew
	// diagnostics. Hooks imply Profile.
	Profile bool
	// Hooks, when non-nil, observes the query's lifecycle: QueryStarted
	// receives a live Progress tracker before the first stage, and
	// QueryFinished the final Report (profiled — Hooks imply Profile)
	// after the last. The obshttp Hub implements this to serve
	// /debug/inflight and the /debug/queries log.
	Hooks QueryHooks
	// QueryLabel identifies the query in profiles, progress trackers, and
	// query logs (typically the AQL text or an experiment label).
	QueryLabel string
	// Flight overrides the flight recorder the query's events are
	// recorded into. The recorder is ON by default: a nil Flight uses the
	// process-wide flight.Default ring. Recording is telemetry only — it
	// never feeds back into planning, execution, traces, or fingerprints
	// — and costs zero allocations per event in steady state.
	Flight *flight.Recorder
	// FlightOff disables flight recording for this query entirely.
	FlightOff bool
	// Postmortem overrides the diagnostic-bundle sink. When a query
	// panics, fails a strict budget/bounds check, errors, or breaches the
	// sink's SlowQuery threshold, Execute captures a bundle (recent
	// flight events, profile, progress, runtime state) into its
	// directory. Nil falls back to flight.DefaultPostmortem(), which is
	// itself nil unless SHUFFLEJOIN_POSTMORTEM_DIR is set or a default
	// was installed — so postmortems are off unless configured.
	Postmortem *flight.Postmortem
	// Ctx, when non-nil, threads cancellation and deadlines through the
	// query: Execute checks it between stages, and the compare runner
	// checks it per join-unit dispatch, so a canceled query stops within
	// one stage/unit boundary and its error reports context.Canceled or
	// context.DeadlineExceeded (wrapped, errors.Is-matchable). Nil means
	// context.Background() — no cancellation.
	Ctx context.Context
	// Gate, when non-nil, is the query's handle on scheduler-shared
	// stage resources: the Align stage borrows its simnet.Sim from the
	// gate's capped pool instead of the process sync.Pool, and the
	// Compare machinery holds a compare slot for the duration of
	// comparison work. Gating changes only when stages run, never what
	// they compute — outputs, modeled times, and profile fingerprints
	// are bit-identical with and without a gate. A sched.Ticket
	// satisfies this interface.
	Gate Gate
}

// Gate meters a query's access to scheduler-shared stage resources.
// Implementations must be safe for concurrent use; sched.Ticket is the
// canonical one. All methods may block until a resource frees or ctx
// is done.
type Gate interface {
	// AcquireSim borrows a reusable shuffle simulator from the shared
	// capped pool for the Align stage.
	AcquireSim(ctx context.Context) (*simnet.Sim, error)
	// ReleaseSim returns a borrowed simulator.
	ReleaseSim(*simnet.Sim)
	// AcquireCompare takes a compare-work slot; the pipeline holds it
	// from compare dispatch until the Compare stage folds its results.
	AcquireCompare(ctx context.Context) error
	// ReleaseCompare returns a compare-work slot.
	ReleaseCompare()
}

// flightRecorder resolves the query's flight recorder: FlightOff wins,
// then the explicit override, then the process default ring.
func (o *Options) flightRecorder() *flight.Recorder {
	if o.FlightOff {
		return nil
	}
	if o.Flight != nil {
		return o.Flight
	}
	return flight.Default
}

// postmortem resolves the query's diagnostic-bundle sink (may be nil).
func (o *Options) postmortem() *flight.Postmortem {
	if o.Postmortem != nil {
		return o.Postmortem
	}
	return flight.DefaultPostmortem()
}

// ctx resolves the query's context (Background when none was supplied).
func (o *Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// workers resolves the Parallelism knob to an effective worker count.
func (o *Options) workers() int { return par.Workers(o.Parallelism) }

// normalize fills the planning defaults stages rely on. It must run
// before any cache-signature computation so that explicit and defaulted
// options sign identically.
func (o *Options) normalize() {
	if o.Planner == nil {
		o.Planner = physical.MinBandwidthPlanner{}
	}
	if o.Params == (physical.CostParams{}) {
		o.Params = physical.DefaultParams()
	}
}

// Accessor resolves a source field of the join into an extractor over
// matched tuple pairs: dimensions read coordinates, attributes read carried
// values. arrayName may be empty to search both sides (left first).
func Accessor(js *logical.JoinSchema, arrayName, field string) (func(l, r *join.Tuple) array.Value, error) {
	src := js.Pred
	carry := [2]map[int]int{carryPositions(js.LeftCarry), carryPositions(js.RightCarry)}
	schemas := [2]*array.Schema{src.Left, src.Right}
	for side, s := range schemas {
		if arrayName != "" && arrayName != s.Name {
			continue
		}
		if i := s.DimIndex(field); i >= 0 {
			side, i := side, i
			return func(l, r *join.Tuple) array.Value {
				t := l
				if side == 1 {
					t = r
				}
				return array.IntValue(t.Coords[i])
			}, nil
		}
		if i := s.AttrIndex(field); i >= 0 {
			pos, ok := carry[side][i]
			if !ok {
				return nil, fmt.Errorf("pipeline: attribute %s.%s is not carried through the shuffle", s.Name, field)
			}
			side, pos := side, pos
			return func(l, r *join.Tuple) array.Value {
				t := l
				if side == 1 {
					t = r
				}
				return t.Attrs[pos]
			}, nil
		}
	}
	return nil, fmt.Errorf("pipeline: no field %s.%s in join sources", arrayName, field)
}

// Report is the outcome of one shuffle join: the chosen plans, the modeled
// phase durations (seconds), and the materialized output. Each field's
// comment names the pipeline stage that populates it.
type Report struct {
	// Logical is the chosen logical plan (LogicalPlan stage).
	Logical logical.Plan
	// Physical is the join-unit-to-node assignment and its modeled cost
	// breakdown (PhysicalPlan stage).
	Physical physical.Result

	// Selectivity is the output-cardinality estimate the logical planner
	// used — the caller's, or the catalog-statistics estimate when the
	// caller supplied none (LogicalPlan stage).
	Selectivity float64

	// PlanSource records how this query's plans were obtained: "cached"
	// (signature hit, revalidated), "greedy" (fast-path planners), or
	// "full" (complete enumeration and configured physical planner —
	// including greedy-path queries whose predicted regret forced the
	// fallback) (PhysicalPlan stage; LogicalPlan stage on cache hits).
	PlanSource string
	// PlanRegret is the greedy plan's predicted regret against the
	// analytic lower bound, when the greedy fast path ran; zero
	// otherwise (PhysicalPlan stage).
	PlanRegret float64
	// CacheOutcome records the plan cache's verdict for this query:
	// "hit", "suppressed" (a hit obtained by waiting on a concurrent
	// planner for the same signature — the singleflight path), "miss",
	// or "revalidate-reject" (a signature hit whose stored assignment
	// failed revalidation against fresh statistics). Empty when no
	// cache was attached (LogicalPlan/PhysicalPlan stages).
	CacheOutcome string

	// Stages is the per-stage timing log, in execution order: wall
	// seconds (nondeterministic) and the simulated seconds each stage
	// contributed to the modeled makespan (deterministic; the align and
	// compare stages' entries sum to AlignTime + CompareTime). Populated
	// by Execute for every query.
	Stages []StageTiming

	// Profile is the query's EXPLAIN ANALYZE digest, assembled after the
	// last stage when Options.Profile (or Options.Hooks) is set; nil
	// otherwise (Execute).
	Profile *Profile

	// Modeled phase durations in seconds, mirroring the paper's figures:
	// PlanTime is real planning wall-time (PhysicalPlan stage); AlignTime
	// is the simulated shuffle makespan (Align stage); CompareTime is the
	// slowest node's modeled cell comparison, including post-join output
	// sorting when the plan calls for it (Compare stage); Total is their
	// sum (Assemble stage).
	PlanTime    float64
	AlignTime   float64
	CompareTime float64
	Total       float64

	// Align is the full shuffle simulation result (Align stage).
	Align simnet.Result
	// JoinStats aggregates the join algorithm's comparison/match counters
	// over all join units (Compare stage).
	JoinStats join.Stats
	// Matches is JoinStats.Matches (Compare stage).
	Matches int64
	// CellsMoved is the network traffic of the chosen physical plan
	// (PhysicalPlan stage).
	CellsMoved int64

	// NodeCompareTime is each node's modeled comparison seconds under the
	// physical plan; CompareTime is its maximum (Compare stage).
	NodeCompareTime []float64
	// UnitCells is the per-join-unit cell total (both sides) the physical
	// planner assigned work by — the raw material of hot-unit skew
	// diagnostics (PhysicalPlan stage).
	UnitCells []int64
	// Skew is the straggler ratio of the comparison phase: the slowest
	// node's modeled compare time over the mean (1 = perfectly balanced,
	// 0 when no compare work exists) (Compare stage).
	Skew float64
	// StragglerNode is the node with the largest modeled compare time
	// (lowest id on ties), or -1 when no compare work exists (Compare
	// stage).
	StragglerNode int
	// LockWaitSeconds is the total simulated time senders spent stalled on
	// receiver write locks during data alignment — the shuffle-congestion
	// half of the skew picture (Align stage).
	LockWaitSeconds float64

	// PeakBatchBytes is the high-water mark of mapped batch storage the
	// query held in flight (both sides; 8 bytes per stored coordinate
	// and value). Because batch bytes only accumulate while slice
	// mapping runs and only drain as comparison retires join units, the
	// peak equals the total mapped bytes and is deterministic at every
	// Parallelism setting and in both overlap modes. Zero on the
	// materializing path (SliceMap stage).
	PeakBatchBytes int64
	// InternedStrings is the number of distinct string values the
	// query's intern dictionary holds after slice mapping; zero when no
	// string attributes flowed (SliceMap stage).
	InternedStrings int64
	// MemoryOverflowBytes is how far PeakBatchBytes exceeded
	// Options.MemoryBudget — the counted-mode analogue of ClampedCells.
	// Zero when within budget, unbudgeted, or materializing (SliceMap
	// stage).
	MemoryOverflowBytes int64

	// ClampedCells counts output cells whose coordinates fell outside the
	// destination's dimension ranges and were clamped onto the boundary.
	// Clamped cells can collide with real cells and overwrite them, so a
	// nonzero count is a data-fidelity warning (or an error under
	// Options.StrictBounds) (Assemble stage).
	ClampedCells int64
	// Output is the materialized, sorted destination array (Assemble
	// stage).
	Output *array.Array
	// WallTime is the real elapsed time of the whole pipeline (Assemble
	// stage).
	WallTime time.Duration
}
