package pipeline

import (
	"sync"
	"time"
)

// QueryHooks observes the lifecycle of queries executed through the
// pipeline. Set on Options.Hooks, a hooks implementation receives each
// query's live Progress tracker when execution starts and the finished
// Report (with its Profile — hooks imply profiling) when it ends. The
// obshttp Hub implements this interface to back /debug/inflight and the
// /debug/queries log; custom schedulers can implement it to meter
// admission.
//
// Both methods are called from the query's orchestration goroutine, so a
// hooks implementation shared across concurrent queries must be
// internally synchronized.
type QueryHooks interface {
	// QueryStarted delivers the query's Progress tracker before the first
	// stage runs. The tracker is live: Snapshot may be called from any
	// goroutine while the query executes.
	QueryStarted(p *Progress)
	// QueryFinished delivers the final report (nil Profile on error) after
	// the last stage — or the failing stage — returns.
	QueryFinished(p *Progress, rep *Report, err error)
}

// Progress tracks one in-flight query's position in the six-stage
// pipeline. The orchestration goroutine appends a StageProgress as each
// stage starts and closes it when the stage returns; Snapshot can be read
// concurrently from HTTP handlers or schedulers. A nil *Progress is a
// valid disabled instance.
type Progress struct {
	// Label identifies the query (the AQL text or an experiment label);
	// set from Options.QueryLabel.
	Label string
	// Start is when execution began (wall clock).
	Start time.Time

	mu     sync.Mutex
	stages []StageProgress
	done   bool
	failed bool
}

// StageProgress is one stage's entry in a Progress (and in
// ProgressSnapshot.Stages): the stage name, whether it has finished, and
// its wall duration once done. Wall durations are nondeterministic.
type StageProgress struct {
	Stage       string  `json:"stage"`
	Done        bool    `json:"done"`
	WallSeconds float64 `json:"wall_seconds"`
}

// ProgressSnapshot is a point-in-time copy of a Progress, safe to retain
// and serialize.
type ProgressSnapshot struct {
	Query          string          `json:"query"`
	Start          time.Time       `json:"start"`
	ElapsedSeconds float64         `json:"elapsed_seconds"`
	Done           bool            `json:"done"`
	Failed         bool            `json:"failed"`
	CurrentStage   string          `json:"current_stage,omitempty"`
	Stages         []StageProgress `json:"stages"`
}

// NewProgress returns a live tracker for a query labeled label, started
// now. Execute creates one per hooked query; exported so hook
// implementations (and their tests) can drive the interface directly.
func NewProgress(label string) *Progress {
	return &Progress{Label: label, Start: time.Now()}
}

func newProgress(label string) *Progress { return NewProgress(label) }

// stageStarted opens a new stage entry.
func (p *Progress) stageStarted(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.stages = append(p.stages, StageProgress{Stage: name})
	p.mu.Unlock()
}

// stageFinished closes the most recently started stage.
func (p *Progress) stageFinished(wall time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if n := len(p.stages); n > 0 {
		p.stages[n-1].Done = true
		p.stages[n-1].WallSeconds = wall.Seconds()
	}
	p.mu.Unlock()
}

// finish marks the query complete.
func (p *Progress) finish(failed bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.done = true
	p.failed = failed
	p.mu.Unlock()
}

// Snapshot returns a consistent copy of the tracker's current state.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Query:          p.Label,
		Start:          p.Start,
		ElapsedSeconds: time.Since(p.Start).Seconds(),
		Done:           p.done,
		Failed:         p.failed,
		Stages:         append([]StageProgress(nil), p.stages...),
	}
	if !p.done {
		for i := len(p.stages) - 1; i >= 0; i-- {
			if !p.stages[i].Done {
				s.CurrentStage = p.stages[i].Stage
				break
			}
		}
	}
	return s
}
