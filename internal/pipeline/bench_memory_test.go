package pipeline_test

import (
	"testing"

	"shufflejoin/internal/cluster"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/pipeline"
)

// BenchmarkQueryFootprint compares the two data planes end to end on an
// identical query: B/op and allocs/op are the comparison of record (the
// memory-bench CI job asserts the streaming plane allocates less than
// the materializing reference).
func BenchmarkQueryFootprint(b *testing.B) {
	// Near-unique keys: few matches, so the measurement is dominated by
	// the data plane (map, shuffle, compare), not output assembly.
	a1 := buildArray("A<v:int>[i=1,6000,300]", 21, 4000, 40_000)
	a2 := buildArray("B<w:int>[j=1,6000,300]", 22, 4000, 40_000)
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}

	run := func(b *testing.B, materialize bool) {
		b.Helper()
		c := cluster.MustNew(4)
		c.Load(a1.Clone(), cluster.RoundRobin)
		c.Load(a2.Clone(), cluster.RoundRobin)
		algo := join.Hash
		b.ReportAllocs()
		b.ResetTimer()
		var matches int64
		for i := 0; i < b.N; i++ {
			rep, err := pipeline.Run(c, "A", "B", pred, nil, pipeline.Options{
				ForceAlgo:   &algo,
				Logical:     logical.PlanOptions{Selectivity: 0.5},
				Materialize: materialize,
			})
			if err != nil {
				b.Fatal(err)
			}
			matches = rep.Matches
		}
		b.ReportMetric(float64(matches), "matches")
	}

	b.Run("streaming", func(b *testing.B) { run(b, false) })
	b.Run("materialized", func(b *testing.B) { run(b, true) })
}
