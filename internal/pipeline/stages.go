package pipeline

import (
	"fmt"
	"sync"
	"time"

	"shufflejoin/internal/array"
	"shufflejoin/internal/batch"
	"shufflejoin/internal/cluster"
	"shufflejoin/internal/flight"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/obs"
	"shufflejoin/internal/physical"
	"shufflejoin/internal/plancache"
	"shufflejoin/internal/shuffle"
	"shufflejoin/internal/simnet"
	"shufflejoin/internal/stats"
)

// LogicalPlan is the Section 4 planning stage: source resolution,
// join-schema inference, selectivity estimation, and plan enumeration.
// It normalizes the options in place and selects the plan to execute
// (cheapest, or the ForceAlgo match).
type LogicalPlan struct{}

func (LogicalPlan) Name() string { return "logical-plan" }

func (LogicalPlan) Run(qc *QueryContext) error {
	c, opt := qc.Cluster, qc.Opt
	opt.normalize()
	if opt.Cache != nil && !qc.explainOnly {
		qc.sig = planSignature(qc)
		// Singleflight lookup: concurrent misses on the same signature
		// wait for the first query's plan instead of all planning. On a
		// miss the returned Planning token is retired after Store (or by
		// Execute's cleanup if the query dies first) so waiters wake.
		e, outcome, planning, err := opt.Cache.BeginLookup(qc.ctx, qc.sig)
		if err != nil {
			return err
		}
		qc.planning = planning
		if e != nil {
			// Hit (direct or suppressed): replay the stored logical plan;
			// the physical stage revalidates the assignment against fresh
			// slice statistics.
			opt.Trace.Metrics().Counter("plancache.hit").Add(1)
			if outcome == "suppressed" {
				opt.Trace.Metrics().Counter("plancache.suppressed").Add(1)
			}
			qc.fr.Record(flight.EvPlanCache, qc.qid, qc.fr.Label(outcome), 0, 0, 0)
			lp := e.Logical
			qc.plan, qc.cached = &lp, e
			qc.plans = []logical.Plan{lp}
			qc.Report.Logical = lp
			qc.Report.Selectivity = e.Selectivity
			qc.Report.PlanSource = PlanSourceCached
			qc.Report.CacheOutcome = outcome
			return nil
		}
		opt.Trace.Metrics().Counter("plancache.miss").Add(1)
		qc.fr.Record(flight.EvPlanCache, qc.qid, qc.fr.Label("miss"), 0, 0, 0)
		qc.Report.CacheOutcome = "miss"
	}
	src, err := logical.ResolveSources(qc.Left.Array.Schema, qc.Right.Array.Schema, qc.Out, qc.Pred)
	if err != nil {
		return err
	}
	target := opt.TargetCellsPerChunk
	if target <= 0 {
		// Join units should be of moderate size (Section 3.3): fine
		// grained enough to give every node many units to balance, capped
		// so huge inputs don't flood the physical planner with options.
		total := qc.Left.Array.CellCount() + qc.Right.Array.CellCount()
		target = total / int64(32*c.K)
		if target < 256 {
			target = 256
		}
		if target > logical.DefaultTargetCellsPerChunk {
			target = logical.DefaultTargetCellsPerChunk
		}
	}
	js, err := logical.InferJoinSchema(src, logical.InferOptions{
		AttrHistogram:       catalogHistogram(c),
		TargetCellsPerChunk: target,
		ExtraCarryLeft:      opt.ExtraCarryLeft,
		ExtraCarryRight:     opt.ExtraCarryRight,
	})
	if err != nil {
		return err
	}
	lopt := opt.Logical
	lopt.Nodes = c.K
	sa := logical.ArrayStats{Cells: qc.Left.Array.CellCount(), Chunks: int64(qc.Left.Array.ChunkCount())}
	sb := logical.ArrayStats{Cells: qc.Right.Array.CellCount(), Chunks: int64(qc.Right.Array.ChunkCount())}
	if lopt.Selectivity <= 0 {
		// No caller estimate: derive one from catalog statistics
		// (histogram-based power-law estimation; see internal/cardinality).
		lopt.Selectivity = EstimateSelectivity(c, src, sa.Cells, sb.Cells)
	}
	sp := opt.Trace.Root().Child("plan.logical")
	if opt.PlanPolicy != nil && opt.ForceAlgo == nil && !qc.explainOnly {
		// Greedy fast path: constant-size candidate set instead of the
		// full Algorithm-1 sweep (see logical.GreedyChoose). ForceAlgo
		// needs the full enumeration to honor the algorithm pin.
		lp, err := logical.GreedyChoose(js, sa, sb, lopt)
		if err != nil {
			return err
		}
		sp.SetNum("selectivity", lopt.Selectivity)
		sp.SetStr("best", lp.Describe())
		sp.SetStr("mode", "greedy")
		sp.End()
		qc.plans = []logical.Plan{lp}
		qc.Report.Selectivity = lopt.Selectivity
		qc.plan = &qc.plans[0]
		qc.Report.Logical = lp
		qc.Report.PlanSource = PlanSourceGreedy
		return nil
	}
	plans, err := logical.Enumerate(js, sa, sb, lopt)
	if err != nil {
		return err
	}
	sp.SetInt("candidates", int64(len(plans)))
	sp.SetNum("selectivity", lopt.Selectivity)
	sp.SetStr("best", plans[0].Describe())
	sp.End()
	opt.Trace.Metrics().Counter("plan.candidates").Add(int64(len(plans)))

	qc.plans = plans
	qc.Report.Selectivity = lopt.Selectivity
	if qc.explainOnly {
		return nil
	}
	lp := plans[0]
	if opt.ForceAlgo != nil {
		found := false
		for _, p := range plans {
			if p.Algo == *opt.ForceAlgo {
				lp, found = p, true
				break
			}
		}
		if !found {
			return fmt.Errorf("pipeline: no valid plan with algorithm %v", *opt.ForceAlgo)
		}
	}
	qc.plan = &lp
	qc.Report.Logical = lp
	qc.Report.PlanSource = PlanSourceFull
	return nil
}

// SliceMap is the Section 3.3 stage: each node maps its resident cells of
// both sides into join-unit slices (in parallel across nodes). By default
// the slices are bounded columnar batch runs (shuffle.MapSideStream) —
// the streaming data plane — with a shared per-query intern dictionary
// and memory budget; Options.Materialize selects the reference path of
// fully materialized tuple slices instead.
type SliceMap struct{}

func (SliceMap) Name() string { return "slice-map" }

func (SliceMap) Run(qc *QueryContext) error {
	c, opt := qc.Cluster, qc.Opt
	workers := opt.workers()
	ms := opt.Trace.Root().Child("map.slices")
	spec, lm, rm := logical.UnitSpecFor(qc.plan)
	if opt.Materialize {
		ssl, err := shuffle.MapSideN(qc.Left, c.K, spec, lm, workers)
		if err != nil {
			return err
		}
		ssr, err := shuffle.MapSideN(qc.Right, c.K, spec, rm, workers)
		if err != nil {
			return err
		}
		qc.ssl, qc.ssr = ssl, ssr
	} else {
		qc.budget = batch.NewBudget(opt.MemoryBudget, opt.StrictMemory)
		// Attach before the budget is shared with mapper workers so
		// charge/credit events carry the query id from the first batch.
		qc.budget.SetFlight(qc.fr, qc.qid)
		cfg := shuffle.StreamConfig{
			BatchRows: opt.BatchSize,
			Intern:    batch.NewIntern(),
			Budget:    qc.budget,
		}
		rsl, err := shuffle.MapSideStream(qc.Left, c.K, spec, lm, workers, cfg)
		if err != nil {
			return err
		}
		rsr, err := shuffle.MapSideStream(qc.Right, c.K, spec, rm, workers, cfg)
		if err != nil {
			return err
		}
		qc.rsl, qc.rsr = rsl, rsr
		// The budget only rises during mapping and only falls as compare
		// retires units, so the peak is already final here — record it
		// and surface the gauges (deterministic, so trace fingerprints
		// stay pinned across Parallelism and overlap modes).
		rep := qc.Report
		rep.PeakBatchBytes = qc.budget.Peak()
		rep.InternedStrings = int64(cfg.Intern.Count())
		rep.MemoryOverflowBytes = qc.budget.OverflowBytes()
		reg := opt.Trace.Metrics()
		reg.Gauge("pipeline.peak_batch_bytes").Set(float64(rep.PeakBatchBytes))
		reg.Gauge("pipeline.interned_strings").Set(float64(rep.InternedStrings))
		ms.SetInt("peak_batch_bytes", rep.PeakBatchBytes)
		ms.SetInt("interned_strings", rep.InternedStrings)
	}
	ms.SetInt("units", int64(spec.NumUnits))
	ms.End()
	qc.spec = spec
	return nil
}

// PhysicalPlan is the Section 5 stage: the configured planner assigns
// join units to nodes, minimizing the modeled cost.
type PhysicalPlan struct{}

func (PhysicalPlan) Name() string { return "physical-plan" }

func (PhysicalPlan) Run(qc *QueryContext) error {
	c, opt := qc.Cluster, qc.Opt
	tr := opt.Trace
	reg := tr.Metrics()
	pr, err := physical.NewProblem(c.K, modelAlgo(qc.plan.Algo), qc.leftSizes(), qc.rightSizes(), opt.Params)
	if err != nil {
		return err
	}
	ps := tr.Root().Child("plan.physical")
	pr.Span = ps
	pres, err := planAssignment(qc, pr)
	if err != nil {
		return err
	}
	rep := qc.Report
	rep.Physical = pres
	rep.PlanTime = pres.PlanTime.Seconds()
	rep.CellsMoved = pr.CellsMoved(pres.Assignment)
	ps.SetStr("planner", pres.Planner)
	ps.SetNum("model_cost", pres.Model.Total)
	ps.SetInt("cells_moved", rep.CellsMoved)
	ps.End()
	if tr.Enabled() {
		reg.Counter("units.count").Add(int64(pr.N))
		cellsHist := reg.Histogram("units.cells", obs.PowersOf2Buckets(2, 16))
		for u := 0; u < pr.N; u++ {
			cellsHist.Observe(float64(pr.UnitTotal[u]))
		}
		reg.Counter("plan.ilp.nodes_explored").Add(pres.Search.ILPNodes)
		reg.Counter("plan.ilp.nodes_pruned").Add(pres.Search.ILPPruned)
		reg.Counter("plan.tabu.rounds").Add(int64(pres.Search.TabuRounds))
		reg.Counter("plan.tabu.moves").Add(int64(pres.Search.TabuMoves))
		reg.Counter("plan.tabu.whatifs").Add(pres.Search.TabuWhatIfs)
	}
	rep.UnitCells = append([]int64(nil), pr.UnitTotal...)
	qc.prob = pr
	qc.nodeUnits = make([][]int, c.K)
	for u := 0; u < qc.spec.NumUnits; u++ {
		dest := pres.Assignment[u]
		qc.nodeUnits[dest] = append(qc.nodeUnits[dest], u)
	}
	return nil
}

// PlanSource values recorded in Report.PlanSource.
const (
	PlanSourceCached = "cached" // signature hit, assignment revalidated
	PlanSourceGreedy = "greedy" // fast-path planners, regret within ε
	PlanSourceFull   = "full"   // full enumeration / configured planner
)

// planAssignment produces the physical assignment for the query by the
// cheapest admissible route: a revalidated cache hit, the greedy fast
// path under the regret policy, or the configured full planner. Fresh
// outcomes are stored back into the cache under the query's signature.
func planAssignment(qc *QueryContext, pr *physical.Problem) (physical.Result, error) {
	opt, rep := qc.Opt, qc.Report
	if qc.cached != nil {
		start := time.Now()
		if bd, ok := plancache.Revalidate(qc.cached, pr, 0); ok {
			return physical.Result{
				Planner:    "Cached/" + qc.cached.Source,
				Assignment: qc.cached.Assignment,
				Model:      bd,
				PlanTime:   time.Since(start),
			}, nil
		}
		// The stored assignment no longer describes the data (a
		// fingerprint collision or an externally seeded entry): evict it
		// and replan the physical half. The cached logical plan is kept —
		// the logical choice depends only on signature inputs.
		opt.Cache.RecordReject(qc.sig)
		opt.Trace.Metrics().Counter("plancache.revalidate_reject").Add(1)
		qc.fr.Record(flight.EvPlanCache, qc.qid, qc.fr.Label("revalidate-reject"), 0, 0, 0)
		rep.CacheOutcome = "revalidate-reject"
		qc.cached = nil
		rep.PlanSource = PlanSourceGreedy
		if opt.PlanPolicy == nil {
			rep.PlanSource = PlanSourceFull
		}
	}

	var pres physical.Result
	if opt.PlanPolicy != nil {
		d, err := opt.PlanPolicy.PlanPhysical(pr, opt.Planner)
		if err != nil {
			return physical.Result{}, err
		}
		pres = d.Result
		rep.PlanRegret = d.Regret
		if d.FellBack {
			// Regret policy overrode the fast path; the query paid for
			// (and benefits from) full planning.
			rep.PlanSource = PlanSourceFull
		}
	} else {
		var err error
		pres, err = opt.Planner.Plan(pr)
		if err != nil {
			return physical.Result{}, err
		}
	}
	if opt.Cache != nil && qc.sig != "" {
		opt.Cache.Store(qc.sig, &plancache.Entry{
			Logical:     *qc.plan,
			Selectivity: rep.Selectivity,
			Assignment:  pres.Assignment,
			Model:       pres.Model,
			Source:      rep.PlanSource,
		})
		// The entry is visible; wake singleflight waiters now so their
		// suppressed hits overlap this query's remaining stages.
		qc.planning.Finish()
	}
	return pres, nil
}

// Align is the Section 3.4 data alignment stage: it derives the shuffle's
// network transfers from the physical assignment and plays them through
// the lock-scheduled discrete-event simulator. In the default overlapped
// mode it also creates the compare runner and dispatches each join unit's
// comparison the moment the unit's last inbound slice lands (local-only
// units start before the simulation does); under Options.Barrier the
// comparison waits for the Compare stage.
type Align struct{}

func (Align) Name() string { return "align" }

// simPool recycles simulator instances across queries and concurrent
// pipeline runs. A reused simnet.Sim replays the alignment phase without
// allocating once its buffers reach the workload's high-water mark; the
// only steady-state allocation left in this stage is the Result clone the
// Report retains.
var simPool = sync.Pool{New: func() any { return new(simnet.Sim) }}

// acquireSim borrows the Align stage's simulator: from the query's gate
// (the scheduler's capped shared pool, which may block until an
// instance frees) or, ungated, from the process-wide simPool.
func (qc *QueryContext) acquireSim() (*simnet.Sim, error) {
	if g := qc.Opt.Gate; g != nil {
		return g.AcquireSim(qc.ctx)
	}
	return simPool.Get().(*simnet.Sim), nil
}

// releaseSim returns a simulator to wherever acquireSim got it.
func (qc *QueryContext) releaseSim(sim *simnet.Sim) {
	if g := qc.Opt.Gate; g != nil {
		g.ReleaseSim(sim)
		return
	}
	simPool.Put(sim)
}

func (Align) Run(qc *QueryContext) error {
	c, opt := qc.Cluster, qc.Opt
	tr := opt.Trace
	reg := tr.Metrics()
	rep := qc.Report

	// The destination array and the output projector are built before the
	// shuffle so the overlapped path can project matches as units land.
	outArr, err := newOutputArray(qc.plan.JS)
	if err != nil {
		return err
	}
	var attrFn func(l, r *join.Tuple) []array.Value
	if opt.ProjectFactory != nil {
		attrFn, err = opt.ProjectFactory(qc.plan.JS)
		if err != nil {
			return err
		}
	}
	proj, err := newProjector(qc.plan.JS, attrFn)
	if err != nil {
		return err
	}
	qc.outArr, qc.proj = outArr, proj

	for u := 0; u < qc.spec.NumUnits; u++ {
		dest := rep.Physical.Assignment[u]
		for node := 0; node < c.K; node++ {
			cells := qc.sliceCells(u, node)
			if node != dest && cells > 0 {
				qc.transfers = append(qc.transfers, simnet.Transfer{From: node, To: dest, Cells: cells, Tag: u})
			}
		}
	}

	cfg := simnet.Config{
		Nodes:       c.K,
		PerCellTime: opt.Params.Transfer,
		Scheduling:  opt.Scheduling,
		Flight:      qc.fr,
		FlightQID:   qc.qid,
	}
	if !opt.Barrier {
		// The compare slot must be held before the runner exists: the
		// constructor dispatches local-only units immediately.
		if g := opt.Gate; g != nil {
			if err := g.AcquireCompare(qc.ctx); err != nil {
				return err
			}
			qc.compareSlot = true
		}
		qc.runner = newCompareRunner(qc)
		cfg.OnComplete = qc.runner.landed
	}
	sim, err := qc.acquireSim()
	if err != nil {
		if qc.runner != nil {
			qc.runner.wait()
			qc.runner = nil
		}
		return err
	}
	align, err := sim.Simulate(cfg, qc.transfers)
	if err != nil {
		qc.releaseSim(sim)
		if qc.runner != nil {
			qc.runner.wait()
			qc.runner = nil
		}
		return err
	}
	// The Result aliases the pooled instance's buffers and the Report
	// outlives this query, so detach it before releasing the simulator.
	align = align.Clone()
	qc.releaseSim(sim)
	rep.Align = align
	rep.AlignTime = align.Makespan
	rep.LockWaitSeconds = align.LockWaitTime
	if tr.Enabled() {
		as := tr.Root().SimChild("align", 0, align.Makespan)
		as.SetInt("transfers", int64(len(align.Timeline)))
		as.SetInt("lock_waits", int64(align.LockWaits))
		as.SetInt("skipped_sends", int64(align.SkippedSends))
		as.SetNum("lock_wait_seconds", align.LockWaitTime)
		for _, ev := range align.Timeline {
			x := as.SimChild("xfer", ev.Start, ev.End)
			x.SetNum("transfer", 1)
			x.SetInt("from", int64(ev.From))
			x.SetInt("to", int64(ev.To))
			x.SetInt("unit", int64(ev.Tag))
			x.SetInt("cells", ev.Cells)
			x.End()
		}
		as.End()
		reg.Counter("align.transfers").Add(int64(len(align.Timeline)))
		reg.Counter("align.cells_moved").Add(rep.CellsMoved)
		reg.Counter("align.lock_waits").Add(int64(align.LockWaits))
		reg.Counter("align.skipped_sends").Add(int64(align.SkippedSends))
		reg.Gauge("align.lock_wait_seconds").Add(align.LockWaitTime)
		reg.Gauge("align.makespan_seconds").Add(align.Makespan)
	}
	return nil
}

// Compare is the Section 3.4 cell comparison stage. In overlapped mode the
// per-unit work was dispatched during Align; this stage waits for it and
// folds the per-unit slots into per-node outputs. Under Options.Barrier it
// runs the per-node reference path here instead. Either way the per-node
// merge — join stats, modeled seconds, skew — happens in ascending node
// order on the orchestration goroutine, so the Report and the trace are
// identical in both modes at every Parallelism setting.
type Compare struct{}

func (Compare) Name() string { return "compare" }

func (Compare) Run(qc *QueryContext) error {
	opt := qc.Opt
	tr := opt.Trace
	reg := tr.Metrics()
	rep := qc.Report
	k := qc.Cluster.K

	if qc.runner != nil {
		qc.runner.wait()
		qc.nodes = qc.runner.fold()
	} else {
		if g := opt.Gate; g != nil {
			if err := g.AcquireCompare(qc.ctx); err != nil {
				return err
			}
			qc.compareSlot = true
		}
		qc.nodes = runBarrier(qc)
	}
	// Comparison work is over; free the gate's compare slot before the
	// (possibly long) merge and assemble tail.
	qc.releaseCompareSlot()

	rep.NodeCompareTime = make([]float64, k)
	for node := 0; node < k; node++ {
		no := &qc.nodes[node]
		if no.err != nil {
			return no.err
		}
		rep.JoinStats.Add(no.stats)
		rep.NodeCompareTime[node] = no.time
		if no.time > rep.CompareTime {
			rep.CompareTime = no.time
		}
	}
	rep.Matches = rep.JoinStats.Matches
	rep.Skew, rep.StragglerNode = skewOf(rep.NodeCompareTime)
	qc.fr.Record(flight.EvCompareDone, qc.qid, int64(rep.StragglerNode), flight.F(rep.Skew), flight.F(rep.CompareTime), 0)

	if tr.Enabled() {
		align := rep.Align
		cs := tr.Root().SimChild("compare", align.Makespan, align.Makespan+rep.CompareTime)
		cs.SetNum("skew", rep.Skew)
		cs.SetInt("straggler_node", int64(rep.StragglerNode))
		for node := 0; node < k; node++ {
			ns := cs.SimChild("compare.node", align.Makespan, align.Makespan+rep.NodeCompareTime[node])
			ns.SetNode(node)
			ns.SetInt("units", int64(len(qc.nodeUnits[node])))
			ns.SetInt("output_cells", int64(len(qc.nodes[node].cells)))
			ns.End()
		}
		cs.End()
		reg.Gauge("compare.skew").Set(rep.Skew)
		reg.Gauge("compare.straggler_node").Set(float64(rep.StragglerNode))
		reg.Counter("compare.matches").Add(rep.Matches)
		for node := 0; node < k; node++ {
			pfx := fmt.Sprintf("node%02d.", node)
			var assigned int64
			for _, u := range qc.nodeUnits[node] {
				assigned += qc.prob.UnitTotal[u]
			}
			reg.Counter(pfx + "assigned_cells").Add(assigned)
			reg.Gauge(pfx + "send_seconds").Add(align.SendBusy[node])
			reg.Gauge(pfx + "recv_seconds").Add(align.RecvBusy[node])
			reg.Gauge(pfx + "lock_wait_seconds").Add(align.RecvLockWait[node])
			reg.Gauge(pfx + "compare_seconds").Add(rep.NodeCompareTime[node])
		}
		reg.Counter("exec.steps").Add(1)
	}
	return nil
}

// Assemble is the final stage: it writes every node's output cells into
// the destination array in deterministic order (node ascending, emit
// order), clamping or rejecting out-of-range coordinates, then sorts the
// destination and closes out the report's totals.
type Assemble struct{}

func (Assemble) Name() string { return "assemble" }

func (Assemble) Run(qc *QueryContext) error {
	rep := qc.Report
	for node := range qc.nodes {
		for _, cell := range qc.nodes[node].cells {
			clamped, err := putClamped(qc.outArr, cell.Coords, cell.Attrs, qc.Opt.StrictBounds)
			if err != nil {
				return err
			}
			if clamped {
				rep.ClampedCells++
			}
		}
	}
	if tr := qc.Opt.Trace; tr.Enabled() {
		tr.Metrics().Counter("compare.clamped_cells").Add(rep.ClampedCells)
	}
	qc.outArr.SortAll()
	rep.Output = qc.outArr
	rep.Total = rep.PlanTime + rep.AlignTime + rep.CompareTime
	rep.WallTime = time.Since(qc.wallStart)
	return nil
}

// skewOf returns the straggler ratio (max/mean) of per-node modeled
// compare times and the argmax node, or (0, -1) when no node has work.
func skewOf(times []float64) (float64, int) {
	var sum, max float64
	straggler := -1
	for node, t := range times {
		sum += t
		if straggler == -1 || t > max {
			max, straggler = t, node
		}
	}
	if sum == 0 {
		return 0, -1
	}
	mean := sum / float64(len(times))
	return max / mean, straggler
}

// modelAlgo maps the plan's algorithm to one the physical cost model
// accepts; nested loop (never profitable, still executable) is modeled as
// hash for assignment purposes.
func modelAlgo(a join.Algorithm) join.Algorithm {
	if a == join.NestedLoop {
		return join.Hash
	}
	return a
}

// unitModelTime applies the Section 5.1 per-unit cost C_i.
func unitModelTime(algo join.Algorithm, p physical.CostParams, nl, nr int) float64 {
	switch algo {
	case join.Merge:
		return p.Merge * float64(nl+nr)
	case join.Hash:
		small, large := nl, nr
		if small > large {
			small, large = large, small
		}
		return p.Build*float64(small) + p.Probe*float64(large)
	default: // nested loop: every pair probed
		return p.Probe * float64(nl) * float64(nr)
	}
}

// catalogHistogram serves attribute histograms from the catalog — the
// statistics the paper's engine keeps there. Histograms are built lazily
// and cached per Distributed (see cluster.AttrHistogram), so repeated
// queries over the same array do not rescan its cells.
func catalogHistogram(c *cluster.Cluster) func(arrayName, attrName string) *stats.Histogram {
	return func(arrayName, attrName string) *stats.Histogram {
		d, err := c.Catalog.Lookup(arrayName)
		if err != nil {
			return nil
		}
		return d.AttrHistogram(attrName)
	}
}
