package pipeline

import (
	"math"
	"sync"

	"shufflejoin/internal/array"
	"shufflejoin/internal/join"
	"shufflejoin/internal/logical"
	"shufflejoin/internal/par"
	"shufflejoin/internal/physical"
	"shufflejoin/internal/simnet"
)

// nodeOut is one node's merged comparison products: the cells it emitted
// (in deterministic order), its join statistics, and its modeled compare
// seconds. Both compare paths — overlapped and barrier — reduce to a
// []nodeOut indexed by node, which is what makes their outputs directly
// comparable (and bit-for-bit identical).
type nodeOut struct {
	cells []array.StoredCell
	stats join.Stats
	time  float64
	err   error
}

// unitResult is one join unit's comparison products, filled by exactly one
// worker into a pre-allocated slot. Synthetic row coordinates are
// unit-local (0, 1, 2, …) until fold renumbers them.
type unitResult struct {
	cells []array.StoredCell
	stats join.Stats
	time  float64
	err   error
}

// compareRunner dispatches per-unit comparison work while the shuffle
// simulation is still running. The Align stage creates it, dispatches
// units with no inbound network transfers immediately, and decrements
// pending counts from the simulator's OnComplete callback — dispatching
// each remaining unit the moment its last inbound slice lands. All
// bookkeeping runs on the orchestration goroutine; only runUnit executes
// on workers, and each unit writes a distinct results slot.
type compareRunner struct {
	qc      *QueryContext
	results []unitResult
	pending []int // inbound network transfers not yet landed, per unit
	tasks   chan int
	wg      sync.WaitGroup
	inline  bool // single worker: compare on the orchestration goroutine
}

func newCompareRunner(qc *QueryContext) *compareRunner {
	n := qc.spec.NumUnits
	cr := &compareRunner{
		qc:      qc,
		results: make([]unitResult, n),
		pending: make([]int, n),
	}
	for _, t := range qc.transfers {
		cr.pending[t.Tag]++
	}
	if workers := qc.Opt.workers(); workers <= 1 {
		cr.inline = true
	} else {
		// Buffered to the unit count so dispatch never blocks the event
		// loop waiting for a free worker.
		cr.tasks = make(chan int, n)
		for w := 0; w < workers; w++ {
			cr.wg.Add(1)
			go func() {
				defer cr.wg.Done()
				for u := range cr.tasks {
					cr.runUnit(u)
				}
			}()
		}
	}
	// Units whose slices are all local need no shuffle: dispatch before
	// the simulation starts.
	for u := 0; u < n; u++ {
		if cr.pending[u] == 0 {
			cr.dispatch(u)
		}
	}
	return cr
}

// landed is the simnet.Config.OnComplete callback: invoked synchronously
// from the event loop, in deterministic dispatch order.
func (cr *compareRunner) landed(ev simnet.Event) {
	u := ev.Tag
	cr.pending[u]--
	if cr.pending[u] == 0 {
		cr.dispatch(u)
	}
}

func (cr *compareRunner) dispatch(u int) {
	if cr.inline {
		cr.runUnit(u)
	} else {
		cr.tasks <- u
	}
}

// wait stops accepting work and blocks until every dispatched unit has
// finished. Safe to call more than once only via sync.Once-style external
// discipline; the pipeline calls it exactly once (Compare stage, or the
// Align stage's error path).
func (cr *compareRunner) wait() {
	if !cr.inline {
		close(cr.tasks)
		cr.wg.Wait()
	}
}

// runUnit assembles and joins one unit on its destination node: a
// pull-chain of pooled TupleReaders on the streaming path, or pooled
// whole-unit scratch assembly on the materializing reference path.
// Either way the projector copies every emitted value, so the unit's
// working tuples are recycled the moment the join returns.
func (cr *compareRunner) runUnit(u int) {
	qc := cr.qc
	res := &cr.results[u]
	// Per-unit cancellation point: a canceled query skips its remaining
	// units (fold surfaces the context error from the first skipped
	// slot) instead of comparing to completion.
	if err := qc.ctx.Err(); err != nil {
		res.err = err
		return
	}
	dest := qc.Report.Physical.Assignment[u]
	uproj := qc.proj.forUnit()
	emit := func(l, r *join.Tuple) {
		coords, attrs := uproj.project(l, r)
		res.cells = append(res.cells, array.StoredCell{Coords: coords, Attrs: attrs})
	}
	var st join.Stats
	var err error
	var nl, nr int
	if qc.streaming() {
		lrd := qc.rsl.Reader(u, dest)
		rrd := qc.rsr.Reader(u, dest)
		nl, nr = lrd.Len(), rrd.Len()
		st, err = join.RunStream(qc.plan.Algo, lrd, rrd, emit)
		lrd.Close()
		rrd.Close()
		// The unit is fully consumed: recycle its batches and return
		// their bytes to the query budget.
		qc.rsl.ReleaseUnit(u)
		qc.rsr.ReleaseUnit(u)
	} else {
		left := qc.ssl.AppendUnit(join.GetTuples(), u, dest)
		right := qc.ssr.AppendUnit(join.GetTuples(), u, dest)
		nl, nr = len(left), len(right)
		if qc.plan.Algo == join.Merge {
			// Reassembled units are concatenations of sorted slices;
			// restore full key order (Section 3.4's preprocessing).
			join.SortTuples(left)
			join.SortTuples(right)
		}
		st, err = join.Run(qc.plan.Algo, left, right, emit)
		join.PutTuples(left)
		join.PutTuples(right)
	}
	if err != nil {
		res.err = err
		return
	}
	res.stats = st
	res.time = unitModelTime(qc.plan.Algo, qc.Opt.Params, nl, nr)
}

// fold merges per-unit results into per-node outputs in deterministic
// order — node ascending, units in assignment order, cells in emit order —
// renumbering synthetic row coordinates to the node's stride-K sequence
// and applying the same float-accumulation order as the barrier path, so
// the merged nodeOut values are bit-for-bit identical to runBarrier's.
func (cr *compareRunner) fold() []nodeOut {
	qc := cr.qc
	k := qc.Cluster.K
	nodes := make([]nodeOut, k)
	for node := 0; node < k; node++ {
		no := &nodes[node]
		row := int64(node)
		for _, u := range qc.nodeUnits[node] {
			res := &cr.results[u]
			if res.err != nil {
				no.err = res.err
				break
			}
			if qc.proj.rowDim {
				for i := range res.cells {
					res.cells[i].Coords[0] = row
					row += int64(k)
				}
			}
			no.cells = append(no.cells, res.cells...)
			no.stats.Add(res.stats)
			no.time += res.time
		}
		addPostJoinTime(no, qc.plan, qc.Opt.Params)
	}
	return nodes
}

// runBarrier is the reference compare path (Options.Barrier): it starts
// only after the full alignment simulation and processes each node's units
// as one sequential batch, exactly as the pre-pipeline executor did.
func runBarrier(qc *QueryContext) []nodeOut {
	k := qc.Cluster.K
	results := make([]nodeOut, k)
	process := func(node int) {
		no := &results[node]
		// Each node projects with its own row counter (stride K) so
		// synthetic row coordinates are unique and deterministic whether
		// or not nodes run concurrently.
		nproj := qc.proj.forNode(node, k)
		emitTo := func(l, r *join.Tuple) {
			coords, attrs := nproj.project(l, r)
			no.cells = append(no.cells, array.StoredCell{Coords: coords, Attrs: attrs})
		}
		for _, u := range qc.nodeUnits[node] {
			// Mirror the overlapped path's per-unit cancellation point.
			if err := qc.ctx.Err(); err != nil {
				no.err = err
				return
			}
			var st join.Stats
			var err error
			var nl, nr int
			if qc.streaming() {
				lrd := qc.rsl.Reader(u, node)
				rrd := qc.rsr.Reader(u, node)
				nl, nr = lrd.Len(), rrd.Len()
				st, err = join.RunStream(qc.plan.Algo, lrd, rrd, emitTo)
				lrd.Close()
				rrd.Close()
				qc.rsl.ReleaseUnit(u)
				qc.rsr.ReleaseUnit(u)
			} else {
				left := qc.ssl.AppendUnit(join.GetTuples(), u, node)
				right := qc.ssr.AppendUnit(join.GetTuples(), u, node)
				nl, nr = len(left), len(right)
				if qc.plan.Algo == join.Merge {
					join.SortTuples(left)
					join.SortTuples(right)
				}
				st, err = join.Run(qc.plan.Algo, left, right, emitTo)
				join.PutTuples(left)
				join.PutTuples(right)
			}
			if err != nil {
				no.err = err
				return
			}
			no.stats.Add(st)
			no.time += unitModelTime(qc.plan.Algo, qc.Opt.Params, nl, nr)
		}
		addPostJoinTime(no, qc.plan, qc.Opt.Params)
	}
	par.ForEach(k, qc.Opt.workers(), process)
	return results
}

// addPostJoinTime models the per-node post-join output handling: sorting
// or redimensioning the node's output cells when the plan calls for it
// (OutSort / OutRedim).
func addPostJoinTime(no *nodeOut, lp *logical.Plan, p physical.CostParams) {
	if lp.Out != logical.OutScan && len(no.cells) > 0 {
		n := float64(len(no.cells))
		no.time += p.Merge * n * math.Log2(math.Max(n, 2))
		if lp.Out == logical.OutRedim {
			no.time += p.Merge * n
		}
	}
}
