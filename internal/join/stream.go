// Streaming variants of the cell-comparison algorithms: the same three
// algorithms as join.go, operating on pull-based tuple streams instead
// of fully materialized []Tuple sides. Every streaming variant is
// emit-order and statistics bit-identical to its materializing
// reference — the differential tests in stream_test.go and the pipeline
// equivalence suite pin that — which is what lets the engine switch the
// default data plane to streaming while keeping the materializing path
// as the reference for differential testing.
package join

import (
	"fmt"

	"shufflejoin/internal/par"
)

// TupleStream is a pull-based source of one join unit's tuples for one
// side of the comparison.
//
// Len reports the total tuple count up front (slice sizes are known
// after slice mapping), which the algorithms use for build/inner-side
// selection exactly as the materializing reference does.
//
// Next returns the next window of tuples, or ok=false at exhaustion.
// The window — and every slice its tuples reference — is valid only
// until the following Next call, so consumers must not retain it.
//
// Materialize decodes the entire remaining stream into storage owned by
// the stream, valid until the stream is closed or reused. It is the
// build-side escape hatch: hash build, merge sort, and the nested-loop
// inner side all need random access over one full side. Call it before
// any Next, at most once.
type TupleStream interface {
	Len() int
	Next() ([]Tuple, bool)
	Materialize() []Tuple
}

// SliceStream adapts an in-memory []Tuple to TupleStream, yielding
// windows of at most Window tuples (0 = everything in one window).
// Used by differential tests and as the bridge from materialized
// slices.
type SliceStream struct {
	Tuples []Tuple
	Window int
	pos    int
}

// Len implements TupleStream.
func (s *SliceStream) Len() int { return len(s.Tuples) }

// Next implements TupleStream.
func (s *SliceStream) Next() ([]Tuple, bool) {
	if s.pos >= len(s.Tuples) {
		return nil, false
	}
	w := s.Window
	if w <= 0 || s.pos+w > len(s.Tuples) {
		w = len(s.Tuples) - s.pos
	}
	out := s.Tuples[s.pos : s.pos+w]
	s.pos += w
	return out, true
}

// Materialize implements TupleStream.
func (s *SliceStream) Materialize() []Tuple {
	out := s.Tuples[s.pos:]
	s.pos = len(s.Tuples)
	return out
}

// RunStream executes the chosen algorithm over one join unit's streamed
// sides. Emit order and Stats are bit-identical to Run over the
// materialized equivalents of the same streams.
func RunStream(alg Algorithm, left, right TupleStream, emit EmitFunc) (Stats, error) {
	switch alg {
	case Hash:
		return HashJoinStream(left, right, emit), nil
	case Merge:
		return MergeJoinStream(left, right, emit)
	case NestedLoop:
		return NestedLoopJoinStream(left, right, emit), nil
	default:
		return Stats{}, fmt.Errorf("join: unknown algorithm %d", alg)
	}
}

// HashJoinStream is HashJoin over streams: it materializes the smaller
// side (same side selection and tie-break as HashJoin), builds a pooled
// open-chaining index over it, and probes with the larger side one
// window at a time — bounded probe-side memory. Chains are built by
// inserting in descending tuple order so traversal yields ascending
// insertion order, matching the reference's map-of-append-slices emit
// order; Comparisons counts full-hash bucket hits exactly as the
// reference's per-hash buckets do.
func HashJoinStream(left, right TupleStream, emit EmitFunc) Stats {
	var st Stats
	build, probe := left, right
	swapped := false
	if right.Len() < left.Len() {
		build, probe = right, left
		swapped = true
	}
	bt := build.Materialize()
	idx := getHashIndex(len(bt))
	for i := len(bt) - 1; i >= 0; i-- {
		idx.insert(i, keyHash(&bt[i]))
	}
	st.BuildOps = int64(len(bt))
	for {
		win, ok := probe.Next()
		if !ok {
			break
		}
		for i := range win {
			st.ProbeOps++
			h := keyHash(&win[i])
			for j := idx.first(h); j >= 0; j = idx.next[j] {
				if idx.hashes[j] != h {
					continue
				}
				st.Comparisons++
				if KeyEqual(&win[i], &bt[j]) {
					st.Matches++
					if emit != nil {
						if swapped {
							emit(&win[i], &bt[j])
						} else {
							emit(&bt[j], &win[i])
						}
					}
				}
			}
		}
	}
	putHashIndex(idx)
	return st
}

// MergeJoinStream is the merge join over streams. Reassembled join
// units arrive as concatenations of sorted slices, so — exactly like
// the engine's materializing compare path — both sides are materialized
// and sorted with SortTuples before the cursor walk; sort.Slice is
// deterministic for a given input order, so tie order matches the
// reference bit for bit.
func MergeJoinStream(left, right TupleStream, emit EmitFunc) (Stats, error) {
	lt := left.Materialize()
	rt := right.Materialize()
	SortTuples(lt)
	SortTuples(rt)
	return MergeJoin(lt, rt, emit)
}

// NestedLoopJoinStream is NestedLoopJoin over streams: the smaller side
// (same selection and tie-break as the reference's inner side) is
// materialized and the larger side streams through one window at a
// time.
func NestedLoopJoinStream(left, right TupleStream, emit EmitFunc) Stats {
	var st Stats
	inner, outer := left, right
	swapped := false
	if right.Len() < left.Len() {
		inner, outer = right, left
		swapped = true
	}
	it := inner.Materialize()
	for {
		win, ok := outer.Next()
		if !ok {
			break
		}
		for i := range win {
			for j := range it {
				st.Comparisons++
				if KeyEqual(&win[i], &it[j]) {
					st.Matches++
					if emit != nil {
						if swapped {
							emit(&win[i], &it[j])
						} else {
							emit(&it[j], &win[i])
						}
					}
				}
			}
		}
	}
	return st
}

// hashIndex is a pooled open-chaining hash table over build-side tuple
// indices: slots holds the head index per bucket (-1 empty), next the
// chain links, hashes the full 64-bit key hash per tuple (so bucket
// collisions between distinct hashes are skipped without a key
// comparison, matching the reference's map-keyed-by-hash semantics).
type hashIndex struct {
	mask   uint64
	slots  []int32
	next   []int32
	hashes []uint64
}

// hashIndexPool is sharded (par.Pool) rather than a sync.Pool: under
// 16-way concurrent serving every query's every unit hits this pool, and
// sync.Pool both drains under GC pressure (re-paying the index's slab
// allocations) and funnels through per-P locking on the slow path.
var hashIndexPool = par.NewPool[*hashIndex](64)

// getHashIndex returns a cleared index sized for n build tuples.
func getHashIndex(n int) *hashIndex {
	idx, ok := hashIndexPool.Get()
	if !ok {
		idx = new(hashIndex)
	}
	size := 8
	for size < n {
		size <<= 1
	}
	if cap(idx.slots) < size {
		idx.slots = make([]int32, size)
	} else {
		idx.slots = idx.slots[:size]
	}
	for i := range idx.slots {
		idx.slots[i] = -1
	}
	if cap(idx.next) < n {
		idx.next = make([]int32, n)
		idx.hashes = make([]uint64, n)
	} else {
		idx.next = idx.next[:n]
		idx.hashes = idx.hashes[:n]
	}
	idx.mask = uint64(size - 1)
	return idx
}

func putHashIndex(idx *hashIndex) { hashIndexPool.Put(idx) }

func (ix *hashIndex) insert(i int, h uint64) {
	ix.hashes[i] = h
	b := h & ix.mask
	ix.next[i] = ix.slots[b]
	ix.slots[b] = int32(i)
}

func (ix *hashIndex) first(h uint64) int32 { return ix.slots[h&ix.mask] }

// tuplePool recycles []Tuple scratch buffers for the compare hot path:
// unit assembly and pre-merge sorts previously allocated a fresh slice
// per join unit. Only the backing array is reused — tuple contents are
// fully overwritten by the next user. The typed par.Pool stores the
// slice header by value, so Put does not box it into an interface (an
// allocation per call under sync.Pool), and the retained buffers
// survive GC cycles between queries.
var tuplePool = par.NewPool[[]Tuple](64)

// GetTuples returns an empty pooled tuple slice to append into.
func GetTuples() []Tuple {
	if ts, ok := tuplePool.Get(); ok {
		return ts[:0]
	}
	return make([]Tuple, 0, 256)
}

// PutTuples recycles a slice obtained from GetTuples (or any scratch
// slice whose contents are dead). The caller must not use ts afterward.
func PutTuples(ts []Tuple) {
	tuplePool.Put(ts[:0])
}
