package join

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"shufflejoin/internal/array"
)

func intTuples(keys ...int64) []Tuple {
	ts := make([]Tuple, len(keys))
	for i, k := range keys {
		ts[i] = Tuple{Key: []array.Value{array.IntValue(k)}, Attrs: []array.Value{array.IntValue(int64(i))}}
	}
	return ts
}

// pair is a match rendered as (left key, right key) for comparison.
type pair struct{ l, r int64 }

func collect(t *testing.T, alg Algorithm, left, right []Tuple) ([]pair, Stats) {
	t.Helper()
	var out []pair
	st, err := Run(alg, left, right, func(l, r *Tuple) {
		out = append(out, pair{l.Key[0].AsInt(), r.Key[0].AsInt()})
	})
	if err != nil {
		t.Fatalf("Run(%v): %v", alg, err)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].l != out[j].l {
			return out[i].l < out[j].l
		}
		return out[i].r < out[j].r
	})
	return out, st
}

func TestAllAlgorithmsAgreeSimple(t *testing.T) {
	left := intTuples(1, 2, 3, 5, 7)
	right := intTuples(2, 3, 4, 7, 8)
	want := []pair{{2, 2}, {3, 3}, {7, 7}}
	for _, alg := range []Algorithm{Hash, Merge, NestedLoop} {
		got, st := collect(t, alg, left, right)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: matches = %v, want %v", alg, got, want)
		}
		if st.Matches != 3 {
			t.Errorf("%v: Matches = %d, want 3", alg, st.Matches)
		}
	}
}

func TestDuplicateKeysCrossProduct(t *testing.T) {
	left := intTuples(2, 2, 3)
	right := intTuples(2, 2, 2)
	// key 2: 2 x 3 = 6 matches.
	for _, alg := range []Algorithm{Hash, Merge, NestedLoop} {
		got, _ := collect(t, alg, left, right)
		if len(got) != 6 {
			t.Errorf("%v: %d matches, want 6", alg, len(got))
		}
	}
}

func TestEmptySides(t *testing.T) {
	for _, alg := range []Algorithm{Hash, Merge, NestedLoop} {
		got, st := collect(t, alg, nil, intTuples(1, 2))
		if len(got) != 0 || st.Matches != 0 {
			t.Errorf("%v: empty left produced matches", alg)
		}
		got, _ = collect(t, alg, intTuples(1, 2), nil)
		if len(got) != 0 {
			t.Errorf("%v: empty right produced matches", alg)
		}
	}
}

func TestMergeRequiresSorted(t *testing.T) {
	left := intTuples(3, 1)
	right := intTuples(1, 3)
	if _, err := MergeJoin(left, right, nil); err == nil {
		t.Error("MergeJoin accepted unsorted input")
	}
}

func TestHashBuildsSmallerSide(t *testing.T) {
	small := intTuples(1, 2)
	large := intTuples(1, 2, 3, 4, 5, 6)
	st := HashJoin(large, small, nil)
	if st.BuildOps != 2 {
		t.Errorf("BuildOps = %d, want 2 (build on smaller side)", st.BuildOps)
	}
	if st.ProbeOps != 6 {
		t.Errorf("ProbeOps = %d, want 6", st.ProbeOps)
	}
	st = HashJoin(small, large, nil)
	if st.BuildOps != 2 || st.ProbeOps != 6 {
		t.Errorf("side order changed build choice: %+v", st)
	}
}

func TestHashEmitPreservesSideOrientation(t *testing.T) {
	// Left tuples have attrs marking them; whichever side builds, emit(l, r)
	// must receive the left array's tuple first.
	left := []Tuple{{Key: []array.Value{array.IntValue(1)}, Attrs: []array.Value{array.StringValue("L")}}}
	right := []Tuple{
		{Key: []array.Value{array.IntValue(1)}, Attrs: []array.Value{array.StringValue("R")}},
		{Key: []array.Value{array.IntValue(9)}, Attrs: []array.Value{array.StringValue("R")}},
	}
	check := func(l, r *Tuple) {
		if l.Attrs[0].Str != "L" || r.Attrs[0].Str != "R" {
			t.Errorf("emit orientation wrong: l=%v r=%v", l.Attrs[0], r.Attrs[0])
		}
	}
	HashJoin(left, right, check)              // builds left (smaller)
	HashJoin(right, left, func(l, r *Tuple) { // left arg is the 2-tuple side
		if l.Attrs[0].Str != "R" || r.Attrs[0].Str != "L" {
			t.Errorf("swapped emit orientation wrong: l=%v r=%v", l.Attrs[0], r.Attrs[0])
		}
	})
	NestedLoopJoin(left, right, check)
}

func TestMultiColumnKeys(t *testing.T) {
	mk := func(a, b int64) Tuple {
		return Tuple{Key: []array.Value{array.IntValue(a), array.IntValue(b)}}
	}
	left := []Tuple{mk(1, 1), mk(1, 2), mk(2, 1)}
	right := []Tuple{mk(1, 2), mk(2, 2)}
	for _, alg := range []Algorithm{Hash, Merge, NestedLoop} {
		var n int
		if _, err := Run(alg, left, right, func(l, r *Tuple) { n++ }); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if n != 1 {
			t.Errorf("%v: %d matches, want 1 (only (1,2))", alg, n)
		}
	}
}

func TestCrossKindNumericKeys(t *testing.T) {
	left := []Tuple{{Key: []array.Value{array.IntValue(3)}}}
	right := []Tuple{{Key: []array.Value{array.FloatValue(3.0)}}}
	for _, alg := range []Algorithm{Hash, Merge, NestedLoop} {
		var n int
		if _, err := Run(alg, left, right, func(l, r *Tuple) { n++ }); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if n != 1 {
			t.Errorf("%v: int 3 should join float 3.0", alg)
		}
	}
}

// Property test: hash and merge joins agree with nested loop (the reference
// implementation) on random inputs.
func TestAlgorithmsEquivalentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func(n int) []Tuple {
			keys := make([]int64, n)
			for i := range keys {
				keys[i] = rng.Int63n(20) // small domain forces collisions
			}
			return intTuples(keys...)
		}
		left, right := gen(rng.Intn(60)), gen(rng.Intn(60))
		count := func(alg Algorithm) int64 {
			l := append([]Tuple(nil), left...)
			r := append([]Tuple(nil), right...)
			if alg == Merge {
				SortTuples(l)
				SortTuples(r)
			}
			st, err := Run(alg, l, r, nil)
			if err != nil {
				return -1
			}
			return st.Matches
		}
		ref := count(NestedLoop)
		return count(Hash) == ref && count(Merge) == ref
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSortTuplesProperty(t *testing.T) {
	f := func(keys []int16) bool {
		ts := make([]Tuple, len(keys))
		for i, k := range keys {
			ts[i] = Tuple{Key: []array.Value{array.IntValue(int64(k))}}
		}
		SortTuples(ts)
		return TuplesSorted(ts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{BuildOps: 1, ProbeOps: 2, MergeSteps: 3, Comparisons: 4, Matches: 5}
	b := Stats{BuildOps: 10, ProbeOps: 20, MergeSteps: 30, Comparisons: 40, Matches: 50}
	a.Add(b)
	if a != (Stats{11, 22, 33, 44, 55}) {
		t.Errorf("Add = %+v", a)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if _, err := Run(Algorithm(99), nil, nil, nil); err == nil {
		t.Error("unknown algorithm should error")
	}
}

func TestNestedLoopQuadraticWork(t *testing.T) {
	left := intTuples(1, 2, 3, 4)
	right := intTuples(5, 6, 7)
	st := NestedLoopJoin(left, right, nil)
	if st.Comparisons != 12 {
		t.Errorf("Comparisons = %d, want 12", st.Comparisons)
	}
}

func TestMergeStepsLinear(t *testing.T) {
	left := intTuples(1, 3, 5, 7, 9)
	right := intTuples(2, 4, 6, 8, 10)
	st, err := MergeJoin(left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.MergeSteps > int64(len(left)+len(right)) {
		t.Errorf("MergeSteps = %d, exceeds linear bound %d", st.MergeSteps, len(left)+len(right))
	}
}
