// Package join implements the cell-comparison algorithms of the shuffle
// join framework (Section 3.2 of the paper): hash join, merge join, and
// nested loop join. Each algorithm processes one join unit — a pair of cell
// sets, one per input array, that together cover a non-overlapping region
// of the predicate space — and emits matching cell pairs.
//
// The algorithms also report operation counts (hash builds, probes, cursor
// steps, raw comparisons) that the physical planner's analytical cost model
// calibrates against: the per-cell parameters m, b, and p of Section 5.1.
package join

import (
	"fmt"
	"sort"

	"shufflejoin/internal/array"
)

// Tuple is one cell prepared for comparison: the values compared by the
// join predicate (in predicate order), plus the cell's coordinates and
// carried attributes, which flow into the output.
type Tuple struct {
	Key    []array.Value
	Coords []int64
	Attrs  []array.Value
}

// KeyEqual reports whether two tuples match under the equi-join predicate.
func KeyEqual(a, b *Tuple) bool {
	if len(a.Key) != len(b.Key) {
		return false
	}
	for i := range a.Key {
		if !a.Key[i].Equal(b.Key[i]) {
			return false
		}
	}
	return true
}

// KeyCompare orders tuples by their keys (for merge join and sorting).
func KeyCompare(a, b *Tuple) int {
	n := len(a.Key)
	if len(b.Key) < n {
		n = len(b.Key)
	}
	for i := 0; i < n; i++ {
		if c := a.Key[i].Compare(b.Key[i]); c != 0 {
			return c
		}
	}
	return len(a.Key) - len(b.Key)
}

// keyHash combines the per-value hash keys of a tuple's key.
func keyHash(t *Tuple) uint64 {
	var h uint64 = 1469598103934665603
	for i := range t.Key {
		h ^= t.Key[i].HashKey()
		h *= 1099511628211
	}
	return h
}

// SortTuples sorts a side into key order (used before merge join when its
// input arrived unsorted, and after hash joins whose destination requires
// order).
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return KeyCompare(&ts[i], &ts[j]) < 0 })
}

// TuplesSorted reports whether a side is in key order.
func TuplesSorted(ts []Tuple) bool {
	for i := 1; i < len(ts); i++ {
		if KeyCompare(&ts[i-1], &ts[i]) > 0 {
			return false
		}
	}
	return true
}

// Algorithm enumerates the cell-comparison implementations.
type Algorithm int

const (
	// Hash builds a hash map over the smaller side and probes with the
	// larger. Linear time; input order agnostic.
	Hash Algorithm = iota
	// Merge advances dual cursors over two key-sorted sides. Linear time;
	// requires sorted inputs.
	Merge
	// NestedLoop compares every pair. Polynomial time; order agnostic.
	NestedLoop
)

// String names the algorithm as in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case Hash:
		return "hash"
	case Merge:
		return "merge"
	case NestedLoop:
		return "nestedloop"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Stats counts the work a join performed, in the units of the analytical
// cost model: BuildOps cells inserted into a hash map (parameter b),
// ProbeOps cells probed (parameter p), MergeSteps cursor advances
// (parameter m), and Comparisons raw pairwise tests (nested loop).
type Stats struct {
	BuildOps    int64
	ProbeOps    int64
	MergeSteps  int64
	Comparisons int64
	Matches     int64
}

// Add accumulates another Stats.
func (s *Stats) Add(o Stats) {
	s.BuildOps += o.BuildOps
	s.ProbeOps += o.ProbeOps
	s.MergeSteps += o.MergeSteps
	s.Comparisons += o.Comparisons
	s.Matches += o.Matches
}

// EmitFunc receives each matching pair: the left and right tuples.
type EmitFunc func(l, r *Tuple)

// Run executes the chosen algorithm over one join unit.
func Run(alg Algorithm, left, right []Tuple, emit EmitFunc) (Stats, error) {
	switch alg {
	case Hash:
		return HashJoin(left, right, emit), nil
	case Merge:
		return MergeJoin(left, right, emit)
	case NestedLoop:
		return NestedLoopJoin(left, right, emit), nil
	default:
		return Stats{}, fmt.Errorf("join: unknown algorithm %d", alg)
	}
}

// HashJoin builds a hash map over the smaller side of the join and probes
// it with each cell of the larger side. Building a hash entry is costlier
// than probing one, which is why the algorithm always builds on the small
// side (Section 5.1's cost C_i = b·t_i + p·u_i).
func HashJoin(left, right []Tuple, emit EmitFunc) Stats {
	var st Stats
	build, probe := left, right
	swapped := false
	if len(right) < len(left) {
		build, probe = right, left
		swapped = true
	}
	table := make(map[uint64][]int, len(build))
	for i := range build {
		h := keyHash(&build[i])
		table[h] = append(table[h], i)
		st.BuildOps++
	}
	for i := range probe {
		st.ProbeOps++
		h := keyHash(&probe[i])
		for _, j := range table[h] {
			st.Comparisons++
			if KeyEqual(&probe[i], &build[j]) {
				st.Matches++
				if emit != nil {
					if swapped {
						emit(&probe[i], &build[j])
					} else {
						emit(&build[j], &probe[i])
					}
				}
			}
		}
	}
	return st
}

// HashJoinBuildSide is HashJoin with the build side fixed by the caller
// instead of chosen as the smaller input. It exists for the build-side
// ablation benchmark: the paper observes that building a hash map costs
// much more per cell than probing one, which is why the planner's cost
// model always builds on the smaller side.
func HashJoinBuildSide(build, probe []Tuple, emit EmitFunc) Stats {
	var st Stats
	table := make(map[uint64][]int, len(build))
	for i := range build {
		table[keyHash(&build[i])] = append(table[keyHash(&build[i])], i)
		st.BuildOps++
	}
	for i := range probe {
		st.ProbeOps++
		for _, j := range table[keyHash(&probe[i])] {
			st.Comparisons++
			if KeyEqual(&probe[i], &build[j]) {
				st.Matches++
				if emit != nil {
					emit(&build[j], &probe[i])
				}
			}
		}
	}
	return st
}

// MergeJoin advances a cursor over each key-sorted side, incrementing the
// cursor at the smaller key and emitting all pairings of equal-key runs.
// Returns an error if an input is not sorted (the logical planner must
// have arranged sorted join units for a merge plan).
func MergeJoin(left, right []Tuple, emit EmitFunc) (Stats, error) {
	var st Stats
	if !TuplesSorted(left) || !TuplesSorted(right) {
		return st, fmt.Errorf("join: merge join requires sorted inputs")
	}
	i, j := 0, 0
	for i < len(left) && j < len(right) {
		st.MergeSteps++
		c := KeyCompare(&left[i], &right[j])
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Equal-key runs: emit the cross product of the runs.
			iEnd := i + 1
			for iEnd < len(left) && KeyCompare(&left[iEnd], &left[i]) == 0 {
				iEnd++
			}
			jEnd := j + 1
			for jEnd < len(right) && KeyCompare(&right[jEnd], &right[j]) == 0 {
				jEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := j; b < jEnd; b++ {
					st.Matches++
					if emit != nil {
						emit(&left[a], &right[b])
					}
				}
			}
			st.MergeSteps += int64(iEnd-i) + int64(jEnd-j) - 1
			i, j = iEnd, jEnd
		}
	}
	return st, nil
}

// NestedLoopJoin loops the larger side over the smaller, comparing every
// pair. It replaces the hash map of HashJoin with a scan, giving
// polynomial O(n_l · n_r) time; the paper shows it is never profitable
// (Sections 4 and 6.1) but it remains available as the fallback that works
// on any input.
func NestedLoopJoin(left, right []Tuple, emit EmitFunc) Stats {
	var st Stats
	inner, outer := left, right
	swapped := false
	if len(right) < len(left) {
		inner, outer = right, left
		swapped = true
	}
	for i := range outer {
		for j := range inner {
			st.Comparisons++
			if KeyEqual(&outer[i], &inner[j]) {
				st.Matches++
				if emit != nil {
					if swapped {
						emit(&outer[i], &inner[j])
					} else {
						emit(&inner[j], &outer[i])
					}
				}
			}
		}
	}
	return st
}
