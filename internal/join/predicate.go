package join

import (
	"fmt"
	"strings"

	"shufflejoin/internal/array"
)

// Term is one side of an equi-join predicate pair: a named reference into a
// source schema, resolving to either a dimension or an attribute.
type Term struct {
	Array string // optional qualifier ("A" in A.v); empty means unqualified
	Name  string
}

func (t Term) String() string {
	if t.Array == "" {
		return t.Name
	}
	return t.Array + "." + t.Name
}

// PredPair is one equality (left term = right term) of the conjunction.
type PredPair struct {
	Left, Right Term
}

func (p PredPair) String() string { return p.Left.String() + " = " + p.Right.String() }

// Predicate is the conjunction of equality pairs P = {(l1,r1), ..., (ln,rn)}
// of Section 2.2, with every left term drawn from the left operand's schema
// and every right term from the right operand's.
type Predicate []PredPair

func (p Predicate) String() string {
	parts := make([]string, len(p))
	for i, pp := range p {
		parts[i] = pp.String()
	}
	return strings.Join(parts, " AND ")
}

// Ref is a resolved term: whether it names a dimension or attribute of its
// schema, and at which index.
type Ref struct {
	IsDim bool
	Index int
	Name  string
}

// Resolve binds a term against a schema.
func Resolve(s *array.Schema, t Term) (Ref, error) {
	if t.Array != "" && t.Array != s.Name {
		return Ref{}, fmt.Errorf("join: term %s does not reference array %s", t, s.Name)
	}
	if i := s.DimIndex(t.Name); i >= 0 {
		return Ref{IsDim: true, Index: i, Name: t.Name}, nil
	}
	if i := s.AttrIndex(t.Name); i >= 0 {
		return Ref{IsDim: false, Index: i, Name: t.Name}, nil
	}
	return Ref{}, fmt.Errorf("join: %s has no dimension or attribute %q", s.Name, t.Name)
}

// PredClass is the taxonomy of Section 2.2: whether the predicate compares
// dimensions with dimensions, attributes with attributes, or a mixture.
type PredClass int

const (
	// ClassDD — every pair matches dimension to dimension (merge-join
	// eligible without reorganization when shapes align).
	ClassDD PredClass = iota
	// ClassAA — every pair matches attribute to attribute.
	ClassAA
	// ClassMixed — at least one pair compares an attribute with a
	// dimension (A:D / D:A), or the pairs are of differing classes.
	ClassMixed
)

func (c PredClass) String() string {
	switch c {
	case ClassDD:
		return "D:D"
	case ClassAA:
		return "A:A"
	default:
		return "A:D"
	}
}

// ResolvedPredicate binds every pair of a predicate to its schemas.
type ResolvedPredicate struct {
	Pred        Predicate
	Left, Right []Ref // parallel to Pred
}

// ResolvePredicate binds a predicate against the two source schemas.
func ResolvePredicate(l, r *array.Schema, p Predicate) (*ResolvedPredicate, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("join: empty predicate")
	}
	rp := &ResolvedPredicate{Pred: p}
	for _, pair := range p {
		lr, err := Resolve(l, pair.Left)
		if err != nil {
			return nil, err
		}
		rr, err := Resolve(r, pair.Right)
		if err != nil {
			return nil, err
		}
		rp.Left = append(rp.Left, lr)
		rp.Right = append(rp.Right, rr)
	}
	return rp, nil
}

// Class returns the predicate taxonomy class.
func (rp *ResolvedPredicate) Class() PredClass {
	allDD, allAA := true, true
	for i := range rp.Left {
		l, r := rp.Left[i].IsDim, rp.Right[i].IsDim
		if !(l && r) {
			allDD = false
		}
		if l || r {
			allAA = false
		}
	}
	switch {
	case allDD:
		return ClassDD
	case allAA:
		return ClassAA
	default:
		return ClassMixed
	}
}

// KeyOf extracts the comparison key of a cell for one side of the join:
// the values of that side's predicate terms, in predicate order. Dimension
// terms read coordinates; attribute terms read attribute values.
func KeyOf(refs []Ref, coords []int64, attrs []array.Value) []array.Value {
	key := make([]array.Value, len(refs))
	for i, ref := range refs {
		if ref.IsDim {
			key[i] = array.IntValue(coords[ref.Index])
		} else {
			key[i] = attrs[ref.Index]
		}
	}
	return key
}
