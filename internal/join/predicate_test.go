package join

import (
	"testing"

	"shufflejoin/internal/array"
)

func schemaAB(t *testing.T) (*array.Schema, *array.Schema) {
	t.Helper()
	return array.MustParseSchema("A<v:int, u:float>[i=1,100,10, j=1,100,10]"),
		array.MustParseSchema("B<w:int>[x=1,100,10]")
}

func TestResolveTerm(t *testing.T) {
	a, _ := schemaAB(t)
	cases := []struct {
		term  Term
		isDim bool
		index int
	}{
		{Term{Name: "i"}, true, 0},
		{Term{Name: "j"}, true, 1},
		{Term{Name: "v"}, false, 0},
		{Term{Array: "A", Name: "u"}, false, 1},
	}
	for _, c := range cases {
		ref, err := Resolve(a, c.term)
		if err != nil {
			t.Fatalf("Resolve(%v): %v", c.term, err)
		}
		if ref.IsDim != c.isDim || ref.Index != c.index {
			t.Errorf("Resolve(%v) = %+v", c.term, ref)
		}
	}
	if _, err := Resolve(a, Term{Name: "missing"}); err == nil {
		t.Error("unknown term should fail")
	}
	if _, err := Resolve(a, Term{Array: "B", Name: "v"}); err == nil {
		t.Error("wrong qualifier should fail")
	}
}

func TestResolvePredicateAndClass(t *testing.T) {
	a, b := schemaAB(t)
	dd := Predicate{{Left: Term{Name: "i"}, Right: Term{Name: "x"}}}
	aa := Predicate{{Left: Term{Name: "v"}, Right: Term{Name: "w"}}}
	ad := Predicate{{Left: Term{Name: "i"}, Right: Term{Name: "w"}}}
	mixed := Predicate{dd[0], aa[0]}

	cases := []struct {
		pred Predicate
		want PredClass
	}{
		{dd, ClassDD},
		{aa, ClassAA},
		{ad, ClassMixed},
		{mixed, ClassMixed},
	}
	for _, c := range cases {
		rp, err := ResolvePredicate(a, b, c.pred)
		if err != nil {
			t.Fatalf("ResolvePredicate(%v): %v", c.pred, err)
		}
		if got := rp.Class(); got != c.want {
			t.Errorf("Class(%v) = %v, want %v", c.pred, got, c.want)
		}
	}
	if _, err := ResolvePredicate(a, b, nil); err == nil {
		t.Error("empty predicate should fail")
	}
	if _, err := ResolvePredicate(a, b, Predicate{{Left: Term{Name: "nope"}, Right: Term{Name: "w"}}}); err == nil {
		t.Error("unresolvable term should fail")
	}
}

func TestPredicateStrings(t *testing.T) {
	p := Predicate{
		{Left: Term{Array: "A", Name: "i"}, Right: Term{Name: "x"}},
		{Left: Term{Name: "v"}, Right: Term{Array: "B", Name: "w"}},
	}
	want := "A.i = x AND v = B.w"
	if got := p.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	for _, c := range []PredClass{ClassDD, ClassAA, ClassMixed} {
		if c.String() == "" {
			t.Errorf("empty string for class %d", int(c))
		}
	}
}

func TestKeyOf(t *testing.T) {
	a, b := schemaAB(t)
	rp, err := ResolvePredicate(a, b, Predicate{
		{Left: Term{Name: "i"}, Right: Term{Name: "x"}},
		{Left: Term{Name: "v"}, Right: Term{Name: "w"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	coords := []int64{7, 9}
	attrs := []array.Value{array.IntValue(42), array.FloatValue(1.5)}
	key := KeyOf(rp.Left, coords, attrs)
	if len(key) != 2 || key[0].AsInt() != 7 || key[1].AsInt() != 42 {
		t.Errorf("left key = %v", key)
	}
	rkey := KeyOf(rp.Right, []int64{3}, []array.Value{array.IntValue(5)})
	if len(rkey) != 2 || rkey[0].AsInt() != 3 || rkey[1].AsInt() != 5 {
		t.Errorf("right key = %v", rkey)
	}
}

func TestAlgorithmString(t *testing.T) {
	if Hash.String() != "hash" || Merge.String() != "merge" || NestedLoop.String() != "nestedloop" {
		t.Error("algorithm names wrong")
	}
	if Algorithm(42).String() == "" {
		t.Error("unknown algorithm should still print")
	}
}

func TestHashJoinBuildSideAgreesWithHashJoin(t *testing.T) {
	left := intTuples(1, 2, 2, 3, 9)
	right := intTuples(2, 3, 3, 8)
	want := HashJoin(left, right, nil).Matches
	if got := HashJoinBuildSide(left, right, nil).Matches; got != want {
		t.Errorf("build-left matches = %d, want %d", got, want)
	}
	if got := HashJoinBuildSide(right, left, nil).Matches; got != want {
		t.Errorf("build-right matches = %d, want %d", got, want)
	}
	// Build side is honored exactly.
	st := HashJoinBuildSide(right, left, nil)
	if st.BuildOps != int64(len(right)) || st.ProbeOps != int64(len(left)) {
		t.Errorf("stats = %+v", st)
	}
	var n int
	HashJoinBuildSide(left, right, func(l, r *Tuple) { n++ })
	if int64(n) != want {
		t.Errorf("emitted %d, want %d", n, want)
	}
}
