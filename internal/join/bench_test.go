package join

import (
	"math/rand"
	"testing"

	"shufflejoin/internal/array"
)

func benchTuples(n int, sorted bool, seed int64) []Tuple {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]Tuple, n)
	for i := range ts {
		k := rng.Int63n(int64(n) * 2)
		if sorted {
			k = int64(i * 2)
		}
		ts[i] = Tuple{Key: []array.Value{array.IntValue(k)}}
	}
	return ts
}

func BenchmarkHashJoin(b *testing.B) {
	left := benchTuples(100_000, false, 1)
	right := benchTuples(100_000, false, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashJoin(left, right, nil)
	}
	b.ReportMetric(float64(len(left)+len(right)), "cells")
}

func BenchmarkMergeJoin(b *testing.B) {
	left := benchTuples(100_000, true, 3)
	right := benchTuples(100_000, true, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MergeJoin(left, right, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(left)+len(right)), "cells")
}

func BenchmarkNestedLoopJoin(b *testing.B) {
	left := benchTuples(2_000, false, 5)
	right := benchTuples(2_000, false, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NestedLoopJoin(left, right, nil)
	}
}

func BenchmarkSortTuples(b *testing.B) {
	src := benchTuples(100_000, false, 7)
	buf := make([]Tuple, len(src))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		SortTuples(buf)
	}
}

// BenchmarkScratchPoolsConcurrent is the pool-sharding gate for this
// package: the tuple-slice and hash-index scratch pools must hold
// steady-state 0 allocs/op with 16 concurrent compare workers — the
// multi-query serving shape — now that both are process-shared sharded
// pools instead of sync.Pools.
func BenchmarkScratchPoolsConcurrent(b *testing.B) {
	src := benchTuples(512, false, 9)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ts := GetTuples()
			ts = append(ts, src...)
			idx := getHashIndex(len(ts))
			for i := range ts {
				idx.insert(i, uint64(i)*0x9e3779b97f4a7c15)
			}
			putHashIndex(idx)
			PutTuples(ts)
		}
	})
}
