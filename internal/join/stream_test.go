package join

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"shufflejoin/internal/array"
)

// streamTuples builds a random tuple side with duplicate keys (so hash
// buckets chain and merge runs span) and stable coords/attrs payloads.
func streamTuples(n int, seed int64) []Tuple {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]Tuple, n)
	for i := range ts {
		ts[i] = Tuple{
			Key:    []array.Value{array.IntValue(rng.Int63n(int64(n/4 + 1)))},
			Coords: []int64{int64(i)},
			Attrs:  []array.Value{array.FloatValue(rng.Float64())},
		}
	}
	return ts
}

// emitRecord captures one emitted pair by value, since streamed windows
// are only valid until the next pull.
type emitRecord struct {
	l, r Tuple
}

func record(out *[]emitRecord) EmitFunc {
	return func(l, r *Tuple) {
		cp := func(t *Tuple) Tuple {
			return Tuple{
				Key:    append([]array.Value(nil), t.Key...),
				Coords: append([]int64(nil), t.Coords...),
				Attrs:  append([]array.Value(nil), t.Attrs...),
			}
		}
		*out = append(*out, emitRecord{cp(l), cp(r)})
	}
}

func copyTuples(ts []Tuple) []Tuple { return append([]Tuple(nil), ts...) }

// TestRunStreamMatchesRun is the algorithm-level differential test: for
// every algorithm, side-size ordering, and window size, the streaming
// variant's emit order and statistics are bit-identical to the
// materializing reference.
func TestRunStreamMatchesRun(t *testing.T) {
	sides := []struct {
		name   string
		nl, nr int
	}{
		{"left-smaller", 60, 90},
		{"right-smaller", 90, 60},
		{"equal", 75, 75},
		{"empty-right", 40, 0},
	}
	for _, alg := range []Algorithm{Hash, Merge, NestedLoop} {
		for _, sz := range sides {
			for _, window := range []int{1, 3, 1000} {
				name := fmt.Sprintf("%v/%s/window=%d", alg, sz.name, window)
				t.Run(name, func(t *testing.T) {
					left := streamTuples(sz.nl, int64(sz.nl)+1)
					right := streamTuples(sz.nr, int64(sz.nr)+2)

					// Reference: the engine's materializing compare path —
					// merge sorts both sides first, the others run as-is.
					refL, refR := copyTuples(left), copyTuples(right)
					if alg == Merge {
						SortTuples(refL)
						SortTuples(refR)
					}
					var wantEmits []emitRecord
					wantStats, err := Run(alg, refL, refR, record(&wantEmits))
					if err != nil {
						t.Fatal(err)
					}

					var gotEmits []emitRecord
					gotStats, err := RunStream(alg,
						&SliceStream{Tuples: copyTuples(left), Window: window},
						&SliceStream{Tuples: copyTuples(right), Window: window},
						record(&gotEmits))
					if err != nil {
						t.Fatal(err)
					}

					if gotStats != wantStats {
						t.Errorf("Stats = %+v, want %+v", gotStats, wantStats)
					}
					if !reflect.DeepEqual(gotEmits, wantEmits) {
						t.Errorf("emit sequence differs (%d vs %d emits)", len(gotEmits), len(wantEmits))
					}
				})
			}
		}
	}
}

// TestSliceStreamWindows pins the test adapter itself: windows partition
// the slice in order.
func TestSliceStreamWindows(t *testing.T) {
	ts := streamTuples(10, 1)
	s := &SliceStream{Tuples: ts, Window: 4}
	var got []Tuple
	for {
		w, ok := s.Next()
		if !ok {
			break
		}
		if len(w) > 4 {
			t.Fatalf("window of %d tuples, want <= 4", len(w))
		}
		got = append(got, w...)
	}
	if !reflect.DeepEqual(got, ts) {
		t.Error("windows do not reassemble the slice")
	}
	if s.Len() != 10 {
		t.Errorf("Len = %d, want 10", s.Len())
	}
}

// TestTuplePoolRoundTrip sanity-checks the scratch pool contract.
func TestTuplePoolRoundTrip(t *testing.T) {
	ts := GetTuples()
	if len(ts) != 0 {
		t.Fatalf("pooled slice has %d stale tuples", len(ts))
	}
	ts = append(ts, Tuple{Key: []array.Value{array.IntValue(1)}})
	PutTuples(ts)
	if ts2 := GetTuples(); len(ts2) != 0 {
		t.Fatalf("recycled slice not truncated: %d", len(ts2))
	}
}
