package storage

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"shufflejoin/internal/array"
	"shufflejoin/internal/workload"
)

func randomArray(seed int64) *array.Array {
	rng := rand.New(rand.NewSource(seed))
	a := array.MustNew(array.MustParseSchema("A<v1:int, v2:float, v3:string>[i=1,200,20, j=1,100,25]"))
	for n := 0; n < 300; n++ {
		a.MustPut(
			[]int64{rng.Int63n(200) + 1, rng.Int63n(100) + 1},
			[]array.Value{
				array.IntValue(rng.Int63() - rng.Int63()),
				array.FloatValue(rng.NormFloat64()),
				array.StringValue(string(rune('a' + rng.Intn(26)))),
			})
	}
	a.SortAll()
	return a
}

func TestRoundTrip(t *testing.T) {
	a := randomArray(1)
	var buf bytes.Buffer
	if err := WriteArray(&buf, a); err != nil {
		t.Fatalf("WriteArray: %v", err)
	}
	got, err := ReadArray(&buf)
	if err != nil {
		t.Fatalf("ReadArray: %v", err)
	}
	if got.Schema.String() != a.Schema.String() {
		t.Errorf("schema = %s, want %s", got.Schema, a.Schema)
	}
	if !reflect.DeepEqual(got.Cells(), a.Cells()) {
		t.Error("cells differ after round trip")
	}
	for key, ch := range a.Chunks {
		if got.Chunks[key] == nil || got.Chunks[key].Sorted != ch.Sorted {
			t.Errorf("chunk %s sorted flag lost", key)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := randomArray(seed)
		var buf bytes.Buffer
		if err := WriteArray(&buf, a); err != nil {
			return false
		}
		got, err := ReadArray(&buf)
		if err != nil {
			return false
		}
		return got.CellCount() == a.CellCount() &&
			reflect.DeepEqual(got.Cells(), a.Cells())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	a := randomArray(2)
	var buf bytes.Buffer
	if err := WriteArray(&buf, a); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xFF
	if _, err := ReadArray(bytes.NewReader(raw)); err == nil {
		t.Error("corrupted payload should fail the checksum")
	}
}

func TestTruncatedFile(t *testing.T) {
	if _, err := ReadArray(bytes.NewReader([]byte("SJ"))); err == nil {
		t.Error("truncated file should error")
	}
	a := randomArray(3)
	var buf bytes.Buffer
	_ = WriteArray(&buf, a)
	if _, err := ReadArray(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Error("half a file should error")
	}
}

func TestBadMagic(t *testing.T) {
	raw := append([]byte("NOPE"), make([]byte, 16)...)
	if _, err := ReadArray(bytes.NewReader(raw)); err == nil {
		t.Error("bad magic should error")
	}
}

func TestEmptyArray(t *testing.T) {
	a := array.MustNew(array.MustParseSchema("E<v:int>[i=1,10,5]"))
	var buf bytes.Buffer
	if err := WriteArray(&buf, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArray(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CellCount() != 0 {
		t.Errorf("empty array round-tripped with %d cells", got.CellCount())
	}
}

func TestStoreSaveLoadList(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := randomArray(4)
	if err := s.Save(a); err != nil {
		t.Fatalf("Save: %v", err)
	}
	ships := workload.AISLike("Ships", workload.GeoConfig{Cells: 2000, Seed: 5})
	if err := s.Save(ships); err != nil {
		t.Fatal(err)
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"A", "Ships"}) {
		t.Errorf("List = %v", names)
	}
	got, err := s.Load("A")
	if err != nil {
		t.Fatal(err)
	}
	if got.CellCount() != a.CellCount() {
		t.Errorf("loaded %d cells, want %d", got.CellCount(), a.CellCount())
	}
	if _, err := s.Load("Missing"); err == nil {
		t.Error("loading a missing array should error")
	}
}
