// Package storage provides binary serialization of arrays and chunks —
// the unit of memory, I/O, and network transmission in the ADM (Section
// 2.1) — plus a simple directory-backed store used by the data-generation
// tooling. Chunks serialize in their vertically partitioned layout: the
// coordinate column of each dimension, then each attribute column, with a
// CRC-32 integrity checksum per array.
package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"shufflejoin/internal/array"
)

// magic identifies serialized array files.
const magic = "SJAR"

// formatVersion is bumped on incompatible layout changes.
const formatVersion = 1

// WriteArray serializes an array: header, schema literal, then every
// stored chunk in deterministic (C-order key) order.
func WriteArray(w io.Writer, a *array.Array) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := writeUvarint(bw, formatVersion); err != nil {
		return err
	}
	if err := writeString(bw, a.Schema.String()); err != nil {
		return err
	}
	keys := a.SortedKeys()
	if err := writeUvarint(bw, uint64(len(keys))); err != nil {
		return err
	}
	for _, key := range keys {
		if err := writeChunk(bw, a.Chunks[key]); err != nil {
			return fmt.Errorf("storage: chunk %s: %w", key, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailing checksum over everything written so far.
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc.Sum32())
	_, err := w.Write(sum[:])
	return err
}

// ReadArray deserializes an array written by WriteArray, verifying the
// trailing CRC-32 checksum over the payload.
func ReadArray(r io.Reader) (*array.Array, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(magic)+4 {
		return nil, fmt.Errorf("storage: truncated file (%d bytes)", len(raw))
	}
	payload, sum := raw[:len(raw)-4], raw[len(raw)-4:]
	want := crc32.ChecksumIEEE(payload)
	if got := binary.BigEndian.Uint32(sum); got != want {
		return nil, fmt.Errorf("storage: checksum mismatch: file %08x, computed %08x", got, want)
	}
	br := bufio.NewReader(bytes.NewReader(payload))

	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("storage: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("storage: bad magic %q", head)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("storage: unsupported format version %d", ver)
	}
	schemaLit, err := readString(br)
	if err != nil {
		return nil, err
	}
	schema, err := array.ParseSchema(schemaLit)
	if err != nil {
		return nil, err
	}
	a, err := array.New(schema)
	if err != nil {
		return nil, err
	}
	nChunks, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for c := uint64(0); c < nChunks; c++ {
		ch, err := readChunk(br, schema)
		if err != nil {
			return nil, fmt.Errorf("storage: chunk %d: %w", c, err)
		}
		a.Chunks[ch.Key] = ch
	}
	return a, nil
}

func writeChunk(w *bufio.Writer, ch *array.Chunk) error {
	if err := writeString(w, string(ch.Key)); err != nil {
		return err
	}
	n := ch.Len()
	if err := writeUvarint(w, uint64(n)); err != nil {
		return err
	}
	sorted := uint64(0)
	if ch.Sorted {
		sorted = 1
	}
	if err := writeUvarint(w, sorted); err != nil {
		return err
	}
	// Coordinate columns.
	if err := writeUvarint(w, uint64(ch.NDims)); err != nil {
		return err
	}
	for d := 0; d < ch.NDims; d++ {
		for _, v := range ch.Coords[d] {
			if err := writeVarint(w, v); err != nil {
				return err
			}
		}
	}
	// Attribute columns.
	if err := writeUvarint(w, uint64(len(ch.Cols))); err != nil {
		return err
	}
	for i := range ch.Cols {
		col := &ch.Cols[i]
		if err := writeUvarint(w, uint64(col.Type)); err != nil {
			return err
		}
		switch col.Type {
		case array.TypeInt64:
			for _, v := range col.Ints {
				if err := writeVarint(w, v); err != nil {
					return err
				}
			}
		case array.TypeFloat64:
			var buf [8]byte
			for _, v := range col.Fs {
				binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
				if _, err := w.Write(buf[:]); err != nil {
					return err
				}
			}
		case array.TypeString:
			for _, s := range col.Strs {
				if err := writeString(w, s); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func readChunk(r *bufio.Reader, schema *array.Schema) (*array.Chunk, error) {
	key, err := readString(r)
	if err != nil {
		return nil, err
	}
	n64, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	n := int(n64)
	sorted, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	nDims64, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	nDims := int(nDims64)
	if nDims != len(schema.Dims) {
		return nil, fmt.Errorf("chunk has %d dims, schema %d", nDims, len(schema.Dims))
	}
	ch := &array.Chunk{Key: array.ChunkKey(key), NDims: nDims, Sorted: sorted == 1}
	ch.Coords = make([][]int64, nDims)
	for d := 0; d < nDims; d++ {
		ch.Coords[d] = make([]int64, n)
		for i := 0; i < n; i++ {
			v, err := binary.ReadVarint(r)
			if err != nil {
				return nil, err
			}
			ch.Coords[d][i] = v
		}
	}
	nCols64, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	nCols := int(nCols64)
	if nCols != len(schema.Attrs) {
		return nil, fmt.Errorf("chunk has %d columns, schema %d", nCols, len(schema.Attrs))
	}
	ch.Cols = make([]array.Column, nCols)
	for i := 0; i < nCols; i++ {
		t64, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		t := array.ScalarType(t64)
		if t != schema.Attrs[i].Type {
			return nil, fmt.Errorf("column %d type %v, schema says %v", i, t, schema.Attrs[i].Type)
		}
		col := array.NewColumn(t)
		switch t {
		case array.TypeInt64:
			col.Ints = make([]int64, n)
			for j := 0; j < n; j++ {
				v, err := binary.ReadVarint(r)
				if err != nil {
					return nil, err
				}
				col.Ints[j] = v
			}
		case array.TypeFloat64:
			col.Fs = make([]float64, n)
			var buf [8]byte
			for j := 0; j < n; j++ {
				if _, err := io.ReadFull(r, buf[:]); err != nil {
					return nil, err
				}
				col.Fs[j] = math.Float64frombits(binary.BigEndian.Uint64(buf[:]))
			}
		case array.TypeString:
			col.Strs = make([]string, n)
			for j := 0; j < n; j++ {
				s, err := readString(r)
				if err != nil {
					return nil, err
				}
				col.Strs[j] = s
			}
		default:
			return nil, fmt.Errorf("unknown column type %d", t64)
		}
		ch.Cols[i] = col
	}
	return ch, nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeVarint(w *bufio.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", fmt.Errorf("string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Store persists arrays as files in a directory, one ".sjar" file per
// array name.
type Store struct {
	Dir string
}

// NewStore creates the directory if needed.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{Dir: dir}, nil
}

func (s *Store) path(name string) string {
	return filepath.Join(s.Dir, name+".sjar")
}

// Save writes the array under its schema name.
func (s *Store) Save(a *array.Array) error {
	f, err := os.Create(s.path(a.Schema.Name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteArray(f, a); err != nil {
		return err
	}
	return f.Sync()
}

// Load reads the named array.
func (s *Store) Load(name string) (*array.Array, error) {
	f, err := os.Open(s.path(name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadArray(f)
}

// List returns the stored array names, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".sjar") {
			names = append(names, strings.TrimSuffix(e.Name(), ".sjar"))
		}
	}
	sort.Strings(names)
	return names, nil
}
