package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"shufflejoin/internal/array"
	"shufflejoin/internal/join"
)

func TestZipfUnitSizesConserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		total := rng.Int63n(1_000_000) + int64(n)
		alpha := float64(rng.Intn(5)) / 2
		sizes := ZipfUnitSizes(n, alpha, total, rng)
		var sum int64
		for _, s := range sizes {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == total && len(sizes) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestZipfUnitSizesSkewIncreases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prevMax := int64(0)
	for _, alpha := range []float64{0, 0.5, 1.0, 1.5, 2.0} {
		sizes := ZipfUnitSizes(1024, alpha, 10_000_000, rand.New(rand.NewSource(rng.Int63())))
		var mx int64
		for _, s := range sizes {
			if s > mx {
				mx = s
			}
		}
		if mx < prevMax {
			t.Errorf("alpha=%v: max size %d below previous %d", alpha, mx, prevMax)
		}
		prevMax = mx
	}
}

func TestMergeSlicesWholeChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ls := ZipfUnitSizes(64, 1.0, 100_000, rng)
	rs := ZipfUnitSizes(64, 1.0, 100_000, rng)
	left, right := MergeSlices(ls, rs, 4, rng)
	for u := range ls {
		lNodes, rNodes := 0, 0
		var sum int64
		for j := 0; j < 4; j++ {
			if left[u][j] > 0 {
				lNodes++
			}
			if right[u][j] > 0 {
				rNodes++
			}
			sum += left[u][j] + right[u][j]
		}
		if lNodes > 1 || rNodes > 1 {
			t.Fatalf("unit %d: merge slices on multiple nodes (%d/%d)", u, lNodes, rNodes)
		}
		if sum != ls[u]+rs[u] {
			t.Fatalf("unit %d: slices sum %d, want %d", u, sum, ls[u]+rs[u])
		}
	}
}

func TestHashSlicesSpreadAndConserved(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ls := ZipfUnitSizes(128, 1.5, 500_000, rng)
	rs := ZipfUnitSizes(128, 1.5, 500_000, rng)
	left, right := HashSlices(ls, rs, 4, 1.0, rng)
	multiNode := 0
	for u := range ls {
		var sum int64
		nodes := 0
		for j := 0; j < 4; j++ {
			s := left[u][j] + right[u][j]
			if s < 0 {
				t.Fatalf("negative slice at unit %d node %d", u, j)
			}
			if s > 0 {
				nodes++
			}
			sum += s
		}
		if sum != ls[u]+rs[u] {
			t.Fatalf("unit %d: sum %d != %d", u, sum, ls[u]+rs[u])
		}
		if nodes > 1 {
			multiNode++
		}
	}
	if multiNode < len(ls)/2 {
		t.Errorf("only %d/%d units spread over multiple nodes", multiNode, len(ls))
	}
}

func countMatches(t *testing.T, a, b *array.Array) int64 {
	t.Helper()
	var left, right []join.Tuple
	a.Scan(func(c []int64, at []array.Value) bool {
		left = append(left, join.Tuple{Key: []array.Value{at[0]}})
		return true
	})
	b.Scan(func(c []int64, at []array.Value) bool {
		right = append(right, join.Tuple{Key: []array.Value{at[0]}})
		return true
	})
	st := join.HashJoin(left, right, nil)
	return st.Matches
}

func TestSelectivityPairLow(t *testing.T) {
	for _, sel := range []float64{0.01, 0.1, 1} {
		a, b, err := SelectivityPair(10_000, 10_000, 32, sel, 42)
		if err != nil {
			t.Fatal(err)
		}
		want := sel * 20_000
		got := float64(countMatches(t, a, b))
		if math.Abs(got-want) > want*0.05+1 {
			t.Errorf("sel=%v: matches = %v, want ≈ %v", sel, got, want)
		}
	}
}

func TestSelectivityPairHigh(t *testing.T) {
	for _, sel := range []float64{10, 100} {
		a, b, err := SelectivityPair(10_000, 10_000, 32, sel, 43)
		if err != nil {
			t.Fatal(err)
		}
		want := sel * 20_000
		got := float64(countMatches(t, a, b))
		if math.Abs(got-want) > want*0.10 {
			t.Errorf("sel=%v: matches = %v, want ≈ %v", sel, got, want)
		}
	}
}

func TestSelectivityPairShapes(t *testing.T) {
	a, b, err := SelectivityPair(8_000, 8_000, 32, 0.5, 44)
	if err != nil {
		t.Fatal(err)
	}
	if a.CellCount() != 8000 || b.CellCount() != 8000 {
		t.Errorf("cells = %d / %d", a.CellCount(), b.CellCount())
	}
	if got := int64(a.ChunkCount()); got != 32 {
		t.Errorf("A chunks = %d, want 32", got)
	}
	if _, _, err := SelectivityPair(0, 10, 4, 1, 1); err == nil {
		t.Error("zero-size input should error")
	}
}

func TestAISConcentration(t *testing.T) {
	a := AISLike("AIS", GeoConfig{Cells: 200_000, Seed: 11})
	c := ChunkConcentration(a, 0.05)
	// Paper: ~85% of the data in 5% of the chunks.
	if c < 0.70 || c > 0.97 {
		t.Errorf("AIS top-5%% concentration = %.2f, want ≈ 0.85", c)
	}
	if a.CellCount() != 200_000 {
		t.Errorf("cells = %d", a.CellCount())
	}
}

func TestMODISSlightSkew(t *testing.T) {
	a := MODISLike("MODIS", GeoConfig{Cells: 200_000, Seed: 12})
	c := ChunkConcentration(a, 0.05)
	// Paper: top 5% of chunks hold only ~10% of the data.
	if c < 0.05 || c > 0.25 {
		t.Errorf("MODIS top-5%% concentration = %.2f, want ≈ 0.10", c)
	}
}

func TestGeoSchemasAligned(t *testing.T) {
	ais := AISLike("AIS", GeoConfig{Cells: 1000, Seed: 1})
	modis := MODISLike("MODIS", GeoConfig{Cells: 1000, Seed: 2})
	if !ais.Schema.SameShapeAligned(modis.Schema) {
		t.Error("AIS and MODIS schemas must share a shape for the merge join")
	}
	// 4-degree chunking: lon 90 chunks, lat 45 chunks.
	if got := ais.Schema.Dims[1].ChunkCount() * ais.Schema.Dims[2].ChunkCount(); got != 4050 {
		t.Errorf("lon-lat units = %d, want 4050", got)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a1 := AISLike("A", GeoConfig{Cells: 5000, Seed: 9})
	a2 := AISLike("A", GeoConfig{Cells: 5000, Seed: 9})
	if a1.CellCount() != a2.CellCount() || a1.ChunkCount() != a2.ChunkCount() {
		t.Error("AISLike not deterministic")
	}
	k1, k2 := a1.SortedKeys(), a2.SortedKeys()
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatal("chunk keys differ between identical seeds")
		}
	}
}

func TestGrid2DChunkSizes(t *testing.T) {
	sizes := make([]int64, 16) // 4x4 grid
	for i := range sizes {
		sizes[i] = int64(10 * (i + 1))
	}
	a, err := Grid2D("G", 400, 100, sizes, 5)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range sizes {
		total += s
	}
	if a.CellCount() != total {
		t.Errorf("cells = %d, want %d", a.CellCount(), total)
	}
	// Chunk (0,0) must hold exactly sizes[0] cells, etc.
	for u, want := range sizes {
		key := array.MakeChunkKey([]int64{int64(u / 4), int64(u % 4)})
		ch := a.Chunks[key]
		if ch == nil {
			if want != 0 {
				t.Fatalf("chunk %s missing", key)
			}
			continue
		}
		if int64(ch.Len()) != want {
			t.Errorf("chunk %s has %d cells, want %d", key, ch.Len(), want)
		}
	}
	if _, err := Grid2D("G", 401, 100, sizes, 5); err == nil {
		t.Error("non-divisible grid should error")
	}
	if _, err := Grid2D("G", 400, 100, sizes[:3], 5); err == nil {
		t.Error("wrong size count should error")
	}
}

func TestMODISPairMatchedChunks(t *testing.T) {
	b1, b2 := MODISPair("Band1", "Band2", GeoConfig{Cells: 50_000, Seed: 3}, 0.015)
	if !b1.Schema.SameShapeAligned(b2.Schema) {
		t.Fatal("bands must share a shape")
	}
	// Dropout within a tolerance band.
	frac := 1 - float64(b2.CellCount())/float64(b1.CellCount())
	if frac < 0.005 || frac > 0.03 {
		t.Errorf("dropout = %.3f, want ~0.015", frac)
	}
	// Corresponding chunks close in size (adversarial skew).
	var gaps, sizes float64
	for key, ch := range b1.Chunks {
		if c2 := b2.Chunks[key]; c2 != nil {
			gaps += math.Abs(float64(ch.Len() - c2.Len()))
			sizes += float64(ch.Len())
		}
	}
	if gaps/sizes > 0.05 {
		t.Errorf("mean chunk gap fraction %.3f, want small (paper: 10k vs 665k cells)", gaps/sizes)
	}
	// Independent readings: values at shared coords differ somewhere.
	same := 0
	checked := 0
	b2.Scan(func(coords []int64, attrs []array.Value) bool {
		v1, ok := b1.Get(coords)
		if ok {
			checked++
			if v1[0].F == attrs[0].F {
				same++
			}
		}
		return checked < 500
	})
	if checked > 0 && same == checked {
		t.Error("band 2 readings identical to band 1")
	}
}
