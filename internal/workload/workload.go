// Package workload generates the synthetic datasets of the paper's
// evaluation (Section 6): Zipfian join-unit and slice size distributions
// for the physical planner experiments, selectivity-controlled A:A pairs
// for the logical planner experiments, and scaled-down analogues of the
// NASA MODIS and NOAA AIS datasets for the real-world experiments.
//
// All generators are deterministic given their seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"shufflejoin/internal/array"
	"shufflejoin/internal/stats"
)

// ZipfUnitSizes deals totalCells cells to n join units with sizes following
// a Zipf distribution of skew alpha (alpha = 0 is uniform; Section 6.2).
// The rank-to-unit mapping is randomly permuted so hotspots scatter across
// array space, and every unit receives at least one cell when possible.
func ZipfUnitSizes(n int, alpha float64, totalCells int64, rng *rand.Rand) []int64 {
	w := stats.ZipfWeights(n, alpha)
	sizes := make([]int64, n)
	var assigned int64
	for k, wk := range w {
		sizes[k] = int64(math.Floor(wk * float64(totalCells)))
		assigned += sizes[k]
	}
	// Distribute rounding remainder to the largest ranks.
	for i := 0; assigned < totalCells; i, assigned = (i+1)%n, assigned+1 {
		sizes[i]++
	}
	rng.Shuffle(n, func(i, j int) { sizes[i], sizes[j] = sizes[j], sizes[i] })
	return sizes
}

// MergeSlices builds the slice statistics of a merge join whose join units
// are whole chunks (Section 6.2.1): each array stores each chunk on exactly
// one node, so every join unit has one slice per side, and the two sides'
// sizes are independent (a dense chunk often meets a sparse counterpart —
// beneficial skew — and occasionally another dense one — adversarial).
func MergeSlices(leftSizes, rightSizes []int64, k int, rng *rand.Rand) (left, right [][]int64) {
	n := len(leftSizes)
	left = make([][]int64, n)
	right = make([][]int64, n)
	for u := 0; u < n; u++ {
		l := make([]int64, k)
		r := make([]int64, k)
		l[rng.Intn(k)] = leftSizes[u]
		r[rng.Intn(k)] = rightSizes[u]
		left[u], right[u] = l, r
	}
	return left, right
}

// HashSlices builds the slice statistics of a hash join (Section 6.2.2):
// every join unit is spread over all k nodes, skewing "both the join unit
// sizes and their distribution across nodes". The per-node split models
// how bucket slices arise from chunked storage:
//
//   - At α = 0 the data is exactly uniform: every bucket splits evenly.
//   - At slight skew the node shares are nearly even, dominated by a small
//     systematic loading imbalance (the first nodes hold slightly more of
//     every bucket) — the regime where a single-pass center-of-gravity
//     choice latches onto tiny differences and collapses onto one node.
//   - At pronounced skew each bucket's cells concentrate near the nodes
//     storing its hot chunks, so hotspots rotate per bucket.
//
// Side sizes are independent, as in MergeSlices.
func HashSlices(leftSizes, rightSizes []int64, k int, alpha float64, rng *rand.Rand) (left, right [][]int64) {
	n := len(leftSizes)
	left = make([][]int64, n)
	right = make([][]int64, n)

	// Systematic loading imbalance: node 0 holds ~6% more than node k-1.
	bias := make([]float64, k)
	var biasSum float64
	for j := 0; j < k; j++ {
		bias[j] = 1
		if k > 1 {
			bias[j] = 1 + 0.06*float64(k-1-j)/float64(k-1)
		}
		biasSum += bias[j]
	}
	// Per-bucket hotspot mixing grows with skew beyond the slight regime.
	mix := alpha - 0.5
	if mix < 0 {
		mix = 0
	}
	if mix > 1 {
		mix = 1
	}
	hotW := stats.ZipfWeights(k, 1+alpha)

	spread := func(total int64, hot int) []int64 {
		row := make([]int64, k)
		if alpha == 0 {
			// Exactly uniform data: equal slices, remainder to the front.
			each := total / int64(k)
			var put int64
			for j := 0; j < k; j++ {
				row[j] = each
				put += each
			}
			row[0] += total - put
			return row
		}
		var put int64
		for j := 0; j < k; j++ {
			w := (1-mix)*bias[j]/biasSum + mix*hotW[(j+k-hot)%k]
			row[j] = int64(w * float64(total))
			put += row[j]
		}
		row[hot] += total - put
		return row
	}
	for u := 0; u < n; u++ {
		hotL, hotR := rng.Intn(k), rng.Intn(k)
		left[u] = spread(leftSizes[u], hotL)
		right[u] = spread(rightSizes[u], hotR)
	}
	return left, right
}

// SelectivityPair generates the Section 6.1 experiment inputs: two 1-D
// arrays A<v:int>[i] and B<w:int>[j] whose A:A join on v = w produces
// close to sel·(nA+nB) matches. Duplicate keys are introduced on the A
// side when the requested output exceeds nB.
func SelectivityPair(nA, nB int64, chunks int64, sel float64, seed int64) (*array.Array, *array.Array, error) {
	if nA <= 0 || nB <= 0 || chunks <= 0 {
		return nil, nil, fmt.Errorf("workload: non-positive sizes")
	}
	rng := rand.New(rand.NewSource(seed))
	wantMatches := int64(math.Round(sel * float64(nA+nB)))

	// A holds nA cells with values cycling over nA/d distinct keys, each
	// repeated d times, so one matching B cell yields d matches.
	d := int64(1)
	if wantMatches > nB {
		d = (wantMatches + nB - 1) / nB
	}
	if d > nA {
		d = nA
	}
	distinctA := nA / d
	if distinctA < 1 {
		distinctA = 1
	}
	matchingB := wantMatches / d

	ciA := (nA + chunks - 1) / chunks
	ciB := (nB + chunks - 1) / chunks
	sa := &array.Schema{
		Name:  "A",
		Dims:  []array.Dimension{{Name: "i", Start: 1, End: nA, ChunkInterval: ciA}},
		Attrs: []array.Attribute{{Name: "v", Type: array.TypeInt64}},
	}
	sb := &array.Schema{
		Name:  "B",
		Dims:  []array.Dimension{{Name: "j", Start: 1, End: nB, ChunkInterval: ciB}},
		Attrs: []array.Attribute{{Name: "w", Type: array.TypeInt64}},
	}
	a, err := array.New(sa)
	if err != nil {
		return nil, nil, err
	}
	b, err := array.New(sb)
	if err != nil {
		return nil, nil, err
	}

	// Key space: matching keys spread with a fixed stride across
	// [1, ~1e9] so work lands in every join unit; B's non-matching keys
	// interleave at stride offsets no A key occupies.
	const keyDomain = int64(1_000_000_000)
	stride := keyDomain / (distinctA + 1)
	if stride < 2 {
		stride = 2
	}
	keyOf := func(id int64) int64 { return id*stride + 1 }
	for i := int64(1); i <= nA; i++ {
		a.MustPut([]int64{i}, []array.Value{array.IntValue(keyOf((i-1)%distinctA + 1))})
	}
	perm := rng.Perm(int(distinctA))
	for j := int64(1); j <= nB; j++ {
		var key int64
		if j <= matchingB {
			key = keyOf(int64(perm[(j-1)%distinctA]) + 1)
		} else {
			// Off-grid: one above a stride multiple, never equal to keyOf.
			key = (j%(keyDomain/stride))*stride + 2
		}
		b.MustPut([]int64{j}, []array.Value{array.IntValue(key)})
	}
	a.SortAll()
	b.SortAll()
	return a, b, nil
}

// GeoConfig shapes the MODIS/AIS-like generators. Longitude and latitude
// coordinates are in tenths of a degree (Scale = 10) chunked DegPerChunk
// degrees apart, matching the paper's 4°×4° chunking: 90×45 = 4,050
// lon-lat join units at the defaults, with fine-grained coordinates inside
// each chunk as in the real sensor data.
type GeoConfig struct {
	Cells       int64
	Seed        int64
	DegPerChunk int64 // default 4 (degrees per chunk along lon and lat)
	TimeSteps   int64 // default 64
	Scale       int64 // coordinate subdivisions per degree; default 10
}

func (g GeoConfig) withDefaults() GeoConfig {
	if g.DegPerChunk <= 0 {
		g.DegPerChunk = 4
	}
	if g.TimeSteps <= 0 {
		g.TimeSteps = 64
	}
	if g.Scale <= 0 {
		g.Scale = 10
	}
	return g
}

func geoSchema(name, attr string, t array.ScalarType, g GeoConfig) *array.Schema {
	return &array.Schema{
		Name: name,
		Dims: []array.Dimension{
			{Name: "time", Start: 1, End: g.TimeSteps, ChunkInterval: g.TimeSteps},
			{Name: "longitude", Start: 1, End: 360 * g.Scale, ChunkInterval: g.DegPerChunk * g.Scale},
			{Name: "latitude", Start: 1, End: 180 * g.Scale, ChunkInterval: g.DegPerChunk * g.Scale},
		},
		Attrs: []array.Attribute{{Name: attr, Type: t}},
	}
}

// MODISLike generates a satellite-imagery analogue (Section 6.3): cells
// near-uniform over the lon-lat grid with a mild equator-ward density
// (lat-lon space thins toward the poles), so the top 5% of chunks hold
// roughly 10% of the data. The single attribute is a float reflectance.
func MODISLike(name string, g GeoConfig) *array.Array {
	g = g.withDefaults()
	rng := rand.New(rand.NewSource(g.Seed))
	a := array.MustNew(geoSchema(name, "reflectance", array.TypeFloat64, g))
	sc := float64(g.Scale)
	for c := int64(0); c < g.Cells; c++ {
		// Arcsine-weighted latitude: denser near the equator (90°), thinner
		// toward the poles — the artifact of lat-lon space the paper notes.
		x := math.Asin(2*rng.Float64()-1) / (math.Pi / 2) // [-1,1], peaked at 0
		lat := clamp(int64((90.5+x*89)*sc), 1, 180*g.Scale)
		lon := rng.Int63n(360*g.Scale) + 1
		tm := rng.Int63n(g.TimeSteps) + 1
		a.MustPut([]int64{tm, lon, lat}, []array.Value{array.FloatValue(rng.Float64())})
	}
	a.SortAll()
	return a
}

// AISLike generates a ship-tracking analogue (Section 6.3): vessel
// broadcasts cluster around a small set of "ports" along a synthetic
// coastline plus thin shipping lanes, so ~85% of the cells land in ~5% of
// the chunks. Attributes are a ship identifier and speed.
func AISLike(name string, g GeoConfig) *array.Array {
	g = g.withDefaults()
	rng := rand.New(rand.NewSource(g.Seed))
	s := geoSchema(name, "ship_id", array.TypeInt64, g)
	s.Attrs = append(s.Attrs, array.Attribute{Name: "speed", Type: array.TypeFloat64})
	a := array.MustNew(s)

	// Ports along a synthetic coastline (fixed for reproducibility);
	// weights follow a steep Zipf so a few ports dominate, as New York
	// dominates Alaska in the real data.
	type port struct{ lon, lat int64 }
	ports := make([]port, 24)
	prng := rand.New(rand.NewSource(7))
	for i := range ports {
		ports[i] = port{lon: prng.Int63n(120) + 60, lat: prng.Int63n(60) + 60}
	}
	w := stats.ZipfWeights(len(ports), 1.6)

	sc := float64(g.Scale)
	for c := int64(0); c < g.Cells; c++ {
		var lon, lat int64
		switch {
		case rng.Float64() < 0.76:
			// Port cluster: tight gaussian around a Zipf-chosen port.
			p := ports[zipfPick(w, rng)]
			lon = clamp(int64((float64(p.lon)+rng.NormFloat64()*2.2)*sc), 1, 360*g.Scale)
			lat = clamp(int64((float64(p.lat)+rng.NormFloat64()*2.2)*sc), 1, 180*g.Scale)
		case rng.Float64() < 0.6:
			// Shipping lane: a line between two ports.
			p1, p2 := ports[zipfPick(w, rng)], ports[zipfPick(w, rng)]
			f := rng.Float64()
			lon = clamp(int64((float64(p1.lon)+f*float64(p2.lon-p1.lon))*sc), 1, 360*g.Scale)
			lat = clamp(int64((float64(p1.lat)+f*float64(p2.lat-p1.lat))*sc), 1, 180*g.Scale)
		default:
			// Open water.
			lon = rng.Int63n(360*g.Scale) + 1
			lat = rng.Int63n(180*g.Scale) + 1
		}
		tm := rng.Int63n(g.TimeSteps) + 1
		a.MustPut([]int64{tm, lon, lat}, []array.Value{
			array.IntValue(rng.Int63n(50_000)),
			array.FloatValue(rng.Float64() * 30),
		})
	}
	a.SortAll()
	return a
}

func zipfPick(w []float64, rng *rand.Rand) int {
	f := rng.Float64()
	for i, wi := range w {
		f -= wi
		if f <= 0 {
			return i
		}
	}
	return len(w) - 1
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ChunkConcentration reports the fraction of an array's cells held by its
// largest `frac` fraction of stored chunks — the statistic the paper uses
// to characterize AIS (85% in 5%) and MODIS (10% in 5%).
func ChunkConcentration(a *array.Array, frac float64) float64 {
	sizes := make([]float64, 0, len(a.Chunks))
	for _, ch := range a.Chunks {
		sizes = append(sizes, float64(ch.Len()))
	}
	return stats.ConcentrationTopFraction(sizes, frac)
}

// Grid2D generates the Section 6.2 style 2-D array
// name<v1:int, v2:int>[i=1,n,ci, j=1,n,ci] with per-chunk cell counts
// following the given sizes (one entry per chunk in row-major chunk
// order). Cell coordinates are drawn uniformly inside each chunk; v1/v2
// are random. Used when the physical experiments run through the full
// executor rather than the modeled layer.
func Grid2D(name string, n, ci int64, sizes []int64, seed int64) (*array.Array, error) {
	if n%ci != 0 {
		return nil, fmt.Errorf("workload: n %d not divisible by chunk interval %d", n, ci)
	}
	grid := n / ci
	if int64(len(sizes)) != grid*grid {
		return nil, fmt.Errorf("workload: %d sizes for %d chunks", len(sizes), grid*grid)
	}
	s := &array.Schema{
		Name: name,
		Dims: []array.Dimension{
			{Name: "i", Start: 1, End: n, ChunkInterval: ci},
			{Name: "j", Start: 1, End: n, ChunkInterval: ci},
		},
		Attrs: []array.Attribute{
			{Name: "v1", Type: array.TypeInt64},
			{Name: "v2", Type: array.TypeInt64},
		},
	}
	a, err := array.New(s)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for u, count := range sizes {
		cu := int64(u)
		baseI := (cu / grid) * ci
		baseJ := (cu % grid) * ci
		for c := int64(0); c < count; c++ {
			i := baseI + rng.Int63n(ci) + 1
			j := baseJ + rng.Int63n(ci) + 1
			a.MustPut([]int64{i, j}, []array.Value{
				array.IntValue(rng.Int63n(1 << 30)),
				array.IntValue(rng.Int63n(1 << 30)),
			})
		}
	}
	a.SortAll()
	return a, nil
}

// MODISPair generates two matched satellite bands as in the paper's
// Section 6.3.2: the second band shares the first's sensor grid (so
// corresponding chunks are nearly equal in size — adversarial skew) but
// carries independent readings, with dropFrac of its cells missing
// (sensor dropouts; the paper's bands differ by ~1.5% of a chunk).
func MODISPair(name1, name2 string, g GeoConfig, dropFrac float64) (*array.Array, *array.Array) {
	g = g.withDefaults()
	band1 := MODISLike(name1, g)
	rng := rand.New(rand.NewSource(g.Seed + 7_654_321))
	b2 := array.MustNew(band1.Schema.Rename(name2))
	band1.Scan(func(coords []int64, _ []array.Value) bool {
		if rng.Float64() < dropFrac {
			return true
		}
		b2.MustPut(coords, []array.Value{array.FloatValue(rng.Float64())})
		return true
	})
	b2.SortAll()
	return band1, b2
}
