package logical

import (
	"fmt"
	"math"
	"sort"

	"shufflejoin/internal/join"
	"shufflejoin/internal/shuffle"
)

// AlignOp enumerates the schema-alignment operators of Table 1 usable on a
// join input, and OutOp those usable on the join output.
type AlignOp int

const (
	// OpScan accesses the data as stored: valid only when the array already
	// conforms to the join schema. Cost 0; output ordered chunks.
	OpScan AlignOp = iota
	// OpRedim converts attributes to dimensions (or realigns chunking) and
	// sorts each new chunk. Cost n + n·log(n/c); output ordered chunks.
	OpRedim
	// OpRechunk reassigns cells to the join schema's chunk intervals
	// without sorting. Cost n; output unordered chunks.
	OpRechunk
	// OpHash maps cells to hash buckets on the predicate key. Cost n;
	// output unordered, dimension-less buckets.
	OpHash
)

func (op AlignOp) String() string {
	switch op {
	case OpScan:
		return "scan"
	case OpRedim:
		return "redim"
	case OpRechunk:
		return "rechunk"
	case OpHash:
		return "hash"
	default:
		return fmt.Sprintf("AlignOp(%d)", int(op))
	}
}

// OutOp enumerates the output-alignment steps of Algorithm 1.
type OutOp int

const (
	// OutScan emits join output as-is: valid when J conforms to τ and the
	// join produced ordered chunks (or τ is unordered).
	OutScan OutOp = iota
	// OutSort sorts the output chunks in place: valid when J's chunks are
	// τ's chunks but arrive unordered. Cost n·log(n/c).
	OutSort
	// OutRedim reorganizes the output into τ. Cost n + n·log(n/c).
	OutRedim
)

func (op OutOp) String() string {
	switch op {
	case OutScan:
		return "scan"
	case OutSort:
		return "sort"
	case OutRedim:
		return "redim"
	default:
		return fmt.Sprintf("OutOp(%d)", int(op))
	}
}

// ArrayStats are the per-input statistics the cost model consumes: the
// occupied cell count and the stored chunk count.
type ArrayStats struct {
	Cells  int64
	Chunks int64
}

// PlanOptions tunes the enumeration.
type PlanOptions struct {
	// Selectivity estimates output cardinality as Selectivity·(nα+nβ)
	// (the convention of Section 6.1). Zero means 1.0. Output cardinality
	// estimation itself is out of the paper's scope; callers supply it.
	Selectivity float64
	// Nodes extends the single-node cost model to k nodes by dividing
	// parallelizable costs by k (Section 4). Zero means 1.
	Nodes int
	// HashBuckets is the join-unit count for hash-bucket plans. Zero picks
	// the join schema's chunk-grid size, falling back to 1024.
	HashBuckets int
}

// Plan is one candidate logical plan: an alignment operator per input, a
// join algorithm, and an output alignment step, with its modeled cost.
type Plan struct {
	Alpha, Beta AlignOp
	Algo        join.Algorithm
	Out         OutOp
	Units       shuffle.UnitKind
	NumUnits    int
	JS          *JoinSchema

	AlignCost, CompareCost, OutCost float64
	Cost                            float64
}

// Describe renders the plan as an AFL expression, e.g.
// "redim(hashJoin(hash(A), hash(B)), C)".
func (p *Plan) Describe() string {
	src := p.JS.Pred
	side := func(op AlignOp, name string) string {
		if op == OpScan {
			return name
		}
		return fmt.Sprintf("%s(%s)", op, name)
	}
	algo := map[join.Algorithm]string{join.Hash: "hashJoin", join.Merge: "mergeJoin", join.NestedLoop: "nestedLoopJoin"}[p.Algo]
	inner := fmt.Sprintf("%s(%s, %s)", algo, side(p.Alpha, src.Left.Name), side(p.Beta, src.Right.Name))
	switch p.Out {
	case OutSort:
		return fmt.Sprintf("sort(%s)", inner)
	case OutRedim:
		return fmt.Sprintf("redim(%s, %s)", inner, src.Out.Name)
	default:
		return inner
	}
}

// Enumerate runs the dynamic-programming enumeration of Algorithm 1:
// every (α-align, β-align, joinAlgo, out-align) combination is validated
// and costed; the returned slice is sorted cheapest first. An error is
// returned only if no valid plan exists.
func Enumerate(js *JoinSchema, sa, sb ArrayStats, opt PlanOptions) ([]Plan, error) {
	if opt.Selectivity <= 0 {
		opt.Selectivity = 1
	}
	if opt.Nodes <= 0 {
		opt.Nodes = 1
	}
	if opt.HashBuckets <= 0 {
		if n := js.NumChunkUnits(); n > 0 {
			opt.HashBuckets = n
		} else {
			opt.HashBuckets = 1024
		}
	}

	aligns := []AlignOp{OpScan, OpRedim, OpRechunk, OpHash}
	algos := []join.Algorithm{join.Hash, join.Merge, join.NestedLoop}
	outs := []OutOp{OutScan, OutSort, OutRedim}

	var plans []Plan
	for _, aa := range aligns {
		for _, ba := range aligns {
			for _, algo := range algos {
				for _, oa := range outs {
					p := Plan{Alpha: aa, Beta: ba, Algo: algo, Out: oa, JS: js}
					if !validate(&p) {
						continue
					}
					costPlan(&p, sa, sb, opt)
					plans = append(plans, p)
				}
			}
		}
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("logical: no valid plan for %s ⋈ %s on %s",
			js.Pred.Left.Name, js.Pred.Right.Name, js.Pred.Resolved.Pred)
	}
	sort.SliceStable(plans, func(i, j int) bool { return plans[i].Cost < plans[j].Cost })
	return plans, nil
}

// Choose returns the minimum-cost plan.
func Choose(js *JoinSchema, sa, sb ArrayStats, opt PlanOptions) (Plan, error) {
	plans, err := Enumerate(js, sa, sb, opt)
	if err != nil {
		return Plan{}, err
	}
	return plans[0], nil
}

// GreedyChoose is the fast-path logical planner. Instead of sweeping every
// (α, β, algo, out) combination of Algorithm 1, it assembles a
// constant-size candidate set greedily: per join algorithm, each side gets
// the cheapest aligner that can feed it (free scan when the input already
// conforms; otherwise rechunk for order-insensitive algorithms and redim
// for merge), plus the hash-bucket plan, and each candidate takes its
// cheapest valid output step. The caller-supplied selectivity estimate
// prices the output step exactly as in the full enumeration, so highly
// selective joins still steer toward plans with cheap output alignment.
//
// For the Table-1 cost model this candidate set dominates the full sweep —
// any plan outside it only swaps an aligner for a strictly costlier one
// with identical validity — so GreedyChoose returns a plan with the same
// cost as Choose while examining ~4 candidates instead of 144. Equal-cost
// ties may resolve differently. If no candidate validates (degenerate
// schemas), it falls back to the full enumeration.
func GreedyChoose(js *JoinSchema, sa, sb ArrayStats, opt PlanOptions) (Plan, error) {
	if opt.Selectivity <= 0 {
		opt.Selectivity = 1
	}
	if opt.Nodes <= 0 {
		opt.Nodes = 1
	}
	if opt.HashBuckets <= 0 {
		if n := js.NumChunkUnits(); n > 0 {
			opt.HashBuckets = n
		} else {
			opt.HashBuckets = 1024
		}
	}

	// Cheapest aligner per side: scan when the stored array conforms to J,
	// else the op the algorithm's ordering contract demands.
	side := func(conforms bool, ordered bool) AlignOp {
		if conforms {
			return OpScan
		}
		if ordered {
			return OpRedim // merge needs sorted chunks; redim sorts
		}
		return OpRechunk
	}
	type combo struct {
		a, b AlignOp
		algo join.Algorithm
	}
	candidates := []combo{
		{side(js.LeftConforms(), false), side(js.RightConforms(), false), join.Hash},
		{side(js.LeftConforms(), true), side(js.RightConforms(), true), join.Merge},
		{OpHash, OpHash, join.Hash},
		{side(js.LeftConforms(), false), side(js.RightConforms(), false), join.NestedLoop},
	}

	best, found := Plan{}, false
	for _, c := range candidates {
		// Cheapest valid output step for this combo: validity depends only
		// on the algorithm's orderedness and the unit kind, and costs are
		// monotone OutScan ≤ OutSort ≤ OutRedim.
		for _, out := range []OutOp{OutScan, OutSort, OutRedim} {
			p := Plan{Alpha: c.a, Beta: c.b, Algo: c.algo, Out: out, JS: js}
			if !validate(&p) {
				continue
			}
			costPlan(&p, sa, sb, opt)
			if !found || p.Cost < best.Cost {
				best, found = p, true
			}
			break
		}
	}
	if !found {
		return Choose(js, sa, sb, opt)
	}
	return best, nil
}

// validate implements the plan validator of Algorithm 1. It also assigns
// the plan's join-unit kind.
func validate(p *Plan) bool {
	js := p.JS
	// Join units must be consistent across sides: hash buckets on both, or
	// chunks on both.
	aHash, bHash := p.Alpha == OpHash, p.Beta == OpHash
	if aHash != bHash {
		return false
	}
	if aHash {
		p.Units = shuffle.HashUnits
	} else {
		p.Units = shuffle.ChunkUnits
		if len(js.Dims) == 0 {
			return false // no rangeable join dimension: chunks unavailable
		}
	}

	// A scan is only an aligner when the input already conforms to J.
	if p.Alpha == OpScan && !js.LeftConforms() {
		return false
	}
	if p.Beta == OpScan && !js.RightConforms() {
		return false
	}

	// Merge join requires sorted chunks on both inputs: scan (stored
	// arrays are C-order sorted) or redim (which sorts). Rechunk and hash
	// leave their output unordered.
	if p.Algo == join.Merge {
		ordered := func(op AlignOp) bool { return op == OpScan || op == OpRedim }
		if !ordered(p.Alpha) || !ordered(p.Beta) {
			return false
		}
	}

	// Output alignment. An unordered destination (no dimensions) accepts
	// the join output as-is; sorting or redimensioning it is pointless.
	out := js.Pred.Out
	if len(out.Dims) == 0 {
		return p.Out == OutScan
	}
	joinOrdered := p.Algo == join.Merge // merge preserves its inputs' order
	switch p.Out {
	case OutScan:
		// Precludes a scan after hash/nested-loop joins when τ has
		// dimensions (their output is unordered), and requires J = τ.
		return joinOrdered && js.OutConforms()
	case OutSort:
		// Sorting in place only helps when the join units already are τ's
		// chunks but arrived unordered (e.g. hash join over rechunked
		// inputs, or any join over hash buckets that match τ's grid? No —
		// buckets are dimension-less, they cannot be τ chunks).
		return !joinOrdered && p.Units == shuffle.ChunkUnits && js.OutConforms()
	case OutRedim:
		// Full reorganization always reaches τ; skip it when a free scan
		// would do.
		return !(joinOrdered && js.OutConforms())
	}
	return false
}

// costPlan fills in the Table-1 cost terms. Costs are in abstract per-cell
// units; on k nodes the parallelizable work divides by k (Section 4).
func costPlan(p *Plan, sa, sb ArrayStats, opt PlanOptions) {
	k := float64(opt.Nodes)
	na, nb := float64(sa.Cells), float64(sb.Cells)
	ca, cb := float64(max64(sa.Chunks, 1)), float64(max64(sb.Chunks, 1))

	p.AlignCost = (alignCost(p.Alpha, na, ca) + alignCost(p.Beta, nb, cb)) / k

	switch p.Algo {
	case join.NestedLoop:
		p.CompareCost = na * nb / k
	default:
		p.CompareCost = (na + nb) / k
	}

	nOut := opt.Selectivity * (na + nb)
	cOut := float64(outChunkCount(p))
	switch p.Out {
	case OutSort:
		p.OutCost = nlogn(nOut, cOut) / k
	case OutRedim:
		p.OutCost = (nOut + nlogn(nOut, cOut)) / k
	}

	p.Cost = p.AlignCost + p.CompareCost + p.OutCost
	if p.Units == shuffle.HashUnits {
		p.NumUnits = opt.HashBuckets
	} else {
		p.NumUnits = p.JS.NumChunkUnits()
	}
}

func alignCost(op AlignOp, n, c float64) float64 {
	switch op {
	case OpScan:
		return 0
	case OpRedim:
		return n + nlogn(n, c)
	case OpRechunk, OpHash:
		return n
	}
	return math.Inf(1)
}

// nlogn is the sort cost n·log2(n/c): c chunks each sorting n/c cells.
func nlogn(n, c float64) float64 {
	if n <= 0 || c <= 0 || n <= c {
		return 0
	}
	return n * math.Log2(n/c)
}

// outChunkCount estimates the destination's stored chunk count, used as c
// in output sort costs.
func outChunkCount(p *Plan) int64 {
	out := p.JS.Pred.Out
	if len(out.Dims) > 0 {
		return max64(out.TotalChunks(), 1)
	}
	if n := p.JS.NumChunkUnits(); n > 0 {
		return int64(n)
	}
	return 1
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// UnitSpecFor materializes the shuffle unit specification and per-side
// slice functions (mappers) of a chosen plan, ready for slice mapping.
func UnitSpecFor(p *Plan) (*shuffle.UnitSpec, *shuffle.SideMapper, *shuffle.SideMapper) {
	js := p.JS
	spec := &shuffle.UnitSpec{Kind: p.Units}
	if p.Units == shuffle.ChunkUnits {
		spec.JoinDims = js.Dims
	} else {
		spec.NumUnits = p.NumUnits
	}
	left := &shuffle.SideMapper{
		KeyRefs: js.Pred.Resolved.Left,
		DimRefs: js.LeftDimRefs,
		Carry:   js.LeftCarry,
	}
	right := &shuffle.SideMapper{
		KeyRefs: js.Pred.Resolved.Right,
		DimRefs: js.RightDimRefs,
		Carry:   js.RightCarry,
	}
	return spec, left, right
}
