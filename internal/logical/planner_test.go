package logical

import (
	"math"
	"strings"
	"testing"

	"shufflejoin/internal/array"
	"shufflejoin/internal/join"
	"shufflejoin/internal/shuffle"
	"shufflejoin/internal/stats"
)

// fig5Sources builds the Section 6.1 experiment schemas:
// A<v:int>[i=1,128M,4M], B<w:int>[j=1,128M,4M], C<i:int,j:int>[v=1,128M,4M]
// with the A:A predicate A.v = B.w.
func fig5Sources(t *testing.T) *ResolvedSources {
	t.Helper()
	a := array.MustParseSchema("A<v:int>[i=1,128M,4M]")
	b := array.MustParseSchema("B<w:int>[j=1,128M,4M]")
	c := array.MustParseSchema("C<i:int, j:int>[v=1,128M,4M]")
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	src, err := ResolveSources(a, b, c, pred)
	if err != nil {
		t.Fatalf("ResolveSources: %v", err)
	}
	return src
}

// ddSources builds a same-shape D:D join: A.i = B.i AND A.j = B.j.
func ddSources(t *testing.T) *ResolvedSources {
	t.Helper()
	a := array.MustParseSchema("A<v1:int, v2:int>[i=1,64M,2M, j=1,64M,2M]")
	b := array.MustParseSchema("B<v1:int, v2:int>[i=1,64M,2M, j=1,64M,2M]")
	pred := join.Predicate{
		{Left: join.Term{Name: "i"}, Right: join.Term{Name: "i"}},
		{Left: join.Term{Name: "j"}, Right: join.Term{Name: "j"}},
	}
	src, err := ResolveSources(a, b, nil, pred)
	if err != nil {
		t.Fatalf("ResolveSources: %v", err)
	}
	return src
}

func infer(t *testing.T, src *ResolvedSources) *JoinSchema {
	t.Helper()
	js, err := InferJoinSchema(src, InferOptions{})
	if err != nil {
		t.Fatalf("InferJoinSchema: %v", err)
	}
	return js
}

func TestPredicateClasses(t *testing.T) {
	if got := fig5Sources(t).Resolved.Class(); got != join.ClassAA {
		t.Errorf("fig5 class = %v, want A:A", got)
	}
	if got := ddSources(t).Resolved.Class(); got != join.ClassDD {
		t.Errorf("dd class = %v, want D:D", got)
	}
}

func TestInferJoinSchemaAACopiesDestinationDim(t *testing.T) {
	js := infer(t, fig5Sources(t))
	if len(js.Dims) != 1 {
		t.Fatalf("J has %d dims, want 1", len(js.Dims))
	}
	d := js.Dims[0]
	if d.Name != "v" || d.Start != 1 || d.End != 128000000 || d.ChunkInterval != 4000000 {
		t.Errorf("J dim = %+v, want v=[1,128M,4M] copied from C", d)
	}
	if js.NumChunkUnits() != 32 {
		t.Errorf("NumChunkUnits = %d, want 32", js.NumChunkUnits())
	}
	if js.LeftConforms() || js.RightConforms() {
		t.Error("A:A inputs should not conform to J (attribute must become a dimension)")
	}
	if !js.OutConforms() {
		t.Error("J should conform to C")
	}
}

func TestInferJoinSchemaDDCopiesSourceDims(t *testing.T) {
	js := infer(t, ddSources(t))
	if len(js.Dims) != 2 {
		t.Fatalf("J has %d dims, want 2", len(js.Dims))
	}
	if !js.LeftConforms() || !js.RightConforms() {
		t.Error("same-shape D:D inputs should conform to J")
	}
	if js.NumChunkUnits() != 32*32 {
		t.Errorf("NumChunkUnits = %d, want 1024", js.NumChunkUnits())
	}
}

func TestInferJoinSchemaUsesUnionAndLargestInterval(t *testing.T) {
	a := array.MustParseSchema("A<v:int>[i=1,100,10]")
	b := array.MustParseSchema("B<w:int>[i=51,200,25]")
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "i"}}}
	src, err := ResolveSources(a, b, nil, pred)
	if err != nil {
		t.Fatal(err)
	}
	js := infer(t, src)
	d := js.Dims[0]
	if d.Start != 1 || d.End != 200 {
		t.Errorf("range = [%d,%d], want union [1,200]", d.Start, d.End)
	}
	if d.ChunkInterval != 25 {
		t.Errorf("interval = %d, want largest (25)", d.ChunkInterval)
	}
}

func TestInferJoinSchemaFromHistogram(t *testing.T) {
	a := array.MustParseSchema("A<v:int>[i=1,1000,100]")
	b := array.MustParseSchema("B<w:int>[j=1,1000,100]")
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	src, err := ResolveSources(a, b, nil, pred)
	if err != nil {
		t.Fatal(err)
	}
	hist := func(arrayName, attrName string) *stats.Histogram {
		h := stats.NewHistogram(0, 499, 10)
		for i := 0; i < 1000; i++ {
			h.Add(float64(i % 500))
		}
		return h
	}
	js, err := InferJoinSchema(src, InferOptions{AttrHistogram: hist, TargetCellsPerChunk: 250})
	if err != nil {
		t.Fatal(err)
	}
	d := js.Dims[0]
	if d.Start != 0 || d.End != 499 {
		t.Errorf("inferred range = [%d,%d], want [0,499]", d.Start, d.End)
	}
	// 2000 total observations at 250 per chunk -> 8 chunks over extent 500 -> 63.
	if d.ChunkInterval != 63 {
		t.Errorf("inferred interval = %d, want 63", d.ChunkInterval)
	}
}

func TestInferJoinSchemaNeedsHistogram(t *testing.T) {
	a := array.MustParseSchema("A<v:int>[i=1,1000,100]")
	b := array.MustParseSchema("B<w:int>[j=1,1000,100]")
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	src, err := ResolveSources(a, b, nil, pred)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InferJoinSchema(src, InferOptions{}); err == nil {
		t.Error("expected error without histograms for pure A:A inference")
	}
}

func TestInferJoinSchemaStringKeyHasNoDims(t *testing.T) {
	a := array.MustParseSchema("A<v:string>[i=1,100,10]")
	b := array.MustParseSchema("B<w:string>[j=1,100,10]")
	pred := join.Predicate{{Left: join.Term{Name: "v"}, Right: join.Term{Name: "w"}}}
	src, err := ResolveSources(a, b, nil, pred)
	if err != nil {
		t.Fatal(err)
	}
	js, err := InferJoinSchema(src, InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(js.Dims) != 0 {
		t.Errorf("string keys should produce no join dims, got %v", js.Dims)
	}
	// Only hash plans should be possible.
	plans, err := Enumerate(js, ArrayStats{1000, 10}, ArrayStats{1000, 10}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Units != shuffle.HashUnits {
			t.Errorf("plan %s uses chunk units with no join dims", p.Describe())
		}
	}
}

func TestDefaultOutputSchemaNaturalJoin(t *testing.T) {
	src := ddSources(t)
	out := src.Out
	// Eq. 3: right predicate dims merge away; i and j appear once.
	if len(out.Dims) != 2 || out.Dims[0].Name != "i" || out.Dims[1].Name != "j" {
		t.Errorf("default out dims = %v", out.Dims)
	}
	// Attrs: A's v1,v2 kept; B's duplicate-named attrs dropped (name union).
	if len(out.Attrs) != 2 {
		t.Errorf("default out attrs = %v", out.Attrs)
	}
}

func TestCarrySets(t *testing.T) {
	// Only attributes needed by the output or predicate travel.
	a := array.MustParseSchema("A<keep:int, drop:float>[i=1,100,10]")
	b := array.MustParseSchema("B<w:int, also:int>[j=1,100,10]")
	out := array.MustParseSchema("T<keep:int>[i=1,100,10]")
	pred := join.Predicate{{Left: join.Term{Name: "i"}, Right: join.Term{Name: "w"}}}
	src, err := ResolveSources(a, b, out, pred)
	if err != nil {
		t.Fatal(err)
	}
	js := infer(t, src)
	if len(js.LeftCarry) != 1 || js.LeftCarry[0] != 0 {
		t.Errorf("LeftCarry = %v, want [0] (keep)", js.LeftCarry)
	}
	// Right carries w (predicate attr); "also" is not in τ.
	if len(js.RightCarry) != 1 || js.RightCarry[0] != 0 {
		t.Errorf("RightCarry = %v, want [0] (w)", js.RightCarry)
	}
}

func fig5Stats() (ArrayStats, ArrayStats) {
	// Two 64 MB arrays: 8M cells each over 32 chunks.
	return ArrayStats{Cells: 8 << 20, Chunks: 32}, ArrayStats{Cells: 8 << 20, Chunks: 32}
}

func planFor(t *testing.T, plans []Plan, algo join.Algorithm) *Plan {
	t.Helper()
	best := -1
	for i := range plans {
		if plans[i].Algo == algo {
			if best == -1 || plans[i].Cost < plans[best].Cost {
				best = i
			}
		}
	}
	if best == -1 {
		t.Fatalf("no %v plan found", algo)
	}
	return &plans[best]
}

// findPlan locates an exact operator combination in the enumeration.
func findPlan(plans []Plan, alpha, beta AlignOp, algo join.Algorithm, out OutOp) *Plan {
	for i := range plans {
		p := &plans[i]
		if p.Alpha == alpha && p.Beta == beta && p.Algo == algo && p.Out == out {
			return p
		}
	}
	return nil
}

func TestEnumerateContainsPaperPlans(t *testing.T) {
	js := infer(t, fig5Sources(t))
	sa, sb := fig5Stats()
	plans, err := Enumerate(js, sa, sb, PlanOptions{Selectivity: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Merge plan: mergeJoin(redim(A,C), redim(B,C)) with free out scan.
	merge := findPlan(plans, OpRedim, OpRedim, join.Merge, OutScan)
	if merge == nil {
		t.Fatal("paper's merge plan not enumerated")
	}
	// Hash plan: redim(hashJoin(hash(A), hash(B)), C).
	hash := findPlan(plans, OpHash, OpHash, join.Hash, OutRedim)
	if hash == nil {
		t.Fatal("paper's hash plan not enumerated")
	}
	if !strings.Contains(hash.Describe(), "hashJoin(hash(A), hash(B))") {
		t.Errorf("Describe = %s", hash.Describe())
	}
	// The rechunk variant of Section 4 ("sort the fewer output cells
	// instead of the input cells") must also be found, and since it skips
	// the output redistribution it costs no more than the bucket plan.
	rechunk := findPlan(plans, OpRechunk, OpRechunk, join.Hash, OutSort)
	if rechunk == nil {
		t.Fatal("rechunk+sort hash plan not enumerated")
	}
	if rechunk.Cost > hash.Cost {
		t.Errorf("rechunk plan (%.3g) should not cost more than bucket plan (%.3g)",
			rechunk.Cost, hash.Cost)
	}
}

func TestSelectivityCrossover(t *testing.T) {
	// Figure 6's shape: hash wins at low selectivity, merge from ~1 up, and
	// nested loop is never the minimum.
	js := infer(t, fig5Sources(t))
	sa, sb := fig5Stats()
	for _, sel := range []float64{0.01, 0.1, 1, 10, 100} {
		plans, err := Enumerate(js, sa, sb, PlanOptions{Selectivity: sel})
		if err != nil {
			t.Fatal(err)
		}
		best := plans[0]
		if best.Algo == join.NestedLoop {
			t.Errorf("sel=%v: nested loop chosen as best", sel)
		}
		switch {
		case sel < 1 && best.Algo != join.Hash:
			t.Errorf("sel=%v: best = %v (%s), want hash", sel, best.Algo, best.Describe())
		case sel >= 1 && best.Algo != join.Merge:
			t.Errorf("sel=%v: best = %v (%s), want merge", sel, best.Algo, best.Describe())
		}
	}
}

func TestMergeGapGrowsWithSelectivity(t *testing.T) {
	// At the largest output cardinality the merge plan should beat hash by
	// a wide margin (35x in the paper; we require >5x in cost units).
	js := infer(t, fig5Sources(t))
	sa, sb := fig5Stats()
	plans, err := Enumerate(js, sa, sb, PlanOptions{Selectivity: 100})
	if err != nil {
		t.Fatal(err)
	}
	merge, hash := planFor(t, plans, join.Merge), planFor(t, plans, join.Hash)
	if ratio := hash.Cost / merge.Cost; ratio < 5 {
		t.Errorf("hash/merge cost ratio = %.1f, want > 5", ratio)
	}
}

func TestDDPrefersScanMergePlan(t *testing.T) {
	// A same-shape D:D join needs no reorganization: the favored plan is
	// mergeJoin(A, B) with scans everywhere.
	js := infer(t, ddSources(t))
	plans, err := Enumerate(js, ArrayStats{1 << 20, 1024}, ArrayStats{1 << 20, 1024}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	best := plans[0]
	if best.Alpha != OpScan || best.Beta != OpScan || best.Algo != join.Merge || best.Out != OutScan {
		t.Errorf("best D:D plan = %s, want pure scan merge", best.Describe())
	}
	if best.AlignCost != 0 || best.OutCost != 0 {
		t.Errorf("scan merge should have zero align/out cost: %+v", best)
	}
}

func TestValidateRejectsMixedUnits(t *testing.T) {
	js := infer(t, fig5Sources(t))
	sa, sb := fig5Stats()
	plans, _ := Enumerate(js, sa, sb, PlanOptions{})
	for _, p := range plans {
		aHash := p.Alpha == OpHash
		bHash := p.Beta == OpHash
		if aHash != bHash {
			t.Errorf("mixed-unit plan survived validation: %s", p.Describe())
		}
		if p.Algo == join.Merge && (p.Alpha == OpRechunk || p.Alpha == OpHash || p.Beta == OpRechunk || p.Beta == OpHash) {
			t.Errorf("merge over unordered input survived: %s", p.Describe())
		}
		if p.Algo != join.Merge && p.Out == OutScan && len(js.Pred.Out.Dims) > 0 {
			t.Errorf("scan after unordered join into dimensioned output: %s", p.Describe())
		}
	}
}

func TestScanRequiresConformance(t *testing.T) {
	// In the A:A query neither input conforms, so no plan may scan.
	js := infer(t, fig5Sources(t))
	sa, sb := fig5Stats()
	plans, _ := Enumerate(js, sa, sb, PlanOptions{})
	for _, p := range plans {
		if p.Alpha == OpScan || p.Beta == OpScan {
			t.Errorf("non-conforming input scanned: %s", p.Describe())
		}
	}
}

func TestKNodesDividesCost(t *testing.T) {
	js := infer(t, ddSources(t))
	sa := ArrayStats{1 << 20, 1024}
	p1, err := Choose(js, sa, sa, PlanOptions{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	p4, err := Choose(js, sa, sa, PlanOptions{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p4.Cost-p1.Cost/4) > 1e-6*p1.Cost {
		t.Errorf("4-node cost %v, want %v/4", p4.Cost, p1.Cost)
	}
}

func TestEnumerateSortedByCost(t *testing.T) {
	js := infer(t, fig5Sources(t))
	sa, sb := fig5Stats()
	plans, err := Enumerate(js, sa, sb, PlanOptions{Selectivity: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].Cost < plans[i-1].Cost {
			t.Fatal("plans not sorted by cost")
		}
	}
}

func TestUnitSpecForHashPlan(t *testing.T) {
	js := infer(t, fig5Sources(t))
	sa, sb := fig5Stats()
	plans, _ := Enumerate(js, sa, sb, PlanOptions{Selectivity: 0.01, HashBuckets: 64})
	hash := findPlan(plans, OpHash, OpHash, join.Hash, OutRedim)
	if hash == nil {
		t.Fatal("bucket hash plan not enumerated")
	}
	spec, l, r := UnitSpecFor(hash)
	if spec.Kind != shuffle.HashUnits || spec.NumUnits != 64 {
		t.Errorf("spec = %+v", spec)
	}
	if len(l.KeyRefs) != 1 || l.KeyRefs[0].Name != "v" {
		t.Errorf("left key refs = %+v", l.KeyRefs)
	}
	if len(r.KeyRefs) != 1 || r.KeyRefs[0].Name != "w" {
		t.Errorf("right key refs = %+v", r.KeyRefs)
	}
}

func TestUnitSpecForMergePlan(t *testing.T) {
	js := infer(t, ddSources(t))
	p, err := Choose(js, ArrayStats{1000, 16}, ArrayStats{1000, 16}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	spec, l, _ := UnitSpecFor(&p)
	if spec.Kind != shuffle.ChunkUnits || len(spec.JoinDims) != 2 {
		t.Errorf("spec = %+v", spec)
	}
	if len(l.DimRefs) != 2 || !l.DimRefs[0].IsDim {
		t.Errorf("left dim refs = %+v", l.DimRefs)
	}
}

func TestNestedLoopAlwaysCostliest(t *testing.T) {
	// Section 4/6.1: nested loop is never profitable. Verify its best plan
	// is costlier than both alternatives at every tested selectivity.
	js := infer(t, fig5Sources(t))
	sa, sb := fig5Stats()
	for _, sel := range []float64{0.01, 1, 100} {
		plans, err := Enumerate(js, sa, sb, PlanOptions{Selectivity: sel})
		if err != nil {
			t.Fatal(err)
		}
		nl := planFor(t, plans, join.NestedLoop)
		h := planFor(t, plans, join.Hash)
		m := planFor(t, plans, join.Merge)
		if nl.Cost <= h.Cost || nl.Cost <= m.Cost {
			t.Errorf("sel=%v: nested loop cost %.3g not dominated (hash %.3g, merge %.3g)",
				sel, nl.Cost, h.Cost, m.Cost)
		}
	}
}

// Property: output-handling cost never decreases with selectivity, and the
// best plan's cost is the minimum of the enumeration.
func TestCostMonotonicityProperty(t *testing.T) {
	js := infer(t, fig5Sources(t))
	sa, sb := fig5Stats()
	prevBest := 0.0
	for _, sel := range []float64{0.01, 0.1, 1, 10, 100} {
		plans, err := Enumerate(js, sa, sb, PlanOptions{Selectivity: sel})
		if err != nil {
			t.Fatal(err)
		}
		best := plans[0].Cost
		for _, p := range plans {
			if p.Cost < best {
				t.Fatalf("sel=%v: enumeration not sorted", sel)
			}
			if p.OutCost < 0 || p.AlignCost < 0 || p.CompareCost < 0 {
				t.Fatalf("sel=%v: negative cost component %+v", sel, p)
			}
		}
		if best < prevBest {
			t.Errorf("sel=%v: best cost %v fell below previous %v (larger output cannot be cheaper)",
				sel, best, prevBest)
		}
		prevBest = best
	}
}

func TestEnumerateZeroCells(t *testing.T) {
	js := infer(t, ddSources(t))
	plans, err := Enumerate(js, ArrayStats{0, 0}, ArrayStats{0, 0}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Cost != 0 && p.Algo != join.NestedLoop {
			if p.Cost < 0 {
				t.Fatalf("negative cost for %s", p.Describe())
			}
		}
	}
}

func TestGreedyChooseMatchesFullCost(t *testing.T) {
	// Across both paper join shapes, every selectivity regime, and several
	// cluster sizes the greedy candidate set must land on a plan with the
	// full enumeration's minimum cost: anything it skips is strictly
	// dominated under the Table-1 model.
	cases := []struct {
		name string
		js   *JoinSchema
		sa   ArrayStats
		sb   ArrayStats
	}{
		{"fig5-AA", infer(t, fig5Sources(t)), ArrayStats{128 << 20, 32}, ArrayStats{128 << 20, 32}},
		{"DD", infer(t, ddSources(t)), ArrayStats{1 << 20, 1024}, ArrayStats{1 << 20, 1024}},
	}
	for _, tc := range cases {
		for _, sel := range []float64{0.001, 0.01, 0.1, 1, 10, 100} {
			for _, nodes := range []int{1, 4, 16} {
				opt := PlanOptions{Selectivity: sel, Nodes: nodes}
				full, err := Choose(tc.js, tc.sa, tc.sb, opt)
				if err != nil {
					t.Fatalf("%s sel=%v k=%d: Choose: %v", tc.name, sel, nodes, err)
				}
				greedy, err := GreedyChoose(tc.js, tc.sa, tc.sb, opt)
				if err != nil {
					t.Fatalf("%s sel=%v k=%d: GreedyChoose: %v", tc.name, sel, nodes, err)
				}
				if math.Abs(greedy.Cost-full.Cost) > 1e-9*math.Max(1, full.Cost) {
					t.Errorf("%s sel=%v k=%d: greedy %s (%.6g) vs full %s (%.6g)",
						tc.name, sel, nodes, greedy.Describe(), greedy.Cost,
						full.Describe(), full.Cost)
				}
			}
		}
	}
}

func TestGreedyChoosePlanIsValid(t *testing.T) {
	js := infer(t, fig5Sources(t))
	p, err := GreedyChoose(js, ArrayStats{1 << 20, 32}, ArrayStats{1 << 20, 32}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The chosen plan must round-trip through the validator unchanged and
	// carry a unit spec (NumUnits > 0) so the pipeline can slice on it.
	check := p
	if !validate(&check) {
		t.Fatalf("greedy plan %s does not validate", p.Describe())
	}
	if p.NumUnits <= 0 {
		t.Errorf("NumUnits = %d, want > 0", p.NumUnits)
	}
	if p.Units != check.Units {
		t.Errorf("Units = %v, validator says %v", p.Units, check.Units)
	}
}
