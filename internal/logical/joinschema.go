// Package logical implements the logical join planner of Section 4 of the
// paper: it analyzes the join predicate, infers the join schema J, and runs
// a dynamic-programming enumeration over schema-alignment operators and
// join algorithms (Algorithm 1) to pick the cheapest execution plan.
package logical

import (
	"fmt"

	"shufflejoin/internal/array"
	"shufflejoin/internal/join"
	"shufflejoin/internal/stats"
)

// JoinSchema is J = {D_J, A_J}: the schema the join executes in. Every
// dimension of J appears in the predicate, so grouping cells by J's chunk
// intervals (or by a hash of the key) puts all possibly-matching cells in
// the same join unit. Its attributes are everything needed to build the
// destination schema and evaluate the predicate.
type JoinSchema struct {
	// Dims are the join-space dimensions (used when units are chunks).
	// Empty when no predicate term can be ranged (pure string keys), in
	// which case only hash units are available.
	Dims []array.Dimension
	// LeftDimRefs/RightDimRefs give, per join dimension, where each side
	// reads its join-space coordinate (a source dimension or attribute).
	LeftDimRefs, RightDimRefs []join.Ref
	// Pred is the resolved predicate; its refs provide the comparison keys.
	Pred *ResolvedSources
	// LeftCarry/RightCarry are the attribute indices each side must carry
	// through the shuffle: A_J = D_τ ∪ A_τ ∪ P − D_J restricted to that
	// side (vertical partitioning moves only necessary columns).
	LeftCarry, RightCarry []int
}

// ResolvedSources bundles the inputs of planning: source schemas, the
// resolved predicate, and the destination schema.
type ResolvedSources struct {
	Left, Right *array.Schema
	Out         *array.Schema // destination τ; may have zero dims (unordered output)
	Resolved    *join.ResolvedPredicate
}

// InferOptions tunes join-schema inference for attributes that have no
// source or destination dimension to copy.
type InferOptions struct {
	// AttrHistogram returns a histogram of an attribute's values for the
	// named array, used to infer a dimension extent and chunk interval
	// (Section 4: "translating a histogram of the source data's value
	// distribution into a set of ranges and chunking intervals"). May be
	// nil when the planner can always copy an existing dimension.
	AttrHistogram func(arrayName, attrName string) *stats.Histogram
	// TargetCellsPerChunk sizes inferred chunk intervals; join units are
	// designed to be of moderate size (Section 3.3).
	TargetCellsPerChunk int64
	// ExtraCarryLeft/ExtraCarryRight name additional source attributes the
	// shuffle must carry — the columns referenced by SELECT expressions,
	// beyond those appearing verbatim in the destination schema.
	ExtraCarryLeft, ExtraCarryRight []string
}

// DefaultTargetCellsPerChunk keeps inferred join units at a moderate cell
// count, supporting fine-grained parallelization without overwhelming the
// physical planner with options (Section 3.3).
const DefaultTargetCellsPerChunk = 1 << 16

// ResolveSources validates and binds the planning inputs.
func ResolveSources(left, right, out *array.Schema, pred join.Predicate) (*ResolvedSources, error) {
	rp, err := join.ResolvePredicate(left, right, pred)
	if err != nil {
		return nil, err
	}
	if out == nil {
		out = DefaultOutputSchema(left, right, rp)
	}
	return &ResolvedSources{Left: left, Right: right, Out: out, Resolved: rp}, nil
}

// DefaultOutputSchema derives the natural-join default of Equation 3:
// dimensions are the union of the sources' minus the predicate's right-side
// dimensions (which merge with their left counterparts); attributes are the
// union minus right-side predicate attributes.
func DefaultOutputSchema(left, right *array.Schema, rp *join.ResolvedPredicate) *array.Schema {
	out := &array.Schema{Name: left.Name + "_join_" + right.Name}
	rightPredDim := make(map[string]bool)
	rightPredAttr := make(map[string]bool)
	for _, r := range rp.Right {
		if r.IsDim {
			rightPredDim[r.Name] = true
		} else {
			rightPredAttr[r.Name] = true
		}
	}
	out.Dims = append(out.Dims, left.Dims...)
	for _, d := range right.Dims {
		if !rightPredDim[d.Name] && !out.HasDim(d.Name) {
			out.Dims = append(out.Dims, d)
		}
	}
	out.Attrs = append(out.Attrs, left.Attrs...)
	for _, a := range right.Attrs {
		if !rightPredAttr[a.Name] && !out.HasAttr(a.Name) {
			out.Attrs = append(out.Attrs, a)
		}
	}
	return out
}

// InferJoinSchema builds J for the given sources (Section 4, "Join Schema
// Definition"). For each predicate pair it derives a join dimension:
// opportunistically copying the dimension space when either source or the
// destination already has it as a dimension (chunk intervals from the
// largest, range from the union), and otherwise inferring the shape from a
// histogram of the attribute's values.
func InferJoinSchema(src *ResolvedSources, opt InferOptions) (*JoinSchema, error) {
	if opt.TargetCellsPerChunk <= 0 {
		opt.TargetCellsPerChunk = DefaultTargetCellsPerChunk
	}
	js := &JoinSchema{Pred: src}
	rp := src.Resolved
	for i := range rp.Pred {
		lref, rref := rp.Left[i], rp.Right[i]
		dim, ok, err := inferDim(src, lref, rref, rp.Pred[i], opt)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // un-rangeable pair (string attribute): hash units only
		}
		js.Dims = append(js.Dims, dim)
		js.LeftDimRefs = append(js.LeftDimRefs, lref)
		js.RightDimRefs = append(js.RightDimRefs, rref)
	}
	js.LeftCarry, js.RightCarry = carrySets(src, opt)
	return js, nil
}

// inferDim derives one join dimension for a predicate pair. Returns
// ok=false when the pair cannot be ranged (string-typed attribute with no
// dimension on either side).
func inferDim(src *ResolvedSources, lref, rref join.Ref, pair join.PredPair, opt InferOptions) (array.Dimension, bool, error) {
	name := pair.Left.Name
	if d := outDimFor(src.Out, pair); d != "" {
		name = d
	}

	// Candidate dimension shapes to copy, in source priority order.
	var cands []array.Dimension
	if lref.IsDim {
		cands = append(cands, src.Left.Dims[lref.Index])
	}
	if rref.IsDim {
		cands = append(cands, src.Right.Dims[rref.Index])
	}
	if i := src.Out.DimIndex(name); i >= 0 {
		cands = append(cands, src.Out.Dims[i])
	}
	if len(cands) > 0 {
		d := array.Dimension{Name: name, Start: cands[0].Start, End: cands[0].End, ChunkInterval: cands[0].ChunkInterval}
		for _, c := range cands[1:] {
			if c.Start < d.Start {
				d.Start = c.Start
			}
			if c.End > d.End {
				d.End = c.End
			}
			if c.ChunkInterval > d.ChunkInterval {
				d.ChunkInterval = c.ChunkInterval
			}
		}
		return d, true, nil
	}

	// Both sides are attributes and τ lacks the dimension: infer from
	// statistics about the source data.
	if attrIsString(src.Left, lref) || attrIsString(src.Right, rref) {
		return array.Dimension{}, false, nil
	}
	if opt.AttrHistogram == nil {
		return array.Dimension{}, false, fmt.Errorf(
			"logical: predicate %s needs attribute statistics to infer a join dimension and none were provided", pair)
	}
	hl := opt.AttrHistogram(src.Left.Name, lref.Name)
	hr := opt.AttrHistogram(src.Right.Name, rref.Name)
	if hl == nil && hr == nil {
		return array.Dimension{}, false, fmt.Errorf("logical: no histogram for %s or %s", pair.Left, pair.Right)
	}
	var lo, hi int64
	var total int64
	first := true
	merge := func(h *stats.Histogram) *stats.Histogram {
		if h == nil {
			return nil
		}
		l, u := h.ValueRange()
		if first {
			lo, hi, first = l, u, false
		} else {
			if l < lo {
				lo = l
			}
			if u > hi {
				hi = u
			}
		}
		total += h.Total
		return h
	}
	merge(hl)
	merge(hr)
	extent := hi - lo + 1
	if extent < 1 {
		extent = 1
	}
	chunks := (total + opt.TargetCellsPerChunk - 1) / opt.TargetCellsPerChunk
	if chunks < 1 {
		chunks = 1
	}
	ci := (extent + chunks - 1) / chunks
	if ci < 1 {
		ci = 1
	}
	return array.Dimension{Name: name, Start: lo, End: hi, ChunkInterval: ci}, true, nil
}

// outDimFor returns the destination dimension name matching either term of
// the pair, if any.
func outDimFor(out *array.Schema, pair join.PredPair) string {
	if out == nil {
		return ""
	}
	if out.HasDim(pair.Left.Name) {
		return pair.Left.Name
	}
	if out.HasDim(pair.Right.Name) {
		return pair.Right.Name
	}
	return ""
}

func attrIsString(s *array.Schema, r join.Ref) bool {
	return !r.IsDim && s.Attrs[r.Index].Type == array.TypeString
}

// carrySets computes which attribute columns each side must move: those
// appearing in the destination schema (as attributes or dimensions), in
// the predicate, or named by the caller's SELECT expressions. Everything
// else stays home.
func carrySets(src *ResolvedSources, opt InferOptions) (left, right []int) {
	needL := make(map[int]bool)
	needR := make(map[int]bool)
	for i := range src.Resolved.Left {
		if r := src.Resolved.Left[i]; !r.IsDim {
			needL[r.Index] = true
		}
		if r := src.Resolved.Right[i]; !r.IsDim {
			needR[r.Index] = true
		}
	}
	names := outNames(src.Out)
	for _, name := range names {
		if i := src.Left.AttrIndex(name); i >= 0 {
			needL[i] = true
		}
		if i := src.Right.AttrIndex(name); i >= 0 {
			needR[i] = true
		}
	}
	for _, name := range opt.ExtraCarryLeft {
		if i := src.Left.AttrIndex(name); i >= 0 {
			needL[i] = true
		}
	}
	for _, name := range opt.ExtraCarryRight {
		if i := src.Right.AttrIndex(name); i >= 0 {
			needR[i] = true
		}
	}
	return sortedKeys(needL), sortedKeys(needR)
}

func outNames(out *array.Schema) []string {
	if out == nil {
		return nil
	}
	names := make([]string, 0, len(out.Dims)+len(out.Attrs))
	for _, d := range out.Dims {
		names = append(names, d.Name)
	}
	for _, a := range out.Attrs {
		names = append(names, a.Name)
	}
	return names
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort: sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// SideConforms reports whether a source schema is already organized as J
// for its side: every join dimension reads from a source dimension at the
// same position with identical origin and chunk interval. When true, the
// array's stored chunks are usable as join units directly and a scan
// suffices (no reorganization).
func (js *JoinSchema) SideConforms(s *array.Schema, refs []join.Ref) bool {
	if len(js.Dims) == 0 || len(js.Dims) != len(s.Dims) || len(refs) != len(js.Dims) {
		return false
	}
	for i, jd := range js.Dims {
		ref := refs[i]
		if !ref.IsDim || ref.Index != i {
			return false
		}
		sd := s.Dims[i]
		if sd.Start != jd.Start || sd.ChunkInterval != jd.ChunkInterval || sd.End > jd.End {
			return false
		}
	}
	return true
}

// LeftConforms and RightConforms apply SideConforms to each operand.
func (js *JoinSchema) LeftConforms() bool {
	return js.SideConforms(js.Pred.Left, js.LeftDimRefs)
}

// RightConforms reports conformance of the right operand.
func (js *JoinSchema) RightConforms() bool {
	return js.SideConforms(js.Pred.Right, js.RightDimRefs)
}

// OutConforms reports whether the join schema's dimension grid equals the
// destination schema's, so join-unit chunks are already destination chunks.
func (js *JoinSchema) OutConforms() bool {
	out := js.Pred.Out
	if len(out.Dims) == 0 {
		return true // unordered destination accepts anything
	}
	if len(out.Dims) != len(js.Dims) {
		return false
	}
	for i, jd := range js.Dims {
		od := out.Dims[i]
		if od.Name != jd.Name || od.Start != jd.Start || od.ChunkInterval != jd.ChunkInterval {
			return false
		}
	}
	return true
}

// NumChunkUnits returns the join-unit count of the chunk grid (0 when J has
// no dimensions).
func (js *JoinSchema) NumChunkUnits() int {
	if len(js.Dims) == 0 {
		return 0
	}
	n := 1
	for _, d := range js.Dims {
		n *= int(d.ChunkCount())
	}
	return n
}
