package simnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSim(t *testing.T, cfg Config, trs []Transfer) Result {
	t.Helper()
	res, err := Simulate(cfg, trs)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return res
}

func TestSimulateSingleTransfer(t *testing.T) {
	cfg := Config{Nodes: 2, PerCellTime: 0.5}
	res := mustSim(t, cfg, []Transfer{{From: 0, To: 1, Cells: 10}})
	if res.Makespan != 5 {
		t.Errorf("Makespan = %v, want 5", res.Makespan)
	}
	if res.CellsSent[0] != 10 || res.CellsRecv[1] != 10 {
		t.Errorf("cells: sent=%v recv=%v", res.CellsSent, res.CellsRecv)
	}
}

func TestSimulateLocalTransfersFree(t *testing.T) {
	cfg := Config{Nodes: 2, PerCellTime: 1}
	res := mustSim(t, cfg, []Transfer{{From: 0, To: 0, Cells: 1000}})
	if res.Makespan != 0 {
		t.Errorf("local transfer should cost nothing, got %v", res.Makespan)
	}
	if len(res.Timeline) != 0 {
		t.Error("local transfer should not appear in timeline")
	}
}

func TestReceiverSerializes(t *testing.T) {
	// Two senders to the same receiver: the write lock serializes them.
	cfg := Config{Nodes: 3, PerCellTime: 1}
	res := mustSim(t, cfg, []Transfer{
		{From: 0, To: 2, Cells: 10},
		{From: 1, To: 2, Cells: 10},
	})
	if res.Makespan != 20 {
		t.Errorf("Makespan = %v, want 20 (serialized)", res.Makespan)
	}
}

func TestFullDuplexParallelism(t *testing.T) {
	// Disjoint pairs run fully in parallel.
	cfg := Config{Nodes: 4, PerCellTime: 1}
	res := mustSim(t, cfg, []Transfer{
		{From: 0, To: 1, Cells: 10},
		{From: 2, To: 3, Cells: 10},
	})
	if res.Makespan != 10 {
		t.Errorf("Makespan = %v, want 10 (parallel)", res.Makespan)
	}
}

func TestSendAndReceiveSimultaneously(t *testing.T) {
	// A node can send while receiving (full duplex): 0->1 and 1->0 overlap.
	cfg := Config{Nodes: 2, PerCellTime: 1}
	res := mustSim(t, cfg, []Transfer{
		{From: 0, To: 1, Cells: 10},
		{From: 1, To: 0, Cells: 10},
	})
	if res.Makespan != 10 {
		t.Errorf("Makespan = %v, want 10 (full duplex)", res.Makespan)
	}
}

func TestGreedySkipsLockedDestination(t *testing.T) {
	// Sender 0 queues [->2 big, ->3 small]; sender 1 grabs 2 first.
	// Greedy lets sender 0 skip to node 3 instead of waiting.
	cfg := Config{Nodes: 4, PerCellTime: 1, Scheduling: GreedyLocks}
	res := mustSim(t, cfg, []Transfer{
		{From: 1, To: 2, Cells: 100},
		{From: 0, To: 2, Cells: 10},
		{From: 0, To: 3, Cells: 10},
	})
	// Greedy: at t=0 node1 starts ->2 (lock 2 until 100). Node 0 skips its
	// ->2 head and sends ->3 during [0,10], then ->2 during [100,110].
	if res.Makespan != 110 {
		t.Errorf("Makespan = %v, want 110", res.Makespan)
	}
	if res.SkippedSends == 0 {
		t.Error("expected at least one skipped send")
	}

	// FIFO: node 0 waits for lock 2: ->2 during [100,110], ->3 during [110,120].
	cfg.Scheduling = FIFONoSkip
	resF := mustSim(t, cfg, []Transfer{
		{From: 1, To: 2, Cells: 100},
		{From: 0, To: 2, Cells: 10},
		{From: 0, To: 3, Cells: 10},
	})
	if resF.Makespan != 120 {
		t.Errorf("FIFO Makespan = %v, want 120", resF.Makespan)
	}
	if resF.Makespan <= res.Makespan {
		t.Error("greedy scheduling should beat FIFO here")
	}
}

func TestPollWhenAllLocked(t *testing.T) {
	// Sender 0's only destination is locked by a longer transfer: it polls.
	cfg := Config{Nodes: 3, PerCellTime: 1}
	res := mustSim(t, cfg, []Transfer{
		{From: 1, To: 2, Cells: 50},
		{From: 0, To: 2, Cells: 5},
	})
	if res.Makespan != 55 {
		t.Errorf("Makespan = %v, want 55", res.Makespan)
	}
	if res.LockWaits == 0 {
		t.Error("expected a lock wait (poll)")
	}
	// Sender 0 is free at t=0 but node 2's lock releases at t=50: 50s of
	// wait attributed to receiver 2, none elsewhere.
	if res.RecvLockWait[2] != 50 {
		t.Errorf("RecvLockWait[2] = %v, want 50", res.RecvLockWait[2])
	}
	if res.RecvLockWait[0] != 0 || res.RecvLockWait[1] != 0 {
		t.Errorf("wait misattributed: %v", res.RecvLockWait)
	}
	if res.LockWaitTime != 50 {
		t.Errorf("LockWaitTime = %v, want 50", res.LockWaitTime)
	}
}

// Property: LockWaitTime is always the sum of the per-receiver waits, and
// zero whenever no poll occurred.
func TestLockWaitAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var trs []Transfer
	for i := 0; i < 150; i++ {
		trs = append(trs, Transfer{From: rng.Intn(4), To: rng.Intn(4), Cells: rng.Int63n(80) + 1, Tag: i})
	}
	res := mustSim(t, Config{Nodes: 4, PerCellTime: 0.01}, trs)
	var sum float64
	for _, w := range res.RecvLockWait {
		if w < 0 {
			t.Fatalf("negative lock wait: %v", res.RecvLockWait)
		}
		sum += w
	}
	if math.Abs(sum-res.LockWaitTime) > 1e-12 {
		t.Errorf("LockWaitTime %v != Σ RecvLockWait %v", res.LockWaitTime, sum)
	}
	if res.LockWaits == 0 && res.LockWaitTime != 0 {
		t.Error("wait time recorded without any poll")
	}
}

func TestValidateRejectsBadInput(t *testing.T) {
	if _, err := Simulate(Config{Nodes: 0, PerCellTime: 1}, nil); err == nil {
		t.Error("zero nodes should be rejected")
	}
	if _, err := Simulate(Config{Nodes: 2, PerCellTime: 1}, []Transfer{{From: 0, To: 5, Cells: 1}}); err == nil {
		t.Error("out-of-range node should be rejected")
	}
	if _, err := Simulate(Config{Nodes: 2, PerCellTime: 1}, []Transfer{{From: 0, To: 1, Cells: -1}}); err == nil {
		t.Error("negative size should be rejected")
	}
	if _, err := Simulate(Config{Nodes: 2, PerCellTime: -1}, nil); err == nil {
		t.Error("negative per-cell time should be rejected")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var trs []Transfer
	for i := 0; i < 200; i++ {
		trs = append(trs, Transfer{From: rng.Intn(6), To: rng.Intn(6), Cells: rng.Int63n(100) + 1, Tag: i})
	}
	cfg := Config{Nodes: 6, PerCellTime: 0.01}
	a := mustSim(t, cfg, trs)
	b := mustSim(t, cfg, trs)
	if a.Makespan != b.Makespan || a.LockWaits != b.LockWaits || len(a.Timeline) != len(b.Timeline) {
		t.Error("simulation not deterministic")
	}
}

// Property: makespan is at least the per-node busy-time lower bound and at
// most the fully serialized sum.
func TestMakespanBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(6) + 2
		n := rng.Intn(40) + 1
		var trs []Transfer
		var totalTime float64
		cfg := Config{Nodes: k, PerCellTime: 0.1}
		for i := 0; i < n; i++ {
			tr := Transfer{From: rng.Intn(k), To: rng.Intn(k), Cells: rng.Int63n(50)}
			if tr.From != tr.To {
				totalTime += float64(tr.Cells) * cfg.PerCellTime
			}
			trs = append(trs, tr)
		}
		res, err := Simulate(cfg, trs)
		if err != nil {
			return false
		}
		send, recv := res.MaxSendRecv()
		lower := math.Max(send, recv)
		return res.Makespan >= lower-1e-9 && res.Makespan <= totalTime+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the timeline never has two transfers overlapping on the same
// sender NIC or the same receiver lock.
func TestNoOverlapInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(5) + 2
		var trs []Transfer
		for i := 0; i < 60; i++ {
			trs = append(trs, Transfer{From: rng.Intn(k), To: rng.Intn(k), Cells: rng.Int63n(30) + 1})
		}
		res, err := Simulate(Config{Nodes: k, PerCellTime: 0.05}, trs)
		if err != nil {
			return false
		}
		for i, a := range res.Timeline {
			for _, b := range res.Timeline[i+1:] {
				overlap := a.Start < b.End-1e-12 && b.Start < a.End-1e-12
				if overlap && (a.Transfer.From == b.Transfer.From || a.Transfer.To == b.Transfer.To) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLatencyPerTransfer(t *testing.T) {
	cfg := Config{Nodes: 3, PerCellTime: 1, Latency: 5}
	res := mustSim(t, cfg, []Transfer{
		{From: 0, To: 2, Cells: 10},
		{From: 1, To: 2, Cells: 10},
	})
	// Serialized on receiver 2: (5+10) + (5+10).
	if res.Makespan != 30 {
		t.Errorf("Makespan = %v, want 30", res.Makespan)
	}
	if _, err := Simulate(Config{Nodes: 2, PerCellTime: 1, Latency: -1}, nil); err == nil {
		t.Error("negative latency should be rejected")
	}
}

func TestLatencyPenalizesFragmentation(t *testing.T) {
	// The same cells in one transfer vs ten: latency makes fragmentation
	// strictly worse.
	cfg := Config{Nodes: 2, PerCellTime: 1, Latency: 2}
	one := mustSim(t, cfg, []Transfer{{From: 0, To: 1, Cells: 100}})
	var many []Transfer
	for i := 0; i < 10; i++ {
		many = append(many, Transfer{From: 0, To: 1, Cells: 10})
	}
	ten := mustSim(t, cfg, many)
	if ten.Makespan <= one.Makespan {
		t.Errorf("fragmented %v should exceed single %v", ten.Makespan, one.Makespan)
	}
}
