package simnet

import (
	"testing"

	"shufflejoin/internal/flight"
)

// TestSimulateFlightEvents checks that a simulation leaves its telemetry
// trail — an align-done event always, plus a hot-receiver event naming
// the most lock-contended destination when senders stalled — and that
// recording does not perturb the result.
func TestSimulateFlightEvents(t *testing.T) {
	// Two senders both target node 2: the second must wait on the write
	// lock, producing lock-wait time attributed to node 2.
	transfers := []Transfer{
		{From: 0, To: 2, Cells: 100},
		{From: 1, To: 2, Cells: 100},
	}
	cfg := Config{Nodes: 3, PerCellTime: 0.01}
	base, err := Simulate(cfg, transfers)
	if err != nil {
		t.Fatal(err)
	}
	if base.LockWaitTime <= 0 {
		t.Fatalf("fixture produced no lock contention: %+v", base)
	}

	fr := flight.New(32)
	cfg.Flight, cfg.FlightQID = fr, 5
	got, err := Simulate(cfg, transfers)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != base.Makespan || got.LockWaitTime != base.LockWaitTime {
		t.Errorf("recording changed the result: %v vs %v", got.Makespan, base.Makespan)
	}

	evs := fr.Snapshot(0)
	if len(evs) != 2 {
		t.Fatalf("events = %d, want align-done + hot-receiver", len(evs))
	}
	align, hot := evs[0], evs[1]
	if align.Type != flight.EvAlignDone || align.QID != 5 {
		t.Fatalf("first event = %+v", align)
	}
	if align.Args[0] != int64(len(got.Timeline)) || flight.Float(align.Args[1]) != got.Makespan {
		t.Errorf("align-done args = %v", align.Args)
	}
	if hot.Type != flight.EvHotReceiver || hot.Args[0] != 2 {
		t.Fatalf("hot-receiver event = %+v", hot)
	}
	if flight.Float(hot.Args[1]) != got.RecvLockWait[2] || hot.Args[2] != got.CellsRecv[2] {
		t.Errorf("hot-receiver args = %v", hot.Args)
	}
}

// TestSimulateNoContentionNoHotReceiver: distinct receivers, no lock
// waits, so only the align-done event is recorded.
func TestSimulateNoContentionNoHotReceiver(t *testing.T) {
	fr := flight.New(32)
	_, err := Simulate(Config{Nodes: 3, PerCellTime: 0.01, Flight: fr}, []Transfer{
		{From: 0, To: 1, Cells: 10},
		{From: 1, To: 2, Cells: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := fr.Snapshot(0)
	if len(evs) != 1 || evs[0].Type != flight.EvAlignDone {
		t.Fatalf("events = %+v, want a single align-done", evs)
	}
}
