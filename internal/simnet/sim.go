package simnet

import "shufflejoin/internal/flight"

// This file is the indexed event-driven scheduler behind Simulate. It
// replaces the original O(T·N·Q) dispatch loop (kept as simulateReference
// for differential testing) with four index structures:
//
//   - per-sender ring queues, grouped by destination: each sender's pending
//     transfers live in one flat entries array, contiguous per (sender,
//     destination) and seq-ascending within a group; a dequeue is a head
//     index advance instead of a slice splice;
//   - a per-sender mini-heap of its destination groups keyed by the head
//     transfer's input position (headSeq). Only the sender's own dispatches
//     change its own keys, so maintenance is one O(log D) sift per
//     dispatch, and "the first queued transfer with a free destination" —
//     the greedy rule's common case — resolves by checking the heap root
//     alone instead of scanning every group;
//   - a per-sender cached candidate — which transfer the sender would
//     dispatch next and when it could start — plus an indexed min-heap of
//     senders keyed by (start, seq), so choosing the globally earliest
//     feasible dispatch is O(log N) instead of a rescan of every queue;
//   - per-destination waiter buckets: the senders whose cached candidate
//     targets destination d. A dispatch to d invalidates exactly those
//     candidates (recvFree[d] moved); they are marked stale in O(1) and
//     re-evaluated lazily, only if they surface at the heap top, because a
//     stale key remains a valid lower bound under monotone lock times.
//
// The invalidation rule is exact, not heuristic: a candidate is a pure
// function of (sender queue, senderFree[sender], recvFree[]), recvFree
// values only ever increase, and increasing recvFree[d] cannot change a
// candidate whose destination is not d — a free destination stays the
// first free one (everything earlier in queue order stays locked), and a
// polled minimum cannot move to a destination whose release time grew.
// Dispatching from sender f changes senderFree[f] and empties a queue
// slot, and f's candidate necessarily targeted the dispatched destination,
// so recomputing the waiter bucket covers f too. Candidate keys only
// increase over time, which also gives the non-decreasing-start dispatch
// order that lets Timeline skip its final sort. See DESIGN.md §8.

// Sim is a reusable simulator instance. The zero value is ready to use;
// Simulate may be called any number of times with any configurations and
// reuses the instance's internal buffers, so a steady-state caller (the
// pipeline's per-step alignment, the bench sweeps) runs allocation-free
// once the buffers have grown to the workload's high-water mark.
//
// The Result returned by (*Sim).Simulate aliases the instance's buffers
// and is valid only until the next Simulate call on the same instance;
// callers that retain it must Clone it first. The package-level Simulate
// uses a throwaway instance and returns an independent Result. A Sim is
// not safe for concurrent use.
type Sim struct {
	nodes int

	// Scheduling inputs, copied out of the Config for the duration of a run.
	sched   Scheduling
	latency float64
	perCell float64

	entries []entry       // all simulated transfers, grouped (sender, dest), seq-ascending
	groups  []group       // (sender, dest) segments of entries, grouped by sender
	senders []senderState // per-node group span + cached candidate

	senderFree []float64 // when each sender's NIC may transmit again
	recvFree   []float64 // when each receiver's write lock frees

	counts []int32 // nodes×nodes grouping scratch (counts, then fill offsets)

	gheap  []int32 // per-sender group heaps keyed by headSeq, segmented like groups
	gstack []int32 // scratch for the pruned free-destination heap search

	heapArr []int32   // indexed min-heap of senders, keyed by (cand.start, cand.seq)
	heapPos []int32   // sender → position in heapArr, -1 if absent
	waiters [][]int32 // destination → senders whose candidate targets it

	res Result // reused result buffers
}

// entry is one simulated transfer with its global input position, used to
// break start-time ties deterministically.
type entry struct {
	tr  Transfer
	seq int
}

// group is one (sender, destination) FIFO: entries[head:end], head
// advancing as transfers dispatch. headSeq caches entries[head].seq
// (maxSeq once drained) so queue-order decisions never touch the entries
// array; hpos is the group's slot in its sender's group heap.
type group struct {
	to      int
	head    int
	end     int
	headSeq int
	hpos    int32
}

// cand caches a sender's next dispatch: the group whose head it would
// send, the earliest start, whether that start required polling a held
// lock, and the minimum seq among all the sender's remaining transfers
// (to detect skipped sends without rescanning the queue).
type cand struct {
	start  float64
	seq    int
	group  int
	minSeq int
	polled bool
}

type senderState struct {
	gs, ge int // group span in Sim.groups and Sim.gheap
	cand   cand
	// dirty marks the cached candidate as possibly stale: a dispatch
	// touched the destination it targeted. The stale key is still a valid
	// lower bound (lock release times only increase), so the sender keeps
	// its heap position and is recomputed lazily, only if it surfaces at
	// the heap top — repeated invalidations of a long-blocked sender
	// collapse into a single recompute.
	dirty bool
}

const maxSeq = int(^uint(0) >> 1)

// debugCheckTimeline, set by the package's tests, verifies after every run
// that dispatch produced a Timeline with non-decreasing start times — the
// invariant that lets Simulate skip the final stable sort the original
// loop needed.
var debugCheckTimeline = false

// Simulate runs the data alignment phase on this reusable instance. See
// the package-level Simulate for the simulation semantics and the Sim
// type's documentation for the buffer-aliasing contract.
func (s *Sim) Simulate(cfg Config, transfers []Transfer) (Result, error) {
	if err := cfg.Validate(transfers); err != nil {
		return Result{}, err
	}
	s.sched, s.latency, s.perCell = cfg.Scheduling, cfg.Latency, cfg.PerCellTime
	s.reset(cfg.Nodes)
	s.build(transfers)
	s.run(cfg.OnComplete)
	if debugCheckTimeline {
		for i := 1; i < len(s.res.Timeline); i++ {
			if s.res.Timeline[i].Start < s.res.Timeline[i-1].Start {
				panic("simnet: dispatch produced a decreasing start time")
			}
		}
	}
	s.recordFlight(cfg)
	return s.res, nil
}

// recordFlight leaves the alignment phase's trail in the flight
// recorder: one align-done event per simulation and, when senders
// stalled on a receiver's write lock, one hot-receiver event naming the
// most contended destination. Telemetry only — s.res is never touched.
func (s *Sim) recordFlight(cfg Config) {
	fr := cfg.Flight
	if fr == nil {
		return
	}
	fr.Record(flight.EvAlignDone, cfg.FlightQID,
		int64(len(s.res.Timeline)), flight.F(s.res.Makespan),
		int64(s.res.LockWaits), flight.F(s.res.LockWaitTime))
	if s.res.LockWaitTime > 0 {
		hot, wait := 0, 0.0
		for j, w := range s.res.RecvLockWait {
			if w > wait {
				hot, wait = j, w
			}
		}
		var cells int64
		if hot < len(s.res.CellsRecv) {
			cells = s.res.CellsRecv[hot]
		}
		fr.Record(flight.EvHotReceiver, cfg.FlightQID,
			int64(hot), flight.F(wait), cells, 0)
	}
}

// reset sizes and zeroes every per-node buffer for a run on n nodes.
func (s *Sim) reset(n int) {
	s.nodes = n
	s.senderFree = resizeFloats(s.senderFree, n)
	s.recvFree = resizeFloats(s.recvFree, n)
	s.counts = resizeInt32s(s.counts, n*n)
	s.heapPos = resizeInt32s(s.heapPos, n)
	for i := range s.heapPos {
		s.heapPos[i] = -1
	}
	s.heapArr = s.heapArr[:0]
	if cap(s.gstack) < n+1 {
		s.gstack = make([]int32, 0, n+1)
	}
	if cap(s.senders) < n {
		s.senders = make([]senderState, n)
	} else {
		s.senders = s.senders[:n]
	}
	for len(s.waiters) < n {
		s.waiters = append(s.waiters, nil)
	}
	for i := 0; i < n; i++ {
		s.waiters[i] = s.waiters[i][:0]
	}

	r := &s.res
	r.SendBusy = resizeFloats(r.SendBusy, n)
	r.RecvBusy = resizeFloats(r.RecvBusy, n)
	r.RecvLockWait = resizeFloats(r.RecvLockWait, n)
	r.CellsSent = resizeInt64s(r.CellsSent, n)
	r.CellsRecv = resizeInt64s(r.CellsRecv, n)
	r.Makespan, r.LockWaits, r.SkippedSends, r.LockWaitTime = 0, 0, 0, 0
}

// simulated reports whether a transfer occupies the network: local slices
// never do, and empty slices only when a positive latency charges their
// connection setup.
func (s *Sim) simulated(tr Transfer) bool {
	return tr.From != tr.To && (tr.Cells > 0 || s.latency > 0)
}

// build groups the simulated transfers by (sender, destination) into the
// flat entries array via a two-pass counting sort, preserving input order
// within each group, heapifies each sender's groups by headSeq, and sizes
// the Timeline to the exact event count.
func (s *Sim) build(transfers []Transfer) {
	n := s.nodes
	total := 0
	for _, tr := range transfers {
		if !s.simulated(tr) {
			continue
		}
		s.counts[tr.From*n+tr.To]++
		total++
	}
	if cap(s.entries) < total {
		s.entries = make([]entry, total)
	} else {
		s.entries = s.entries[:total]
	}
	s.groups = s.groups[:0]
	off := 0
	for f := 0; f < n; f++ {
		st := &s.senders[f]
		st.gs = len(s.groups)
		base := f * n
		for t := 0; t < n; t++ {
			c := int(s.counts[base+t])
			if c == 0 {
				continue
			}
			s.groups = append(s.groups, group{to: t, head: off, end: off + c})
			s.counts[base+t] = int32(off) // becomes the group's fill cursor
			off += c
		}
		st.ge = len(s.groups)
	}
	for i, tr := range transfers {
		if !s.simulated(tr) {
			continue
		}
		idx := tr.From*n + tr.To
		s.entries[s.counts[idx]] = entry{tr: tr, seq: i}
		s.counts[idx]++
	}
	s.gheap = resizeInt32s(s.gheap, len(s.groups))
	for f := 0; f < n; f++ {
		st := &s.senders[f]
		d := st.ge - st.gs
		for i := 0; i < d; i++ {
			gi := st.gs + i
			g := &s.groups[gi]
			g.headSeq = s.entries[g.head].seq
			g.hpos = int32(i)
			s.gheap[gi] = int32(gi)
		}
		for i := d/2 - 1; i >= 0; i-- {
			s.gsiftDown(st, i)
		}
	}
	if cap(s.res.Timeline) < total {
		s.res.Timeline = make([]Event, 0, total)
	} else {
		s.res.Timeline = s.res.Timeline[:0]
	}
}

// run is the event loop: pop the globally earliest feasible dispatch from
// the candidate heap, commit it, and re-evaluate only the senders whose
// candidate targeted the dispatched destination.
func (s *Sim) run(onComplete func(Event)) {
	for f := 0; f < s.nodes; f++ {
		st := &s.senders[f]
		st.dirty = false // senders may be reused from a previous run
		if st.gs < st.ge {
			s.recompute(f)
		}
	}
	res := &s.res
	for len(s.heapArr) > 0 {
		f := int(s.heapArr[0])
		st := &s.senders[f]
		if st.dirty {
			// The top sender's candidate may be stale. Refresh it: every
			// other key in the heap is a lower bound, so once the top is
			// clean its candidate is the exact global minimum.
			st.dirty = false
			s.recompute(f)
			continue
		}
		c := st.cand
		g := &s.groups[c.group]
		e := s.entries[g.head]
		tr := e.tr
		if c.polled {
			res.LockWaits++
			if wait := c.start - s.senderFree[f]; wait > 0 {
				res.RecvLockWait[tr.To] += wait
				res.LockWaitTime += wait
			}
		}
		if e.seq > c.minSeq {
			res.SkippedSends++
		}
		dur := s.latency + float64(tr.Cells)*s.perCell
		end := c.start + dur
		s.senderFree[f] = end
		s.recvFree[tr.To] = end
		res.SendBusy[tr.From] += dur
		res.RecvBusy[tr.To] += dur
		res.CellsSent[tr.From] += tr.Cells
		res.CellsRecv[tr.To] += tr.Cells
		if end > res.Makespan {
			res.Makespan = end
		}
		ev := Event{Transfer: tr, Start: c.start, End: end}
		res.Timeline = append(res.Timeline, ev)
		if onComplete != nil {
			onComplete(ev)
		}
		g.head++
		if g.head < g.end {
			g.headSeq = s.entries[g.head].seq
		} else {
			g.headSeq = maxSeq
		}
		s.gsiftDown(st, int(g.hpos))
		// Only candidates targeting tr.To saw an input change (f's own is
		// among them: it just dispatched to tr.To). Mark them stale; they
		// re-register in a bucket when they are actually recomputed.
		for _, w := range s.waiters[tr.To] {
			s.senders[w].dirty = true
		}
		s.waiters[tr.To] = s.waiters[tr.To][:0]
	}
}

// recompute re-derives a sender's cached candidate from its queues and the
// current lock state, fixes its heap position (or removes it when its
// queues are empty), and registers it in the candidate destination's
// waiter bucket. The group-heap root resolves FIFO candidates and the
// greedy fast path (queue head's destination free) in O(1); only a locked
// queue head falls back to one linear pass over the sender's groups.
func (s *Sim) recompute(f int) {
	st := &s.senders[f]
	ready := s.senderFree[f]
	root := int(s.gheap[st.gs])
	minSeq := s.groups[root].headSeq
	if minSeq == maxSeq {
		s.heapRemove(f)
		return
	}
	var c cand
	if s.sched == FIFONoSkip {
		// FIFO takes the overall queue head — the group-heap root.
		c = cand{start: ready, seq: minSeq, group: root, minSeq: minSeq}
		if at := s.recvFree[s.groups[root].to]; at > ready {
			c.start, c.polled = at, true
		}
	} else if s.recvFree[s.groups[root].to] <= ready {
		// Fast path: the overall queue head's destination is free, and no
		// earlier-queued transfer exists, so it is the greedy pick.
		c = cand{start: ready, seq: minSeq, group: root, minSeq: minSeq}
	} else {
		// Pruned DFS over the sender's group heap for the earliest-queued
		// free destination: a subtree is skipped when its root cannot beat
		// the best free group found so far (heap order: children hold
		// larger headSeq), so a free group near the root ends the search
		// after a handful of visits. The walk simultaneously accumulates
		// the polled fallback — the earliest-releasing lock, ties by queue
		// position. If no free group exists nothing was pruned except
		// drained subtrees (a drained node's children are drained too, by
		// heap order), so every live group was visited and the fallback's
		// lexmin is complete.
		best, bestG := maxSeq, -1
		pG, pSeq := -1, maxSeq
		var pAt float64
		d := st.ge - st.gs
		stack := append(s.gstack[:0], 0)
		for len(stack) > 0 {
			i := int(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
			gi := int(s.gheap[st.gs+i])
			g := &s.groups[gi]
			hs := g.headSeq
			if hs >= best { // covers drained groups: headSeq == maxSeq
				continue
			}
			if at := s.recvFree[g.to]; at <= ready {
				best, bestG = hs, gi
				continue // children hold larger headSeq: pruned
			} else if pG == -1 || at < pAt || (at == pAt && hs < pSeq) {
				pG, pAt, pSeq = gi, at, hs
			}
			if l := 2*i + 1; l < d {
				stack = append(stack, int32(l))
				if r := l + 1; r < d {
					stack = append(stack, int32(r))
				}
			}
		}
		if bestG >= 0 {
			c = cand{start: ready, seq: best, group: bestG, minSeq: minSeq}
		} else {
			c = cand{start: pAt, seq: pSeq, group: pG, minSeq: minSeq, polled: true}
		}
	}
	st.cand = c
	s.heapFix(f)
	to := s.groups[c.group].to
	s.waiters[to] = append(s.waiters[to], int32(f))
}

// gsiftDown restores a sender's group heap after the group at relative
// position i grew its headSeq (head advance or drain); keys never shrink,
// so sift-down is the only direction needed after build.
func (s *Sim) gsiftDown(st *senderState, i int) {
	base := st.gs
	d := st.ge - base
	for {
		l := 2*i + 1
		if l >= d {
			return
		}
		least := l
		if r := l + 1; r < d && s.groups[s.gheap[base+r]].headSeq < s.groups[s.gheap[base+l]].headSeq {
			least = r
		}
		gi, gl := s.gheap[base+i], s.gheap[base+least]
		if s.groups[gl].headSeq >= s.groups[gi].headSeq {
			return
		}
		s.gheap[base+i], s.gheap[base+least] = gl, gi
		s.groups[gi].hpos = int32(least)
		s.groups[gl].hpos = int32(i)
		i = least
	}
}

// Indexed binary min-heap over senders, keyed by (cand.start, cand.seq).
// seq values are globally unique, so the order — and therefore every
// dispatch — is a deterministic total order.

func (s *Sim) heapLess(a, b int32) bool {
	ca, cb := &s.senders[a].cand, &s.senders[b].cand
	if ca.start != cb.start {
		return ca.start < cb.start
	}
	return ca.seq < cb.seq
}

func (s *Sim) heapSwap(i, j int) {
	h := s.heapArr
	h[i], h[j] = h[j], h[i]
	s.heapPos[h[i]] = int32(i)
	s.heapPos[h[j]] = int32(j)
}

func (s *Sim) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(s.heapArr[i], s.heapArr[parent]) {
			return
		}
		s.heapSwap(i, parent)
		i = parent
	}
}

func (s *Sim) siftDown(i int) {
	n := len(s.heapArr)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && s.heapLess(s.heapArr[r], s.heapArr[l]) {
			least = r
		}
		if !s.heapLess(s.heapArr[least], s.heapArr[i]) {
			return
		}
		s.heapSwap(i, least)
		i = least
	}
}

// heapFix inserts sender f or restores the heap order around its updated
// key.
func (s *Sim) heapFix(f int) {
	if i := s.heapPos[f]; i >= 0 {
		s.siftUp(int(i))
		s.siftDown(int(s.heapPos[f]))
		return
	}
	s.heapArr = append(s.heapArr, int32(f))
	s.heapPos[f] = int32(len(s.heapArr) - 1)
	s.siftUp(len(s.heapArr) - 1)
}

// heapRemove deletes sender f from the heap (no-op if absent).
func (s *Sim) heapRemove(f int) {
	i := int(s.heapPos[f])
	if i < 0 {
		return
	}
	last := len(s.heapArr) - 1
	s.heapSwap(i, last)
	s.heapArr = s.heapArr[:last]
	s.heapPos[f] = -1
	if i < last {
		s.siftUp(i)
		s.siftDown(i)
	}
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resizeInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func resizeInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	clear(s)
	return s
}
