// Package simnet is a deterministic discrete-event simulator of the
// shared-nothing cluster network used during the shuffle join's data
// alignment phase.
//
// It models the environment of the paper's Sections 3.4 and 5.1: every node
// has a full-duplex link to a switched network, so a node may send and
// receive at the same time, but each node transmits at most one slice at a
// time and — via a coordinator-managed per-receiver write lock — each node
// receives at most one slice at a time. Transfer duration is proportional
// to the number of cells moved (the cost-model parameter t).
//
// The scheduler implements the greedy protocol of Section 3.4: when a
// sender is free it walks its outgoing slice queue in order and starts the
// first transfer whose destination lock is free; if every destination is
// locked it polls, waking when the earliest needed lock releases.
package simnet

import (
	"fmt"
	"sort"
)

// Transfer is one slice movement: Cells cells from node From to node To.
// Tag carries caller context (e.g. a join unit id) through to the timeline.
type Transfer struct {
	From, To int
	Cells    int64
	Tag      int
}

// Scheduling selects the shuffle scheduling policy.
type Scheduling int

const (
	// GreedyLocks is the paper's scheduler: skip to the next slice whose
	// destination lock is free, polling only when all are held.
	GreedyLocks Scheduling = iota
	// FIFONoSkip is the ablation baseline: each sender insists on its queue
	// order, blocking on a busy receiver instead of skipping past it.
	FIFONoSkip
)

// Config parameterizes a simulation.
type Config struct {
	Nodes       int
	PerCellTime float64 // seconds to transmit one cell (cost parameter t)
	// Latency is a fixed per-transfer setup time (connection + first-byte
	// delay). Zero matches the paper's pure-bandwidth model; a positive
	// value penalizes plans that fragment data into many tiny slices.
	Latency    float64
	Scheduling Scheduling
	// OnComplete, when non-nil, is invoked synchronously from the event
	// loop once per dispatched transfer, in dispatch order. Dispatch order
	// is deterministic (ties broken by input position) and start times are
	// non-decreasing, so a consumer sees transfers "complete" in the same
	// order on every run — this is what lets the pipeline engine start a
	// join unit's cell comparison the moment its last inbound slice lands,
	// without a global alignment barrier and without losing determinism.
	// The callback must not mutate the transfers slice.
	OnComplete func(Event)
}

// Event records one completed transfer in the simulated timeline.
type Event struct {
	Transfer
	Start, End float64
}

// Result summarizes a simulated data alignment phase.
type Result struct {
	Makespan     float64   // time at which the last transfer completes
	SendBusy     []float64 // per-node total time spent transmitting
	RecvBusy     []float64 // per-node total time spent receiving
	CellsSent    []int64   // per-node cells transmitted
	CellsRecv    []int64   // per-node cells received
	LockWaits    int       // times a sender had to poll with all locks held
	SkippedSends int       // times a sender skipped past a locked destination
	// RecvLockWait[j] is the simulated time senders spent stalled waiting
	// for node j's write lock (the gap between a sender becoming free and
	// its polled transfer starting, attributed to the destination). A
	// congestion diagnostic: a hot receiver shows up here before it shows
	// up in the makespan.
	RecvLockWait []float64
	LockWaitTime float64 // Σ_j RecvLockWait[j]
	Timeline     []Event
}

// Validate checks the configuration and transfers.
func (c Config) Validate(transfers []Transfer) error {
	if c.Nodes <= 0 {
		return fmt.Errorf("simnet: need at least one node, got %d", c.Nodes)
	}
	if c.PerCellTime < 0 {
		return fmt.Errorf("simnet: negative per-cell time %v", c.PerCellTime)
	}
	if c.Latency < 0 {
		return fmt.Errorf("simnet: negative latency %v", c.Latency)
	}
	for _, tr := range transfers {
		if tr.From < 0 || tr.From >= c.Nodes || tr.To < 0 || tr.To >= c.Nodes {
			return fmt.Errorf("simnet: transfer %+v outside node range [0,%d)", tr, c.Nodes)
		}
		if tr.Cells < 0 {
			return fmt.Errorf("simnet: negative transfer size %+v", tr)
		}
	}
	return nil
}

// Simulate runs the data alignment phase for the given transfers and
// returns the timing result. Transfers between a node and itself complete
// instantly (local slices are never shipped) and appear neither in the
// Timeline nor in OnComplete callbacks. The simulation is fully
// deterministic: ties are broken by sender id, then queue position.
func Simulate(cfg Config, transfers []Transfer) (Result, error) {
	if err := cfg.Validate(transfers); err != nil {
		return Result{}, err
	}
	res := Result{
		SendBusy:     make([]float64, cfg.Nodes),
		RecvBusy:     make([]float64, cfg.Nodes),
		CellsSent:    make([]int64, cfg.Nodes),
		CellsRecv:    make([]int64, cfg.Nodes),
		RecvLockWait: make([]float64, cfg.Nodes),
	}

	// Build per-sender queues preserving input order. seq records each
	// transfer's global input position, used to break start-time ties
	// deterministically.
	queues := make([][]queued, cfg.Nodes)
	remaining := 0
	for n, tr := range transfers {
		if tr.From == tr.To || tr.Cells == 0 {
			continue // local or empty: no network work
		}
		queues[tr.From] = append(queues[tr.From], queued{Transfer: tr, seq: n})
		remaining++
	}

	senderFree := make([]float64, cfg.Nodes) // when each NIC may transmit again
	recvFree := make([]float64, cfg.Nodes)   // when each receiver's write lock frees

	for remaining > 0 {
		// Choose the globally earliest feasible (sender, transfer) start,
		// breaking ties by the transfer's position in the input.
		bestSender, bestIdx, bestSeq := -1, -1, 0
		bestStart := 0.0
		bestPolled := false
		for i := 0; i < cfg.Nodes; i++ {
			q := queues[i]
			if len(q) == 0 {
				continue
			}
			idx, start, polled := nextForSender(cfg.Scheduling, q, senderFree[i], recvFree)
			seq := q[idx].seq
			if bestSender == -1 || start < bestStart || (start == bestStart && seq < bestSeq) {
				bestSender, bestIdx, bestSeq, bestStart, bestPolled = i, idx, seq, start, polled
			}
		}
		tr := queues[bestSender][bestIdx].Transfer
		if bestPolled {
			res.LockWaits++
			if wait := bestStart - senderFree[bestSender]; wait > 0 {
				res.RecvLockWait[tr.To] += wait
				res.LockWaitTime += wait
			}
		}
		if bestIdx > 0 {
			res.SkippedSends++
		}
		dur := cfg.Latency + float64(tr.Cells)*cfg.PerCellTime
		end := bestStart + dur
		senderFree[bestSender] = end
		recvFree[tr.To] = end
		res.SendBusy[tr.From] += dur
		res.RecvBusy[tr.To] += dur
		res.CellsSent[tr.From] += tr.Cells
		res.CellsRecv[tr.To] += tr.Cells
		if end > res.Makespan {
			res.Makespan = end
		}
		ev := Event{Transfer: tr, Start: bestStart, End: end}
		res.Timeline = append(res.Timeline, ev)
		if cfg.OnComplete != nil {
			cfg.OnComplete(ev)
		}
		// Remove the dispatched transfer, preserving order.
		queues[bestSender] = append(queues[bestSender][:bestIdx], queues[bestSender][bestIdx+1:]...)
		remaining--
	}
	sort.SliceStable(res.Timeline, func(i, j int) bool { return res.Timeline[i].Start < res.Timeline[j].Start })
	return res, nil
}

// queued is a Transfer annotated with its global input position.
type queued struct {
	Transfer
	seq int
}

// nextForSender picks which queued transfer the sender dispatches next and
// when it can start. With GreedyLocks it takes the first transfer whose
// destination lock is free when the sender is ready; if none, it polls
// until the earliest needed lock releases. With FIFONoSkip it always takes
// the head of the queue.
func nextForSender(s Scheduling, q []queued, senderReady float64, recvFree []float64) (idx int, start float64, polled bool) {
	if s == FIFONoSkip {
		head := q[0]
		start = senderReady
		if recvFree[head.To] > start {
			start = recvFree[head.To]
		}
		return 0, start, recvFree[head.To] > senderReady
	}
	// GreedyLocks: first destination free at senderReady wins.
	for i, tr := range q {
		if recvFree[tr.To] <= senderReady {
			return i, senderReady, false
		}
	}
	// All destinations locked: poll for the earliest release.
	bestIdx, bestAt := 0, recvFree[q[0].To]
	for i := 1; i < len(q); i++ {
		if at := recvFree[q[i].To]; at < bestAt {
			bestIdx, bestAt = i, at
		}
	}
	return bestIdx, bestAt, true
}

// MaxSendRecv returns max over nodes of total send time and of total
// receive time: the quantities the analytical model uses for the alignment
// phase estimate max(s, r) · t (Equations 5–6 are expressed in cells; these
// are the same maxima in seconds).
func (r Result) MaxSendRecv() (send, recv float64) {
	for i := range r.SendBusy {
		if r.SendBusy[i] > send {
			send = r.SendBusy[i]
		}
		if r.RecvBusy[i] > recv {
			recv = r.RecvBusy[i]
		}
	}
	return send, recv
}
