// Package simnet is a deterministic discrete-event simulator of the
// shared-nothing cluster network used during the shuffle join's data
// alignment phase.
//
// It models the environment of the paper's Sections 3.4 and 5.1: every node
// has a full-duplex link to a switched network, so a node may send and
// receive at the same time, but each node transmits at most one slice at a
// time and — via a coordinator-managed per-receiver write lock — each node
// receives at most one slice at a time. Transfer duration is proportional
// to the number of cells moved (the cost-model parameter t).
//
// The scheduler implements the greedy protocol of Section 3.4: when a
// sender is free it walks its outgoing slice queue in order and starts the
// first transfer whose destination lock is free; if every destination is
// locked it polls, waking when the earliest needed lock releases.
//
// Dispatch is resolved by an indexed event-driven scheduler (see sim.go
// and DESIGN.md §8): per-sender ring queues bucketed by destination, a
// min-heap of per-sender candidate dispatches keyed by (start, input
// position), and per-destination waiter buckets so a lock release
// re-evaluates only the senders blocked on it. The original rescan-
// everything loop is retained as simulateReference and the two are held
// bit-for-bit equivalent by differential and fuzz tests.
package simnet

import (
	"fmt"

	"shufflejoin/internal/flight"
)

// Transfer is one slice movement: Cells cells from node From to node To.
// Tag carries caller context (e.g. a join unit id) through to the timeline.
type Transfer struct {
	From, To int
	Cells    int64
	Tag      int
}

// Scheduling selects the shuffle scheduling policy.
type Scheduling int

const (
	// GreedyLocks is the paper's scheduler: skip to the next slice whose
	// destination lock is free, polling only when all are held.
	GreedyLocks Scheduling = iota
	// FIFONoSkip is the ablation baseline: each sender insists on its queue
	// order, blocking on a busy receiver instead of skipping past it.
	FIFONoSkip
)

// Config parameterizes a simulation.
type Config struct {
	Nodes       int
	PerCellTime float64 // seconds to transmit one cell (cost parameter t)
	// Latency is a fixed per-transfer setup time (connection + first-byte
	// delay). Zero matches the paper's pure-bandwidth model; a positive
	// value penalizes plans that fragment data into many tiny slices. With
	// a positive Latency even a zero-cell remote transfer is simulated —
	// it occupies its sender and its receiver's write lock for the setup
	// time; with Latency zero, zero-cell transfers cost nothing and are
	// dropped like local ones.
	Latency    float64
	Scheduling Scheduling
	// OnComplete, when non-nil, is invoked synchronously from the event
	// loop once per dispatched transfer, in dispatch order. Dispatch order
	// is deterministic (ties broken by input position) and start times are
	// non-decreasing, so a consumer sees transfers "complete" in the same
	// order on every run — this is what lets the pipeline engine start a
	// join unit's cell comparison the moment its last inbound slice lands,
	// without a global alignment barrier and without losing determinism.
	// The callback must not mutate the transfers slice.
	OnComplete func(Event)
	// Flight, when non-nil, receives an align-done event (and a
	// hot-receiver event when lock contention was observed) after each
	// simulation, stamped with FlightQID. Pure telemetry: recording never
	// alters the simulated timeline or the Result.
	Flight    *flight.Recorder
	FlightQID uint32
}

// Event records one completed transfer in the simulated timeline.
type Event struct {
	Transfer
	Start, End float64
}

// Result summarizes a simulated data alignment phase.
type Result struct {
	Makespan     float64   // time at which the last transfer completes
	SendBusy     []float64 // per-node total time spent transmitting
	RecvBusy     []float64 // per-node total time spent receiving
	CellsSent    []int64   // per-node cells transmitted
	CellsRecv    []int64   // per-node cells received
	LockWaits    int       // times a sender had to poll with all locks held
	SkippedSends int       // times a sender skipped past a locked destination
	// RecvLockWait[j] is the simulated time senders spent stalled waiting
	// for node j's write lock (the gap between a sender becoming free and
	// its polled transfer starting, attributed to the destination). A
	// congestion diagnostic: a hot receiver shows up here before it shows
	// up in the makespan.
	RecvLockWait []float64
	LockWaitTime float64 // Σ_j RecvLockWait[j]
	// Timeline holds every simulated transfer in dispatch order, which is
	// also non-decreasing Start order by construction.
	Timeline []Event
}

// Clone returns a deep copy of the result, with its own backing arrays.
// Use it to retain a Result produced by a reused Sim instance past the
// instance's next Simulate call.
func (r Result) Clone() Result {
	r.SendBusy = append([]float64(nil), r.SendBusy...)
	r.RecvBusy = append([]float64(nil), r.RecvBusy...)
	r.CellsSent = append([]int64(nil), r.CellsSent...)
	r.CellsRecv = append([]int64(nil), r.CellsRecv...)
	r.RecvLockWait = append([]float64(nil), r.RecvLockWait...)
	r.Timeline = append([]Event(nil), r.Timeline...)
	return r
}

// Validate checks the configuration and transfers.
func (c Config) Validate(transfers []Transfer) error {
	if c.Nodes <= 0 {
		return fmt.Errorf("simnet: need at least one node, got %d", c.Nodes)
	}
	if c.PerCellTime < 0 {
		return fmt.Errorf("simnet: negative per-cell time %v", c.PerCellTime)
	}
	if c.Latency < 0 {
		return fmt.Errorf("simnet: negative latency %v", c.Latency)
	}
	for _, tr := range transfers {
		if tr.From < 0 || tr.From >= c.Nodes || tr.To < 0 || tr.To >= c.Nodes {
			return fmt.Errorf("simnet: transfer %+v outside node range [0,%d)", tr, c.Nodes)
		}
		if tr.Cells < 0 {
			return fmt.Errorf("simnet: negative transfer size %+v", tr)
		}
	}
	return nil
}

// Simulate runs the data alignment phase for the given transfers and
// returns the timing result. Transfers between a node and itself complete
// instantly (local slices are never shipped) and appear neither in the
// Timeline nor in OnComplete callbacks; the same applies to zero-cell
// transfers unless a positive Config.Latency charges their connection
// setup. The simulation is fully deterministic: ties are broken by the
// transfer's position in the input.
//
// Simulate allocates a fresh Result on every call. Callers running many
// simulations back to back (the pipeline's alignment stage, the bench
// sweeps) should reuse a Sim instance instead, which runs allocation-free
// in steady state.
func Simulate(cfg Config, transfers []Transfer) (Result, error) {
	// A throwaway instance: its buffers become the returned Result, so no
	// copy is needed and the result is independently owned.
	var s Sim
	return s.Simulate(cfg, transfers)
}

// MaxSendRecv returns max over nodes of total send time and of total
// receive time: the quantities the analytical model uses for the alignment
// phase estimate max(s, r) · t (Equations 5–6 are expressed in cells; these
// are the same maxima in seconds).
func (r Result) MaxSendRecv() (send, recv float64) {
	for i := range r.SendBusy {
		if r.SendBusy[i] > send {
			send = r.SendBusy[i]
		}
		if r.RecvBusy[i] > recv {
			recv = r.RecvBusy[i]
		}
	}
	return send, recv
}
