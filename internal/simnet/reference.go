package simnet

import "sort"

// simulateReference is the original O(T·N·Q) dispatch loop, kept verbatim
// (plus the zero-cell latency rule) as the semantic reference for the
// indexed scheduler in sim.go: every dispatch rescans all sender queues
// for the globally earliest feasible (sender, transfer) start, splices the
// dispatched transfer out of its queue, and stable-sorts the Timeline at
// the end. The differential tests (equivalence_test.go, fuzz_test.go) and
// the full-scale benchmark guard require Simulate to reproduce its Result
// and OnComplete order bit for bit.
func simulateReference(cfg Config, transfers []Transfer) (Result, error) {
	if err := cfg.Validate(transfers); err != nil {
		return Result{}, err
	}
	res := Result{
		SendBusy:     make([]float64, cfg.Nodes),
		RecvBusy:     make([]float64, cfg.Nodes),
		CellsSent:    make([]int64, cfg.Nodes),
		CellsRecv:    make([]int64, cfg.Nodes),
		RecvLockWait: make([]float64, cfg.Nodes),
	}

	// Build per-sender queues preserving input order. seq records each
	// transfer's global input position, used to break start-time ties
	// deterministically.
	queues := make([][]queued, cfg.Nodes)
	remaining := 0
	for n, tr := range transfers {
		if tr.From == tr.To || (tr.Cells == 0 && cfg.Latency == 0) {
			continue // local, or empty with no setup cost: no network work
		}
		queues[tr.From] = append(queues[tr.From], queued{Transfer: tr, seq: n})
		remaining++
	}

	senderFree := make([]float64, cfg.Nodes) // when each NIC may transmit again
	recvFree := make([]float64, cfg.Nodes)   // when each receiver's write lock frees

	for remaining > 0 {
		// Choose the globally earliest feasible (sender, transfer) start,
		// breaking ties by the transfer's position in the input.
		bestSender, bestIdx, bestSeq := -1, -1, 0
		bestStart := 0.0
		bestPolled := false
		for i := 0; i < cfg.Nodes; i++ {
			q := queues[i]
			if len(q) == 0 {
				continue
			}
			idx, start, polled := nextForSender(cfg.Scheduling, q, senderFree[i], recvFree)
			seq := q[idx].seq
			if bestSender == -1 || start < bestStart || (start == bestStart && seq < bestSeq) {
				bestSender, bestIdx, bestSeq, bestStart, bestPolled = i, idx, seq, start, polled
			}
		}
		tr := queues[bestSender][bestIdx].Transfer
		if bestPolled {
			res.LockWaits++
			if wait := bestStart - senderFree[bestSender]; wait > 0 {
				res.RecvLockWait[tr.To] += wait
				res.LockWaitTime += wait
			}
		}
		if bestIdx > 0 {
			res.SkippedSends++
		}
		dur := cfg.Latency + float64(tr.Cells)*cfg.PerCellTime
		end := bestStart + dur
		senderFree[bestSender] = end
		recvFree[tr.To] = end
		res.SendBusy[tr.From] += dur
		res.RecvBusy[tr.To] += dur
		res.CellsSent[tr.From] += tr.Cells
		res.CellsRecv[tr.To] += tr.Cells
		if end > res.Makespan {
			res.Makespan = end
		}
		ev := Event{Transfer: tr, Start: bestStart, End: end}
		res.Timeline = append(res.Timeline, ev)
		if cfg.OnComplete != nil {
			cfg.OnComplete(ev)
		}
		// Remove the dispatched transfer, preserving order.
		queues[bestSender] = append(queues[bestSender][:bestIdx], queues[bestSender][bestIdx+1:]...)
		remaining--
	}
	sort.SliceStable(res.Timeline, func(i, j int) bool { return res.Timeline[i].Start < res.Timeline[j].Start })
	return res, nil
}

// queued is a Transfer annotated with its global input position.
type queued struct {
	Transfer
	seq int
}

// nextForSender picks which queued transfer the sender dispatches next and
// when it can start. With GreedyLocks it takes the first transfer whose
// destination lock is free when the sender is ready; if none, it polls
// until the earliest needed lock releases. With FIFONoSkip it always takes
// the head of the queue.
func nextForSender(s Scheduling, q []queued, senderReady float64, recvFree []float64) (idx int, start float64, polled bool) {
	if s == FIFONoSkip {
		head := q[0]
		start = senderReady
		if recvFree[head.To] > start {
			start = recvFree[head.To]
		}
		return 0, start, recvFree[head.To] > senderReady
	}
	// GreedyLocks: first destination free at senderReady wins.
	for i, tr := range q {
		if recvFree[tr.To] <= senderReady {
			return i, senderReady, false
		}
	}
	// All destinations locked: poll for the earliest release.
	bestIdx, bestAt := 0, recvFree[q[0].To]
	for i := 1; i < len(q); i++ {
		if at := recvFree[q[i].To]; at < bestAt {
			bestIdx, bestAt = i, at
		}
	}
	return bestIdx, bestAt, true
}
