package simnet

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchTransfers(n, k int) []Transfer {
	rng := rand.New(rand.NewSource(1))
	trs := make([]Transfer, n)
	for i := range trs {
		trs[i] = Transfer{From: rng.Intn(k), To: rng.Intn(k), Cells: rng.Int63n(5000) + 1}
	}
	return trs
}

func BenchmarkSimulateGreedy(b *testing.B) {
	trs := benchTransfers(2048, 8)
	cfg := Config{Nodes: 8, PerCellTime: 1e-6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, trs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateFIFO(b *testing.B) {
	trs := benchTransfers(2048, 8)
	cfg := Config{Nodes: 8, PerCellTime: 1e-6, Scheduling: FIFONoSkip}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, trs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateFullScale exercises the event loop at the transfer
// counts a `-scale full` expdriver run produces: 1024 join units, each
// shipping up to k-1 remote slices on a k-node cluster. ROADMAP names this
// sequential loop as the next candidate hot path; the CI simnet-bench job
// records these numbers in BENCH_simnet.json so regressions (and any
// future parallelization win) have a tracked baseline.
func BenchmarkSimulateFullScale(b *testing.B) {
	for _, k := range []int{4, 12} {
		trs := benchTransfers(1024*(k-1), k)
		for _, sched := range []struct {
			name string
			s    Scheduling
		}{{"greedy", GreedyLocks}, {"fifo", FIFONoSkip}} {
			cfg := Config{Nodes: k, PerCellTime: 1e-6, Scheduling: sched.s}
			b.Run(fmt.Sprintf("%s/nodes=%d", sched.name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Simulate(cfg, trs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
