package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func benchTransfers(n, k int) []Transfer {
	rng := rand.New(rand.NewSource(1))
	trs := make([]Transfer, n)
	for i := range trs {
		trs[i] = Transfer{From: rng.Intn(k), To: rng.Intn(k), Cells: rng.Int63n(5000) + 1}
	}
	return trs
}

func BenchmarkSimulateGreedy(b *testing.B) {
	trs := benchTransfers(2048, 8)
	cfg := Config{Nodes: 8, PerCellTime: 1e-6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, trs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateFIFO(b *testing.B) {
	trs := benchTransfers(2048, 8)
	cfg := Config{Nodes: 8, PerCellTime: 1e-6, Scheduling: FIFONoSkip}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, trs); err != nil {
			b.Fatal(err)
		}
	}
}

// fullScaleCases are the tracked simnet workloads: 4 and 12 nodes are the
// paper's evaluation scale (1024 join units, each shipping up to k-1
// remote slices); 64 nodes × 100k+ transfers is the beyond-paper scale
// ROADMAP aims at, where the original rescan-everything loop's O(T·N·Q)
// cost would dominate end-to-end latency.
func fullScaleCases() []struct {
	k, n int
} {
	return []struct{ k, n int }{
		{4, 1024 * 3},
		{12, 1024 * 11},
		{64, 1600 * 63}, // 100 800 transfers
	}
}

var benchSchedulers = []struct {
	name string
	s    Scheduling
}{{"greedy", GreedyLocks}, {"fifo", FIFONoSkip}}

// fullScaleGuard runs each benchmark workload once through both the
// indexed scheduler and the reference loop and requires equal makespans,
// so the tracked ns/op numbers can never come from a scheduler that
// drifted semantically. Guards are memoized: the testing package re-enters
// each sub-benchmark with growing b.N, and the reference run is expensive.
var fullScaleGuard = struct {
	sync.Mutex
	done map[string]float64 // name → reference makespan
}{done: map[string]float64{}}

func guardMakespan(b *testing.B, name string, cfg Config, trs []Transfer) {
	b.Helper()
	fullScaleGuard.Lock()
	defer fullScaleGuard.Unlock()
	want, ok := fullScaleGuard.done[name]
	if !ok {
		ref, err := simulateReference(cfg, trs)
		if err != nil {
			b.Fatal(err)
		}
		want = ref.Makespan
		fullScaleGuard.done[name] = want
	}
	got, err := Simulate(cfg, trs)
	if err != nil {
		b.Fatal(err)
	}
	if got.Makespan != want {
		b.Fatalf("%s: makespan %v diverges from reference %v", name, got.Makespan, want)
	}
}

// BenchmarkSimulateFullScale exercises the indexed event-driven scheduler
// at the transfer counts a `-scale full` expdriver run produces, plus the
// beyond-paper 64-node case. The CI simnet-bench job records these numbers
// (with allocs) next to BenchmarkSimulateReferenceFullScale's in
// BENCH_simnet.json so the speedup and any regression are tracked in the
// artifact. Each sub-benchmark first asserts its makespan matches the
// reference path's.
func BenchmarkSimulateFullScale(b *testing.B) {
	for _, c := range fullScaleCases() {
		trs := benchTransfers(c.n, c.k)
		for _, sched := range benchSchedulers {
			cfg := Config{Nodes: c.k, PerCellTime: 1e-6, Scheduling: sched.s}
			b.Run(fmt.Sprintf("%s/nodes=%d", sched.name, c.k), func(b *testing.B) {
				guardMakespan(b, fmt.Sprintf("%s/nodes=%d", sched.name, c.k), cfg, trs)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Simulate(cfg, trs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSimulateReferenceFullScale is the pre-index dispatch loop on
// the paper-scale workloads: the "old" half of the old-vs-new speedup CI
// tracks. The 64-node beyond-paper case is omitted — the reference loop
// takes seconds per run there, which is the point of the rewrite.
func BenchmarkSimulateReferenceFullScale(b *testing.B) {
	for _, c := range fullScaleCases() {
		if c.k > 12 {
			continue
		}
		trs := benchTransfers(c.n, c.k)
		for _, sched := range benchSchedulers {
			cfg := Config{Nodes: c.k, PerCellTime: 1e-6, Scheduling: sched.s}
			b.Run(fmt.Sprintf("%s/nodes=%d", sched.name, c.k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := simulateReference(cfg, trs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSimReuseSteadyState measures the zero-allocation contract: a
// reused Sim instance replaying the paper-scale greedy workload must not
// allocate once its buffers reach the workload's high-water mark.
func BenchmarkSimReuseSteadyState(b *testing.B) {
	trs := benchTransfers(1024*11, 12)
	cfg := Config{Nodes: 12, PerCellTime: 1e-6}
	sim := &Sim{}
	if _, err := sim.Simulate(cfg, trs); err != nil { // warm the buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(cfg, trs); err != nil {
			b.Fatal(err)
		}
	}
}
