package simnet

import (
	"math/rand"
	"testing"
)

func benchTransfers(n, k int) []Transfer {
	rng := rand.New(rand.NewSource(1))
	trs := make([]Transfer, n)
	for i := range trs {
		trs[i] = Transfer{From: rng.Intn(k), To: rng.Intn(k), Cells: rng.Int63n(5000) + 1}
	}
	return trs
}

func BenchmarkSimulateGreedy(b *testing.B) {
	trs := benchTransfers(2048, 8)
	cfg := Config{Nodes: 8, PerCellTime: 1e-6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, trs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateFIFO(b *testing.B) {
	trs := benchTransfers(2048, 8)
	cfg := Config{Nodes: 8, PerCellTime: 1e-6, Scheduling: FIFONoSkip}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, trs); err != nil {
			b.Fatal(err)
		}
	}
}
