package simnet

import (
	"math/rand"
	"testing"
)

// TestOnCompleteMatchesTimeline verifies the streaming callback sees every
// network transfer exactly once with the same timings the Timeline records.
func TestOnCompleteMatchesTimeline(t *testing.T) {
	trs := []Transfer{
		{From: 0, To: 1, Cells: 4, Tag: 0},
		{From: 2, To: 1, Cells: 2, Tag: 1},
		{From: 0, To: 2, Cells: 3, Tag: 2},
		{From: 1, To: 1, Cells: 9, Tag: 3}, // local: no event
		{From: 2, To: 0, Cells: 0, Tag: 4}, // empty: no event
	}
	var got []Event
	cfg := Config{Nodes: 3, PerCellTime: 1, OnComplete: func(ev Event) { got = append(got, ev) }}
	res, err := Simulate(cfg, trs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("OnComplete fired %d times, want 3 (local/empty transfers excluded)", len(got))
	}
	if len(res.Timeline) != len(got) {
		t.Fatalf("timeline has %d events, callback saw %d", len(res.Timeline), len(got))
	}
	// Events arrive in dispatch order (non-decreasing start); the Timeline
	// is sorted by start, so the multisets must match event-for-event after
	// matching on Tag.
	byTag := make(map[int]Event, len(res.Timeline))
	for _, ev := range res.Timeline {
		byTag[ev.Tag] = ev
	}
	for _, ev := range got {
		want, ok := byTag[ev.Tag]
		if !ok {
			t.Fatalf("callback event tag %d missing from timeline", ev.Tag)
		}
		if ev != want {
			t.Fatalf("callback event %+v != timeline event %+v", ev, want)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Start < got[i-1].Start {
			t.Fatalf("dispatch order regressed: event %d starts at %v after %v", i, got[i].Start, got[i-1].Start)
		}
	}
}

// TestOnCompleteDeterministicOrder checks the callback sequence is
// bit-for-bit identical across runs for a randomized workload.
func TestOnCompleteDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trs := make([]Transfer, 256)
	for i := range trs {
		trs[i] = Transfer{From: rng.Intn(6), To: rng.Intn(6), Cells: rng.Int63n(100), Tag: i}
	}
	run := func() []Event {
		var evs []Event
		cfg := Config{Nodes: 6, PerCellTime: 0.01, OnComplete: func(ev Event) { evs = append(evs, ev) }}
		if _, err := Simulate(cfg, trs); err != nil {
			t.Fatal(err)
		}
		return evs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs saw %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
