package simnet

import "testing"

// FuzzSimulateEquivalence differentially fuzzes the indexed scheduler
// against simulateReference: any byte string decodes into a (Config,
// []Transfer) workload, and the two paths must agree exactly on the
// Result — makespan, per-node busy/cells vectors, lock-wait attribution,
// skip/poll counters, Timeline — and on the OnComplete invocation order.
// The corpus seeds cover both scheduling policies, latency on/off, hot
// receivers, zero-cell transfers, and degenerate cost parameters; `go test
// -fuzz FuzzSimulateEquivalence ./internal/simnet` explores further.
func FuzzSimulateEquivalence(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x03, 0x01, 0x12, 0x05, 0x21, 0x00})       // greedy, hot receiver
	f.Add([]byte{0x13, 0x01, 0x12, 0x05, 0x21, 0x00})       // fifo, same workload
	f.Add([]byte{0x47, 0x01, 0x23, 0x00, 0x31, 0x07})       // latency on, zero-cell transfer
	f.Add([]byte{0x63, 0xff, 0x01, 0x02, 0x10, 0x20, 0x21}) // zero per-cell time
	f.Add([]byte{0x2c, 0x55, 0xaa, 0x31, 0x13, 0x07, 0x70, 0x0e, 0x41, 0x09, 0x20})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// Byte 0: low nibble-1 node count (1..8 via %8+1), bit 4 policy,
		// bit 5 latency, bit 6 zero per-cell time.
		h := data[0]
		cfg := Config{
			Nodes:       int(h&0x0f)%8 + 1,
			PerCellTime: 0.25,
		}
		if h&0x10 != 0 {
			cfg.Scheduling = FIFONoSkip
		}
		if h&0x20 != 0 {
			cfg.Latency = 1.5
		}
		if h&0x40 != 0 {
			cfg.PerCellTime = 0
		}
		// Remaining bytes: one transfer each. High nibble selects (from,
		// to) within the node range; low nibble is the cell count (0..14,
		// 15 → a large burst to force receiver contention).
		var trs []Transfer
		for i, b := range data[1:] {
			cells := int64(b & 0x0f)
			if cells == 15 {
				cells = 400
			}
			trs = append(trs, Transfer{
				From:  int(b>>4) % cfg.Nodes,
				To:    int(b>>6) % cfg.Nodes,
				Cells: cells,
				Tag:   i,
			})
		}
		var refEvents, newEvents []Event
		refCfg := cfg
		refCfg.OnComplete = func(ev Event) { refEvents = append(refEvents, ev) }
		want, err := simulateReference(refCfg, trs)
		if err != nil {
			t.Fatalf("reference rejected fuzz workload: %v", err)
		}
		newCfg := cfg
		newCfg.OnComplete = func(ev Event) { newEvents = append(newEvents, ev) }
		got, err := Simulate(newCfg, trs)
		if err != nil {
			t.Fatalf("Simulate rejected fuzz workload: %v", err)
		}
		sameResultFuzz(t, got, want)
		if len(newEvents) != len(refEvents) {
			t.Fatalf("OnComplete fired %d times, want %d", len(newEvents), len(refEvents))
		}
		for i := range refEvents {
			if newEvents[i] != refEvents[i] {
				t.Fatalf("OnComplete[%d] = %+v, want %+v", i, newEvents[i], refEvents[i])
			}
		}
	})
}

// sameResultFuzz is sameResult for the fuzz driver (which only has a
// *testing.T at Fuzz time, so it reuses the exact-comparison helper).
func sameResultFuzz(t *testing.T, got, want Result) {
	t.Helper()
	sameResult(t, "fuzz", got, want)
}
