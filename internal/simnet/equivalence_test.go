package simnet

import (
	"math/rand"
	"testing"
)

func init() {
	// Every Simulate run under test also asserts the Timeline's start
	// times are non-decreasing — the invariant that replaced the original
	// loop's final stable sort.
	debugCheckTimeline = true
}

// sameResult compares every field of two results exactly: the scheduler
// contract is bit-for-bit equality, not approximation, because both paths
// must perform the identical float operations in the identical order.
func sameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Makespan != want.Makespan {
		t.Errorf("%s: Makespan = %v, want %v", label, got.Makespan, want.Makespan)
	}
	if got.LockWaits != want.LockWaits || got.SkippedSends != want.SkippedSends {
		t.Errorf("%s: LockWaits/SkippedSends = %d/%d, want %d/%d",
			label, got.LockWaits, got.SkippedSends, want.LockWaits, want.SkippedSends)
	}
	if got.LockWaitTime != want.LockWaitTime {
		t.Errorf("%s: LockWaitTime = %v, want %v", label, got.LockWaitTime, want.LockWaitTime)
	}
	vecsF := []struct {
		name     string
		got, ref []float64
	}{
		{"SendBusy", got.SendBusy, want.SendBusy},
		{"RecvBusy", got.RecvBusy, want.RecvBusy},
		{"RecvLockWait", got.RecvLockWait, want.RecvLockWait},
	}
	for _, v := range vecsF {
		if len(v.got) != len(v.ref) {
			t.Fatalf("%s: len(%s) = %d, want %d", label, v.name, len(v.got), len(v.ref))
		}
		for i := range v.got {
			if v.got[i] != v.ref[i] {
				t.Errorf("%s: %s[%d] = %v, want %v", label, v.name, i, v.got[i], v.ref[i])
			}
		}
	}
	vecsI := []struct {
		name     string
		got, ref []int64
	}{
		{"CellsSent", got.CellsSent, want.CellsSent},
		{"CellsRecv", got.CellsRecv, want.CellsRecv},
	}
	for _, v := range vecsI {
		if len(v.got) != len(v.ref) {
			t.Fatalf("%s: len(%s) = %d, want %d", label, v.name, len(v.got), len(v.ref))
		}
		for i := range v.got {
			if v.got[i] != v.ref[i] {
				t.Errorf("%s: %s[%d] = %v, want %v", label, v.name, i, v.got[i], v.ref[i])
			}
		}
	}
	if len(got.Timeline) != len(want.Timeline) {
		t.Fatalf("%s: timeline has %d events, want %d", label, len(got.Timeline), len(want.Timeline))
	}
	for i := range got.Timeline {
		if got.Timeline[i] != want.Timeline[i] {
			t.Errorf("%s: Timeline[%d] = %+v, want %+v", label, i, got.Timeline[i], want.Timeline[i])
		}
	}
}

// checkEquivalence runs one workload through the indexed scheduler (both
// the package entry point and a caller-supplied reused Sim) and the
// reference loop, requiring identical Results and identical OnComplete
// sequences.
func checkEquivalence(t *testing.T, label string, sim *Sim, cfg Config, trs []Transfer) {
	t.Helper()
	var refEvents, newEvents, simEvents []Event
	refCfg := cfg
	refCfg.OnComplete = func(ev Event) { refEvents = append(refEvents, ev) }
	want, err := simulateReference(refCfg, trs)
	if err != nil {
		t.Fatalf("%s: reference: %v", label, err)
	}
	newCfg := cfg
	newCfg.OnComplete = func(ev Event) { newEvents = append(newEvents, ev) }
	got, err := Simulate(newCfg, trs)
	if err != nil {
		t.Fatalf("%s: Simulate: %v", label, err)
	}
	sameResult(t, label, got, want)
	simCfg := cfg
	simCfg.OnComplete = func(ev Event) { simEvents = append(simEvents, ev) }
	reused, err := sim.Simulate(simCfg, trs)
	if err != nil {
		t.Fatalf("%s: reused Sim: %v", label, err)
	}
	sameResult(t, label+"/reused", reused, want)
	if len(newEvents) != len(refEvents) || len(simEvents) != len(refEvents) {
		t.Fatalf("%s: OnComplete fired %d/%d times, want %d",
			label, len(newEvents), len(simEvents), len(refEvents))
	}
	for i := range refEvents {
		if newEvents[i] != refEvents[i] {
			t.Errorf("%s: OnComplete[%d] = %+v, want %+v", label, i, newEvents[i], refEvents[i])
		}
		if simEvents[i] != refEvents[i] {
			t.Errorf("%s: reused OnComplete[%d] = %+v, want %+v", label, i, simEvents[i], refEvents[i])
		}
	}
}

// TestSimulateMatchesReference differentially checks the indexed scheduler
// against the original loop across both scheduling policies, latency on
// and off, degenerate cost parameters, and zero-cell/local transfers. One
// Sim instance is reused across every case (including shrinking and
// growing node counts) to exercise the buffer-reuse path.
func TestSimulateMatchesReference(t *testing.T) {
	sim := &Sim{}
	for _, sched := range []Scheduling{GreedyLocks, FIFONoSkip} {
		for _, latency := range []float64{0, 0.75} {
			for _, perCell := range []float64{0, 0.01} {
				for _, nodes := range []int{1, 2, 3, 6, 13} {
					for _, count := range []int{0, 1, 7, 300} {
						rng := rand.New(rand.NewSource(int64(nodes*1000 + count)))
						trs := make([]Transfer, count)
						for i := range trs {
							trs[i] = Transfer{
								From:  rng.Intn(nodes),
								To:    rng.Intn(nodes),
								Cells: rng.Int63n(40), // zero-cell transfers included
								Tag:   i,
							}
						}
						label := benchLabel(sched, latency, perCell, nodes, count)
						cfg := Config{Nodes: nodes, PerCellTime: perCell, Latency: latency, Scheduling: sched}
						checkEquivalence(t, label, sim, cfg, trs)
					}
				}
			}
		}
	}
}

func benchLabel(s Scheduling, latency, perCell float64, nodes, count int) string {
	name := "greedy"
	if s == FIFONoSkip {
		name = "fifo"
	}
	return name + "/" +
		"lat=" + fmtF(latency) + "/t=" + fmtF(perCell) +
		"/k=" + itoa(nodes) + "/n=" + itoa(count)
}

func fmtF(f float64) string {
	if f == 0 {
		return "0"
	}
	return ">0"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestSimulateFullScaleEquivalence is the paper-scale differential check:
// the exact workload BenchmarkSimulateFullScale measures must produce a
// bit-for-bit identical Result under both paths and both policies.
func TestSimulateFullScaleEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale differential check is slow")
	}
	sim := &Sim{}
	for _, k := range []int{4, 12} {
		trs := benchTransfers(1024*(k-1), k)
		for _, sched := range []Scheduling{GreedyLocks, FIFONoSkip} {
			cfg := Config{Nodes: k, PerCellTime: 1e-6, Scheduling: sched}
			checkEquivalence(t, benchLabel(sched, 0, 1e-6, k, len(trs)), sim, cfg, trs)
		}
	}
}

// TestResultClone verifies Clone detaches every backing array, so a
// retained Result survives the originating Sim's next run.
func TestResultClone(t *testing.T) {
	sim := &Sim{}
	cfg := Config{Nodes: 3, PerCellTime: 1}
	first, err := sim.Simulate(cfg, []Transfer{{From: 0, To: 1, Cells: 5}, {From: 2, To: 1, Cells: 3}})
	if err != nil {
		t.Fatal(err)
	}
	keep := first.Clone()
	want, _ := Simulate(cfg, []Transfer{{From: 0, To: 1, Cells: 5}, {From: 2, To: 1, Cells: 3}})
	// Clobber the Sim's buffers with a different workload.
	if _, err := sim.Simulate(Config{Nodes: 3, PerCellTime: 4}, []Transfer{{From: 1, To: 0, Cells: 9}}); err != nil {
		t.Fatal(err)
	}
	sameResult(t, "clone", keep, want)
}

// TestZeroCellLatency pins the zero-cell transfer semantics: with zero
// latency an empty remote slice is free and invisible, with positive
// latency it pays the per-transfer setup time and holds the receiver lock
// like any other transfer.
func TestZeroCellLatency(t *testing.T) {
	zero := []Transfer{
		{From: 0, To: 2, Cells: 0, Tag: 0},
		{From: 1, To: 2, Cells: 10, Tag: 1},
	}
	free, err := Simulate(Config{Nodes: 3, PerCellTime: 1}, zero)
	if err != nil {
		t.Fatal(err)
	}
	if len(free.Timeline) != 1 || free.Makespan != 10 {
		t.Errorf("latency 0: zero-cell transfer should be dropped; timeline %d events, makespan %v",
			len(free.Timeline), free.Makespan)
	}
	charged, err := Simulate(Config{Nodes: 3, PerCellTime: 1, Latency: 5}, zero)
	if err != nil {
		t.Fatal(err)
	}
	// Both transfers serialize on receiver 2: setup-only [0,5), then 5+10.
	if len(charged.Timeline) != 2 {
		t.Fatalf("latency > 0: zero-cell transfer should be simulated; timeline %+v", charged.Timeline)
	}
	if charged.Makespan != 20 {
		t.Errorf("latency > 0: makespan = %v, want 20 (5 setup + 5+10 serialized)", charged.Makespan)
	}
	if charged.SendBusy[0] != 5 || charged.CellsSent[0] != 0 {
		t.Errorf("zero-cell sender: busy %v cells %d, want 5 and 0",
			charged.SendBusy[0], charged.CellsSent[0])
	}
}

// TestSimReuseAcrossShapes drives one Sim through node counts that grow,
// shrink, and grow again, checking against fresh runs each time: reused
// buffers must never leak state between runs.
func TestSimReuseAcrossShapes(t *testing.T) {
	sim := &Sim{}
	rng := rand.New(rand.NewSource(99))
	for iter, k := range []int{8, 2, 16, 3, 16, 1, 5} {
		n := rng.Intn(200)
		trs := make([]Transfer, n)
		for i := range trs {
			trs[i] = Transfer{From: rng.Intn(k), To: rng.Intn(k), Cells: rng.Int63n(50), Tag: i}
		}
		cfg := Config{Nodes: k, PerCellTime: 0.1, Scheduling: Scheduling(iter % 2)}
		got, err := sim.Simulate(cfg, trs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Simulate(cfg, trs)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "iter "+itoa(iter), got, want)
	}
}
