package obs

import (
	"fmt"
	"io"
	"strings"
)

// PromName sanitizes a registry metric name into a legal Prometheus
// metric name: the engine's `component.metric_name` convention maps to
// `component_metric_name`, and any other character outside
// [a-zA-Z0-9_:] becomes '_'. A leading digit is prefixed with '_'.
func PromName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus emits every metric in the Prometheus text exposition
// format (version 0.0.4), in registration order. Counters and gauges map
// directly; a histogram h becomes a Prometheus histogram (cumulative
// `h_bucket{le="..."}` series, `h_sum`, `h_count`) plus summary gauges
// `h_min`, `h_max`, and bucket-interpolated `h_p50`/`h_p95`/`h_p99` —
// the percentile view, not just the raw bucket dump.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		m := r.m[name]
		pn := PromName(name)
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, m.count)
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, m.gauge)
		case kindHistogram:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
				return err
			}
			var cum int64
			for i, c := range m.hist {
				cum += c
				le := "+Inf"
				if i < len(m.buckets) {
					le = fmt.Sprintf("%g", m.buckets[i])
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, m.sum, pn, m.n); err != nil {
				return err
			}
			if m.n > 0 {
				_, err = fmt.Fprintf(w, "%s_min %g\n%s_max %g\n%s_p50 %g\n%s_p95 %g\n%s_p99 %g\n",
					pn, m.min, pn, m.max,
					pn, m.quantile(0.50), pn, m.quantile(0.95), pn, m.quantile(0.99))
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}
