package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// buildSampleTrace assembles the span shapes the executor produces: a wall
// planning span, a simulated align span with transfer children, and
// per-node compare spans.
func buildSampleTrace() *Trace {
	tr := New("query")
	p := tr.Root().Child("plan.logical")
	p.SetStr("plan", "mergeJoin(A, B)")
	p.End()

	al := tr.Root().SimChild("align", 0, 2.0)
	for i, x := range []struct {
		from, to int
		start    float64
	}{{0, 1, 0}, {2, 1, 0.5}} {
		xf := al.SimChild("xfer", x.start, x.start+0.5)
		xf.SetNum("transfer", 1)
		xf.SetInt("from", int64(x.from))
		xf.SetInt("to", int64(x.to))
		xf.SetInt("unit", int64(i))
		xf.SetInt("cells", 100)
	}
	cm := tr.Root().SimChild("compare", 2.0, 3.5)
	for n := 0; n < 3; n++ {
		ns := cm.SimChild("compare.node", 2.0, 2.0+float64(n))
		ns.SetNode(n)
	}
	return tr
}

// TestChromeTraceSchema validates the export against the trace-event
// format: required keys, known phase types, paired flow events, and
// per-node process metadata — the contract Perfetto needs to load it.
func TestChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSampleTrace().WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var file struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	flowStarts := map[float64]bool{}
	flowEnds := map[float64]bool{}
	processNames := map[float64]string{}
	valid := map[string]bool{"X": true, "M": true, "s": true, "f": true}
	for i, ev := range file.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid", "ts"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		ph := ev["ph"].(string)
		if !valid[ph] {
			t.Fatalf("event %d has unknown phase %q", i, ph)
		}
		switch ph {
		case "X":
			if dur, ok := ev["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("complete event %d lacks non-negative dur: %v", i, ev)
			}
		case "s":
			flowStarts[ev["id"].(float64)] = true
		case "f":
			flowEnds[ev["id"].(float64)] = true
			if ev["bp"] != "e" {
				t.Fatalf("flow end %d must bind to enclosing slice (bp=e): %v", i, ev)
			}
		case "M":
			if ev["name"] == "process_name" {
				args := ev["args"].(map[string]any)
				processNames[ev["pid"].(float64)] = args["name"].(string)
			}
		}
	}

	if len(flowStarts) != 2 || len(flowEnds) != 2 {
		t.Fatalf("want 2 transfer flows, got %d starts / %d ends", len(flowStarts), len(flowEnds))
	}
	for id := range flowStarts {
		if !flowEnds[id] {
			t.Fatalf("flow %v has no end event", id)
		}
	}
	// One process per simulated node plus the wall-clock coordinator.
	if processNames[0] == "" {
		t.Error("pid 0 (coordinator) has no process_name metadata")
	}
	for _, pid := range []float64{1, 2, 3} {
		if processNames[pid] == "" {
			t.Errorf("pid %v (simulated node) has no process_name metadata", pid)
		}
	}
}
