package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	sp := tr.Root().Child("plan")
	sp.SetNum("cost", 1)
	sp.SetStr("planner", "mbh")
	sp.SetInt("units", 4)
	sp.SetNode(2)
	sp.SimChild("align", 0, 1).End()
	sp.End()
	if got := tr.Fingerprint(); got != "" {
		t.Fatalf("nil fingerprint = %q", got)
	}
	reg := tr.Metrics()
	reg.Counter("c").Add(1)
	reg.Gauge("g").Set(2)
	reg.Histogram("h", []float64{1, 2}).Observe(1.5)
	if snap := reg.Snapshot(); snap != nil {
		t.Fatalf("nil snapshot = %v", snap)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Fatalf("nil chrome output %q", buf.String())
	}
}

func TestFingerprintMasksWallTime(t *testing.T) {
	build := func() string {
		tr := New("query")
		p := tr.Root().Child("plan")
		p.SetNum("plan_wall_seconds", tr.since()) // differs run to run
		p.SetNum("cost", 42)
		p.End()
		a := tr.Root().SimChild("align", 0, 1.5)
		a.SetNode(1)
		tr.Metrics().Counter("align.transfers").Add(3)
		tr.Metrics().Gauge("skew").Set(1.25)
		return tr.Fingerprint()
	}
	f1, f2 := build(), build()
	if f1 != f2 {
		t.Fatalf("fingerprints differ:\n%s\nvs\n%s", f1, f2)
	}
	if !strings.Contains(f1, "plan_wall_seconds=[masked]") {
		t.Fatalf("wall attr not masked:\n%s", f1)
	}
	if !strings.Contains(f1, "sim=[0,1.5]") {
		t.Fatalf("sim times missing:\n%s", f1)
	}
	if !strings.Contains(f1, "align.transfers=3") || !strings.Contains(f1, "skew=1.25") {
		t.Fatalf("metrics missing:\n%s", f1)
	}
}

func TestRegistrySnapshotAndMerge(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries").Add(2)
	r.Gauge("seconds").Add(1.5)
	h := r.Histogram("cells", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	snap := r.Snapshot()
	if snap["queries"] != 2 || snap["seconds"] != 1.5 {
		t.Fatalf("snapshot %v", snap)
	}
	if snap["cells.count"] != 3 || snap["cells.sum"] != 5055 || snap["cells.min"] != 5 || snap["cells.max"] != 5000 {
		t.Fatalf("histogram snapshot %v", snap)
	}

	total := NewRegistry()
	total.AddFrom(r)
	total.AddFrom(r)
	snap = total.Snapshot()
	if snap["queries"] != 4 || snap["seconds"] != 3 || snap["cells.count"] != 6 {
		t.Fatalf("merged snapshot %v", snap)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", []float64{1, 4, 16})
	for _, v := range []float64{0.5, 1, 3, 20} {
		h.Observe(v)
	}
	m := r.m["x"]
	want := []int64{2, 1, 0, 1} // <=1: {0.5, 1}; <=4: {3}; <=16: {}; +Inf: {20}
	for i, c := range want {
		if m.hist[i] != c {
			t.Fatalf("bucket %d = %d, want %d (hist %v)", i, m.hist[i], c, m.hist)
		}
	}
}

func TestWriteTableAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("align.lock_waits").Add(7)
	r.Gauge("compare.skew").Set(2.5)
	var tbl bytes.Buffer
	r.WriteTable(&tbl)
	if !strings.Contains(tbl.String(), "align.lock_waits 7") {
		t.Fatalf("table output:\n%s", tbl.String())
	}
	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(js.String(), `"kind": "gauge"`) {
		t.Fatalf("json output:\n%s", js.String())
	}
}
