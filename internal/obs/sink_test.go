package obs

import "testing"

func TestSinkReceivesRetiredSpans(t *testing.T) {
	tr := New("query")
	var sink CollectSink
	tr.AddSink(&sink)

	p := tr.Root().Child("plan")
	p.SetNum("cost", 1)
	p.End()
	a := tr.Root().SimChild("align", 0, 2)
	a.End()
	c := tr.Root().SimChild("compare", 2, 3)
	c.End()

	got := sink.Spans()
	if len(got) != 3 {
		t.Fatalf("delivered %d spans, want 3", len(got))
	}
	wantNames := []string{"plan", "align", "compare"}
	for i, s := range got {
		if s.Name != wantNames[i] {
			t.Fatalf("span %d = %q, want %q", i, s.Name, wantNames[i])
		}
	}
	if got[1].SimEnd != 2 {
		t.Fatalf("sim span delivered with SimEnd=%v", got[1].SimEnd)
	}
}

func TestSinkDeliversOncePerSpan(t *testing.T) {
	tr := New("query")
	var sink CollectSink
	tr.AddSink(&sink)
	s := tr.Root().Child("plan")
	s.End()
	s.End() // re-ending must not re-deliver
	if sink.Len() != 1 {
		t.Fatalf("delivered %d times, want 1", sink.Len())
	}
}

func TestSinkSimEndKeepsSimTimes(t *testing.T) {
	tr := New("query")
	s := tr.Root().SimChild("align", 1.5, 4.25)
	s.End()
	if s.SimStart != 1.5 || s.SimEnd != 4.25 {
		t.Fatalf("End mutated sim times: [%v,%v]", s.SimStart, s.SimEnd)
	}
	if s.WallSeconds() != 0 {
		t.Fatalf("sim span reports wall seconds %v", s.WallSeconds())
	}
}

func TestNilTraceAddSinkIsNoOp(t *testing.T) {
	var tr *Trace
	var sink CollectSink
	tr.AddSink(&sink) // must not panic
	tr.Root().Child("x").End()
	if sink.Len() != 0 {
		t.Fatalf("nil trace delivered %d spans", sink.Len())
	}
}

func TestAddSinkAfterRetirementSeesOnlyNewSpans(t *testing.T) {
	tr := New("query")
	tr.Root().Child("early").End()
	var sink CollectSink
	tr.AddSink(&sink)
	tr.Root().Child("late").End()
	got := sink.Spans()
	if len(got) != 1 || got[0].Name != "late" {
		t.Fatalf("late sink saw %d spans (first %v)", len(got), got)
	}
}
