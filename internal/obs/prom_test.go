package obs

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"plancache.hit":      "plancache_hit",
		"node02.send_secs":   "node02_send_secs",
		"align.makespan":     "align_makespan",
		"9lives":             "_9lives",
		"weird-name/metric ": "weird_name_metric_",
		"ok_name:sub":        "ok_name:sub",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("query.count").Add(3)
	r.Gauge("compare.skew").Set(1.5)
	h := r.Histogram("units.cells", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# TYPE query_count counter",
		"query_count 3",
		"# TYPE compare_skew gauge",
		"compare_skew 1.5",
		"# TYPE units_cells histogram",
		`units_cells_bucket{le="10"} 1`,
		`units_cells_bucket{le="100"} 2`,
		`units_cells_bucket{le="+Inf"} 3`,
		"units_cells_sum 555",
		"units_cells_count 3",
		"units_cells_min 5",
		"units_cells_max 500",
		"units_cells_p50 ",
		"units_cells_p95 ",
		"units_cells_p99 ",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("prometheus output missing %q:\n%s", w, out)
		}
	}

	// A disabled registry writes nothing and does not error.
	var nilReg *Registry
	var nb strings.Builder
	if err := nilReg.WritePrometheus(&nb); err != nil || nb.Len() != 0 {
		t.Fatalf("nil registry: err=%v out=%q", err, nb.String())
	}
}

// promHistogram parses one histogram's series out of an exposition dump.
type promHistogram struct {
	les    []float64 // bucket upper bounds, in emission order (+Inf = math.Inf)
	counts []int64   // cumulative counts, parallel to les
	sum    float64
	count  int64
}

func parsePromHistogram(t *testing.T, out, name string) promHistogram {
	t.Helper()
	bucketRe := regexp.MustCompile(`^` + name + `_bucket\{le="([^"]+)"\} (\d+)$`)
	var h promHistogram
	for _, line := range strings.Split(out, "\n") {
		if m := bucketRe.FindStringSubmatch(line); m != nil {
			le := math.Inf(1)
			if m[1] != "+Inf" {
				var err error
				if le, err = strconv.ParseFloat(m[1], 64); err != nil {
					t.Fatalf("bucket bound %q: %v", m[1], err)
				}
			}
			c, err := strconv.ParseInt(m[2], 10, 64)
			if err != nil {
				t.Fatalf("bucket count %q: %v", m[2], err)
			}
			h.les = append(h.les, le)
			h.counts = append(h.counts, c)
			continue
		}
		if rest, ok := strings.CutPrefix(line, name+"_sum "); ok {
			h.sum, _ = strconv.ParseFloat(rest, 64)
		}
		if rest, ok := strings.CutPrefix(line, name+"_count "); ok {
			h.count, _ = strconv.ParseInt(rest, 10, 64)
		}
	}
	return h
}

// TestWritePrometheusHistogramContract locks the exposition-format
// invariants a Prometheus scraper depends on: bucket bounds emitted in
// strictly increasing order ending at +Inf, cumulative (monotone
// non-decreasing) bucket counts, the +Inf bucket equal to _count, and
// _sum/_count consistent with what was observed.
func TestWritePrometheusHistogramContract(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("exec.modeled", PowersOf2Buckets(1, 8))
	observations := []float64{0.5, 1, 3, 3, 17, 100, 1000}
	var wantSum float64
	for _, v := range observations {
		h.Observe(v)
		wantSum += v
	}
	// An empty histogram must still emit a complete series.
	r.Histogram("exec.empty", []float64{1, 2})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	ph := parsePromHistogram(t, out, "exec_modeled")
	if len(ph.les) == 0 {
		t.Fatal("no bucket series emitted")
	}
	for i := 1; i < len(ph.les); i++ {
		if ph.les[i] <= ph.les[i-1] {
			t.Errorf("bucket bounds not increasing: le[%d]=%g after %g", i, ph.les[i], ph.les[i-1])
		}
		if ph.counts[i] < ph.counts[i-1] {
			t.Errorf("bucket counts not cumulative: count[%d]=%d after %d", i, ph.counts[i], ph.counts[i-1])
		}
	}
	if !math.IsInf(ph.les[len(ph.les)-1], 1) {
		t.Errorf("last bucket le = %g, want +Inf", ph.les[len(ph.les)-1])
	}
	if got := ph.counts[len(ph.counts)-1]; got != ph.count {
		t.Errorf("+Inf bucket = %d, _count = %d; must agree", got, ph.count)
	}
	if ph.count != int64(len(observations)) {
		t.Errorf("_count = %d, want %d", ph.count, len(observations))
	}
	if ph.sum != wantSum {
		t.Errorf("_sum = %g, want %g", ph.sum, wantSum)
	}
	// Every observation is <= some bound; spot-check one interior bucket:
	// bounds 1,2,4,... → observations ≤ 4 are {0.5, 1, 3, 3}.
	for i, le := range ph.les {
		if le == 4 {
			if ph.counts[i] != 4 {
				t.Errorf(`bucket le="4" = %d, want 4`, ph.counts[i])
			}
		}
	}

	// The empty histogram: all-zero cumulative series, zero sum/count,
	// and no min/max/percentile gauges (they are meaningless at n=0).
	pe := parsePromHistogram(t, out, "exec_empty")
	if len(pe.les) != 3 || pe.counts[len(pe.counts)-1] != 0 || pe.count != 0 || pe.sum != 0 {
		t.Errorf("empty histogram series = %+v", pe)
	}
	if strings.Contains(out, "exec_empty_min") || strings.Contains(out, "exec_empty_p50") {
		t.Error("empty histogram emitted summary gauges")
	}
}
