package obs

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"plancache.hit":      "plancache_hit",
		"node02.send_secs":   "node02_send_secs",
		"align.makespan":     "align_makespan",
		"9lives":             "_9lives",
		"weird-name/metric ": "weird_name_metric_",
		"ok_name:sub":        "ok_name:sub",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("query.count").Add(3)
	r.Gauge("compare.skew").Set(1.5)
	h := r.Histogram("units.cells", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# TYPE query_count counter",
		"query_count 3",
		"# TYPE compare_skew gauge",
		"compare_skew 1.5",
		"# TYPE units_cells histogram",
		`units_cells_bucket{le="10"} 1`,
		`units_cells_bucket{le="100"} 2`,
		`units_cells_bucket{le="+Inf"} 3`,
		"units_cells_sum 555",
		"units_cells_count 3",
		"units_cells_min 5",
		"units_cells_max 500",
		"units_cells_p50 ",
		"units_cells_p95 ",
		"units_cells_p99 ",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("prometheus output missing %q:\n%s", w, out)
		}
	}

	// A disabled registry writes nothing and does not error.
	var nilReg *Registry
	var nb strings.Builder
	if err := nilReg.WritePrometheus(&nb); err != nil || nb.Len() != 0 {
		t.Fatalf("nil registry: err=%v out=%q", err, nb.String())
	}
}
