package obs

import (
	"math"
	"strings"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatalf("empty histogram quantile = %g, want NaN", h.Quantile(0.5))
	}
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Fatalf("nil histogram quantile should be NaN")
	}
}

func TestQuantileSingleValue(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	h.Observe(7)
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 7 {
			t.Fatalf("Quantile(%g) = %g, want 7 (single observation)", q, got)
		}
	}
}

func TestQuantileUniform(t *testing.T) {
	// 100 observations 1..100 against decade buckets: the interpolated
	// quantiles should land near the true ones.
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 25, 50, 75, 100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct{ q, want, tol float64 }{
		{0.50, 50, 2},
		{0.95, 95, 2},
		{0.99, 99, 2},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("Quantile(%g) = %g, want %g +/- %g", c.q, got, c.want, c.tol)
		}
	}
	if p50, m := h.P50(), h.Quantile(0.50); p50 != m {
		t.Errorf("P50()=%g != Quantile(0.5)=%g", p50, m)
	}
}

func TestQuantileInfBucketClampedToMax(t *testing.T) {
	// Observations beyond the last finite bound land in the +Inf bucket;
	// tail quantiles must stay within the observed range, not run away.
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(1000)
	h.Observe(2000)
	h.Observe(3000)
	if got := h.Quantile(0.99); got < 1000 || got > 3000 {
		t.Fatalf("Quantile(0.99) = %g, want within observed [1000,3000]", got)
	}
	if got := h.Quantile(1); got != 3000 {
		t.Fatalf("Quantile(1) = %g, want observed max 3000", got)
	}
	if got := h.Quantile(0); got != 1000 {
		t.Fatalf("Quantile(0) = %g, want observed min 1000", got)
	}
}

func TestWriteTableIncludesPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10})
	for i := 0; i < 10; i++ {
		h.Observe(float64(i))
	}
	var b strings.Builder
	r.WriteTable(&b)
	out := b.String()
	for _, want := range []string{"p50=", "p95=", "p99="} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteTable output missing %q:\n%s", want, out)
		}
	}
}
