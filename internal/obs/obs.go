// Package obs is the zero-dependency observability layer of the shuffle
// join engine: hierarchical spans over both wall-clock time (planning) and
// simulated cluster time (data alignment, cell comparison), plus a metrics
// registry of skew and congestion diagnostics.
//
// # Determinism
//
// The layer is built so that a query traced at any Parallelism setting
// produces the identical span tree and metric values. Three rules make
// that hold:
//
//  1. Spans and metrics are only recorded from sequential orchestration
//     code — after a parallel section's per-worker results have been
//     merged in deterministic order — never from inside worker goroutines.
//  2. Simulated times (SimStart/SimEnd) come from the deterministic
//     discrete-event simulator and the analytical cost model, so they are
//     bit-for-bit reproducible. Wall-clock durations are inherently not;
//     they are stored but masked by Fingerprint, and attribute keys
//     containing "wall" are masked with them.
//  3. The metrics registry preserves first-registration order, and all
//     float accumulation happens in a deterministic sequence (node order,
//     step order), so sums are bit-for-bit identical across runs.
//
// # Nil safety
//
// A nil *Trace (and every *Span, *Counter, *Gauge, *Histogram reached
// through it) is a valid disabled instance: every method no-ops, so call
// sites need no "if tracing" branches and the disabled layer costs only a
// nil check per call. The overhead budget is enforced by
// TestTraceOverheadBudget at the repository root.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key-value annotation on a span. Either Str or Num is set,
// discriminated by IsNum.
type Attr struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// Trace is one query's observability capture: a span tree rooted at Root
// plus a metrics registry. A nil *Trace is the disabled no-op instance.
type Trace struct {
	mu    sync.Mutex
	epoch time.Time
	root  *Span
	reg   *Registry
	sinks []SpanSink
}

// SpanSink is a streaming consumer of retired spans. The pipeline engine
// delivers each span exactly once, from sequential orchestration code, the
// moment the span ends — long before the whole query (and therefore the
// whole span tree) completes. Delivery order is deterministic: it is the
// order in which stages retire their spans, which the determinism contract
// (see the package comment) fixes across Parallelism settings.
//
// SpanRetired is called with the trace mutex released, so a sink may read
// the span's exported fields and call back into the trace. The span's
// Children slice may still grow after delivery only for container spans
// that are re-ended; the engine never does that.
type SpanSink interface {
	SpanRetired(s *Span)
}

// AddSink registers a streaming consumer for retired spans. No-op on a
// disabled trace. Sinks added after spans have already retired only see
// subsequent retirements; the in-memory tree (Root) always has the full
// history.
func (t *Trace) AddSink(sink SpanSink) {
	if t == nil || sink == nil {
		return
	}
	t.mu.Lock()
	t.sinks = append(t.sinks, sink)
	t.mu.Unlock()
}

// CollectSink is the trivial SpanSink: it appends every retired span to an
// in-memory list in delivery order. It is safe for use from tests that
// probe incremental delivery concurrently with a running query.
type CollectSink struct {
	mu    sync.Mutex
	spans []*Span
}

// SpanRetired implements SpanSink.
func (c *CollectSink) SpanRetired(s *Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// Spans returns a snapshot of the spans delivered so far, in delivery
// order.
func (c *CollectSink) Spans() []*Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Span, len(c.spans))
	copy(out, c.spans)
	return out
}

// Len returns the number of spans delivered so far.
func (c *CollectSink) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

// New returns an enabled trace whose root span carries the given name.
func New(name string) *Trace {
	t := &Trace{epoch: time.Now(), reg: NewRegistry()}
	t.root = &Span{trace: t, Name: name, Node: -1}
	return t
}

// Enabled reports whether the trace records anything.
func (t *Trace) Enabled() bool { return t != nil }

// Root returns the root span (nil for a disabled trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Metrics returns the trace's registry (nil for a disabled trace; a nil
// registry is itself a valid no-op).
func (t *Trace) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// since returns seconds elapsed since the trace epoch.
func (t *Trace) since() float64 { return time.Since(t.epoch).Seconds() }

// Span is one timed region. Planning spans are wall-clock (wallStart /
// wallEnd, seconds since the trace epoch); simulator spans set Sim and
// carry simulated-cluster seconds in SimStart/SimEnd. Node is the
// simulated node the span belongs to, or -1 for coordinator/driver work.
//
// Span construction must happen on sequential code paths (see the package
// comment); the internal lock only protects against racy misuse, it does
// not make concurrent child order deterministic.
type Span struct {
	trace *Trace

	Name string
	Node int

	Sim              bool
	SimStart, SimEnd float64

	wallStart, wallEnd float64
	retired            bool

	Attrs    []Attr
	Children []*Span
}

// Child starts a wall-clock child span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{trace: s.trace, Name: name, Node: -1, wallStart: s.trace.since()}
	s.trace.mu.Lock()
	s.Children = append(s.Children, c)
	s.trace.mu.Unlock()
	return c
}

// SimChild adds a child span measured in simulated seconds.
func (s *Span) SimChild(name string, start, end float64) *Span {
	c := s.Child(name)
	if c == nil {
		return nil
	}
	c.Sim, c.SimStart, c.SimEnd = true, start, end
	return c
}

// End closes the span and retires it to every registered SpanSink. For
// wall-clock spans it also records the end timestamp; simulated spans keep
// their SimStart/SimEnd and End only retires them. A span retires at most
// once — re-ending a wall-clock span updates its end time but is not
// re-delivered.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	if !s.Sim {
		s.wallEnd = s.trace.since()
	}
	first := !s.retired
	s.retired = true
	var sinks []SpanSink
	if first {
		sinks = s.trace.sinks
	}
	s.trace.mu.Unlock()
	for _, sink := range sinks {
		sink.SpanRetired(s)
	}
}

// WallSeconds returns the span's wall duration so far (0 for nil or
// simulated spans).
func (s *Span) WallSeconds() float64 {
	if s == nil || s.Sim {
		return 0
	}
	s.trace.mu.Lock()
	defer s.trace.mu.Unlock()
	if s.wallEnd == 0 {
		return 0
	}
	return s.wallEnd - s.wallStart
}

// SetNode tags the span with a simulated node id.
func (s *Span) SetNode(n int) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.Node = n
	s.trace.mu.Unlock()
}

// SetNum records a numeric attribute. Keys containing "wall" are treated
// as nondeterministic and masked from Fingerprint.
func (s *Span) SetNum(key string, v float64) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Num: v, IsNum: true})
	s.trace.mu.Unlock()
}

// SetInt records an integer attribute (stored as a float; exact below 2^53).
func (s *Span) SetInt(key string, v int64) { s.SetNum(key, float64(v)) }

// SetStr records a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Str: v})
	s.trace.mu.Unlock()
}

// Fingerprint renders the span tree and all metric values in a canonical
// text form with every wall-clock quantity masked: two traces of the same
// query are required to fingerprint identically at any Parallelism
// setting. Simulated times are printed exactly (%.17g) so bit-level
// divergence is caught.
func (t *Trace) Fingerprint() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	fingerprintSpan(&b, t.root, 0)
	b.WriteString("-- metrics --\n")
	t.reg.writeFingerprint(&b)
	return b.String()
}

func fingerprintSpan(b *strings.Builder, s *Span, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Name)
	if s.Node >= 0 {
		fmt.Fprintf(b, " node=%d", s.Node)
	}
	if s.Sim {
		fmt.Fprintf(b, " sim=[%.17g,%.17g]", s.SimStart, s.SimEnd)
	} else {
		b.WriteString(" wall=[masked]")
	}
	for _, a := range s.Attrs {
		if strings.Contains(a.Key, "wall") {
			fmt.Fprintf(b, " %s=[masked]", a.Key)
		} else if a.IsNum {
			fmt.Fprintf(b, " %s=%.17g", a.Key, a.Num)
		} else {
			fmt.Fprintf(b, " %s=%q", a.Key, a.Str)
		}
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		fingerprintSpan(b, c, depth+1)
	}
}

// walk visits every span depth-first. Used by the exporters.
func (t *Trace) walk(fn func(s *Span, depth int)) {
	if t == nil {
		return
	}
	var rec func(s *Span, depth int)
	rec = func(s *Span, depth int) {
		fn(s, depth)
		for _, c := range s.Children {
			rec(c, depth)
		}
	}
	rec(t.root, 0)
}

// sortedAttrKeys returns attribute keys in first-appearance order; used by
// exporters that need a stable object layout.
func attrMap(attrs []Attr) (keys []string, m map[string]any) {
	m = make(map[string]any, len(attrs))
	for _, a := range attrs {
		if _, seen := m[a.Key]; !seen {
			keys = append(keys, a.Key)
		}
		if a.IsNum {
			m[a.Key] = a.Num
		} else {
			m[a.Key] = a.Str
		}
	}
	sort.Strings(keys)
	return keys, m
}
