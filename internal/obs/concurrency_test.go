package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentUse hammers every mutating accessor from
// goroutines while snapshots, table renders, and Prometheus exports read
// concurrently. Run under -race (the tier-1 CI does) this is the
// registry's thread-safety proof; the final assertions pin the exact
// totals, so lost updates fail even without the race detector.
func TestRegistryConcurrentUse(t *testing.T) {
	const (
		goroutines = 8
		iters      = 500
	)
	r := NewRegistry()
	// Pre-register so AddFrom sources merge into matching bucket layouts.
	r.Counter("c")
	r.Gauge("g")
	r.Histogram("h", []float64{1, 10, 100})

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				r.Counter("c").Add(1)
				r.Gauge("g").Set(float64(id))
				h := r.Histogram("h", []float64{1, 10, 100})
				h.Observe(float64(j % 150))
				h.Quantile(0.95)

				// Merge a one-shot registry in, exercising AddFrom against
				// the concurrent writers.
				src := NewRegistry()
				src.Counter("c").Add(1)
				src.Histogram("h", []float64{1, 10, 100}).Observe(1)
				r.AddFrom(src)

				// Concurrent readers must always see a consistent registry.
				snap := r.Snapshot()
				if snap["h.count"] > 0 && snap["h.min"] > snap["h.max"] {
					t.Errorf("inconsistent snapshot: min %g > max %g", snap["h.min"], snap["h.max"])
				}
				if j%100 == 0 {
					var b strings.Builder
					r.WriteTable(&b)
					if err := r.WritePrometheus(&b); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
					if err := r.WriteJSON(&b); err != nil {
						t.Errorf("WriteJSON: %v", err)
					}
				}
			}
		}(i)
	}
	wg.Wait()

	snap := r.Snapshot()
	wantC := float64(goroutines * iters * 2) // Add(1) direct + Add(1) via AddFrom
	if snap["c"] != wantC {
		t.Errorf("counter c = %g, want %g", snap["c"], wantC)
	}
	wantN := float64(goroutines * iters * 2) // Observe direct + merged
	if snap["h.count"] != wantN {
		t.Errorf("histogram count = %g, want %g", snap["h.count"], wantN)
	}
	if g := snap["g"]; g < 0 || g >= goroutines {
		t.Errorf("gauge g = %g, want last-writer value in [0,%d)", g, goroutines)
	}

	// Two quiesced fingerprints must agree — Snapshot and the fingerprint
	// walk see the same settled state.
	var f1, f2 strings.Builder
	r.writeFingerprint(&f1)
	r.writeFingerprint(&f2)
	if f1.String() != f2.String() {
		t.Error("fingerprint not stable across consecutive renders")
	}
}
