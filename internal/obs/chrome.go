package obs

import (
	"encoding/json"
	"io"
)

// Chrome trace-event export (the "Trace Event Format" consumed by Perfetto
// and chrome://tracing). The simulated cluster maps onto the format as:
//
//   - pid 0               the coordinator/driver, wall-clock spans (planning)
//   - pid 1+n             simulated node n; its spans carry simulated time
//   - transfer spans      one complete ("X") event on the sender's "send"
//     thread and one on the receiver's "recv" thread, connected by a
//     flow-event pair ("s"/"f") so Perfetto draws the arrow between nodes
//
// Timestamps are microseconds: wall microseconds since the trace epoch for
// pid 0, simulated microseconds for the nodes.

// chromeEvent is one trace-event-format record.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const (
	tidMain = 0
	tidSend = 1
	tidRecv = 2
)

// WriteChrome emits the trace in Chrome trace-event JSON.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	var events []chromeEvent
	maxNode := -1
	flowID := 0

	var emit func(s *Span)
	emit = func(s *Span) {
		_, args := attrMap(s.Attrs)
		fromV, fromOK := args["from"].(float64)
		toV, toOK := args["to"].(float64)
		switch {
		case s.Sim && args["transfer"] == 1.0 && fromOK && toOK:
			// Transfer: send-side slice, recv-side slice, flow arrow.
			from, to := int(fromV), int(toV)
			if from > maxNode {
				maxNode = from
			}
			if to > maxNode {
				maxNode = to
			}
			flowID++
			dur := (s.SimEnd - s.SimStart) * 1e6
			events = append(events,
				chromeEvent{Name: s.Name, Ph: "X", Pid: 1 + from, Tid: tidSend, Ts: s.SimStart * 1e6, Dur: &dur, Args: args},
				chromeEvent{Name: s.Name, Ph: "X", Pid: 1 + to, Tid: tidRecv, Ts: s.SimStart * 1e6, Dur: &dur, Args: args},
				chromeEvent{Name: s.Name, Ph: "s", Pid: 1 + from, Tid: tidSend, Ts: s.SimStart * 1e6, ID: flowID},
				chromeEvent{Name: s.Name, Ph: "f", BP: "e", Pid: 1 + to, Tid: tidRecv, Ts: s.SimEnd * 1e6, ID: flowID},
			)
		case s.Sim:
			pid := 0
			if s.Node >= 0 {
				pid = 1 + s.Node
				if s.Node > maxNode {
					maxNode = s.Node
				}
			}
			dur := (s.SimEnd - s.SimStart) * 1e6
			events = append(events, chromeEvent{
				Name: s.Name, Ph: "X", Pid: pid, Tid: tidMain,
				Ts: s.SimStart * 1e6, Dur: &dur, Args: args,
			})
		default:
			end := s.wallEnd
			if end < s.wallStart {
				end = s.wallStart
			}
			dur := (end - s.wallStart) * 1e6
			events = append(events, chromeEvent{
				Name: s.Name, Ph: "X", Pid: 0, Tid: tidMain,
				Ts: s.wallStart * 1e6, Dur: &dur, Args: args,
			})
		}
		for _, c := range s.Children {
			emit(c)
		}
	}
	emit(t.root)

	meta := func(pid, tid int, key, name string) chromeEvent {
		return chromeEvent{Name: key, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}}
	}
	all := []chromeEvent{meta(0, tidMain, "process_name", "coordinator (wall clock)")}
	for n := 0; n <= maxNode; n++ {
		all = append(all,
			meta(1+n, tidMain, "process_name", "node "+itoa(n)+" (simulated)"),
			meta(1+n, tidMain, "thread_name", "execute"),
			meta(1+n, tidSend, "thread_name", "send"),
			meta(1+n, tidRecv, "thread_name", "recv"),
		)
	}
	all = append(all, events...)

	return json.NewEncoder(w).Encode(chromeFile{TraceEvents: all, DisplayTimeUnit: "ms"})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
