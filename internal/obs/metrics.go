package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry is an ordered, concurrency-safe set of named metrics. A nil
// *Registry is a valid disabled instance: every accessor returns a nil
// metric whose methods no-op.
//
// Snapshot order and export order follow first registration, so a query
// traced twice produces byte-identical exports.
type Registry struct {
	mu    sync.Mutex
	order []string
	m     map[string]*metric
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	kind    metricKind
	count   int64
	gauge   float64
	buckets []float64 // upper bounds, ascending; implicit +Inf last
	hist    []int64   // len(buckets)+1
	n       int64
	sum     float64
	min     float64
	max     float64
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*metric)}
}

func (r *Registry) get(name string, kind metricKind) *metric {
	if m, ok := r.m[name]; ok {
		return m
	}
	m := &metric{kind: kind, min: math.Inf(1), max: math.Inf(-1)}
	r.m[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter is a monotone int64 metric.
type Counter struct {
	r *Registry
	m *metric
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Counter{r: r, m: r.get(name, kindCounter)}
}

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.r.mu.Lock()
	c.m.count += n
	c.r.mu.Unlock()
}

// Gauge is a float64 metric supporting both Set (last value wins) and Add
// (deterministic accumulation — callers must add in a deterministic order).
type Gauge struct {
	r *Registry
	m *metric
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Gauge{r: r, m: r.get(name, kindGauge)}
}

// Set overwrites the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	g.m.gauge = v
	g.r.mu.Unlock()
}

// Add accumulates into the gauge.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	g.m.gauge += v
	g.r.mu.Unlock()
}

// Histogram is a fixed-bucket distribution metric. Buckets are upper
// bounds (ascending); observations above the last bound land in an
// implicit +Inf bucket. Fixed buckets keep the export deterministic and
// mergeable.
type Histogram struct {
	r *Registry
	m *metric
}

// Histogram returns (registering on first use) the named histogram with
// the given bucket upper bounds. Bounds are fixed at first registration.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.get(name, kindHistogram)
	if m.buckets == nil {
		m.buckets = append([]float64(nil), buckets...)
		m.hist = make([]int64, len(buckets)+1)
	}
	return &Histogram{r: r, m: m}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.r.mu.Lock()
	m := h.m
	i := sort.SearchFloat64s(m.buckets, v)
	m.hist[i]++
	m.n++
	m.sum += v
	if v < m.min {
		m.min = v
	}
	if v > m.max {
		m.max = v
	}
	h.r.mu.Unlock()
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution from the fixed buckets, interpolating linearly within the
// bucket the quantile falls in (the histogram_quantile convention). The
// first bucket's lower edge and the +Inf bucket's upper edge are taken
// from the observed min and max, so single-bucket histograms and tail
// quantiles stay within the observed range. Returns NaN when nothing has
// been observed.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.m.quantile(q)
}

// P50 is Quantile(0.50), the median estimate.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P95 is Quantile(0.95).
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// quantile is Quantile with the registry lock held.
func (m *metric) quantile(q float64) float64 {
	if m.n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return m.min
	}
	if q >= 1 {
		return m.max
	}
	target := q * float64(m.n)
	var cum float64
	for i, c := range m.hist {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo := m.min
			if i > 0 && m.buckets[i-1] > lo {
				lo = m.buckets[i-1]
			}
			hi := m.max
			if i < len(m.buckets) && m.buckets[i] < hi {
				hi = m.buckets[i]
			}
			if hi < lo {
				hi = lo
			}
			return lo + (target-cum)/float64(c)*(hi-lo)
		}
		cum = next
	}
	return m.max
}

// PowersOf2Buckets returns bucket bounds 1, 2^s, 2^2s, ... covering counts
// up to about 2^(s*n); the standard shape for cells-per-unit style skew
// histograms.
func PowersOf2Buckets(step, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Pow(2, float64(step*i))
	}
	return out
}

// Snapshot flattens every metric into name -> value. Counters and gauges
// map directly; a histogram h contributes h.count, h.sum, h.min, h.max.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.order))
	for _, name := range r.order {
		m := r.m[name]
		switch m.kind {
		case kindCounter:
			out[name] = float64(m.count)
		case kindGauge:
			out[name] = m.gauge
		case kindHistogram:
			out[name+".count"] = float64(m.n)
			out[name+".sum"] = m.sum
			if m.n > 0 {
				out[name+".min"] = m.min
				out[name+".max"] = m.max
			}
		}
	}
	return out
}

// AddFrom accumulates another registry's counters, gauges, and histograms
// into this one (counters and gauges add; histograms merge bucket-wise
// when the bucket layouts match). Used for per-DB cumulative metrics.
func (r *Registry) AddFrom(other *Registry) {
	if r == nil || other == nil {
		return
	}
	other.mu.Lock()
	names := append([]string(nil), other.order...)
	src := make(map[string]metric, len(names))
	for _, n := range names {
		src[n] = *other.m[n]
	}
	other.mu.Unlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range names {
		s := src[name]
		d := r.get(name, s.kind)
		switch s.kind {
		case kindCounter:
			d.count += s.count
		case kindGauge:
			d.gauge += s.gauge
		case kindHistogram:
			if d.buckets == nil {
				d.buckets = append([]float64(nil), s.buckets...)
				d.hist = make([]int64, len(s.buckets)+1)
			}
			if len(d.hist) == len(s.hist) {
				for i, c := range s.hist {
					d.hist[i] += c
				}
				d.n += s.n
				d.sum += s.sum
				if s.min < d.min {
					d.min = s.min
				}
				if s.max > d.max {
					d.max = s.max
				}
			}
		}
	}
}

// jsonMetric is the export form of one metric.
type jsonMetric struct {
	Name    string    `json:"name"`
	Kind    string    `json:"kind"`
	Value   float64   `json:"value,omitempty"`
	Count   int64     `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Min     float64   `json:"min,omitempty"`
	Max     float64   `json:"max,omitempty"`
	Buckets []float64 `json:"buckets,omitempty"`
	Counts  []int64   `json:"counts,omitempty"`
}

// WriteJSON emits the registry as a JSON array in registration order.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	r.mu.Lock()
	out := make([]jsonMetric, 0, len(r.order))
	for _, name := range r.order {
		m := r.m[name]
		jm := jsonMetric{Name: name}
		switch m.kind {
		case kindCounter:
			jm.Kind = "counter"
			jm.Value = float64(m.count)
		case kindGauge:
			jm.Kind = "gauge"
			jm.Value = m.gauge
		case kindHistogram:
			jm.Kind = "histogram"
			jm.Count = m.n
			jm.Sum = m.sum
			if m.n > 0 {
				jm.Min, jm.Max = m.min, m.max
			}
			jm.Buckets = append([]float64(nil), m.buckets...)
			jm.Counts = append([]int64(nil), m.hist...)
		}
		out = append(out, jm)
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteTable renders the registry as an aligned human-readable table.
func (r *Registry) WriteTable(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	width := 0
	for _, name := range r.order {
		if len(name) > width {
			width = len(name)
		}
	}
	for _, name := range r.order {
		m := r.m[name]
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "%-*s %d\n", width, name, m.count)
		case kindGauge:
			fmt.Fprintf(w, "%-*s %.6g\n", width, name, m.gauge)
		case kindHistogram:
			fmt.Fprintf(w, "%-*s n=%d sum=%.6g", width, name, m.n, m.sum)
			if m.n > 0 {
				fmt.Fprintf(w, " min=%.6g max=%.6g p50=%.6g p95=%.6g p99=%.6g",
					m.min, m.max, m.quantile(0.50), m.quantile(0.95), m.quantile(0.99))
			}
			fmt.Fprintln(w)
		}
	}
}

// writeFingerprint appends every metric value exactly; caller holds no
// lock (Fingerprint holds the trace lock, not the registry's).
func (r *Registry) writeFingerprint(b *strings.Builder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		m := r.m[name]
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(b, "%s=%d\n", name, m.count)
		case kindGauge:
			fmt.Fprintf(b, "%s=%.17g\n", name, m.gauge)
		case kindHistogram:
			fmt.Fprintf(b, "%s n=%d sum=%.17g buckets=%v\n", name, m.n, m.sum, m.hist)
		}
	}
}
